package streamrpq

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// churnStream generates a random facade-level stream; delRatio is the
// probability that a tuple re-deletes a previously inserted edge.
func churnStream(seed int64, n int, delRatio float64) []Tuple {
	rng := rand.New(rand.NewSource(seed))
	labels := []string{"a", "b"}
	var out, inserted []Tuple
	ts := int64(0)
	for i := 0; i < n; i++ {
		ts += rng.Int63n(3)
		if len(inserted) > 0 && rng.Float64() < delRatio {
			old := inserted[rng.Intn(len(inserted))]
			out = append(out, Tuple{TS: ts, Src: old.Src, Dst: old.Dst, Label: old.Label, Delete: true})
			continue
		}
		tu := Tuple{
			TS:    ts,
			Src:   fmt.Sprintf("v%d", rng.Intn(9)),
			Dst:   fmt.Sprintf("v%d", rng.Intn(9)),
			Label: labels[rng.Intn(2)],
		}
		out = append(out, tu)
		inserted = append(inserted, tu)
	}
	return out
}

// shardStream generates a deletion-free random facade-level stream.
func shardStream(seed int64, n int) []Tuple { return churnStream(seed, n, 0) }

func shardQueries() []*Query {
	return []*Query{
		MustCompile("(a/b)+"),
		MustCompile("a/b*"),
		MustCompile("(a|b)+"),
		MustCompile("b/a"),
	}
}

// collectMulti drains a stream through Ingest and returns, per query
// expression, the multiset of matches.
func collectMulti(t *testing.T, m *MultiEvaluator, stream []Tuple) map[string]map[Match]int {
	t.Helper()
	out := map[string]map[Match]int{}
	for _, tu := range stream {
		rs, err := m.Ingest(tu)
		if err != nil {
			t.Fatal(err)
		}
		for _, qr := range rs {
			name := qr.Query.String()
			if out[name] == nil {
				out[name] = map[Match]int{}
			}
			for _, match := range qr.Matches {
				out[name][match]++
			}
		}
	}
	return out
}

// facadeEntry is one facade-level result keyed by the timestamp of the
// tuple that produced it — the canonical form for comparing backends
// whose sub-batching shifts match attribution inside timestamp
// tie-groups (see the core-level differential for the same treatment).
type facadeEntry struct {
	TS    int64 // timestamp of the triggering tuple
	Query int   // query registration index
	Inval bool
	M     Match
}

// rawGroup is one BatchResult with the query pointer replaced by its
// registration index and the tuple index made batch-global, so streams
// from different evaluator instances compare with reflect.DeepEqual.
type rawGroup struct {
	Tuple         int
	Query         int
	Matches       []Match
	Invalidations []Match
}

// collectCanon drives a stream through IngestBatch in fixed chunks and
// returns both the canonicalized (timestamp-keyed, sorted) entry stream
// and the raw ordered result groups.
func collectCanon(t *testing.T, m *MultiEvaluator, qidx map[*Query]int, stream []Tuple, chunk int) ([]facadeEntry, []rawGroup) {
	t.Helper()
	var canon []facadeEntry
	var raw []rawGroup
	for i := 0; i < len(stream); i += chunk {
		rs, err := m.IngestBatch(stream[i:min(i+chunk, len(stream))])
		if err != nil {
			t.Fatal(err)
		}
		for _, br := range rs {
			g := rawGroup{Tuple: i + br.Tuple, Query: qidx[br.Query]}
			g.Matches = append(g.Matches, br.Matches...)
			g.Invalidations = append(g.Invalidations, br.Invalidations...)
			raw = append(raw, g)
			ts := stream[i+br.Tuple].TS
			for _, match := range br.Matches {
				canon = append(canon, facadeEntry{TS: ts, Query: g.Query, M: match})
			}
			for _, match := range br.Invalidations {
				canon = append(canon, facadeEntry{TS: ts, Query: g.Query, Inval: true, M: match})
			}
		}
	}
	sort.Slice(canon, func(i, j int) bool {
		a, b := &canon[i], &canon[j]
		if a.TS != b.TS {
			return a.TS < b.TS
		}
		if a.Query != b.Query {
			return a.Query < b.Query
		}
		if a.Inval != b.Inval {
			return !a.Inval
		}
		if a.M.From != b.M.From {
			return a.M.From < b.M.From
		}
		if a.M.To != b.M.To {
			return a.M.To < b.M.To
		}
		return a.M.TS < b.M.TS
	})
	return canon, raw
}

// TestMultiEvaluatorShardedAgrees: WithShards and WithPipelineDepth
// must not change the result stream of any registered query — on a
// stream with explicit deletions the exact multiset of matches AND
// invalidations (with timestamps, canonically ordered per timestamp
// tie-group) must equal the sequential backend's, for shards 1/2/8 ×
// pipeline depths 1/2/4; and the raw ordered batch results must be
// byte-identical across all sharded configurations.
func TestMultiEvaluatorShardedAgrees(t *testing.T) {
	stream := churnStream(31, 700, 0.15)
	newEval := func() (*MultiEvaluator, map[*Query]int) {
		qs := shardQueries()
		qidx := make(map[*Query]int, len(qs))
		for i, q := range qs {
			qidx[q] = i
		}
		m, err := NewMultiEvaluator(25, 5, qs...)
		if err != nil {
			t.Fatal(err)
		}
		return m, qidx
	}
	seq, seqIdx := newEval()
	want, _ := collectCanon(t, seq, seqIdx, stream, 50)
	if len(want) == 0 {
		t.Fatal("no results; test is vacuous")
	}
	hasInval := false
	for _, e := range want {
		if e.Inval {
			hasInval = true
			break
		}
	}
	if !hasInval {
		t.Fatal("no invalidations; deletion coverage is vacuous")
	}

	var firstRaw []rawGroup
	for _, shards := range []int{1, 2, 8} {
		for _, depth := range []int{1, 2, 4} {
			m, qidx := newEval()
			if err := m.WithShards(shards); err != nil {
				t.Fatal(err)
			}
			if err := m.WithPipelineDepth(depth); err != nil {
				t.Fatal(err)
			}
			got, raw := collectCanon(t, m, qidx, stream, 50)
			m.Close()
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("shards=%d depth=%d: result streams diverge from sequential (%d vs %d entries)",
					shards, depth, len(want), len(got))
			}
			if firstRaw == nil {
				firstRaw = raw
			} else if !reflect.DeepEqual(firstRaw, raw) {
				t.Fatalf("shards=%d depth=%d: raw ordered results differ from the shards=1 depth=1 run", shards, depth)
			}
		}
	}
}

// TestMultiEvaluatorIngestBatch: the batch path must produce exactly
// the per-tuple results of the single-tuple path, for both backends.
func TestMultiEvaluatorIngestBatch(t *testing.T) {
	stream := shardStream(57, 400)
	for _, shards := range []int{0, 4} { // 0 = sequential backend
		ref, err := NewMultiEvaluator(30, 3, shardQueries()...)
		if err != nil {
			t.Fatal(err)
		}
		want := collectMulti(t, ref, stream)

		m, err := NewMultiEvaluator(30, 3, shardQueries()...)
		if err != nil {
			t.Fatal(err)
		}
		if shards > 0 {
			if err := m.WithShards(shards); err != nil {
				t.Fatal(err)
			}
		}
		got := map[string]map[Match]int{}
		lastTuple := -1
		for i := 0; i < len(stream); i += 50 {
			batch := stream[i:min(i+50, len(stream))]
			rs, err := m.IngestBatch(batch)
			if err != nil {
				t.Fatal(err)
			}
			for _, br := range rs {
				if br.Tuple < 0 || br.Tuple >= len(batch) {
					t.Fatalf("batch result references tuple %d of %d", br.Tuple, len(batch))
				}
				if br.Tuple < lastTuple && lastTuple < len(batch) {
					// results must be ordered by tuple index within one batch
					t.Fatalf("batch results out of order: tuple %d after %d", br.Tuple, lastTuple)
				}
				name := br.Query.String()
				if got[name] == nil {
					got[name] = map[Match]int{}
				}
				for _, match := range br.Matches {
					got[name][match]++
				}
			}
			lastTuple = -1
		}
		m.Close()
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("shards=%d: IngestBatch diverges from Ingest loop", shards)
		}
	}
}

// TestMultiEvaluatorShardedDeterminism: two sharded runs over the same
// stream yield byte-identical ordered batch results.
func TestMultiEvaluatorShardedDeterminism(t *testing.T) {
	stream := shardStream(83, 600)
	run := func() []BatchResult {
		m, err := NewMultiEvaluator(20, 2, shardQueries()...)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.WithShards(4); err != nil {
			t.Fatal(err)
		}
		defer m.Close()
		var all []BatchResult
		for i := 0; i < len(stream); i += 64 {
			rs, err := m.IngestBatch(stream[i:min(i+64, len(stream))])
			if err != nil {
				t.Fatal(err)
			}
			all = append(all, rs...)
		}
		return all
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("no results; test is vacuous")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two identical sharded runs differ: %d vs %d result groups", len(a), len(b))
	}
}

// TestIngestBatchRejectedAtomically: an out-of-order batch — including
// the very first batch, before any stream clock exists — must be
// rejected before any tuple reaches the engine, for both backends.
func TestIngestBatchRejectedAtomically(t *testing.T) {
	for _, shards := range []int{0, 2} {
		m, err := NewMultiEvaluator(10, 1, MustCompile("a"))
		if err != nil {
			t.Fatal(err)
		}
		if shards > 0 {
			if err := m.WithShards(shards); err != nil {
				t.Fatal(err)
			}
		}
		bad := []Tuple{
			{TS: 5, Src: "x", Dst: "y", Label: "a"},
			{TS: 3, Src: "y", Dst: "z", Label: "a"},
		}
		if _, err := m.IngestBatch(bad); err == nil {
			t.Fatalf("shards=%d: unordered first batch accepted", shards)
		}
		if st := m.Stats(); st.TuplesSeen != 0 || st.Edges != 0 {
			t.Fatalf("shards=%d: rejected batch left engine state: %+v", shards, st)
		}
		// The stream clock must be untouched: a tuple older than the
		// rejected batch's maximum is still acceptable.
		if _, err := m.Ingest(Tuple{TS: 1, Src: "x", Dst: "y", Label: "a"}); err != nil {
			t.Fatalf("shards=%d: clock advanced by rejected batch: %v", shards, err)
		}
		m.Close()
	}
}

// TestWithShardsGuards: configuration errors must surface cleanly.
func TestWithShardsGuards(t *testing.T) {
	m, err := NewMultiEvaluator(10, 1, MustCompile("a"))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.WithShards(0); err == nil {
		t.Fatal("WithShards(0) accepted")
	}
	if _, err := m.Ingest(Tuple{TS: 1, Src: "x", Dst: "y", Label: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := m.WithShards(2); err == nil {
		t.Fatal("WithShards after first Ingest accepted")
	}
	m.Close() // no-op for the sequential backend

	s, err := NewMultiEvaluator(10, 1, MustCompile("a"))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WithShards(2); err != nil {
		t.Fatal(err)
	}
	if s.NumShards() != 2 {
		t.Fatalf("NumShards = %d", s.NumShards())
	}
	s.Ingest(Tuple{TS: 5, Src: "u", Dst: "v", Label: "a"})
	if _, err := s.Ingest(Tuple{TS: 4, Src: "u", Dst: "v", Label: "a"}); err == nil {
		t.Fatal("out-of-order accepted by sharded backend")
	}
	if st := s.ShardStats(); len(st) != 2 {
		t.Fatalf("ShardStats len = %d", len(st))
	}
	s.Close()
	s.Close() // idempotent
}
