// Benchmarks regenerating the cost measurements behind every table and
// figure of the paper's evaluation (§5), one benchmark family per
// exhibit. Each op is the processing of one streaming graph tuple
// unless noted otherwise; compare ns/op across sub-benchmarks to read
// the paper's orderings (run `go test -bench=. -benchmem`).
//
// The experiment drivers in internal/experiments print the full
// tables; these benchmarks are the stable, `testing.B`-native view of
// the same quantities.
package streamrpq_test

import (
	"fmt"
	"sync"
	"testing"

	"streamrpq/internal/automaton"
	"streamrpq/internal/baseline"
	"streamrpq/internal/core"
	"streamrpq/internal/datasets"
	"streamrpq/internal/pattern"
	"streamrpq/internal/shard"
	"streamrpq/internal/stream"
	"streamrpq/internal/window"
	"streamrpq/internal/workload"
)

const benchStream = 20000 // tuples per generated benchmark stream

var (
	benchOnce sync.Once
	benchYago *datasets.Dataset
	benchLDBC *datasets.Dataset
	benchSO   *datasets.Dataset
	benchGM   *datasets.Dataset
)

func benchData() {
	benchOnce.Do(func() {
		benchYago = datasets.Yago(datasets.DefaultYago(benchStream))
		benchLDBC = datasets.LDBC(datasets.DefaultLDBC(benchStream))
		benchSO = datasets.SO(datasets.DefaultSO(benchStream))
		benchGM = datasets.GMark(datasets.DefaultGMark(benchStream))
	})
}

// replay feeds b.N tuples to the engine, rebasing timestamps on each
// pass over the stream so they stay non-decreasing.
func replay(b *testing.B, engine core.Engine, d *datasets.Dataset) {
	b.Helper()
	span := d.Tuples[len(d.Tuples)-1].TS + 1
	var offset int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := d.Tuples[i%len(d.Tuples)]
		if i > 0 && i%len(d.Tuples) == 0 {
			offset += span
		}
		t.TS += offset
		engine.Process(t)
	}
}

func benchWindow(d *datasets.Dataset) window.Spec {
	span := d.Tuples[len(d.Tuples)-1].TS + 1
	size := span / 8
	if size < 16 {
		size = 16
	}
	return window.Spec{Size: size, Slide: max(1, size/10)}
}

func rapqBench(b *testing.B, d *datasets.Dataset, queryName string) {
	qs := workload.MustQueries(d)
	q, ok := workload.ByName(qs, queryName)
	if !ok {
		b.Skipf("query %s not applicable to %s", queryName, d.Name)
	}
	engine := core.NewRAPQ(q.Bound, benchWindow(d))
	replay(b, engine, d)
}

// BenchmarkFig4 measures RAPQ per-tuple cost for every workload query
// on every dataset (Figure 4 a,b,c). Throughput (edges/s) is 1e9/ns-op.
func BenchmarkFig4(b *testing.B) {
	benchData()
	for _, d := range []*datasets.Dataset{benchYago, benchLDBC, benchSO} {
		for _, name := range workload.Names(d.Name) {
			d, name := d, name
			b.Run(d.Name+"/"+name, func(b *testing.B) { rapqBench(b, d, name) })
		}
	}
}

// BenchmarkFig5 measures the index-heavy queries whose Δ size explains
// Figure 5's throughput ordering on SO.
func BenchmarkFig5(b *testing.B) {
	benchData()
	for _, name := range []string{"Q3", "Q6", "Q4", "Q11"} {
		name := name
		b.Run("SO/"+name, func(b *testing.B) { rapqBench(b, benchSO, name) })
	}
}

// BenchmarkFig6Window sweeps the window size |W| (Figure 6a): per-tuple
// cost grows with the window.
func BenchmarkFig6Window(b *testing.B) {
	benchData()
	d := benchYago
	span := d.Tuples[len(d.Tuples)-1].TS + 1
	unit := span / 16
	qs := workload.MustQueries(d)
	q, _ := workload.ByName(qs, "Q2")
	for mult := int64(1); mult <= 4; mult++ {
		mult := mult
		b.Run(sizeName(mult), func(b *testing.B) {
			spec := window.Spec{Size: mult * unit, Slide: max(1, mult*unit/10)}
			engine := core.NewRAPQ(q.Bound, spec)
			replay(b, engine, d)
		})
	}
}

func sizeName(mult int64) string {
	return []string{"", "W1", "W2", "W3", "W4"}[mult]
}

// BenchmarkFig6Slide sweeps the slide interval β (Figure 6b): the
// amortized per-tuple cost stays flat.
func BenchmarkFig6Slide(b *testing.B) {
	benchData()
	d := benchYago
	span := d.Tuples[len(d.Tuples)-1].TS + 1
	size := span / 8
	qs := workload.MustQueries(d)
	q, _ := workload.ByName(qs, "Q2")
	for mult := int64(1); mult <= 4; mult++ {
		mult := mult
		b.Run(sizeName(mult), func(b *testing.B) {
			spec := window.Spec{Size: size, Slide: max(1, mult*size/20)}
			engine := core.NewRAPQ(q.Bound, spec)
			replay(b, engine, d)
		})
	}
}

// BenchmarkFig7Compile measures query-registration cost: expression →
// Thompson NFA → DFA → minimal DFA (the pipeline behind Figure 7).
func BenchmarkFig7Compile(b *testing.B) {
	labels := []string{"p0", "p1", "p2", "p3", "p4", "p5", "p6", "p7"}
	qs := datasets.GMarkQueries(100, labels, 2, 20, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		automaton.Compile(qs[i%len(qs)].Expr)
	}
}

// BenchmarkFig8K measures per-tuple cost across automaton sizes k on
// the gMark workload (Figure 8): no strong k dependence is expected.
func BenchmarkFig8K(b *testing.B) {
	benchData()
	d := benchGM
	qs := datasets.GMarkQueries(100, d.Labels, 2, 20, 1)
	// One representative query per distinct k.
	byK := map[int]datasets.GMarkQuery{}
	for _, q := range qs {
		k := automaton.Compile(q.Expr).NumStates()
		if _, ok := byK[k]; !ok && k >= 2 && k <= 8 {
			byK[k] = q
		}
	}
	for k := 2; k <= 8; k++ {
		q, ok := byK[k]
		if !ok {
			continue
		}
		k := k
		b.Run("k"+string(rune('0'+k)), func(b *testing.B) {
			bound := automaton.Compile(q.Expr).Bind(d.LabelID, len(d.Labels))
			engine := core.NewRAPQ(bound, benchWindow(d))
			replay(b, engine, d)
		})
	}
}

// BenchmarkFig9Delta contrasts a low-selectivity and a high-selectivity
// query at comparable k (Figure 9): the Δ index size drives cost.
func BenchmarkFig9Delta(b *testing.B) {
	benchData()
	d := benchGM
	cases := []struct {
		name string
		expr string
	}{
		{"smallDelta", "p6/p7"},       // rare labels, fixed length
		{"largeDelta", "(p0|p1|p2)*"}, // closure over frequent labels
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			bound := automaton.Compile(pattern.MustParse(c.expr)).Bind(d.LabelID, len(d.Labels))
			engine := core.NewRAPQ(bound, benchWindow(d))
			replay(b, engine, d)
		})
	}
}

// BenchmarkFig10Deletions measures per-tuple cost at increasing
// explicit-deletion ratios (Figure 10).
func BenchmarkFig10Deletions(b *testing.B) {
	benchData()
	base := benchYago
	qs := workload.MustQueries(base)
	q, _ := workload.ByName(qs, "Q2")
	for _, pct := range []int{0, 2, 6, 10} {
		pct := pct
		b.Run(delName(pct), func(b *testing.B) {
			d := base
			if pct > 0 {
				d = base.WithDeletions(float64(pct)/100, int64(pct))
			}
			engine := core.NewRAPQ(q.Bound, benchWindow(base))
			replay(b, engine, d)
		})
	}
}

func delName(pct int) string {
	switch pct {
	case 0:
		return "del0"
	case 2:
		return "del2"
	case 6:
		return "del6"
	default:
		return "del10"
	}
}

// BenchmarkTable4RSPQ measures the simple-path engine against the
// arbitrary-path engine on the same query and dataset (Table 4's
// overhead column).
func BenchmarkTable4RSPQ(b *testing.B) {
	benchData()
	for _, tc := range []struct {
		d    *datasets.Dataset
		name string
	}{
		{benchYago, "Q1"}, {benchYago, "Q7"}, {benchYago, "Q11"},
		{benchSO, "Q1"}, {benchSO, "Q4"}, {benchSO, "Q11"},
	} {
		tc := tc
		qs := workload.MustQueries(tc.d)
		q, _ := workload.ByName(qs, tc.name)
		b.Run(tc.d.Name+"/"+tc.name+"/RAPQ", func(b *testing.B) {
			engine := core.NewRAPQ(q.Bound, benchWindow(tc.d))
			replay(b, engine, tc.d)
		})
		b.Run(tc.d.Name+"/"+tc.name+"/RSPQ", func(b *testing.B) {
			engine := core.NewRSPQ(q.Bound, benchWindow(tc.d), core.WithMaxExtends(1<<14))
			replay(b, engine, tc.d)
		})
	}
}

// BenchmarkFig11Baseline contrasts the incremental engine with the
// per-tuple rescan baseline (Figure 11). The rescan op cost is the
// full batch evaluation a static engine pays per arriving tuple.
func BenchmarkFig11Baseline(b *testing.B) {
	benchData()
	// A short stream keeps the baseline tractable.
	d := datasets.Yago(datasets.DefaultYago(2000))
	qs := workload.MustQueries(d)
	q, _ := workload.ByName(qs, "Q2")
	spec := benchWindow(d)
	b.Run("RAPQ", func(b *testing.B) {
		engine := core.NewRAPQ(q.Bound, spec)
		replay(b, engine, d)
	})
	b.Run("Rescan", func(b *testing.B) {
		engine := baseline.NewRescan(q.Bound, spec)
		replay(b, engine, d)
	})
}

// BenchmarkMultiQueryShards measures the sharded concurrent
// multi-query engine (internal/shard) running a doubled SO workload
// (22 persistent queries) over one shared window, at 1, 2 and 8 worker
// shards. Each op is one tuple pushed through a 256-tuple IngestBatch
// pipeline; on a multicore runner (GOMAXPROCS >= 8) the 8-shard
// variant should beat the 1-shard variant in tuples/s, since shards
// update their queries' Δ indexes concurrently between the per-batch
// graph advances.
func BenchmarkMultiQueryShards(b *testing.B) {
	benchData()
	d := benchSO
	qs := workload.MustQueries(d)
	queries := append(append([]workload.Query{}, qs...), qs...)
	span := d.Tuples[len(d.Tuples)-1].TS + 1

	for _, shards := range []int{1, 2, 8} {
		b.Run(fmt.Sprintf("shards%d", shards), func(b *testing.B) {
			eng, err := shard.New(benchWindow(d), shard.WithShards(shards))
			if err != nil {
				b.Fatal(err)
			}
			defer eng.Close()
			for _, q := range queries {
				if _, err := eng.Add(q.Bound, nil); err != nil {
					b.Fatal(err)
				}
			}
			const batchSize = 256
			batch := make([]stream.Tuple, 0, batchSize)
			var offset int64
			flush := func() {
				if len(batch) == 0 {
					return
				}
				if _, err := eng.ProcessBatch(batch); err != nil {
					b.Fatal(err)
				}
				batch = batch[:0]
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t := d.Tuples[i%len(d.Tuples)]
				if i > 0 && i%len(d.Tuples) == 0 {
					flush() // timestamps rebase here; keep batches ordered
					offset += span
				}
				t.TS += offset
				batch = append(batch, t)
				if len(batch) == batchSize {
					flush()
				}
			}
			flush()
		})
	}
}

// BenchmarkMultiQueryPipeline measures barriered (depth 1) vs
// pipelined (depth 2 and 4) sub-batch execution at 1 and 8 shards on
// the same doubled SO workload. On a multicore runner the pipelined
// variants should be at least as fast as depth 1 at ≥ 2 shards: the
// coordinator's graph/window advance for epoch k+1 overlaps the
// shards' Δ-index fan-out for epoch k instead of waiting behind it.
// The structured sweep equivalent is `rpqbench -exp pipeline -json`
// (recorded as BENCH_pipeline.json / the pipeline-sweep CI artifact).
func BenchmarkMultiQueryPipeline(b *testing.B) {
	benchData()
	d := benchSO
	qs := workload.MustQueries(d)
	queries := append(append([]workload.Query{}, qs...), qs...)
	span := d.Tuples[len(d.Tuples)-1].TS + 1

	for _, shards := range []int{1, 8} {
		for _, depth := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("shards%d/depth%d", shards, depth), func(b *testing.B) {
				eng, err := shard.New(benchWindow(d), shard.WithShards(shards), shard.WithPipelineDepth(depth))
				if err != nil {
					b.Fatal(err)
				}
				defer eng.Close()
				for _, q := range queries {
					if _, err := eng.Add(q.Bound, nil); err != nil {
						b.Fatal(err)
					}
				}
				const batchSize = 256
				batch := make([]stream.Tuple, 0, batchSize)
				var offset int64
				flush := func() {
					if len(batch) == 0 {
						return
					}
					if _, err := eng.ProcessBatch(batch); err != nil {
						b.Fatal(err)
					}
					batch = batch[:0]
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					t := d.Tuples[i%len(d.Tuples)]
					if i > 0 && i%len(d.Tuples) == 0 {
						flush() // timestamps rebase here; keep batches ordered
						offset += span
					}
					t.TS += offset
					batch = append(batch, t)
					if len(batch) == batchSize {
						flush()
					}
				}
				flush()
			})
		}
	}
}

// BenchmarkTable1Amortized probes the amortized insert bound of Table 1
// directly: per-tuple cost of the Δ maintenance at two window sizes
// differing 4×; the ratio reflects the O(n) dependence on window
// population.
func BenchmarkTable1Amortized(b *testing.B) {
	benchData()
	d := benchSO
	qs := workload.MustQueries(d)
	q, _ := workload.ByName(qs, "Q2")
	span := d.Tuples[len(d.Tuples)-1].TS + 1
	for _, tc := range []struct {
		name string
		size int64
	}{
		{"smallWindow", span / 32},
		{"largeWindow", span / 8},
	} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			spec := window.Spec{Size: max(16, tc.size), Slide: max(1, tc.size/10)}
			engine := core.NewRAPQ(q.Bound, spec)
			replay(b, engine, d)
		})
	}
}
