package streamrpq

import (
	"math/rand"
	"strings"
	"testing"
)

func TestMultiEvaluator(t *testing.T) {
	q1 := MustCompile("knows+")
	q2 := MustCompile("knows/likes")
	m, err := NewMultiEvaluator(100, 10, q1, q2)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumQueries() != 2 {
		t.Fatalf("NumQueries = %d", m.NumQueries())
	}

	seq := []Tuple{
		{TS: 1, Src: "a", Dst: "b", Label: "knows"},
		{TS: 2, Src: "b", Dst: "c", Label: "knows"},
		{TS: 3, Src: "c", Dst: "p", Label: "likes"},
	}
	got := map[string]map[[2]string]bool{}
	for _, tu := range seq {
		results, err := m.Ingest(tu)
		if err != nil {
			t.Fatal(err)
		}
		for _, qr := range results {
			name := qr.Query.String()
			if got[name] == nil {
				got[name] = map[[2]string]bool{}
			}
			for _, match := range qr.Matches {
				got[name][[2]string{match.From, match.To}] = true
			}
		}
	}
	if !got["knows+"][[2]string{"a", "b"}] || !got["knows+"][[2]string{"a", "c"}] {
		t.Errorf("knows+ results: %v", got["knows+"])
	}
	if !got["knows/likes"][[2]string{"b", "p"}] {
		t.Errorf("knows/likes results: %v", got["knows/likes"])
	}
	if got["knows/likes"][[2]string{"a", "p"}] {
		t.Errorf("knows/likes matched a 3-hop path: %v", got["knows/likes"])
	}
	if st := m.Stats(); st.Edges != 3 {
		t.Errorf("shared graph edges = %d, want 3", st.Edges)
	}
}

func TestMultiEvaluatorOutOfOrder(t *testing.T) {
	m, err := NewMultiEvaluator(10, 1, MustCompile("a"))
	if err != nil {
		t.Fatal(err)
	}
	m.Ingest(Tuple{TS: 5, Src: "u", Dst: "v", Label: "a"})
	if _, err := m.Ingest(Tuple{TS: 4, Src: "u", Dst: "v", Label: "a"}); err == nil {
		t.Fatal("out-of-order accepted")
	}
}

func TestMultiEvaluatorBadWindow(t *testing.T) {
	if _, err := NewMultiEvaluator(0, 1, MustCompile("a")); err == nil {
		t.Fatal("invalid window accepted")
	}
}

// TestParallelEvaluatorAgrees: WithParallelism must not change results.
func TestParallelEvaluatorAgrees(t *testing.T) {
	q := MustCompile("(a/b)+")
	seqEv, err := NewEvaluator(q, WithWindow(40, 4))
	if err != nil {
		t.Fatal(err)
	}
	parEv, err := NewEvaluator(q, WithWindow(40, 4), WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(21))
	names := []string{"u0", "u1", "u2", "u3", "u4", "u5", "u6", "u7"}
	seqGot := map[[2]string]bool{}
	parGot := map[[2]string]bool{}
	ts := int64(0)
	for i := 0; i < 600; i++ {
		ts += rng.Int63n(3)
		tu := Tuple{
			TS:    ts,
			Src:   names[rng.Intn(len(names))],
			Dst:   names[rng.Intn(len(names))],
			Label: []string{"a", "b"}[rng.Intn(2)],
		}
		for _, m := range seqEv.MustIngest(tu) {
			seqGot[[2]string{m.From, m.To}] = true
		}
		for _, m := range parEv.MustIngest(tu) {
			parGot[[2]string{m.From, m.To}] = true
		}
	}
	if len(seqGot) != len(parGot) {
		t.Fatalf("sequential %d pairs, parallel %d pairs", len(seqGot), len(parGot))
	}
	for p := range seqGot {
		if !parGot[p] {
			t.Fatalf("pair %v missing from parallel run", p)
		}
	}
}

func TestParallelSimpleRejected(t *testing.T) {
	_, err := NewEvaluator(MustCompile("a*"), WithSemantics(Simple), WithParallelism(2))
	if err == nil || !strings.Contains(err.Error(), "Parallelism") {
		t.Fatalf("err = %v", err)
	}
}

// TestSlackReordersTuples: with WithSlack the evaluator accepts
// bounded disorder and produces the same results as an ordered run.
func TestSlackReordersTuples(t *testing.T) {
	q := MustCompile("a/b")
	ordered, _ := NewEvaluator(q, WithWindow(50, 5))
	slacked, _ := NewEvaluator(q, WithWindow(50, 5), WithSlack(10))

	orderedSeq := []Tuple{
		{TS: 1, Src: "x", Dst: "y", Label: "a"},
		{TS: 3, Src: "y", Dst: "z", Label: "b"},
		{TS: 5, Src: "z", Dst: "w", Label: "a"},
		{TS: 7, Src: "w", Dst: "v", Label: "b"},
	}
	shuffled := []Tuple{orderedSeq[1], orderedSeq[0], orderedSeq[3], orderedSeq[2]}

	collect := func(ev *Evaluator, seq []Tuple) map[[2]string]bool {
		out := map[[2]string]bool{}
		for _, tu := range seq {
			for _, m := range ev.MustIngest(tu) {
				out[[2]string{m.From, m.To}] = true
			}
		}
		for _, m := range ev.Flush() {
			out[[2]string{m.From, m.To}] = true
		}
		return out
	}
	want := collect(ordered, orderedSeq)
	got := collect(slacked, shuffled)
	if len(want) != len(got) {
		t.Fatalf("ordered %v, slacked %v", want, got)
	}
	for p := range want {
		if !got[p] {
			t.Fatalf("pair %v missing from slacked run", p)
		}
	}
}

func TestSlackLateTupleRejected(t *testing.T) {
	ev, _ := NewEvaluator(MustCompile("a"), WithWindow(50, 5), WithSlack(2))
	ev.MustIngest(Tuple{TS: 10, Src: "u", Dst: "v", Label: "a"}) // watermark 8
	if _, err := ev.Ingest(Tuple{TS: 7, Src: "u", Dst: "v", Label: "a"}); err == nil {
		t.Fatal("late tuple accepted")
	}
}

func TestFlushWithoutSlack(t *testing.T) {
	ev, _ := NewEvaluator(MustCompile("a"), WithWindow(10, 1))
	if ms := ev.Flush(); len(ms) != 0 {
		t.Fatalf("Flush without slack returned %v", ms)
	}
}
