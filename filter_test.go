package streamrpq

import "testing"

func TestEdgeFilterRejects(t *testing.T) {
	ev, err := NewEvaluator(MustCompile("pays/pays"),
		WithWindow(100, 10),
		WithEdgeFilter(func(tu Tuple) bool { return tu.Props["amount"] == "big" }))
	if err != nil {
		t.Fatal(err)
	}
	big := map[string]string{"amount": "big"}
	small := map[string]string{"amount": "small"}

	ev.MustIngest(Tuple{TS: 1, Src: "a", Dst: "b", Label: "pays", Props: big})
	// The small middle hop is filtered, so no 2-hop result may form.
	ev.MustIngest(Tuple{TS: 2, Src: "b", Dst: "c", Label: "pays", Props: small})
	ms := ev.MustIngest(Tuple{TS: 3, Src: "b", Dst: "d", Label: "pays", Props: big})
	found := map[[2]string]bool{}
	for _, m := range ms {
		found[[2]string{m.From, m.To}] = true
	}
	if !found[[2]string{"a", "d"}] {
		t.Errorf("a->d missing: %v", found)
	}
	if found[[2]string{"a", "c"}] {
		t.Errorf("a->c formed through a filtered edge")
	}
}

func TestEdgeFilterAdvancesClock(t *testing.T) {
	ev, _ := NewEvaluator(MustCompile("a/a"),
		WithWindow(5, 1),
		WithEdgeFilter(func(tu Tuple) bool { return tu.Props["keep"] == "y" }))
	keep := map[string]string{"keep": "y"}
	drop := map[string]string{"keep": "n"}

	ev.MustIngest(Tuple{TS: 1, Src: "a", Dst: "b", Label: "a", Props: keep})
	// Filtered tuples far in the future must still expire the window.
	ev.MustIngest(Tuple{TS: 50, Src: "x", Dst: "y", Label: "a", Props: drop})
	ms := ev.MustIngest(Tuple{TS: 51, Src: "b", Dst: "c", Label: "a", Props: keep})
	if len(ms) != 0 {
		t.Fatalf("expired edge produced results: %v", ms)
	}
	if st := ev.Stats(); st.Edges > 1 {
		t.Fatalf("window holds %d edges; the t=1 edge should have expired", st.Edges)
	}
}

func TestEdgeFilterExemptsDeletions(t *testing.T) {
	retracted := 0
	ev, _ := NewEvaluator(MustCompile("a"),
		WithWindow(100, 10),
		WithEdgeFilter(func(tu Tuple) bool { return tu.Props["keep"] == "y" }),
		WithOnInvalidate(func(Match) { retracted++ }))
	ev.MustIngest(Tuple{TS: 1, Src: "u", Dst: "v", Label: "a", Props: map[string]string{"keep": "y"}})
	// The deletion carries no props; the filter must not block it.
	ev.MustIngest(Tuple{TS: 2, Src: "u", Dst: "v", Label: "a", Delete: true})
	if retracted != 1 {
		t.Fatalf("retracted = %d, want 1", retracted)
	}
}
