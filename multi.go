package streamrpq

import (
	"fmt"

	"streamrpq/internal/automaton"
	"streamrpq/internal/core"
	"streamrpq/internal/shard"
	"streamrpq/internal/stream"
	"streamrpq/internal/window"
)

// MultiEvaluator runs several persistent RPQs over one streaming
// graph, storing the window content once and routing each tuple only
// to the queries whose alphabet contains its label (the multi-query
// sharing of the paper's future-work section).
//
// All queries share one window specification and one vertex/label
// dictionary. Register queries with NewMultiEvaluator; optionally call
// WithShards to partition them over concurrent worker shards, then
// stream tuples through Ingest or IngestBatch. Call Close when done
// (required to release worker goroutines once WithShards was used).
type MultiEvaluator struct {
	vertices *stream.Dict
	labels   *stream.Dict
	spec     window.Spec
	multi    *core.Multi   // sequential backend (default)
	sharded  *shard.Engine // concurrent backend (after WithShards)
	depth    int           // pipeline depth for the sharded backend (0 = engine default)
	writers  int           // epoch-construction writers for the sharded backend (0 = engine default)
	queries  []*multiMember
	persist  *persistState // nil unless WithPersistence/Recover was used
	lastTS   int64
	started  bool
	dynamic  bool   // EnableDynamicQueries: online add/remove allowed
	sharing  bool   // multi-query sharing: isomorphic automata share one Δ index
	batches  uint64 // batches applied (without persistence; see AppliedBatches)
}

type multiMember struct {
	query    *Query
	bound    *automaton.Bound
	eng      *core.RAPQ // sequential backend engine (nil with a sharded backend)
	removed  bool       // tombstone: RemoveQuery keeps indices stable
	batch    []Match    // per-Ingest scratch of the sequential backend
	invBatch []Match    // per-Ingest invalidation scratch
}

// QueryResult couples one registered query with the matches the last
// Ingest produced for it, plus the previously reported results an
// explicit deletion retracted. Both streams are deterministic: the full
// result sequence, invalidations included, is a pure function of the
// input stream (see README "Determinism & deletions").
type QueryResult struct {
	Query         *Query
	Matches       []Match
	Invalidations []Match // results retracted by an explicit deletion
}

// BatchResult couples one registered query with the matches (and
// deletion-triggered invalidations) one tuple of an IngestBatch
// produced for it. Tuple is the index into the ingested batch.
type BatchResult struct {
	Tuple         int
	Query         *Query
	Matches       []Match
	Invalidations []Match // results retracted by an explicit deletion
}

// NewMultiEvaluator creates a shared evaluator. Register the queries,
// then stream tuples through Ingest.
func NewMultiEvaluator(size, slide int64, queries ...*Query) (*MultiEvaluator, error) {
	spec := window.Spec{Size: size, Slide: slide}
	multi, err := core.NewMulti(spec)
	if err != nil {
		return nil, err
	}
	m := &MultiEvaluator{
		vertices: stream.NewDict(),
		labels:   stream.NewDict(),
		spec:     spec,
		multi:    multi,
		sharing:  true,
	}
	// The shared dense label space is the union of all query
	// alphabets; it must be fixed before binding any member.
	for _, q := range queries {
		for _, l := range q.Alphabet() {
			m.labels.ID(l)
		}
	}
	for _, q := range queries {
		if err := m.addQuery(q); err != nil {
			return nil, err
		}
	}
	return m, nil
}

func (m *MultiEvaluator) addQuery(q *Query) error {
	member := &multiMember{query: q}
	member.bound = q.dfa.Bind(func(s string) int {
		id, ok := m.labels.Lookup(s)
		if !ok {
			return -1
		}
		return id
	}, m.labels.Len())
	e, err := m.multi.Add(member.bound, core.WithSink(m.memberSink(member)))
	if err != nil {
		return err
	}
	member.eng = e
	m.queries = append(m.queries, member)
	return nil
}

// memberSink builds the sequential-backend sink that collects one
// member's per-tuple emissions into its scratch slices.
func (m *MultiEvaluator) memberSink(member *multiMember) core.FuncSink {
	return core.FuncSink{
		Match: func(cm core.Match) {
			member.batch = append(member.batch, m.decode(cm))
		},
		Invalidate: func(cm core.Match) {
			member.invBatch = append(member.invBatch, m.decode(cm))
		},
	}
}

func (m *MultiEvaluator) decode(cm core.Match) Match {
	return Match{
		From: m.vertices.Name(int(cm.From)),
		To:   m.vertices.Name(int(cm.To)),
		TS:   cm.TS,
	}
}

// WithShards partitions the registered queries over n concurrent
// worker shards (see internal/shard): each shard owns its queries' Δ
// indexes and updates them on its own goroutine, while the snapshot
// graph and window advance once per batch. Must be called before the
// first Ingest. With sharding enabled the per-query match order within
// one tuple is canonical ((From, To, TS)-sorted), so runs are exactly
// reproducible; semantics are otherwise unchanged. Call Close when the
// evaluator is no longer needed.
func (m *MultiEvaluator) WithShards(n int) error {
	if m.started {
		return fmt.Errorf("streamrpq: WithShards after processing started")
	}
	if m.persist != nil {
		return fmt.Errorf("streamrpq: WithShards after WithPersistence (choose the shard count first: it is recorded in the checkpoint metadata)")
	}
	opts := []shard.Option{shard.WithShards(n), shard.WithSharing(m.sharing)}
	if m.depth > 0 {
		opts = append(opts, shard.WithPipelineDepth(m.depth))
	}
	if m.writers > 0 {
		opts = append(opts, shard.WithWriters(m.writers))
	}
	eng, err := shard.New(m.spec, opts...)
	if err != nil {
		return err
	}
	if m.dynamic {
		if err := eng.SetRetainAll(true); err != nil {
			eng.Close()
			return err
		}
	}
	// Re-register every slot — including removed ones, which are added
	// and immediately tombstoned — so facade indices stay engine indices.
	for i, member := range m.queries {
		if _, err := eng.Add(member.bound, nil); err != nil {
			eng.Close()
			return err
		}
		if member.removed {
			if err := eng.RemoveDynamic(i); err != nil {
				eng.Close()
				return err
			}
		}
		member.eng = nil // emissions now flow through the shard merge
	}
	if m.sharded != nil {
		m.sharded.Close()
	}
	m.sharded = eng
	m.multi = nil
	return nil
}

// WithQuerySharing switches multi-query sharing on or off (default
// on). With sharing on, queries whose bound automata are structurally
// identical — including syntactically different but equivalent
// patterns, which minimization canonicalizes — share ONE Δ-index tree
// set, maintained once per tuple; each registered query still receives
// its own complete result stream, byte-identical to what a private
// copy would emit. Off restores one private engine per query (the
// pre-sharing layout, useful for ablation). Must be called before the
// first tuple; the setting is recorded in checkpoints and survives
// recovery.
func (m *MultiEvaluator) WithQuerySharing(on bool) error {
	if m.started {
		return fmt.Errorf("streamrpq: WithQuerySharing after processing started")
	}
	if m.persist != nil {
		return fmt.Errorf("streamrpq: WithQuerySharing after WithPersistence (configure the engine before enabling durability)")
	}
	if on == m.sharing {
		return nil
	}
	m.sharing = on
	if m.sharded != nil {
		// Rebuild the sharded backend with the new grouping.
		return m.WithShards(m.sharded.NumShards())
	}
	if err := m.multi.SetSharing(on); err != nil {
		return fmt.Errorf("streamrpq: %w", err)
	}
	// SetSharing regroups every slot onto fresh engines; refresh the
	// members' engine handles from their registration slots.
	for i, member := range m.queries {
		if !member.removed {
			member.eng = m.multi.EngineAt(i)
		}
	}
	return nil
}

// QuerySharing reports whether multi-query sharing is enabled.
func (m *MultiEvaluator) QuerySharing() bool { return m.sharing }

// WithPipelineDepth bounds how many sub-batches the sharded backend
// may run ahead of its slowest shard (see shard.WithPipelineDepth;
// engine default 2). Depth 1 selects the fully barriered coordinator —
// graph and window advance only between sub-batch fan-outs — and
// reproduces its results exactly; depth ≥ 2 overlaps epoch k+1's
// graph mutations with epoch k's fan-out on the epoch-versioned
// snapshot graph. Call before the first tuple, in any order with
// WithShards; without WithShards the sequential backend ignores it.
func (m *MultiEvaluator) WithPipelineDepth(n int) error {
	if m.started {
		return fmt.Errorf("streamrpq: WithPipelineDepth after processing started")
	}
	if m.persist != nil {
		return fmt.Errorf("streamrpq: WithPipelineDepth after WithPersistence (configure the engine before enabling durability)")
	}
	if n <= 0 {
		return fmt.Errorf("streamrpq: pipeline depth must be positive, got %d", n)
	}
	m.depth = n
	if m.sharded != nil {
		// Rebuild the sharded backend with the new depth.
		return m.WithShards(m.sharded.NumShards())
	}
	return nil
}

// PipelineDepth returns the sharded backend's pipeline depth (0 while
// the sequential backend is active).
func (m *MultiEvaluator) PipelineDepth() int {
	if m.sharded == nil {
		return 0
	}
	return m.sharded.PipelineDepth()
}

// WithWriters sets how many writer goroutines the sharded backend uses
// to build each epoch's graph mutations (see shard.WithWriters; engine
// default 1). Mutations are planned serially, partitioned by vertex
// stripe, and applied concurrently before each sub-batch is
// dispatched; the result stream is byte-identical at every writer
// count, so this is purely a throughput knob. Call before the first
// tuple, in any order with WithShards and WithPipelineDepth; without
// WithShards the sequential backend ignores it.
func (m *MultiEvaluator) WithWriters(n int) error {
	if m.started {
		return fmt.Errorf("streamrpq: WithWriters after processing started")
	}
	if m.persist != nil {
		return fmt.Errorf("streamrpq: WithWriters after WithPersistence (configure the engine before enabling durability)")
	}
	if n <= 0 {
		return fmt.Errorf("streamrpq: writer count must be positive, got %d", n)
	}
	m.writers = n
	if m.sharded != nil {
		// Rebuild the sharded backend with the new writer count.
		return m.WithShards(m.sharded.NumShards())
	}
	return nil
}

// Writers returns the sharded backend's epoch-construction writer
// count (0 while the sequential backend is active).
func (m *MultiEvaluator) Writers() int {
	if m.sharded == nil {
		return 0
	}
	return m.sharded.NumWriters()
}

// EnableDynamicQueries switches the evaluator to retain-all mode, the
// prerequisite for registering or removing queries mid-stream (AddQuery
// / RemoveQuery): the shared graph then stores every label — not just
// the union of the registered alphabets — so a query registered later
// can bootstrap its Δ index from the live window. Must be called before
// the first tuple; the mode survives WithShards and, with persistence,
// checkpoint/recovery.
func (m *MultiEvaluator) EnableDynamicQueries() error {
	if m.started {
		return fmt.Errorf("streamrpq: EnableDynamicQueries after processing started")
	}
	var err error
	if m.sharded != nil {
		err = m.sharded.SetRetainAll(true)
	} else {
		err = m.multi.SetRetainAll(true)
	}
	if err != nil {
		return fmt.Errorf("streamrpq: %w", err)
	}
	m.dynamic = true
	return nil
}

// DynamicQueries reports whether online registration is enabled.
func (m *MultiEvaluator) DynamicQueries() bool { return m.dynamic }

// AddQuery registers a query online, without pausing ingest, and
// returns its registration index (stable for the evaluator's lifetime;
// the id RemoveQuery and QueryByIndex take). Requires
// EnableDynamicQueries before the first tuple. The registration takes
// effect at the next batch boundary: the query's Δ index is
// bootstrapped by replaying the retained window content — with the
// sharded backend this runs on a background goroutine under an epoch
// lease while ingest continues — and from the next batch on the query
// emits exactly what it would have emitted had it been registered from
// stream start (matches already live in the window are not re-emitted).
// With persistence enabled the registration is made durable by an
// immediate synchronous checkpoint before AddQuery returns.
func (m *MultiEvaluator) AddQuery(q *Query) (int, error) {
	if !m.dynamic {
		return 0, fmt.Errorf("streamrpq: AddQuery requires EnableDynamicQueries before the first tuple")
	}
	// Grow the shared label dictionary by the new alphabet, then bind
	// against the full space (older members bounds-check beyond theirs).
	for _, l := range q.Alphabet() {
		m.labels.ID(l)
	}
	member := &multiMember{query: q}
	member.bound = q.dfa.Bind(func(s string) int {
		id, ok := m.labels.Lookup(s)
		if !ok {
			return -1
		}
		return id
	}, m.labels.Len())
	if m.sharded != nil {
		idx, err := m.sharded.AddDynamic(member.bound, nil)
		if err != nil {
			return 0, fmt.Errorf("streamrpq: %w", err)
		}
		if idx != len(m.queries) {
			return 0, fmt.Errorf("streamrpq: internal error: registration index skew (%d vs %d)", idx, len(m.queries))
		}
	} else {
		e, err := m.multi.AddDynamic(member.bound, core.WithSink(m.memberSink(member)))
		if err != nil {
			return 0, fmt.Errorf("streamrpq: %w", err)
		}
		member.eng = e
	}
	m.queries = append(m.queries, member)
	idx := len(m.queries) - 1
	if m.persist != nil {
		// A registration is durable only through a checkpoint: WAL batches
		// replayed after recovery must see the query set they were
		// evaluated under. Crash before this completes ⇒ the registration
		// is cleanly lost (no batch can have been ingested in between).
		if err := m.Checkpoint(); err != nil {
			return idx, fmt.Errorf("streamrpq: AddQuery checkpoint: %w", err)
		}
	}
	return idx, nil
}

// RemoveQuery detaches the query with the given registration index.
// The removal takes effect at the next batch boundary; surviving
// queries keep their indices. With persistence enabled the removal is
// checkpointed synchronously, like AddQuery.
func (m *MultiEvaluator) RemoveQuery(index int) error {
	if !m.dynamic {
		return fmt.Errorf("streamrpq: RemoveQuery requires EnableDynamicQueries")
	}
	if index < 0 || index >= len(m.queries) || m.queries[index].removed {
		return fmt.Errorf("streamrpq: RemoveQuery: no query with index %d", index)
	}
	member := m.queries[index]
	if m.sharded != nil {
		if err := m.sharded.RemoveDynamic(index); err != nil {
			return fmt.Errorf("streamrpq: %w", err)
		}
	} else {
		if !m.multi.RemoveIndex(index) {
			return fmt.Errorf("streamrpq: internal error: RemoveQuery: no live slot at index %d", index)
		}
	}
	member.removed = true
	member.eng = nil
	if m.persist != nil {
		if err := m.Checkpoint(); err != nil {
			return fmt.Errorf("streamrpq: RemoveQuery checkpoint: %w", err)
		}
	}
	return nil
}

// RegisteredQueries returns every registration slot in index order;
// removed queries appear as nil. The slice is a copy.
func (m *MultiEvaluator) RegisteredQueries() []*Query {
	out := make([]*Query, len(m.queries))
	for i, member := range m.queries {
		if !member.removed {
			out[i] = member.query
		}
	}
	return out
}

// Persistent reports whether durability is enabled (WithPersistence or
// Recover).
func (m *MultiEvaluator) Persistent() bool { return m.persist != nil }

// QueryByIndex returns the query registered under the given index, or
// nil if the index is out of range or the query was removed.
func (m *MultiEvaluator) QueryByIndex(index int) *Query {
	if index < 0 || index >= len(m.queries) || m.queries[index].removed {
		return nil
	}
	return m.queries[index].query
}

// AppliedBatches counts the batches the evaluator has applied (with
// persistence: committed). It is the coarse component of a resume
// token — results of batch n carry sequence positions (n, i) with i
// the result's rank within the batch's deterministic merge order.
func (m *MultiEvaluator) AppliedBatches() uint64 {
	if m.persist != nil {
		return m.persist.appliedBatches
	}
	return m.batches
}

// Err returns the sharded backend's sticky error (a recovered shard
// fault that poisoned the engine), or nil with the sequential backend.
func (m *MultiEvaluator) Err() error {
	if m.sharded != nil {
		return m.sharded.Err()
	}
	return nil
}

// NumQueries returns the number of live (non-removed) queries.
func (m *MultiEvaluator) NumQueries() int {
	n := 0
	for _, member := range m.queries {
		if !member.removed {
			n++
		}
	}
	return n
}

// NumShards returns the shard count (1 until WithShards is called).
func (m *MultiEvaluator) NumShards() int {
	if m.sharded != nil {
		return m.sharded.NumShards()
	}
	return 1
}

// Close releases the shard worker goroutines and closes the
// persistence WAL (when enabled). It reports the sharded backend's
// sticky error (a recovered shard fault that poisoned the engine), if
// any, or a WAL-close failure. It is idempotent.
func (m *MultiEvaluator) Close() error {
	var err error
	if m.sharded != nil {
		err = m.sharded.Close()
	}
	if m.persist != nil {
		if cerr := m.persist.mgr.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

func (m *MultiEvaluator) encode(t Tuple) stream.Tuple {
	op := stream.Insert
	if t.Delete {
		op = stream.Delete
	}
	return stream.Tuple{
		TS:    t.TS,
		Src:   stream.VertexID(m.vertices.ID(t.Src)),
		Dst:   stream.VertexID(m.vertices.ID(t.Dst)),
		Label: stream.LabelID(m.labels.ID(t.Label)),
		Op:    op,
	}
}

// Ingest consumes one tuple and returns, per registered query, the
// matches it produced (queries with no new matches are omitted). The
// returned slices are reused by the next call. With persistence enabled
// the tuple is logged (and its results committed) as a batch of one.
func (m *MultiEvaluator) Ingest(t Tuple) ([]QueryResult, error) {
	if m.persist != nil {
		brs, err := m.IngestBatch([]Tuple{t})
		if err != nil {
			return nil, err
		}
		out := make([]QueryResult, 0, len(brs))
		for _, br := range brs {
			out = append(out, QueryResult{Query: br.Query, Matches: br.Matches})
		}
		return out, nil
	}
	if m.started && t.TS < m.lastTS {
		return nil, fmt.Errorf("streamrpq: out-of-order tuple: ts %d after %d", t.TS, m.lastTS)
	}
	m.started = true
	m.lastTS = t.TS

	if m.sharded != nil {
		results, err := m.sharded.ProcessBatch([]stream.Tuple{m.encode(t)})
		if err != nil {
			return nil, fmt.Errorf("streamrpq: %w", err)
		}
		m.batches++
		var out []QueryResult
		for _, r := range results {
			match := m.decode(r.Match)
			q := m.queries[r.Query].query
			if n := len(out); n == 0 || out[n-1].Query != q {
				out = append(out, QueryResult{Query: q})
			}
			qr := &out[len(out)-1]
			if r.Invalidated {
				qr.Invalidations = append(qr.Invalidations, match)
			} else {
				qr.Matches = append(qr.Matches, match)
			}
		}
		return out, nil
	}

	for _, member := range m.queries {
		member.batch = member.batch[:0]
		member.invBatch = member.invBatch[:0]
	}
	m.multi.Process(m.encode(t))
	m.batches++
	var out []QueryResult
	for _, member := range m.queries {
		if member.removed {
			continue
		}
		if len(member.batch) > 0 || len(member.invBatch) > 0 {
			out = append(out, QueryResult{Query: member.query, Matches: member.batch, Invalidations: member.invBatch})
		}
	}
	return out, nil
}

// IngestBatch consumes a batch of tuples (timestamps non-decreasing,
// continuing from previous calls) and returns the matches grouped by
// (tuple, query), ordered by tuple index and then query registration
// order. With a sharded backend the whole batch is evaluated with one
// coordinated fan-out per sub-batch, which is where the multicore
// throughput comes from; with the sequential backend it is equivalent
// to calling Ingest in a loop.
func (m *MultiEvaluator) IngestBatch(tuples []Tuple) ([]BatchResult, error) {
	// Validate the whole batch up front — against the stream clock and
	// internally — so a rejected batch leaves no partial engine state.
	last, checking := m.lastTS, m.started
	for _, t := range tuples {
		if checking && t.TS < last {
			return nil, fmt.Errorf("streamrpq: out-of-order tuple: ts %d after %d", t.TS, last)
		}
		last, checking = t.TS, true
	}
	if len(tuples) == 0 {
		return nil, nil
	}
	if m.persist != nil {
		if err := m.persist.pendingError(); err != nil {
			return nil, err
		}
	}
	encoded := make([]stream.Tuple, len(tuples))
	for i, t := range tuples {
		encoded[i] = m.encode(t)
	}
	if m.persist != nil {
		if err := m.persist.appendBatch(m, encoded); err != nil {
			return nil, err
		}
	}
	out, err := m.ingestEncoded(encoded)
	if err != nil {
		return nil, err
	}
	if m.persist != nil {
		if err := m.persist.commitBatch(m, last, out); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ingestEncoded drives one validated, dictionary-encoded batch through
// the active backend and returns the grouped results. It is the shared
// inner path of IngestBatch and of WAL replay during recovery (which
// feeds logged id-tuples back in without re-encoding).
func (m *MultiEvaluator) ingestEncoded(encoded []stream.Tuple) ([]BatchResult, error) {
	if len(encoded) == 0 {
		return nil, nil
	}
	last := encoded[len(encoded)-1].TS

	if m.sharded != nil {
		results, err := m.sharded.ProcessBatch(encoded)
		if err != nil {
			return nil, fmt.Errorf("streamrpq: %w", err)
		}
		m.started = true
		m.lastTS = last
		m.batches++
		var out []BatchResult
		for _, r := range results {
			match := m.decode(r.Match)
			q := m.queries[r.Query].query
			if n := len(out); n == 0 || out[n-1].Tuple != r.Tuple || out[n-1].Query != q {
				out = append(out, BatchResult{Tuple: r.Tuple, Query: q})
			}
			br := &out[len(out)-1]
			if r.Invalidated {
				br.Invalidations = append(br.Invalidations, match)
			} else {
				br.Matches = append(br.Matches, match)
			}
		}
		return out, nil
	}

	var out []BatchResult
	for i, t := range encoded {
		for _, member := range m.queries {
			member.batch = member.batch[:0]
			member.invBatch = member.invBatch[:0]
		}
		m.multi.Process(t)
		m.started = true
		m.lastTS = t.TS
		for _, member := range m.queries {
			if member.removed {
				continue
			}
			if len(member.batch) > 0 || len(member.invBatch) > 0 {
				br := BatchResult{Tuple: i, Query: member.query}
				if len(member.batch) > 0 {
					br.Matches = append([]Match(nil), member.batch...)
				}
				if len(member.invBatch) > 0 {
					br.Invalidations = append([]Match(nil), member.invBatch...)
				}
				out = append(out, br)
			}
		}
	}
	m.batches++
	return out, nil
}

// Stats aggregates engine statistics across queries; graph sizes
// describe the shared window content.
func (m *MultiEvaluator) Stats() Stats {
	if m.sharded != nil {
		return m.sharded.Stats()
	}
	return m.multi.Stats()
}

// ShardStats reports, per shard, the aggregated statistics of the
// queries it owns. It returns nil until WithShards is called.
func (m *MultiEvaluator) ShardStats() []Stats {
	if m.sharded == nil {
		return nil
	}
	return m.sharded.ShardStats()
}
