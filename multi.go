package streamrpq

import (
	"fmt"

	"streamrpq/internal/core"
	"streamrpq/internal/stream"
	"streamrpq/internal/window"
)

// MultiEvaluator runs several persistent RPQs over one streaming
// graph, storing the window content once and routing each tuple only
// to the queries whose alphabet contains its label (the multi-query
// sharing of the paper's future-work section).
//
// All queries share one window specification and one vertex/label
// dictionary. Register queries with AddQuery before the first Ingest.
type MultiEvaluator struct {
	vertices *stream.Dict
	labels   *stream.Dict
	multi    *core.Multi
	queries  []*multiMember
	lastTS   int64
	started  bool
}

type multiMember struct {
	query *Query
	batch []Match
}

// QueryResult couples one registered query with the matches the last
// Ingest produced for it.
type QueryResult struct {
	Query   *Query
	Matches []Match
}

// NewMultiEvaluator creates a shared evaluator. Register the queries,
// then stream tuples through Ingest.
func NewMultiEvaluator(size, slide int64, queries ...*Query) (*MultiEvaluator, error) {
	spec := window.Spec{Size: size, Slide: slide}
	multi, err := core.NewMulti(spec)
	if err != nil {
		return nil, err
	}
	m := &MultiEvaluator{
		vertices: stream.NewDict(),
		labels:   stream.NewDict(),
		multi:    multi,
	}
	// The shared dense label space is the union of all query
	// alphabets; it must be fixed before binding any member.
	for _, q := range queries {
		for _, l := range q.Alphabet() {
			m.labels.ID(l)
		}
	}
	for _, q := range queries {
		if err := m.addQuery(q); err != nil {
			return nil, err
		}
	}
	return m, nil
}

func (m *MultiEvaluator) addQuery(q *Query) error {
	member := &multiMember{query: q}
	bound := q.dfa.Bind(func(s string) int {
		id, ok := m.labels.Lookup(s)
		if !ok {
			return -1
		}
		return id
	}, m.labels.Len())
	sink := core.FuncSink{
		Match: func(cm core.Match) {
			member.batch = append(member.batch, Match{
				From: m.vertices.Name(int(cm.From)),
				To:   m.vertices.Name(int(cm.To)),
				TS:   cm.TS,
			})
		},
	}
	if _, err := m.multi.Add(bound, core.WithSink(sink)); err != nil {
		return err
	}
	m.queries = append(m.queries, member)
	return nil
}

// NumQueries returns the number of registered queries.
func (m *MultiEvaluator) NumQueries() int { return len(m.queries) }

// Ingest consumes one tuple and returns, per registered query, the
// matches it produced (queries with no new matches are omitted).
func (m *MultiEvaluator) Ingest(t Tuple) ([]QueryResult, error) {
	if m.started && t.TS < m.lastTS {
		return nil, fmt.Errorf("streamrpq: out-of-order tuple: ts %d after %d", t.TS, m.lastTS)
	}
	m.started = true
	m.lastTS = t.TS

	for _, member := range m.queries {
		member.batch = member.batch[:0]
	}
	op := stream.Insert
	if t.Delete {
		op = stream.Delete
	}
	m.multi.Process(stream.Tuple{
		TS:    t.TS,
		Src:   stream.VertexID(m.vertices.ID(t.Src)),
		Dst:   stream.VertexID(m.vertices.ID(t.Dst)),
		Label: stream.LabelID(m.labels.ID(t.Label)),
		Op:    op,
	})
	var out []QueryResult
	for _, member := range m.queries {
		if len(member.batch) > 0 {
			out = append(out, QueryResult{Query: member.query, Matches: member.batch})
		}
	}
	return out, nil
}

// Stats aggregates engine statistics across queries; graph sizes
// describe the shared window content.
func (m *MultiEvaluator) Stats() Stats { return m.multi.Stats() }
