// Package streamrpq evaluates persistent Regular Path Queries (RPQs)
// over sliding windows of streaming graphs.
//
// It implements the incremental algorithms of Pacaci, Bonifati and
// Özsu, "Regular Path Query Evaluation on Streaming Graphs" (SIGMOD
// 2020), under both arbitrary and simple path semantics, for
// append-only streams and streams with explicit deletions.
//
// Quick start:
//
//	q, err := streamrpq.Compile("(follows/mentions)+")
//	ev, err := streamrpq.NewEvaluator(q,
//	        streamrpq.WithWindow(15, 1),
//	        streamrpq.WithSemantics(streamrpq.Arbitrary))
//	matches := ev.Ingest(streamrpq.Tuple{TS: 4, Src: "y", Dst: "u", Label: "mentions"})
//
// Ingest consumes one streaming graph tuple at a time (timestamps must
// be non-decreasing) and returns the result pairs newly discovered by
// that tuple. Under the implicit-window model the result stream is
// append-only: results are never retracted by window movement, only by
// explicit deletions (reported through WithOnInvalidate).
package streamrpq

import (
	"fmt"

	"streamrpq/internal/automaton"
	"streamrpq/internal/core"
	"streamrpq/internal/pattern"
	"streamrpq/internal/stream"
	"streamrpq/internal/window"
)

// Semantics selects the path semantics of query evaluation (§1 of the
// paper).
type Semantics int

const (
	// Arbitrary path semantics: a path may traverse the same vertex
	// multiple times. Evaluation is polynomial (Algorithm RAPQ).
	Arbitrary Semantics = iota
	// Simple path semantics: a path must not repeat vertices.
	// Evaluation is NP-hard in general but efficient in the absence of
	// conflicts (Algorithm RSPQ).
	Simple
)

func (s Semantics) String() string {
	if s == Simple {
		return "simple"
	}
	return "arbitrary"
}

// Query is a compiled RPQ: the regular expression parsed, converted to
// an NFA via Thompson's construction, determinized, and minimized with
// Hopcroft's algorithm.
type Query struct {
	src  string
	expr *pattern.Expr
	dfa  *automaton.DFA
}

// Compile parses and compiles an RPQ regular expression.
//
// Syntax: labels are identifiers; '/' (or juxtaposition) concatenates,
// '|' alternates, postfix '*', '+', '?' have their usual meanings, and
// '()' denotes the empty word. Example: "knows/(likes|follows)*".
func Compile(expr string) (*Query, error) {
	e, err := pattern.Parse(expr)
	if err != nil {
		return nil, err
	}
	e = pattern.Simplify(e) // language-preserving normalization
	return &Query{src: expr, expr: e, dfa: automaton.Compile(e)}, nil
}

// MustCompile is like Compile but panics on error.
func MustCompile(expr string) *Query {
	q, err := Compile(expr)
	if err != nil {
		panic(err)
	}
	return q
}

// String returns the original expression text.
func (q *Query) String() string { return q.src }

// Alphabet returns the sorted edge labels the query mentions; tuples
// with other labels are dropped on ingest.
func (q *Query) Alphabet() []string { return q.expr.Alphabet() }

// NumStates returns the number of states k of the minimal DFA, the
// parameter in the complexity bounds of Table 1.
func (q *Query) NumStates() int { return q.dfa.NumStates() }

// Size returns the query size |Q| as defined in §5.1.2: the number of
// labels plus the number of '*' and '+' occurrences.
func (q *Query) Size() int { return q.expr.Size() }

// ConflictFreeEverywhere reports whether the query's automaton has the
// suffix-language containment property (Definition 15), which
// guarantees conflict-freedom — and hence polynomial evaluation under
// simple path semantics — on every graph.
func (q *Query) ConflictFreeEverywhere() bool { return q.dfa.HasContainmentProperty() }

// Tuple is one streaming graph edge event. Vertices and labels are
// strings; the evaluator dictionary-encodes them internally.
//
// Props carries optional edge attributes for the property-graph model
// (the paper's future-work direction §7(i)). The engines do not
// inspect them; install a WithEdgeFilter to evaluate attribute-based
// predicates at the ingestion boundary.
type Tuple struct {
	TS     int64             // application timestamp, non-decreasing across Ingest calls
	Src    string            // source vertex
	Dst    string            // destination vertex
	Label  string            // edge label
	Delete bool              // true marks an explicit deletion (a negative tuple)
	Props  map[string]string // optional edge attributes
}

// Match is one result of the persistent query: From and To are
// connected by a path satisfying the query whose edges all fit in one
// window. TS is the discovery (or retraction) time.
type Match struct {
	From string
	To   string
	TS   int64
}

// Stats reports engine-internal sizes and counters; see core.Stats for
// field documentation.
type Stats = core.Stats

type evalConfig struct {
	size         int64
	slide        int64
	semantics    Semantics
	onInvalidate func(Match)
	maxExtends   int64
	workers      int
	slack        int64
	filter       func(Tuple) bool
}

// Option configures an Evaluator.
type Option func(*evalConfig)

// WithWindow sets the sliding window: size is |W| and slide is the
// expiry interval β, both in the stream's time units. The default is
// size 1000, slide 1 (eager expiry).
func WithWindow(size, slide int64) Option {
	return func(c *evalConfig) { c.size, c.slide = size, slide }
}

// WithSemantics selects arbitrary (default) or simple path semantics.
func WithSemantics(s Semantics) Option {
	return func(c *evalConfig) { c.semantics = s }
}

// WithOnInvalidate registers a callback for results retracted by
// explicit deletions. Window expiry never retracts results (implicit
// window model).
func WithOnInvalidate(f func(Match)) Option {
	return func(c *evalConfig) { c.onInvalidate = f }
}

// WithMaxExtends bounds the per-tuple work of the simple-path engine
// on conflict-heavy inputs (the NP-hard case); 0 means unlimited.
// Ignored under arbitrary semantics.
func WithMaxExtends(n int64) Option {
	return func(c *evalConfig) { c.maxExtends = n }
}

// WithParallelism enables the intra-query tree parallelism of the
// paper's prototype (§5.1.1): per-tuple spanning-tree updates and
// window expiry fan out over a worker pool. workers ≤ 0 uses
// GOMAXPROCS. Only supported under Arbitrary semantics.
func WithParallelism(workers int) Option {
	return func(c *evalConfig) {
		c.workers = workers
		if c.workers <= 0 {
			c.workers = -1 // sentinel: GOMAXPROCS
		}
	}
}

// WithEdgeFilter installs an attribute predicate evaluated before a
// tuple reaches the engine: tuples for which f returns false are
// ignored entirely (as if their label were outside the query
// alphabet). Deletions are exempt — an explicit deletion must reach
// the engine even if the filter would now reject the edge's
// attributes. This is predicate pushdown for the property-graph model
// of the paper's future work (§7(i)): path constraints stay in the
// RPQ, attribute constraints run here.
func WithEdgeFilter(f func(Tuple) bool) Option {
	return func(c *evalConfig) { c.filter = f }
}

// WithSlack tolerates out-of-order tuples up to slack time units: the
// evaluator buffers arrivals and processes them in timestamp order
// once the watermark (max timestamp seen minus slack) passes them.
// Tuples older than the watermark are rejected by Ingest. Call Flush
// at end-of-stream to drain the buffer.
func WithSlack(slack int64) Option {
	return func(c *evalConfig) { c.slack = slack }
}

// Evaluator is a persistent RPQ evaluator over a streaming graph.
// It is not safe for concurrent use.
type Evaluator struct {
	query     *Query
	semantics Semantics
	vertices  *stream.Dict
	labels    *stream.Dict
	engine    core.Engine
	reorder   *stream.Reorder  // nil unless WithSlack was given
	filter    func(Tuple) bool // nil unless WithEdgeFilter was given

	batch   []Match // matches produced by the current Ingest call
	onInval func(Match)
	lastTS  int64
	started bool
}

// NewEvaluator creates an evaluator for the compiled query.
func NewEvaluator(q *Query, opts ...Option) (*Evaluator, error) {
	cfg := evalConfig{size: 1000, slide: 1, semantics: Arbitrary}
	for _, o := range opts {
		o(&cfg)
	}
	spec := window.Spec{Size: cfg.size, Slide: cfg.slide}
	if err := spec.Validate(); err != nil {
		return nil, err
	}

	ev := &Evaluator{
		query:     q,
		semantics: cfg.semantics,
		vertices:  stream.NewDict(),
		labels:    stream.NewDict(),
	}
	// Pre-intern the query alphabet so the bound automaton's dense
	// label space covers exactly ΣQ; stream labels outside it receive
	// larger ids and are dropped by the engines.
	for _, l := range q.Alphabet() {
		ev.labels.ID(l)
	}
	bound := q.dfa.Bind(func(s string) int {
		id, ok := ev.labels.Lookup(s)
		if !ok {
			return -1
		}
		return id
	}, ev.labels.Len())

	sink := core.FuncSink{
		Match: func(m core.Match) {
			ev.batch = append(ev.batch, Match{
				From: ev.vertices.Name(int(m.From)),
				To:   ev.vertices.Name(int(m.To)),
				TS:   m.TS,
			})
		},
		Invalidate: func(m core.Match) {
			if ev.onInval != nil {
				ev.onInval(Match{
					From: ev.vertices.Name(int(m.From)),
					To:   ev.vertices.Name(int(m.To)),
					TS:   m.TS,
				})
			}
		},
	}
	ev.onInval = cfg.onInvalidate

	switch cfg.semantics {
	case Arbitrary:
		if cfg.workers != 0 {
			workers := cfg.workers
			if workers < 0 {
				workers = 0 // ParallelRAPQ resolves 0 to GOMAXPROCS
			}
			ev.engine = core.NewParallelRAPQ(bound, spec, workers, core.WithSink(sink))
		} else {
			ev.engine = core.NewRAPQ(bound, spec, core.WithSink(sink))
		}
	case Simple:
		if cfg.workers != 0 {
			return nil, fmt.Errorf("streamrpq: WithParallelism is not supported under Simple semantics")
		}
		ev.engine = core.NewRSPQ(bound, spec, core.WithSink(sink), core.WithMaxExtends(cfg.maxExtends))
	default:
		return nil, fmt.Errorf("streamrpq: unknown semantics %d", int(cfg.semantics))
	}
	if cfg.slack > 0 {
		ev.reorder = stream.NewReorder(cfg.slack)
	}
	ev.filter = cfg.filter
	return ev, nil
}

// Query returns the compiled query this evaluator runs.
func (ev *Evaluator) Query() *Query { return ev.query }

// Semantics returns the evaluator's path semantics.
func (ev *Evaluator) Semantics() Semantics { return ev.semantics }

// Ingest consumes one tuple and returns the result pairs it produced.
// Tuples must arrive in non-decreasing timestamp order unless the
// evaluator was built with WithSlack; out-of-order tuples beyond the
// tolerance are rejected with an error before touching engine state.
// The returned slice is reused by the next Ingest call.
func (ev *Evaluator) Ingest(t Tuple) ([]Match, error) {
	if ev.filter != nil && !t.Delete && !ev.filter(t) {
		// Rejected tuples still advance the stream clock (window
		// expiry must not stall); an out-of-alphabet label makes the
		// engine treat the tuple as irrelevant.
		ev.batch = ev.batch[:0]
		ev.engine.Process(stream.Tuple{TS: t.TS, Label: -1})
		ev.lastTS = t.TS
		ev.started = true
		return ev.batch, nil
	}
	encoded := ev.encode(t)
	if ev.reorder != nil {
		released, err := ev.reorder.Offer(encoded)
		if err != nil {
			return nil, err
		}
		ev.batch = ev.batch[:0]
		for _, rt := range released {
			ev.engine.Process(rt)
		}
		return ev.batch, nil
	}
	if ev.started && t.TS < ev.lastTS {
		return nil, fmt.Errorf("streamrpq: out-of-order tuple: ts %d after %d", t.TS, ev.lastTS)
	}
	ev.started = true
	ev.lastTS = t.TS
	ev.batch = ev.batch[:0]
	ev.engine.Process(encoded)
	return ev.batch, nil
}

// Flush drains the out-of-order buffer (WithSlack) at end-of-stream,
// returning any matches the buffered tuples produce. Without slack it
// is a no-op.
func (ev *Evaluator) Flush() []Match {
	ev.batch = ev.batch[:0]
	if ev.reorder == nil {
		return nil
	}
	for _, rt := range ev.reorder.Flush() {
		ev.engine.Process(rt)
	}
	return ev.batch
}

func (ev *Evaluator) encode(t Tuple) stream.Tuple {
	op := stream.Insert
	if t.Delete {
		op = stream.Delete
	}
	return stream.Tuple{
		TS:    t.TS,
		Src:   stream.VertexID(ev.vertices.ID(t.Src)),
		Dst:   stream.VertexID(ev.vertices.ID(t.Dst)),
		Label: stream.LabelID(ev.labels.ID(t.Label)),
		Op:    op,
	}
}

// MustIngest is like Ingest but panics on out-of-order input; it keeps
// examples terse.
func (ev *Evaluator) MustIngest(t Tuple) []Match {
	ms, err := ev.Ingest(t)
	if err != nil {
		panic(err)
	}
	return ms
}

// Stats returns a snapshot of the engine's internal counters (tree
// index size, expiry cost, results emitted, ...).
func (ev *Evaluator) Stats() Stats { return ev.engine.Stats() }
