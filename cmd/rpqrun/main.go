// Command rpqrun evaluates a persistent RPQ over a stream file and
// prints the result stream: one "+ from to @ts" line per discovered
// pair (and "- from to @ts" for pairs retracted by explicit deletions).
//
// Usage:
//
//	rpqgen -dataset so -edges 10000 -out so.stream
//	rpqrun -query "a2q/(c2a|c2q)*" -window 500 -slide 50 so.stream
//	rpqrun -query "knows+" -semantics simple -stats ldbc.stream
//
// rpqrun reads from stdin when no file is given.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"streamrpq"
)

func main() {
	var (
		query     = flag.String("query", "", "RPQ regular expression (required)")
		winSize   = flag.Int64("window", 1000, "window size |W| in stream time units")
		winSlide  = flag.Int64("slide", 1, "slide interval β in stream time units")
		semantics = flag.String("semantics", "arbitrary", "path semantics: arbitrary or simple")
		stats     = flag.Bool("stats", false, "print engine statistics at the end")
		quiet     = flag.Bool("quiet", false, "suppress the result stream (use with -stats)")
	)
	flag.Parse()
	if *query == "" {
		fmt.Fprintln(os.Stderr, "rpqrun: -query is required")
		os.Exit(2)
	}

	q, err := streamrpq.Compile(*query)
	if err != nil {
		fatal(err)
	}
	sem := streamrpq.Arbitrary
	switch *semantics {
	case "arbitrary":
	case "simple":
		sem = streamrpq.Simple
	default:
		fatal(fmt.Errorf("unknown semantics %q", *semantics))
	}

	ev, err := streamrpq.NewEvaluator(q,
		streamrpq.WithWindow(*winSize, *winSlide),
		streamrpq.WithSemantics(sem),
		streamrpq.WithOnInvalidate(func(m streamrpq.Match) {
			if !*quiet {
				fmt.Printf("- %s %s @%d\n", m.From, m.To, m.TS)
			}
		}))
	if err != nil {
		fatal(err)
	}

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}

	n, err := streamrpq.Replay(in, ev, func(m streamrpq.Match) {
		if !*quiet {
			fmt.Printf("+ %s %s @%d\n", m.From, m.To, m.TS)
		}
	})
	if err != nil {
		fatal(err)
	}

	if *stats {
		st := ev.Stats()
		fmt.Fprintf(os.Stderr, "tuples=%d dropped=%d results=%d invalidations=%d trees=%d nodes=%d expiry=%v\n",
			n, st.TuplesDropped, st.Results, st.Invalidations, st.Trees, st.Nodes, st.ExpiryTime)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rpqrun:", err)
	os.Exit(1)
}
