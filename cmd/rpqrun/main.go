// Command rpqrun evaluates a persistent RPQ over a stream file and
// prints the result stream: one "+ from to @ts" line per discovered
// pair (and "- from to @ts" for pairs retracted by explicit deletions).
//
// Usage:
//
//	rpqgen -dataset so -edges 10000 -out so.stream
//	rpqrun -query "a2q/(c2a|c2q)*" -window 500 -slide 50 so.stream
//	rpqrun -query "knows+" -semantics simple -stats ldbc.stream
//
// With -persist the engine checkpoints its state (window graph + Δ
// index) and write-ahead-logs every batch to the given directory, so a
// killed run can be resumed:
//
//	rpqrun -query "a2q+" -persist state/ big.stream        # kill -9 it
//	rpqrun -resume -persist state/ big.stream              # resumes mid-stream
//
// On resume the engine recovers from the latest valid checkpoint,
// replays the WAL suffix, and skips the already-applied prefix of the
// input file (the query and window come from the checkpoint metadata).
// rpqrun reads from stdin when no file is given (persisted runs need a
// file to make -resume meaningful, but stdin works for -persist too).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"streamrpq"
)

func main() {
	var (
		query     = flag.String("query", "", "RPQ regular expression (required unless -resume)")
		winSize   = flag.Int64("window", 1000, "window size |W| in stream time units")
		winSlide  = flag.Int64("slide", 1, "slide interval β in stream time units")
		semantics = flag.String("semantics", "arbitrary", "path semantics: arbitrary or simple")
		stats     = flag.Bool("stats", false, "print engine statistics at the end")
		quiet     = flag.Bool("quiet", false, "suppress the result stream (use with -stats)")
		persist   = flag.String("persist", "", "persistence directory: checkpoint + WAL the engine state")
		resume    = flag.Bool("resume", false, "recover from -persist dir and continue the stream (skips the applied prefix)")
		ckptEvery = flag.Int("checkpoint-every", 64, "with -persist: automatic checkpoint every N batches (0 = final checkpoint only)")
		batchSize = flag.Int("batch", 256, "with -persist: ingest batch size")
		fsync     = flag.Bool("fsync", false, "with -persist: fsync every WAL append and checkpoint")
	)
	flag.Parse()

	if *persist != "" {
		runPersisted(*query, *winSize, *winSlide, *semantics, *persist, *resume,
			*ckptEvery, *batchSize, *fsync, *stats, *quiet)
		return
	}
	if *resume {
		fatal(fmt.Errorf("-resume requires -persist"))
	}
	if *query == "" {
		fmt.Fprintln(os.Stderr, "rpqrun: -query is required")
		os.Exit(2)
	}

	q, err := streamrpq.Compile(*query)
	if err != nil {
		fatal(err)
	}
	sem := streamrpq.Arbitrary
	switch *semantics {
	case "arbitrary":
	case "simple":
		sem = streamrpq.Simple
	default:
		fatal(fmt.Errorf("unknown semantics %q", *semantics))
	}

	ev, err := streamrpq.NewEvaluator(q,
		streamrpq.WithWindow(*winSize, *winSlide),
		streamrpq.WithSemantics(sem),
		streamrpq.WithOnInvalidate(func(m streamrpq.Match) {
			if !*quiet {
				fmt.Printf("- %s %s @%d\n", m.From, m.To, m.TS)
			}
		}))
	if err != nil {
		fatal(err)
	}

	n, err := streamrpq.Replay(input(), ev, func(m streamrpq.Match) {
		if !*quiet {
			fmt.Printf("+ %s %s @%d\n", m.From, m.To, m.TS)
		}
	})
	if err != nil {
		fatal(err)
	}

	if *stats {
		st := ev.Stats()
		fmt.Fprintf(os.Stderr, "tuples=%d dropped=%d results=%d invalidations=%d trees=%d nodes=%d expiry=%v\n",
			n, st.TuplesDropped, st.Results, st.Invalidations, st.Trees, st.Nodes, st.ExpiryTime)
	}
}

// runPersisted is the durable evaluation path: a single-query
// MultiEvaluator (the facade that carries the persistence subsystem)
// with checkpoints and a write-ahead log under dir.
func runPersisted(query string, winSize, winSlide int64, semantics, dir string, resume bool,
	ckptEvery, batchSize int, fsync, stats, quiet bool) {
	if semantics != "arbitrary" {
		fatal(fmt.Errorf("-persist currently supports arbitrary semantics only (the multi-query engine is RAPQ-based)"))
	}
	var opts []streamrpq.PersistOption
	if ckptEvery > 0 {
		opts = append(opts, streamrpq.CheckpointEvery(ckptEvery))
	}
	if fsync {
		opts = append(opts, streamrpq.WithFsync())
	}

	emit := func(br streamrpq.BatchResult) {
		if quiet {
			return
		}
		for _, m := range br.Matches {
			fmt.Printf("+ %s %s @%d\n", m.From, m.To, m.TS)
		}
	}

	var m *streamrpq.MultiEvaluator
	var skip int64
	if resume {
		var redelivered []streamrpq.BatchResult
		var err error
		m, redelivered, err = streamrpq.Recover(dir, opts...)
		if err != nil {
			fatal(err)
		}
		skip = m.AppliedTuples()
		fmt.Fprintf(os.Stderr, "rpqrun: recovered %d queries at %d applied tuples; redelivering %d uncommitted result groups\n",
			m.NumQueries(), skip, len(redelivered))
		for _, br := range redelivered {
			emit(br)
		}
	} else {
		if query == "" {
			fmt.Fprintln(os.Stderr, "rpqrun: -query is required")
			os.Exit(2)
		}
		q, err := streamrpq.Compile(query)
		if err != nil {
			fatal(err)
		}
		m, err = streamrpq.NewMultiEvaluator(winSize, winSlide, q)
		if err != nil {
			fatal(err)
		}
		if err := m.WithPersistence(dir, opts...); err != nil {
			fatal(err)
		}
	}
	defer m.Close()

	n, err := streamrpq.ReplayMulti(input(), m, batchSize, skip, emit)
	if err != nil {
		fatal(err)
	}
	// A final checkpoint makes the next resume instant (empty WAL
	// suffix) even when -checkpoint-every never fired.
	if err := m.Checkpoint(); err != nil {
		fatal(err)
	}

	if stats {
		st := m.Stats()
		fmt.Fprintf(os.Stderr, "tuples=%d (total applied %d) dropped=%d results=%d trees=%d nodes=%d expiry=%v\n",
			n, m.AppliedTuples(), st.TuplesDropped, st.Results, st.Trees, st.Nodes, st.ExpiryTime)
	}
}

func input() io.Reader {
	if flag.NArg() == 0 {
		return os.Stdin
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	// The process exits when main returns; the descriptor is released
	// then.
	return f
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rpqrun:", err)
	os.Exit(1)
}
