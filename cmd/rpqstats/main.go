// Command rpqstats summarizes a streaming-graph file: tuple and label
// histograms, vertex counts, timestamp span and arrival rate, and the
// deletion ratio — the quantities that determine workload difficulty
// for the RPQ engines (label density and cyclicity, §5.2).
//
// Usage:
//
//	rpqgen -dataset so -edges 50000 -out so.stream
//	rpqstats so.stream
//	rpqstats < so.stream
//
// Both the text format and the binary format (SRPQ magic) are
// accepted; the format is auto-detected.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"streamrpq/internal/stream"
)

func main() {
	topN := flag.Int("top", 10, "number of most frequent labels/vertices to print")
	flag.Parse()

	var in io.Reader = os.Stdin
	name := "stdin"
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
		name = flag.Arg(0)
	}
	br := bufio.NewReader(in)

	tuples, labels, err := readAny(br)
	if err != nil {
		fatal(err)
	}
	if len(tuples) == 0 {
		fmt.Printf("%s: empty stream\n", name)
		return
	}

	var deletes int
	labelCount := map[stream.LabelID]int{}
	degree := map[stream.VertexID]int{}
	vertices := map[stream.VertexID]struct{}{}
	recip := 0
	fwd := map[[2]stream.VertexID]bool{}
	for _, t := range tuples {
		if t.Op == stream.Delete {
			deletes++
		}
		labelCount[t.Label]++
		degree[t.Src]++
		vertices[t.Src] = struct{}{}
		vertices[t.Dst] = struct{}{}
		if fwd[[2]stream.VertexID{t.Dst, t.Src}] {
			recip++
		}
		fwd[[2]stream.VertexID{t.Src, t.Dst}] = true
	}
	span := tuples[len(tuples)-1].TS - tuples[0].TS + 1

	fmt.Printf("%s:\n", name)
	fmt.Printf("  tuples:        %d (%d deletions, %.1f%%)\n",
		len(tuples), deletes, 100*float64(deletes)/float64(len(tuples)))
	fmt.Printf("  vertices:      %d\n", len(vertices))
	fmt.Printf("  labels:        %d distinct\n", len(labelCount))
	fmt.Printf("  time span:     %d units (%.1f tuples/unit)\n",
		span, float64(len(tuples))/float64(span))
	fmt.Printf("  reciprocated:  %d edge pairs (%.1f%% — cyclicity signal)\n",
		recip, 100*float64(recip)/float64(len(tuples)))

	type lc struct {
		id stream.LabelID
		n  int
	}
	var ls []lc
	for id, n := range labelCount {
		ls = append(ls, lc{id, n})
	}
	sort.Slice(ls, func(i, j int) bool { return ls[i].n > ls[j].n })
	fmt.Printf("  top labels:\n")
	for i, l := range ls {
		if i >= *topN {
			break
		}
		lname := fmt.Sprintf("label%d", l.id)
		if int(l.id) < len(labels) {
			lname = labels[l.id]
		}
		fmt.Printf("    %-24s %8d (%.1f%%)\n", lname, l.n, 100*float64(l.n)/float64(len(tuples)))
	}

	type vc struct {
		id stream.VertexID
		n  int
	}
	var vs []vc
	for id, n := range degree {
		vs = append(vs, vc{id, n})
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i].n > vs[j].n })
	fmt.Printf("  top out-degree vertices:\n")
	for i, v := range vs {
		if i >= *topN {
			break
		}
		fmt.Printf("    v%-10d %8d\n", v.id, v.n)
	}
}

// readAny sniffs the format and decodes the whole stream. Returns the
// label dictionary when the format carries one (binary header), or the
// dictionary accumulated by the text reader.
func readAny(br *bufio.Reader) ([]stream.Tuple, []string, error) {
	head, err := br.Peek(4)
	if err != nil && err != io.EOF {
		return nil, nil, err
	}
	if string(head) == "SRPQ" {
		r, err := stream.NewBinaryReader(br)
		if err != nil {
			return nil, nil, err
		}
		tuples, err := r.ReadAll()
		return tuples, r.Labels(), err
	}
	r := stream.NewReader(br, stream.NewDict(), stream.NewDict())
	tuples, err := r.ReadAll()
	return tuples, r.Labels().Names(), err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rpqstats:", err)
	os.Exit(1)
}
