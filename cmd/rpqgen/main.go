// Command rpqgen generates synthetic streaming-graph files in the text
// tuple format (one "ts src dst label [+|-]" line per tuple).
//
// Usage:
//
//	rpqgen -dataset so -edges 100000 -out so.stream
//	rpqgen -dataset yago -edges 50000 -deletions 0.05 -out yago.stream
//
// Datasets: so, ldbc, yago, gmark.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"streamrpq/internal/datasets"
	"streamrpq/internal/stream"
)

func main() {
	var (
		dataset   = flag.String("dataset", "so", "dataset family: so, ldbc, yago, gmark")
		edges     = flag.Int("edges", 100000, "number of tuples to generate")
		deletions = flag.Float64("deletions", 0, "ratio of explicit deletions (0..1)")
		seed      = flag.Int64("seed", 1, "random seed")
		out       = flag.String("out", "-", "output file ('-' for stdout)")
		format    = flag.String("format", "text", "output format: text or binary")
	)
	flag.Parse()

	var d *datasets.Dataset
	switch *dataset {
	case "so":
		cfg := datasets.DefaultSO(*edges)
		cfg.Seed = *seed
		d = datasets.SO(cfg)
	case "ldbc":
		cfg := datasets.DefaultLDBC(*edges)
		cfg.Seed = *seed
		d = datasets.LDBC(cfg)
	case "yago":
		cfg := datasets.DefaultYago(*edges)
		cfg.Seed = *seed
		d = datasets.Yago(cfg)
	case "gmark":
		cfg := datasets.DefaultGMark(*edges)
		cfg.Seed = *seed
		d = datasets.GMark(cfg)
	default:
		fmt.Fprintf(os.Stderr, "rpqgen: unknown dataset %q\n", *dataset)
		os.Exit(2)
	}
	if *deletions > 0 {
		d = d.WithDeletions(*deletions, *seed+100)
	}

	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rpqgen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	switch *format {
	case "binary":
		bw, err := stream.NewBinaryWriter(w, d.Labels)
		if err != nil {
			fatal(err)
		}
		for _, t := range d.Tuples {
			if err := bw.Write(t); err != nil {
				fatal(err)
			}
		}
		if err := bw.Flush(); err != nil {
			fatal(err)
		}
	case "text":
		bw := bufio.NewWriter(w)
		defer bw.Flush()
		fmt.Fprintf(bw, "# %s: %d tuples, labels: %v\n", d.Name, len(d.Tuples), d.Labels)
		for _, t := range d.Tuples {
			op := ""
			if t.Op == stream.Delete {
				op = " -"
			}
			fmt.Fprintf(bw, "%d v%d v%d %s%s\n", t.TS, t.Src, t.Dst, d.Labels[t.Label], op)
		}
	default:
		fmt.Fprintf(os.Stderr, "rpqgen: unknown format %q\n", *format)
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rpqgen:", err)
	os.Exit(1)
}
