// Command rpqserve runs the streaming RPQ engine as a network service:
// tuples go in over HTTP, results stream out over NDJSON
// subscriptions, and queries can be registered and removed online
// without pausing ingest (see internal/serve).
//
// Usage:
//
//	rpqserve -addr :8080 -window 1000 -slide 100 -q "knows+" -q "follows knows*"
//	rpqserve -addr :8080 -window 1000 -slide 100 -shards 8 -persist ./state
//	rpqserve -addr :8080 -persist ./state -resume
//
// Every result record carries a resume token; a subscriber that
// reattaches with ?from=<token> receives the byte-identical
// continuation of its stream. SIGINT/SIGTERM drains cleanly: in-flight
// batches finish, every subscriber stream ends with a final
// {"eof":true,"token":…} record, and — with -persist — a checkpoint is
// taken so the next -resume start continues exactly where this one
// stopped.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"streamrpq"
	"streamrpq/internal/serve"
)

type patterns []string

func (p *patterns) String() string     { return fmt.Sprint(*p) }
func (p *patterns) Set(s string) error { *p = append(*p, s); return nil }

func main() {
	var qs patterns
	addr := flag.String("addr", ":8080", "listen address")
	window := flag.Int64("window", 1000, "window size (time units)")
	slide := flag.Int64("slide", 100, "window slide (time units)")
	shards := flag.Int("shards", 0, "query shards (0 = sequential backend)")
	depth := flag.Int("depth", 0, "pipeline depth of the sharded backend (0 = engine default)")
	persistDir := flag.String("persist", "", "persistence directory (empty = no durability)")
	resume := flag.Bool("resume", false, "recover from an existing persistence directory")
	ckEvery := flag.Int("checkpoint-every", 0, "automatic checkpoint every n batches (0 = manual only)")
	fsync := flag.Bool("fsync", false, "fsync WAL appends and snapshots")
	replayWin := flag.Int("replay-window", 65536, "records retained for subscriber reattachment")
	subBuf := flag.Int("sub-buffer", 1024, "per-subscriber record buffer")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "graceful shutdown deadline")
	flag.Var(&qs, "q", "query pattern to register at startup (repeatable)")
	flag.Parse()

	var popts []streamrpq.PersistOption
	if *ckEvery > 0 {
		popts = append(popts, streamrpq.CheckpointEvery(*ckEvery))
	}
	if *fsync {
		popts = append(popts, streamrpq.WithFsync())
	}

	var ev *streamrpq.MultiEvaluator
	if *resume {
		if *persistDir == "" {
			fatal(fmt.Errorf("-resume requires -persist"))
		}
		var redelivered []streamrpq.BatchResult
		var err error
		ev, redelivered, err = streamrpq.Recover(*persistDir, popts...)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "rpqserve: recovered %s: %d tuples applied, %d queries, %d redelivered results\n",
			*persistDir, ev.AppliedTuples(), ev.NumQueries(), len(redelivered))
		if len(qs) > 0 {
			fmt.Fprintln(os.Stderr, "rpqserve: ignoring -q flags on -resume (the query set comes from the checkpoint; register more via POST /queries)")
		}
	} else {
		compiled := make([]*streamrpq.Query, len(qs))
		for i, src := range qs {
			q, err := streamrpq.Compile(src)
			if err != nil {
				fatal(fmt.Errorf("query %q: %w", src, err))
			}
			compiled[i] = q
		}
		var err error
		ev, err = streamrpq.NewMultiEvaluator(*window, *slide, compiled...)
		if err != nil {
			fatal(err)
		}
		if *depth > 0 {
			if err := ev.WithPipelineDepth(*depth); err != nil {
				fatal(err)
			}
		}
		if *shards > 0 {
			if err := ev.WithShards(*shards); err != nil {
				fatal(err)
			}
		}
		// Dynamic mode must be on before the first checkpoint: the gen-0
		// snapshot records the retain-all flag, so a recovery that replays
		// the WAL rebuilds the same retained graph.
		if err := ev.EnableDynamicQueries(); err != nil {
			fatal(err)
		}
		if *persistDir != "" {
			if err := ev.WithPersistence(*persistDir, popts...); err != nil {
				fatal(err)
			}
		}
	}
	defer ev.Close()

	srv, err := serve.NewServer(ev, serve.BrokerConfig{
		ReplayWindow:     *replayWin,
		SubscriberBuffer: *subBuf,
	})
	if err != nil {
		fatal(err)
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "rpqserve: listening on %s (window=%d slide=%d shards=%d queries=%d)\n",
		l.Addr(), *window, *slide, ev.NumShards(), ev.NumQueries())

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(l) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "rpqserve: %s: draining (in-flight batches finish, streams get a final eof record%s)\n",
			s, checkpointNote(ev))
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "rpqserve: shutdown:", err)
		}
		<-errc // Serve returns http.ErrServerClosed
	case err := <-errc:
		if err != nil && err != http.ErrServerClosed {
			fatal(err)
		}
	}
	if err := ev.Close(); err != nil {
		fatal(err)
	}
}

func checkpointNote(ev *streamrpq.MultiEvaluator) string {
	if ev.Persistent() {
		return ", checkpoint written"
	}
	return ""
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rpqserve:", err)
	os.Exit(1)
}
