// Command rpqbench regenerates the tables and figures of the paper's
// evaluation section (§5) on the synthetic datasets.
//
// Usage:
//
//	rpqbench -list
//	rpqbench -exp fig4 [-scale 40000] [-seed 1]
//	rpqbench -exp all
//	rpqbench -exp multiq -json > BENCH_multiq.json
//	rpqbench -exp multiq-shared -shards 1,2,8 -json > BENCH_multiq_shared.json
//	rpqbench -exp pipeline -shards 1,2,4,8 -pipeline 1,2,4 -json > BENCH_pipeline.json
//	rpqbench -exp churn -json > BENCH_churn.json
//	rpqbench -exp writers -writers 1,2,4,8 -json > BENCH_writers.json
//
// -json emits machine-readable results (ns/op, tuples/s, per-shard
// stats) for experiments with structured drivers, so benchmark
// trajectories can be recorded as BENCH_*.json files across commits.
// -shards, -pipeline and -writers override the sweep grids of the
// multiq, multiq-shared, pipeline and writers experiments
// (comma-separated lists).
//
// -cpuprofile and -memprofile write pprof profiles covering the
// selected experiments (CPU over the whole run; heap snapshotted after
// a final GC), for digging into the engine hot paths with
// `go tool pprof`.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"streamrpq/internal/experiments"
)

// parseIntList parses a comma-separated list of positive ints.
func parseIntList(flagName, s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("-%s: %q is not a positive integer", flagName, part)
		}
		out = append(out, n)
	}
	return out, nil
}

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment id (see -list) or 'all'")
		scale   = flag.Int("scale", 40000, "stream length in tuples for the primary runs")
		seed    = flag.Int64("seed", 1, "random seed for dataset and workload generation")
		list    = flag.Bool("list", false, "list available experiments and exit")
		jsonOut = flag.Bool("json", false, "emit machine-readable JSON instead of tables (structured experiments only)")
		shards  = flag.String("shards", "", "comma-separated shard counts for the multiq/multiq-shared/pipeline sweeps (default grid if empty)")
		depths  = flag.String("pipeline", "", "comma-separated pipeline depths for the pipeline sweep (default 1,2,4; 1 = barriered)")
		writers = flag.String("writers", "", "comma-separated writer counts for the writers sweep (default 1,2,4,8; 1 = sequential apply)")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile covering the selected experiments to this file")
		memProf = flag.String("memprofile", "", "write a heap profile (after the selected experiments) to this file")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rpqbench: -cpuprofile: %v\n", err)
			os.Exit(2)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "rpqbench: -cpuprofile: %v\n", err)
			os.Exit(2)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProf != "" {
		path := *memProf
		defer func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "rpqbench: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live heap before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "rpqbench: -memprofile: %v\n", err)
			}
		}()
	}

	if *list {
		for _, r := range experiments.All() {
			mark := " "
			if experiments.JSONCapable(r.ID) {
				mark = "*"
			}
			fmt.Printf("  %-8s%s %s\n", r.ID, mark, r.Title)
		}
		fmt.Println("  (* supports -json)")
		return
	}

	shardCounts, err := parseIntList("shards", *shards)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rpqbench: %v\n", err)
		os.Exit(2)
	}
	pipelineDepths, err := parseIntList("pipeline", *depths)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rpqbench: %v\n", err)
		os.Exit(2)
	}
	writerCounts, err := parseIntList("writers", *writers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rpqbench: %v\n", err)
		os.Exit(2)
	}
	cfg := experiments.Config{
		Scale: *scale, Out: os.Stdout, Seed: *seed,
		ShardCounts: shardCounts, PipelineDepths: pipelineDepths,
		WriterCounts: writerCounts,
	}

	if *jsonOut {
		if !experiments.JSONCapable(*exp) {
			fmt.Fprintf(os.Stderr, "rpqbench: -json requires a structured experiment (use -exp multiq); %q has none\n", *exp)
			os.Exit(2)
		}
		if err := experiments.WriteJSON(cfg, *exp, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "rpqbench: %s: %v\n", *exp, err)
			os.Exit(1)
		}
		return
	}
	run := func(r experiments.Runner) {
		start := time.Now()
		if err := r.Run(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "rpqbench: %s: %v\n", r.ID, err)
			os.Exit(1)
		}
		fmt.Printf("  [%s completed in %v]\n", r.ID, time.Since(start).Round(time.Millisecond))
	}

	if *exp == "all" {
		for _, r := range experiments.All() {
			run(r)
		}
		return
	}
	r, ok := experiments.ByID(*exp)
	if !ok {
		fmt.Fprintf(os.Stderr, "rpqbench: unknown experiment %q (use -list)\n", *exp)
		os.Exit(2)
	}
	run(r)
}
