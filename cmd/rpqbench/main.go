// Command rpqbench regenerates the tables and figures of the paper's
// evaluation section (§5) on the synthetic datasets.
//
// Usage:
//
//	rpqbench -list
//	rpqbench -exp fig4 [-scale 40000] [-seed 1]
//	rpqbench -exp all
//	rpqbench -exp multiq -json > BENCH_multiq.json
//
// -json emits machine-readable results (ns/op, tuples/s, per-shard
// stats) for experiments with structured drivers, so benchmark
// trajectories can be recorded as BENCH_*.json files across commits.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"streamrpq/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment id (see -list) or 'all'")
		scale   = flag.Int("scale", 40000, "stream length in tuples for the primary runs")
		seed    = flag.Int64("seed", 1, "random seed for dataset and workload generation")
		list    = flag.Bool("list", false, "list available experiments and exit")
		jsonOut = flag.Bool("json", false, "emit machine-readable JSON instead of tables (structured experiments only)")
	)
	flag.Parse()

	if *list {
		for _, r := range experiments.All() {
			mark := " "
			if experiments.JSONCapable(r.ID) {
				mark = "*"
			}
			fmt.Printf("  %-8s%s %s\n", r.ID, mark, r.Title)
		}
		fmt.Println("  (* supports -json)")
		return
	}

	cfg := experiments.Config{Scale: *scale, Out: os.Stdout, Seed: *seed}

	if *jsonOut {
		if !experiments.JSONCapable(*exp) {
			fmt.Fprintf(os.Stderr, "rpqbench: -json requires a structured experiment (use -exp multiq); %q has none\n", *exp)
			os.Exit(2)
		}
		if err := experiments.WriteJSON(cfg, *exp, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "rpqbench: %s: %v\n", *exp, err)
			os.Exit(1)
		}
		return
	}
	run := func(r experiments.Runner) {
		start := time.Now()
		if err := r.Run(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "rpqbench: %s: %v\n", r.ID, err)
			os.Exit(1)
		}
		fmt.Printf("  [%s completed in %v]\n", r.ID, time.Since(start).Round(time.Millisecond))
	}

	if *exp == "all" {
		for _, r := range experiments.All() {
			run(r)
		}
		return
	}
	r, ok := experiments.ByID(*exp)
	if !ok {
		fmt.Fprintf(os.Stderr, "rpqbench: unknown experiment %q (use -list)\n", *exp)
		os.Exit(2)
	}
	run(r)
}
