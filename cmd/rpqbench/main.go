// Command rpqbench regenerates the tables and figures of the paper's
// evaluation section (§5) on the synthetic datasets.
//
// Usage:
//
//	rpqbench -list
//	rpqbench -exp fig4 [-scale 40000] [-seed 1]
//	rpqbench -exp all
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"streamrpq/internal/experiments"
)

func main() {
	var (
		exp   = flag.String("exp", "all", "experiment id (see -list) or 'all'")
		scale = flag.Int("scale", 40000, "stream length in tuples for the primary runs")
		seed  = flag.Int64("seed", 1, "random seed for dataset and workload generation")
		list  = flag.Bool("list", false, "list available experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, r := range experiments.All() {
			fmt.Printf("  %-8s %s\n", r.ID, r.Title)
		}
		return
	}

	cfg := experiments.Config{Scale: *scale, Out: os.Stdout, Seed: *seed}
	run := func(r experiments.Runner) {
		start := time.Now()
		if err := r.Run(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "rpqbench: %s: %v\n", r.ID, err)
			os.Exit(1)
		}
		fmt.Printf("  [%s completed in %v]\n", r.ID, time.Since(start).Round(time.Millisecond))
	}

	if *exp == "all" {
		for _, r := range experiments.All() {
			run(r)
		}
		return
	}
	r, ok := experiments.ByID(*exp)
	if !ok {
		fmt.Fprintf(os.Stderr, "rpqbench: unknown experiment %q (use -list)\n", *exp)
		os.Exit(2)
	}
	run(r)
}
