package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"

	"streamrpq"
)

// Server is the HTTP front of a Broker. Endpoints:
//
//	POST   /ingest        text lines "ts src dst label [+|-]" = one batch
//	POST   /subscribe     NDJSON result stream; body/URL select filter + resume token
//	GET    /queries       live registrations
//	POST   /queries       {"pattern": "..."} → {"id": n}
//	DELETE /queries/{id}  online removal
//	GET    /metrics       Prometheus text format
//	GET    /healthz       200 while serving, 503 draining/poisoned
//
// The result stream is NDJSON: one Record per line, each carrying its
// resume token. A client that remembers the last token it processed
// reattaches with ?from=<token> (or "from" in the JSON body) and
// receives the byte-identical continuation.
type Server struct {
	broker *Broker
	mux    *http.ServeMux
	http   *http.Server
}

// NewServer wraps an evaluator in a broker and its HTTP handler.
func NewServer(ev *streamrpq.MultiEvaluator, cfg BrokerConfig) (*Server, error) {
	b, err := NewBroker(ev, cfg)
	if err != nil {
		return nil, err
	}
	s := &Server{broker: b, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /ingest", s.handleIngest)
	s.mux.HandleFunc("POST /subscribe", s.handleSubscribe)
	s.mux.HandleFunc("GET /queries", s.handleListQueries)
	s.mux.HandleFunc("POST /queries", s.handleAddQuery)
	s.mux.HandleFunc("DELETE /queries/{id}", s.handleRemoveQuery)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.http = &http.Server{Handler: s.mux}
	return s, nil
}

// Broker exposes the underlying broker (tests drive it directly).
func (s *Server) Broker() *Broker { return s.broker }

// Handler returns the route table (for httptest servers).
func (s *Server) Handler() http.Handler { return s.mux }

// Serve accepts connections on l until Shutdown. It returns
// http.ErrServerClosed after a clean shutdown, like net/http.
func (s *Server) Serve(l net.Listener) error { return s.http.Serve(l) }

// Shutdown drains the server: the broker stops accepting work and
// terminates every subscriber stream with a final EOF record (taking a
// checkpoint when persistence is on), then the HTTP server waits for
// the handlers to flush those records, bounded by ctx.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.broker.Shutdown()
	if herr := s.http.Shutdown(ctx); err == nil {
		err = herr
	}
	return err
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// brokerError maps broker sentinel errors onto status codes.
func brokerError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrShutdown):
		httpError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, ErrGone):
		httpError(w, http.StatusGone, err)
	case errors.Is(err, ErrFuture):
		httpError(w, http.StatusBadRequest, err)
	case strings.Contains(err.Error(), "out-of-order"):
		httpError(w, http.StatusBadRequest, err)
	default:
		httpError(w, http.StatusInternalServerError, err)
	}
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	var tuples []streamrpq.Tuple
	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		t, err := streamrpq.ParseTuple(text)
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("line %d: %w", line, err))
			return
		}
		tuples = append(tuples, t)
	}
	if err := sc.Err(); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	rep, err := s.broker.Ingest(tuples)
	if err != nil {
		brokerError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(rep)
}

// subscribeRequest is the optional JSON body of POST /subscribe. The
// URL query parameters "from", "id" (repeatable) and "pattern"
// (repeatable) are merged in, with the body taking precedence for
// "from".
type subscribeRequest struct {
	From     string   `json:"from,omitempty"`
	IDs      []int    `json:"ids,omitempty"`
	Patterns []string `json:"patterns,omitempty"`
}

func (s *Server) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	var req subscribeRequest
	if body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20)); err == nil && len(body) > 0 {
		if err := json.Unmarshal(body, &req); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("serve: bad subscribe body: %w", err))
			return
		}
	}
	q := r.URL.Query()
	if req.From == "" {
		req.From = q.Get("from")
	}
	for _, v := range q["id"] {
		id, err := strconv.Atoi(v)
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("serve: bad id %q", v))
			return
		}
		req.IDs = append(req.IDs, id)
	}
	req.Patterns = append(req.Patterns, q["pattern"]...)

	var from *Seq
	if req.From != "" {
		seq, err := ParseToken(req.From)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		from = &seq
	}
	sub, err := s.broker.Subscribe(req.IDs, req.Patterns, from)
	if err != nil {
		brokerError(w, err)
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	if fl != nil {
		fl.Flush() // commit headers before the first (possibly distant) record
	}
	enc := json.NewEncoder(w)
	ctx := r.Context()
	for {
		select {
		case rec, ok := <-sub.ch:
			if !ok {
				if sub.final != nil {
					enc.Encode(sub.final)
				}
				return
			}
			if err := enc.Encode(rec); err != nil {
				s.broker.Unsubscribe(sub)
				return
			}
			// Flush per record only when the buffer has drained: a replay
			// burst coalesces into large writes, live records go out
			// immediately.
			if fl != nil && len(sub.ch) == 0 {
				fl.Flush()
			}
		case <-ctx.Done():
			s.broker.Unsubscribe(sub)
			return
		}
	}
}

func (s *Server) handleListQueries(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.broker.Queries())
}

func (s *Server) handleAddQuery(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Pattern string `json:"pattern"`
	}
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("serve: bad query body: %w", err))
		return
	}
	if strings.TrimSpace(req.Pattern) == "" {
		httpError(w, http.StatusBadRequest, errors.New("serve: empty pattern"))
		return
	}
	id, err := s.broker.AddQuery(req.Pattern)
	if err != nil {
		if errors.Is(err, ErrShutdown) {
			httpError(w, http.StatusServiceUnavailable, err)
		} else {
			httpError(w, http.StatusBadRequest, err)
		}
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{"id": id, "pattern": req.Pattern})
}

func (s *Server) handleRemoveQuery(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("serve: bad query id %q", r.PathValue("id")))
		return
	}
	if err := s.broker.RemoveQuery(id); err != nil {
		if errors.Is(err, ErrShutdown) {
			httpError(w, http.StatusServiceUnavailable, err)
		} else {
			httpError(w, http.StatusNotFound, err)
		}
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	m := s.broker.Snapshot()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprintf(w, "rpq_batches_total %d\n", m.Batches)
	fmt.Fprintf(w, "rpq_tuples_total %d\n", m.Tuples)
	fmt.Fprintf(w, "rpq_records_published_total %d\n", m.Published)
	fmt.Fprintf(w, "rpq_subscribers %d\n", m.Subscribers)
	fmt.Fprintf(w, "rpq_subscriber_evictions_total %d\n", m.Evictions)
	fmt.Fprintf(w, "rpq_queries %d\n", m.Queries)
	fmt.Fprintf(w, "rpq_window_edges %d\n", m.Edges)
	fmt.Fprintf(w, "rpq_results_total %d\n", m.Results)
	fmt.Fprintf(w, "rpq_groups %d\n", m.Groups)
	fmt.Fprintf(w, "rpq_shared_groups %d\n", m.SharedGroups)
	fmt.Fprintf(w, "rpq_dispatches_total %d\n", m.Dispatches)
	fmt.Fprintf(w, "rpq_relevance_skips_total %d\n", m.RelevanceSkips)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if err := s.broker.Healthy(); err != nil {
		httpError(w, http.StatusServiceUnavailable, err)
		return
	}
	w.Header().Set("Content-Type", "text/plain")
	io.WriteString(w, "ok\n")
}
