package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"streamrpq"
)

func TestTokenRoundTrip(t *testing.T) {
	for _, s := range []Seq{{}, {Batch: 1}, {Batch: 7, Index: 42}, {Batch: ^uint64(0), Index: ^uint64(0)}} {
		got, err := ParseToken(s.Token())
		if err != nil || got != s {
			t.Fatalf("ParseToken(%q) = %v, %v; want %v", s.Token(), got, err, s)
		}
	}
	if s, err := ParseToken("start"); err != nil || s != (Seq{}) {
		t.Fatalf("ParseToken(start) = %v, %v", s, err)
	}
	for _, bad := range []string{"", "v2-1-1", "v1-1", "v1--1-2", "v1-x-1", "v1-1-x", "v1-1-1-1"} {
		if _, err := ParseToken(bad); err == nil {
			t.Fatalf("ParseToken(%q): want error", bad)
		}
	}
}

func TestReplayRing(t *testing.T) {
	r := newReplayRing(3, Seq{})
	mk := func(b, i uint64) Record { return Record{seq: Seq{Batch: b, Index: i}} }
	r.append(mk(1, 0), mk(1, 1))
	if recs, ok := r.since(Seq{}); !ok || len(recs) != 2 {
		t.Fatalf("since(zero) = %d, %v", len(recs), ok)
	}
	if recs, ok := r.since(Seq{Batch: 1, Index: 0}); !ok || len(recs) != 1 {
		t.Fatalf("since(1-0) = %d, %v", len(recs), ok)
	}
	r.append(mk(2, 0), mk(2, 1)) // evicts 1-0
	if _, ok := r.since(Seq{}); ok {
		t.Fatal("since(zero) after eviction: want gone")
	}
	if recs, ok := r.since(Seq{Batch: 1, Index: 0}); !ok || len(recs) != 3 {
		t.Fatalf("since(1-0) after eviction = %d, %v", len(recs), ok)
	}
	if got := r.tail(); got != (Seq{Batch: 2, Index: 1}) {
		t.Fatalf("tail = %v", got)
	}
}

// newTestServer builds a server over a fresh evaluator and registers
// cleanup that unblocks any remaining subscriber handlers.
func newTestServer(t testing.TB, cfg BrokerConfig, shards, depth int, queries ...string) (*Server, *httptest.Server) {
	t.Helper()
	qs := make([]*streamrpq.Query, len(queries))
	for i, src := range queries {
		qs[i] = streamrpq.MustCompile(src)
	}
	ev, err := streamrpq.NewMultiEvaluator(1000, 100, qs...)
	if err != nil {
		t.Fatal(err)
	}
	if depth > 0 {
		if err := ev.WithPipelineDepth(depth); err != nil {
			t.Fatal(err)
		}
	}
	if shards > 0 {
		if err := ev.WithShards(shards); err != nil {
			t.Fatal(err)
		}
	}
	srv, err := NewServer(ev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		srv.Broker().Shutdown() // closes subscriber channels, unblocks handlers
		hs.Close()
		ev.Close()
	})
	return srv, hs
}

// tupleLines renders a random batch of nb tuples as ingest body text,
// advancing *ts.
func tupleLines(rng *rand.Rand, ts *int64, nb int) string {
	var b strings.Builder
	labels := []string{"a", "b", "c"}
	for i := 0; i < nb; i++ {
		*ts += rng.Int63n(2)
		fmt.Fprintf(&b, "%d v%d v%d %s\n", *ts, rng.Intn(9), rng.Intn(9), labels[rng.Intn(3)])
	}
	return b.String()
}

func postIngest(t testing.TB, base, body string) IngestReply {
	t.Helper()
	resp, err := http.Post(base+"/ingest", "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST /ingest: %d: %s", resp.StatusCode, msg)
	}
	var rep IngestReply
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	return rep
}

// subscribeRead attaches at from ("" = live tail) and reads exactly
// want NDJSON lines, then disconnects (the randomized kill point).
func subscribeRead(t testing.TB, base, from string, want int) []string {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	url := base + "/subscribe"
	if from != "" {
		url += "?from=" + from
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST /subscribe: %d: %s", resp.StatusCode, msg)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var lines []string
	for len(lines) < want && sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if len(lines) < want {
		t.Fatalf("stream ended after %d/%d lines (%v)", len(lines), want, sc.Err())
	}
	return lines
}

func lineToken(t testing.TB, line string) string {
	t.Helper()
	var rec struct {
		Token string `json:"token"`
	}
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		t.Fatalf("bad NDJSON line %q: %v", line, err)
	}
	return rec.Token
}

// TestSubscribeReattachByteIdentical: a subscriber that detaches at
// random kill points and reattaches with ?from=<last token> must read
// the byte-identical stream of an uninterrupted subscriber — matches
// and invalidations, across the sequential and sharded backends on
// append-only and churn streams.
func TestSubscribeReattachByteIdentical(t *testing.T) {
	configs := []struct {
		name          string
		shards, depth int
	}{
		{"sequential", 0, 0},
		{"shards=1/depth=1", 1, 1},
		{"shards=8/depth=2", 8, 2},
	}
	for _, churn := range []bool{false, true} {
		for _, cfg := range configs {
			t.Run(fmt.Sprintf("churn=%v/%s", churn, cfg.name), func(t *testing.T) {
				_, hs := newTestServer(t, BrokerConfig{}, cfg.shards, cfg.depth, "(a/b)+", "a/b*")
				rng := rand.New(rand.NewSource(7))
				var ts int64
				var inserted []string
				total := 0
				for b := 0; b < 12; b++ {
					body := tupleLines(rng, &ts, 25)
					if churn {
						// Re-delete a few previously inserted edges at the
						// current timestamp.
						lines := strings.Split(strings.TrimSpace(body), "\n")
						inserted = append(inserted, lines...)
						for i := 0; i < 4 && len(inserted) > 0; i++ {
							old := strings.Fields(inserted[rng.Intn(len(inserted))])
							lines = append(lines, fmt.Sprintf("%d %s %s %s -", ts, old[1], old[2], old[3]))
						}
						body = strings.Join(lines, "\n") + "\n"
					}
					total += postIngest(t, hs.URL, body).Records
				}
				if total == 0 {
					t.Fatal("workload produced no records; test is vacuous")
				}
				full := subscribeRead(t, hs.URL, "start", total)

				var chopped []string
				last := "start"
				for len(chopped) < total {
					n := 1 + rng.Intn(7)
					if rem := total - len(chopped); n > rem {
						n = rem
					}
					chunk := subscribeRead(t, hs.URL, last, n)
					chopped = append(chopped, chunk...)
					last = lineToken(t, chunk[len(chunk)-1])
				}
				if strings.Join(full, "\n") != strings.Join(chopped, "\n") {
					for i := range full {
						if full[i] != chopped[i] {
							t.Fatalf("streams diverge at line %d:\n full: %s\nchop: %s", i, full[i], chopped[i])
						}
					}
					t.Fatal("streams diverge")
				}
				// An invalidation must have crossed the wire on churn runs.
				if churn && !strings.Contains(strings.Join(full, "\n"), `"invalidated":true`) {
					t.Fatal("churn stream published no invalidation records")
				}
			})
		}
	}
}

// TestSubscribeLiveMatchesReplay: a live subscriber (attached before
// ingest) and a replay subscriber reading afterwards from the same
// position get byte-identical streams.
func TestSubscribeLiveMatchesReplay(t *testing.T) {
	// Large subscriber buffer: the live reader must never be evicted,
	// even when the race detector slows it down.
	_, hs := newTestServer(t, BrokerConfig{SubscriberBuffer: 1 << 15}, 4, 2, "(a/b)+", "a/b*")

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, hs.URL+"/subscribe?from=start", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	linec := make(chan string, 1<<16)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
		for sc.Scan() {
			linec <- sc.Text()
		}
		close(linec)
	}()

	rng := rand.New(rand.NewSource(3))
	var ts int64
	total := 0
	for b := 0; b < 10; b++ {
		total += postIngest(t, hs.URL, tupleLines(rng, &ts, 30)).Records
	}
	var live []string
	for len(live) < total {
		select {
		case l, ok := <-linec:
			if !ok {
				t.Fatalf("live stream ended after %d/%d lines", len(live), total)
			}
			live = append(live, l)
		case <-ctx.Done():
			t.Fatalf("timed out after %d/%d live lines", len(live), total)
		}
	}
	cancel()

	replay := subscribeRead(t, hs.URL, "start", total)
	for i := range live {
		if live[i] != replay[i] {
			t.Fatalf("live and replay diverge at line %d:\nlive:   %s\nreplay: %s", i, live[i], replay[i])
		}
	}
}

// TestResumeTokenBounds: tokens beyond the replay window answer 410
// Gone; tokens ahead of the stream answer 400.
func TestResumeTokenBounds(t *testing.T) {
	_, hs := newTestServer(t, BrokerConfig{ReplayWindow: 4}, 0, 0, "a/b")
	rng := rand.New(rand.NewSource(5))
	var ts int64
	total := 0
	for total < 20 {
		total += postIngest(t, hs.URL, tupleLines(rng, &ts, 30)).Records
	}
	get := func(from string) int {
		resp, err := http.Post(hs.URL+"/subscribe?from="+from, "", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get("start"); code != http.StatusGone {
		t.Fatalf("from=start beyond window: got %d, want 410", code)
	}
	if code := get("v1-999999-0"); code != http.StatusBadRequest {
		t.Fatalf("future token: got %d, want 400", code)
	}
	if code := get("not-a-token"); code != http.StatusBadRequest {
		t.Fatalf("malformed token: got %d, want 400", code)
	}
}

// TestOnlineQueriesHTTP: queries registered over the network take
// effect without restarting ingest, their results reach pattern- and
// id-filtered subscribers, and DELETE stops the flow.
func TestOnlineQueriesHTTP(t *testing.T) {
	_, hs := newTestServer(t, BrokerConfig{}, 4, 2, "a/b")
	rng := rand.New(rand.NewSource(9))
	var ts int64
	postIngest(t, hs.URL, tupleLines(rng, &ts, 40))

	resp, err := http.Post(hs.URL+"/queries", "application/json", strings.NewReader(`{"pattern":"c"}`))
	if err != nil {
		t.Fatal(err)
	}
	var added struct {
		ID int `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&added); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if added.ID != 1 {
		t.Fatalf("added query id = %d, want 1", added.ID)
	}

	lr, err := http.Get(hs.URL + "/queries")
	if err != nil {
		t.Fatal(err)
	}
	var list []QueryInfo
	if err := json.NewDecoder(lr.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	lr.Body.Close()
	if len(list) != 2 || list[1].Pattern != "c" {
		t.Fatalf("GET /queries = %+v", list)
	}

	// Single-label tuples make the new query's record count exact: one
	// match per c-tuple inserted after registration.
	mark := postIngest(t, hs.URL, fmt.Sprintf("%d x y c\n%d y z c\n", ts+1, ts+1))
	if mark.Records != 2 {
		t.Fatalf("post-registration c batch produced %d records, want 2", mark.Records)
	}
	// Filtered subscription: only query "c" records.
	ctxLines := subscribeReadFiltered(t, hs.URL, "start", "c", 2)
	for _, l := range ctxLines {
		if !strings.Contains(l, `"query":"c"`) {
			t.Fatalf("filtered stream leaked foreign record: %s", l)
		}
	}

	// Remove and verify the flow stops: later c tuples produce nothing.
	dreq, _ := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/queries/%d", hs.URL, added.ID), nil)
	dresp, err := http.DefaultClient.Do(dreq)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE /queries/%d: %d", added.ID, dresp.StatusCode)
	}
	after := postIngest(t, hs.URL, fmt.Sprintf("%d p q c\n", ts+2))
	if after.Records != 0 {
		t.Fatalf("records after removal = %d, want 0", after.Records)
	}
	// Double delete → 404.
	dreq2, _ := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/queries/%d", hs.URL, added.ID), nil)
	dresp2, err := http.DefaultClient.Do(dreq2)
	if err != nil {
		t.Fatal(err)
	}
	dresp2.Body.Close()
	if dresp2.StatusCode != http.StatusNotFound {
		t.Fatalf("second DELETE: %d, want 404", dresp2.StatusCode)
	}
}

func subscribeReadFiltered(t testing.TB, base, from, pattern string, want int) []string {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	url := base + "/subscribe?from=" + from + "&pattern=" + pattern
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	var lines []string
	for len(lines) < want && sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if len(lines) < want {
		t.Fatalf("filtered stream ended after %d/%d lines (%v)", len(lines), want, sc.Err())
	}
	return lines
}

// TestGracefulShutdown: Shutdown drains — every open subscriber stream
// ends with a final {"eof":true,"token":…} record whose token is the
// stream tail, and the HTTP server stops cleanly.
func TestGracefulShutdown(t *testing.T) {
	qs := []*streamrpq.Query{streamrpq.MustCompile("a/b")}
	ev, err := streamrpq.NewMultiEvaluator(1000, 100, qs...)
	if err != nil {
		t.Fatal(err)
	}
	defer ev.Close()
	srv, err := NewServer(ev, BrokerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewUnstartedServer(srv.Handler())
	hs.Start()
	defer hs.Close()

	rng := rand.New(rand.NewSource(1))
	var ts int64
	var lastTok string
	total := 0
	for total == 0 {
		rep := postIngest(t, hs.URL, tupleLines(rng, &ts, 40))
		total += rep.Records
		lastTok = rep.Token
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost, hs.URL+"/subscribe?from=start", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	done := make(chan []string, 1)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		var lines []string
		for sc.Scan() {
			lines = append(lines, sc.Text())
		}
		done <- lines
	}()

	// Let the subscriber drain its replay, then shut down.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Broker().Snapshot().Subscribers != 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer scancel()
	if err := srv.Shutdown(sctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	lines := <-done
	if len(lines) != total+1 {
		t.Fatalf("subscriber got %d lines, want %d records + eof", len(lines), total)
	}
	var final struct {
		EOF    bool   `json:"eof"`
		Token  string `json:"token"`
		Reason string `json:"reason"`
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &final); err != nil {
		t.Fatal(err)
	}
	if !final.EOF || final.Reason != "shutdown" {
		t.Fatalf("final record = %+v, want eof/shutdown", final)
	}
	if final.Token != lastTok {
		t.Fatalf("final token = %s, want stream tail %s", final.Token, lastTok)
	}

	// Work after shutdown is refused.
	if _, err := srv.Broker().Ingest(nil); err != ErrShutdown {
		t.Fatalf("Ingest after shutdown = %v, want ErrShutdown", err)
	}
	hr, err := http.Get(hs.URL + "/healthz")
	if err == nil {
		if hr.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("healthz after shutdown = %d, want 503", hr.StatusCode)
		}
		hr.Body.Close()
	}
}

// TestSubscriberStress: with hundreds of attached subscribers — one of
// them permanently stalled — ingest never blocks: the stalled
// subscriber is evicted when its bounded buffer fills, every healthy
// subscriber receives the full stream, and per-batch ingest latency
// stays bounded.
func TestSubscriberStress(t *testing.T) {
	const subscribers = 200
	// Buffer small enough that the stalled subscriber is evicted within
	// the run, large enough that a healthy reader can never overflow:
	// the drain barrier below keeps healthy lag under one batch, and no
	// batch in this workload comes near 64 records.
	srv, hs := newTestServer(t, BrokerConfig{SubscriberBuffer: 64}, 4, 2, "a/b")
	broker := srv.Broker()

	// The stalled consumer: attached directly at the broker, never read.
	stalled, err := broker.Subscribe(nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	counts := make([]int64, subscribers)
	var wg sync.WaitGroup
	ready := make(chan struct{}, subscribers)
	for i := 0; i < subscribers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req, err := http.NewRequestWithContext(ctx, http.MethodPost, hs.URL+"/subscribe?from=start", nil)
			if err != nil {
				return
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				return
			}
			defer resp.Body.Close()
			ready <- struct{}{}
			sc := bufio.NewScanner(resp.Body)
			sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
			for sc.Scan() {
				if strings.Contains(sc.Text(), `"eof":true`) {
					return
				}
				atomic.AddInt64(&counts[i], 1)
			}
		}(i)
	}
	for i := 0; i < subscribers; i++ {
		select {
		case <-ready:
		case <-ctx.Done():
			t.Fatal("subscribers failed to attach in time")
		}
	}

	rng := rand.New(rand.NewSource(17))
	var ts int64
	total := 0
	var worst time.Duration
	for b := 0; b < 100; b++ {
		var tuples []streamrpq.Tuple
		for i := 0; i < 20; i++ {
			ts += rng.Int63n(2)
			tuples = append(tuples, streamrpq.Tuple{
				TS:    ts,
				Src:   fmt.Sprintf("v%d", rng.Intn(9)),
				Dst:   fmt.Sprintf("v%d", rng.Intn(9)),
				Label: []string{"a", "b"}[rng.Intn(2)],
			})
		}
		start := time.Now()
		rep, err := broker.Ingest(tuples)
		if err != nil {
			t.Fatal(err)
		}
		if d := time.Since(start); d > worst {
			worst = d
		}
		total += rep.Records
		// Drain barrier (excluded from the latency measurement): wait
		// until every healthy reader has consumed the whole prefix, so
		// healthy lag is bounded by one batch. The stalled subscriber
		// never drains, so its buffer still fills.
		for {
			drained := true
			for i := range counts {
				if atomic.LoadInt64(&counts[i]) != int64(total) {
					drained = false
					break
				}
			}
			if drained {
				break
			}
			if ctx.Err() != nil {
				t.Fatal("healthy subscribers failed to drain between batches")
			}
			time.Sleep(time.Millisecond)
		}
	}
	// Generous bound: the point is "bounded", not "fast" — a broker that
	// blocked on the stalled subscriber would hit the 60s test timeout.
	if worst > 5*time.Second {
		t.Fatalf("worst per-batch ingest latency %v with a stalled subscriber", worst)
	}
	if total == 0 {
		t.Fatal("stress workload produced no records; test is vacuous")
	}

	// The stalled subscriber was evicted with a resumable final record.
	select {
	case _, ok := <-stalled.ch:
		if !ok {
			t.Fatal("stalled subscriber closed before any record")
		}
	case <-ctx.Done():
		t.Fatal("stalled subscriber never received records")
	}
	m := broker.Snapshot()
	if total <= 64 {
		t.Fatalf("workload produced only %d records; cannot fill the stalled buffer", total)
	}
	if m.Evictions == 0 {
		t.Fatalf("no evictions after %d records to a stalled subscriber (buffer 64)", total)
	}
	if m.Subscribers != subscribers {
		t.Fatalf("subscribers = %d, want %d healthy", m.Subscribers, subscribers)
	}

	// Shutdown delivers eof to the healthy subscribers; all of them must
	// have seen the full stream.
	if err := broker.Shutdown(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for i := range counts {
		if n := atomic.LoadInt64(&counts[i]); n != int64(total) {
			t.Fatalf("subscriber %d got %d/%d records", i, n, total)
		}
	}

	// Metrics and health endpoints reflect the drain.
	mr, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(mr.Body)
	mr.Body.Close()
	if !strings.Contains(string(body), "rpq_subscriber_evictions_total") {
		t.Fatalf("metrics output missing eviction counter:\n%s", body)
	}
}
