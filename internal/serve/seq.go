// Package serve is the network serving layer of the streaming RPQ
// engine: a subscription broker over the deterministic merged result
// stream of a streamrpq.MultiEvaluator, exposed over HTTP with
// newline-delimited JSON (stdlib only).
//
// Every published result — matches and deletion-triggered
// invalidations alike — carries a monotone sequence position derived
// from the evaluator's persisted batch counter: (batch, index), where
// batch is the 1-based ordinal of the IngestBatch that produced the
// record and index is the record's rank within that batch's canonical
// merge order. The position doubles as a resume token
// ("v1-<batch>-<index>"): because the result stream is a pure function
// of the input stream (PR 1/PR 6) and the merge order is canonical, a
// subscriber that detaches after token t and reattaches with ?from=t
// receives the byte-identical continuation of its stream.
package serve

import (
	"fmt"
	"strconv"
	"strings"
)

// Seq is a sequence position in the published result stream. The zero
// Seq orders before every published record (batches are 1-based).
type Seq struct {
	Batch uint64 // 1-based ordinal of the producing IngestBatch
	Index uint64 // rank within the batch's canonical merge order
}

// Less reports whether s orders strictly before o.
func (s Seq) Less(o Seq) bool {
	if s.Batch != o.Batch {
		return s.Batch < o.Batch
	}
	return s.Index < o.Index
}

// Token renders the position as a resume token.
func (s Seq) Token() string {
	return "v1-" + strconv.FormatUint(s.Batch, 10) + "-" + strconv.FormatUint(s.Index, 10)
}

// ParseToken parses a resume token produced by Seq.Token. The alias
// "start" names the zero position (before every record).
func ParseToken(tok string) (Seq, error) {
	if tok == "start" {
		return Seq{}, nil
	}
	rest, ok := strings.CutPrefix(tok, "v1-")
	if !ok {
		return Seq{}, fmt.Errorf("serve: bad resume token %q: want v1-<batch>-<index>", tok)
	}
	bs, is, ok := strings.Cut(rest, "-")
	if !ok {
		return Seq{}, fmt.Errorf("serve: bad resume token %q: want v1-<batch>-<index>", tok)
	}
	batch, err := strconv.ParseUint(bs, 10, 64)
	if err != nil {
		return Seq{}, fmt.Errorf("serve: bad resume token %q: batch: %v", tok, err)
	}
	index, err := strconv.ParseUint(is, 10, 64)
	if err != nil {
		return Seq{}, fmt.Errorf("serve: bad resume token %q: index: %v", tok, err)
	}
	return Seq{Batch: batch, Index: index}, nil
}
