package serve

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"streamrpq"
)

func mkRec(batch, index uint64) Record {
	s := Seq{Batch: batch, Index: index}
	return Record{Token: s.Token(), Batch: batch, TS: int64(index), seq: s}
}

// TestReplayRingSinceCopies is the aliasing regression for the
// eviction boundary: a replay slice obtained from since must survive a
// later append that evicts — append compacts the backing array in
// place, so a since that returned a bare sub-slice would see its
// records silently overwritten with newer ones (a truncated stream
// wearing valid tokens).
func TestReplayRingSinceCopies(t *testing.T) {
	r := newReplayRing(8, Seq{})
	for i := uint64(0); i < 8; i++ {
		r.append(mkRec(1, i))
	}
	replay, ok := r.since(Seq{Batch: 1, Index: 3})
	if !ok || len(replay) != 4 {
		t.Fatalf("since = %d records, ok=%v; want 4, true", len(replay), ok)
	}
	// Evict aggressively: overwrite the whole backing array twice over.
	for i := uint64(0); i < 16; i++ {
		r.append(mkRec(2, i))
	}
	for i, rec := range replay {
		want := Seq{Batch: 1, Index: uint64(4 + i)}
		if rec.seq != want {
			t.Fatalf("retained replay record %d mutated by eviction: seq %v, want %v", i, rec.seq, want)
		}
	}
}

// TestReplayRingGoneAtBoundary: tokens at or below the eviction floor
// answer ok=false (410 Gone), tokens just above it replay exactly the
// retained suffix — the boundary is never off by one in either
// direction.
func TestReplayRingGoneAtBoundary(t *testing.T) {
	r := newReplayRing(4, Seq{})
	for i := uint64(0); i < 10; i++ {
		r.append(mkRec(1, i))
	}
	// Capacity 4: records 0..5 evicted, floor = (1,5), retained 6..9.
	if _, ok := r.since(Seq{Batch: 1, Index: 4}); ok {
		t.Fatal("token below the floor answered a replay")
	}
	recs, ok := r.since(Seq{Batch: 1, Index: 5})
	if !ok || len(recs) != 4 {
		t.Fatalf("token at the floor: %d records, ok=%v; want the full retained window (4, true)", len(recs), ok)
	}
	recs, ok = r.since(Seq{Batch: 1, Index: 8})
	if !ok || len(recs) != 1 || recs[0].seq != (Seq{Batch: 1, Index: 9}) {
		t.Fatalf("token inside the window: %v ok=%v, want exactly the final record", recs, ok)
	}
	recs, ok = r.since(Seq{Batch: 1, Index: 9})
	if !ok || len(recs) != 0 {
		t.Fatalf("token at the tail: %d records, ok=%v; want empty replay, true", len(recs), ok)
	}
}

// TestSubscribeEvictionRace races reattachment against ring eviction
// under -race: one goroutine ingests batches through a broker with a
// replay window smaller than three batches while the consumer
// repeatedly detaches and reattaches with its last token. Every
// successful reattach must continue the stream exactly contiguously —
// a token whose record was evicted between checks must answer ErrGone,
// never a silently truncated stream.
func TestSubscribeEvictionRace(t *testing.T) {
	ev, err := streamrpq.NewMultiEvaluator(1<<30, 1<<29, streamrpq.MustCompile("a"))
	if err != nil {
		t.Fatal(err)
	}
	defer ev.Close()
	b, err := NewBroker(ev, BrokerConfig{ReplayWindow: 7, SubscriberBuffer: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Shutdown()

	const nBatches, perBatch = 200, 3
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		n := 0
		for i := 0; i < nBatches; i++ {
			var tup []streamrpq.Tuple
			for j := 0; j < perBatch; j++ {
				n++
				// Unique vertices: each a-edge is exactly one match, so
				// tokens are dense — (b, 0..perBatch-1) for every batch —
				// and the successor of any position is computable.
				tup = append(tup, streamrpq.Tuple{TS: int64(i + 1), Src: fmt.Sprintf("s%d", n), Dst: fmt.Sprintf("d%d", n), Label: "a"})
			}
			if _, err := b.Ingest(tup); err != nil {
				t.Errorf("ingest: %v", err)
				return
			}
		}
	}()

	succ := func(s Seq) Seq {
		if s.Index+1 < perBatch {
			return Seq{Batch: s.Batch, Index: s.Index + 1}
		}
		return Seq{Batch: s.Batch + 1, Index: 0}
	}
	finalSeq := Seq{Batch: nBatches, Index: perBatch - 1}
	// Start just before (1,0), the first record's position: batch
	// numbering starts at 1, so the zero batch's last slot is the
	// position whose successor is the stream's first record.
	from := Seq{Batch: 0, Index: perBatch - 1}
	haveFrom := true // false after a Gone re-sync at the live tail
	var expect *Seq  // seq the next record must carry, nil after re-sync
	gone, attaches := 0, 0
	for {
		finished := false
		select {
		case <-stop:
			finished = true
		default:
		}
		var fromPtr *Seq
		if haveFrom {
			f := from
			fromPtr = &f
			e := succ(from)
			expect = &e
		} else {
			expect = nil // live-tail attach: accept whatever comes first
		}
		sub, err := b.Subscribe(nil, nil, fromPtr)
		attaches++
		switch {
		case errors.Is(err, ErrGone):
			// The replay window moved past our position: the documented
			// re-sync outcome. Never a truncated replay.
			gone++
			haveFrom = false
			if finished {
				wg.Wait()
				t.Logf("attaches=%d gone=%d (ended by eviction)", attaches, gone)
				return
			}
			continue
		case errors.Is(err, ErrFuture):
			// Attached ahead of the published stream (the ingester has
			// not produced our successor yet): retry.
			if finished {
				wg.Wait()
				return
			}
			continue
		case err != nil:
			t.Fatalf("subscribe from %v: %v", fromPtr, err)
		}
	drain:
		for i := 0; i < 64; i++ {
			select {
			case rec, open := <-sub.ch:
				if !open || rec.EOF {
					break drain // evicted as a slow consumer; reattach
				}
				if expect != nil && rec.seq != *expect {
					t.Fatalf("gap after reattach at %v: got %v, want %v", from, rec.seq, *expect)
				}
				e := succ(rec.seq)
				expect = &e
				from, haveFrom = rec.seq, true
			default:
				break drain // buffer momentarily empty; reattach
			}
		}
		b.Unsubscribe(sub)
		if haveFrom && from == finalSeq {
			wg.Wait()
			t.Logf("attaches=%d gone=%d (consumed to the tail)", attaches, gone)
			return
		}
		if finished && !haveFrom {
			// Re-synced at the tail after the stream ended: nothing more
			// will arrive.
			wg.Wait()
			t.Logf("attaches=%d gone=%d (re-synced past the end)", attaches, gone)
			return
		}
	}
}

// TestSubscribeGoneDeterministic pins the broker-level boundary
// without any concurrency: after the window slides past a token,
// Subscribe answers ErrGone; a token still inside the window replays
// contiguously to the tail.
func TestSubscribeGoneDeterministic(t *testing.T) {
	ev, err := streamrpq.NewMultiEvaluator(1<<30, 1<<29, streamrpq.MustCompile("a"))
	if err != nil {
		t.Fatal(err)
	}
	defer ev.Close()
	b, err := NewBroker(ev, BrokerConfig{ReplayWindow: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Shutdown()
	for i := 0; i < 10; i++ {
		if _, err := b.Ingest([]streamrpq.Tuple{
			{TS: int64(i + 1), Src: fmt.Sprintf("s%d", i), Dst: fmt.Sprintf("d%d", i), Label: "a"},
		}); err != nil {
			t.Fatal(err)
		}
	}
	// One record per batch; window 4 retains batches 7..10.
	if _, err := b.Subscribe(nil, nil, &Seq{Batch: 2, Index: 0}); !errors.Is(err, ErrGone) {
		t.Fatalf("evicted token: err = %v, want ErrGone", err)
	}
	sub, err := b.Subscribe(nil, nil, &Seq{Batch: 7, Index: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Unsubscribe(sub)
	for want := uint64(8); want <= 10; want++ {
		rec := <-sub.ch
		if rec.seq != (Seq{Batch: want, Index: 0}) {
			t.Fatalf("replay out of order: %v, want batch %d", rec.seq, want)
		}
	}
	if _, err := b.Subscribe(nil, nil, &Seq{Batch: 11, Index: 0}); !errors.Is(err, ErrFuture) {
		t.Fatalf("future token: err = %v, want ErrFuture", err)
	}
}
