package serve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"streamrpq"
)

// FuzzResumeToken: ParseToken never panics, and every accepted token
// round-trips — ParseToken(s).Token() parses back to the same Seq, so
// a client can persist any token the server handed out and reattach
// with it verbatim. ("start" is the one alias: it parses to the zero
// Seq, whose canonical form is "v1-0-0".)
func FuzzResumeToken(f *testing.F) {
	f.Add("start")
	f.Add("v1-0-0")
	f.Add("v1-17-42")
	f.Add("v1-18446744073709551615-18446744073709551615")
	// Boundary-adjacent positions around the eviction floor and the
	// uint64 range: one below the maximum, maximum on one axis only,
	// and the first value past the range (must be rejected, not
	// wrapped — a wrapped token would reattach at a bogus position).
	f.Add("v1-18446744073709551614-0")
	f.Add("v1-0-18446744073709551615")
	f.Add("v1-18446744073709551615-0")
	f.Add("v1-18446744073709551616-0")
	f.Add("v1-0-18446744073709551616")
	f.Add("v1-1-0")
	f.Add("v1-0-1")
	f.Add("v2-1-1")
	f.Add("v1--1-2")
	f.Add("v1-1-2-3")
	f.Add("")
	f.Fuzz(func(t *testing.T, s string) {
		seq, err := ParseToken(s)
		if err != nil {
			return
		}
		canon := seq.Token()
		seq2, err := ParseToken(canon)
		if err != nil {
			t.Fatalf("canonical token %q (from %q) does not parse: %v", canon, s, err)
		}
		if seq2 != seq {
			t.Fatalf("round trip %q → %v → %q → %v", s, seq, canon, seq2)
		}
		// Canonical form is a fixed point.
		if seq2.Token() != canon {
			t.Fatalf("Token not canonical: %q → %q", canon, seq2.Token())
		}
	})
}

// FuzzSubscribeRequest: arbitrary subscribe bodies and from-parameters
// never panic the handler and always answer a documented status. The
// request context is pre-canceled so an accepted subscription
// terminates instead of streaming forever.
func FuzzSubscribeRequest(f *testing.F) {
	ev, err := streamrpq.NewMultiEvaluator(1000, 100, streamrpq.MustCompile("a/b"))
	if err != nil {
		f.Fatal(err)
	}
	defer ev.Close()
	srv, err := NewServer(ev, BrokerConfig{ReplayWindow: 16})
	if err != nil {
		f.Fatal(err)
	}
	if _, err := srv.Broker().Ingest([]streamrpq.Tuple{
		{TS: 1, Src: "x", Dst: "y", Label: "a"},
		{TS: 1, Src: "y", Dst: "z", Label: "b"},
	}); err != nil {
		f.Fatal(err)
	}
	defer srv.Broker().Shutdown()

	f.Add(`{"from":"start"}`, "")
	f.Add(`{"from":"v1-1-0","ids":[0],"patterns":["a/b"]}`, "")
	f.Add(`{"ids":[-1,999]}`, "v1-9999-0")
	f.Add(`not json`, "start")
	f.Add(``, "v1-1-")
	f.Add(`{"from":123}`, "")
	f.Add("{\"patterns\":[\"\xff\"]}", "\x00")
	f.Fuzz(func(t *testing.T, body, from string) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel() // accepted streams must exit via ctx.Done, not block
		url := "/subscribe"
		if from != "" {
			url += "?from=" + strings.ReplaceAll(from, "%", "%25")
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, strings.NewReader(body))
		if err != nil {
			return // unencodable fuzz input, not a handler bug
		}
		rr := httptest.NewRecorder()
		srv.Handler().ServeHTTP(rr, req)
		switch rr.Code {
		case http.StatusOK, http.StatusBadRequest, http.StatusGone, http.StatusServiceUnavailable:
		default:
			t.Fatalf("subscribe(body=%q, from=%q) answered %d", body, from, rr.Code)
		}
	})
}
