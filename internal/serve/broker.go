package serve

import (
	"errors"
	"fmt"
	"sync"

	"streamrpq"
)

// Record is one published result in the NDJSON stream: a match or a
// deletion-triggered invalidation of one query, stamped with its
// sequence position (the resume token). Field order is the wire order.
type Record struct {
	Token       string `json:"token"`
	Batch       uint64 `json:"batch,omitempty"`
	Tuple       int    `json:"tuple"`
	QueryID     int    `json:"queryId"`
	Query       string `json:"query,omitempty"`
	From        string `json:"from,omitempty"`
	To          string `json:"to,omitempty"`
	TS          int64  `json:"ts"`
	Invalidated bool   `json:"invalidated,omitempty"`

	// EOF marks the final record of a stream: the broker shut down or
	// evicted the subscriber. Token then holds the resume position.
	EOF    bool   `json:"eof,omitempty"`
	Reason string `json:"reason,omitempty"`

	seq Seq
}

// Errors the HTTP layer maps to status codes.
var (
	// ErrShutdown: the broker is draining; no new work is accepted.
	ErrShutdown = errors.New("serve: broker is shut down")
	// ErrGone: the resume position was truncated out of the replay
	// window (or predates this process); the client must re-sync.
	ErrGone = errors.New("serve: resume position is beyond the replay window")
	// ErrFuture: the resume position is ahead of the published stream.
	ErrFuture = errors.New("serve: resume position is in the future")
)

// subscriber is one attached result stream. The broker is the only
// sender on ch and closes it (under its lock); the HTTP handler is the
// only receiver. final, when set before close, is the stream's
// trailing EOF record.
type subscriber struct {
	ch       chan Record
	final    *Record
	ids      map[int]bool    // filter by registration index; nil = no id filter
	patterns map[string]bool // filter by pattern source; nil = no pattern filter
	last     Seq             // position of the newest record enqueued
}

// matches reports whether the subscriber's filter admits the record.
// With no filter at all every record matches; with filters, a record
// matches if either its query id or its pattern source is selected.
func (s *subscriber) matches(r Record) bool {
	if s.ids == nil && s.patterns == nil {
		return true
	}
	return s.ids[r.QueryID] || s.patterns[r.Query]
}

// Broker serializes access to a MultiEvaluator (which is not
// thread-safe) and fans its deterministic merged result stream out to
// subscribers. All public methods are safe for concurrent use; they
// take one mutex, so batches, registrations and (re)attachments are
// totally ordered — the ordering that makes resume tokens exact.
//
// Publishing never blocks on a subscriber: each subscriber owns a
// bounded buffer, and one that falls behind is evicted with a final
// EOF record naming its resume position. A stalled client therefore
// costs one buffer, never ingest latency.
type Broker struct {
	mu  sync.Mutex
	ev  *streamrpq.MultiEvaluator
	rng *replayRing
	sub map[*subscriber]struct{}
	ids map[*streamrpq.Query]int // registration index per live query

	subBuf int
	closed bool

	// metrics (read via Metrics)
	published uint64
	evictions uint64
	batches   uint64
	tuples    uint64
}

// BrokerConfig sizes the broker's bounded buffers.
type BrokerConfig struct {
	// ReplayWindow is the number of recent records retained for
	// reattachment (default 65536).
	ReplayWindow int
	// SubscriberBuffer is the per-subscriber live-record buffer
	// (default 1024). A reattaching subscriber's buffer is grown by its
	// replay burst, so reattachment within the window never evicts.
	SubscriberBuffer int
}

// NewBroker wraps an evaluator. Dynamic query registration is enabled
// if the evaluator does not have it yet (this requires the stream not
// to have started; a recovered evaluator carries the mode in its
// checkpoint). The replay floor starts at the evaluator's current
// batch position: a process restart truncates the (in-memory) replay
// window, so tokens from a previous process answer 410 Gone.
func NewBroker(ev *streamrpq.MultiEvaluator, cfg BrokerConfig) (*Broker, error) {
	if !ev.DynamicQueries() {
		// Best effort: a recovered evaluator whose checkpoint predates
		// dynamic mode has already streamed, so the mode cannot be
		// changed — it serves with a fixed query set (AddQuery errors).
		_ = ev.EnableDynamicQueries()
	}
	if cfg.ReplayWindow <= 0 {
		cfg.ReplayWindow = 65536
	}
	if cfg.SubscriberBuffer <= 0 {
		cfg.SubscriberBuffer = 1024
	}
	floor := Seq{}
	if b := ev.AppliedBatches(); b > 0 {
		// Everything up to and including the last applied batch was
		// published (if at all) by a previous process and is gone.
		floor = Seq{Batch: b, Index: ^uint64(0)}
	}
	b := &Broker{
		ev:     ev,
		rng:    newReplayRing(cfg.ReplayWindow, floor),
		sub:    make(map[*subscriber]struct{}),
		ids:    make(map[*streamrpq.Query]int),
		subBuf: cfg.SubscriberBuffer,
	}
	for i, q := range ev.RegisteredQueries() {
		if q != nil {
			b.ids[q] = i
		}
	}
	return b, nil
}

// IngestReply reports one accepted batch.
type IngestReply struct {
	Batch   uint64 `json:"batch"`
	Tuples  int    `json:"tuples"`
	Records int    `json:"records"`
	Token   string `json:"token"` // position of the batch's last record (or the stream tail)
}

// Ingest applies one batch and publishes its records. The error is the
// evaluator's verbatim (out-of-order input, durability failure, or a
// poisoned sharded backend), or ErrShutdown while draining.
func (b *Broker) Ingest(tuples []streamrpq.Tuple) (IngestReply, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return IngestReply{}, ErrShutdown
	}
	brs, err := b.ev.IngestBatch(tuples)
	if err != nil {
		return IngestReply{}, err
	}
	b.batches = b.ev.AppliedBatches()
	b.tuples += uint64(len(tuples))
	recs := b.flatten(brs, b.batches)
	b.publish(recs)
	return IngestReply{
		Batch:   b.batches,
		Tuples:  len(tuples),
		Records: len(recs),
		Token:   b.rng.tail().Token(),
	}, nil
}

// flatten turns one batch's grouped results into the record sequence,
// assigning in-batch ranks in the canonical merge order (tuple, query
// registration index, matches before invalidations).
func (b *Broker) flatten(brs []streamrpq.BatchResult, batch uint64) []Record {
	var recs []Record
	var idx uint64
	add := func(br streamrpq.BatchResult, m streamrpq.Match, inv bool) {
		seq := Seq{Batch: batch, Index: idx}
		idx++
		recs = append(recs, Record{
			Token:       seq.Token(),
			Batch:       batch,
			Tuple:       br.Tuple,
			QueryID:     b.ids[br.Query],
			Query:       br.Query.String(),
			From:        m.From,
			To:          m.To,
			TS:          m.TS,
			Invalidated: inv,
			seq:         seq,
		})
	}
	for _, br := range brs {
		for _, m := range br.Matches {
			add(br, m, false)
		}
		for _, m := range br.Invalidations {
			add(br, m, true)
		}
	}
	return recs
}

// publish appends to the replay ring and fans out, evicting any
// subscriber whose buffer is full. Called with the lock held.
func (b *Broker) publish(recs []Record) {
	if len(recs) == 0 {
		return
	}
	b.rng.append(recs...)
	b.published += uint64(len(recs))
	for s := range b.sub {
	deliver:
		for _, rec := range recs {
			if !s.matches(rec) {
				continue
			}
			select {
			case s.ch <- rec:
				s.last = rec.seq
			default:
				b.evict(s, "slow consumer")
				break deliver
			}
		}
	}
}

// evict detaches a subscriber with a final EOF record naming its
// resume position. Called with the lock held.
func (b *Broker) evict(s *subscriber, reason string) {
	if _, ok := b.sub[s]; !ok {
		return
	}
	delete(b.sub, s)
	b.evictions++
	s.final = &Record{EOF: true, Token: s.last.Token(), Reason: reason}
	close(s.ch)
}

// Subscribe attaches a result stream. from == nil attaches at the live
// tail; otherwise the retained records strictly after *from (that pass
// the filter) are pre-buffered, giving the byte-identical continuation
// of a stream detached at that position. Returns ErrGone when the
// position was truncated out of the replay window and ErrFuture when
// it is ahead of the published stream.
func (b *Broker) Subscribe(ids []int, patterns []string, from *Seq) (*subscriber, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, ErrShutdown
	}
	s := &subscriber{}
	if ids != nil {
		s.ids = make(map[int]bool, len(ids))
		for _, id := range ids {
			s.ids[id] = true
		}
	}
	if patterns != nil {
		s.patterns = make(map[string]bool, len(patterns))
		for _, p := range patterns {
			s.patterns[p] = true
		}
	}
	var replay []Record
	tail := b.rng.tail()
	s.last = tail
	if from != nil {
		if tail.Less(*from) {
			return nil, ErrFuture
		}
		recs, ok := b.rng.since(*from)
		if !ok {
			return nil, ErrGone
		}
		for _, rec := range recs {
			if s.matches(rec) {
				replay = append(replay, rec)
			}
		}
		s.last = *from
	}
	s.ch = make(chan Record, len(replay)+b.subBuf)
	for _, rec := range replay {
		s.ch <- rec
		s.last = rec.seq
	}
	b.sub[s] = struct{}{}
	return s, nil
}

// Unsubscribe detaches (idempotent; no final record — the caller is
// gone).
func (b *Broker) Unsubscribe(s *subscriber) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.sub[s]; ok {
		delete(b.sub, s)
		close(s.ch)
	}
}

// AddQuery compiles and registers a query online; it takes effect at
// the next batch boundary (its index is bootstrapped from the live
// window without pausing ingest). Returns the registration id.
func (b *Broker) AddQuery(pattern string) (int, error) {
	q, err := streamrpq.Compile(pattern)
	if err != nil {
		return 0, err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return 0, ErrShutdown
	}
	id, err := b.ev.AddQuery(q)
	if err != nil {
		return 0, err
	}
	b.ids[q] = id
	return id, nil
}

// RemoveQuery detaches the query with the given registration id.
func (b *Broker) RemoveQuery(id int) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return ErrShutdown
	}
	q := b.ev.QueryByIndex(id)
	if q == nil {
		return fmt.Errorf("serve: no query with id %d", id)
	}
	if err := b.ev.RemoveQuery(id); err != nil {
		return err
	}
	delete(b.ids, q)
	return nil
}

// QueryInfo describes one live registration.
type QueryInfo struct {
	ID      int    `json:"id"`
	Pattern string `json:"pattern"`
}

// Queries lists the live registrations in id order.
func (b *Broker) Queries() []QueryInfo {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := []QueryInfo{}
	for i, q := range b.ev.RegisteredQueries() {
		if q != nil {
			out = append(out, QueryInfo{ID: i, Pattern: q.String()})
		}
	}
	return out
}

// Metrics is a point-in-time snapshot of the broker's counters.
type Metrics struct {
	Batches     uint64
	Tuples      uint64
	Published   uint64
	Subscribers int
	Evictions   uint64
	Queries     int
	Edges       int
	Results     int64

	// Multi-query sharing: group layout and the effect of the per-label
	// relevance filter (see core.Stats).
	Groups         int
	SharedGroups   int
	Dispatches     int64
	RelevanceSkips int64
}

// Snapshot returns the current metrics.
func (b *Broker) Snapshot() Metrics {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := b.ev.Stats()
	return Metrics{
		Batches:     b.ev.AppliedBatches(),
		Tuples:      b.tuples,
		Published:   b.published,
		Subscribers: len(b.sub),
		Evictions:   b.evictions,
		Queries:     b.ev.NumQueries(),
		Edges:       st.Edges,
		Results:     st.Results,

		Groups:         st.Groups,
		SharedGroups:   st.SharedGroups,
		Dispatches:     st.Dispatches,
		RelevanceSkips: st.RelevanceSkips,
	}
}

// Healthy reports whether the broker accepts work: not draining and
// the evaluator not poisoned by a shard fault.
func (b *Broker) Healthy() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return ErrShutdown
	}
	return b.ev.Err()
}

// Shutdown drains the broker: in-flight calls finish (they hold the
// lock), every subscriber stream is terminated with a final
// {"eof":true,"token":…} record naming its resume position, a
// checkpoint is taken when persistence is enabled, and all later calls
// return ErrShutdown. Idempotent; returns the checkpoint error, if
// any. The evaluator itself is left open (the owner closes it).
func (b *Broker) Shutdown() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil
	}
	b.closed = true
	for s := range b.sub {
		delete(b.sub, s)
		s.final = &Record{EOF: true, Token: s.last.Token(), Reason: "shutdown"}
		close(s.ch)
	}
	if b.ev.Persistent() {
		return b.ev.Checkpoint()
	}
	return nil
}
