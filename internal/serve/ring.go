package serve

// replayRing is the bounded in-memory window of recently published
// records that backs subscriber reattachment. Records are appended in
// sequence order and evicted from the front when the capacity is
// exceeded; floor tracks the position of the newest record ever
// dropped (or, after a process restart, of everything published by the
// previous process), so the broker can distinguish "replayable gap"
// from "gap truncated away" (410 Gone).
//
// This is a deliberate deviation from a WAL-backed replay: reattach
// within the window is exact and cheap, reattach beyond it fails fast
// with Gone and the client re-syncs, and the serving layer never reads
// the persistence directory.
type replayRing struct {
	recs  []Record
	cap   int
	floor Seq // every record at or before this position is unavailable
}

func newReplayRing(capacity int, floor Seq) *replayRing {
	if capacity < 1 {
		capacity = 1
	}
	return &replayRing{cap: capacity, floor: floor}
}

// append adds records (already in sequence order) and evicts from the
// front to stay within capacity. Eviction compacts the backing array
// in place, which is why since must copy: a sub-slice of recs retained
// across an append would silently be overwritten with newer records.
func (r *replayRing) append(recs ...Record) {
	r.recs = append(r.recs, recs...)
	if n := len(r.recs) - r.cap; n > 0 {
		r.floor = r.recs[n-1].seq
		r.recs = append(r.recs[:0], r.recs[n:]...)
	}
}

// since returns the retained records strictly after from, or ok=false
// when records in (from, floor] were truncated away. The result is a
// copy, never a view of the ring: append's in-place eviction would
// clobber a retained sub-slice, turning a replay into a silently
// corrupted stream instead of the 410 Gone the floor check promises.
func (r *replayRing) since(from Seq) (recs []Record, ok bool) {
	if from.Less(r.floor) {
		return nil, false
	}
	// Binary search would do; the ring is small and append-ordered.
	i := 0
	for i < len(r.recs) && !from.Less(r.recs[i].seq) {
		i++
	}
	out := append([]Record(nil), r.recs[i:]...)
	if from.Less(r.floor) {
		// The eviction boundary moved past from while gathering (only
		// possible if a caller ever reads the ring without the broker
		// lock): the copy may be missing truncated records. Gone, never
		// a silently truncated stream.
		return nil, false
	}
	return out, true
}

// tail returns the position of the newest retained record, or the
// floor when the ring is empty.
func (r *replayRing) tail() Seq {
	if n := len(r.recs); n > 0 {
		return r.recs[n-1].seq
	}
	return r.floor
}
