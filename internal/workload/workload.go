// Package workload defines the real-world RPQ workload of the paper's
// evaluation: the 11 most common recursive query templates mined from
// Wikidata query logs (Table 2, from Bonifati, Martens and Timm, WWW
// 2019), instantiated with per-dataset label bindings (Table 3).
package workload

import (
	"fmt"

	"streamrpq/internal/automaton"
	"streamrpq/internal/datasets"
	"streamrpq/internal/pattern"
)

// Query is one instantiated workload query, compiled and bound to a
// dataset's dense label space.
type Query struct {
	Name  string // Q1..Q11
	Text  string // the concrete expression, e.g. "a2q/c2a*"
	Expr  *pattern.Expr
	Bound *automaton.Bound
}

// templates returns the Table 2 queries instantiated over the labels
// a, b, c, d (with k=3 for the variable-arity templates, as the paper
// sets for the SO graph).
func templates(a, b, c, d string) []struct{ name, expr string } {
	alt := fmt.Sprintf("%s|%s|%s", a, b, c)
	return []struct{ name, expr string }{
		{"Q1", fmt.Sprintf("%s*", a)},
		{"Q2", fmt.Sprintf("%s/%s*", a, b)},
		{"Q3", fmt.Sprintf("%s/%s*/%s*", a, b, c)},
		{"Q4", fmt.Sprintf("(%s)*", alt)},
		{"Q5", fmt.Sprintf("%s/%s*/%s", a, b, c)},
		{"Q6", fmt.Sprintf("%s*/%s*", a, b)},
		{"Q7", fmt.Sprintf("%s/%s/%s*", a, b, c)},
		{"Q8", fmt.Sprintf("%s?/%s*", a, b)},
		{"Q9", fmt.Sprintf("(%s)+", alt)},
		{"Q10", fmt.Sprintf("(%s)/%s*", alt, d)},
		{"Q11", fmt.Sprintf("%s/%s/%s", a, b, c)},
	}
}

// bindings maps dataset names to the four label variables (a, b, c, d)
// of the templates, following Table 3 (with the frequent Yago2s
// predicates for the RDF graph).
func bindings(name string) (a, b, c, d string, ok bool) {
	switch name {
	case "SO":
		return "a2q", "c2a", "c2q", "a2q", true
	case "LDBC":
		return "knows", "replyOf", "hasCreator", "likes", true
	case "Yago":
		return "happenedIn", "hasCapital", "participatedIn", "dealtWith", true
	case "gMark":
		return "p0", "p1", "p2", "p3", true
	}
	return "", "", "", "", false
}

// ldbcQueries lists the queries that are meaningful on the LDBC graph:
// its only recursive relations are knows and replyOf, so templates
// whose recursion ranges over other labels degenerate (Figure 4(b)
// reports Q1, Q2, Q3, Q5, Q6, Q7 and Q11).
var ldbcQueries = map[string]bool{
	"Q1": true, "Q2": true, "Q3": true, "Q5": true,
	"Q6": true, "Q7": true, "Q11": true,
}

// Names returns the workload query names applicable to the dataset, in
// Q1..Q11 order.
func Names(dataset string) []string {
	var out []string
	for _, t := range templates("a", "b", "c", "d") {
		if dataset == "LDBC" && !ldbcQueries[t.name] {
			continue
		}
		out = append(out, t.name)
	}
	return out
}

// Queries instantiates, compiles and binds the workload for a dataset.
func Queries(d *datasets.Dataset) ([]Query, error) {
	a, b, c, dd, ok := bindings(d.Name)
	if !ok {
		return nil, fmt.Errorf("workload: no label bindings for dataset %q", d.Name)
	}
	var out []Query
	for _, t := range templates(a, b, c, dd) {
		if d.Name == "LDBC" && !ldbcQueries[t.name] {
			continue
		}
		expr, err := pattern.Parse(t.expr)
		if err != nil {
			return nil, fmt.Errorf("workload: %s = %q: %w", t.name, t.expr, err)
		}
		dfa := automaton.Compile(expr)
		bound := dfa.Bind(d.LabelID, len(d.Labels))
		out = append(out, Query{Name: t.name, Text: t.expr, Expr: expr, Bound: bound})
	}
	return out, nil
}

// MustQueries is Queries panicking on error, for experiment drivers
// with statically known datasets.
func MustQueries(d *datasets.Dataset) []Query {
	qs, err := Queries(d)
	if err != nil {
		panic(err)
	}
	return qs
}

// ByName returns the named query from the instantiated workload.
func ByName(qs []Query, name string) (Query, bool) {
	for _, q := range qs {
		if q.Name == name {
			return q, true
		}
	}
	return Query{}, false
}
