package workload

import (
	"testing"

	"streamrpq/internal/datasets"
)

func TestQueriesSO(t *testing.T) {
	d := datasets.SO(datasets.DefaultSO(100))
	qs, err := Queries(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 11 {
		t.Fatalf("SO workload has %d queries, want 11", len(qs))
	}
	if qs[0].Name != "Q1" || qs[0].Text != "a2q*" {
		t.Errorf("Q1 = %q", qs[0].Text)
	}
	if qs[10].Name != "Q11" || qs[10].Text != "a2q/c2a/c2q" {
		t.Errorf("Q11 = %q", qs[10].Text)
	}
	// Every bound automaton must consider at least one of the 3 SO
	// labels relevant.
	for _, q := range qs {
		any := false
		for l := 0; l < len(d.Labels); l++ {
			if q.Bound.Relevant(l) {
				any = true
			}
		}
		if !any {
			t.Errorf("%s: no relevant label", q.Name)
		}
	}
}

func TestQueriesLDBCExclusions(t *testing.T) {
	d := datasets.LDBC(datasets.DefaultLDBC(100))
	qs, err := Queries(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 7 {
		t.Fatalf("LDBC workload has %d queries, want 7 (Fig. 4b)", len(qs))
	}
	for _, q := range qs {
		switch q.Name {
		case "Q4", "Q8", "Q9", "Q10":
			t.Errorf("query %s must be excluded on LDBC", q.Name)
		}
	}
	if _, ok := ByName(qs, "Q5"); !ok {
		t.Error("Q5 missing from LDBC workload")
	}
}

func TestQueriesYago(t *testing.T) {
	d := datasets.Yago(datasets.DefaultYago(100))
	qs, err := Queries(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 11 {
		t.Fatalf("Yago workload has %d queries, want 11", len(qs))
	}
	q4, ok := ByName(qs, "Q4")
	if !ok {
		t.Fatal("Q4 missing")
	}
	if q4.Text != "(happenedIn|hasCapital|participatedIn)*" {
		t.Errorf("Q4 = %q", q4.Text)
	}
}

func TestQueriesUnknownDataset(t *testing.T) {
	d := &datasets.Dataset{Name: "nope"}
	if _, err := Queries(d); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestNames(t *testing.T) {
	if n := len(Names("SO")); n != 11 {
		t.Errorf("Names(SO) = %d, want 11", n)
	}
	if n := len(Names("LDBC")); n != 7 {
		t.Errorf("Names(LDBC) = %d, want 7", n)
	}
}

func TestByNameMissing(t *testing.T) {
	if _, ok := ByName(nil, "Q1"); ok {
		t.Fatal("ByName on empty slice returned ok")
	}
}
