package core

import (
	"sync"

	"streamrpq/internal/stream"
)

// invIndex is the vertex → tree-roots inverted index of §5.2, striped
// by vertex so that concurrent tree updates (intra-query parallelism
// across spanning trees, inter-query sharding across engines) contend
// only on the stripe of the vertex they touch instead of one global
// mutex. Stripe count is fixed at construction; 1 stripe reproduces
// the sequential engine's behaviour with negligible overhead.
//
// Vertex ids are dense (stream.Dict assigns them in first-seen order),
// so the index exploits them directly instead of hashing raw vertex
// values: stripe selection is a mask of the low bits (consecutive ids
// spread round-robin across stripes), and within a stripe the vertex's
// row is indexed by the remaining high bits into a flat slice — two
// array offsets where the map-of-maps representation paid two hash
// probes per lookup. Per-row root sets are a small linear-scanned
// slice (trees-per-vertex is tiny for real workloads), promoted to a
// map past invPromote roots.
//
// Epoch discipline: unlike the shared snapshot graph, the index needs
// no version intervals. It is owned by exactly one member engine, and
// that member applies its sub-batches strictly in epoch order (the
// pipelined coordinator overlaps *different members'* sub-batches, and
// the graph's epoch handle — SetReadEpoch — is what isolates those).
// Every appendRoots snapshot therefore already reflects precisely the
// prefix of sub-batches this member has applied, i.e. the state at the
// member's current read epoch; within one member, index time and epoch
// time coincide. The stripe locks exist only for the intra-member tree
// fan-out of ParallelRAPQ, which is bracketed inside a single epoch.
type invIndex struct {
	stripes []invStripe
	mask    uint32
	shift   uint32 // log2(len(stripes)): row index is v >> shift
}

// invPromote is the root count above which a row's linear-scanned
// slice is promoted to a map.
const invPromote = 16

// invRow is the root set of one vertex: a small slice scanned
// linearly, or a map once it outgrows invPromote.
type invRow struct {
	small []stream.VertexID
	big   map[stream.VertexID]struct{}
}

type invStripe struct {
	mu   sync.Mutex
	rows []invRow // indexed by v >> shift, grown on demand
	_    [40]byte // pad to a cache line against false sharing
}

// newInvIndex returns an index with the given stripe count rounded up
// to a power of two (minimum 1).
func newInvIndex(stripes int) *invIndex {
	n := 1
	sh := uint32(0)
	for n < stripes {
		n <<= 1
		sh++
	}
	return &invIndex{stripes: make([]invStripe, n), mask: uint32(n - 1), shift: sh}
}

func (ix *invIndex) stripe(v stream.VertexID) *invStripe {
	return &ix.stripes[uint32(v)&ix.mask]
}

// row returns the vertex's row in st, growing the stripe to cover it.
func (ix *invIndex) row(st *invStripe, v stream.VertexID) *invRow {
	r := int(uint32(v) >> ix.shift)
	if r >= len(st.rows) {
		n := len(st.rows)
		if n == 0 {
			n = 16
		}
		for n <= r {
			n *= 2
		}
		rows := make([]invRow, n)
		copy(rows, st.rows)
		st.rows = rows
	}
	return &st.rows[r]
}

// add records that the tree rooted at root contains v.
func (ix *invIndex) add(v, root stream.VertexID) {
	st := ix.stripe(v)
	st.mu.Lock()
	row := ix.row(st, v)
	if row.big != nil {
		row.big[root] = struct{}{}
		st.mu.Unlock()
		return
	}
	for _, r := range row.small {
		if r == root {
			st.mu.Unlock()
			return
		}
	}
	if len(row.small) >= invPromote {
		row.big = make(map[stream.VertexID]struct{}, 2*len(row.small))
		for _, r := range row.small {
			row.big[r] = struct{}{}
		}
		row.small = nil
		row.big[root] = struct{}{}
		st.mu.Unlock()
		return
	}
	row.small = append(row.small, root)
	st.mu.Unlock()
}

// drop removes the (v, root) entry.
func (ix *invIndex) drop(v, root stream.VertexID) {
	st := ix.stripe(v)
	st.mu.Lock()
	r := int(uint32(v) >> ix.shift)
	if r < len(st.rows) {
		row := &st.rows[r]
		if row.big != nil {
			delete(row.big, root)
		} else {
			for i, x := range row.small {
				if x == root {
					// Order-preserving removal: appendRoots snapshots
					// feed the sequential engines' fan-out order, which
					// must not depend on removal history more than the
					// insertion order already does.
					row.small = append(row.small[:i], row.small[i+1:]...)
					break
				}
			}
		}
	}
	st.mu.Unlock()
}

// has reports whether the (v, root) entry exists (invariant checks).
func (ix *invIndex) has(v, root stream.VertexID) bool {
	st := ix.stripe(v)
	st.mu.Lock()
	defer st.mu.Unlock()
	r := int(uint32(v) >> ix.shift)
	if r >= len(st.rows) {
		return false
	}
	row := &st.rows[r]
	if row.big != nil {
		_, ok := row.big[root]
		return ok
	}
	for _, x := range row.small {
		if x == root {
			return true
		}
	}
	return false
}

// forEach calls f for every (v, root) entry (invariant checks only; f
// must not call back into the index).
func (ix *invIndex) forEach(f func(v, root stream.VertexID) bool) {
	for i := range ix.stripes {
		st := &ix.stripes[i]
		st.mu.Lock()
		for r := range st.rows {
			v := stream.VertexID(uint32(r)<<ix.shift | uint32(i))
			row := &st.rows[r]
			for _, root := range row.small {
				if !f(v, root) {
					st.mu.Unlock()
					return
				}
			}
			for root := range row.big {
				if !f(v, root) {
					st.mu.Unlock()
					return
				}
			}
		}
		st.mu.Unlock()
	}
}

// appendRoots appends the roots of all trees containing v to dst and
// returns the extended slice. The snapshot is taken under the stripe
// lock; callers iterate it without holding any lock.
func (ix *invIndex) appendRoots(v stream.VertexID, dst []stream.VertexID) []stream.VertexID {
	st := ix.stripe(v)
	st.mu.Lock()
	r := int(uint32(v) >> ix.shift)
	if r < len(st.rows) {
		row := &st.rows[r]
		dst = append(dst, row.small...)
		for root := range row.big {
			dst = append(dst, root)
		}
	}
	st.mu.Unlock()
	return dst
}
