package core

import (
	"sync"

	"streamrpq/internal/stream"
)

// invIndex is the vertex → tree-roots inverted index of §5.2, striped
// by vertex so that concurrent tree updates (intra-query parallelism
// across spanning trees, inter-query sharding across engines) contend
// only on the stripe of the vertex they touch instead of one global
// mutex. Stripe count is fixed at construction; 1 stripe reproduces
// the sequential engine's behaviour with negligible overhead.
//
// Epoch discipline: unlike the shared snapshot graph, the index needs
// no version intervals. It is owned by exactly one member engine, and
// that member applies its sub-batches strictly in epoch order (the
// pipelined coordinator overlaps *different members'* sub-batches, and
// the graph's epoch handle — SetReadEpoch — is what isolates those).
// Every appendRoots snapshot therefore already reflects precisely the
// prefix of sub-batches this member has applied, i.e. the state at the
// member's current read epoch; within one member, index time and epoch
// time coincide. The stripe locks exist only for the intra-member tree
// fan-out of ParallelRAPQ, which is bracketed inside a single epoch.
type invIndex struct {
	stripes []invStripe
	mask    uint32
}

type invStripe struct {
	mu sync.Mutex
	m  map[stream.VertexID]map[stream.VertexID]struct{} // vertex -> roots of trees containing it
	_  [40]byte                                         // pad to a cache line against false sharing
}

// newInvIndex returns an index with the given stripe count rounded up
// to a power of two (minimum 1).
func newInvIndex(stripes int) *invIndex {
	n := 1
	for n < stripes {
		n <<= 1
	}
	ix := &invIndex{stripes: make([]invStripe, n), mask: uint32(n - 1)}
	for i := range ix.stripes {
		ix.stripes[i].m = make(map[stream.VertexID]map[stream.VertexID]struct{})
	}
	return ix
}

func (ix *invIndex) stripe(v stream.VertexID) *invStripe {
	// Fibonacci hashing spreads consecutive vertex ids across stripes.
	return &ix.stripes[(uint32(v)*2654435769)>>16&ix.mask]
}

// add records that the tree rooted at root contains v.
func (ix *invIndex) add(v, root stream.VertexID) {
	st := ix.stripe(v)
	st.mu.Lock()
	m := st.m[v]
	if m == nil {
		m = make(map[stream.VertexID]struct{})
		st.m[v] = m
	}
	m[root] = struct{}{}
	st.mu.Unlock()
}

// drop removes the (v, root) entry.
func (ix *invIndex) drop(v, root stream.VertexID) {
	st := ix.stripe(v)
	st.mu.Lock()
	if m := st.m[v]; m != nil {
		delete(m, root)
		if len(m) == 0 {
			delete(st.m, v)
		}
	}
	st.mu.Unlock()
}

// has reports whether the (v, root) entry exists (invariant checks).
func (ix *invIndex) has(v, root stream.VertexID) bool {
	st := ix.stripe(v)
	st.mu.Lock()
	_, ok := st.m[v][root]
	st.mu.Unlock()
	return ok
}

// forEach calls f for every (v, root) entry (invariant checks only; f
// must not call back into the index).
func (ix *invIndex) forEach(f func(v, root stream.VertexID) bool) {
	for i := range ix.stripes {
		st := &ix.stripes[i]
		st.mu.Lock()
		for v, roots := range st.m {
			for root := range roots {
				if !f(v, root) {
					st.mu.Unlock()
					return
				}
			}
		}
		st.mu.Unlock()
	}
}

// appendRoots appends the roots of all trees containing v to dst and
// returns the extended slice. The snapshot is taken under the stripe
// lock; callers iterate it without holding any lock.
func (ix *invIndex) appendRoots(v stream.VertexID, dst []stream.VertexID) []stream.VertexID {
	st := ix.stripe(v)
	st.mu.Lock()
	for root := range st.m[v] {
		dst = append(dst, root)
	}
	st.mu.Unlock()
	return dst
}
