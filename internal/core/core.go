// Package core implements the streaming RPQ evaluation algorithms of
// Pacaci, Bonifati and Özsu, "Regular Path Query Evaluation on
// Streaming Graphs" (SIGMOD 2020):
//
//   - RAPQ (§3): incremental evaluation under arbitrary path semantics
//     over sliding windows, via the Δ spanning-tree index (Algorithm
//     RAPQ, Insert, ExpiryRAPQ).
//   - Explicit deletions (§3.2): negative tuples handled with the same
//     expiry machinery (Algorithm Delete).
//   - RSPQ (§4): incremental evaluation under simple path semantics
//     with conflict detection over the suffix-language containment
//     relation (Algorithms RSPQ, Extend, Unmark, ExpiryRSPQ).
//   - Batch oracles: the polynomial product-graph algorithm for
//     arbitrary semantics and a simple-path enumerator, used both for
//     testing and as the substrate of the rescan baseline (§5.6).
package core

import (
	"time"

	"streamrpq/internal/automaton"
	"streamrpq/internal/graph"
	"streamrpq/internal/stream"
	"streamrpq/internal/window"
)

// Match is a query result: the pair (From, To) is connected by a path
// whose label is in L(R) and whose edges are all inside one window.
// TS is the stream time at which the result was discovered.
type Match struct {
	From stream.VertexID
	To   stream.VertexID
	TS   int64
}

// Pair identifies a result independent of discovery time.
type Pair struct {
	From stream.VertexID
	To   stream.VertexID
}

// Sink receives the append-only result stream of a persistent query.
// OnInvalidate is called only for results retracted by explicit
// deletions (§3.2); window expiry never retracts results under the
// implicit window semantics the engines implement.
type Sink interface {
	OnMatch(m Match)
	OnInvalidate(m Match)
}

// Engine is a persistent RPQ evaluator: tuples go in, results flow to
// the Sink.
type Engine interface {
	// Process consumes one streaming graph tuple (insert or delete).
	Process(t stream.Tuple)
	// Stats returns a snapshot of internal counters.
	Stats() Stats
	// Graph exposes the current snapshot graph (read-only use).
	Graph() *graph.Graph
}

// MemberEngine is the contract between a multi-query coordinator
// (core.Multi, or the sharded engine in internal/shard) and one member
// query's index maintenance. The coordinator owns the shared snapshot
// graph and the window clock: it attaches its graph to every member,
// applies each graph mutation exactly once, and then drives the
// members' Δ-index updates through Apply*. Members never mutate the
// shared graph.
type MemberEngine interface {
	// AttachGraph replaces the engine's private snapshot graph with the
	// coordinator's shared one. Must precede the first Apply call.
	AttachGraph(g *graph.Graph)
	// SetReadEpoch hands the engine the epoch at which subsequent Apply
	// traversals observe the shared graph. A pipelined coordinator keeps
	// mutating the graph at later epochs while this engine is still
	// applying an older sub-batch; the epoch handle makes the engine see
	// exactly the logical snapshot its sub-batch was cut against.
	// Standalone engines leave it at 0, which is their private graph's
	// (never advanced) current epoch.
	SetReadEpoch(e graph.Epoch)
	// ApplyInsert updates the Δ index for an edge the coordinator has
	// already inserted into the shared graph.
	ApplyInsert(t stream.Tuple)
	// ApplyDelete handles an explicit deletion the coordinator has
	// already removed from the shared graph.
	ApplyDelete(t stream.Tuple)
	// ApplyExpiry runs the window-expiry pass for a slide-boundary
	// deadline; the coordinator has already expired the shared graph.
	ApplyExpiry(deadline int64)
	// RelevantLabel reports whether the label is in the query alphabet.
	RelevantLabel(l stream.LabelID) bool
	// LabelSpace returns the dense label-space size the automaton was
	// bound against; all members of one coordinator must agree.
	LabelSpace() int
	// Stats returns a snapshot of internal counters.
	Stats() Stats
	// SnapshotState captures the member's Δ index and clocks for a
	// checkpoint (internal/persist). Call only at a consistent point:
	// between batches for a sharded coordinator.
	SnapshotState() *RAPQState
	// RestoreState rebuilds the Δ index from a checkpoint. Only legal on
	// a freshly constructed member before any Apply call.
	RestoreState(*RAPQState) error
	// SetSink redirects the engine's result stream (nil discards). A
	// dynamically registered member bootstraps into a discard sink, then
	// gets the coordinator's capture sink installed at activation.
	SetSink(s Sink)
	// BootstrapFromGraph builds the Δ index of a fresh engine from the
	// window content visible at one epoch of the shared graph; see
	// RAPQ.BootstrapFromGraph.
	BootstrapFromGraph(g *graph.Graph, ep graph.Epoch)
	// AlignClock advances the engine's stream clock to now if it is
	// behind. After a window bootstrap this re-creates the clock a
	// from-start engine would hold when the newest relevant tuple is no
	// longer in the window (deleted or expired): the edge is gone, the
	// clock survives.
	AlignClock(now int64)
}

// Stats captures the internal state sizes and costs the paper reports
// (Figures 5, 6(b), 9).
type Stats struct {
	Trees          int   // |Δ|: number of spanning trees
	Nodes          int   // total nodes over all spanning trees
	Edges          int   // edges in the snapshot graph
	Vertices       int   // vertices in the snapshot graph
	Results        int64 // results emitted (append-only stream length)
	Invalidations  int64 // results retracted by explicit deletions
	TuplesSeen     int64 // tuples offered to the engine
	TuplesDropped  int64 // tuples whose label is outside ΣQ
	ExpiryRuns     int64 // number of window-expiry passes
	ExpiryTime     time.Duration
	InsertCalls    int64 // invocations of Insert/Extend (amortized-cost probe)
	ConflictsFound int64 // RSPQ only
	Unmarkings     int64 // RSPQ only

	// Multi-query coordinators only: shared-group layout and the effect
	// of the per-label relevance filter on dispatch.
	Groups         int   // live Δ-index groups (≤ live queries)
	SharedGroups   int   // groups evaluated once for ≥ 2 subscribed queries
	Dispatches     int64 // (tuple, group) applications passing the label filter
	RelevanceSkips int64 // (tuple, group) applications the filter avoided
}

// nodeKey packs a (vertex, automaton state) pair. State counts are
// bounded by the DFA size, far below 2^16 in practice; Bind enforces
// the dense id space.
type nodeKey uint64

func mkNodeKey(v stream.VertexID, s int32) nodeKey {
	return nodeKey(uint64(v)<<16 | uint64(uint16(s)))
}

func (k nodeKey) vertex() stream.VertexID { return stream.VertexID(k >> 16) }
func (k nodeKey) state() int32            { return int32(uint16(k)) }

// config carries options shared by both engines.
type config struct {
	spec window.Spec
	sink Sink
	// maxExtends bounds the Extend cascade per tuple in the RSPQ
	// engine as a safety valve against the NP-hard worst case; 0 means
	// unlimited.
	maxExtends int64
	// scanAllTrees disables the RAPQ inverted index (ablation only).
	scanAllTrees bool
}

// Option configures an engine.
type Option func(*config)

// WithSink directs the result stream to s. The default sink discards
// results (useful for pure throughput benchmarks).
func WithSink(s Sink) Option { return func(c *config) { c.sink = s } }

// WithMaxExtends bounds the RSPQ Extend cascade per tuple (0 =
// unlimited). The RAPQ engine ignores it.
func WithMaxExtends(n int64) Option { return func(c *config) { c.maxExtends = n } }

// WithoutInvertedIndex disables the vertex→trees inverted index in the
// RAPQ engine, so every tuple visits every spanning tree (the literal
// "foreach Tx ∈ Δ" of the pseudocode). Provided for the ablation
// experiment quantifying the index's benefit; never use it otherwise.
func WithoutInvertedIndex() Option { return func(c *config) { c.scanAllTrees = true } }

// MultiSink fans the result stream out to several sinks in order.
type MultiSink []Sink

// OnMatch implements Sink.
func (ms MultiSink) OnMatch(m Match) {
	for _, s := range ms {
		s.OnMatch(m)
	}
}

// OnInvalidate implements Sink.
func (ms MultiSink) OnInvalidate(m Match) {
	for _, s := range ms {
		s.OnInvalidate(m)
	}
}

// discardSink drops everything.
type discardSink struct{}

func (discardSink) OnMatch(Match)      {}
func (discardSink) OnInvalidate(Match) {}

// CollectorSink accumulates the result stream with set semantics: a
// pair is live if it has been matched and not invalidated since.
type CollectorSink struct {
	Live    map[Pair]int64 // pair -> first TS at which currently live
	Matched []Match        // full append-only match log
	Retract []Match        // full invalidation log
}

// NewCollector returns an empty CollectorSink.
func NewCollector() *CollectorSink {
	return &CollectorSink{Live: make(map[Pair]int64)}
}

// OnMatch implements Sink.
func (c *CollectorSink) OnMatch(m Match) {
	c.Matched = append(c.Matched, m)
	p := Pair{From: m.From, To: m.To}
	if _, ok := c.Live[p]; !ok {
		c.Live[p] = m.TS
	}
}

// OnInvalidate implements Sink.
func (c *CollectorSink) OnInvalidate(m Match) {
	c.Retract = append(c.Retract, m)
	delete(c.Live, Pair{From: m.From, To: m.To})
}

// Pairs returns the distinct pairs ever matched.
func (c *CollectorSink) Pairs() map[Pair]struct{} {
	out := make(map[Pair]struct{}, len(c.Matched))
	for _, m := range c.Matched {
		out[Pair{From: m.From, To: m.To}] = struct{}{}
	}
	return out
}

// CountingSink counts matches without retaining them.
type CountingSink struct {
	Matches       int64
	Invalidations int64
}

// OnMatch implements Sink.
func (c *CountingSink) OnMatch(Match) { c.Matches++ }

// OnInvalidate implements Sink.
func (c *CountingSink) OnInvalidate(Match) { c.Invalidations++ }

// FuncSink adapts functions to the Sink interface. Nil fields are
// no-ops.
type FuncSink struct {
	Match      func(Match)
	Invalidate func(Match)
}

// OnMatch implements Sink.
func (f FuncSink) OnMatch(m Match) {
	if f.Match != nil {
		f.Match(m)
	}
}

// OnInvalidate implements Sink.
func (f FuncSink) OnInvalidate(m Match) {
	if f.Invalidate != nil {
		f.Invalidate(m)
	}
}

var (
	_ Sink = (*CollectorSink)(nil)
	_ Sink = (*CountingSink)(nil)
	_ Sink = FuncSink{}
	_ Sink = discardSink{}
	_      = automaton.NoState
)
