package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"streamrpq/internal/automaton"
	"streamrpq/internal/pattern"
	"streamrpq/internal/stream"
	"streamrpq/internal/window"
)

// TestRAPQInvariantsRandom checks the Δ-index invariants after every
// tuple of random streams across query shapes, window configurations
// and deletion ratios.
func TestRAPQInvariantsRandom(t *testing.T) {
	configs := []struct {
		expr     string
		size     int64
		slide    int64
		delRatio float64
	}{
		{"a*", 20, 1, 0},
		{"(a/b)+", 20, 1, 0.1},
		{"a/b*/c", 15, 3, 0.05},
		{"(a|b|c)+", 25, 5, 0.2},
		{"a?/b*", 10, 2, 0},
	}
	for _, cfg := range configs {
		cfg := cfg
		t.Run(cfg.expr, func(t *testing.T) {
			rng := rand.New(rand.NewSource(2024))
			a := bind(t, cfg.expr, "a", "b", "c")
			e := NewRAPQ(a, window.Spec{Size: cfg.size, Slide: cfg.slide})
			tuples := randomTuples(rng, 400, 9, 3, 2, cfg.delRatio)
			for i, tu := range tuples {
				e.Process(tu)
				if i%7 == 0 { // checking every step is O(n²) overall
					if err := e.CheckInvariants(); err != nil {
						t.Fatalf("tuple %d (%v): %v", i, tu, err)
					}
				}
			}
			if err := e.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestRSPQInvariantsRandom does the same for the simple-path engine.
func TestRSPQInvariantsRandom(t *testing.T) {
	configs := []struct {
		expr     string
		delRatio float64
	}{
		{"(a|b)*", 0},
		{"(a/b)+", 0.1},
		{"a/b*", 0.15},
		{"a/b*/a", 0},
	}
	for _, cfg := range configs {
		cfg := cfg
		t.Run(cfg.expr, func(t *testing.T) {
			rng := rand.New(rand.NewSource(77))
			a := bind(t, cfg.expr, "a", "b")
			e := NewRSPQ(a, window.Spec{Size: 18, Slide: 2})
			tuples := randomTuples(rng, 300, 7, 2, 2, cfg.delRatio)
			for i, tu := range tuples {
				e.Process(tu)
				if i%7 == 0 {
					if err := e.CheckInvariants(); err != nil {
						t.Fatalf("tuple %d (%v): %v", i, tu, err)
					}
				}
			}
			if err := e.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestRAPQQuickProperty drives the engine with quick-generated inputs:
// arbitrary short streams must never violate invariants or panic, and
// cumulative results must be monotone.
func TestRAPQQuickProperty(t *testing.T) {
	a := bindNoHelper("(a/b)+", "a", "b", "c")
	f := func(seed int64, sizeSel, slideSel uint8, raw []byte) bool {
		size := int64(sizeSel%40) + 5
		slide := int64(slideSel%10) + 1
		if slide > size {
			slide = size
		}
		sink := NewCollector()
		e := NewRAPQ(a, window.Spec{Size: size, Slide: slide}, WithSink(sink))
		ts := int64(0)
		lastCount := 0
		for i := 0; i+3 < len(raw); i += 4 {
			ts += int64(raw[i] % 4)
			tu := stream.Tuple{
				TS:    ts,
				Src:   stream.VertexID(raw[i+1] % 8),
				Dst:   stream.VertexID(raw[i+2] % 8),
				Label: stream.LabelID(raw[i+3] % 3),
			}
			if raw[i]%11 == 0 {
				tu.Op = stream.Delete
			}
			e.Process(tu)
			if len(sink.Matched) < lastCount {
				return false // append-only stream shrank
			}
			lastCount = len(sink.Matched)
		}
		return e.CheckInvariants() == nil
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(5))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// bindNoHelper mirrors bind for use inside quick properties where no
// testing.TB is available.
func bindNoHelper(expr string, labels ...string) *automaton.Bound {
	ids := map[string]int{}
	for i, l := range labels {
		ids[l] = i
	}
	return automaton.Compile(pattern.MustParse(expr)).Bind(func(s string) int {
		if id, ok := ids[s]; ok {
			return id
		}
		return -1
	}, len(labels))
}

// TestRSPQQuickProperty mirrors the RAPQ property for the simple-path
// engine at a smaller scale (the engine may do exponential work).
func TestRSPQQuickProperty(t *testing.T) {
	a := bindNoHelper("a/b*", "a", "b")
	f := func(raw []byte) bool {
		sink := NewCollector()
		e := NewRSPQ(a, window.Spec{Size: 15, Slide: 1}, WithSink(sink), WithMaxExtends(10000))
		ts := int64(0)
		for i := 0; i+3 < len(raw); i += 4 {
			ts += int64(raw[i] % 3)
			tu := stream.Tuple{
				TS:    ts,
				Src:   stream.VertexID(raw[i+1] % 6),
				Dst:   stream.VertexID(raw[i+2] % 6),
				Label: stream.LabelID(raw[i+3] % 2),
			}
			if raw[i]%13 == 0 {
				tu.Op = stream.Delete
			}
			e.Process(tu)
		}
		return e.CheckInvariants() == nil
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(9))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
