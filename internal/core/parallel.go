package core

import (
	"runtime"
	"sort"
	"sync"
	"time"

	"streamrpq/internal/automaton"
	"streamrpq/internal/graph"
	"streamrpq/internal/stream"
	"streamrpq/internal/window"
)

// ParallelRAPQ reproduces the intra-query parallelism of the paper's
// prototype (§5.1.1): "RAPQ algorithms employ intra-query parallelism
// by deploying a thread pool to process multiple spanning trees in
// parallel that are accessed for each incoming edge. Window management
// is parallelized similarly."
//
// Spanning trees are disjoint, so per-tuple tree updates and per-slide
// tree expiries run concurrently across a worker pool; the snapshot
// graph is updated once per tuple before the fan-out and is read-only
// during it. Shared bookkeeping avoids the coarse global mutex of a
// naive implementation: the vertex→trees inverted index is striped by
// vertex (see invIndex), and result emission and statistics are
// buffered per worker and merged after the fan-out barrier, so the
// sink observes a deterministic (From, To)-sorted order per tuple and
// never runs on a worker goroutine. This makes intra-query tree
// parallelism compose with the inter-query sharding of internal/shard:
// neither layer takes a whole-engine lock.
type ParallelRAPQ struct {
	inner   *RAPQ
	workers int

	pool []*treeWorker // per-goroutine scratch + result buffers, reused
}

// NewParallelRAPQ returns a tree-parallel RAPQ engine with the given
// worker count (0 means GOMAXPROCS).
func NewParallelRAPQ(a *automaton.Bound, spec window.Spec, workers int, opts ...Option) *ParallelRAPQ {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &ParallelRAPQ{workers: workers}
	p.inner = NewRAPQ(a, spec, opts...)
	// Replace the single-stripe index of the sequential engine with one
	// wide enough that workers rarely collide on a stripe.
	p.inner.inv = newInvIndex(4 * workers)
	p.pool = make([]*treeWorker, workers)
	for i := range p.pool {
		p.pool[i] = &treeWorker{}
	}
	return p
}

// Graph implements Engine.
func (p *ParallelRAPQ) Graph() *graph.Graph { return p.inner.g }

// AttachGraph implements MemberEngine.
func (p *ParallelRAPQ) AttachGraph(g *graph.Graph) { p.inner.g = g }

// SetReadEpoch implements MemberEngine. Set before a fan-out; the tree
// workers read it concurrently but never write it.
func (p *ParallelRAPQ) SetReadEpoch(ep graph.Epoch) { p.inner.epoch = ep }

// RelevantLabel implements MemberEngine.
func (p *ParallelRAPQ) RelevantLabel(l stream.LabelID) bool { return p.inner.RelevantLabel(l) }

// SetSink delegates to the inner engine; see RAPQ.SetSink.
func (p *ParallelRAPQ) SetSink(s Sink) { p.inner.SetSink(s) }

// AlignClock delegates to the inner engine; see RAPQ.AlignClock.
func (p *ParallelRAPQ) AlignClock(now int64) { p.inner.AlignClock(now) }

// BootstrapFromGraph delegates to the inner engine's sequential replay;
// see RAPQ.BootstrapFromGraph.
func (p *ParallelRAPQ) BootstrapFromGraph(g *graph.Graph, ep graph.Epoch) {
	p.inner.BootstrapFromGraph(g, ep)
}

// LabelSpace implements MemberEngine.
func (p *ParallelRAPQ) LabelSpace() int { return p.inner.LabelSpace() }

// Stats implements Engine.
func (p *ParallelRAPQ) Stats() Stats { return p.inner.Stats() }

// Process implements Engine. The per-tuple work fans out over the
// spanning trees that contain the tuple's source vertex; expiry fans
// out over all trees.
func (p *ParallelRAPQ) Process(t stream.Tuple) {
	e := p.inner
	e.stats.TuplesSeen++
	if t.TS > e.now {
		e.now = t.TS
	}
	if deadline, due := e.win.Observe(t.TS); due {
		e.g.Expire(deadline, nil)
		p.ApplyExpiry(deadline)
	}
	if !e.a.Relevant(int(t.Label)) {
		e.stats.TuplesDropped++
		return
	}
	if t.Op == stream.Delete {
		// Deletions are rare (§5.4); process them sequentially with
		// the uniform machinery.
		if e.g.Delete(t.Key()) {
			e.ApplyDelete(t)
		}
		return
	}
	e.g.Insert(t.Src, t.Dst, t.Label, t.TS)
	p.ApplyInsert(t)
}

// ApplyInsert implements MemberEngine: the Δ update for an edge that
// is already in the snapshot graph, fanned out over the trees that
// contain the source vertex.
func (p *ParallelRAPQ) ApplyInsert(t stream.Tuple) {
	e := p.inner
	if t.TS > e.now {
		e.now = t.TS
	}
	validFrom := e.win.Spec().ValidFrom(e.now)

	if e.a.Step(e.a.Start, int(t.Label)) != automaton.NoState {
		e.ensureTree(t.Src)
	}
	roots := e.inv.appendRoots(t.Src, e.rootScratch[:0])
	e.rootScratch = roots[:0]
	if len(roots) == 0 {
		return
	}
	// Small fan-outs are cheaper sequentially; results still go
	// through a worker buffer so every path emits in the same sorted
	// order.
	if len(roots) < 2*p.workers {
		for _, root := range roots {
			p.updateTree(root, t, validFrom, p.pool[0])
		}
		p.mergeWorkers()
		return
	}

	var wg sync.WaitGroup
	work := make(chan stream.VertexID, len(roots))
	for _, r := range roots {
		work <- r
	}
	close(work)
	for w := 0; w < p.workers; w++ {
		wg.Add(1)
		go func(local *treeWorker) {
			defer wg.Done()
			for root := range work {
				p.updateTree(root, t, validFrom, local)
			}
		}(p.pool[w])
	}
	wg.Wait()
	p.mergeWorkers()
}

// treeWorker carries per-goroutine scratch state and result buffers:
// the cascade stack, the adjacency copies of the buffer traversal API,
// and the expiry candidate list. Workers never touch the sink or the
// shared statistics directly; the coordinator goroutine merges their
// buffers after each fan-out.
type treeWorker struct {
	stack       []insertOp
	outBuf      []graph.HalfEdge
	inBuf       []graph.HalfEdge
	cands       []nodeKey
	matches     []Match
	insertCalls int64
}

// mergeWorkers folds the per-worker buffers into the engine's shared
// statistics and emits buffered matches to the sink in a deterministic
// (From, To)-sorted order. Runs on the coordinating goroutine only.
func (p *ParallelRAPQ) mergeWorkers() {
	e := p.inner
	var all []Match
	for _, w := range p.pool {
		e.stats.InsertCalls += w.insertCalls
		w.insertCalls = 0
		all = append(all, w.matches...)
		w.matches = w.matches[:0]
	}
	if len(all) == 0 {
		return
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].From != all[j].From {
			return all[i].From < all[j].From
		}
		if all[i].To != all[j].To {
			return all[i].To < all[j].To
		}
		return all[i].TS < all[j].TS
	})
	for _, m := range all {
		e.stats.Results++
		e.sink.OnMatch(m)
	}
}

// updateTree applies the tuple to a single spanning tree, using the
// given worker's scratch stack and result buffer. The trees map itself
// is not mutated during a fan-out, so the lookup needs no lock.
func (p *ParallelRAPQ) updateTree(root stream.VertexID, t stream.Tuple, validFrom int64, local *treeWorker) {
	e := p.inner
	tx := e.trees[root]
	if tx == nil {
		return
	}
	for _, tr := range e.a.ByLabel[t.Label] {
		pslot := tx.ns.lookup(mkNodeKey(t.Src, tr.From))
		if pslot < 0 || tx.ns.ts[pslot] <= validFrom {
			continue
		}
		p.insertConcurrent(tx, pslot, t.Dst, tr.To, t.TS, validFrom, local)
	}
}

// insertConcurrent is Algorithm Insert with a per-worker stack and
// adjacency buffer. It takes no locks beyond the inverted index's
// stripe mutexes and the graph's per-vertex stripe read locks (held
// only while AppendOutAt copies the adjacency): tree-local mutations
// are safe because each tree is owned by exactly one worker for the
// duration of the fan-out, the graph is read-only during it, and
// results and counters go to the worker's buffers.
func (p *ParallelRAPQ) insertConcurrent(tx *tree, parent int32, v stream.VertexID, t int32, edgeTS int64, validFrom int64, w *treeWorker) {
	e := p.inner
	ns := &tx.ns
	stack := w.stack[:0]
	stack = append(stack, insertOp{parent: parent, v: v, t: t, edgeTS: edgeTS})

	for len(stack) > 0 {
		op := stack[len(stack)-1]
		stack = stack[:len(stack)-1]

		newTS := min(op.edgeTS, ns.ts[op.parent])
		key := mkNodeKey(op.v, op.t)
		slot := ns.lookup(key)
		if slot >= 0 && ns.ts[slot] >= newTS {
			continue
		}
		w.insertCalls++

		if slot >= 0 {
			// Stale witness re-entering the window: see RAPQ.insert.
			if e.a.Final[op.t] && ns.ts[slot] <= validFrom && newTS > validFrom &&
				!tx.preLive[op.v] && !e.isLive(tx, op.v, validFrom) {
				w.matches = append(w.matches, Match{From: tx.root, To: op.v, TS: e.now})
			}
			ns.detach(slot)
			ns.ts[slot] = newTS
			ns.parent[slot] = op.parent
			ns.attach(op.parent, slot)
		} else {
			wasLive := false
			if e.a.Final[op.t] {
				wasLive = tx.preLive[op.v] || e.isLive(tx, op.v, validFrom)
			}
			slot = ns.alloc(key, newTS, op.parent)
			ns.attach(op.parent, slot)
			tx.vcount[op.v]++
			if tx.vcount[op.v] == 1 {
				e.inv.add(op.v, tx.root)
			}
			if e.a.Final[op.t] {
				tx.support[op.v]++
				if newTS > validFrom && !wasLive {
					w.matches = append(w.matches, Match{From: tx.root, To: op.v, TS: e.now})
				}
			}
		}

		w.outBuf = e.g.AppendOutAt(e.epoch, op.v, w.outBuf[:0])
		nodeTS := ns.ts[slot]
		for _, he := range w.outBuf {
			if he.TS <= validFrom || he.TS > e.now {
				continue
			}
			if he.L < 0 || int(he.L) >= len(e.a.ByLabel) {
				continue // label bound after this member: outside its ΣQ
			}
			q := e.a.Trans[op.t][he.L]
			if q == automaton.NoState {
				continue
			}
			childTS := min(nodeTS, he.TS)
			if cs := ns.lookup(mkNodeKey(he.V, q)); cs < 0 || ns.ts[cs] < childTS {
				stack = append(stack, insertOp{parent: slot, v: he.V, t: q, edgeTS: he.TS})
			}
		}
	}
	w.stack = stack[:0]
}

// ApplyDelete implements MemberEngine. Deletions are rare (§5.4) and
// run sequentially with the uniform machinery.
func (p *ParallelRAPQ) ApplyDelete(t stream.Tuple) { p.inner.ApplyDelete(t) }

// ApplyExpiry implements MemberEngine: the per-tree expiry pass fanned
// over the worker pool ("window management is parallelized similarly").
// The caller has already expired the snapshot graph.
func (p *ParallelRAPQ) ApplyExpiry(deadline int64) {
	e := p.inner
	start := time.Now()
	defer func() { e.stats.ExpiryTime += time.Since(start) }()
	e.stats.ExpiryRuns++
	e.deadline = deadline

	roots := make([]stream.VertexID, 0, len(e.trees))
	for root := range e.trees {
		roots = append(roots, root)
	}
	var wg sync.WaitGroup
	work := make(chan stream.VertexID, len(roots))
	for _, r := range roots {
		work <- r
	}
	close(work)
	var gcMu sync.Mutex
	var gc []stream.VertexID
	for w := 0; w < p.workers; w++ {
		wg.Add(1)
		go func(local *treeWorker) {
			defer wg.Done()
			for root := range work {
				tx := e.trees[root]
				p.expireTreeConcurrent(tx, deadline, local)
				if tx.ns.size() == 1 {
					gcMu.Lock()
					gc = append(gc, root)
					gcMu.Unlock()
				}
			}
		}(p.pool[w])
	}
	wg.Wait()
	p.mergeWorkers()
	for _, root := range gc {
		tx := e.trees[root]
		if tx != nil && tx.ns.size() == 1 {
			e.remove(tx, tx.ns.lookup(mkNodeKey(root, e.a.Start)))
			delete(e.trees, root)
		}
	}
}

// expireTreeConcurrent is ExpiryRAPQ over one tree; inverted-index
// updates go through the striped index and reconnection inserts use
// the worker's buffers. Graph reads are safe: the graph is not mutated
// during the fan-out.
func (p *ParallelRAPQ) expireTreeConcurrent(tx *tree, deadline int64, w *treeWorker) {
	e := p.inner
	ns := &tx.ns
	candidates := w.cands[:0]
	for slot := int32(0); slot < int32(len(ns.keys)); slot++ {
		if !ns.live(slot) || ns.ts[slot] > deadline {
			continue
		}
		key := ns.keys[slot]
		candidates = append(candidates, key)
		// Pre-pass liveness, as in RAPQ.expireTree: suppresses
		// re-match emissions for pairs this pass cuts and
		// reconnects. Tree-local state, so safe on a worker.
		if e.a.Final[key.state()] {
			if _, seen := tx.preLive[key.vertex()]; !seen {
				if tx.preLive == nil {
					tx.preLive = make(map[stream.VertexID]bool)
				}
				tx.preLive[key.vertex()] = e.isLive(tx, key.vertex(), deadline)
			}
		}
	}
	if len(candidates) == 0 {
		w.cands = candidates
		tx.preLive = nil
		return
	}
	sort.Slice(candidates, func(i, j int) bool { return candidates[i] < candidates[j] })
	for _, key := range candidates {
		e.remove(tx, ns.lookup(key))
	}
	for _, key := range candidates {
		v, t := key.vertex(), key.state()
		bestParent := int32(-1)
		var bestKey nodeKey
		var bestEdgeTS, bestTS int64
		w.inBuf = e.g.AppendInAt(e.epoch, v, w.inBuf[:0])
		for _, he := range w.inBuf {
			if he.TS <= deadline || he.TS > e.now {
				continue
			}
			if he.L < 0 || int(he.L) >= len(e.rev) {
				continue // label bound after this member: outside its ΣQ
			}
			rt := e.rev[he.L]
			if rt == nil {
				continue
			}
			for _, s := range rt[t] {
				pk := mkNodeKey(he.V, s)
				pslot := ns.lookup(pk)
				if pslot < 0 || ns.ts[pslot] <= deadline {
					continue
				}
				offer := min(he.TS, ns.ts[pslot])
				if bestParent < 0 || offer > bestTS ||
					(offer == bestTS && pk < bestKey) {
					bestParent, bestKey, bestEdgeTS, bestTS = pslot, pk, he.TS, offer
				}
			}
		}
		if bestParent >= 0 {
			p.insertConcurrent(tx, bestParent, v, t, bestEdgeTS, deadline, w)
		}
	}
	w.cands = candidates[:0]
	// Window expiry retracts nothing (implicit window semantics); the
	// pre-pass liveness map only served match suppression above.
	tx.preLive = nil
}

// CheckInvariants delegates to the sequential checker.
func (p *ParallelRAPQ) CheckInvariants() error { return p.inner.CheckInvariants() }

var (
	_ Engine       = (*ParallelRAPQ)(nil)
	_ MemberEngine = (*ParallelRAPQ)(nil)
	_ MemberEngine = (*RAPQ)(nil)
)
