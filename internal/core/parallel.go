package core

import (
	"runtime"
	"sync"
	"time"

	"streamrpq/internal/automaton"
	"streamrpq/internal/graph"
	"streamrpq/internal/stream"
	"streamrpq/internal/window"
)

// ParallelRAPQ reproduces the intra-query parallelism of the paper's
// prototype (§5.1.1): "RAPQ algorithms employ intra-query parallelism
// by deploying a thread pool to process multiple spanning trees in
// parallel that are accessed for each incoming edge. Window management
// is parallelized similarly."
//
// Spanning trees are disjoint, so per-tuple tree updates and per-slide
// tree expiries run concurrently across a worker pool; the snapshot
// graph is updated once per tuple before the fan-out, and shared
// bookkeeping (the inverted index and the result sink) is protected by
// a mutex. The sink observes results from multiple workers; ordering
// within a tuple is unspecified, matching the paper's prototype.
type ParallelRAPQ struct {
	inner   *RAPQ
	workers int

	mu sync.Mutex // guards inner.inv and the sink during fan-out
}

// NewParallelRAPQ returns a tree-parallel RAPQ engine with the given
// worker count (0 means GOMAXPROCS).
func NewParallelRAPQ(a *automaton.Bound, spec window.Spec, workers int, opts ...Option) *ParallelRAPQ {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &ParallelRAPQ{workers: workers}
	p.inner = NewRAPQ(a, spec, opts...)
	return p
}

// Graph implements Engine.
func (p *ParallelRAPQ) Graph() *graph.Graph { return p.inner.g }

// Stats implements Engine.
func (p *ParallelRAPQ) Stats() Stats { return p.inner.Stats() }

// Process implements Engine. The per-tuple work fans out over the
// spanning trees that contain the tuple's source vertex; expiry fans
// out over all trees.
func (p *ParallelRAPQ) Process(t stream.Tuple) {
	e := p.inner
	e.stats.TuplesSeen++
	if t.TS > e.now {
		e.now = t.TS
	}
	if deadline, due := e.win.Observe(t.TS); due {
		p.expireAllParallel(deadline)
	}
	if !e.a.Relevant(int(t.Label)) {
		e.stats.TuplesDropped++
		return
	}
	if t.Op == stream.Delete {
		// Deletions are rare (§5.4); process them sequentially with
		// the uniform machinery.
		if e.g.Delete(t.Key()) {
			e.ApplyDelete(t)
		}
		return
	}
	p.processInsertParallel(t)
}

// treeShard is the unit of parallel work: one spanning tree.
func (p *ParallelRAPQ) processInsertParallel(t stream.Tuple) {
	e := p.inner
	e.g.Insert(t.Src, t.Dst, t.Label, t.TS)
	validFrom := e.win.Spec().ValidFrom(e.now)

	if e.a.Step(e.a.Start, int(t.Label)) != automaton.NoState {
		e.ensureTree(t.Src)
	}
	roots := make([]stream.VertexID, 0, len(e.inv[t.Src]))
	for root := range e.inv[t.Src] {
		roots = append(roots, root)
	}
	if len(roots) == 0 {
		return
	}
	// Small fan-outs are cheaper sequentially.
	if len(roots) < 2*p.workers {
		for _, root := range roots {
			p.updateTree(root, t, validFrom, nil)
		}
		return
	}

	var wg sync.WaitGroup
	work := make(chan stream.VertexID, len(roots))
	for _, r := range roots {
		work <- r
	}
	close(work)
	for w := 0; w < p.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := &treeWorker{p: p}
			for root := range work {
				p.updateTree(root, t, validFrom, local)
			}
		}()
	}
	wg.Wait()
}

// treeWorker carries per-goroutine scratch state.
type treeWorker struct {
	p     *ParallelRAPQ
	stack []insertOp
}

// updateTree applies the tuple to a single spanning tree. When local
// is nil the caller is single-threaded and the engine's shared scratch
// is used; otherwise a per-worker scratch stack is used and shared
// structures are mutated under the mutex.
func (p *ParallelRAPQ) updateTree(root stream.VertexID, t stream.Tuple, validFrom int64, local *treeWorker) {
	e := p.inner
	p.mu.Lock()
	tx := e.trees[root]
	p.mu.Unlock()
	if tx == nil {
		return
	}
	for _, tr := range e.a.ByLabel[t.Label] {
		parent, ok := tx.nodes[mkNodeKey(t.Src, tr.From)]
		if !ok || parent.ts <= validFrom {
			continue
		}
		if local == nil {
			e.insert(tx, parent, t.Dst, tr.To, t.TS, validFrom)
		} else {
			p.insertLocked(tx, parent, t.Dst, tr.To, t.TS, validFrom, local)
		}
	}
}

// insertLocked is Algorithm Insert with a per-worker stack; shared
// mutations (inverted index, result emission, counters) take the
// engine mutex. Tree-local mutations are safe: each tree is owned by
// exactly one worker for the duration of the tuple.
func (p *ParallelRAPQ) insertLocked(tx *tree, parent *treeNode, v stream.VertexID, t int32, edgeTS int64, validFrom int64, w *treeWorker) {
	e := p.inner
	stack := w.stack[:0]
	stack = append(stack, insertOp{parent: mkNodeKey(parent.v, parent.s), v: v, t: t, edgeTS: edgeTS})

	for len(stack) > 0 {
		op := stack[len(stack)-1]
		stack = stack[:len(stack)-1]

		par := tx.nodes[op.parent]
		if par == nil {
			continue
		}
		newTS := min(op.edgeTS, par.ts)
		key := mkNodeKey(op.v, op.t)
		node, exists := tx.nodes[key]
		if exists && node.ts >= newTS {
			continue
		}

		if exists {
			e.detach(tx, node)
			node.ts = newTS
			node.parent = op.parent
			e.attach(par, key)
		} else {
			node = &treeNode{v: op.v, s: op.t, ts: newTS, parent: op.parent}
			tx.nodes[key] = node
			e.attach(par, key)
			tx.vcount[op.v]++
			p.mu.Lock()
			e.stats.InsertCalls++
			if tx.vcount[op.v] == 1 {
				e.addInv(op.v, tx.root)
			}
			if e.a.Final[op.t] {
				e.stats.Results++
				e.sink.OnMatch(Match{From: tx.root, To: op.v, TS: e.now})
			}
			p.mu.Unlock()
		}

		e.g.Out(op.v, func(dst stream.VertexID, l stream.LabelID, ts int64) bool {
			if ts <= validFrom {
				return true
			}
			q := e.a.Trans[op.t][l]
			if q == automaton.NoState {
				return true
			}
			childTS := min(node.ts, ts)
			if child, ok := tx.nodes[mkNodeKey(dst, q)]; !ok || child.ts < childTS {
				stack = append(stack, insertOp{parent: key, v: dst, t: q, edgeTS: ts})
			}
			return true
		})
	}
	w.stack = stack[:0]
}

// expireAllParallel fans the per-tree expiry pass over the worker pool
// ("window management is parallelized similarly").
func (p *ParallelRAPQ) expireAllParallel(deadline int64) {
	e := p.inner
	start := time.Now()
	defer func() { e.stats.ExpiryTime += time.Since(start) }()
	e.stats.ExpiryRuns++
	e.deadline = deadline
	e.g.Expire(deadline, nil)

	roots := make([]stream.VertexID, 0, len(e.trees))
	for root := range e.trees {
		roots = append(roots, root)
	}
	var wg sync.WaitGroup
	work := make(chan stream.VertexID, len(roots))
	for _, r := range roots {
		work <- r
	}
	close(work)
	var gcMu sync.Mutex
	var gc []stream.VertexID
	for w := 0; w < p.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for root := range work {
				tx := e.trees[root]
				p.expireTreeLocked(tx, deadline)
				if len(tx.nodes) == 1 {
					gcMu.Lock()
					gc = append(gc, root)
					gcMu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	for _, root := range gc {
		tx := e.trees[root]
		if tx != nil && len(tx.nodes) == 1 {
			e.remove(tx, mkNodeKey(root, e.a.Start), tx.nodes[mkNodeKey(root, e.a.Start)])
			delete(e.trees, root)
		}
	}
}

// expireTreeLocked is ExpiryRAPQ over one tree with inverted-index
// updates under the mutex. Graph reads are safe: the graph is not
// mutated during the fan-out.
func (p *ParallelRAPQ) expireTreeLocked(tx *tree, deadline int64) {
	e := p.inner
	var candidates []nodeKey
	for key, node := range tx.nodes {
		if node.ts <= deadline {
			candidates = append(candidates, key)
		}
	}
	if len(candidates) == 0 {
		return
	}
	for _, key := range candidates {
		node := tx.nodes[key]
		e.detach(tx, node)
		delete(tx.nodes, key)
		tx.vcount[node.v]--
		if tx.vcount[node.v] == 0 {
			delete(tx.vcount, node.v)
			p.mu.Lock()
			e.dropInv(node.v, tx.root)
			p.mu.Unlock()
		}
	}
	w := &treeWorker{p: p}
	for _, key := range candidates {
		if _, back := tx.nodes[key]; back {
			continue
		}
		v, t := key.vertex(), key.state()
		e.g.In(v, func(u stream.VertexID, l stream.LabelID, ts int64) bool {
			if ts <= deadline {
				return true
			}
			rt := e.rev[l]
			if rt == nil {
				return true
			}
			for _, s := range rt[t] {
				parent, ok := tx.nodes[mkNodeKey(u, s)]
				if !ok || parent.ts <= deadline {
					continue
				}
				p.insertLocked(tx, parent, v, t, ts, deadline, w)
				if _, back := tx.nodes[key]; back {
					return false
				}
			}
			return true
		})
	}
}

// CheckInvariants delegates to the sequential checker.
func (p *ParallelRAPQ) CheckInvariants() error { return p.inner.CheckInvariants() }

var _ Engine = (*ParallelRAPQ)(nil)
