package core

import (
	"testing"

	"streamrpq/internal/graph"
	"streamrpq/internal/stream"
	"streamrpq/internal/window"
)

// exhaustive_test.go enumerates every labeled graph with up to
// maxEdges edges over a 3-vertex, 2-label universe and checks both
// engines against their batch oracles on each. This complements the
// randomized tests with complete coverage of the small cases, where
// cycles, self loops, parallel edges and conflicts all occur.

const (
	exVertices = 3
	exLabels   = 2
	exMaxEdges = 4
)

// enumerate all distinct directed labeled edges of the universe.
func exEdgeUniverse() []stream.Tuple {
	var out []stream.Tuple
	for s := 0; s < exVertices; s++ {
		for d := 0; d < exVertices; d++ {
			for l := 0; l < exLabels; l++ {
				out = append(out, stream.Tuple{
					Src:   stream.VertexID(s),
					Dst:   stream.VertexID(d),
					Label: stream.LabelID(l),
				})
			}
		}
	}
	return out
}

// forEachGraph calls f with every edge subset of size 1..exMaxEdges.
func forEachGraph(f func(edges []stream.Tuple)) {
	universe := exEdgeUniverse()
	n := len(universe)
	var rec func(start int, acc []stream.Tuple)
	rec = func(start int, acc []stream.Tuple) {
		if len(acc) > 0 {
			f(acc)
		}
		if len(acc) == exMaxEdges {
			return
		}
		for i := start; i < n; i++ {
			rec(i+1, append(acc, universe[i]))
		}
	}
	rec(0, nil)
}

var exhaustiveQueries = []string{
	"a", "a*", "a+", "a/b", "a|b", "(a/b)+", "a/b*", "(a|b)*", "a/b/a",
}

// TestRAPQExhaustiveSmallGraphs replays every small graph as a stream
// (one edge per time unit, window large enough to hold everything) and
// compares the engine's live result state against the batch oracle.
func TestRAPQExhaustiveSmallGraphs(t *testing.T) {
	for _, expr := range exhaustiveQueries {
		a := bind(t, expr, "a", "b")
		graphs := 0
		forEachGraph(func(edges []stream.Tuple) {
			graphs++
			sink := NewCollector()
			e := NewRAPQ(a, window.Spec{Size: 1000, Slide: 1}, WithSink(sink))
			for i, ed := range edges {
				ed.TS = int64(i + 1)
				e.Process(ed)
			}
			want := BatchArbitrary(e.Graph(), a, -1)
			got := sink.Pairs()
			if len(got) != len(want) {
				t.Fatalf("%q edges %v: engine %v, oracle %v", expr, edges, got, want)
			}
			for p := range want {
				if _, ok := got[p]; !ok {
					t.Fatalf("%q edges %v: missing %v", expr, edges, p)
				}
			}
		})
		if graphs < 1000 {
			t.Fatalf("only %d graphs enumerated", graphs)
		}
	}
}

// TestRSPQExhaustiveSmallGraphs does the same against the brute-force
// simple-path oracle, covering the conflict machinery on every small
// cyclic structure.
func TestRSPQExhaustiveSmallGraphs(t *testing.T) {
	for _, expr := range exhaustiveQueries {
		a := bind(t, expr, "a", "b")
		forEachGraph(func(edges []stream.Tuple) {
			sink := NewCollector()
			e := NewRSPQ(a, window.Spec{Size: 1000, Slide: 1}, WithSink(sink))
			for i, ed := range edges {
				ed.TS = int64(i + 1)
				e.Process(ed)
			}
			want := BatchSimple(e.Graph(), a, -1)
			got := sink.Pairs()
			if len(got) != len(want) {
				t.Fatalf("%q edges %v: engine %v, oracle %v", expr, edges, got, want)
			}
			for p := range want {
				if _, ok := got[p]; !ok {
					t.Fatalf("%q edges %v: missing %v", expr, edges, p)
				}
			}
		})
	}
}

// TestBatchSimpleMWAgreesOnSmallGraphs cross-checks the Mendelzon–Wood
// batch algorithm against exhaustive enumeration wherever the instance
// is conflict-free (MW is only guaranteed complete there; soundness is
// checked on every instance).
func TestBatchSimpleMWAgreesOnSmallGraphs(t *testing.T) {
	for _, expr := range exhaustiveQueries {
		a := bind(t, expr, "a", "b")
		forEachGraph(func(edges []stream.Tuple) {
			g := graphFromEdges(edges)
			brute := BatchSimple(g, a, -1)
			mw := BatchSimpleMW(g, a, -1)
			// Soundness always.
			for p := range mw {
				if _, ok := brute[p]; !ok {
					t.Fatalf("%q edges %v: MW reported %v not in brute force", expr, edges, p)
				}
			}
			// Completeness when the automaton has the containment
			// property (conflict-free on every graph).
			if a.HasCont {
				for p := range brute {
					if _, ok := mw[p]; !ok {
						t.Fatalf("%q edges %v: MW missed %v on conflict-free query", expr, edges, p)
					}
				}
			}
		})
	}
}

func graphFromEdges(edges []stream.Tuple) *graph.Graph {
	g := graph.New()
	for i, e := range edges {
		g.Insert(e.Src, e.Dst, e.Label, int64(i+1))
	}
	return g
}
