package core

// treeStore holds the nodes of one RAPQ spanning tree in
// struct-of-arrays form: parallel slot-indexed arrays for the hot
// fields (key, timestamp, parent) plus intrusive sibling lists for the
// child sets, replacing the per-node heap objects and per-node child
// maps of the pointer-based representation. The insert cascade touches
// ts/parent/keys as flat array reads with no pointer chasing; only the
// key→slot map remains a hash probe, and lookups that already hold a
// slot skip it entirely.
//
// Slot lifecycle: alloc returns a free slot (reusing released ones),
// release marks a slot free (parent == freeSlot) and recycles it
// later. Slots are stable while a node lives, and nothing is released
// during an insert cascade, so the cascade's explicit stack can carry
// parent slots instead of keys. The expiry pass releases candidate
// slots strictly before its reconnection inserts allocate, and
// candidates always form whole subtrees, so no live node ever points
// at a released slot.
type treeStore struct {
	idx  map[nodeKey]int32 // key → slot for the lookups that need it
	keys []nodeKey
	ts   []int64
	// parent is the parent's slot; the root is its own parent
	// (self-sentinel), freeSlot marks a released slot.
	parent []int32
	// Child sets as intrusive doubly-linked sibling lists: firstChild
	// heads a node's children, nextSib/prevSib link siblings.
	firstChild []int32
	nextSib    []int32
	prevSib    []int32
	free       []int32
}

// freeSlot marks a released slot in the parent array; live nodes always
// have a real parent slot (the root points at itself).
const freeSlot = int32(-1)

func (ns *treeStore) init() { ns.idx = make(map[nodeKey]int32) }

// size returns the number of live nodes.
func (ns *treeStore) size() int { return len(ns.idx) }

// lookup returns the slot of key k, or -1.
func (ns *treeStore) lookup(k nodeKey) int32 {
	if slot, ok := ns.idx[k]; ok {
		return slot
	}
	return -1
}

// alloc creates a node with the given key, timestamp and parent slot
// and returns its slot (not yet linked into the parent's child list).
func (ns *treeStore) alloc(k nodeKey, ts int64, parent int32) int32 {
	var slot int32
	if n := len(ns.free); n > 0 {
		slot = ns.free[n-1]
		ns.free = ns.free[:n-1]
		ns.keys[slot], ns.ts[slot], ns.parent[slot] = k, ts, parent
		ns.firstChild[slot], ns.nextSib[slot], ns.prevSib[slot] = -1, -1, -1
	} else {
		slot = int32(len(ns.keys))
		ns.keys = append(ns.keys, k)
		ns.ts = append(ns.ts, ts)
		ns.parent = append(ns.parent, parent)
		ns.firstChild = append(ns.firstChild, -1)
		ns.nextSib = append(ns.nextSib, -1)
		ns.prevSib = append(ns.prevSib, -1)
	}
	ns.idx[k] = slot
	return slot
}

// attach links child at the head of parent's sibling list.
func (ns *treeStore) attach(parent, child int32) {
	fc := ns.firstChild[parent]
	ns.nextSib[child] = fc
	ns.prevSib[child] = -1
	if fc >= 0 {
		ns.prevSib[fc] = child
	}
	ns.firstChild[parent] = child
}

// detach unlinks child from its parent's sibling list. A no-op for the
// root: its parent slot is a self-sentinel and it is never linked into
// any child list.
func (ns *treeStore) detach(child int32) {
	p, n := ns.prevSib[child], ns.nextSib[child]
	if p >= 0 {
		ns.nextSib[p] = n
	} else {
		par := ns.parent[child]
		if ns.firstChild[par] != child {
			return // root self-sentinel: not on any list
		}
		ns.firstChild[par] = n
	}
	if n >= 0 {
		ns.prevSib[n] = p
	}
	ns.nextSib[child], ns.prevSib[child] = -1, -1
}

// release frees the slot (the caller must have detached it). The
// slot's child list is left as-is: a released node's children are
// always released in the same pass, before any slot is reused.
func (ns *treeStore) release(slot int32) {
	delete(ns.idx, ns.keys[slot])
	ns.parent[slot] = freeSlot
	ns.free = append(ns.free, slot)
}

// live reports whether the slot holds a live node (cold-path iteration
// over all slots).
func (ns *treeStore) live(slot int32) bool { return ns.parent[slot] != freeSlot }

// nodeTS returns the timestamp of the node keyed k and whether it
// exists (white-box test access).
func (tx *tree) nodeTS(k nodeKey) (int64, bool) {
	slot := tx.ns.lookup(k)
	if slot < 0 {
		return 0, false
	}
	return tx.ns.ts[slot], true
}

// nodeParent returns the key of the node's parent and whether the node
// exists (white-box test access).
func (tx *tree) nodeParent(k nodeKey) (nodeKey, bool) {
	slot := tx.ns.lookup(k)
	if slot < 0 {
		return 0, false
	}
	return tx.ns.keys[tx.ns.parent[slot]], true
}

// forEachNode calls f for every live node (white-box test access).
func (tx *tree) forEachNode(f func(k nodeKey, ts int64)) {
	ns := &tx.ns
	for slot := int32(0); slot < int32(len(ns.keys)); slot++ {
		if ns.live(slot) {
			f(ns.keys[slot], ns.ts[slot])
		}
	}
}
