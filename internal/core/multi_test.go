package core

import (
	"math/rand"
	"testing"

	"streamrpq/internal/stream"
	"streamrpq/internal/window"
)

// TestMultiMatchesIndividual: each member of a multi-query evaluator
// must produce exactly the results of a standalone engine running the
// same query over the same stream.
func TestMultiMatchesIndividual(t *testing.T) {
	exprs := []string{"(a/b)+", "a*", "c/b*", "a/b/c"}
	labels := []string{"a", "b", "c"}
	spec := window.Spec{Size: 25, Slide: 3}

	m, err := NewMulti(spec)
	if err != nil {
		t.Fatal(err)
	}
	multiSinks := make([]*CollectorSink, len(exprs))
	soloSinks := make([]*CollectorSink, len(exprs))
	solos := make([]*RAPQ, len(exprs))
	for i, expr := range exprs {
		a := bind(t, expr, labels...)
		multiSinks[i] = NewCollector()
		if _, err := m.Add(a, WithSink(multiSinks[i])); err != nil {
			t.Fatal(err)
		}
		soloSinks[i] = NewCollector()
		solos[i] = NewRAPQ(a, spec, WithSink(soloSinks[i]))
	}

	rng := rand.New(rand.NewSource(606))
	tuples := randomTuples(rng, 600, 10, 3, 2, 0.1)
	for _, tu := range tuples {
		m.Process(tu)
		for _, s := range solos {
			s.Process(tu)
		}
	}

	for i, expr := range exprs {
		mp, sp := multiSinks[i].Pairs(), soloSinks[i].Pairs()
		if len(mp) != len(sp) {
			t.Fatalf("%q: multi %d pairs, solo %d pairs", expr, len(mp), len(sp))
		}
		for p := range sp {
			if _, ok := mp[p]; !ok {
				t.Fatalf("%q: pair %v missing from multi run", expr, p)
			}
		}
	}

	// Sharing: the coordinator stores the window content once. Its
	// graph must be at least as large as any single member's residual
	// need but is stored exactly once.
	if m.Graph().NumEdges() == 0 {
		t.Fatal("shared graph empty")
	}
	if m.Len() != len(exprs) {
		t.Fatalf("Len = %d", m.Len())
	}
	st := m.Stats()
	if st.TuplesSeen != int64(len(tuples)) {
		t.Fatalf("TuplesSeen = %d", st.TuplesSeen)
	}
}

func TestMultiAddAfterStart(t *testing.T) {
	m, _ := NewMulti(window.Spec{Size: 10, Slide: 1})
	a := bind(t, "a", "a")
	if _, err := m.Add(a); err != nil {
		t.Fatal(err)
	}
	m.Process(stream.Tuple{TS: 1, Src: 1, Dst: 2, Label: 0})
	if _, err := m.Add(a); err == nil {
		t.Fatal("Add after processing accepted")
	}
}

func TestMultiLabelSpaceMismatch(t *testing.T) {
	m, _ := NewMulti(window.Spec{Size: 10, Slide: 1})
	if _, err := m.Add(bind(t, "a", "a", "b")); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Add(bind(t, "a", "a", "b", "c")); err == nil {
		t.Fatal("mismatched label space accepted")
	}
}

func TestMultiBadSpec(t *testing.T) {
	if _, err := NewMulti(window.Spec{Size: 0, Slide: 1}); err == nil {
		t.Fatal("invalid spec accepted")
	}
}

func TestMultiIrrelevantDropped(t *testing.T) {
	m, _ := NewMulti(window.Spec{Size: 10, Slide: 1})
	m.Add(bind(t, "a", "a", "b", "c"))
	m.Add(bind(t, "b", "a", "b", "c"))
	m.Process(stream.Tuple{TS: 1, Src: 1, Dst: 2, Label: 2}) // label c: nobody cares
	st := m.Stats()
	if st.TuplesDropped != 1 || st.Edges != 0 {
		t.Fatalf("stats = %+v", st)
	}
	// Label b is relevant to the second query only.
	m.Process(stream.Tuple{TS: 2, Src: 1, Dst: 2, Label: 1})
	if m.Graph().NumEdges() != 1 {
		t.Fatal("relevant edge not stored")
	}
}

// TestScanAllTreesAblation: disabling the inverted index must not
// change results, only cost.
func TestScanAllTreesAblation(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	a := bind(t, "(a/b)+", "a", "b")
	spec := window.Spec{Size: 20, Slide: 2}
	s1, s2 := NewCollector(), NewCollector()
	fast := NewRAPQ(a, spec, WithSink(s1))
	slow := NewRAPQ(a, spec, WithSink(s2), WithoutInvertedIndex())
	tuples := randomTuples(rng, 500, 10, 2, 2, 0.05)
	for _, tu := range tuples {
		fast.Process(tu)
		slow.Process(tu)
	}
	fp, sp := s1.Pairs(), s2.Pairs()
	if len(fp) != len(sp) {
		t.Fatalf("indexed %d pairs, scan-all %d pairs", len(fp), len(sp))
	}
	for p := range fp {
		if _, ok := sp[p]; !ok {
			t.Fatalf("pair %v missing from scan-all run", p)
		}
	}
	if err := slow.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
