package core

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"streamrpq/internal/stream"
	"streamrpq/internal/window"
)

// loadFixtureStream parses a captured rspq-flake workload: '#' header
// lines, then "ts vSRC vDST label [+|-]" tuples (the format
// dumpFlakeWorkload writes and CI uploads as the rspq-flake-workloads
// artifact).
func loadFixtureStream(t *testing.T, path string, labels []string) []stream.Tuple {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	labelID := map[string]stream.LabelID{}
	for i, l := range labels {
		labelID[l] = stream.LabelID(i)
	}
	var out []stream.Tuple
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 5 {
			t.Fatalf("%s:%d: want 5 fields, got %q", path, line, text)
		}
		ts, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			t.Fatalf("%s:%d: bad timestamp %q", path, line, fields[0])
		}
		parseV := func(s string) stream.VertexID {
			v, err := strconv.Atoi(strings.TrimPrefix(s, "v"))
			if err != nil {
				t.Fatalf("%s:%d: bad vertex %q", path, line, s)
			}
			return stream.VertexID(v)
		}
		l, ok := labelID[fields[3]]
		if !ok {
			t.Fatalf("%s:%d: unknown label %q", path, line, fields[3])
		}
		op := stream.Insert
		if fields[4] == "-" {
			op = stream.Delete
		}
		out = append(out, stream.Tuple{TS: ts, Src: parseV(fields[1]), Dst: parseV(fields[2]), Label: l, Op: op})
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestRSPQLazyExpiryFixture is the checked-in deterministic repro of
// the pre-existing seed bug quarantined as TestRSPQLazyExpiry (see
// ROADMAP "RSPQ lazy-expiry completeness"): on this captured workload
// — query (a/b)+, window size 18 / slide 4 — the RSPQ expiry
// reconnection occasionally under-restores instances and misses an
// oracle pair. The miss is map-iteration-order dependent, so the
// fixture is replayed many times; while the bug exists some replay
// fails, which keeps this test red. It stays CI-quarantined
// (non-blocking, skipped in the main test step) until the
// canonical-reconnection fix lands — at that point every replay passes
// and the quarantine can be lifted. The regression test the eventual
// fix needs is exactly this file.
//
// Quarantine: the test is skipped unless RSPQ_FIXTURE_REPRO is set, so
// the plain `go test ./...` tier stays green while the bug exists; the
// non-blocking CI step opts in (and the main CI test step's
// `-skip 'TestRSPQLazyExpiry'` prefix regex would exclude it anyway).
func TestRSPQLazyExpiryFixture(t *testing.T) {
	if os.Getenv("RSPQ_FIXTURE_REPRO") == "" {
		t.Skip("deterministic repro of the quarantined RSPQ lazy-expiry seed bug; set RSPQ_FIXTURE_REPRO=1 to run (red while the bug exists)")
	}
	path := filepath.Join("testdata", "rspq-lazy-expiry-trial4.stream")
	tuples := loadFixtureStream(t, path, []string{"a", "b"})
	if len(tuples) == 0 {
		t.Fatalf("fixture %s is empty", path)
	}
	a := bind(t, "(a/b)+", "a", "b")
	spec := window.Spec{Size: 18, Slide: 4}

	const replays = 60
	failed := 0
	for i := 0; i < replays; i++ {
		ok := t.Run(fmt.Sprintf("replay%d", i), func(t *testing.T) {
			rspqReplayOracle(t, a, spec, tuples, false)
		})
		if !ok {
			failed++
		}
	}
	if failed > 0 {
		t.Logf("%d/%d replays missed an oracle pair — the quarantined RSPQ lazy-expiry bug reproduces on the checked-in workload", failed, replays)
	}
}
