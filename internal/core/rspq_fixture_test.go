package core

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"streamrpq/internal/stream"
	"streamrpq/internal/window"
)

// loadFixtureStream parses a captured workload: '#' header lines, then
// "ts vSRC vDST label [+|-]" tuples (the format the pre-fix flake
// hunter wrote when it caught a failing randomized stream).
func loadFixtureStream(t *testing.T, path string, labels []string) []stream.Tuple {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	labelID := map[string]stream.LabelID{}
	for i, l := range labels {
		labelID[l] = stream.LabelID(i)
	}
	var out []stream.Tuple
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 5 {
			t.Fatalf("%s:%d: want 5 fields, got %q", path, line, text)
		}
		ts, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			t.Fatalf("%s:%d: bad timestamp %q", path, line, fields[0])
		}
		parseV := func(s string) stream.VertexID {
			v, err := strconv.Atoi(strings.TrimPrefix(s, "v"))
			if err != nil {
				t.Fatalf("%s:%d: bad vertex %q", path, line, s)
			}
			return stream.VertexID(v)
		}
		l, ok := labelID[fields[3]]
		if !ok {
			t.Fatalf("%s:%d: unknown label %q", path, line, fields[3])
		}
		op := stream.Insert
		if fields[4] == "-" {
			op = stream.Delete
		}
		out = append(out, stream.Tuple{TS: ts, Src: parseV(fields[1]), Dst: parseV(fields[2]), Label: l, Op: op})
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestRSPQLazyExpiryFixture is the regression test for the seed's
// lazy-expiry completeness bug: on this captured workload — query
// (a/b)+, window size 18 / slide 4 — the pre-fix RSPQ expiry
// reconnection occasionally under-restored instances and missed an
// oracle pair. The miss was map-iteration-order dependent, so the
// fixture is replayed many times; with canonical reconnection (sorted
// candidates, best-offer scans) every replay must pass.
func TestRSPQLazyExpiryFixture(t *testing.T) {
	path := filepath.Join("testdata", "rspq-lazy-expiry-trial4.stream")
	tuples := loadFixtureStream(t, path, []string{"a", "b"})
	if len(tuples) == 0 {
		t.Fatalf("fixture %s is empty", path)
	}
	a := bind(t, "(a/b)+", "a", "b")
	spec := window.Spec{Size: 18, Slide: 4}

	const replays = 60
	for i := 0; i < replays; i++ {
		t.Run(fmt.Sprintf("replay%d", i), func(t *testing.T) {
			rspqReplayOracle(t, a, spec, tuples, false)
		})
	}
}
