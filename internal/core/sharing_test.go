package core

import (
	"math/rand"
	"reflect"
	"testing"

	"streamrpq/internal/stream"
	"streamrpq/internal/window"
)

// TestMultiSharedGroupEquivalentPatterns: syntactically different but
// language-equivalent patterns minimize to the same canonical automaton
// and must land in ONE shared Δ-index group, while each subscriber still
// receives its own complete result stream.
func TestMultiSharedGroupEquivalentPatterns(t *testing.T) {
	labels := []string{"a", "b", "c"}
	pairs := [][2]string{
		{"a/(b|c)", "(a/b)|(a/c)"},
		{"a/b*", "a|(a/b*)"},
		{"(a|b)+", "(a*/b*)+/(a|b)"},
	}
	for _, pair := range pairs {
		m, err := NewMulti(window.Spec{Size: 30, Slide: 3})
		if err != nil {
			t.Fatal(err)
		}
		sinks := [2]*CollectorSink{NewCollector(), NewCollector()}
		var engines [2]*RAPQ
		for i, expr := range pair {
			e, err := m.Add(bind(t, expr, labels...), WithSink(sinks[i]))
			if err != nil {
				t.Fatalf("%q: %v", expr, err)
			}
			engines[i] = e
		}
		if engines[0] != engines[1] {
			t.Fatalf("%v: equivalent patterns got distinct engines", pair)
		}
		// A third, inequivalent query must get its own group.
		if _, err := m.Add(bind(t, "c+", labels...)); err != nil {
			t.Fatal(err)
		}
		st := m.Stats()
		if st.Groups != 2 || st.SharedGroups != 1 {
			t.Fatalf("%v: groups %d shared %d, want 2/1", pair, st.Groups, st.SharedGroups)
		}

		rng := rand.New(rand.NewSource(77))
		for _, tu := range randomTuples(rng, 400, 8, 3, 2, 0.15) {
			m.Process(tu)
		}
		if len(sinks[0].Matched) == 0 {
			t.Fatalf("%v: no matches produced", pair)
		}
		if !reflect.DeepEqual(sinks[0].Matched, sinks[1].Matched) ||
			!reflect.DeepEqual(sinks[0].Retract, sinks[1].Retract) {
			t.Fatalf("%v: shared-group subscribers diverged", pair)
		}
	}
}

// TestMultiSharingByteIdentical: the full per-member emission logs of a
// sharing coordinator must equal those of an all-private one, element
// for element — sharing may only change the work, never a byte of the
// result streams.
func TestMultiSharingByteIdentical(t *testing.T) {
	labels := []string{"a", "b", "c"}
	exprs := []string{"(a/b)+", "a/(b|c)", "(a/b)|(a/c)", "(a/b)+", "c*"}
	run := func(sharing bool) []*CollectorSink {
		m, err := NewMulti(window.Spec{Size: 40, Slide: 4})
		if err != nil {
			t.Fatal(err)
		}
		if err := m.SetSharing(sharing); err != nil {
			t.Fatal(err)
		}
		sinks := make([]*CollectorSink, len(exprs))
		for i, expr := range exprs {
			sinks[i] = NewCollector()
			if _, err := m.Add(bind(t, expr, labels...), WithSink(sinks[i])); err != nil {
				t.Fatal(err)
			}
		}
		rng := rand.New(rand.NewSource(909))
		for _, tu := range randomTuples(rng, 800, 10, 3, 2, 0.2) {
			m.Process(tu)
		}
		return sinks
	}
	shared, private := run(true), run(false)
	for i := range exprs {
		if !reflect.DeepEqual(shared[i].Matched, private[i].Matched) {
			t.Fatalf("query %d (%q): match streams diverge", i, exprs[i])
		}
		if !reflect.DeepEqual(shared[i].Retract, private[i].Retract) {
			t.Fatalf("query %d (%q): invalidation streams diverge", i, exprs[i])
		}
	}
}

// TestMultiDispatchCounters: the relevance filter's bookkeeping must
// add up — every processed relevant tuple is either dispatched to a
// group or skipped for it, and tuples relevant to nobody are dropped.
func TestMultiDispatchCounters(t *testing.T) {
	m, _ := NewMulti(window.Spec{Size: 20, Slide: 2})
	labels := []string{"a", "b", "c"}
	m.Add(bind(t, "a+", labels...))      // relevant: a
	m.Add(bind(t, "(a/b)+", labels...))  // relevant: a, b
	m.Add(bind(t, "a|(a/a)", labels...)) // relevant: a
	tuples := []stream.Tuple{
		{TS: 1, Src: 1, Dst: 2, Label: 0}, // a: all 3 groups
		{TS: 2, Src: 2, Dst: 3, Label: 1}, // b: group 2 only
		{TS: 3, Src: 3, Dst: 4, Label: 2}, // c: dropped
	}
	for _, tu := range tuples {
		m.Process(tu)
	}
	st := m.Stats()
	if st.Groups != 3 || st.SharedGroups != 0 {
		t.Fatalf("groups = %d/%d", st.Groups, st.SharedGroups)
	}
	if st.Dispatches != 4 || st.RelevanceSkips != 2 {
		t.Fatalf("dispatches %d skips %d, want 4/2", st.Dispatches, st.RelevanceSkips)
	}
	if st.TuplesDropped != 1 {
		t.Fatalf("dropped = %d", st.TuplesDropped)
	}
}

// TestMultiSharingSplitRejoin: removing one subscriber of a shared
// group must keep the group alive for the rest; removing the last one
// must drop it.
func TestMultiSharingSplitRejoin(t *testing.T) {
	m, _ := NewMulti(window.Spec{Size: 20, Slide: 2})
	labels := []string{"a", "b"}
	s0, s1 := NewCollector(), NewCollector()
	if _, err := m.Add(bind(t, "(a/b)+", labels...), WithSink(s0)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Add(bind(t, "(a/b)+", labels...), WithSink(s1)); err != nil {
		t.Fatal(err)
	}
	if st := m.Stats(); st.Groups != 1 || st.SharedGroups != 1 {
		t.Fatalf("groups = %d/%d", st.Groups, st.SharedGroups)
	}
	if !m.RemoveIndex(0) {
		t.Fatal("RemoveIndex(0) failed")
	}
	if st := m.Stats(); st.Groups != 1 || st.SharedGroups != 0 {
		t.Fatalf("after split: groups = %d/%d", st.Groups, st.SharedGroups)
	}
	m.Process(stream.Tuple{TS: 1, Src: 1, Dst: 2, Label: 0})
	m.Process(stream.Tuple{TS: 1, Src: 2, Dst: 3, Label: 1})
	if len(s0.Matched) != 0 {
		t.Fatal("removed subscriber still receives results")
	}
	if len(s1.Matched) != 1 {
		t.Fatalf("surviving subscriber got %d matches, want 1", len(s1.Matched))
	}
	if !m.RemoveIndex(1) {
		t.Fatal("RemoveIndex(1) failed")
	}
	if st := m.Stats(); st.Groups != 0 {
		t.Fatalf("after last removal: groups = %d", st.Groups)
	}
}
