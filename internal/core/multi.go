package core

import (
	"fmt"

	"streamrpq/internal/automaton"
	"streamrpq/internal/graph"
	"streamrpq/internal/stream"
	"streamrpq/internal/window"
)

// Multi evaluates several persistent RPQs over one streaming graph,
// sharing the snapshot graph and the window machinery across queries —
// the multi-query direction the paper lists as future work (§7).
//
// Sharing model: the window content G_{W,τ} is query-independent, so
// it is stored once; each member query keeps its own Δ tree index and
// result sink. A tuple is ingested into the shared graph if its label
// is relevant to at least one member, and each member whose alphabet
// contains the label updates its own index. All members must share the
// same window specification (the snapshot is common).
type Multi struct {
	g       *graph.Graph
	win     *window.Manager
	members []*RAPQ
	now     int64
	seen    int64
	dropped int64
}

// NewMulti creates a multi-query evaluator with the shared window
// specification.
func NewMulti(spec window.Spec) (*Multi, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &Multi{
		g:   graph.New(),
		win: window.NewManager(spec),
	}, nil
}

// Add registers one query and returns its engine (for Stats probes).
// All member engines share the coordinator's snapshot graph. Queries
// must be added before the first tuple is processed.
func (m *Multi) Add(a *automaton.Bound, opts ...Option) (*RAPQ, error) {
	if m.seen > 0 {
		return nil, fmt.Errorf("core: Multi.Add after processing started")
	}
	// All members must be bound against the same dense label space:
	// the shared graph stores any label relevant to any member, and
	// each member indexes its transition tables by those ids.
	if len(m.members) > 0 && len(a.ByLabel) != m.members[0].LabelSpace() {
		return nil, fmt.Errorf("core: label space mismatch: %d vs %d labels",
			len(a.ByLabel), m.members[0].LabelSpace())
	}
	e := NewRAPQ(a, m.win.Spec(), opts...)
	e.AttachGraph(m.g) // share the snapshot graph
	m.members = append(m.members, e)
	return e, nil
}

// Len returns the number of registered queries.
func (m *Multi) Len() int { return len(m.members) }

// Graph exposes the shared snapshot graph.
func (m *Multi) Graph() *graph.Graph { return m.g }

// Process routes one tuple to every member whose alphabet contains its
// label. Graph and window maintenance happen exactly once regardless
// of the number of queries.
func (m *Multi) Process(t stream.Tuple) {
	m.seen++
	if t.TS > m.now {
		m.now = t.TS
	}
	if deadline, due := m.win.Observe(t.TS); due {
		m.g.Expire(deadline, nil)
		for _, e := range m.members {
			e.ApplyExpiry(deadline)
		}
	}
	relevant := false
	for _, e := range m.members {
		if e.RelevantLabel(t.Label) {
			relevant = true
			break
		}
	}
	if !relevant {
		m.dropped++
		return
	}
	if t.Op == stream.Delete {
		if !m.g.Delete(t.Key()) {
			return
		}
		for _, e := range m.members {
			if e.RelevantLabel(t.Label) {
				e.ApplyDelete(t)
			}
		}
		return
	}
	m.g.Insert(t.Src, t.Dst, t.Label, t.TS)
	for _, e := range m.members {
		if e.RelevantLabel(t.Label) {
			e.ApplyInsert(t)
		}
	}
}

// Stats aggregates member statistics; Edges/Vertices describe the
// shared graph.
func (m *Multi) Stats() Stats {
	var s Stats
	for _, e := range m.members {
		ms := e.Stats()
		s.Trees += ms.Trees
		s.Nodes += ms.Nodes
		s.Results += ms.Results
		s.Invalidations += ms.Invalidations
		s.InsertCalls += ms.InsertCalls
		s.ExpiryRuns += ms.ExpiryRuns
		s.ExpiryTime += ms.ExpiryTime
	}
	s.TuplesSeen = m.seen
	s.TuplesDropped = m.dropped
	s.Edges = m.g.NumEdges()
	s.Vertices = m.g.NumVertices()
	return s
}

var _ Engine = (*Multi)(nil)
