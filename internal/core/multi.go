package core

import (
	"fmt"

	"streamrpq/internal/automaton"
	"streamrpq/internal/graph"
	"streamrpq/internal/stream"
	"streamrpq/internal/window"
)

// Multi evaluates several persistent RPQs over one streaming graph,
// sharing the snapshot graph and the window machinery across queries —
// the multi-query direction the paper lists as future work (§7).
//
// Sharing model: the window content G_{W,τ} is query-independent, so
// it is stored once; each member query keeps its own Δ tree index and
// result sink. A tuple is ingested into the shared graph if its label
// is relevant to at least one member (or unconditionally in retain-all
// mode, see SetRetainAll), and each member whose alphabet contains the
// label updates its own index. All members must share the same window
// specification (the snapshot is common).
//
// The member slice may contain nil tombstones: Remove detaches a query
// without renumbering the survivors, so registration order — which the
// deterministic result merge depends on — stays stable for the
// lifetime of the coordinator.
type Multi struct {
	g       *graph.Graph
	win     *window.Manager
	members []*RAPQ // nil entries are removed members
	now     int64
	seen    int64
	dropped int64

	// retain-all mode: the graph stores every label, not just the union
	// of the registered alphabets, so a query registered later can
	// bootstrap its Δ index from the live window (AddDynamic). labelTS
	// records, per label, the timestamp of the last graph mutation that
	// carried it — exactly the stream clock a member registered from the
	// start would hold, since members advance their clock on every
	// routed (relevant) insert and successful delete.
	retain  bool
	labelTS []int64
}

// NewMulti creates a multi-query evaluator with the shared window
// specification.
func NewMulti(spec window.Spec) (*Multi, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &Multi{
		g:   graph.New(),
		win: window.NewManager(spec),
	}, nil
}

// SetRetainAll switches the shared graph to retain-all mode: every
// tuple mutates the graph even when no registered query's alphabet
// contains its label. This is the prerequisite for AddDynamic — a
// query registered mid-stream replays the live window through its
// fresh Δ index, which only works if the window was retained in full.
// Must be set before the first tuple (the graph content must reflect
// the mode from stream start).
func (m *Multi) SetRetainAll(on bool) error {
	if m.seen > 0 {
		return fmt.Errorf("core: SetRetainAll after processing started")
	}
	m.retain = on
	return nil
}

// RetainAll reports whether the shared graph stores every label.
func (m *Multi) RetainAll() bool { return m.retain }

// Add registers one query and returns its engine (for Stats probes).
// All member engines share the coordinator's snapshot graph. Queries
// must be added before the first tuple is processed; use AddDynamic to
// register mid-stream.
func (m *Multi) Add(a *automaton.Bound, opts ...Option) (*RAPQ, error) {
	if m.seen > 0 {
		return nil, fmt.Errorf("core: Multi.Add after processing started (use AddDynamic)")
	}
	if err := m.checkLabelSpace(a); err != nil {
		return nil, err
	}
	e := NewRAPQ(a, m.win.Spec(), opts...)
	e.AttachGraph(m.g) // share the snapshot graph
	m.members = append(m.members, e)
	return e, nil
}

// checkLabelSpace enforces the dense-label-space discipline: the shared
// graph stores ids from one dictionary and each member indexes its
// transition tables by them. With a static query set every member is
// bound against the identical space; with dynamic registration the
// space grows monotonically (later members see a larger dictionary),
// and traversals of older members bounds-check labels beyond their
// binding (see the ΣQ guards in rapq.go / parallel.go).
func (m *Multi) checkLabelSpace(a *automaton.Bound) error {
	for _, e := range m.members {
		if e == nil {
			continue
		}
		if m.retain {
			if len(a.ByLabel) < e.LabelSpace() {
				return fmt.Errorf("core: label space shrank: %d vs existing %d labels (bind new queries against the full dictionary)",
					len(a.ByLabel), e.LabelSpace())
			}
			continue
		}
		if len(a.ByLabel) != e.LabelSpace() {
			return fmt.Errorf("core: label space mismatch: %d vs %d labels",
				len(a.ByLabel), e.LabelSpace())
		}
	}
	return nil
}

// AddDynamic registers a query mid-stream. The coordinator must be in
// retain-all mode. The new member's Δ index is bootstrapped by
// replaying the live window content (in canonical (TS, Src, Dst,
// Label) order) through it; matches emitted during the replay — the
// window's current live result set — are suppressed, because they
// correspond to results a from-start engine emitted before this point,
// not to new stream tuples. From the next tuple on, the member emits
// exactly what a from-start engine emits over the same suffix.
func (m *Multi) AddDynamic(a *automaton.Bound, opts ...Option) (*RAPQ, error) {
	if !m.retain {
		return nil, fmt.Errorf("core: AddDynamic requires retain-all mode (SetRetainAll before the first tuple)")
	}
	if err := m.checkLabelSpace(a); err != nil {
		return nil, err
	}
	e := NewRAPQ(a, m.win.Spec(), opts...)
	real := e.sink
	e.sink = discardSink{}
	e.BootstrapFromGraph(m.g, m.g.Epoch())
	e.sink = real
	// Align the member's stream clock with the one a from-start engine
	// would hold: the last timestamp that touched a relevant label (the
	// window may have dropped the carrying edge; the clock survives).
	for l, ts := range m.labelTS {
		if a.Relevant(l) {
			e.AlignClock(ts)
		}
	}
	m.members = append(m.members, e)
	return e, nil
}

// Remove detaches a member registered with Add or AddDynamic. Its slot
// becomes a nil tombstone so surviving members keep their registration
// index. Returns false if the engine is not a (live) member.
func (m *Multi) Remove(target *RAPQ) bool {
	if target == nil {
		return false
	}
	for i, e := range m.members {
		if e == target {
			m.members[i] = nil
			return true
		}
	}
	return false
}

// Len returns the number of live (non-removed) queries.
func (m *Multi) Len() int {
	n := 0
	for _, e := range m.members {
		if e != nil {
			n++
		}
	}
	return n
}

// Graph exposes the shared snapshot graph.
func (m *Multi) Graph() *graph.Graph { return m.g }

// noteLabel records the stream clock per label in retain-all mode; see
// the labelTS field. Called for exactly the tuples that mutated the
// graph, which are exactly the tuples a relevant member's engine clock
// advances on.
func (m *Multi) noteLabel(t stream.Tuple) {
	if !m.retain || t.Label < 0 {
		return
	}
	for int(t.Label) >= len(m.labelTS) {
		m.labelTS = append(m.labelTS, 0)
	}
	if t.TS > m.labelTS[t.Label] {
		m.labelTS[t.Label] = t.TS
	}
}

// Process routes one tuple to every member whose alphabet contains its
// label. Graph and window maintenance happen exactly once regardless
// of the number of queries.
func (m *Multi) Process(t stream.Tuple) {
	m.seen++
	if t.TS > m.now {
		m.now = t.TS
	}
	if deadline, due := m.win.Observe(t.TS); due {
		m.g.Expire(deadline, nil)
		for _, e := range m.members {
			if e != nil {
				e.ApplyExpiry(deadline)
			}
		}
	}
	relevant := false
	for _, e := range m.members {
		if e != nil && e.RelevantLabel(t.Label) {
			relevant = true
			break
		}
	}
	if !relevant {
		m.dropped++
		if !m.retain {
			return
		}
	}
	if t.Op == stream.Delete {
		if !m.g.Delete(t.Key()) {
			return
		}
		m.noteLabel(t)
		for _, e := range m.members {
			if e != nil && e.RelevantLabel(t.Label) {
				e.ApplyDelete(t)
			}
		}
		return
	}
	m.g.Insert(t.Src, t.Dst, t.Label, t.TS)
	m.noteLabel(t)
	for _, e := range m.members {
		if e != nil && e.RelevantLabel(t.Label) {
			e.ApplyInsert(t)
		}
	}
}

// Stats aggregates member statistics; Edges/Vertices describe the
// shared graph.
func (m *Multi) Stats() Stats {
	var s Stats
	for _, e := range m.members {
		if e == nil {
			continue
		}
		ms := e.Stats()
		s.Trees += ms.Trees
		s.Nodes += ms.Nodes
		s.Results += ms.Results
		s.Invalidations += ms.Invalidations
		s.InsertCalls += ms.InsertCalls
		s.ExpiryRuns += ms.ExpiryRuns
		s.ExpiryTime += ms.ExpiryTime
	}
	s.TuplesSeen = m.seen
	s.TuplesDropped = m.dropped
	s.Edges = m.g.NumEdges()
	s.Vertices = m.g.NumVertices()
	return s
}

var _ Engine = (*Multi)(nil)
