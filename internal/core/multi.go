package core

import (
	"fmt"

	"streamrpq/internal/automaton"
	"streamrpq/internal/graph"
	"streamrpq/internal/stream"
	"streamrpq/internal/window"
)

// Multi evaluates several persistent RPQs over one streaming graph,
// sharing the snapshot graph and the window machinery across queries —
// the multi-query direction the paper lists as future work (§7).
//
// Sharing model: the window content G_{W,τ} is query-independent, so
// it is stored once. Registered queries are *slots* (holding the
// query's sink and registration index) that subscribe to *groups*:
// queries whose bound automata are structurally identical — equal
// Bound.Fingerprint, i.e. equal path language over the same label ids —
// share ONE group, whose single Δ tree index is maintained once and
// whose emissions fan out to every subscriber's sink in registration
// order. Since the engine is deterministic, each subscriber observes
// byte-for-byte the stream a private engine would have produced, while
// the per-tuple work is proportional to the number of distinct automata,
// not the number of queries. SetSharing(false) restores the one-group-
// per-query layout.
//
// Per tuple, dispatch consults a RelevanceIndex: only groups with a
// transition on the incoming label are touched, most selective first.
//
// The slot slice may contain nil tombstones: removal detaches a query
// without renumbering the survivors, so registration order — which the
// deterministic result merge depends on — stays stable for the
// lifetime of the coordinator.
type Multi struct {
	g       *graph.Graph
	win     *window.Manager
	slots   []*multiSlot  // nil entries are removed queries
	groups  []*multiGroup // live groups, creation order
	rel     RelevanceIndex
	sharing bool
	now     int64
	seen    int64
	dropped int64

	// Relevance-filter accounting: dispatches counts (tuple, group)
	// applications that passed the label filter, relevanceSkips counts
	// the pairs it avoided (for tuples that reached at least one group).
	dispatches     int64
	relevanceSkips int64

	// retain-all mode: the graph stores every label, not just the union
	// of the registered alphabets, so a query registered later can
	// bootstrap its Δ index from the live window (AddDynamic). labelTS
	// records, per label, the timestamp of the last graph mutation that
	// carried it — exactly the stream clock a member registered from the
	// start would hold, since members advance their clock on every
	// routed (relevant) insert and successful delete.
	retain  bool
	labelTS []int64
}

// multiSlot is one registered query: its bound automaton, its private
// result sink, and the engine options it was registered with. The
// group pointer is the slot's current subscription.
type multiSlot struct {
	bound   *automaton.Bound
	sink    Sink
	scanAll bool
	key     string // group key: Fingerprint + config marker
	group   *multiGroup
}

// multiGroup owns one shared Δ-index engine evaluated once per tuple
// for all subscribed slots. subs holds subscriber slot indices in
// ascending registration order (the fan-out order).
type multiGroup struct {
	eng   *RAPQ
	bound *automaton.Bound
	key   string
	subs  []int
}

// groupSink fans one engine emission out to every subscriber's sink,
// in registration order — the order a loop over private members would
// have delivered it.
type groupSink struct {
	m *Multi
	g *multiGroup
}

func (s *groupSink) OnMatch(mt Match) {
	for _, i := range s.g.subs {
		if sk := s.m.slots[i].sink; sk != nil {
			sk.OnMatch(mt)
		}
	}
}

func (s *groupSink) OnInvalidate(mt Match) {
	for _, i := range s.g.subs {
		if sk := s.m.slots[i].sink; sk != nil {
			sk.OnInvalidate(mt)
		}
	}
}

// NewMulti creates a multi-query evaluator with the shared window
// specification. Query sharing is on by default; see SetSharing.
func NewMulti(spec window.Spec) (*Multi, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &Multi{
		g:       graph.New(),
		win:     window.NewManager(spec),
		sharing: true,
	}, nil
}

// SetSharing switches shared-group evaluation on or off. Must be called
// before the first tuple and before RestoreState: already-registered
// queries are regrouped with fresh engines (legal while all state is
// empty), so engine pointers previously returned by Add are invalidated.
func (m *Multi) SetSharing(on bool) error {
	if m.seen > 0 {
		return fmt.Errorf("core: SetSharing after processing started")
	}
	m.sharing = on
	m.groups = nil
	for i, sl := range m.slots {
		if sl == nil {
			continue
		}
		sl.group = nil
		m.subscribe(sl, i)
	}
	m.rebuildRelevance()
	return nil
}

// Sharing reports whether equivalent queries share one Δ-index group.
func (m *Multi) Sharing() bool { return m.sharing }

// SetRetainAll switches the shared graph to retain-all mode: every
// tuple mutates the graph even when no registered query's alphabet
// contains its label. This is the prerequisite for AddDynamic — a
// query registered mid-stream replays the live window through its
// fresh Δ index, which only works if the window was retained in full.
// Must be set before the first tuple (the graph content must reflect
// the mode from stream start).
func (m *Multi) SetRetainAll(on bool) error {
	if m.seen > 0 {
		return fmt.Errorf("core: SetRetainAll after processing started")
	}
	m.retain = on
	return nil
}

// RetainAll reports whether the shared graph stores every label.
func (m *Multi) RetainAll() bool { return m.retain }

// slotKey derives the group key from the bound automaton and the
// engine configuration: only slots that would run byte-identical
// engines may share a group.
func slotKey(a *automaton.Bound, scanAll bool) string {
	k := a.Fingerprint()
	if scanAll {
		k += "|scanall"
	}
	return k
}

// newSlot materializes the registration options into a slot.
func (m *Multi) newSlot(a *automaton.Bound, opts ...Option) *multiSlot {
	cfg := config{}
	for _, o := range opts {
		o(&cfg)
	}
	return &multiSlot{
		bound:   a,
		sink:    cfg.sink,
		scanAll: cfg.scanAllTrees,
		key:     slotKey(a, cfg.scanAllTrees),
	}
}

// newGroup builds a fresh shared engine for the slot's automaton and
// attaches it to the coordinator's graph.
func (m *Multi) newGroup(sl *multiSlot) *multiGroup {
	g := &multiGroup{bound: sl.bound, key: sl.key}
	engOpts := []Option{WithSink(&groupSink{m: m, g: g})}
	if sl.scanAll {
		engOpts = append(engOpts, WithoutInvertedIndex())
	}
	g.eng = NewRAPQ(sl.bound, m.win.Spec(), engOpts...)
	g.eng.AttachGraph(m.g)
	return g
}

// subscribe attaches the slot (at registration index idx) to its group,
// creating the group if none matches. Returns the group.
func (m *Multi) subscribe(sl *multiSlot, idx int) *multiGroup {
	var g *multiGroup
	if m.sharing {
		for _, cand := range m.groups {
			if cand.key == sl.key {
				g = cand
				break
			}
		}
	}
	if g == nil {
		g = m.newGroup(sl)
		m.groups = append(m.groups, g)
	}
	g.subs = append(g.subs, idx)
	sl.group = g
	return g
}

// rebuildRelevance recomputes the per-label dispatch lists; called on
// every membership change (between tuples).
func (m *Multi) rebuildRelevance() {
	bounds := make([]*automaton.Bound, len(m.groups))
	tiebreak := make([]int, len(m.groups))
	for i, g := range m.groups {
		bounds[i] = g.bound
		tiebreak[i] = g.subs[0]
	}
	m.rel = BuildRelevanceIndex(bounds, tiebreak)
}

// Add registers one query and returns its engine (for Stats probes).
// With sharing on, an equivalent already-registered query yields the
// same (shared) engine. All engines share the coordinator's snapshot
// graph. Queries must be added before the first tuple is processed;
// use AddDynamic to register mid-stream.
func (m *Multi) Add(a *automaton.Bound, opts ...Option) (*RAPQ, error) {
	if m.seen > 0 {
		return nil, fmt.Errorf("core: Multi.Add after processing started (use AddDynamic)")
	}
	if err := m.checkLabelSpace(a); err != nil {
		return nil, err
	}
	sl := m.newSlot(a, opts...)
	m.slots = append(m.slots, sl)
	g := m.subscribe(sl, len(m.slots)-1)
	m.rebuildRelevance()
	return g.eng, nil
}

// checkLabelSpace enforces the dense-label-space discipline: the shared
// graph stores ids from one dictionary and each member indexes its
// transition tables by them. With a static query set every member is
// bound against the identical space; with dynamic registration the
// space grows monotonically (later members see a larger dictionary),
// and traversals of older members bounds-check labels beyond their
// binding (see the ΣQ guards in rapq.go / parallel.go).
func (m *Multi) checkLabelSpace(a *automaton.Bound) error {
	for _, g := range m.groups {
		if m.retain {
			if len(a.ByLabel) < g.eng.LabelSpace() {
				return fmt.Errorf("core: label space shrank: %d vs existing %d labels (bind new queries against the full dictionary)",
					len(a.ByLabel), g.eng.LabelSpace())
			}
			continue
		}
		if len(a.ByLabel) != g.eng.LabelSpace() {
			return fmt.Errorf("core: label space mismatch: %d vs %d labels",
				len(a.ByLabel), g.eng.LabelSpace())
		}
	}
	return nil
}

// AddDynamic registers a query mid-stream. The coordinator must be in
// retain-all mode. If sharing is on and an equivalent group already
// exists, the query simply subscribes to its fan-out: the shared engine
// was registered from stream start, so its future emissions are exactly
// the suffix a from-start engine would emit — no bootstrap needed.
// Otherwise the new group's Δ index is bootstrapped by replaying the
// live window content (in canonical (TS, Src, Dst, Label) order);
// matches emitted during the replay — the window's current live result
// set — are suppressed, because they correspond to results a from-start
// engine emitted before this point, not to new stream tuples. From the
// next tuple on, the subscriber receives exactly what a from-start
// engine emits over the same suffix.
func (m *Multi) AddDynamic(a *automaton.Bound, opts ...Option) (*RAPQ, error) {
	if !m.retain {
		return nil, fmt.Errorf("core: AddDynamic requires retain-all mode (SetRetainAll before the first tuple)")
	}
	if err := m.checkLabelSpace(a); err != nil {
		return nil, err
	}
	sl := m.newSlot(a, opts...)
	if m.sharing {
		for _, g := range m.groups {
			if g.key == sl.key {
				m.slots = append(m.slots, sl)
				g.subs = append(g.subs, len(m.slots)-1)
				sl.group = g
				m.rebuildRelevance()
				return g.eng, nil
			}
		}
	}
	g := m.newGroup(sl)
	real := g.eng.sink
	g.eng.sink = discardSink{}
	g.eng.BootstrapFromGraph(m.g, m.g.Epoch())
	g.eng.sink = real
	// Align the engine's stream clock with the one a from-start engine
	// would hold: the last timestamp that touched a relevant label (the
	// window may have dropped the carrying edge; the clock survives).
	for l, ts := range m.labelTS {
		if a.Relevant(l) {
			g.eng.AlignClock(ts)
		}
	}
	m.slots = append(m.slots, sl)
	g.subs = append(g.subs, len(m.slots)-1)
	sl.group = g
	m.groups = append(m.groups, g)
	m.rebuildRelevance()
	return g.eng, nil
}

// RemoveIndex detaches the query at registration index i. Its slot
// becomes a nil tombstone so surviving queries keep their registration
// index; its group shrinks by one subscriber and is dropped when the
// last subscriber leaves (splitting a shared group back apart happens
// naturally: the remaining subscribers keep the group). Returns false
// if i is out of range or already removed.
func (m *Multi) RemoveIndex(i int) bool {
	if i < 0 || i >= len(m.slots) || m.slots[i] == nil {
		return false
	}
	sl := m.slots[i]
	m.slots[i] = nil
	g := sl.group
	for j, s := range g.subs {
		if s == i {
			g.subs = append(g.subs[:j], g.subs[j+1:]...)
			break
		}
	}
	if len(g.subs) == 0 {
		for j, cand := range m.groups {
			if cand == g {
				m.groups = append(m.groups[:j], m.groups[j+1:]...)
				break
			}
		}
	}
	m.rebuildRelevance()
	return true
}

// Remove detaches a member registered with Add or AddDynamic, by its
// engine. With sharing on, several slots may share one engine; the
// lowest-indexed live subscriber is removed (use RemoveIndex to pick a
// specific one). Returns false if the engine is not a (live) member.
func (m *Multi) Remove(target *RAPQ) bool {
	if target == nil {
		return false
	}
	for i, sl := range m.slots {
		if sl != nil && sl.group.eng == target {
			return m.RemoveIndex(i)
		}
	}
	return false
}

// EngineAt returns the engine evaluating the query registered at slot
// i (shared by every query in its group when sharing is on), or nil if
// i is out of range or the slot was removed.
func (m *Multi) EngineAt(i int) *RAPQ {
	if i < 0 || i >= len(m.slots) || m.slots[i] == nil {
		return nil
	}
	return m.slots[i].group.eng
}

// Len returns the number of live (non-removed) queries.
func (m *Multi) Len() int {
	n := 0
	for _, sl := range m.slots {
		if sl != nil {
			n++
		}
	}
	return n
}

// Graph exposes the shared snapshot graph.
func (m *Multi) Graph() *graph.Graph { return m.g }

// noteLabel records the stream clock per label in retain-all mode; see
// the labelTS field. Called for exactly the tuples that mutated the
// graph, which are exactly the tuples a relevant member's engine clock
// advances on.
func (m *Multi) noteLabel(t stream.Tuple) {
	if !m.retain || t.Label < 0 {
		return
	}
	for int(t.Label) >= len(m.labelTS) {
		m.labelTS = append(m.labelTS, 0)
	}
	if t.TS > m.labelTS[t.Label] {
		m.labelTS[t.Label] = t.TS
	}
}

// Process routes one tuple to every group whose alphabet contains its
// label, most selective first (the groups are independent — they share
// only the read-only snapshot graph — so evaluation order cannot change
// any group's emissions). Graph and window maintenance happen exactly
// once regardless of the number of queries.
func (m *Multi) Process(t stream.Tuple) {
	m.seen++
	if t.TS > m.now {
		m.now = t.TS
	}
	if deadline, due := m.win.Observe(t.TS); due {
		m.g.Expire(deadline, nil)
		for _, g := range m.groups {
			g.eng.ApplyExpiry(deadline)
		}
	}
	order := m.rel.Groups(int(t.Label))
	if len(order) == 0 {
		m.dropped++
		if !m.retain {
			return
		}
	}
	if t.Op == stream.Delete {
		if !m.g.Delete(t.Key()) {
			return
		}
		m.noteLabel(t)
		if len(order) == 0 {
			return
		}
		m.dispatches += int64(len(order))
		m.relevanceSkips += int64(len(m.groups) - len(order))
		for _, gi := range order {
			m.groups[gi].eng.ApplyDelete(t)
		}
		return
	}
	m.g.Insert(t.Src, t.Dst, t.Label, t.TS)
	m.noteLabel(t)
	if len(order) == 0 {
		return
	}
	m.dispatches += int64(len(order))
	m.relevanceSkips += int64(len(m.groups) - len(order))
	for _, gi := range order {
		m.groups[gi].eng.ApplyInsert(t)
	}
}

// Stats aggregates statistics. Index-maintenance counters (Trees,
// Nodes, InsertCalls, expiry costs) are counted once per group — that
// is the point of sharing — while delivery counters (Results,
// Invalidations) are per subscribed query: each group's engine counts
// are multiplied by its subscriber count, matching what private
// engines would have reported for a static query set. Edges/Vertices
// describe the shared graph.
func (m *Multi) Stats() Stats {
	var s Stats
	for _, g := range m.groups {
		ms := g.eng.Stats()
		n := int64(len(g.subs))
		s.Trees += ms.Trees
		s.Nodes += ms.Nodes
		s.Results += ms.Results * n
		s.Invalidations += ms.Invalidations * n
		s.InsertCalls += ms.InsertCalls
		s.ExpiryRuns += ms.ExpiryRuns
		s.ExpiryTime += ms.ExpiryTime
		if len(g.subs) > 1 {
			s.SharedGroups++
		}
	}
	s.Groups = len(m.groups)
	s.Dispatches = m.dispatches
	s.RelevanceSkips = m.relevanceSkips
	s.TuplesSeen = m.seen
	s.TuplesDropped = m.dropped
	s.Edges = m.g.NumEdges()
	s.Vertices = m.g.NumVertices()
	return s
}

var _ Engine = (*Multi)(nil)
