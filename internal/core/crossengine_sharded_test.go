// Differential tests between the sequential engines of this package
// and the sharded concurrent coordinator of internal/shard. They live
// in package core_test (same directory as crossengine_test.go) because
// importing internal/shard from package core would be an import cycle.
package core_test

import (
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"

	"streamrpq/internal/automaton"
	"streamrpq/internal/core"
	"streamrpq/internal/pattern"
	"streamrpq/internal/shard"
	"streamrpq/internal/stream"
	"streamrpq/internal/window"
)

func bindX(t testing.TB, expr string, labels ...string) *automaton.Bound {
	t.Helper()
	ids := map[string]int{}
	for i, l := range labels {
		ids[l] = i
	}
	return automaton.Compile(pattern.MustParse(expr)).Bind(func(s string) int {
		if id, ok := ids[s]; ok {
			return id
		}
		return -1
	}, len(labels))
}

func randomTuplesX(rng *rand.Rand, n, vertices, labels int, maxStep int64, delRatio float64) []stream.Tuple {
	var out []stream.Tuple
	ts := int64(0)
	var inserted []stream.Tuple
	for i := 0; i < n; i++ {
		ts += rng.Int63n(maxStep + 1)
		if len(inserted) > 0 && rng.Float64() < delRatio {
			old := inserted[rng.Intn(len(inserted))]
			out = append(out, stream.Tuple{TS: ts, Src: old.Src, Dst: old.Dst, Label: old.Label, Op: stream.Delete})
			continue
		}
		tu := stream.Tuple{
			TS:    ts,
			Src:   stream.VertexID(rng.Intn(vertices)),
			Dst:   stream.VertexID(rng.Intn(vertices)),
			Label: stream.LabelID(rng.Intn(labels)),
		}
		out = append(out, tu)
		inserted = append(inserted, tu)
	}
	return out
}

// tagSink records a sequential engine's emissions as shard.Result
// values tagged with the current (tuple, query) position, so the
// sequential oracle's stream can be compared byte-for-byte against the
// sharded coordinator's merged output.
type tagSink struct {
	tuple, query *int
	qi           int
	out          *[]shard.Result
}

func (s tagSink) OnMatch(m core.Match) {
	*s.out = append(*s.out, shard.Result{Tuple: *s.tuple, Query: s.qi, Match: m})
}

func (s tagSink) OnInvalidate(m core.Match) {
	*s.out = append(*s.out, shard.Result{Tuple: *s.tuple, Query: s.qi, Match: m, Invalidated: true})
}

// canonResult is a shard.Result with the batch tuple index replaced by
// the tuple's timestamp. The sharded coordinator applies a whole
// sub-batch of graph mutations before the members run, so a member
// processing tuple i already sees later edges bearing the same
// timestamp and may discover a match a few positions earlier than the
// tuple-at-a-time sequential engine — attribution inside one timestamp
// tie-group is the one representation detail the backends do not share.
// Keying by timestamp instead of tuple index erases exactly that and
// nothing else: across tie-groups the order must still agree exactly.
type canonResult struct {
	TS          int64 // timestamp of the triggering tuple
	Query       int
	Invalidated bool
	Match       core.Match
}

// canonicalize maps tagged results to timestamp-keyed form and sorts
// each tie-group into the canonical order (query registration index,
// matches before invalidations, then (From, To, TS)).
func canonicalize(rs []shard.Result, tupleTS func(int) int64) []canonResult {
	out := make([]canonResult, len(rs))
	for i, r := range rs {
		out[i] = canonResult{TS: tupleTS(r.Tuple), Query: r.Query, Invalidated: r.Invalidated, Match: r.Match}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := &out[i], &out[j]
		if a.TS != b.TS {
			return a.TS < b.TS
		}
		if a.Query != b.Query {
			return a.Query < b.Query
		}
		if a.Invalidated != b.Invalidated {
			return !a.Invalidated
		}
		if a.Match.From != b.Match.From {
			return a.Match.From < b.Match.From
		}
		if a.Match.To != b.Match.To {
			return a.Match.To < b.Match.To
		}
		return a.Match.TS < b.Match.TS
	})
	return out
}

// TestShardedAgreesWithRAPQ: for shard counts 1, 2 and 8 crossed with
// pipeline depths 1, 2 and 4, the sharded engine must produce, per
// query, byte-identical results to a standalone sequential RAPQ engine
// on randomized streams with window expiry AND explicit deletions: the
// exact merged result sequence — matches and invalidations, with
// timestamps, in canonical order — plus the live result sets. With
// support-counting deletes the invalidation stream is a pure function
// of the input stream (no spanning-tree-shape dependence), so deletion
// streams get the same exact comparison as append-only ones.
func TestShardedAgreesWithRAPQ(t *testing.T) {
	exprs := []string{"(a/b)+", "a/b*", "(a|b)+", "a*"}
	for _, delRatio := range []float64{0, 0.15} {
		spec := window.Spec{Size: 25, Slide: 4}
		tuples := randomTuplesX(rand.New(rand.NewSource(404)), 700, 9, 2, 2, delRatio)

		// Sequential oracle: tag every emission with its (tuple, query)
		// position, then sort into the coordinator's canonical order.
		var want []shard.Result
		tupleIdx := 0
		var refs []*core.CollectorSink
		var seqs []*core.RAPQ
		for qi, expr := range exprs {
			ref := core.NewCollector()
			refs = append(refs, ref)
			sink := core.MultiSink{tagSink{tuple: &tupleIdx, qi: qi, out: &want}, ref}
			seqs = append(seqs, core.NewRAPQ(bindX(t, expr, "a", "b"), spec, core.WithSink(sink)))
		}
		for i, tu := range tuples {
			tupleIdx = i
			for _, e := range seqs {
				e.Process(tu)
			}
		}
		tupleTS := func(i int) int64 { return tuples[i].TS }
		wantCanon := canonicalize(want, tupleTS)

		var firstRaw []shard.Result
		for _, shards := range []int{1, 2, 8} {
			for _, depth := range []int{1, 2, 4} {
				s, err := shard.New(spec, shard.WithShards(shards), shard.WithPipelineDepth(depth))
				if err != nil {
					t.Fatal(err)
				}
				var gots []*core.CollectorSink
				for _, expr := range exprs {
					got := core.NewCollector()
					gots = append(gots, got)
					if _, err := s.Add(bindX(t, expr, "a", "b"), got); err != nil {
						t.Fatal(err)
					}
				}
				var have []shard.Result
				for i := 0; i < len(tuples); i += 40 {
					rs, err := s.ProcessBatch(tuples[i:min(i+40, len(tuples))])
					if err != nil {
						t.Fatal(err)
					}
					for _, r := range rs {
						r.Tuple += i // batch-local -> global tuple index
						have = append(have, r)
					}
				}
				s.Close()
				haveCanon := canonicalize(have, tupleTS)
				if !reflect.DeepEqual(wantCanon, haveCanon) {
					n := min(len(wantCanon), len(haveCanon))
					diverge := n
					for i := 0; i < n; i++ {
						if wantCanon[i] != haveCanon[i] {
							diverge = i
							break
						}
					}
					for i := max(0, diverge-3); i < min(n, diverge+5); i++ {
						t.Logf("[%d] want %+v  have %+v", i, wantCanon[i], haveCanon[i])
					}
					t.Fatalf("shards=%d depth=%d del=%v: merged result streams differ from sequential oracle (%d vs %d results, first divergence at %d)",
						shards, depth, delRatio, len(wantCanon), len(haveCanon), diverge)
				}
				// Among sharded configurations the raw merged streams —
				// tuple attribution included — must be byte-identical.
				if firstRaw == nil {
					firstRaw = have
				} else if !reflect.DeepEqual(firstRaw, have) {
					t.Fatalf("shards=%d depth=%d del=%v: raw merged stream differs from the shards=1 depth=1 run",
						shards, depth, delRatio)
				}
				for qi, expr := range exprs {
					if !reflect.DeepEqual(refs[qi].Live, gots[qi].Live) {
						t.Fatalf("shards=%d depth=%d del=%v %q: live sets differ", shards, depth, delRatio, expr)
					}
				}
			}
		}
	}
}

func sameMatchCounts(a, b []core.Match) bool {
	if len(a) != len(b) {
		return false
	}
	count := map[core.Match]int{}
	for _, m := range a {
		count[m]++
	}
	for _, m := range b {
		if count[m]--; count[m] < 0 {
			return false
		}
	}
	return true
}

// TestShardedAgreesWithMulti: the sharded coordinator must agree with
// the single-threaded core.Multi coordinator on shared-graph
// bookkeeping (tuples seen/dropped, window content) as well as on
// results, for shard counts 1, 2 and 8.
func TestShardedAgreesWithMulti(t *testing.T) {
	exprs := []string{"(a/b)+", "b/a*", "a+"}
	for _, shards := range []int{1, 2, 8} {
		spec := window.Spec{Size: 40, Slide: 8}
		multi, err := core.NewMulti(spec)
		if err != nil {
			t.Fatal(err)
		}
		s, err := shard.New(spec, shard.WithShards(shards))
		if err != nil {
			t.Fatal(err)
		}
		var refs, gots []*core.CollectorSink
		for _, expr := range exprs {
			ref, got := core.NewCollector(), core.NewCollector()
			refs, gots = append(refs, ref), append(gots, got)
			if _, err := multi.Add(bindX(t, expr, "a", "b", "c"), core.WithSink(ref)); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Add(bindX(t, expr, "a", "b", "c"), got); err != nil {
				t.Fatal(err)
			}
		}
		// Three labels but only a and b in the alphabets: label c
		// exercises the drop path of both coordinators.
		tuples := randomTuplesX(rand.New(rand.NewSource(808)), 900, 10, 3, 1, 0)
		for _, tu := range tuples {
			multi.Process(tu)
		}
		for i := 0; i < len(tuples); i += 100 {
			if _, err := s.ProcessBatch(tuples[i:min(i+100, len(tuples))]); err != nil {
				t.Fatal(err)
			}
		}
		s.Close()
		for qi, expr := range exprs {
			if !sameMatchCounts(refs[qi].Matched, gots[qi].Matched) {
				t.Fatalf("shards=%d %q: match multisets differ", shards, expr)
			}
		}
		ms, ss := multi.Stats(), s.Stats()
		if ms.TuplesSeen != ss.TuplesSeen || ms.TuplesDropped != ss.TuplesDropped ||
			ms.Edges != ss.Edges || ms.Vertices != ss.Vertices || ms.Results != ss.Results {
			t.Fatalf("shards=%d: coordinator stats diverge:\nmulti   %+v\nsharded %+v", shards, ms, ss)
		}
	}
}

// TestShardedIngestStress is the -race stress test for the concurrent
// batch path: several sharded engines run whole streams concurrently,
// each fanning sub-batches out to its own shard goroutines (with an
// intra-query parallel member mixed in), while the race detector
// watches the shared-graph/worker handoffs.
func TestShardedIngestStress(t *testing.T) {
	const engines = 4
	var wg sync.WaitGroup
	errs := make(chan error, engines)
	for g := 0; g < engines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			s, err := shard.New(window.Spec{Size: 30, Slide: 3}, shard.WithShards(8))
			if err != nil {
				errs <- err
				return
			}
			defer s.Close()
			for _, expr := range []string{"(a/b)+", "a/b*", "(a|b)+", "b+", "a/b/a"} {
				if _, err := s.Add(bindX(t, expr, "a", "b"), nil); err != nil {
					errs <- err
					return
				}
			}
			if _, err := s.AddParallel(bindX(t, "(b/a)+", "a", "b"), nil, 4); err != nil {
				errs <- err
				return
			}
			tuples := randomTuplesX(rand.New(rand.NewSource(seed)), 1500, 12, 2, 1, 0.05)
			for i := 0; i < len(tuples); i += 64 {
				if _, err := s.ProcessBatch(tuples[i:min(i+64, len(tuples))]); err != nil {
					errs <- err
					return
				}
			}
			if st := s.Stats(); st.Results == 0 {
				t.Errorf("seed %d: stress run produced no results; test is vacuous", seed)
			}
		}(int64(1000 + g))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
