// Differential tests between the sequential engines of this package
// and the sharded concurrent coordinator of internal/shard. They live
// in package core_test (same directory as crossengine_test.go) because
// importing internal/shard from package core would be an import cycle.
package core_test

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"streamrpq/internal/automaton"
	"streamrpq/internal/core"
	"streamrpq/internal/pattern"
	"streamrpq/internal/shard"
	"streamrpq/internal/stream"
	"streamrpq/internal/window"
)

func bindX(t testing.TB, expr string, labels ...string) *automaton.Bound {
	t.Helper()
	ids := map[string]int{}
	for i, l := range labels {
		ids[l] = i
	}
	return automaton.Compile(pattern.MustParse(expr)).Bind(func(s string) int {
		if id, ok := ids[s]; ok {
			return id
		}
		return -1
	}, len(labels))
}

func randomTuplesX(rng *rand.Rand, n, vertices, labels int, maxStep int64, delRatio float64) []stream.Tuple {
	var out []stream.Tuple
	ts := int64(0)
	var inserted []stream.Tuple
	for i := 0; i < n; i++ {
		ts += rng.Int63n(maxStep + 1)
		if len(inserted) > 0 && rng.Float64() < delRatio {
			old := inserted[rng.Intn(len(inserted))]
			out = append(out, stream.Tuple{TS: ts, Src: old.Src, Dst: old.Dst, Label: old.Label, Op: stream.Delete})
			continue
		}
		tu := stream.Tuple{
			TS:    ts,
			Src:   stream.VertexID(rng.Intn(vertices)),
			Dst:   stream.VertexID(rng.Intn(vertices)),
			Label: stream.LabelID(rng.Intn(labels)),
		}
		out = append(out, tu)
		inserted = append(inserted, tu)
	}
	return out
}

// TestShardedAgreesWithRAPQ: for shard counts 1, 2 and 8 the sharded
// engine must produce, per query, the result stream of a standalone
// sequential RAPQ engine on randomized streams with window expiry —
// the exact match multiset with timestamps (and the live result set)
// on append-only streams, and the exact pair set when explicit
// deletions are present. Re-discovery multiplicity and invalidation
// reports after a deletion depend on the incidental spanning-tree
// shape (Algorithm Delete cuts along tree edges), which is
// map-iteration dependent even sequentially and so not part of the
// engines' contract.
func TestShardedAgreesWithRAPQ(t *testing.T) {
	exprs := []string{"(a/b)+", "a/b*", "(a|b)+", "a*"}
	for _, shards := range []int{1, 2, 8} {
		for _, delRatio := range []float64{0, 0.1} {
			spec := window.Spec{Size: 25, Slide: 4}
			var refs, gots []*core.CollectorSink
			var seqs []*core.RAPQ
			s, err := shard.New(spec, shard.WithShards(shards))
			if err != nil {
				t.Fatal(err)
			}
			for _, expr := range exprs {
				ref, got := core.NewCollector(), core.NewCollector()
				refs, gots = append(refs, ref), append(gots, got)
				seqs = append(seqs, core.NewRAPQ(bindX(t, expr, "a", "b"), spec, core.WithSink(ref)))
				if _, err := s.Add(bindX(t, expr, "a", "b"), got); err != nil {
					t.Fatal(err)
				}
			}
			tuples := randomTuplesX(rand.New(rand.NewSource(404)), 700, 9, 2, 2, delRatio)
			for _, tu := range tuples {
				for _, e := range seqs {
					e.Process(tu)
				}
			}
			for i := 0; i < len(tuples); i += 40 {
				if _, err := s.ProcessBatch(tuples[i:min(i+40, len(tuples))]); err != nil {
					t.Fatal(err)
				}
			}
			s.Close()
			for qi, expr := range exprs {
				if !reflect.DeepEqual(refs[qi].Pairs(), gots[qi].Pairs()) {
					t.Fatalf("shards=%d del=%v %q: pair sets differ", shards, delRatio, expr)
				}
				if delRatio == 0 {
					if !sameMatchCounts(refs[qi].Matched, gots[qi].Matched) {
						t.Fatalf("shards=%d %q: match multisets differ (%d vs %d)",
							shards, expr, len(refs[qi].Matched), len(gots[qi].Matched))
					}
					if !reflect.DeepEqual(refs[qi].Live, gots[qi].Live) {
						t.Fatalf("shards=%d %q: live sets differ", shards, expr)
					}
				}
			}
		}
	}
}

func sameMatchCounts(a, b []core.Match) bool {
	if len(a) != len(b) {
		return false
	}
	count := map[core.Match]int{}
	for _, m := range a {
		count[m]++
	}
	for _, m := range b {
		if count[m]--; count[m] < 0 {
			return false
		}
	}
	return true
}

// TestShardedAgreesWithMulti: the sharded coordinator must agree with
// the single-threaded core.Multi coordinator on shared-graph
// bookkeeping (tuples seen/dropped, window content) as well as on
// results, for shard counts 1, 2 and 8.
func TestShardedAgreesWithMulti(t *testing.T) {
	exprs := []string{"(a/b)+", "b/a*", "a+"}
	for _, shards := range []int{1, 2, 8} {
		spec := window.Spec{Size: 40, Slide: 8}
		multi, err := core.NewMulti(spec)
		if err != nil {
			t.Fatal(err)
		}
		s, err := shard.New(spec, shard.WithShards(shards))
		if err != nil {
			t.Fatal(err)
		}
		var refs, gots []*core.CollectorSink
		for _, expr := range exprs {
			ref, got := core.NewCollector(), core.NewCollector()
			refs, gots = append(refs, ref), append(gots, got)
			if _, err := multi.Add(bindX(t, expr, "a", "b", "c"), core.WithSink(ref)); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Add(bindX(t, expr, "a", "b", "c"), got); err != nil {
				t.Fatal(err)
			}
		}
		// Three labels but only a and b in the alphabets: label c
		// exercises the drop path of both coordinators.
		tuples := randomTuplesX(rand.New(rand.NewSource(808)), 900, 10, 3, 1, 0)
		for _, tu := range tuples {
			multi.Process(tu)
		}
		for i := 0; i < len(tuples); i += 100 {
			if _, err := s.ProcessBatch(tuples[i:min(i+100, len(tuples))]); err != nil {
				t.Fatal(err)
			}
		}
		s.Close()
		for qi, expr := range exprs {
			if !sameMatchCounts(refs[qi].Matched, gots[qi].Matched) {
				t.Fatalf("shards=%d %q: match multisets differ", shards, expr)
			}
		}
		ms, ss := multi.Stats(), s.Stats()
		if ms.TuplesSeen != ss.TuplesSeen || ms.TuplesDropped != ss.TuplesDropped ||
			ms.Edges != ss.Edges || ms.Vertices != ss.Vertices || ms.Results != ss.Results {
			t.Fatalf("shards=%d: coordinator stats diverge:\nmulti   %+v\nsharded %+v", shards, ms, ss)
		}
	}
}

// TestShardedIngestStress is the -race stress test for the concurrent
// batch path: several sharded engines run whole streams concurrently,
// each fanning sub-batches out to its own shard goroutines (with an
// intra-query parallel member mixed in), while the race detector
// watches the shared-graph/worker handoffs.
func TestShardedIngestStress(t *testing.T) {
	const engines = 4
	var wg sync.WaitGroup
	errs := make(chan error, engines)
	for g := 0; g < engines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			s, err := shard.New(window.Spec{Size: 30, Slide: 3}, shard.WithShards(8))
			if err != nil {
				errs <- err
				return
			}
			defer s.Close()
			for _, expr := range []string{"(a/b)+", "a/b*", "(a|b)+", "b+", "a/b/a"} {
				if _, err := s.Add(bindX(t, expr, "a", "b"), nil); err != nil {
					errs <- err
					return
				}
			}
			if _, err := s.AddParallel(bindX(t, "(b/a)+", "a", "b"), nil, 4); err != nil {
				errs <- err
				return
			}
			tuples := randomTuplesX(rand.New(rand.NewSource(seed)), 1500, 12, 2, 1, 0.05)
			for i := 0; i < len(tuples); i += 64 {
				if _, err := s.ProcessBatch(tuples[i:min(i+64, len(tuples))]); err != nil {
					errs <- err
					return
				}
			}
			if st := s.Stats(); st.Results == 0 {
				t.Errorf("seed %d: stress run produced no results; test is vacuous", seed)
			}
		}(int64(1000 + g))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
