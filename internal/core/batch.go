package core

import (
	"streamrpq/internal/automaton"
	"streamrpq/internal/graph"
	"streamrpq/internal/stream"
)

// BatchArbitrary evaluates an RPQ on a static snapshot graph under
// arbitrary path semantics with the polynomial batch algorithm of §3:
// for each vertex x, BFS over the product graph P_{G,A} from (x, s0),
// reporting (x, v) whenever a node (v, sf) with sf ∈ F is reached.
// Only edges with ts > validFrom participate (pass math.MinInt64 to use
// every edge). Complexity O(n·m·k²).
func BatchArbitrary(g *graph.Graph, a *automaton.Bound, validFrom int64) map[Pair]struct{} {
	results := make(map[Pair]struct{})
	g.Vertices(func(x stream.VertexID) bool {
		batchFrom(g, a, x, validFrom, func(v stream.VertexID) {
			results[Pair{From: x, To: v}] = struct{}{}
		})
		return true
	})
	return results
}

// BatchArbitraryFrom evaluates the query from a single source vertex.
func BatchArbitraryFrom(g *graph.Graph, a *automaton.Bound, x stream.VertexID, validFrom int64) map[stream.VertexID]struct{} {
	out := make(map[stream.VertexID]struct{})
	batchFrom(g, a, x, validFrom, func(v stream.VertexID) {
		out[v] = struct{}{}
	})
	return out
}

func batchFrom(g *graph.Graph, a *automaton.Bound, x stream.VertexID, validFrom int64, report func(stream.VertexID)) {
	type pnode struct {
		v stream.VertexID
		s int32
	}
	start := pnode{v: x, s: a.Start}
	seen := map[pnode]struct{}{start: {}}
	queue := []pnode{start}
	epoch := g.Epoch()
	var buf []graph.HalfEdge
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		// buf is fully consumed into queue before the next refill.
		buf = g.AppendOutAt(epoch, cur.v, buf[:0])
		for _, he := range buf {
			if he.TS <= validFrom {
				continue
			}
			t := a.Step(cur.s, int(he.L))
			if t == automaton.NoState {
				continue
			}
			next := pnode{v: he.V, s: t}
			if _, ok := seen[next]; ok {
				continue
			}
			seen[next] = struct{}{}
			if a.Final[t] {
				report(he.V)
			}
			queue = append(queue, next)
		}
	}
}

// BatchWindowed evaluates the streaming-RPQ result of Definition 9 on
// the current snapshot: pairs connected by a path whose edges all have
// ts in (now-|W|, now]. It is the per-instant oracle used by tests and
// by the rescan baseline.
func BatchWindowed(g *graph.Graph, a *automaton.Bound, now, windowSize int64) map[Pair]struct{} {
	return BatchArbitrary(g, a, now-windowSize)
}

// BatchSimple enumerates regular simple paths by exhaustive DFS over
// the product graph with a per-path visited-vertex set. Exponential in
// the worst case; intended as a correctness oracle on small graphs and
// as the general (conflict-tolerant) batch comparator.
func BatchSimple(g *graph.Graph, a *automaton.Bound, validFrom int64) map[Pair]struct{} {
	results := make(map[Pair]struct{})
	g.Vertices(func(x stream.VertexID) bool {
		for v := range BatchSimpleFrom(g, a, x, validFrom) {
			results[Pair{From: x, To: v}] = struct{}{}
		}
		return true
	})
	return results
}

// BatchSimpleFrom enumerates regular simple paths from a single source.
func BatchSimpleFrom(g *graph.Graph, a *automaton.Bound, x stream.VertexID, validFrom int64) map[stream.VertexID]struct{} {
	out := make(map[stream.VertexID]struct{})
	onPath := map[stream.VertexID]struct{}{x: {}}
	epoch := g.Epoch()
	var dfs func(v stream.VertexID, s int32)
	dfs = func(v stream.VertexID, s int32) {
		// Per-frame buffer: the recursive call below traverses the
		// graph again, so the adjacency copy must survive it.
		for _, he := range g.AppendOutAt(epoch, v, nil) {
			if he.TS <= validFrom {
				continue
			}
			t := a.Step(s, int(he.L))
			if t == automaton.NoState {
				continue
			}
			if _, visited := onPath[he.V]; visited {
				continue // not a simple path
			}
			if a.Final[t] {
				out[he.V] = struct{}{}
			}
			onPath[he.V] = struct{}{}
			dfs(he.V, t)
			delete(onPath, he.V)
		}
	}
	dfs(x, a.Start)
	return out
}

// BatchSimpleMW is the Mendelzon–Wood batch algorithm for regular
// simple path queries (§4 "Batch Algorithm"): a DFS over the product
// graph that marks (vertex,state) nodes once their traversal completes
// without conflicts, pruning repeat visits of marked nodes. In the
// absence of conflicts it runs in O(n·m) and is complete; it is sound
// on every input. (The general conflictful case is NP-hard; use
// BatchSimple as the exhaustive oracle there.)
func BatchSimpleMW(g *graph.Graph, a *automaton.Bound, validFrom int64) map[Pair]struct{} {
	results := make(map[Pair]struct{})
	g.Vertices(func(x stream.VertexID) bool {
		for v := range batchSimpleMWFrom(g, a, x, validFrom) {
			results[Pair{From: x, To: v}] = struct{}{}
		}
		return true
	})
	return results
}

type mwKey struct {
	v stream.VertexID
	s int32
}

func batchSimpleMWFrom(g *graph.Graph, a *automaton.Bound, x stream.VertexID, validFrom int64) map[stream.VertexID]struct{} {
	out := make(map[stream.VertexID]struct{})
	marked := make(map[mwKey]bool)
	// pathStates[v] is the ordered list of states in which the current
	// DFS path visits vertex v (first element = first visit).
	pathStates := make(map[stream.VertexID][]int32)

	epoch := g.Epoch()

	// dfs returns true if the traversal below (v,s) completed without
	// detecting a conflict, i.e. (v,s) may be marked.
	var dfs func(v stream.VertexID, s int32) bool
	dfs = func(v stream.VertexID, s int32) bool {
		clean := true
		// Per-frame buffer: the recursive call below traverses the
		// graph again, so the adjacency copy must survive it.
		for _, he := range g.AppendOutAt(epoch, v, nil) {
			if he.TS <= validFrom {
				continue
			}
			t := a.Step(s, int(he.L))
			if t == automaton.NoState {
				continue
			}
			w := he.V
			if states := pathStates[w]; len(states) > 0 {
				// Vertex w already on the path: a simple path cannot
				// revisit it. Check for a conflict between the first
				// visiting state and t (Definition 16).
				if !a.Cont[states[0]][t] {
					clean = false // conflict: ancestors must not be marked
				}
				continue
			}
			if marked[mwKey{v: w, s: t}] {
				continue // pruned: already fully explored conflict-free
			}
			if a.Final[t] {
				out[w] = struct{}{}
			}
			pathStates[w] = append(pathStates[w], t)
			sub := dfs(w, t)
			pathStates[w] = pathStates[w][:len(pathStates[w])-1]
			if len(pathStates[w]) == 0 {
				delete(pathStates, w)
			}
			if sub {
				marked[mwKey{v: w, s: t}] = true
			} else {
				clean = false
			}
		}
		return clean
	}
	pathStates[x] = append(pathStates[x], a.Start)
	dfs(x, a.Start)
	delete(pathStates, x)
	return out
}
