package core

import (
	"fmt"
	"math/rand"
	"testing"

	"streamrpq/internal/automaton"
	"streamrpq/internal/graph"
	"streamrpq/internal/stream"
	"streamrpq/internal/window"
)

// TestRSPQPaperExample replays Example 4.2: under simple path semantics
// the pair (x,y) must still be found through the conflict-detection and
// unmarking machinery, via the simple path ⟨x,z,u,v,y⟩, even though the
// first traversal reaches (y,2) over the non-simple ⟨x,y,u,v,y⟩.
func TestRSPQPaperExample(t *testing.T) {
	a := bind(t, "(follows/mentions)+", "follows", "mentions")
	sink := NewCollector()
	e := NewRSPQ(a, window.Spec{Size: 15, Slide: 1}, WithSink(sink))
	for _, tu := range paperStream() {
		if tu.TS > 18 {
			break
		}
		e.Process(tu)
	}
	// x=0 y=1 z=2 u=3 v=4 w=5.
	// Simple-path results at t=18: (x,w) via x,z,w; (x,u) via x,y,u or
	// x,z,u; (u,y) via u,v,y; (x,y) via x,z,u,v,y (the conflict case).
	want := map[Pair]struct{}{
		{From: 0, To: 5}: {},
		{From: 0, To: 3}: {},
		{From: 3, To: 1}: {},
		{From: 0, To: 1}: {},
	}
	got := sink.Pairs()
	for p := range want {
		if _, ok := got[p]; !ok {
			t.Errorf("missing pair %v, got %v", p, pairNames(got))
		}
	}
	for p := range got {
		if _, ok := want[p]; !ok {
			t.Errorf("unexpected pair %v", p)
		}
	}
	if st := e.Stats(); st.ConflictsFound == 0 {
		t.Error("expected at least one conflict at vertex v")
	}
}

// TestRSPQConflictUnmark builds the minimal conflict scenario by hand:
// query (a/b)+ with edges forming both a non-simple early path and a
// simple late path to the same (vertex,state).
func TestRSPQConflictUnmark(t *testing.T) {
	a := bind(t, "(a/b)+", "a", "b")
	sink := NewCollector()
	e := NewRSPQ(a, window.Spec{Size: 100, Slide: 1}, WithSink(sink))
	// x -a-> y -b-> u -a-> v -b-> y : the traversal x,y,u,v,y is not
	// simple. The alternative x -a-> z -b-> u exists, so x,z,u,v,y is a
	// simple witness for (x,y).
	const x, y, z, u, v = 0, 1, 2, 3, 4
	for i, ed := range []struct {
		s, d stream.VertexID
		l    stream.LabelID
	}{
		{x, y, 0}, {y, u, 1}, {u, v, 0}, {x, z, 0}, {z, u, 1}, {v, y, 1},
	} {
		e.Process(stream.Tuple{TS: int64(i + 1), Src: ed.s, Dst: ed.d, Label: ed.l})
	}
	if _, ok := sink.Pairs()[Pair{From: x, To: y}]; !ok {
		t.Errorf("(x,y) not found; pairs = %v", sink.Pairs())
	}
}

// rspqReplayOracle replays a stream against the brute-force simple-path
// oracle: the engine's cumulative output must equal the union of
// per-snapshot simple-path results.
func rspqReplayOracle(t *testing.T, a *automaton.Bound, spec window.Spec, tuples []stream.Tuple, checkLive bool) {
	t.Helper()
	sink := NewCollector()
	e := NewRSPQ(a, spec, WithSink(sink))
	oracle := graph.New()
	want := map[Pair]struct{}{}
	for i, tu := range tuples {
		e.Process(tu)
		if tu.Op == stream.Delete {
			oracle.Delete(tu.Key())
		} else if a.Relevant(int(tu.Label)) {
			oracle.Insert(tu.Src, tu.Dst, tu.Label, tu.TS)
		}
		oracle.Expire(tu.TS-spec.Size, nil)

		snap := BatchSimple(oracle, a, tu.TS-spec.Size)
		for p := range snap {
			want[p] = struct{}{}
		}
		got := sink.Pairs()
		for p := range snap {
			if _, ok := got[p]; !ok {
				t.Fatalf("tuple %d (%v): oracle pair %v not reported", i, tu, p)
			}
		}
		for p := range got {
			if _, ok := want[p]; !ok {
				t.Fatalf("tuple %d (%v): engine reported %v, never a simple-path result", i, tu, p)
			}
		}
		if checkLive {
			// Live check: every snapshot result must have a live final
			// instance in the Δ index (soundness of the index in the
			// other direction does not hold for RSPQ: nodes reached
			// over non-simple traversals with containment are kept).
			for p := range snap {
				tx := e.trees[p.From]
				if tx == nil {
					t.Fatalf("tuple %d: no tree for snapshot pair %v", i, p)
				}
				if !e.hasFinalInstance(tx, p.To) {
					t.Fatalf("tuple %d: snapshot pair %v has no live final instance", i, p)
				}
			}
		}
	}
}

var rspqQueries = []struct {
	name   string
	expr   string
	labels []string
}{
	{"Q1-star", "a*", []string{"a", "b"}},
	{"Q4-altstar", "(a|b)*", []string{"a", "b"}},
	{"Q9-altplus", "(a|b)+", []string{"a", "b"}},
	{"Q11-concat", "a/b", []string{"a", "b"}},
	{"Q2", "a/b*", []string{"a", "b"}},
	{"Q5", "a/b*/a", []string{"a", "b"}},
	{"example", "(a/b)+", []string{"a", "b"}},
	{"Q8", "a?/b*", []string{"a", "b"}},
}

// TestRSPQMatchesSimpleOracle is the main correctness property for the
// simple-path engine on random append-only streams, covering both
// conflict-free and conflict-prone query shapes.
func TestRSPQMatchesSimpleOracle(t *testing.T) {
	for _, q := range rspqQueries {
		q := q
		t.Run(q.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(2020))
			a := bind(t, q.expr, q.labels...)
			for trial := 0; trial < 8; trial++ {
				tuples := randomTuples(rng, 90, 7, len(q.labels), 3, 0)
				rspqReplayOracle(t, a, window.Spec{Size: 18, Slide: 1}, tuples, true)
			}
		})
	}
}

// TestRSPQWithDeletionsMatchesOracle adds explicit deletions.
func TestRSPQWithDeletionsMatchesOracle(t *testing.T) {
	for _, q := range rspqQueries {
		q := q
		t.Run(q.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(555))
			a := bind(t, q.expr, q.labels...)
			for trial := 0; trial < 8; trial++ {
				tuples := randomTuples(rng, 90, 7, len(q.labels), 3, 0.15)
				rspqReplayOracle(t, a, window.Spec{Size: 18, Slide: 1}, tuples, true)
			}
		})
	}
}

// TestRSPQLazyExpiry exercises slide intervals larger than a time unit
// — the regime where lazy expiration batches work at slide boundaries
// and reconnection order matters most. The seed's map-iteration-order
// bug made ~9-15% of runs miss an oracle pair here; with canonical
// reconnection the test is deterministic and runs blocking in CI with
// -count=200.
func TestRSPQLazyExpiry(t *testing.T) {
	const seed = 8989
	rng := rand.New(rand.NewSource(seed))
	a := bind(t, "(a/b)+", "a", "b")
	spec := window.Spec{Size: 18, Slide: 4}
	for trial := 0; trial < 6; trial++ {
		tuples := randomTuples(rng, 120, 7, 2, 2, 0)
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			rspqReplayOracle(t, a, spec, tuples, false)
		})
	}
}

// TestRSPQSelfLoopNotSimple: a self loop never yields a simple-path
// result, even for queries accepting single letters.
func TestRSPQSelfLoopNotSimple(t *testing.T) {
	for _, expr := range []string{"a*", "a", "a+", "a*|b"} {
		sink := NewCollector()
		a := bind(t, expr, "a", "b")
		e := NewRSPQ(a, window.Spec{Size: 10, Slide: 1}, WithSink(sink))
		e.Process(stream.Tuple{TS: 1, Src: 3, Dst: 3, Label: 0})
		if len(sink.Pairs()) != 0 {
			t.Errorf("%q: self loop produced pairs %v", expr, sink.Pairs())
		}
	}
}

// TestRSPQCycleBackToRoot: a cycle x->y->x must not report (x,x) under
// simple path semantics, including for queries with the containment
// property.
func TestRSPQCycleBackToRoot(t *testing.T) {
	for _, expr := range []string{"a*", "(a|b)*", "a*|b", "a/a"} {
		sink := NewCollector()
		a := bind(t, expr, "a", "b")
		e := NewRSPQ(a, window.Spec{Size: 10, Slide: 1}, WithSink(sink))
		e.Process(stream.Tuple{TS: 1, Src: 1, Dst: 2, Label: 0})
		e.Process(stream.Tuple{TS: 2, Src: 2, Dst: 1, Label: 0})
		if _, ok := sink.Pairs()[Pair{From: 1, To: 1}]; ok {
			t.Errorf("%q: cycle reported (x,x) under simple path semantics", expr)
		}
	}
}

// TestRSPQMarkingsGrowth: in the absence of conflicts each
// (vertex,state) pair has at most one instance per tree, matching the
// RAPQ node bound.
func TestRSPQMarkingsGrowth(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := bind(t, "(a|b)*", "a", "b") // containment property holds: conflict-free
	e := NewRSPQ(a, window.Spec{Size: 50, Slide: 1})
	for i := 0; i < 400; i++ {
		e.Process(stream.Tuple{
			TS:    int64(i),
			Src:   stream.VertexID(rng.Intn(10)),
			Dst:   stream.VertexID(rng.Intn(10)),
			Label: stream.LabelID(rng.Intn(2)),
		})
	}
	if got := e.Stats().ConflictsFound; got != 0 {
		t.Fatalf("conflict-free query reported %d conflicts", got)
	}
	for root, tx := range e.trees {
		for key, insts := range tx.inst {
			if len(insts) > 1 {
				t.Errorf("tree %d: node (%d,%d) has %d instances in a conflict-free run",
					root, key.vertex(), key.state(), len(insts))
			}
		}
	}
}

// TestRSPQMaxExtendsBudget: the safety valve stops cascades without
// crashing; the engine remains usable afterwards.
func TestRSPQMaxExtendsBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := bind(t, "(a/b)+", "a", "b")
	e := NewRSPQ(a, window.Spec{Size: 1000, Slide: 1}, WithMaxExtends(5))
	for i := 0; i < 500; i++ {
		e.Process(stream.Tuple{
			TS:    int64(i),
			Src:   stream.VertexID(rng.Intn(12)),
			Dst:   stream.VertexID(rng.Intn(12)),
			Label: stream.LabelID(rng.Intn(2)),
		})
	}
	// No assertion beyond termination and internal consistency.
	st := e.Stats()
	if st.TuplesSeen != 500 {
		t.Fatalf("TuplesSeen = %d", st.TuplesSeen)
	}
}

// TestRSPQOverheadCounters: RSPQ does strictly more bookkeeping than
// RAPQ on the same input; its Extend count must be at least RAPQ's
// Insert count on conflict-free inputs (§5.5 measures this overhead).
func TestRSPQStatsProbes(t *testing.T) {
	a := bind(t, "(follows/mentions)+", "follows", "mentions")
	rs := NewRSPQ(a, window.Spec{Size: 15, Slide: 1})
	ra := NewRAPQ(a, window.Spec{Size: 15, Slide: 1})
	for _, tu := range paperStream() {
		rs.Process(tu)
		ra.Process(tu)
	}
	if rs.Stats().TuplesSeen != ra.Stats().TuplesSeen {
		t.Fatal("engines saw different tuple counts")
	}
	if rs.Stats().InsertCalls == 0 {
		t.Fatal("RSPQ recorded no Extend calls")
	}
}
