package core

import (
	"math/rand"
	"sync"
	"testing"

	"streamrpq/internal/graph"
	"streamrpq/internal/stream"
	"streamrpq/internal/window"
)

// lockedCollector is a CollectorSink safe for concurrent emission.
type lockedCollector struct {
	mu sync.Mutex
	c  *CollectorSink
}

func (l *lockedCollector) OnMatch(m Match) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.c.OnMatch(m)
}

func (l *lockedCollector) OnInvalidate(m Match) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.c.OnInvalidate(m)
}

// TestParallelMatchesSequential: the tree-parallel engine must produce
// exactly the same cumulative result set as the sequential engine.
func TestParallelMatchesSequential(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		for _, q := range []struct {
			expr   string
			labels []string
		}{
			{"(a/b)+", []string{"a", "b", "c"}},
			{"a*", []string{"a", "b", "c"}},
			{"a/b*/c", []string{"a", "b", "c"}},
		} {
			rng := rand.New(rand.NewSource(404))
			a := bind(t, q.expr, q.labels...)
			spec := window.Spec{Size: 30, Slide: 3}

			seq := NewCollector()
			par := &lockedCollector{c: NewCollector()}
			se := NewRAPQ(a, spec, WithSink(seq))
			pe := NewParallelRAPQ(a, spec, workers, WithSink(par))

			tuples := randomTuples(rng, 800, 12, 3, 2, 0.1)
			for _, tu := range tuples {
				se.Process(tu)
				pe.Process(tu)
			}
			sp, pp := seq.Pairs(), par.c.Pairs()
			if len(sp) != len(pp) {
				t.Fatalf("workers=%d %q: sequential %d pairs, parallel %d",
					workers, q.expr, len(sp), len(pp))
			}
			for p := range sp {
				if _, ok := pp[p]; !ok {
					t.Fatalf("workers=%d %q: pair %v missing from parallel run", workers, q.expr, p)
				}
			}
			if err := pe.CheckInvariants(); err != nil {
				t.Fatalf("workers=%d %q: %v", workers, q.expr, err)
			}
		}
	}
}

// TestParallelOracle validates the parallel engine against the batch
// oracle directly (soundness + completeness of the cumulative stream).
func TestParallelOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(808))
	a := bind(t, "(a/b)+", "a", "b")
	spec := window.Spec{Size: 20, Slide: 1}
	sink := &lockedCollector{c: NewCollector()}
	pe := NewParallelRAPQ(a, spec, 4, WithSink(sink))

	oracle := graph.New()
	want := map[Pair]struct{}{}
	tuples := randomTuples(rng, 300, 8, 2, 2, 0)
	for i, tu := range tuples {
		pe.Process(tu)
		oracle.Insert(tu.Src, tu.Dst, tu.Label, tu.TS)
		oracle.Expire(tu.TS-spec.Size, nil)
		snap := BatchArbitrary(oracle, a, tu.TS-spec.Size)
		for p := range snap {
			want[p] = struct{}{}
		}
		got := sink.c.Pairs()
		for p := range snap {
			if _, ok := got[p]; !ok {
				t.Fatalf("tuple %d: oracle pair %v missing", i, p)
			}
		}
		for p := range got {
			if _, ok := want[p]; !ok {
				t.Fatalf("tuple %d: spurious pair %v", i, p)
			}
		}
	}
}

func TestParallelWorkerDefault(t *testing.T) {
	a := bind(t, "a", "a")
	pe := NewParallelRAPQ(a, window.Spec{Size: 10, Slide: 1}, 0)
	if pe.workers <= 0 {
		t.Fatalf("workers = %d", pe.workers)
	}
	pe.Process(stream.Tuple{TS: 1, Src: 1, Dst: 2, Label: 0})
	if pe.Stats().Results != 1 {
		t.Fatalf("Results = %d", pe.Stats().Results)
	}
}
