package core

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"streamrpq/internal/graph"
	"streamrpq/internal/stream"
	"streamrpq/internal/window"
)

// TestRAPQSnapshotRestoreMidStream: snapshot a RAPQ engine mid-stream,
// restore into a fresh engine, and run both to end-of-stream — the
// restored engine must produce the identical result suffix up to
// canonical per-timestamp order (node timestamps are a pure function of
// the stream since PR 1; raw sequential emission order within one
// timestamp is map-iteration dependent, which is why the facade's
// sharded merge sorts) and pass the structural invariants.
func TestRAPQSnapshotRestoreMidStream(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, q := range []struct{ expr string }{{"a/b*"}, {"(a/b)+"}, {"a*"}} {
		a := bind(t, q.expr, "a", "b")
		for trial := 0; trial < 5; trial++ {
			tuples := randomTuples(rng, 160, 9, 2, 2, 0)
			cut := len(tuples) / 2
			spec := window.Spec{Size: 20, Slide: 3}

			full := NewCollector()
			ref := NewRAPQ(a, spec, WithSink(full))
			for _, tu := range tuples[:cut] {
				ref.Process(tu)
			}
			suffixStart := len(full.Matched)

			snap := ref.SnapshotState()
			edges := SnapshotEdges(ref.Graph())

			got := NewCollector()
			restored := NewRAPQ(a, spec, WithSink(got))
			if err := RestoreEdges(restored.Graph(), edges); err != nil {
				t.Fatal(err)
			}
			if err := restored.RestoreState(snap); err != nil {
				t.Fatal(err)
			}
			if err := restored.CheckInvariants(); err != nil {
				t.Fatalf("trial %d: restored engine invariants: %v", trial, err)
			}

			for _, tu := range tuples[cut:] {
				ref.Process(tu)
				restored.Process(tu)
			}
			want := full.Matched[suffixStart:]
			if !reflect.DeepEqual(norm(want), norm(got.Matched)) {
				t.Fatalf("%s trial %d: restored suffix diverged:\nwant %v\ngot  %v",
					q.expr, trial, want, got.Matched)
			}
			if err := restored.CheckInvariants(); err != nil {
				t.Fatalf("trial %d: invariants after resume: %v", trial, err)
			}
			rs, gs := ref.Stats(), restored.Stats()
			if rs.Trees != gs.Trees || rs.Nodes != gs.Nodes || rs.Results != gs.Results {
				t.Fatalf("trial %d: stats diverged: ref %+v restored %+v", trial, rs, gs)
			}
		}
	}
}

// norm canonicalizes a match sequence for comparison: matches are
// sorted by (TS, From, To). Timestamps are non-decreasing in emission
// order, so this only reorders within tie groups — exactly the order
// freedom the sequential engines have (and the sharded merge removes).
func norm(ms []Match) []Match {
	if len(ms) == 0 {
		return nil
	}
	out := append([]Match(nil), ms...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].TS != out[j].TS {
			return out[i].TS < out[j].TS
		}
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// TestRAPQSnapshotDeterministic: two snapshots of the same engine state
// are deeply equal (trees and nodes are emitted in sorted order), which
// the checkpoint format relies on for reproducible files.
func TestRAPQSnapshotDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := bind(t, "(a|b)+", "a", "b")
	e := NewRAPQ(a, window.Spec{Size: 30, Slide: 2})
	for _, tu := range randomTuples(rng, 200, 8, 2, 1, 0) {
		e.Process(tu)
	}
	if !reflect.DeepEqual(e.SnapshotState(), e.SnapshotState()) {
		t.Fatal("two snapshots of one state differ")
	}
}

// TestRAPQRestoreValidation: restore rejects non-fresh engines and
// corrupt tree structures instead of building a broken index.
func TestRAPQRestoreValidation(t *testing.T) {
	a := bind(t, "a+", "a")
	spec := window.Spec{Size: 10, Slide: 1}
	e := NewRAPQ(a, spec)
	e.Process(stream.Tuple{TS: 1, Src: 0, Dst: 1, Label: 0})
	snap := e.SnapshotState()

	if err := e.RestoreState(snap); err == nil {
		t.Fatal("restore onto a used engine accepted")
	}

	bad := *snap
	bad.Trees = append([]TreeState(nil), snap.Trees...)
	bad.Trees[0].Nodes = append([]TreeNodeState(nil), bad.Trees[0].Nodes...)
	bad.Trees[0].Nodes[0].ParentV = 99 // dangling parent
	if err := NewRAPQ(a, spec).RestoreState(&bad); err == nil {
		t.Fatal("restore with dangling parent accepted")
	}
}

// TestRSPQSnapshotRestoreMidStream: the simple-path engine's instance
// lists and markings survive a snapshot/restore cycle: the restored
// engine must keep matching the brute-force simple-path oracle on the
// stream suffix, and its structural invariants must hold. (The exact
// result multiset is not compared: RSPQ traversal order is
// map-iteration dependent even sequentially — see the ROADMAP lazy
// expiry item — so the oracle is the correctness bar, as in the other
// RSPQ tests.)
func TestRSPQSnapshotRestoreMidStream(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, expr := range []string{"(a/b)+", "a/b*", "(a|b)*"} {
		a := bind(t, expr, "a", "b")
		for trial := 0; trial < 5; trial++ {
			tuples := randomTuples(rng, 120, 7, 2, 2, 0)
			cut := len(tuples) / 2
			spec := window.Spec{Size: 18, Slide: 1}

			ref := NewRSPQ(a, spec, WithSink(NewCollector()))
			for _, tu := range tuples[:cut] {
				ref.Process(tu)
			}
			snap := ref.SnapshotState()
			edges := SnapshotEdges(ref.Graph())

			sink := NewCollector()
			restored := NewRSPQ(a, spec, WithSink(sink))
			if err := RestoreEdges(restored.Graph(), edges); err != nil {
				t.Fatal(err)
			}
			if err := restored.RestoreState(snap); err != nil {
				t.Fatal(err)
			}
			if err := restored.CheckInvariants(); err != nil {
				t.Fatalf("%s trial %d: restored invariants: %v", expr, trial, err)
			}

			// The restored engine must agree with the oracle on every
			// suffix snapshot (cumulatively: pairs discovered before the
			// cut are known to the pre-crash process, not to sink).
			oracle := graph.New()
			for _, ed := range edges {
				oracle.Insert(ed.Src, ed.Dst, ed.Label, ed.TS)
			}
			for _, tu := range tuples[cut:] {
				restored.Process(tu)
				if a.Relevant(int(tu.Label)) && tu.Op == stream.Insert {
					oracle.Insert(tu.Src, tu.Dst, tu.Label, tu.TS)
				}
				oracle.Expire(tu.TS-spec.Size, nil)
				for p := range BatchSimple(oracle, a, tu.TS-spec.Size) {
					tx := restored.trees[p.From]
					if tx == nil || !restored.hasFinalInstance(tx, p.To) {
						t.Fatalf("%s trial %d: oracle pair %v missing from restored index after resume",
							expr, trial, p)
					}
				}
			}
			if err := restored.CheckInvariants(); err != nil {
				t.Fatalf("%s trial %d: invariants after resume: %v", expr, trial, err)
			}
		}
	}
}

// TestRSPQSnapshotRoundTripExact: snapshot → restore → snapshot is a
// fixpoint (instance lists, their order, markings and clocks all
// survive), the property the persistence format needs.
func TestRSPQSnapshotRoundTripExact(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	a := bind(t, "(a/b)+", "a", "b")
	spec := window.Spec{Size: 25, Slide: 2}
	e := NewRSPQ(a, spec)
	for _, tu := range randomTuples(rng, 150, 7, 2, 2, 0.1) {
		e.Process(tu)
	}
	snap := e.SnapshotState()
	restored := NewRSPQ(a, spec)
	if err := RestoreEdges(restored.Graph(), SnapshotEdges(e.Graph())); err != nil {
		t.Fatal(err)
	}
	if err := restored.RestoreState(snap); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, restored.SnapshotState()) {
		t.Fatal("snapshot → restore → snapshot is not a fixpoint")
	}
}

// TestMultiSnapshotRestore: the multi-query coordinator round-trips
// through MultiState, including the shared graph and each member's
// index, and the restored coordinator produces the identical result
// suffix.
func TestMultiSnapshotRestore(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	spec := window.Spec{Size: 20, Slide: 2}
	exprs := []string{"a/b*", "(a|b)+", "b/a"}

	build := func(sinks []*CollectorSink) *Multi {
		m, err := NewMulti(spec)
		if err != nil {
			t.Fatal(err)
		}
		for i, expr := range exprs {
			if _, err := m.Add(bind(t, expr, "a", "b"), WithSink(sinks[i])); err != nil {
				t.Fatal(err)
			}
		}
		return m
	}

	tuples := randomTuples(rng, 200, 9, 2, 2, 0)
	cut := len(tuples) * 2 / 3

	refSinks := []*CollectorSink{NewCollector(), NewCollector(), NewCollector()}
	ref := build(refSinks)
	for _, tu := range tuples[:cut] {
		ref.Process(tu)
	}
	marks := make([]int, len(refSinks))
	for i, s := range refSinks {
		marks[i] = len(s.Matched)
	}

	snap := ref.SnapshotState()

	gotSinks := []*CollectorSink{NewCollector(), NewCollector(), NewCollector()}
	restored := build(gotSinks)
	if err := restored.RestoreState(snap); err != nil {
		t.Fatal(err)
	}
	for _, tu := range tuples[cut:] {
		ref.Process(tu)
		restored.Process(tu)
	}
	for i := range refSinks {
		want := refSinks[i].Matched[marks[i]:]
		if !reflect.DeepEqual(norm(want), norm(gotSinks[i].Matched)) {
			t.Fatalf("member %d: restored suffix diverged:\nwant %v\ngot  %v",
				i, want, gotSinks[i].Matched)
		}
	}
}
