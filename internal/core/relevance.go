package core

import (
	"sort"

	"streamrpq/internal/automaton"
)

// RelevanceIndex precomputes, per label id, which member groups have at
// least one automaton transition on that label — the registration-time
// inversion of Bound.Relevant. On the hot path a tuple dispatches only
// to the groups in its label's list instead of probing every member,
// and the list is pre-ordered by pattern-visible selectivity (fewest
// relevant labels first, registration order as the tie-break), so the
// most selective automata run first. Lookup is a slice index: zero
// allocations, zero branches beyond the bounds check.
//
// The index is immutable after Build; coordinators rebuild it on
// membership changes (registration, removal, restore), which happen
// between tuples/batches.
type RelevanceIndex struct {
	byLabel [][]int32 // label id -> group positions, selectivity-ordered
	total   int       // number of groups indexed
}

// BuildRelevanceIndex builds the index over the groups' bound automata.
// tiebreak[i] orders groups with equal selectivity (ascending); pass
// each group's first subscriber registration index to keep dispatch
// order deterministic across runs and restores.
func BuildRelevanceIndex(bounds []*automaton.Bound, tiebreak []int) RelevanceIndex {
	width := 0
	for _, b := range bounds {
		if len(b.ByLabel) > width {
			width = len(b.ByLabel)
		}
	}
	order := make([]int, len(bounds))
	counts := make([]int, len(bounds))
	for i, b := range bounds {
		order[i] = i
		counts[i] = b.RelevantLabelCount()
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if counts[a] != counts[b] {
			return counts[a] < counts[b]
		}
		return tiebreak[a] < tiebreak[b]
	})
	byLabel := make([][]int32, width)
	for _, p := range order {
		b := bounds[p]
		for l := range b.ByLabel {
			if len(b.ByLabel[l]) > 0 {
				byLabel[l] = append(byLabel[l], int32(p))
			}
		}
	}
	return RelevanceIndex{byLabel: byLabel, total: len(bounds)}
}

// Groups returns the positions of the groups that can step on the
// label, most selective first. The returned slice is shared — callers
// must not mutate it. Labels outside the indexed space return nil.
func (ri *RelevanceIndex) Groups(label int) []int32 {
	if label < 0 || label >= len(ri.byLabel) {
		return nil
	}
	return ri.byLabel[label]
}

// Len returns the number of groups the index covers.
func (ri *RelevanceIndex) Len() int { return ri.total }
