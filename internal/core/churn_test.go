// Delete/re-insert churn property test: randomized update streams with
// heavy explicit-deletion churn, differentially checked against the
// sequential core.Multi oracle, with a snapshot/restore round-trip
// taken mid-churn. Lives in package core_test (like the cross-engine
// differentials) because it drives the internal/shard coordinator.
package core_test

import (
	"math/rand"
	"reflect"
	"testing"

	"streamrpq/internal/core"
	"streamrpq/internal/shard"
	"streamrpq/internal/window"
)

// TestChurnDifferential is the property test of canonical deletions:
// on seeded random streams whose tuples re-delete earlier edges with
// probability delRatio, the sharded engine must reproduce the
// sequential Multi oracle's full result stream — matches AND
// invalidations, with timestamps, canonically ordered per timestamp
// tie-group — across shard counts and pipeline depths, and survive a
// SnapshotState/RestoreState round-trip taken mid-churn (the restore
// path cross-checks the persisted support counts against the
// materialized trees, and CheckInvariants recomputes them from
// scratch).
func TestChurnDifferential(t *testing.T) {
	exprs := []string{"(a/b)+", "a/b*", "(a|b)+"}
	cases := []struct {
		name     string
		seed     int64
		n        int
		vertices int
		spec     window.Spec
		delRatio float64
		shards   int
		depth    int
		batch    int
	}{
		{"light-churn", 1111, 500, 9, window.Spec{Size: 25, Slide: 4}, 0.10, 2, 2, 40},
		{"heavy-churn", 2222, 600, 7, window.Spec{Size: 20, Slide: 5}, 0.35, 4, 2, 32},
		{"singleton-batches", 3333, 300, 8, window.Spec{Size: 15, Slide: 1}, 0.20, 1, 1, 1},
		{"deep-pipeline", 4444, 600, 10, window.Spec{Size: 30, Slide: 6}, 0.25, 8, 4, 64},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			tuples := randomTuplesX(rand.New(rand.NewSource(tc.seed)), tc.n, tc.vertices, 2, 2, tc.delRatio)
			tupleTS := func(i int) int64 { return tuples[i].TS }

			// Sequential Multi oracle, results tagged per (tuple, query).
			var want []shard.Result
			tupleIdx := 0
			multi, err := core.NewMulti(tc.spec)
			if err != nil {
				t.Fatal(err)
			}
			for qi, expr := range exprs {
				sink := tagSink{tuple: &tupleIdx, qi: qi, out: &want}
				if _, err := multi.Add(bindX(t, expr, "a", "b"), core.WithSink(sink)); err != nil {
					t.Fatal(err)
				}
			}
			for i, tu := range tuples {
				tupleIdx = i
				multi.Process(tu)
			}
			wantCanon := canonicalize(want, tupleTS)
			invals := 0
			for _, r := range wantCanon {
				if r.Invalidated {
					invals++
				}
			}
			if invals == 0 {
				t.Fatal("churn produced no invalidations; test is vacuous")
			}

			// Sharded run, interrupted mid-churn by a snapshot/restore
			// round-trip into a fresh engine.
			newEngine := func() (*shard.Engine, []*core.RAPQ) {
				s, err := shard.New(tc.spec, shard.WithShards(tc.shards), shard.WithPipelineDepth(tc.depth))
				if err != nil {
					t.Fatal(err)
				}
				var members []*core.RAPQ
				for _, expr := range exprs {
					m, err := s.Add(bindX(t, expr, "a", "b"), nil)
					if err != nil {
						t.Fatal(err)
					}
					members = append(members, m)
				}
				return s, members
			}
			var have []shard.Result
			run := func(s *shard.Engine, from, to int) {
				for i := from; i < to; i += tc.batch {
					rs, err := s.ProcessBatch(tuples[i:min(i+tc.batch, to)])
					if err != nil {
						t.Fatal(err)
					}
					for _, r := range rs {
						r.Tuple += i
						have = append(have, r)
					}
				}
			}
			mid := (tc.n / 2 / tc.batch) * tc.batch // batch boundary near the middle
			s1, _ := newEngine()
			run(s1, 0, mid)
			st := s1.SnapshotState()
			s1.Close()

			s2, members := newEngine()
			if err := s2.RestoreState(st); err != nil {
				t.Fatalf("mid-churn restore: %v", err)
			}
			for qi, m := range members {
				if err := m.CheckInvariants(); err != nil {
					t.Fatalf("restored member %d (%s): %v", qi, exprs[qi], err)
				}
			}
			run(s2, mid, len(tuples))
			for qi, m := range members {
				if err := m.CheckInvariants(); err != nil {
					t.Fatalf("final member %d (%s): %v", qi, exprs[qi], err)
				}
			}
			s2.Close()

			haveCanon := canonicalize(have, tupleTS)
			if !reflect.DeepEqual(wantCanon, haveCanon) {
				n := min(len(wantCanon), len(haveCanon))
				diverge := n
				for i := 0; i < n; i++ {
					if wantCanon[i] != haveCanon[i] {
						diverge = i
						break
					}
				}
				for i := max(0, diverge-3); i < min(n, diverge+5); i++ {
					t.Logf("[%d] want %+v  have %+v", i, wantCanon[i], haveCanon[i])
				}
				t.Fatalf("%s: sharded churn stream diverges from sequential Multi oracle (%d vs %d results, %d invalidations expected, first divergence at %d)",
					tc.name, len(wantCanon), len(haveCanon), invals, diverge)
			}
		})
	}
}
