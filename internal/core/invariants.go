package core

import (
	"fmt"

	"streamrpq/internal/stream"
)

// CheckInvariants validates the structural invariants of the RAPQ Δ
// index (Lemma 1 plus implementation-level bookkeeping). It is meant
// for tests and debugging; it walks every tree and is O(|Δ|).
//
// Checked properties:
//  1. Tree shape: every non-root node's parent exists in the same tree
//     and lists the node as a child; the root is its own parent.
//  2. Timestamp monotonicity: a child's timestamp never exceeds its
//     parent's (path timestamps are minima over tree paths).
//  3. Edge support: every tree edge whose child is still inside the
//     window corresponds to a graph edge with a matching automaton
//     transition such that the child's timestamp is min(parent.ts,
//     edge.ts). Out-of-window nodes are exempt: under lazy expiration
//     they linger until the next slide boundary and their support may
//     have been refreshed past them in the meantime.
//  4. Index consistency: per-tree vertex counts and the global
//     inverted index agree with tree contents.
//  5. Support counts: per-tree result-support counters equal the number
//     of final-state nodes per vertex (root excluded), stale or not.
func (e *RAPQ) CheckInvariants() error {
	validFrom := e.win.Spec().ValidFrom(e.now)
	invSeen := map[stream.VertexID]map[stream.VertexID]bool{}
	for root, tx := range e.trees {
		if tx.root != root {
			return fmt.Errorf("tree keyed %d has root %d", root, tx.root)
		}
		ns := &tx.ns
		rootKey := mkNodeKey(root, e.a.Start)
		rootSlot := ns.lookup(rootKey)
		if rootSlot < 0 {
			return fmt.Errorf("tree %d: root node missing", root)
		}
		if ns.parent[rootSlot] != rootSlot {
			return fmt.Errorf("tree %d: root parent not self", root)
		}
		if ns.ts[rootSlot] != rootTS {
			return fmt.Errorf("tree %d: root ts = %d", root, ns.ts[rootSlot])
		}
		liveSlots := 0
		vcount := map[stream.VertexID]int32{}
		for slot := int32(0); slot < int32(len(ns.keys)); slot++ {
			if !ns.live(slot) {
				continue
			}
			liveSlots++
			key := ns.keys[slot]
			nv, nstate := key.vertex(), key.state()
			if ns.lookup(key) != slot {
				return fmt.Errorf("tree %d: slot %d not indexed under its key (%d,%d)", root, slot, nv, nstate)
			}
			vcount[nv]++
			if m := invSeen[nv]; m == nil {
				invSeen[nv] = map[stream.VertexID]bool{root: true}
			} else {
				m[root] = true
			}
			if slot == rootSlot {
				continue
			}
			pslot := ns.parent[slot]
			if pslot < 0 || pslot >= int32(len(ns.keys)) || !ns.live(pslot) {
				return fmt.Errorf("tree %d: node (%d,%d) has dangling parent slot %d", root, nv, nstate, pslot)
			}
			pk := ns.keys[pslot]
			listed := false
			for c := ns.firstChild[pslot]; c >= 0; c = ns.nextSib[c] {
				if c == slot {
					listed = true
					break
				}
			}
			if !listed {
				return fmt.Errorf("tree %d: parent (%d,%d) does not list child (%d,%d)",
					root, pk.vertex(), pk.state(), nv, nstate)
			}
			if ns.ts[slot] > ns.ts[pslot] {
				return fmt.Errorf("tree %d: child (%d,%d).ts=%d exceeds parent (%d,%d).ts=%d",
					root, nv, nstate, ns.ts[slot], pk.vertex(), pk.state(), ns.ts[pslot])
			}
			// Edge support: some graph edge parent.v -> node.v with a
			// transition parent.s -> node.s and min(parent.ts, edge.ts)
			// == node.ts. Only meaningful for in-window nodes.
			if ns.ts[slot] > validFrom {
				supported := false
				nodeTS, parentTS := ns.ts[slot], ns.ts[pslot]
				for _, he := range e.g.AppendOutAt(e.g.Epoch(), pk.vertex(), nil) {
					if he.V != nv {
						continue
					}
					if e.a.Trans[pk.state()][he.L] != nstate {
						continue
					}
					if min(parentTS, he.TS) == nodeTS {
						supported = true
						break
					}
				}
				if !supported {
					return fmt.Errorf("tree %d: tree edge (%d,%d)->(%d,%d) ts=%d has no supporting graph edge",
						root, pk.vertex(), pk.state(), nv, nstate, ns.ts[slot])
				}
			}
			// Children must be live and point back.
			for c := ns.firstChild[slot]; c >= 0; c = ns.nextSib[c] {
				if !ns.live(c) {
					return fmt.Errorf("tree %d: node (%d,%d) lists dead child slot %d", root, nv, nstate, c)
				}
				if ns.parent[c] != slot {
					return fmt.Errorf("tree %d: node (%d,%d) lists child (%d,%d) with a different parent",
						root, nv, nstate, ns.keys[c].vertex(), ns.keys[c].state())
				}
			}
		}
		if liveSlots != ns.size() {
			return fmt.Errorf("tree %d: %d live slots but index has %d keys", root, liveSlots, ns.size())
		}
		for v, n := range vcount {
			if tx.vcount[v] != n {
				return fmt.Errorf("tree %d: vcount[%d]=%d, actual %d", root, v, tx.vcount[v], n)
			}
		}
		for v, n := range tx.vcount {
			if vcount[v] != n {
				return fmt.Errorf("tree %d: vcount has stale vertex %d", root, v)
			}
		}
		support := map[stream.VertexID]int32{}
		for slot := int32(0); slot < int32(len(ns.keys)); slot++ {
			if !ns.live(slot) {
				continue
			}
			key := ns.keys[slot]
			if e.a.Final[key.state()] && !(key.vertex() == root && key.state() == e.a.Start) {
				support[key.vertex()]++
			}
		}
		if err := checkSupportMaps(root, tx.support, support); err != nil {
			return err
		}
	}
	// Global inverted index must match union of trees.
	for v, roots := range invSeen {
		for root := range roots {
			if !e.inv.has(v, root) {
				return fmt.Errorf("inv[%d] missing root %d", v, root)
			}
		}
	}
	var staleErr error
	e.inv.forEach(func(v, root stream.VertexID) bool {
		if !invSeen[v][root] {
			staleErr = fmt.Errorf("inv[%d] has stale root %d", v, root)
			return false
		}
		return true
	})
	return staleErr
}

// checkSupportMaps compares an engine's maintained result-support
// counters against a freshly recomputed census for one tree.
func checkSupportMaps(root stream.VertexID, got, want map[stream.VertexID]int32) error {
	for v, n := range want {
		if got[v] != n {
			return fmt.Errorf("tree %d: support[%d]=%d, actual %d", root, v, got[v], n)
		}
	}
	for v := range got {
		if want[v] == 0 {
			return fmt.Errorf("tree %d: support has stale vertex %d", root, v)
		}
	}
	return nil
}

// CheckInvariants validates the RSPQ tree structures: instance lists,
// parent/child links, timestamp monotonicity, marking consistency
// (marked keys have at least one live instance), index bookkeeping,
// and the result-support counters (final-state instances per vertex,
// root instance excluded).
func (e *RSPQ) CheckInvariants() error {
	invSeen := map[stream.VertexID]map[stream.VertexID]bool{}
	for root, tx := range e.trees {
		if tx.rootV != root {
			return fmt.Errorf("tree keyed %d has root %d", root, tx.rootV)
		}
		if tx.root == nil || tx.root.dead {
			return fmt.Errorf("tree %d: root missing or dead", root)
		}
		size := 0
		vcount := map[stream.VertexID]int32{}
		for key, insts := range tx.inst {
			if len(insts) == 0 {
				return fmt.Errorf("tree %d: empty instance list for (%d,%d)", root, key.vertex(), key.state())
			}
			for _, n := range insts {
				if n.dead {
					return fmt.Errorf("tree %d: dead instance (%d,%d) still indexed", root, n.v, n.s)
				}
				if mkNodeKey(n.v, n.s) != key {
					return fmt.Errorf("tree %d: instance (%d,%d) under key (%d,%d)",
						root, n.v, n.s, key.vertex(), key.state())
				}
				size++
				vcount[n.v]++
				if m := invSeen[n.v]; m == nil {
					invSeen[n.v] = map[stream.VertexID]bool{root: true}
				} else {
					m[root] = true
				}
				if n == tx.root {
					continue
				}
				if n.parent == nil {
					return fmt.Errorf("tree %d: non-root instance (%d,%d) has nil parent", root, n.v, n.s)
				}
				if n.parent.dead {
					return fmt.Errorf("tree %d: instance (%d,%d) has dead parent", root, n.v, n.s)
				}
				if _, ok := n.parent.children[n]; !ok {
					return fmt.Errorf("tree %d: parent (%d,%d) does not list child (%d,%d)",
						root, n.parent.v, n.parent.s, n.v, n.s)
				}
				if n.ts > n.parent.ts {
					return fmt.Errorf("tree %d: child ts %d exceeds parent ts %d", root, n.ts, n.parent.ts)
				}
			}
		}
		if size != tx.size {
			return fmt.Errorf("tree %d: size %d, counted %d", root, tx.size, size)
		}
		for v, n := range vcount {
			if tx.vcount[v] != n {
				return fmt.Errorf("tree %d: vcount[%d]=%d, actual %d", root, v, tx.vcount[v], n)
			}
		}
		for key := range tx.marked {
			if len(tx.inst[key]) == 0 {
				return fmt.Errorf("tree %d: marked key (%d,%d) has no instances",
					root, key.vertex(), key.state())
			}
		}
		support := map[stream.VertexID]int32{}
		for _, insts := range tx.inst {
			for _, n := range insts {
				if e.a.Final[n.s] && n != tx.root {
					support[n.v]++
				}
			}
		}
		if err := checkSupportMaps(root, tx.support, support); err != nil {
			return err
		}
	}
	for v, roots := range e.inv {
		for root := range roots {
			if !invSeen[v][root] {
				return fmt.Errorf("inv[%d] has stale root %d", v, root)
			}
		}
	}
	for v, roots := range invSeen {
		for root := range roots {
			if _, ok := e.inv[v][root]; !ok {
				return fmt.Errorf("inv[%d] missing root %d", v, root)
			}
		}
	}
	return nil
}
