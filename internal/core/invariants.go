package core

import (
	"fmt"

	"streamrpq/internal/stream"
)

// CheckInvariants validates the structural invariants of the RAPQ Δ
// index (Lemma 1 plus implementation-level bookkeeping). It is meant
// for tests and debugging; it walks every tree and is O(|Δ|).
//
// Checked properties:
//  1. Tree shape: every non-root node's parent exists in the same tree
//     and lists the node as a child; the root is its own parent.
//  2. Timestamp monotonicity: a child's timestamp never exceeds its
//     parent's (path timestamps are minima over tree paths).
//  3. Edge support: every tree edge whose child is still inside the
//     window corresponds to a graph edge with a matching automaton
//     transition such that the child's timestamp is min(parent.ts,
//     edge.ts). Out-of-window nodes are exempt: under lazy expiration
//     they linger until the next slide boundary and their support may
//     have been refreshed past them in the meantime.
//  4. Index consistency: per-tree vertex counts and the global
//     inverted index agree with tree contents.
//  5. Support counts: per-tree result-support counters equal the number
//     of final-state nodes per vertex (root excluded), stale or not.
func (e *RAPQ) CheckInvariants() error {
	validFrom := e.win.Spec().ValidFrom(e.now)
	invSeen := map[stream.VertexID]map[stream.VertexID]bool{}
	for root, tx := range e.trees {
		if tx.root != root {
			return fmt.Errorf("tree keyed %d has root %d", root, tx.root)
		}
		rootKey := mkNodeKey(root, e.a.Start)
		rootNode := tx.nodes[rootKey]
		if rootNode == nil {
			return fmt.Errorf("tree %d: root node missing", root)
		}
		if rootNode.parent != rootKey {
			return fmt.Errorf("tree %d: root parent not self", root)
		}
		if rootNode.ts != rootTS {
			return fmt.Errorf("tree %d: root ts = %d", root, rootNode.ts)
		}
		vcount := map[stream.VertexID]int32{}
		for key, node := range tx.nodes {
			if mkNodeKey(node.v, node.s) != key {
				return fmt.Errorf("tree %d: node key mismatch (%d,%d) under %v", root, node.v, node.s, key)
			}
			vcount[node.v]++
			if m := invSeen[node.v]; m == nil {
				invSeen[node.v] = map[stream.VertexID]bool{root: true}
			} else {
				m[root] = true
			}
			if key == rootKey {
				continue
			}
			parent := tx.nodes[node.parent]
			if parent == nil {
				return fmt.Errorf("tree %d: node (%d,%d) has dangling parent (%d,%d)",
					root, node.v, node.s, node.parent.vertex(), node.parent.state())
			}
			if _, ok := parent.children[key]; !ok {
				return fmt.Errorf("tree %d: parent (%d,%d) does not list child (%d,%d)",
					root, parent.v, parent.s, node.v, node.s)
			}
			if node.ts > parent.ts {
				return fmt.Errorf("tree %d: child (%d,%d).ts=%d exceeds parent (%d,%d).ts=%d",
					root, node.v, node.s, node.ts, parent.v, parent.s, parent.ts)
			}
			// Edge support: some graph edge parent.v -> node.v with a
			// transition parent.s -> node.s and min(parent.ts, edge.ts)
			// == node.ts. Only meaningful for in-window nodes.
			if node.ts > validFrom {
				supported := false
				e.g.Out(parent.v, func(dst stream.VertexID, l stream.LabelID, ts int64) bool {
					if dst != node.v {
						return true
					}
					if e.a.Trans[parent.s][l] != node.s {
						return true
					}
					if min(parent.ts, ts) == node.ts {
						supported = true
						return false
					}
					return true
				})
				if !supported {
					return fmt.Errorf("tree %d: tree edge (%d,%d)->(%d,%d) ts=%d has no supporting graph edge",
						root, parent.v, parent.s, node.v, node.s, node.ts)
				}
			}
			// Children must exist.
			for ck := range node.children {
				if tx.nodes[ck] == nil {
					return fmt.Errorf("tree %d: node (%d,%d) lists dead child (%d,%d)",
						root, node.v, node.s, ck.vertex(), ck.state())
				}
			}
		}
		for v, n := range vcount {
			if tx.vcount[v] != n {
				return fmt.Errorf("tree %d: vcount[%d]=%d, actual %d", root, v, tx.vcount[v], n)
			}
		}
		for v, n := range tx.vcount {
			if vcount[v] != n {
				return fmt.Errorf("tree %d: vcount has stale vertex %d", root, v)
			}
		}
		support := map[stream.VertexID]int32{}
		for _, node := range tx.nodes {
			if e.a.Final[node.s] && !(node.v == root && node.s == e.a.Start) {
				support[node.v]++
			}
		}
		if err := checkSupportMaps(root, tx.support, support); err != nil {
			return err
		}
	}
	// Global inverted index must match union of trees.
	for v, roots := range invSeen {
		for root := range roots {
			if !e.inv.has(v, root) {
				return fmt.Errorf("inv[%d] missing root %d", v, root)
			}
		}
	}
	var staleErr error
	e.inv.forEach(func(v, root stream.VertexID) bool {
		if !invSeen[v][root] {
			staleErr = fmt.Errorf("inv[%d] has stale root %d", v, root)
			return false
		}
		return true
	})
	return staleErr
}

// checkSupportMaps compares an engine's maintained result-support
// counters against a freshly recomputed census for one tree.
func checkSupportMaps(root stream.VertexID, got, want map[stream.VertexID]int32) error {
	for v, n := range want {
		if got[v] != n {
			return fmt.Errorf("tree %d: support[%d]=%d, actual %d", root, v, got[v], n)
		}
	}
	for v := range got {
		if want[v] == 0 {
			return fmt.Errorf("tree %d: support has stale vertex %d", root, v)
		}
	}
	return nil
}

// CheckInvariants validates the RSPQ tree structures: instance lists,
// parent/child links, timestamp monotonicity, marking consistency
// (marked keys have at least one live instance), index bookkeeping,
// and the result-support counters (final-state instances per vertex,
// root instance excluded).
func (e *RSPQ) CheckInvariants() error {
	invSeen := map[stream.VertexID]map[stream.VertexID]bool{}
	for root, tx := range e.trees {
		if tx.rootV != root {
			return fmt.Errorf("tree keyed %d has root %d", root, tx.rootV)
		}
		if tx.root == nil || tx.root.dead {
			return fmt.Errorf("tree %d: root missing or dead", root)
		}
		size := 0
		vcount := map[stream.VertexID]int32{}
		for key, insts := range tx.inst {
			if len(insts) == 0 {
				return fmt.Errorf("tree %d: empty instance list for (%d,%d)", root, key.vertex(), key.state())
			}
			for _, n := range insts {
				if n.dead {
					return fmt.Errorf("tree %d: dead instance (%d,%d) still indexed", root, n.v, n.s)
				}
				if mkNodeKey(n.v, n.s) != key {
					return fmt.Errorf("tree %d: instance (%d,%d) under key (%d,%d)",
						root, n.v, n.s, key.vertex(), key.state())
				}
				size++
				vcount[n.v]++
				if m := invSeen[n.v]; m == nil {
					invSeen[n.v] = map[stream.VertexID]bool{root: true}
				} else {
					m[root] = true
				}
				if n == tx.root {
					continue
				}
				if n.parent == nil {
					return fmt.Errorf("tree %d: non-root instance (%d,%d) has nil parent", root, n.v, n.s)
				}
				if n.parent.dead {
					return fmt.Errorf("tree %d: instance (%d,%d) has dead parent", root, n.v, n.s)
				}
				if _, ok := n.parent.children[n]; !ok {
					return fmt.Errorf("tree %d: parent (%d,%d) does not list child (%d,%d)",
						root, n.parent.v, n.parent.s, n.v, n.s)
				}
				if n.ts > n.parent.ts {
					return fmt.Errorf("tree %d: child ts %d exceeds parent ts %d", root, n.ts, n.parent.ts)
				}
			}
		}
		if size != tx.size {
			return fmt.Errorf("tree %d: size %d, counted %d", root, tx.size, size)
		}
		for v, n := range vcount {
			if tx.vcount[v] != n {
				return fmt.Errorf("tree %d: vcount[%d]=%d, actual %d", root, v, tx.vcount[v], n)
			}
		}
		for key := range tx.marked {
			if len(tx.inst[key]) == 0 {
				return fmt.Errorf("tree %d: marked key (%d,%d) has no instances",
					root, key.vertex(), key.state())
			}
		}
		support := map[stream.VertexID]int32{}
		for _, insts := range tx.inst {
			for _, n := range insts {
				if e.a.Final[n.s] && n != tx.root {
					support[n.v]++
				}
			}
		}
		if err := checkSupportMaps(root, tx.support, support); err != nil {
			return err
		}
	}
	for v, roots := range e.inv {
		for root := range roots {
			if !invSeen[v][root] {
				return fmt.Errorf("inv[%d] has stale root %d", v, root)
			}
		}
	}
	for v, roots := range invSeen {
		for root := range roots {
			if _, ok := e.inv[v][root]; !ok {
				return fmt.Errorf("inv[%d] missing root %d", v, root)
			}
		}
	}
	return nil
}
