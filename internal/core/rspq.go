package core

import (
	"sort"
	"time"

	"streamrpq/internal/automaton"
	"streamrpq/internal/graph"
	"streamrpq/internal/stream"
	"streamrpq/internal/window"
)

// spNode is a node instance in an RSPQ spanning tree. Unlike the RAPQ
// index, a (vertex, state) pair may have multiple instances in the same
// tree when conflicts force re-traversal (§4.1), so instances carry
// explicit parent pointers and identity.
type spNode struct {
	v        stream.VertexID
	s        int32
	ts       int64
	parent   *spNode
	children map[*spNode]struct{}
	dead     bool // detached by expiry or deletion
}

// sptree is one spanning tree of the RSPQ engine, with its set of
// markings Mx.
type sptree struct {
	rootV  stream.VertexID
	root   *spNode
	inst   map[nodeKey][]*spNode // live instances per (vertex,state)
	marked map[nodeKey]struct{}  // Mx
	vcount map[stream.VertexID]int32
	size   int // live instances, including the root

	// support counts the final-state witness instances per result
	// vertex (the root instance is excluded). A result pair (rootV, v)
	// is live iff a counted witness is inside the window; support[v] ==
	// 0 is the O(1) fast path for "not live". See tree.support in
	// rapq.go — the role is identical, adapted to instance lists.
	support map[stream.VertexID]int32

	// preLive is non-nil only during one expiry/delete pass: per vertex
	// losing a final witness, whether (rootV, v) was live when the pass
	// started. See tree.preLive in rapq.go.
	preLive map[stream.VertexID]bool
}

// RSPQ is the incremental engine for Regular Simple Path Queries over
// sliding windows (Algorithms RSPQ, Extend, Unmark, ExpiryRSPQ in §4).
// In the absence of conflicts it matches the amortized complexity of
// the RAPQ engine; with conflicts the problem is NP-hard and the engine
// may take exponential time (bounded by WithMaxExtends if set).
type RSPQ struct {
	a    *automaton.Bound
	g    *graph.Graph
	win  *window.Manager
	sink Sink

	trees map[stream.VertexID]*sptree
	inv   map[stream.VertexID]map[stream.VertexID]struct{}
	rev   [][][]int32 // rev[label][t] = states s with δ(s,label)=t

	// finals lists the accepting states once, for the liveness scans.
	finals []int32

	// epoch is the explicit epoch handle RSPQ traversals read the
	// snapshot graph at. The engine is strictly single-goroutine and
	// owns its graph, so the epoch stays 0 (the private graph's current
	// epoch); it exists so the traversals use the same versioned-read
	// discipline as the RAPQ family.
	epoch graph.Epoch

	now        int64
	stats      Stats
	maxExtends int64
	extends    int64 // extends so far for the current tuple
	budgetHit  bool  // some tuple exceeded maxExtends

	instScratch []*spNode
	rootScratch []stream.VertexID
	// heScratch is the reused adjacency buffer of the graph's
	// AppendOutAt/AppendInAt traversal API. It is safe to share across
	// the recursive Extend/Unmark cascade: every use fully drains the
	// buffer into an independent slice (conts, offers) before anything
	// that could refill it runs.
	heScratch []graph.HalfEdge
}

// NewRSPQ returns an RSPQ engine for the bound automaton and window
// specification.
func NewRSPQ(a *automaton.Bound, spec window.Spec, opts ...Option) *RSPQ {
	cfg := config{spec: spec, sink: discardSink{}}
	for _, o := range opts {
		o(&cfg)
	}
	rev := make([][][]int32, len(a.ByLabel))
	for l, trans := range a.ByLabel {
		if len(trans) == 0 {
			continue
		}
		byTarget := make([][]int32, a.K)
		for _, tr := range trans {
			byTarget[tr.To] = append(byTarget[tr.To], tr.From)
		}
		rev[l] = byTarget
	}
	var finals []int32
	for s := int32(0); s < int32(a.K); s++ {
		if a.Final[s] {
			finals = append(finals, s)
		}
	}
	return &RSPQ{
		a:          a,
		g:          graph.New(),
		win:        window.NewManager(spec),
		sink:       cfg.sink,
		trees:      make(map[stream.VertexID]*sptree),
		inv:        make(map[stream.VertexID]map[stream.VertexID]struct{}),
		rev:        rev,
		finals:     finals,
		maxExtends: cfg.maxExtends,
	}
}

// Graph implements Engine.
func (e *RSPQ) Graph() *graph.Graph { return e.g }

// Stats implements Engine.
func (e *RSPQ) Stats() Stats {
	s := e.stats
	s.Trees = len(e.trees)
	s.Nodes = 0
	for _, tx := range e.trees {
		s.Nodes += tx.size
	}
	s.Edges = e.g.NumEdges()
	s.Vertices = e.g.NumVertices()
	return s
}

// Now returns the largest stream timestamp processed so far.
func (e *RSPQ) Now() int64 { return e.now }

// BudgetExceeded reports whether any tuple's Extend cascade was cut off
// by WithMaxExtends. Once true, the engine's results may be incomplete
// — §4 shows the underlying problem is NP-hard in the presence of
// conflicts, and the experiment drivers use this flag to report a query
// as infeasible under simple path semantics.
func (e *RSPQ) BudgetExceeded() bool { return e.budgetHit }

// Process implements Engine.
func (e *RSPQ) Process(t stream.Tuple) {
	e.stats.TuplesSeen++
	if t.TS > e.now {
		e.now = t.TS
	}
	if deadline, due := e.win.Observe(t.TS); due {
		e.expireAll(deadline, false)
	}
	if !e.a.Relevant(int(t.Label)) {
		e.stats.TuplesDropped++
		return
	}
	e.extends = 0
	if t.Op == stream.Delete {
		e.processDelete(t)
		return
	}
	e.processInsert(t)
}

// processInsert is Algorithm RSPQ lines 3–13.
func (e *RSPQ) processInsert(t stream.Tuple) {
	e.g.Insert(t.Src, t.Dst, t.Label, t.TS)
	validFrom := e.win.Spec().ValidFrom(e.now)

	if e.a.Step(e.a.Start, int(t.Label)) != automaton.NoState {
		e.ensureTree(t.Src)
	}

	e.rootScratch = e.rootScratch[:0]
	for root := range e.inv[t.Src] {
		e.rootScratch = append(e.rootScratch, root)
	}
	// Canonical tree order: the Extend budget counter (WithMaxExtends) is
	// shared across trees and instance-list append order steers later
	// traversals, so the fan-out must not depend on map iteration order.
	sort.Slice(e.rootScratch, func(i, j int) bool { return e.rootScratch[i] < e.rootScratch[j] })
	for _, root := range e.rootScratch {
		tx := e.trees[root]
		if tx == nil {
			continue
		}
		for _, tr := range e.a.ByLabel[t.Label] {
			// Snapshot the instance list: Extend may append to it, and
			// freshly created instances have already seen the new edge
			// through their own expansion.
			e.instScratch = append(e.instScratch[:0], tx.inst[mkNodeKey(t.Src, tr.From)]...)
			for _, p := range e.instScratch {
				if p.dead || p.ts <= validFrom {
					continue
				}
				// Line 8 guards: no product cycle on the prefix path,
				// and the target is not marked.
				if pathVisits(p, t.Dst, tr.To) {
					continue
				}
				if _, m := tx.marked[mkNodeKey(t.Dst, tr.To)]; m {
					continue
				}
				e.extend(tx, p, t.Dst, tr.To, t.TS, validFrom)
			}
		}
	}
}

func (e *RSPQ) ensureTree(x stream.VertexID) *sptree {
	if tx, ok := e.trees[x]; ok {
		return tx
	}
	root := &spNode{v: x, s: e.a.Start, ts: rootTS}
	tx := &sptree{
		rootV:   x,
		root:    root,
		inst:    map[nodeKey][]*spNode{mkNodeKey(x, e.a.Start): {root}},
		marked:  make(map[nodeKey]struct{}),
		vcount:  map[stream.VertexID]int32{x: 1},
		size:    1,
		support: make(map[stream.VertexID]int32),
	}
	e.trees[x] = tx
	e.addInv(x, x)
	return tx
}

func (e *RSPQ) addInv(v, root stream.VertexID) {
	m := e.inv[v]
	if m == nil {
		m = make(map[stream.VertexID]struct{})
		e.inv[v] = m
	}
	m[root] = struct{}{}
}

func (e *RSPQ) dropInv(v, root stream.VertexID) {
	m := e.inv[v]
	if m == nil {
		return
	}
	delete(m, root)
	if len(m) == 0 {
		delete(e.inv, v)
	}
}

// pathVisits reports whether the prefix path ending at p visits vertex
// v in state t (the cycle guard t ∈ p[v]).
func pathVisits(p *spNode, v stream.VertexID, t int32) bool {
	for n := p; n != nil; n = n.parent {
		if n.v == v && n.s == t {
			return true
		}
	}
	return false
}

// firstStateAt returns the state of the first occurrence of vertex v on
// the prefix path ending at p (FIRST(p[v]) in the paper), walking from
// p to the root and keeping the last match seen.
func firstStateAt(p *spNode, v stream.VertexID) (int32, bool) {
	var state int32
	found := false
	for n := p; n != nil; n = n.parent {
		if n.v == v {
			state = n.s
			found = true
		}
	}
	return state, found
}

// isLiveSP reports whether the result pair (tx.rootV, v) is currently
// live: some final-state instance for v sits inside the window. Stale
// instances (lazy expiry leaves them until the next slide boundary) do
// not count, and neither does the root instance.
func (e *RSPQ) isLiveSP(tx *sptree, v stream.VertexID, validFrom int64) bool {
	if tx.support[v] == 0 {
		return false
	}
	for _, s := range e.finals {
		for _, n := range tx.inst[mkNodeKey(v, s)] {
			if n != tx.root && n.ts > validFrom {
				return true
			}
		}
	}
	return false
}

// spCont is one pending out-edge continuation of an Extend expansion,
// collected so the expansion can run in canonical order.
type spCont struct {
	w  stream.VertexID
	r  int32
	l  stream.LabelID
	ts int64
}

// extend is Algorithm Extend: it attempts to grow the prefix path
// ending at parent with the node (v,t) reached over an edge with
// timestamp edgeTS.
func (e *RSPQ) extend(tx *sptree, parent *spNode, v stream.VertexID, t int32, edgeTS int64, validFrom int64) {
	if e.maxExtends > 0 {
		if e.extends >= e.maxExtends {
			e.budgetHit = true
			return // safety valve; results may be incomplete from here on
		}
		e.extends++
	}
	e.stats.InsertCalls++

	// Lines 2–3: conflict detection between the first state visiting v
	// on this path and t, via suffix-language containment.
	if q, ok := firstStateAt(parent, v); ok && !e.a.Cont[q][t] {
		e.stats.ConflictsFound++
		e.unmark(tx, parent, validFrom)
		return
	}

	// A path returning to the root vertex is never simple (the root is
	// the first vertex of every path), and in the containment case just
	// handled every continuation from (x,t) is subsumed by traversals
	// from the root (x,s0) itself: [s0] ⊇ [t]. Extending would emit the
	// spurious pair (x,x), whose only witness is the empty path.
	if v == tx.rootV {
		return
	}

	// Lines 5–13: extend the path. A result is emitted exactly when the
	// pair (rootV, v) flips from dead to live: duplicate witnesses and
	// pairs an expiry/delete pass merely cuts and reconnects (preLive)
	// stay silent, so the result stream is canonical.
	newTS := min(edgeTS, parent.ts)
	if e.a.Final[t] && newTS > validFrom &&
		!tx.preLive[v] && !e.isLiveSP(tx, v, validFrom) {
		e.emit(tx.rootV, v)
	}
	key := mkNodeKey(v, t)
	if len(tx.inst[key]) == 0 {
		tx.marked[key] = struct{}{} // line 9: first instance gets marked
	}
	node := &spNode{v: v, s: t, ts: newTS, parent: parent}
	if parent.children == nil {
		parent.children = make(map[*spNode]struct{})
	}
	parent.children[node] = struct{}{}
	tx.inst[key] = append(tx.inst[key], node)
	tx.size++
	tx.vcount[v]++
	if tx.vcount[v] == 1 {
		e.addInv(v, tx.rootV)
	}
	if e.a.Final[t] {
		tx.support[v]++
	}

	// Lines 14–18: expand out-edges inside the window, in canonical
	// (target key, label) order. Instance-list append order steers every
	// later traversal (snapshots, re-exploration, expiry collection), so
	// the expansion order must be a pure function of the stream, not of
	// the adjacency map's iteration order.
	var conts []spCont
	e.heScratch = e.g.AppendOutAt(e.epoch, v, e.heScratch[:0])
	for _, he := range e.heScratch {
		if he.TS <= validFrom {
			continue
		}
		r := e.a.Trans[t][he.L]
		if r == automaton.NoState {
			continue
		}
		conts = append(conts, spCont{w: he.V, r: r, l: he.L, ts: he.TS})
	}
	sort.Slice(conts, func(i, j int) bool {
		ki, kj := mkNodeKey(conts[i].w, conts[i].r), mkNodeKey(conts[j].w, conts[j].r)
		if ki != kj {
			return ki < kj
		}
		return conts[i].l < conts[j].l
	})
	for _, c := range conts {
		if pathVisits(node, c.w, c.r) {
			continue // line 15: r ∈ pnew[w]
		}
		if _, m := tx.marked[mkNodeKey(c.w, c.r)]; m {
			continue // line 15: (w,r) ∈ Mx
		}
		e.extend(tx, node, c.w, c.r, c.ts, validFrom)
	}
}

// unmark is Algorithm Unmark: starting from the end of the prefix path
// it removes markings from the maximal marked suffix of ancestors, then
// re-explores the incoming edges of every unmarked node, since paths
// through them may have been pruned by case 2 of Algorithm RSPQ.
func (e *RSPQ) unmark(tx *sptree, last *spNode, validFrom int64) {
	var queue []nodeKey
	for n := last; n != nil; n = n.parent {
		key := mkNodeKey(n.v, n.s)
		if _, m := tx.marked[key]; !m {
			break // lines 2–6: stop at the first unmarked ancestor
		}
		delete(tx.marked, key)
		e.stats.Unmarkings++
		queue = append(queue, key)
	}
	// Lines 7–13: for each unmarked (v,t), re-run the traversals that
	// were pruned while it was marked, visiting the candidate parents in
	// the canonical best-offer order so whatever instances the cascade
	// builds are a pure function of the stream.
	for _, key := range queue {
		v, t := key.vertex(), key.state()
		for _, of := range e.collectOffers(tx, v, t, validFrom) {
			if _, m := tx.marked[key]; m {
				continue // re-marked during this cascade
			}
			if hasEquivalentChild(of.parent, v, t, of.offer) {
				continue // identical extension already present
			}
			e.extend(tx, of.parent, v, t, of.ts, validFrom)
		}
	}
}

// spOffer is one candidate (parent instance, in-edge) pair that could
// extend into a key being restored or re-explored, with the fields that
// define the canonical scan order.
type spOffer struct {
	offer  int64 // min(edge ts, parent path ts): timestamp of the offered path
	pkey   nodeKey
	pidx   int32 // index in the parent key's instance list
	l      stream.LabelID
	ts     int64 // edge timestamp
	parent *spNode
}

// collectOffers gathers every viable (parent instance, edge) pair that
// could extend into (v,t), sorted best offer first: higher offered path
// timestamp wins, ties break on parent key, instance-list index, then
// label. Both the expiry reconnection and Unmark's re-exploration scan
// this order instead of the graph's map-ordered adjacency lists, which
// is what makes the restored instances — and with them every later
// traversal — a pure function of the stream.
func (e *RSPQ) collectOffers(tx *sptree, v stream.VertexID, t int32, validFrom int64) []spOffer {
	var offers []spOffer
	e.heScratch = e.g.AppendInAt(e.epoch, v, e.heScratch[:0])
	for _, he := range e.heScratch {
		if he.TS <= validFrom {
			continue
		}
		rt := e.rev[he.L]
		if rt == nil {
			continue
		}
		for _, s := range rt[t] {
			pk := mkNodeKey(he.V, s)
			for i, p := range tx.inst[pk] {
				if p.dead || p.ts <= validFrom {
					continue
				}
				if pathVisits(p, v, t) {
					continue
				}
				offers = append(offers, spOffer{
					offer: min(he.TS, p.ts), pkey: pk, pidx: int32(i),
					l: he.L, ts: he.TS, parent: p,
				})
			}
		}
	}
	sort.Slice(offers, func(i, j int) bool {
		a, b := offers[i], offers[j]
		if a.offer != b.offer {
			return a.offer > b.offer
		}
		if a.pkey != b.pkey {
			return a.pkey < b.pkey
		}
		if a.pidx != b.pidx {
			return a.pidx < b.pidx
		}
		return a.l < b.l
	})
	return offers
}

// hasEquivalentChild reports whether parent already has a live child
// instance (v,t) with a timestamp at least ts. Such a child covers
// exactly the same prefix-path constraints, so re-extending would build
// a duplicate subtree. This guard is an optimization over the paper's
// pseudocode; it never prunes a traversal that could discover new
// results.
func hasEquivalentChild(parent *spNode, v stream.VertexID, t int32, ts int64) bool {
	for c := range parent.children {
		if !c.dead && c.v == v && c.s == t && c.ts >= ts {
			return true
		}
	}
	return false
}

func (e *RSPQ) emit(x, v stream.VertexID) {
	e.stats.Results++
	e.sink.OnMatch(Match{From: x, To: v, TS: e.now})
}

// expireAll runs ExpiryRSPQ over every tree (in canonical root order —
// the Extend budget counter is shared across trees) and purges expired
// edges from the snapshot graph.
func (e *RSPQ) expireAll(deadline int64, invalidate bool) {
	start := time.Now()
	e.stats.ExpiryRuns++
	e.g.Expire(deadline, nil)
	roots := make([]stream.VertexID, 0, len(e.trees))
	for root := range e.trees {
		roots = append(roots, root)
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i] < roots[j] })
	for _, root := range roots {
		tx := e.trees[root]
		e.expireTree(tx, deadline, invalidate)
		if tx.size == 1 {
			e.removeNode(tx, tx.root)
			delete(e.trees, root)
		}
	}
	e.stats.ExpiryTime += time.Since(start)
}

// expireTree is Algorithm ExpiryRSPQ for one spanning tree.
func (e *RSPQ) expireTree(tx *sptree, deadline int64, invalidate bool) {
	// Line 2: expired instances, collected in canonical (key, list
	// index) order — pruning, reconnection and the re-marking pass all
	// inherit it. Children of an expired instance are themselves expired
	// (path timestamps are non-increasing).
	keys := make([]nodeKey, 0, len(tx.inst))
	for key := range tx.inst {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	var expired []*spNode
	for _, key := range keys {
		for _, n := range tx.inst[key] {
			if n.ts <= deadline {
				expired = append(expired, n)
				// Record pre-pass liveness before pruning mutates the
				// witness set; delete-marked subtrees were recorded by
				// markSubtreeExpired while their timestamps were intact.
				if e.a.Final[n.s] && n != tx.root {
					if _, seen := tx.preLive[n.v]; !seen {
						if tx.preLive == nil {
							tx.preLive = make(map[stream.VertexID]bool)
						}
						tx.preLive[n.v] = e.isLiveSP(tx, n.v, deadline)
					}
				}
			}
		}
	}
	if len(expired) == 0 {
		tx.preLive = nil
		return
	}
	// Remember parents for the re-marking pass (lines 12–14).
	type removedInfo struct {
		key    nodeKey
		parent *spNode
	}
	infos := make([]removedInfo, 0, len(expired))
	// Lines 3–5: prune Tx and Mx. The paper reconnects only the marked
	// candidates (P ← Mx ∩ E), arguing that Unmark already re-explored
	// the incoming edges of unmarked keys when their markings were
	// removed; under lazy expiry and explicit deletions that shortcut is
	// unsound — the alternative instances Unmark created may sit in the
	// pruned subtree themselves — so reconnection is attempted for every
	// key that lost its last instance (the checked-in fixture stream in
	// testdata/ exercises exactly this gap).
	candSet := make(map[nodeKey]struct{}, len(expired))
	var candidates []nodeKey // canonical order: expired is key-sorted
	for _, n := range expired {
		key := mkNodeKey(n.v, n.s)
		if _, dup := candSet[key]; !dup {
			candSet[key] = struct{}{}
			candidates = append(candidates, key)
		}
		infos = append(infos, removedInfo{key: key, parent: n.parent})
		e.removeNode(tx, n)
	}
	kept := candidates[:0]
	for _, key := range candidates {
		if len(tx.inst[key]) > 0 {
			continue // a live instance survives; stays marked
		}
		delete(tx.marked, key) // Mx ← Mx \ E
		kept = append(kept, key)
	}
	candidates = kept
	// Lines 6–11: reconnect candidates through valid edges, best offer
	// first in the canonical scan order of collectOffers. The first
	// offer Extend accepts re-marks the key and ends the scan, so which
	// instance gets restored — and everything its cascade builds — is a
	// pure function of the stream.
	validFrom := deadline
	for _, key := range candidates {
		v, t := key.vertex(), key.state()
		for _, of := range e.collectOffers(tx, v, t, validFrom) {
			if _, m := tx.marked[key]; m {
				break // reconnected (extend re-marks first instances)
			}
			if hasEquivalentChild(of.parent, v, t, of.offer) {
				continue
			}
			e.extend(tx, of.parent, v, t, of.ts, validFrom)
		}
	}
	// Lines 12–14: parents whose conflicting descendants expired are
	// marked again once every remaining child is marked.
	for _, info := range infos {
		if len(tx.inst[info.key]) > 0 {
			continue // some instance survives or was reconnected
		}
		if p := info.parent; p != nil && !p.dead && p.parent != nil {
			if allChildrenMarked(tx, p) {
				tx.marked[mkNodeKey(p.v, p.s)] = struct{}{}
			}
		}
	}
	// Lines 15–18, canonicalized: a pair (x,v) is retracted exactly when
	// it was live before the pass and no in-window final witness
	// survived pruning + reconnection (see RAPQ.expireTree for the
	// shape-independence argument). Window expiry (invalidate == false)
	// retracts nothing: results carry implicit window semantics.
	if invalidate && len(tx.preLive) > 0 {
		vs := make([]stream.VertexID, 0, len(tx.preLive))
		for v, was := range tx.preLive {
			if was {
				vs = append(vs, v)
			}
		}
		sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
		for _, v := range vs {
			if e.isLiveSP(tx, v, deadline) {
				continue
			}
			e.stats.Invalidations++
			e.sink.OnInvalidate(Match{From: tx.rootV, To: v, TS: e.now})
		}
	}
	tx.preLive = nil
}

func allChildrenMarked(tx *sptree, p *spNode) bool {
	for c := range p.children {
		if c.dead {
			continue
		}
		if _, m := tx.marked[mkNodeKey(c.v, c.s)]; !m {
			return false
		}
	}
	return true
}

// hasFinalInstance reports whether any final-state instance for v —
// fresh or stale — remains in tx. Tests use it as the index-completeness
// probe: under lazy expiry a valid pair may be witnessed only by a stale
// instance whose marking blocks a fresher duplicate until the next
// slide boundary. Liveness decisions use isLiveSP instead.
func (e *RSPQ) hasFinalInstance(tx *sptree, v stream.VertexID) bool {
	for _, s := range e.finals {
		if len(tx.inst[mkNodeKey(v, s)]) > 0 {
			return true
		}
	}
	return false
}

// removeNode detaches one instance from the tree and updates all
// indexes. Descendants are not touched; callers remove them separately
// (expiry collects whole subtrees because timestamps are monotone).
// Removal preserves the instance-list order: the list order steers
// traversal order, so it must stay a pure function of the stream
// (swap-removal would scramble it with map-iteration noise).
func (e *RSPQ) removeNode(tx *sptree, n *spNode) {
	if n.dead {
		return
	}
	n.dead = true
	if n.parent != nil {
		delete(n.parent.children, n)
	}
	key := mkNodeKey(n.v, n.s)
	insts := tx.inst[key]
	for i, m := range insts {
		if m == n {
			insts = append(insts[:i], insts[i+1:]...)
			break
		}
	}
	if len(insts) == 0 {
		delete(tx.inst, key)
	} else {
		tx.inst[key] = insts
	}
	if e.a.Final[n.s] && n != tx.root {
		if tx.support[n.v]--; tx.support[n.v] == 0 {
			delete(tx.support, n.v)
		}
	}
	tx.size--
	tx.vcount[n.v]--
	if tx.vcount[n.v] == 0 {
		delete(tx.vcount, n.v)
		e.dropInv(n.v, tx.rootV)
	}
}

// processDelete handles negative tuples with the expiry machinery, as
// §4.1 prescribes ("the algorithm RSPQ processes explicit deletions in
// the same manner as its RAPQ counterpart").
func (e *RSPQ) processDelete(t stream.Tuple) {
	if !e.g.Delete(t.Key()) {
		return
	}
	validFrom := e.win.Spec().ValidFrom(e.now)

	e.rootScratch = e.rootScratch[:0]
	for root := range e.inv[t.Src] {
		e.rootScratch = append(e.rootScratch, root)
	}
	sort.Slice(e.rootScratch, func(i, j int) bool { return e.rootScratch[i] < e.rootScratch[j] })
	for _, root := range e.rootScratch {
		tx := e.trees[root]
		if tx == nil {
			continue
		}
		touched := false
		for _, tr := range e.a.ByLabel[t.Label] {
			for _, c := range tx.inst[mkNodeKey(t.Dst, tr.To)] {
				p := c.parent
				if p == nil || p.dead || p.v != t.Src || p.s != tr.From {
					continue
				}
				e.markSubtreeExpired(tx, c, validFrom)
				touched = true
			}
		}
		if !touched {
			continue
		}
		e.expireTree(tx, validFrom, true)
		if tx.size == 1 {
			e.removeNode(tx, tx.root)
			delete(e.trees, root)
		}
	}
}

// markSubtreeExpired sets the timestamps of the subtree rooted at n to
// -∞ so the expiry pass treats it as expired. Before overwriting a
// final witness's timestamp it records whether its pair was live, so
// the invalidation pass decides against the pre-deletion window state
// rather than the clobbered one.
func (e *RSPQ) markSubtreeExpired(tx *sptree, n *spNode, validFrom int64) {
	stack := []*spNode{n}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if e.a.Final[cur.s] && cur != tx.root {
			if _, seen := tx.preLive[cur.v]; !seen {
				if tx.preLive == nil {
					tx.preLive = make(map[stream.VertexID]bool)
				}
				tx.preLive[cur.v] = e.isLiveSP(tx, cur.v, validFrom)
			}
		}
		cur.ts = expiredTS
		for c := range cur.children {
			stack = append(stack, c)
		}
	}
}

var _ Engine = (*RSPQ)(nil)
