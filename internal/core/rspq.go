package core

import (
	"time"

	"streamrpq/internal/automaton"
	"streamrpq/internal/graph"
	"streamrpq/internal/stream"
	"streamrpq/internal/window"
)

// spNode is a node instance in an RSPQ spanning tree. Unlike the RAPQ
// index, a (vertex, state) pair may have multiple instances in the same
// tree when conflicts force re-traversal (§4.1), so instances carry
// explicit parent pointers and identity.
type spNode struct {
	v        stream.VertexID
	s        int32
	ts       int64
	parent   *spNode
	children map[*spNode]struct{}
	dead     bool // detached by expiry or deletion
}

// sptree is one spanning tree of the RSPQ engine, with its set of
// markings Mx.
type sptree struct {
	rootV  stream.VertexID
	root   *spNode
	inst   map[nodeKey][]*spNode // live instances per (vertex,state)
	marked map[nodeKey]struct{}  // Mx
	vcount map[stream.VertexID]int32
	size   int // live instances, including the root
}

// RSPQ is the incremental engine for Regular Simple Path Queries over
// sliding windows (Algorithms RSPQ, Extend, Unmark, ExpiryRSPQ in §4).
// In the absence of conflicts it matches the amortized complexity of
// the RAPQ engine; with conflicts the problem is NP-hard and the engine
// may take exponential time (bounded by WithMaxExtends if set).
type RSPQ struct {
	a    *automaton.Bound
	g    *graph.Graph
	win  *window.Manager
	sink Sink

	trees map[stream.VertexID]*sptree
	inv   map[stream.VertexID]map[stream.VertexID]struct{}
	rev   [][][]int32 // rev[label][t] = states s with δ(s,label)=t

	// epoch is the explicit epoch handle RSPQ traversals read the
	// snapshot graph at. The engine is strictly single-goroutine and
	// owns its graph, so the epoch stays 0 (the private graph's current
	// epoch); it exists so the traversals use the same versioned-read
	// discipline as the RAPQ family.
	epoch graph.Epoch

	now        int64
	stats      Stats
	maxExtends int64
	extends    int64 // extends so far for the current tuple
	budgetHit  bool  // some tuple exceeded maxExtends

	instScratch []*spNode
	rootScratch []stream.VertexID
}

// NewRSPQ returns an RSPQ engine for the bound automaton and window
// specification.
func NewRSPQ(a *automaton.Bound, spec window.Spec, opts ...Option) *RSPQ {
	cfg := config{spec: spec, sink: discardSink{}}
	for _, o := range opts {
		o(&cfg)
	}
	rev := make([][][]int32, len(a.ByLabel))
	for l, trans := range a.ByLabel {
		if len(trans) == 0 {
			continue
		}
		byTarget := make([][]int32, a.K)
		for _, tr := range trans {
			byTarget[tr.To] = append(byTarget[tr.To], tr.From)
		}
		rev[l] = byTarget
	}
	return &RSPQ{
		a:          a,
		g:          graph.New(),
		win:        window.NewManager(spec),
		sink:       cfg.sink,
		trees:      make(map[stream.VertexID]*sptree),
		inv:        make(map[stream.VertexID]map[stream.VertexID]struct{}),
		rev:        rev,
		maxExtends: cfg.maxExtends,
	}
}

// Graph implements Engine.
func (e *RSPQ) Graph() *graph.Graph { return e.g }

// Stats implements Engine.
func (e *RSPQ) Stats() Stats {
	s := e.stats
	s.Trees = len(e.trees)
	s.Nodes = 0
	for _, tx := range e.trees {
		s.Nodes += tx.size
	}
	s.Edges = e.g.NumEdges()
	s.Vertices = e.g.NumVertices()
	return s
}

// Now returns the largest stream timestamp processed so far.
func (e *RSPQ) Now() int64 { return e.now }

// BudgetExceeded reports whether any tuple's Extend cascade was cut off
// by WithMaxExtends. Once true, the engine's results may be incomplete
// — §4 shows the underlying problem is NP-hard in the presence of
// conflicts, and the experiment drivers use this flag to report a query
// as infeasible under simple path semantics.
func (e *RSPQ) BudgetExceeded() bool { return e.budgetHit }

// Process implements Engine.
func (e *RSPQ) Process(t stream.Tuple) {
	e.stats.TuplesSeen++
	if t.TS > e.now {
		e.now = t.TS
	}
	if deadline, due := e.win.Observe(t.TS); due {
		e.expireAll(deadline, false)
	}
	if !e.a.Relevant(int(t.Label)) {
		e.stats.TuplesDropped++
		return
	}
	e.extends = 0
	if t.Op == stream.Delete {
		e.processDelete(t)
		return
	}
	e.processInsert(t)
}

// processInsert is Algorithm RSPQ lines 3–13.
func (e *RSPQ) processInsert(t stream.Tuple) {
	e.g.Insert(t.Src, t.Dst, t.Label, t.TS)
	validFrom := e.win.Spec().ValidFrom(e.now)

	if e.a.Step(e.a.Start, int(t.Label)) != automaton.NoState {
		e.ensureTree(t.Src)
	}

	e.rootScratch = e.rootScratch[:0]
	for root := range e.inv[t.Src] {
		e.rootScratch = append(e.rootScratch, root)
	}
	for _, root := range e.rootScratch {
		tx := e.trees[root]
		if tx == nil {
			continue
		}
		for _, tr := range e.a.ByLabel[t.Label] {
			// Snapshot the instance list: Extend may append to it, and
			// freshly created instances have already seen the new edge
			// through their own expansion.
			e.instScratch = append(e.instScratch[:0], tx.inst[mkNodeKey(t.Src, tr.From)]...)
			for _, p := range e.instScratch {
				if p.dead || p.ts <= validFrom {
					continue
				}
				// Line 8 guards: no product cycle on the prefix path,
				// and the target is not marked.
				if pathVisits(p, t.Dst, tr.To) {
					continue
				}
				if _, m := tx.marked[mkNodeKey(t.Dst, tr.To)]; m {
					continue
				}
				e.extend(tx, p, t.Dst, tr.To, t.TS, validFrom)
			}
		}
	}
}

func (e *RSPQ) ensureTree(x stream.VertexID) *sptree {
	if tx, ok := e.trees[x]; ok {
		return tx
	}
	root := &spNode{v: x, s: e.a.Start, ts: rootTS}
	tx := &sptree{
		rootV:  x,
		root:   root,
		inst:   map[nodeKey][]*spNode{mkNodeKey(x, e.a.Start): {root}},
		marked: make(map[nodeKey]struct{}),
		vcount: map[stream.VertexID]int32{x: 1},
		size:   1,
	}
	e.trees[x] = tx
	e.addInv(x, x)
	return tx
}

func (e *RSPQ) addInv(v, root stream.VertexID) {
	m := e.inv[v]
	if m == nil {
		m = make(map[stream.VertexID]struct{})
		e.inv[v] = m
	}
	m[root] = struct{}{}
}

func (e *RSPQ) dropInv(v, root stream.VertexID) {
	m := e.inv[v]
	if m == nil {
		return
	}
	delete(m, root)
	if len(m) == 0 {
		delete(e.inv, v)
	}
}

// pathVisits reports whether the prefix path ending at p visits vertex
// v in state t (the cycle guard t ∈ p[v]).
func pathVisits(p *spNode, v stream.VertexID, t int32) bool {
	for n := p; n != nil; n = n.parent {
		if n.v == v && n.s == t {
			return true
		}
	}
	return false
}

// firstStateAt returns the state of the first occurrence of vertex v on
// the prefix path ending at p (FIRST(p[v]) in the paper), walking from
// p to the root and keeping the last match seen.
func firstStateAt(p *spNode, v stream.VertexID) (int32, bool) {
	var state int32
	found := false
	for n := p; n != nil; n = n.parent {
		if n.v == v {
			state = n.s
			found = true
		}
	}
	return state, found
}

// extend is Algorithm Extend: it attempts to grow the prefix path
// ending at parent with the node (v,t) reached over an edge with
// timestamp edgeTS.
func (e *RSPQ) extend(tx *sptree, parent *spNode, v stream.VertexID, t int32, edgeTS int64, validFrom int64) {
	if e.maxExtends > 0 {
		if e.extends >= e.maxExtends {
			e.budgetHit = true
			return // safety valve; results may be incomplete from here on
		}
		e.extends++
	}
	e.stats.InsertCalls++

	// Lines 2–3: conflict detection between the first state visiting v
	// on this path and t, via suffix-language containment.
	if q, ok := firstStateAt(parent, v); ok && !e.a.Cont[q][t] {
		e.stats.ConflictsFound++
		e.unmark(tx, parent, validFrom)
		return
	}

	// A path returning to the root vertex is never simple (the root is
	// the first vertex of every path), and in the containment case just
	// handled every continuation from (x,t) is subsumed by traversals
	// from the root (x,s0) itself: [s0] ⊇ [t]. Extending would emit the
	// spurious pair (x,x), whose only witness is the empty path.
	if v == tx.rootV {
		return
	}

	// Lines 5–13: extend the path.
	if e.a.Final[t] {
		e.emit(tx.rootV, v)
	}
	key := mkNodeKey(v, t)
	if len(tx.inst[key]) == 0 {
		tx.marked[key] = struct{}{} // line 9: first instance gets marked
	}
	node := &spNode{v: v, s: t, ts: min(edgeTS, parent.ts), parent: parent}
	if parent.children == nil {
		parent.children = make(map[*spNode]struct{})
	}
	parent.children[node] = struct{}{}
	tx.inst[key] = append(tx.inst[key], node)
	tx.size++
	tx.vcount[v]++
	if tx.vcount[v] == 1 {
		e.addInv(v, tx.rootV)
	}

	// Lines 14–18: expand out-edges inside the window.
	e.g.OutAt(e.epoch, v, func(w stream.VertexID, l stream.LabelID, ts int64) bool {
		if ts <= validFrom {
			return true
		}
		r := e.a.Trans[t][l]
		if r == automaton.NoState {
			return true
		}
		if pathVisits(node, w, r) {
			return true // line 15: r ∈ pnew[w]
		}
		if _, m := tx.marked[mkNodeKey(w, r)]; m {
			return true // line 15: (w,r) ∈ Mx
		}
		e.extend(tx, node, w, r, ts, validFrom)
		return true
	})
}

// unmark is Algorithm Unmark: starting from the end of the prefix path
// it removes markings from the maximal marked suffix of ancestors, then
// re-explores the incoming edges of every unmarked node, since paths
// through them may have been pruned by case 2 of Algorithm RSPQ.
func (e *RSPQ) unmark(tx *sptree, last *spNode, validFrom int64) {
	var queue []nodeKey
	for n := last; n != nil; n = n.parent {
		key := mkNodeKey(n.v, n.s)
		if _, m := tx.marked[key]; !m {
			break // lines 2–6: stop at the first unmarked ancestor
		}
		delete(tx.marked, key)
		e.stats.Unmarkings++
		queue = append(queue, key)
	}
	// Lines 7–13: for each unmarked (v,t), re-run the traversals that
	// were pruned while it was marked.
	for _, key := range queue {
		v, t := key.vertex(), key.state()
		e.g.InAt(e.epoch, v, func(u stream.VertexID, l stream.LabelID, ts int64) bool {
			if ts <= validFrom {
				return true
			}
			rt := e.rev[l]
			if rt == nil {
				return true
			}
			for _, s := range rt[t] {
				cands := append([]*spNode(nil), tx.inst[mkNodeKey(u, s)]...)
				for _, p := range cands {
					if p.dead || p.ts <= validFrom {
						continue
					}
					if pathVisits(p, v, t) {
						continue
					}
					if _, m := tx.marked[mkNodeKey(v, t)]; m {
						continue // re-marked during this cascade
					}
					if hasEquivalentChild(p, v, t, min(ts, p.ts)) {
						continue // identical extension already present
					}
					e.extend(tx, p, v, t, ts, validFrom)
				}
			}
			return true
		})
	}
}

// hasEquivalentChild reports whether parent already has a live child
// instance (v,t) with a timestamp at least ts. Such a child covers
// exactly the same prefix-path constraints, so re-extending would build
// a duplicate subtree. This guard is an optimization over the paper's
// pseudocode; it never prunes a traversal that could discover new
// results.
func hasEquivalentChild(parent *spNode, v stream.VertexID, t int32, ts int64) bool {
	for c := range parent.children {
		if !c.dead && c.v == v && c.s == t && c.ts >= ts {
			return true
		}
	}
	return false
}

func (e *RSPQ) emit(x, v stream.VertexID) {
	e.stats.Results++
	e.sink.OnMatch(Match{From: x, To: v, TS: e.now})
}

// expireAll runs ExpiryRSPQ over every tree and purges expired edges
// from the snapshot graph.
func (e *RSPQ) expireAll(deadline int64, invalidate bool) {
	start := time.Now()
	e.stats.ExpiryRuns++
	e.g.Expire(deadline, nil)
	for root, tx := range e.trees {
		e.expireTree(tx, deadline, invalidate)
		if tx.size == 1 {
			e.removeNode(tx, tx.root)
			delete(e.trees, root)
		}
	}
	e.stats.ExpiryTime += time.Since(start)
}

// expireTree is Algorithm ExpiryRSPQ for one spanning tree.
func (e *RSPQ) expireTree(tx *sptree, deadline int64, invalidate bool) {
	// Line 2: expired instances. Children of an expired instance are
	// themselves expired (path timestamps are non-increasing).
	var expired []*spNode
	for _, insts := range tx.inst {
		for _, n := range insts {
			if n.ts <= deadline {
				expired = append(expired, n)
			}
		}
	}
	if len(expired) == 0 {
		return
	}
	// Remember parents for the re-marking pass (lines 12–14).
	type removedInfo struct {
		key    nodeKey
		parent *spNode
	}
	infos := make([]removedInfo, 0, len(expired))
	// Lines 3–5: prune Tx and Mx. The paper reconnects only marked
	// candidates (P ← Mx ∩ E), arguing that unmarking already
	// re-explored the incoming edges of unmarked nodes; under explicit
	// deletions that argument breaks when the alternative instances
	// created by Unmark sit in the deleted subtree themselves, so we
	// attempt reconnection for every key that lost its last instance.
	candidates := make(map[nodeKey]struct{})
	for _, n := range expired {
		key := mkNodeKey(n.v, n.s)
		candidates[key] = struct{}{}
		infos = append(infos, removedInfo{key: key, parent: n.parent})
		e.removeNode(tx, n)
	}
	for key := range candidates {
		if len(tx.inst[key]) > 0 {
			delete(candidates, key) // a live instance survives; stays marked
		} else {
			delete(tx.marked, key) // Mx ← Mx \ E
		}
	}
	// Lines 6–11: reconnect marked candidates through valid edges.
	validFrom := deadline
	for key := range candidates {
		v, t := key.vertex(), key.state()
		e.g.InAt(e.epoch, v, func(u stream.VertexID, l stream.LabelID, ts int64) bool {
			if ts <= validFrom {
				return true
			}
			rt := e.rev[l]
			if rt == nil {
				return true
			}
			for _, s := range rt[t] {
				cands := append([]*spNode(nil), tx.inst[mkNodeKey(u, s)]...)
				for _, p := range cands {
					if p.dead || p.ts <= validFrom {
						continue
					}
					if pathVisits(p, v, t) {
						continue
					}
					if _, m := tx.marked[key]; m {
						return false // reconnected (extend re-marks first instances)
					}
					if hasEquivalentChild(p, v, t, min(ts, p.ts)) {
						continue
					}
					e.extend(tx, p, v, t, ts, validFrom)
				}
			}
			return true
		})
	}
	// Lines 12–18: re-marking of parents whose conflicting descendants
	// expired, and result invalidation.
	seenInvalid := make(map[stream.VertexID]struct{})
	for _, info := range infos {
		if len(tx.inst[info.key]) > 0 {
			continue // some instance survives or was reconnected
		}
		if p := info.parent; p != nil && !p.dead && p.parent != nil {
			if allChildrenMarked(tx, p) {
				tx.marked[mkNodeKey(p.v, p.s)] = struct{}{}
			}
		}
		v, t := info.key.vertex(), info.key.state()
		if invalidate && e.a.Final[t] {
			if _, dup := seenInvalid[v]; !dup && !e.hasFinalInstance(tx, v) {
				seenInvalid[v] = struct{}{}
				e.stats.Invalidations++
				e.sink.OnInvalidate(Match{From: tx.rootV, To: v, TS: e.now})
			}
		}
	}
}

func allChildrenMarked(tx *sptree, p *spNode) bool {
	for c := range p.children {
		if c.dead {
			continue
		}
		if _, m := tx.marked[mkNodeKey(c.v, c.s)]; !m {
			return false
		}
	}
	return true
}

func (e *RSPQ) hasFinalInstance(tx *sptree, v stream.VertexID) bool {
	for s := int32(0); s < int32(e.a.K); s++ {
		if e.a.Final[s] && len(tx.inst[mkNodeKey(v, s)]) > 0 {
			return true
		}
	}
	return false
}

// removeNode detaches one instance from the tree and updates all
// indexes. Descendants are not touched; callers remove them separately
// (expiry collects whole subtrees because timestamps are monotone).
func (e *RSPQ) removeNode(tx *sptree, n *spNode) {
	if n.dead {
		return
	}
	n.dead = true
	if n.parent != nil {
		delete(n.parent.children, n)
	}
	key := mkNodeKey(n.v, n.s)
	insts := tx.inst[key]
	for i, m := range insts {
		if m == n {
			insts[i] = insts[len(insts)-1]
			insts = insts[:len(insts)-1]
			break
		}
	}
	if len(insts) == 0 {
		delete(tx.inst, key)
	} else {
		tx.inst[key] = insts
	}
	tx.size--
	tx.vcount[n.v]--
	if tx.vcount[n.v] == 0 {
		delete(tx.vcount, n.v)
		e.dropInv(n.v, tx.rootV)
	}
}

// processDelete handles negative tuples with the expiry machinery, as
// §4.1 prescribes ("the algorithm RSPQ processes explicit deletions in
// the same manner as its RAPQ counterpart").
func (e *RSPQ) processDelete(t stream.Tuple) {
	if !e.g.Delete(t.Key()) {
		return
	}
	validFrom := e.win.Spec().ValidFrom(e.now)

	e.rootScratch = e.rootScratch[:0]
	for root := range e.inv[t.Src] {
		e.rootScratch = append(e.rootScratch, root)
	}
	for _, root := range e.rootScratch {
		tx := e.trees[root]
		if tx == nil {
			continue
		}
		touched := false
		for _, tr := range e.a.ByLabel[t.Label] {
			for _, c := range tx.inst[mkNodeKey(t.Dst, tr.To)] {
				p := c.parent
				if p == nil || p.dead || p.v != t.Src || p.s != tr.From {
					continue
				}
				markSubtreeExpired(c)
				touched = true
			}
		}
		if !touched {
			continue
		}
		e.expireTree(tx, validFrom, true)
		if tx.size == 1 {
			e.removeNode(tx, tx.root)
			delete(e.trees, root)
		}
	}
}

func markSubtreeExpired(n *spNode) {
	stack := []*spNode{n}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		cur.ts = expiredTS
		for c := range cur.children {
			stack = append(stack, c)
		}
	}
}

var _ Engine = (*RSPQ)(nil)
