package core

import (
	"testing"

	"streamrpq/internal/stream"
	"streamrpq/internal/window"
)

// The pointer-free hot path is an allocation contract, not just a
// layout: steady-state inserts must not allocate per edge. Node slots,
// cascade stacks, adjacency buffers, and inverted-index rows are all
// reused, so once the working set exists, re-processing edges is
// alloc-free up to amortized slice growth (graph FIFO appends, slab
// doubling). These tests pin that contract with testing.AllocsPerRun;
// they run as a blocking CI step.

// chainTuples builds a chain v0 -a-> v1 -b-> v2 -a-> ... so an a/b
// query grows a tree under every other vertex.
func chainTuples(n int, ts int64) []stream.Tuple {
	out := make([]stream.Tuple, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, stream.Tuple{
			TS:    ts,
			Src:   stream.VertexID(i),
			Dst:   stream.VertexID(i + 1),
			Label: stream.LabelID(i % 2),
		})
	}
	return out
}

// TestRAPQInsertSteadyStateAllocs: re-processing a warmed-up working
// set must average well under one allocation per tuple, on both the
// skip path (same timestamp, cascade pruned at the first node) and the
// refresh path (newer timestamp, full cascade re-walks the subtree and
// rewrites slots in place).
func TestRAPQInsertSteadyStateAllocs(t *testing.T) {
	a := bind(t, "a/b", "a", "b")
	// Window large enough that the measured runs never cross a slide
	// boundary: expiry has its own (amortized) costs and its own test.
	e := NewRAPQ(a, window.Spec{Size: 1 << 40, Slide: 1 << 40}, WithSink(discardSink{}))
	const n = 64
	tuples := chainTuples(n, 1)
	for _, tu := range tuples {
		e.Process(tu)
	}

	t.Run("same-ts skip path", func(t *testing.T) {
		avg := testing.AllocsPerRun(50, func() {
			for _, tu := range tuples {
				e.Process(tu)
			}
		})
		if perTuple := avg / n; perTuple >= 0.5 {
			t.Errorf("same-ts re-insert allocates %.2f/tuple (avg %.1f per %d-tuple run), want < 0.5", perTuple, avg, n)
		}
	})

	t.Run("refresh cascade", func(t *testing.T) {
		ts := int64(1)
		avg := testing.AllocsPerRun(50, func() {
			ts++
			for _, tu := range tuples {
				tu.TS = ts
				e.Process(tu)
			}
		})
		if perTuple := avg / n; perTuple >= 0.5 {
			t.Errorf("refresh cascade allocates %.2f/tuple (avg %.1f per %d-tuple run), want < 0.5", perTuple, avg, n)
		}
	})
}

// TestMultiRelevanceDispatchAllocs: the relevance-ordered dispatch of
// the multi-query coordinator must add no allocations of its own — the
// per-label group lists are built at registration and Groups() returns
// a shared slice, so a steady-state tuple costs only what its member
// engines cost.
func TestMultiRelevanceDispatchAllocs(t *testing.T) {
	m, err := NewMulti(window.Spec{Size: 1 << 40, Slide: 1 << 40})
	if err != nil {
		t.Fatal(err)
	}
	labels := []string{"a", "b", "c"}
	// Three groups with different alphabets, so every tuple exercises
	// both the dispatch list and the skip accounting.
	for _, expr := range []string{"a/b", "a/b", "a+", "c*"} {
		if _, err := m.Add(bind(t, expr, labels...)); err != nil {
			t.Fatal(err)
		}
	}
	const n = 64
	tuples := chainTuples(n, 1)
	for _, tu := range tuples {
		m.Process(tu)
	}
	avg := testing.AllocsPerRun(50, func() {
		for _, tu := range tuples {
			m.Process(tu)
		}
	})
	if perTuple := avg / n; perTuple >= 0.5 {
		t.Errorf("relevance dispatch allocates %.2f/tuple (avg %.1f per %d-tuple run), want < 0.5", perTuple, avg, n)
	}
}

// TestParallelRAPQFanOutAllocs: the tree-parallel fan-out may allocate
// per call (one channel, one closure per worker goroutine), but never
// per tree or per edge. A hub tuple touching 64 trees must stay within
// a flat per-call budget; any per-tree allocation would blow past it
// 64-fold.
func TestParallelRAPQFanOutAllocs(t *testing.T) {
	a := bind(t, "a/b", "a", "b")
	p := NewParallelRAPQ(a, window.Spec{Size: 1 << 40, Slide: 1 << 40}, 4, WithSink(discardSink{}))
	const roots = 64
	const hub = stream.VertexID(1000)
	for i := 0; i < roots; i++ {
		p.Process(stream.Tuple{TS: 1, Src: stream.VertexID(i), Dst: hub, Label: 0})
	}
	fan := stream.Tuple{TS: 2, Src: hub, Dst: 2000, Label: 1}
	p.Process(fan) // materialize the (2000, final) node in every tree
	ts := int64(2)
	avg := testing.AllocsPerRun(50, func() {
		ts++
		fan.TS = ts
		p.Process(fan)
	})
	const budget = 24 // fan-out scaffolding only: channel + per-worker closures
	if avg > budget {
		t.Errorf("fan-out over %d trees allocates %.1f per call, want <= %d (per-tree allocation leak?)", roots, avg, budget)
	}
}
