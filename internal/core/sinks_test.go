package core

import (
	"testing"

	"streamrpq/internal/graph"
	"streamrpq/internal/stream"
)

func TestCollectorSinkSemantics(t *testing.T) {
	c := NewCollector()
	c.OnMatch(Match{From: 1, To: 2, TS: 10})
	c.OnMatch(Match{From: 1, To: 2, TS: 12}) // duplicate keeps first TS
	c.OnMatch(Match{From: 3, To: 4, TS: 11})
	if len(c.Matched) != 3 {
		t.Fatalf("Matched log = %d entries", len(c.Matched))
	}
	if ts := c.Live[Pair{From: 1, To: 2}]; ts != 10 {
		t.Fatalf("live TS = %d, want first discovery 10", ts)
	}
	c.OnInvalidate(Match{From: 1, To: 2, TS: 15})
	if _, ok := c.Live[Pair{From: 1, To: 2}]; ok {
		t.Fatal("invalidated pair still live")
	}
	if len(c.Retract) != 1 {
		t.Fatalf("Retract log = %d", len(c.Retract))
	}
	// Pairs() reports everything ever matched, including retracted.
	if len(c.Pairs()) != 2 {
		t.Fatalf("Pairs = %v", c.Pairs())
	}
	// Re-match after invalidation becomes live again.
	c.OnMatch(Match{From: 1, To: 2, TS: 20})
	if ts := c.Live[Pair{From: 1, To: 2}]; ts != 20 {
		t.Fatalf("revived TS = %d, want 20", ts)
	}
}

func TestCountingSink(t *testing.T) {
	var c CountingSink
	c.OnMatch(Match{})
	c.OnMatch(Match{})
	c.OnInvalidate(Match{})
	if c.Matches != 2 || c.Invalidations != 1 {
		t.Fatalf("counts = %+v", c)
	}
}

func TestFuncSinkNilFields(t *testing.T) {
	// Nil callbacks must be safe.
	var f FuncSink
	f.OnMatch(Match{})
	f.OnInvalidate(Match{})
}

func TestBatchFromVariants(t *testing.T) {
	a := bind(t, "(a/b)+", "a", "b")
	g := graph.New()
	// x -a-> y -b-> z -a-> w -b-> x (a 4-cycle alternating a/b).
	g.Insert(0, 1, 0, 1)
	g.Insert(1, 2, 1, 2)
	g.Insert(2, 3, 0, 3)
	g.Insert(3, 0, 1, 4)

	arb := BatchArbitraryFrom(g, a, 0, -1)
	// From x: z after ab, x after abab, then cycling z,x forever — the
	// reachable final-state vertices are exactly {z, x}.
	if len(arb) != 2 {
		t.Fatalf("arbitrary from x: %v", arb)
	}
	for _, v := range []stream.VertexID{2, 0} {
		if _, ok := arb[v]; !ok {
			t.Fatalf("missing %d in %v", v, arb)
		}
	}

	simple := BatchSimpleFrom(g, a, 0, -1)
	// Simple paths from x cannot revisit x, so only z qualifies.
	if len(simple) != 1 {
		t.Fatalf("simple from x: %v", simple)
	}
	if _, ok := simple[stream.VertexID(2)]; !ok {
		t.Fatalf("missing z in %v", simple)
	}
}
