package core

import (
	"fmt"
	"reflect"
	"sort"
	"time"

	"streamrpq/internal/graph"
	"streamrpq/internal/stream"
	"streamrpq/internal/window"
)

// This file defines the exported, pointer-free state representations of
// the engines' Δ indexes, used by the persistence subsystem
// (internal/persist) to checkpoint an engine and by recovery to rebuild
// one. A state captures everything that is a function of the stream
// prefix: the spanning trees, the stream clock, the window-manager
// position and the statistics counters. The snapshot graph is NOT part
// of an engine state — it is owned by the coordinator in multi-query
// setups and serialized once (see MultiState); standalone engines pair
// their state with Graph().Snapshot().
//
// Restore is only legal on a freshly constructed engine (same automaton,
// same window spec); restoring rebuilds the derived structures (children
// sets, vertex counts, inverted indexes) from the flat node lists.

// StatState is the restartable subset of Stats: the monotone counters
// that survive a checkpoint/recovery cycle so result numbering and
// throughput accounting stay continuous. Sizes (Trees, Nodes, Edges,
// Vertices) are recomputed, not stored.
type StatState struct {
	Results        int64
	Invalidations  int64
	TuplesSeen     int64
	TuplesDropped  int64
	ExpiryRuns     int64
	ExpiryTimeNS   int64
	InsertCalls    int64
	ConflictsFound int64
	Unmarkings     int64
}

func statStateOf(s Stats) StatState {
	return StatState{
		Results:        s.Results,
		Invalidations:  s.Invalidations,
		TuplesSeen:     s.TuplesSeen,
		TuplesDropped:  s.TuplesDropped,
		ExpiryRuns:     s.ExpiryRuns,
		ExpiryTimeNS:   int64(s.ExpiryTime),
		InsertCalls:    s.InsertCalls,
		ConflictsFound: s.ConflictsFound,
		Unmarkings:     s.Unmarkings,
	}
}

func (st StatState) apply(s *Stats) {
	s.Results = st.Results
	s.Invalidations = st.Invalidations
	s.TuplesSeen = st.TuplesSeen
	s.TuplesDropped = st.TuplesDropped
	s.ExpiryRuns = st.ExpiryRuns
	s.ExpiryTime = time.Duration(st.ExpiryTimeNS)
	s.InsertCalls = st.InsertCalls
	s.ConflictsFound = st.ConflictsFound
	s.Unmarkings = st.Unmarkings
}

// TreeNodeState is one non-root node of a RAPQ spanning tree: the
// (vertex, state) pair, its path timestamp, and its parent's key.
type TreeNodeState struct {
	V       stream.VertexID
	S       int32
	TS      int64
	ParentV stream.VertexID
	ParentS int32
}

// SupportCount is one entry of a tree's result-support index: N
// final-state witness nodes (or instances, for RSPQ) for result vertex
// V. Support drives the canonical match/invalidation decisions — a
// pair is retracted exactly when its last in-window witness goes — so
// it is checkpointed with the tree and cross-checked against the node
// list on restore rather than silently recomputed.
type SupportCount struct {
	V stream.VertexID
	N int32
}

// TreeState is one RAPQ spanning tree Tx. The root node (Root, s0) is
// implicit; Nodes holds everything else in deterministic (v,s) order.
// Support holds the per-vertex final-witness counts in ascending vertex
// order; it is derivable from Nodes and verified against them on
// restore (a mismatch means a corrupt checkpoint).
type TreeState struct {
	Root    stream.VertexID
	Nodes   []TreeNodeState
	Support []SupportCount
}

// RAPQState is the checkpointable state of a RAPQ (or ParallelRAPQ)
// engine, excluding the snapshot graph.
type RAPQState struct {
	Now      int64
	Deadline int64
	Win      window.State
	Stats    StatState
	Trees    []TreeState
}

// SnapshotState captures the engine's Δ index and clocks. The output is
// deterministic: trees sorted by root, nodes sorted by (vertex, state).
func (e *RAPQ) SnapshotState() *RAPQState {
	st := &RAPQState{
		Now:      e.now,
		Deadline: e.deadline,
		Win:      e.win.State(),
		Stats:    statStateOf(e.stats),
	}
	roots := make([]stream.VertexID, 0, len(e.trees))
	for root := range e.trees {
		roots = append(roots, root)
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i] < roots[j] })
	for _, root := range roots {
		tx := e.trees[root]
		ns := &tx.ns
		ts := TreeState{Root: root, Nodes: make([]TreeNodeState, 0, ns.size()-1)}
		rootKey := mkNodeKey(root, e.a.Start)
		keys := make([]nodeKey, 0, ns.size())
		for slot := int32(0); slot < int32(len(ns.keys)); slot++ {
			if ns.live(slot) && ns.keys[slot] != rootKey {
				keys = append(keys, ns.keys[slot])
			}
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for _, key := range keys {
			slot := ns.lookup(key)
			pk := ns.keys[ns.parent[slot]]
			ts.Nodes = append(ts.Nodes, TreeNodeState{
				V: key.vertex(), S: key.state(), TS: ns.ts[slot],
				ParentV: pk.vertex(), ParentS: pk.state(),
			})
		}
		ts.Support = supportStateOf(tx.support)
		st.Trees = append(st.Trees, ts)
	}
	return st
}

// supportStateOf flattens a support map in ascending vertex order.
func supportStateOf(support map[stream.VertexID]int32) []SupportCount {
	if len(support) == 0 {
		return nil
	}
	out := make([]SupportCount, 0, len(support))
	for v, n := range support {
		out = append(out, SupportCount{V: v, N: n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].V < out[j].V })
	return out
}

// checkSupport verifies that the support counts rebuilt from a restored
// node list agree with the checkpointed ones.
func checkSupport(rebuilt map[stream.VertexID]int32, want []SupportCount, root stream.VertexID) error {
	if len(want) != len(rebuilt) {
		return fmt.Errorf("core: restore: tree %d support has %d vertices, nodes imply %d",
			root, len(want), len(rebuilt))
	}
	for _, sc := range want {
		if rebuilt[sc.V] != sc.N {
			return fmt.Errorf("core: restore: tree %d support[%d]=%d, nodes imply %d",
				root, sc.V, sc.N, rebuilt[sc.V])
		}
	}
	return nil
}

// RestoreState rebuilds the Δ index from a snapshot. The engine must be
// freshly constructed with the same bound automaton and window spec; the
// snapshot graph is restored separately by the caller.
func (e *RAPQ) RestoreState(st *RAPQState) error {
	if e.stats.TuplesSeen != 0 || len(e.trees) != 0 {
		return fmt.Errorf("core: RestoreState on a non-fresh RAPQ engine")
	}
	e.now = st.Now
	e.deadline = st.Deadline
	e.win.SetState(st.Win)
	st.Stats.apply(&e.stats)
	for _, ts := range st.Trees {
		tx := e.ensureTree(ts.Root)
		store := &tx.ns
		// First pass: materialize every node (parent slots resolve in
		// the second pass, once every node has one).
		for _, n := range ts.Nodes {
			key := mkNodeKey(n.V, n.S)
			if store.lookup(key) >= 0 {
				return fmt.Errorf("core: restore: duplicate node (%d,%d) in tree %d", n.V, n.S, ts.Root)
			}
			slot := store.alloc(key, n.TS, 0)
			store.parent[slot] = slot // placeholder until linked below
			tx.vcount[n.V]++
			if tx.vcount[n.V] == 1 {
				e.addInv(n.V, tx.root)
			}
			if e.a.Final[n.S] {
				tx.support[n.V]++ // Nodes never contains the root
			}
		}
		// Second pass: link children and validate parents.
		for _, n := range ts.Nodes {
			slot := store.lookup(mkNodeKey(n.V, n.S))
			pslot := store.lookup(mkNodeKey(n.ParentV, n.ParentS))
			if pslot < 0 {
				return fmt.Errorf("core: restore: node (%d,%d) in tree %d has missing parent (%d,%d)",
					n.V, n.S, ts.Root, n.ParentV, n.ParentS)
			}
			store.parent[slot] = pslot
			store.attach(pslot, slot)
		}
		if err := checkSupport(tx.support, ts.Support, ts.Root); err != nil {
			return err
		}
	}
	return nil
}

// SnapshotState implements the state API for the tree-parallel engine by
// delegating to the sequential core (the Δ index is identical; only the
// execution strategy differs).
func (p *ParallelRAPQ) SnapshotState() *RAPQState { return p.inner.SnapshotState() }

// RestoreState delegates to the sequential core.
func (p *ParallelRAPQ) RestoreState(st *RAPQState) error { return p.inner.RestoreState(st) }

// SPNodeState is one instance of an RSPQ spanning tree. Parent is the
// index of the parent instance in SPTreeState.Nodes, or -1 for the root.
type SPNodeState struct {
	V      stream.VertexID
	S      int32
	TS     int64
	Parent int32
}

// SPTreeState is one RSPQ spanning tree: the instance list (index 0 is
// the root), in an order that reproduces the per-(vertex,state) instance
// list order on restore, plus the marking set Mx as packed (v,s) keys
// and the per-vertex final-witness support counts (ascending vertex
// order, root instance excluded; see SupportCount).
type SPTreeState struct {
	RootV   stream.VertexID
	Nodes   []SPNodeState
	Marked  []uint64
	Support []SupportCount
}

// RSPQState is the checkpointable state of an RSPQ engine, excluding the
// snapshot graph.
type RSPQState struct {
	Now       int64
	Win       window.State
	Stats     StatState
	BudgetHit bool
	Trees     []SPTreeState
}

// SnapshotState captures the RSPQ engine's Δ index: automaton-state
// instance lists (with their order, which steers traversal order) and
// the marking sets.
func (e *RSPQ) SnapshotState() *RSPQState {
	st := &RSPQState{
		Now:       e.now,
		Win:       e.win.State(),
		Stats:     statStateOf(e.stats),
		BudgetHit: e.budgetHit,
	}
	roots := make([]stream.VertexID, 0, len(e.trees))
	for root := range e.trees {
		roots = append(roots, root)
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i] < roots[j] })
	for _, root := range roots {
		tx := e.trees[root]
		ts := SPTreeState{RootV: root}
		// Index every instance: root first, then sorted (v,s) keys with
		// each key's instances in list order, so restore can rebuild the
		// inst lists exactly.
		index := map[*spNode]int32{tx.root: 0}
		order := []*spNode{tx.root}
		keys := make([]nodeKey, 0, len(tx.inst))
		rootKey := mkNodeKey(root, e.a.Start)
		for key := range tx.inst {
			keys = append(keys, key)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for _, key := range keys {
			for _, n := range tx.inst[key] {
				if key == rootKey && n == tx.root {
					continue
				}
				index[n] = int32(len(order))
				order = append(order, n)
			}
		}
		for _, n := range order {
			ns := SPNodeState{V: n.v, S: n.s, TS: n.ts, Parent: -1}
			if n.parent != nil {
				pi, ok := index[n.parent]
				if !ok {
					// A live instance always has a live parent; a miss
					// would mean the index is corrupt. Surface it loudly.
					panic("core: RSPQ snapshot: instance with unindexed parent")
				}
				ns.Parent = pi
			}
			ts.Nodes = append(ts.Nodes, ns)
		}
		for key := range tx.marked {
			ts.Marked = append(ts.Marked, uint64(key))
		}
		sort.Slice(ts.Marked, func(i, j int) bool { return ts.Marked[i] < ts.Marked[j] })
		ts.Support = supportStateOf(tx.support)
		st.Trees = append(st.Trees, ts)
	}
	return st
}

// RestoreState rebuilds the RSPQ Δ index from a snapshot. The engine
// must be freshly constructed with the same bound automaton and window
// spec; the snapshot graph is restored separately by the caller.
func (e *RSPQ) RestoreState(st *RSPQState) error {
	if e.stats.TuplesSeen != 0 || len(e.trees) != 0 {
		return fmt.Errorf("core: RestoreState on a non-fresh RSPQ engine")
	}
	e.now = st.Now
	e.win.SetState(st.Win)
	st.Stats.apply(&e.stats)
	e.budgetHit = st.BudgetHit
	for _, ts := range st.Trees {
		if len(ts.Nodes) == 0 || ts.Nodes[0].Parent != -1 ||
			ts.Nodes[0].V != ts.RootV || ts.Nodes[0].S != e.a.Start {
			return fmt.Errorf("core: restore: tree %d has no valid root instance", ts.RootV)
		}
		nodes := make([]*spNode, len(ts.Nodes))
		for i, ns := range ts.Nodes {
			nodes[i] = &spNode{v: ns.V, s: ns.S, ts: ns.TS}
		}
		tx := &sptree{
			rootV:   ts.RootV,
			root:    nodes[0],
			inst:    make(map[nodeKey][]*spNode, len(ts.Nodes)),
			marked:  make(map[nodeKey]struct{}, len(ts.Marked)),
			vcount:  make(map[stream.VertexID]int32),
			support: make(map[stream.VertexID]int32),
		}
		for i, ns := range ts.Nodes {
			n := nodes[i]
			if ns.Parent >= 0 {
				if int(ns.Parent) >= len(nodes) || int(ns.Parent) == i {
					return fmt.Errorf("core: restore: tree %d instance %d has bad parent index %d", ts.RootV, i, ns.Parent)
				}
				p := nodes[ns.Parent]
				n.parent = p
				if p.children == nil {
					p.children = make(map[*spNode]struct{})
				}
				p.children[n] = struct{}{}
			} else if i != 0 {
				return fmt.Errorf("core: restore: tree %d has a second root at instance %d", ts.RootV, i)
			}
			key := mkNodeKey(ns.V, ns.S)
			tx.inst[key] = append(tx.inst[key], n)
			tx.size++
			tx.vcount[ns.V]++
			if tx.vcount[ns.V] == 1 {
				e.addInv(ns.V, tx.rootV)
			}
			if e.a.Final[ns.S] && i != 0 {
				tx.support[ns.V]++ // index 0 is the root instance
			}
		}
		for _, mk := range ts.Marked {
			tx.marked[nodeKey(mk)] = struct{}{}
		}
		if err := checkSupport(tx.support, ts.Support, ts.RootV); err != nil {
			return err
		}
		if _, dup := e.trees[ts.RootV]; dup {
			return fmt.Errorf("core: restore: duplicate tree %d", ts.RootV)
		}
		e.trees[ts.RootV] = tx
	}
	return nil
}

// MultiState is the checkpointable state of a multi-query coordinator
// (core.Multi or shard.Engine): the shared snapshot graph, the shared
// window clock, and each Δ-index group's state. With query sharing,
// Members holds one state per *group* (ordered by each group's lowest
// live subscriber index) and MemberGroup records, for each live query
// in registration order, which group it subscribes to. A nil
// MemberGroup (snapshot format v3 and older) means one private group
// per query, in order.
type MultiState struct {
	Now     int64
	Seen    int64
	Dropped int64
	Win     window.State
	Edges   []graph.Edge
	Members []*RAPQState

	// Retain-all / dynamic-registration state (zero for static query
	// sets, so pre-dynamic checkpoints decode unchanged): whether the
	// graph stores every label, and the per-label stream clocks that
	// align a dynamically registered member with a from-start engine.
	Retain  bool
	LabelTS []int64

	// Query-sharing state (snapshot format v4): the live-query → group
	// mapping and the relevance-filter counters.
	MemberGroup    []int
	Dispatches     int64
	RelevanceSkips int64
}

// SnapshotEdges returns the graph's live edges sorted by (TS, Src, Dst,
// Label). Re-inserting them in this order into a fresh graph rebuilds an
// expiry FIFO equivalent to the original (stream timestamps are
// non-decreasing, so arrival order and timestamp order agree up to ties,
// and expiry treats a tie-group atomically).
func SnapshotEdges(g *graph.Graph) []graph.Edge {
	var edges []graph.Edge
	g.Edges(func(e graph.Edge) bool {
		edges = append(edges, e)
		return true
	})
	sort.Slice(edges, func(i, j int) bool {
		a, b := edges[i], edges[j]
		if a.TS != b.TS {
			return a.TS < b.TS
		}
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		if a.Dst != b.Dst {
			return a.Dst < b.Dst
		}
		return a.Label < b.Label
	})
	return edges
}

// RestoreEdges inserts snapshot edges into a fresh graph in order.
func RestoreEdges(g *graph.Graph, edges []graph.Edge) error {
	if g.NumEdges() != 0 {
		return fmt.Errorf("core: RestoreEdges on a non-empty graph")
	}
	for _, ed := range edges {
		g.Insert(ed.Src, ed.Dst, ed.Label, ed.TS)
	}
	return nil
}

// SnapshotState captures the coordinator's shared state and every
// group's Δ index, plus the live-query → group mapping.
func (m *Multi) SnapshotState() *MultiState {
	st := &MultiState{
		Now:            m.now,
		Seen:           m.seen,
		Dropped:        m.dropped,
		Win:            m.win.State(),
		Edges:          SnapshotEdges(m.g),
		Retain:         m.retain,
		LabelTS:        append([]int64(nil), m.labelTS...),
		Dispatches:     m.dispatches,
		RelevanceSkips: m.relevanceSkips,
	}
	// Groups ordered by lowest subscriber index: a canonical order that
	// restore can reproduce without knowing group creation history.
	ordered := append([]*multiGroup(nil), m.groups...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].subs[0] < ordered[j].subs[0] })
	rank := make(map[*multiGroup]int, len(ordered))
	for gi, g := range ordered {
		rank[g] = gi
		st.Members = append(st.Members, g.eng.SnapshotState())
	}
	for _, sl := range m.slots {
		if sl != nil {
			st.MemberGroup = append(st.MemberGroup, rank[sl.group])
		}
	}
	return st
}

// PlanGroupPartition resolves a snapshot's query→group mapping into
// slot partitions, one per restored group, each paired with its engine
// state. liveIdx lists the coordinator's live registration indices in
// order; key(idx) returns the group key of the query at that index. For
// v3 snapshots (nil mapping: one private state per query) under a
// sharing coordinator, equal-key slots whose states are byte-equal are
// re-deduplicated into one shared group — sound because a deterministic
// engine's state is a pure function of its inputs, so equal states plus
// equal automata resume identically. For v4 snapshots the mapping is
// authoritative: the partition is restored exactly as recorded.
func PlanGroupPartition(st *MultiState, liveIdx []int, key func(int) string, sharing bool) ([][]int, []*RAPQState, error) {
	if st.MemberGroup == nil {
		if len(st.Members) != len(liveIdx) {
			return nil, nil, fmt.Errorf("core: restore: snapshot has %d members, coordinator has %d",
				len(st.Members), len(liveIdx))
		}
		var parts [][]int
		var states []*RAPQState
		for rank, idx := range liveIdx {
			joined := false
			if sharing {
				for pi := range parts {
					if key(parts[pi][0]) == key(idx) &&
						reflect.DeepEqual(states[pi], st.Members[rank]) {
						parts[pi] = append(parts[pi], idx)
						joined = true
						break
					}
				}
			}
			if !joined {
				parts = append(parts, []int{idx})
				states = append(states, st.Members[rank])
			}
		}
		return parts, states, nil
	}
	if len(st.MemberGroup) != len(liveIdx) {
		return nil, nil, fmt.Errorf("core: restore: snapshot maps %d queries, coordinator has %d",
			len(st.MemberGroup), len(liveIdx))
	}
	parts := make([][]int, len(st.Members))
	for rank, idx := range liveIdx {
		gi := st.MemberGroup[rank]
		if gi < 0 || gi >= len(st.Members) {
			return nil, nil, fmt.Errorf("core: restore: query %d maps to group %d of %d", idx, gi, len(st.Members))
		}
		parts[gi] = append(parts[gi], idx)
	}
	for gi, p := range parts {
		if len(p) == 0 {
			return nil, nil, fmt.Errorf("core: restore: snapshot group %d has no subscribers", gi)
		}
		for _, idx := range p[1:] {
			if key(idx) != key(p[0]) {
				return nil, nil, fmt.Errorf("core: restore: group %d spans inequivalent queries %d and %d", gi, p[0], idx)
			}
		}
	}
	return parts, st.Members, nil
}

// widestSlot returns the partition slot bound against the largest label
// space; a group rebuilt from it steps identically for every member
// (equal fingerprints guarantee the extra labels carry no transitions).
func widestSlot(slots []*multiSlot, part []int) *multiSlot {
	best := slots[part[0]]
	for _, idx := range part[1:] {
		if len(slots[idx].bound.ByLabel) > len(best.bound.ByLabel) {
			best = slots[idx]
		}
	}
	return best
}

// RestoreState rebuilds the coordinator from a snapshot. All queries
// must already be registered (same number, same order as at snapshot
// time) and no tuple processed yet. The snapshot's query→group mapping
// is authoritative: groups formed at registration are re-partitioned to
// match it, so a v4 snapshot restores its exact sharing layout and a v3
// snapshot restores private groups (re-deduplicated when sharing is on
// and the states are identical).
func (m *Multi) RestoreState(st *MultiState) error {
	if m.seen != 0 {
		return fmt.Errorf("core: Multi.RestoreState after processing started")
	}
	var liveIdx []int
	for i, sl := range m.slots {
		if sl != nil {
			liveIdx = append(liveIdx, i)
		}
	}
	parts, states, err := PlanGroupPartition(st, liveIdx, func(i int) string { return m.slots[i].key }, m.sharing)
	if err != nil {
		return err
	}
	if err := RestoreEdges(m.g, st.Edges); err != nil {
		return err
	}
	m.now = st.Now
	m.seen = st.Seen
	m.dropped = st.Dropped
	m.win.SetState(st.Win)
	m.retain = st.Retain
	m.labelTS = append([]int64(nil), st.LabelTS...)
	m.dispatches = st.Dispatches
	m.relevanceSkips = st.RelevanceSkips
	// Reuse registration-formed groups whose subscriber sets already
	// match a snapshot partition (the common path — engine pointers held
	// by callers stay valid); re-form the rest.
	existing := make(map[string]*multiGroup, len(m.groups))
	for _, g := range m.groups {
		existing[fmt.Sprint(g.subs)] = g
	}
	groups := make([]*multiGroup, len(parts))
	for gi, part := range parts {
		g, ok := existing[fmt.Sprint(part)]
		if !ok {
			g = m.newGroup(widestSlot(m.slots, part))
			g.subs = append([]int(nil), part...)
			for _, idx := range part {
				m.slots[idx].group = g
			}
		}
		if err := g.eng.RestoreState(states[gi]); err != nil {
			return fmt.Errorf("core: restore group %d: %w", gi, err)
		}
		groups[gi] = g
	}
	m.groups = groups
	m.rebuildRelevance()
	return nil
}
