package core

import (
	"fmt"
	"math/rand"
	"testing"

	"streamrpq/internal/automaton"
	"streamrpq/internal/graph"
	"streamrpq/internal/pattern"
	"streamrpq/internal/stream"
	"streamrpq/internal/window"
)

// bind compiles an expression against a fixed label dictionary.
func bind(t testing.TB, expr string, labels ...string) *automaton.Bound {
	t.Helper()
	ids := map[string]int{}
	for i, l := range labels {
		ids[l] = i
	}
	d := automaton.Compile(pattern.MustParse(expr))
	return d.Bind(func(s string) int {
		if id, ok := ids[s]; ok {
			return id
		}
		return -1
	}, len(labels))
}

// paperStream is the streaming graph of Figure 1(a): labels follows=f,
// mentions=m.
func paperStream() []stream.Tuple {
	const f, m = 0, 1
	mk := func(ts int64, src, dst stream.VertexID, l stream.LabelID) stream.Tuple {
		return stream.Tuple{TS: ts, Src: src, Dst: dst, Label: l}
	}
	// vertices: x=0 y=1 z=2 u=3 v=4 w=5
	const x, y, z, u, v, w = 0, 1, 2, 3, 4, 5
	return []stream.Tuple{
		mk(4, y, u, m),
		mk(6, x, z, f),
		mk(9, u, v, f),
		mk(11, z, w, m),
		mk(13, x, y, f),
		mk(14, z, u, m),
		mk(15, u, x, m),
		mk(18, v, y, m),
		mk(19, w, u, f),
	}
}

func pairNames(pairs map[Pair]struct{}) []string {
	names := []string{"x", "y", "z", "u", "v", "w"}
	var out []string
	for p := range pairs {
		out = append(out, fmt.Sprintf("(%s,%s)", names[p.From], names[p.To]))
	}
	return out
}

// TestRAPQPaperExample replays Figure 1's stream against the query
// Q1 = (follows/mentions)+ with |W|=15, β=1 and checks the cumulative
// result set derived in §3's examples.
func TestRAPQPaperExample(t *testing.T) {
	a := bind(t, "(follows/mentions)+", "follows", "mentions")
	sink := NewCollector()
	e := NewRAPQ(a, window.Spec{Size: 15, Slide: 1}, WithSink(sink))
	for _, tu := range paperStream() {
		e.Process(tu)
	}
	// x=0 y=1 z=2 u=3 v=4 w=5.
	want := map[Pair]struct{}{
		{From: 0, To: 5}: {}, // (x,w) via x-f->z-m->w at t=11
		{From: 0, To: 3}: {}, // (x,u) via x-f->y-m->u at t=13
		{From: 0, To: 1}: {}, // (x,y) via x..v-m->y at t=18
		{From: 3, To: 1}: {}, // (u,y) via u-f->v-m->y at t=18
		{From: 0, To: 0}: {}, // (x,x) via x-f->z, z-m->w, w-f->u, u-m->x at t=19
		{From: 5, To: 0}: {}, // (w,x) via w-f->u-m->x at t=19
		{From: 5, To: 5}: {}, // (w,w) via w-f->u-m->x-f->z-m->w at t=19
		{From: 5, To: 3}: {}, // (w,u) via w-f->u-m->x-f->z-m->u at t=19
		{From: 5, To: 1}: {}, // (w,y) via w,u,x,z,u,v,y (arbitrary semantics revisits u)
	}
	got := sink.Pairs()
	if len(got) != len(want) {
		t.Fatalf("result pairs = %v, want %v", pairNames(got), pairNames(want))
	}
	for p := range want {
		if _, ok := got[p]; !ok {
			t.Errorf("missing pair %v; got %v", p, pairNames(got))
		}
	}
	// The x-rooted spanning tree must hold the refreshed timestamps of
	// Figure 2(b) (our engine propagates refreshes eagerly).
	st := e.Stats()
	if st.Trees == 0 || st.Nodes == 0 {
		t.Fatalf("stats empty: %+v", st)
	}
}

// TestRAPQTreeTimestamps checks node timestamps of the spanning tree
// Tx of the running example (Figure 2, with eager refresh propagation:
// (u,2) and descendants carry timestamp 6 after the edge (z,u) at t=14).
func TestRAPQTreeTimestamps(t *testing.T) {
	a := bind(t, "(follows/mentions)+", "follows", "mentions")
	e := NewRAPQ(a, window.Spec{Size: 15, Slide: 1})
	for _, tu := range paperStream() {
		if tu.TS > 18 {
			break
		}
		e.Process(tu)
	}
	tx := e.trees[0] // rooted at x
	if tx == nil {
		t.Fatal("tree Tx missing")
	}
	wantTS := map[nodeKey]int64{
		mkNodeKey(1, 1): 13, // (y,1)
		mkNodeKey(2, 1): 6,  // (z,1)
		mkNodeKey(3, 2): 6,  // (u,2) refreshed via (z,u)@14
		mkNodeKey(4, 1): 6,  // (v,1) refresh propagated
		mkNodeKey(1, 2): 6,  // (y,2) created at t=18 under (v,1)
		mkNodeKey(5, 2): 6,  // (w,2)
	}
	for key, want := range wantTS {
		ts, ok := tx.nodeTS(key)
		if !ok {
			t.Errorf("node (%d,%d) missing", key.vertex(), key.state())
			continue
		}
		if ts != want {
			t.Errorf("node (%d,%d).ts = %d, want %d", key.vertex(), key.state(), ts, want)
		}
	}
}

// TestRAPQExpiryReconnect reproduces Example 3.2: at t=19 the edge
// (w,u,follows) arrives, old paths through (y,u,mentions)@4 expire, and
// (u,2) must be reconnected through the valid edge (z,u,mentions)@14.
func TestRAPQExpiryReconnect(t *testing.T) {
	a := bind(t, "(follows/mentions)+", "follows", "mentions")
	e := NewRAPQ(a, window.Spec{Size: 15, Slide: 1})
	for _, tu := range paperStream() {
		e.Process(tu)
	}
	tx := e.trees[0]
	if tx == nil {
		t.Fatal("tree Tx missing")
	}
	// After t=19: (u,1) under (w,2), (x,2) under (u,1).
	for _, k := range []nodeKey{mkNodeKey(3, 1), mkNodeKey(0, 2)} {
		if _, ok := tx.nodeTS(k); !ok {
			t.Errorf("node (%d,%d) missing after t=19", k.vertex(), k.state())
		}
	}
	// (u,2) still present (reconnected through (z,1)).
	pk, ok := tx.nodeParent(mkNodeKey(3, 2))
	if !ok {
		t.Fatal("(u,2) missing after expiry")
	}
	if pk != mkNodeKey(2, 1) {
		t.Errorf("(u,2) parent = (%d,%d), want (z,1)", pk.vertex(), pk.state())
	}
}

// replayOracle replays a stream and checks, after every tuple, that
// the engine's cumulative result set equals the union of batch results
// over all per-tuple snapshots, and (with slide=1) that the live tree
// state matches the current snapshot exactly.
func replayOracle(t *testing.T, a *automaton.Bound, spec window.Spec, tuples []stream.Tuple, checkTreeState bool) {
	t.Helper()
	sink := NewCollector()
	e := NewRAPQ(a, spec, WithSink(sink))

	oracle := graph.New()
	want := map[Pair]struct{}{}
	for i, tu := range tuples {
		e.Process(tu)

		// Maintain the oracle's window content.
		if tu.Op == stream.Delete {
			oracle.Delete(tu.Key())
		} else if a.Relevant(int(tu.Label)) {
			oracle.Insert(tu.Src, tu.Dst, tu.Label, tu.TS)
		}
		oracle.Expire(tu.TS-spec.Size, nil)

		snap := BatchArbitrary(oracle, a, tu.TS-spec.Size)
		for p := range snap {
			want[p] = struct{}{}
		}
		got := sink.Pairs()
		for p := range snap {
			if _, ok := got[p]; !ok {
				t.Fatalf("tuple %d (%v): oracle pair %v not reported; engine has %d pairs",
					i, tu, p, len(got))
			}
		}
		for p := range got {
			if _, ok := want[p]; !ok {
				t.Fatalf("tuple %d (%v): engine reported %v, never valid in any snapshot", i, tu, p)
			}
		}
		if checkTreeState {
			// With slide=1 expiry runs every time unit, so the live
			// final nodes must match the current snapshot exactly.
			live := map[Pair]struct{}{}
			for root, tx := range e.trees {
				rootKey := mkNodeKey(root, a.Start)
				tx.forEachNode(func(key nodeKey, ts int64) {
					if key == rootKey {
						return // the empty path is not a result
					}
					if a.Final[key.state()] && ts > tu.TS-spec.Size {
						live[Pair{From: root, To: key.vertex()}] = struct{}{}
					}
				})
			}
			for p := range snap {
				if _, ok := live[p]; !ok {
					t.Fatalf("tuple %d: snapshot pair %v not live in Δ", i, p)
				}
			}
			for p := range live {
				if _, ok := snap[p]; !ok {
					t.Fatalf("tuple %d: Δ holds stale pair %v", i, p)
				}
			}
		}
	}
}

func randomTuples(rng *rand.Rand, n, vertices, labels int, maxStep int64, delRatio float64) []stream.Tuple {
	var out []stream.Tuple
	ts := int64(0)
	var inserted []stream.Tuple
	for i := 0; i < n; i++ {
		ts += rng.Int63n(maxStep + 1)
		if len(inserted) > 0 && rng.Float64() < delRatio {
			old := inserted[rng.Intn(len(inserted))]
			out = append(out, stream.Tuple{TS: ts, Src: old.Src, Dst: old.Dst, Label: old.Label, Op: stream.Delete})
			continue
		}
		tu := stream.Tuple{
			TS:    ts,
			Src:   stream.VertexID(rng.Intn(vertices)),
			Dst:   stream.VertexID(rng.Intn(vertices)),
			Label: stream.LabelID(rng.Intn(labels)),
		}
		out = append(out, tu)
		inserted = append(inserted, tu)
	}
	return out
}

var oracleQueries = []struct {
	name   string
	expr   string
	labels []string
}{
	{"Q1-star", "a*", []string{"a", "b", "c"}},
	{"Q2", "a/b*", []string{"a", "b", "c"}},
	{"Q3", "a/b*/c*", []string{"a", "b", "c"}},
	{"Q4-altstar", "(a|b|c)*", []string{"a", "b", "c"}},
	{"Q5", "a/b*/c", []string{"a", "b", "c"}},
	{"Q9-altplus", "(a|b|c)+", []string{"a", "b", "c"}},
	{"Q11-concat", "a/b/c", []string{"a", "b", "c"}},
	{"example", "(a/b)+", []string{"a", "b", "c"}},
	{"opt", "a?/b*", []string{"a", "b", "c"}},
}

// TestRAPQMatchesBatchOracle is the main correctness property for the
// arbitrary-semantics engine: on random append-only streams, for every
// Table-2 query shape, the engine's cumulative output equals the union
// of batch evaluations over all window snapshots, and the Δ index state
// mirrors the current snapshot.
func TestRAPQMatchesBatchOracle(t *testing.T) {
	for _, q := range oracleQueries {
		q := q
		t.Run(q.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(12345))
			a := bind(t, q.expr, q.labels...)
			for trial := 0; trial < 6; trial++ {
				tuples := randomTuples(rng, 150, 8, len(q.labels), 3, 0)
				replayOracle(t, a, window.Spec{Size: 20, Slide: 1}, tuples, true)
			}
		})
	}
}

// TestRAPQWithDeletionsMatchesOracle adds explicit deletions to the
// stream; soundness and completeness of the cumulative stream must be
// preserved, and the Δ index state must still track the snapshot.
func TestRAPQWithDeletionsMatchesOracle(t *testing.T) {
	for _, q := range oracleQueries {
		q := q
		t.Run(q.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(777))
			a := bind(t, q.expr, q.labels...)
			for trial := 0; trial < 6; trial++ {
				tuples := randomTuples(rng, 150, 8, len(q.labels), 3, 0.15)
				replayOracle(t, a, window.Spec{Size: 20, Slide: 1}, tuples, true)
			}
		})
	}
}

// TestRAPQLazyExpiry uses a slide interval larger than one time unit:
// results must remain sound (valid in some snapshot) and complete.
func TestRAPQLazyExpiry(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	a := bind(t, "(a/b)+", "a", "b", "c")
	for trial := 0; trial < 6; trial++ {
		tuples := randomTuples(rng, 200, 8, 3, 2, 0)
		replayOracle(t, a, window.Spec{Size: 20, Slide: 5}, tuples, false)
	}
}

// TestRAPQInvalidationsSound: every invalidation emitted after an
// explicit deletion refers to a pair that is indeed no longer valid in
// the current snapshot.
func TestRAPQInvalidationsSound(t *testing.T) {
	rng := rand.New(rand.NewSource(31337))
	a := bind(t, "a/b*", "a", "b")
	oracle := graph.New()
	var bad []string
	sink := FuncSink{
		Invalidate: func(m Match) {
			snap := BatchArbitrary(oracle, a, m.TS-50)
			if _, still := snap[Pair{From: m.From, To: m.To}]; still {
				bad = append(bad, fmt.Sprintf("invalidated %v still valid at %d", m, m.TS))
			}
		},
	}
	engine := NewRAPQ(a, window.Spec{Size: 50, Slide: 1}, WithSink(sink))
	tuples := randomTuples(rng, 300, 10, 2, 2, 0.2)
	for _, tu := range tuples {
		// Keep the oracle in sync *before* processing so the sink sees
		// the post-update window.
		if tu.Op == stream.Delete {
			oracle.Delete(tu.Key())
		} else if a.Relevant(int(tu.Label)) {
			oracle.Insert(tu.Src, tu.Dst, tu.Label, tu.TS)
		}
		oracle.Expire(tu.TS-50, nil)
		engine.Process(tu)
	}
	for _, b := range bad {
		t.Error(b)
	}
}

func TestRAPQIrrelevantLabelsDropped(t *testing.T) {
	a := bind(t, "a", "a", "b")
	e := NewRAPQ(a, window.Spec{Size: 10, Slide: 1})
	e.Process(stream.Tuple{TS: 1, Src: 1, Dst: 2, Label: 1}) // label b
	st := e.Stats()
	if st.TuplesDropped != 1 {
		t.Fatalf("TuplesDropped = %d, want 1", st.TuplesDropped)
	}
	if st.Edges != 0 {
		t.Fatalf("irrelevant edge stored: %d edges", st.Edges)
	}
}

func TestRAPQDeleteAbsentEdge(t *testing.T) {
	a := bind(t, "a", "a")
	e := NewRAPQ(a, window.Spec{Size: 10, Slide: 1})
	e.Process(stream.Tuple{TS: 1, Src: 1, Dst: 2, Label: 0, Op: stream.Delete})
	if st := e.Stats(); st.Edges != 0 || st.Trees != 0 {
		t.Fatalf("delete of absent edge mutated state: %+v", st)
	}
}

func TestRAPQTreeGC(t *testing.T) {
	a := bind(t, "a+", "a")
	e := NewRAPQ(a, window.Spec{Size: 5, Slide: 1})
	e.Process(stream.Tuple{TS: 1, Src: 1, Dst: 2, Label: 0})
	if st := e.Stats(); st.Trees != 1 {
		t.Fatalf("Trees = %d, want 1", st.Trees)
	}
	// Advance far beyond the window: everything must be reclaimed.
	e.Process(stream.Tuple{TS: 100, Src: 7, Dst: 8, Label: 0})
	e.Process(stream.Tuple{TS: 200, Src: 9, Dst: 10, Label: 0})
	st := e.Stats()
	if st.Trees != 1 { // only the t=200 tree remains
		t.Fatalf("Trees = %d, want 1 (old trees not reclaimed)", st.Trees)
	}
	if st.Edges != 1 {
		t.Fatalf("Edges = %d, want 1", st.Edges)
	}
}

func TestRAPQSelfLoop(t *testing.T) {
	a := bind(t, "a+", "a")
	sink := NewCollector()
	e := NewRAPQ(a, window.Spec{Size: 10, Slide: 1}, WithSink(sink))
	e.Process(stream.Tuple{TS: 1, Src: 1, Dst: 1, Label: 0})
	if _, ok := sink.Live[Pair{From: 1, To: 1}]; !ok {
		t.Fatal("self loop (1,1) not reported for a+")
	}
}

func TestRAPQDuplicateEdgeRefresh(t *testing.T) {
	a := bind(t, "a/b", "a", "b")
	sink := NewCollector()
	e := NewRAPQ(a, window.Spec{Size: 10, Slide: 1}, WithSink(sink))
	e.Process(stream.Tuple{TS: 1, Src: 1, Dst: 2, Label: 0})
	e.Process(stream.Tuple{TS: 5, Src: 2, Dst: 3, Label: 1})
	if _, ok := sink.Live[Pair{From: 1, To: 3}]; !ok {
		t.Fatal("(1,3) missing")
	}
	// Refresh the first edge; the path must now survive until t=21.
	e.Process(stream.Tuple{TS: 11, Src: 1, Dst: 2, Label: 0})
	e.Process(stream.Tuple{TS: 20, Src: 9, Dst: 9, Label: 0}) // advance time
	tx := e.trees[1]
	if tx == nil {
		t.Fatal("tree gone after refresh")
	}
	if ts, ok := tx.nodeTS(mkNodeKey(2, 1)); !ok || ts != 11 {
		t.Fatalf("(2,1) not refreshed: ts=%d ok=%v", ts, ok)
	}
}
