package core

import (
	"math/rand"
	"testing"

	"streamrpq/internal/stream"
	"streamrpq/internal/window"
)

// crossengine_test.go checks relationships that must hold *between*
// the engines on identical inputs, complementing the per-engine oracle
// tests.

// TestSimpleSubsetOfArbitrary: every simple-path result is also an
// arbitrary-path result (a simple path is a path), on random streams
// with expiry and deletions.
func TestSimpleSubsetOfArbitrary(t *testing.T) {
	for _, expr := range []string{"a*", "(a/b)+", "a/b*", "(a|b)+"} {
		rng := rand.New(rand.NewSource(1001))
		a := bind(t, expr, "a", "b")
		spec := window.Spec{Size: 25, Slide: 3}
		arbSink, simSink := NewCollector(), NewCollector()
		arb := NewRAPQ(a, spec, WithSink(arbSink))
		sim := NewRSPQ(a, spec, WithSink(simSink))
		for _, tu := range randomTuples(rng, 500, 9, 2, 2, 0.08) {
			arb.Process(tu)
			sim.Process(tu)
		}
		ap, sp := arbSink.Pairs(), simSink.Pairs()
		for p := range sp {
			if _, ok := ap[p]; !ok {
				t.Fatalf("%q: simple-path result %v missing under arbitrary semantics", expr, p)
			}
		}
		// The two semantics coincide for fixed-length queries shorter
		// than any possible vertex repetition... they do NOT in
		// general; only the subset relation is universal.
		if len(sp) > len(ap) {
			t.Fatalf("%q: simple results (%d) exceed arbitrary results (%d)", expr, len(sp), len(ap))
		}
	}
}

// TestEnginesAgreeOnDAGStreams: on acyclic graphs every path is
// simple, so the two engines must produce identical result sets.
// Acyclicity is enforced by only generating edges u -> v with u < v.
func TestEnginesAgreeOnDAGStreams(t *testing.T) {
	for _, expr := range []string{"(a/b)+", "a/b*", "a*", "a/b*/a"} {
		rng := rand.New(rand.NewSource(2002))
		a := bind(t, expr, "a", "b")
		spec := window.Spec{Size: 30, Slide: 1}
		arbSink, simSink := NewCollector(), NewCollector()
		arb := NewRAPQ(a, spec, WithSink(arbSink))
		sim := NewRSPQ(a, spec, WithSink(simSink))
		ts := int64(0)
		for i := 0; i < 500; i++ {
			ts += rng.Int63n(3)
			u := stream.VertexID(rng.Intn(9))
			v := stream.VertexID(rng.Intn(9))
			if u == v {
				continue
			}
			if u > v {
				u, v = v, u // topological edge direction: acyclic
			}
			tu := stream.Tuple{TS: ts, Src: u, Dst: v, Label: stream.LabelID(rng.Intn(2))}
			arb.Process(tu)
			sim.Process(tu)
		}
		ap, sp := arbSink.Pairs(), simSink.Pairs()
		if len(ap) != len(sp) {
			t.Fatalf("%q: arbitrary %d pairs, simple %d pairs on a DAG", expr, len(ap), len(sp))
		}
		for p := range ap {
			if _, ok := sp[p]; !ok {
				t.Fatalf("%q: pair %v missing under simple semantics on a DAG", expr, p)
			}
		}
	}
}

// TestEngineReuseAcrossEpochs: an engine must stay correct when the
// stream runs far past several full window turnovers (the benchmark
// harness wraps streams this way).
func TestEngineReuseAcrossEpochs(t *testing.T) {
	rng := rand.New(rand.NewSource(3003))
	a := bind(t, "(a/b)+", "a", "b")
	spec := window.Spec{Size: 10, Slide: 2}
	sink := NewCollector()
	e := NewRAPQ(a, spec, WithSink(sink))
	base := randomTuples(rng, 80, 6, 2, 1, 0)
	span := base[len(base)-1].TS + 1
	for epoch := int64(0); epoch < 5; epoch++ {
		for _, tu := range base {
			tu.TS += epoch * span
			e.Process(tu)
		}
		if err := e.CheckInvariants(); err != nil {
			t.Fatalf("epoch %d: %v", epoch, err)
		}
	}
	// The same graph content recurs each epoch, so the live window
	// state must be bounded, not accumulating.
	st := e.Stats()
	if st.Edges > len(base) {
		t.Fatalf("window holds %d edges after 5 epochs of an %d-tuple stream", st.Edges, len(base))
	}
	if st.ExpiryRuns == 0 {
		t.Fatal("no expiry runs across epochs")
	}
}

// TestRescanVsRSPQSoundness: the arbitrary-semantics rescan results
// must contain every RSPQ result too (transitivity of the subset
// relation through the batch oracle).
func TestStatsMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(4004))
	a := bind(t, "a/b*", "a", "b")
	e := NewRAPQ(a, window.Spec{Size: 20, Slide: 2})
	var lastSeen, lastResults int64
	for _, tu := range randomTuples(rng, 300, 8, 2, 2, 0.1) {
		e.Process(tu)
		st := e.Stats()
		if st.TuplesSeen < lastSeen || st.Results < lastResults {
			t.Fatal("monotone counters decreased")
		}
		if st.Nodes < 0 || st.Trees < 0 || st.Edges < 0 {
			t.Fatalf("negative sizes: %+v", st)
		}
		if st.Trees > 0 && st.Nodes < st.Trees {
			t.Fatalf("fewer nodes (%d) than trees (%d): every tree has a root", st.Nodes, st.Trees)
		}
		lastSeen, lastResults = st.TuplesSeen, st.Results
	}
}
