package core

import (
	"math"
	"sort"
	"time"

	"streamrpq/internal/automaton"
	"streamrpq/internal/graph"
	"streamrpq/internal/stream"
	"streamrpq/internal/window"
)

// rootTS is the timestamp of tree roots: the root represents the empty
// path, which never expires.
const rootTS = int64(math.MaxInt64)

// expiredTS marks nodes cut off by an explicit deletion (§3.2): it is
// below every window deadline, so the expiry pass treats them as
// expired candidates.
const expiredTS = int64(math.MinInt64)

// tree is one spanning tree Tx of the Δ index, rooted at (x, s0). The
// second invariant of Lemma 1 guarantees each (vertex,state) node
// appears at most once, so nodes are keyed by nodeKey; they live in a
// struct-of-arrays store (tree_store.go) and are addressed by slot on
// the hot paths.
type tree struct {
	root   stream.VertexID
	ns     treeStore
	vcount map[stream.VertexID]int32 // instances per vertex, for the inverted index

	// support counts the final-state witness nodes per result vertex
	// (the root node is excluded: it only witnesses the empty path).
	// A result pair (root, v) is live iff one of the counted witnesses
	// is inside the window; support[v] == 0 is the O(1) fast path for
	// "not live". Unlike the incidental tree shape, the witness set is
	// a pure function of the stream prefix, so every emission decision
	// made through it is canonical.
	support map[stream.VertexID]int32

	// preLive is non-nil only during one expiry/delete pass. It records,
	// for each vertex about to lose a final witness, whether the pair
	// (root, v) was live when the pass started — captured before any
	// pruning (for delete-marked subtrees: before the timestamps are
	// overwritten). It suppresses re-match emissions for pairs the pass
	// merely cuts and reconnects, and at the end of a delete the pairs
	// with preLive true that did not come back live are exactly the
	// canonical invalidation set.
	preLive map[stream.VertexID]bool
}

// RAPQ is the incremental engine for Regular Arbitrary Path Queries
// over sliding windows (Algorithm RAPQ, §3.1), with explicit-deletion
// support (Algorithm Delete, §3.2).
type RAPQ struct {
	a    *automaton.Bound
	g    *graph.Graph
	win  *window.Manager
	sink Sink

	trees map[stream.VertexID]*tree // Δ: root vertex -> spanning tree
	inv   *invIndex                 // vertex -> roots of trees containing it (striped)

	// rev[label] lists transitions grouped by target state for expiry
	// reconnection: rev[label][t] = states s with δ(s,label)=t.
	rev [][][]int32

	// finals lists the accepting states once, for the liveness scans.
	finals []int32

	// epoch is the graph epoch this engine's traversals read at (the
	// explicit epoch handle of the versioned snapshot graph). A
	// coordinator sets it per sub-batch via SetReadEpoch; standalone it
	// stays 0, matching the private graph's never-advanced epoch.
	epoch graph.Epoch

	now      int64 // largest timestamp seen
	deadline int64 // last expiry deadline (W^e - |W|)
	stats    Stats

	// scanAllTrees disables the inverted index (vertex → trees) and
	// makes every tuple visit every spanning tree, as a naive
	// implementation of the paper's pseudocode would ("foreach Tx ∈ Δ").
	// Exists for the ablation experiment; keep it off otherwise.
	scanAllTrees bool

	// Reused scratch buffers: the explicit DFS stack of the insert
	// cascade, the adjacency copies of the buffer-based traversal API
	// (graph.AppendOutAt/AppendInAt), the expiry candidate list and the
	// subtree-marking stack. Steady-state processing allocates nothing
	// per edge once these have grown (asserted by alloc_test.go).
	insertStack []insertOp
	outScratch  []graph.HalfEdge
	inScratch   []graph.HalfEdge
	candScratch []nodeKey
	slotScratch []int32
	rootScratch []stream.VertexID
}

// insertOp is one pending step of the insert cascade. parent is a
// treeStore slot: slots are stable for the duration of a cascade (no
// node is released mid-insert), which saves the key→slot probe the
// pointer-based representation paid per step.
type insertOp struct {
	parent int32
	v      stream.VertexID
	t      int32
	edgeTS int64
}

// NewRAPQ returns a RAPQ engine for the bound automaton and window
// specification.
func NewRAPQ(a *automaton.Bound, spec window.Spec, opts ...Option) *RAPQ {
	cfg := config{spec: spec, sink: discardSink{}}
	for _, o := range opts {
		o(&cfg)
	}
	rev := make([][][]int32, len(a.ByLabel))
	for l, trans := range a.ByLabel {
		if len(trans) == 0 {
			continue
		}
		byTarget := make([][]int32, a.K)
		for _, tr := range trans {
			byTarget[tr.To] = append(byTarget[tr.To], tr.From)
		}
		rev[l] = byTarget
	}
	var finals []int32
	for s := int32(0); s < int32(a.K); s++ {
		if a.Final[s] {
			finals = append(finals, s)
		}
	}
	return &RAPQ{
		a:            a,
		g:            graph.New(),
		win:          window.NewManager(spec),
		sink:         cfg.sink,
		trees:        make(map[stream.VertexID]*tree),
		inv:          newInvIndex(1),
		rev:          rev,
		finals:       finals,
		scanAllTrees: cfg.scanAllTrees,
	}
}

// Graph implements Engine.
func (e *RAPQ) Graph() *graph.Graph { return e.g }

// AttachGraph makes the engine index paths over a snapshot graph owned
// by a multi-query coordinator, which maintains it (inserts, deletes,
// expiry) exactly once for all member engines. Call before the first
// tuple.
func (e *RAPQ) AttachGraph(g *graph.Graph) { e.g = g }

// SetReadEpoch implements MemberEngine: subsequent traversals observe
// the shared graph at epoch ep.
func (e *RAPQ) SetReadEpoch(ep graph.Epoch) { e.epoch = ep }

// SetSink redirects the engine's result stream. A dynamically
// registered member swaps sinks exactly once, at activation: the
// bootstrap replay captures the window's live result set into a scratch
// sink, then the coordinator installs the real merge sink before the
// member sees its first stream tuple.
func (e *RAPQ) SetSink(s Sink) {
	if s == nil {
		s = discardSink{}
	}
	e.sink = s
}

// AlignClock implements MemberEngine.
func (e *RAPQ) AlignClock(now int64) {
	if now > e.now {
		e.now = now
	}
}

// BootstrapFromGraph builds the Δ index of a freshly created engine
// from the window content visible at epoch ep of g: the edges are
// replayed in canonical (TS, Src, Dst, Label) order through ApplyInsert,
// which reproduces the engine's canonical node timestamps and witness
// sets for the retained window — re-insertion refreshes and deleted
// edges have already been folded into the stored timestamps, and both
// folds agree with the max-min fixpoint an engine fed the full stream
// would have converged to. Matches emitted during the replay are the
// window's current live result set (they flow to the engine's sink);
// they correspond to results an engine registered from stream start
// would have emitted earlier, not to new stream tuples.
//
// The caller must hold a reader lease on ep (graph.AcquireEpoch) for
// the duration of the call if a writer may be advancing later epochs
// concurrently. The engine reads at ep until the next SetReadEpoch.
func (e *RAPQ) BootstrapFromGraph(g *graph.Graph, ep graph.Epoch) {
	e.g = g
	e.epoch = ep
	// Buffer-based sweep rather than the EdgesAt callback: this runs on
	// a background goroutine concurrent with the writer, and the dense
	// id upper bound (not Vertices) guarantees vertices whose edges are
	// visible only at the leased epoch ep are not skipped.
	var edges []graph.Edge
	var buf []graph.HalfEdge
	for v, n := stream.VertexID(0), g.VertexUpperBound(); v < n; v++ {
		buf = g.AppendOutAt(ep, v, buf[:0])
		for _, he := range buf {
			edges = append(edges, graph.Edge{Src: v, Dst: he.V, Label: he.L, TS: he.TS})
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		a, b := edges[i], edges[j]
		if a.TS != b.TS {
			return a.TS < b.TS
		}
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		if a.Dst != b.Dst {
			return a.Dst < b.Dst
		}
		return a.Label < b.Label
	})
	for _, ed := range edges {
		if !e.a.Relevant(int(ed.Label)) {
			continue
		}
		e.ApplyInsert(stream.Tuple{TS: ed.TS, Src: ed.Src, Dst: ed.Dst, Label: ed.Label})
	}
}

// RelevantLabel reports whether the label is in the query alphabet ΣQ;
// coordinators route tuples only to engines for which it is.
func (e *RAPQ) RelevantLabel(l stream.LabelID) bool { return e.a.Relevant(int(l)) }

// LabelSpace returns the size of the dense label space the automaton
// was bound against. All members of one coordinator must agree on it.
func (e *RAPQ) LabelSpace() int { return len(e.a.ByLabel) }

// Stats implements Engine.
func (e *RAPQ) Stats() Stats {
	s := e.stats
	s.Trees = len(e.trees)
	s.Nodes = 0
	for _, tx := range e.trees {
		s.Nodes += tx.ns.size()
	}
	s.Edges = e.g.NumEdges()
	s.Vertices = e.g.NumVertices()
	return s
}

// Now returns the largest stream timestamp processed so far.
func (e *RAPQ) Now() int64 { return e.now }

// Process implements Engine: Algorithm RAPQ for insertions, Algorithm
// Delete for negative tuples, with ExpiryRAPQ at slide boundaries.
func (e *RAPQ) Process(t stream.Tuple) {
	e.stats.TuplesSeen++
	if t.TS > e.now {
		e.now = t.TS
	}
	// Lazy expiration at slide boundaries (§2: eager evaluation, lazy
	// expiration).
	if deadline, due := e.win.Observe(t.TS); due {
		e.g.Expire(deadline, nil)
		e.ApplyExpiry(deadline)
	}
	// Drop tuples whose label is outside ΣQ: they can never be part of
	// a resulting path (§5.2).
	if !e.a.Relevant(int(t.Label)) {
		e.stats.TuplesDropped++
		return
	}
	if t.Op == stream.Delete {
		if e.g.Delete(t.Key()) {
			e.ApplyDelete(t)
		}
		return
	}
	e.g.Insert(t.Src, t.Dst, t.Label, t.TS)
	e.ApplyInsert(t)
}

// ApplyInsert is Algorithm RAPQ lines 3–13: it updates the Δ index for
// an inserted edge that is already present in the snapshot graph. Most
// callers use Process; the multi-query coordinator calls ApplyInsert
// directly after updating the shared graph once.
func (e *RAPQ) ApplyInsert(t stream.Tuple) {
	if t.TS > e.now {
		e.now = t.TS
	}
	validFrom := e.win.Spec().ValidFrom(e.now)

	// Lazily materialize the tree rooted at the source vertex if the
	// label moves the automaton out of the start state: Δ conceptually
	// holds a tree for every vertex, but only trees that can grow past
	// their root are represented.
	if e.a.Step(e.a.Start, int(t.Label)) != automaton.NoState {
		e.ensureTree(t.Src)
	}

	// Snapshot the candidate trees: insertion cascades may add this
	// vertex to further trees, but those cascades already see the new
	// edge in the graph, so they need no re-processing here. With the
	// inverted index disabled (ablation), every tree is a candidate.
	e.rootScratch = e.rootScratch[:0]
	if e.scanAllTrees {
		for root := range e.trees {
			e.rootScratch = append(e.rootScratch, root)
		}
	} else {
		e.rootScratch = e.inv.appendRoots(t.Src, e.rootScratch)
	}

	for _, root := range e.rootScratch {
		tx := e.trees[root]
		if tx == nil {
			continue
		}
		for _, tr := range e.a.ByLabel[t.Label] {
			pslot := tx.ns.lookup(mkNodeKey(t.Src, tr.From))
			if pslot < 0 || tx.ns.ts[pslot] <= validFrom {
				continue // line 6: parent must be in the window
			}
			e.insert(tx, pslot, t.Dst, tr.To, t.TS, validFrom)
		}
	}
}

// ensureTree materializes Tx with its root node (x, s0).
func (e *RAPQ) ensureTree(x stream.VertexID) *tree {
	if tx, ok := e.trees[x]; ok {
		return tx
	}
	tx := &tree{
		root:    x,
		vcount:  make(map[stream.VertexID]int32),
		support: make(map[stream.VertexID]int32),
	}
	tx.ns.init()
	slot := tx.ns.alloc(mkNodeKey(x, e.a.Start), rootTS, 0)
	tx.ns.parent[slot] = slot // root parent: self-sentinel
	tx.vcount[x] = 1
	e.trees[x] = tx
	e.addInv(x, x)
	// A start state that is also final means the empty path matches;
	// RPQ answers are conventionally over paths of length ≥ 1, and
	// (x,x) via ε is reported by neither the paper nor this engine.
	return tx
}

func (e *RAPQ) addInv(v, root stream.VertexID) { e.inv.add(v, root) }

func (e *RAPQ) dropInv(v, root stream.VertexID) { e.inv.drop(v, root) }

// isLive reports whether the result pair (tx.root, v) is currently
// live: some final-state witness node for v sits inside the window.
// Stale witnesses (lazy expiry leaves them in the tree until the next
// slide boundary) do not count, and neither does the root node. The
// witness set — unlike the tree shape — is canonical, so liveness is a
// pure function of the stream prefix.
func (e *RAPQ) isLive(tx *tree, v stream.VertexID, validFrom int64) bool {
	if tx.support[v] == 0 {
		return false
	}
	for _, s := range e.finals {
		if v == tx.root && s == e.a.Start {
			continue // the root witnesses only the empty path
		}
		if slot := tx.ns.lookup(mkNodeKey(v, s)); slot >= 0 && tx.ns.ts[slot] > validFrom {
			return true
		}
	}
	return false
}

// insert is Algorithm Insert, run with an explicit stack. It adds
// (v,t) to tx as a child of the node in slot parent (or improves its
// timestamp and re-parents it), reports results for final states, and
// expands the node's out-edges transitively. Expansion goes through
// graph.AppendOutAt into a reused buffer: the adjacency copy is taken
// once under the graph's stripe lock, then consumed lock-free with no
// per-edge closure or map lookup.
//
// Deviation from the paper (documented in DESIGN.md): timestamp
// improvements of existing nodes are propagated recursively rather than
// left to the expiry pass; propagation is guarded by a strict timestamp
// increase, so total work stays within the amortized bound. Strictness
// also keeps the tree acyclic under re-parenting: a descendant's
// timestamp never strictly exceeds an ancestor's, so an improvement
// offer can never re-parent a node under its own descendant. Node
// timestamps converge to the max-min fixpoint over the window content
// (every node's timestamp witness is its tree path, and every
// improvement is propagated), so timestamps — unlike the incidental
// tree shape — are a pure function of the stream prefix. The sharded
// multi-query coordinator relies on that canonicity for deterministic
// result streams.
func (e *RAPQ) insert(tx *tree, parent int32, v stream.VertexID, t int32, edgeTS int64, validFrom int64) {
	ns := &tx.ns
	stack := e.insertStack[:0]
	stack = append(stack, insertOp{parent: parent, v: v, t: t, edgeTS: edgeTS})

	for len(stack) > 0 {
		op := stack[len(stack)-1]
		stack = stack[:len(stack)-1]

		newTS := min(op.edgeTS, ns.ts[op.parent])
		key := mkNodeKey(op.v, op.t)
		slot := ns.lookup(key)
		if slot >= 0 && ns.ts[slot] >= newTS {
			continue // line 7/9: no improvement possible
		}
		e.stats.InsertCalls++

		if slot >= 0 {
			// A stale witness re-entering the window flips the pair
			// (root, v) live again; under lazy expiry this refresh is
			// the only trace of that transition, so it must emit here
			// exactly when no other in-window witness already covers it.
			if e.a.Final[op.t] && ns.ts[slot] <= validFrom && newTS > validFrom &&
				!tx.preLive[op.v] && !e.isLive(tx, op.v, validFrom) {
				e.emit(tx.root, op.v)
			}
			// Timestamp refresh: re-parent to the fresher path.
			ns.detach(slot)
			ns.ts[slot] = newTS
			ns.parent[slot] = op.parent
			ns.attach(op.parent, slot)
		} else {
			wasLive := false
			if e.a.Final[op.t] {
				wasLive = tx.preLive[op.v] || e.isLive(tx, op.v, validFrom)
			}
			slot = ns.alloc(key, newTS, op.parent)
			ns.attach(op.parent, slot)
			tx.vcount[op.v]++
			if tx.vcount[op.v] == 1 {
				e.addInv(op.v, tx.root)
			}
			if e.a.Final[op.t] {
				tx.support[op.v]++
				if newTS > validFrom && !wasLive {
					e.emit(tx.root, op.v) // line 6 of Insert: (root, v) went live
				}
			}
		}

		// Lines 8–10: expand out-edges of v that are inside the window.
		// The traversal reads at the engine's epoch handle (sub-batch
		// granularity); within the sub-batch the graph still runs ahead
		// of the tuple being applied, so edges with ts > e.now have not
		// arrived yet from this engine's point of view and are skipped.
		// Sequentially both filters are vacuous (epoch 0, no edge
		// outruns the stream clock). The scratch buffer is fully
		// consumed into stack pushes before the next AppendOutAt reuses
		// it.
		e.outScratch = e.g.AppendOutAt(e.epoch, op.v, e.outScratch[:0])
		nodeTS := ns.ts[slot]
		for _, he := range e.outScratch {
			if he.TS <= validFrom || he.TS > e.now {
				continue // expired or not-yet-arrived: not in W_{G,τ}
			}
			if he.L < 0 || int(he.L) >= len(e.a.ByLabel) {
				continue // label bound after this member: outside its ΣQ
			}
			q := e.a.Trans[op.t][he.L]
			if q == automaton.NoState {
				continue
			}
			childTS := min(nodeTS, he.TS)
			if cs := ns.lookup(mkNodeKey(he.V, q)); cs < 0 || ns.ts[cs] < childTS {
				stack = append(stack, insertOp{parent: slot, v: he.V, t: q, edgeTS: he.TS})
			}
		}
	}
	e.insertStack = stack[:0]
}

// remove deletes the node in slot from the tree entirely, maintaining
// the inverted index and the per-vertex witness support counts.
func (e *RAPQ) remove(tx *tree, slot int32) {
	ns := &tx.ns
	key := ns.keys[slot]
	v, s := key.vertex(), key.state()
	ns.detach(slot)
	ns.release(slot)
	if e.a.Final[s] && !(v == tx.root && s == e.a.Start) {
		if tx.support[v]--; tx.support[v] == 0 {
			delete(tx.support, v)
		}
	}
	tx.vcount[v]--
	if tx.vcount[v] == 0 {
		delete(tx.vcount, v)
		e.dropInv(v, tx.root)
	}
}

// emit reports a result pair.
func (e *RAPQ) emit(x, v stream.VertexID) {
	e.stats.Results++
	e.sink.OnMatch(Match{From: x, To: v, TS: e.now})
}

// ApplyExpiry runs ExpiryRAPQ over every tree for a slide-boundary
// deadline. The caller is responsible for expiring the snapshot graph
// first (Process does; the multi-query coordinator expires the shared
// graph once).
func (e *RAPQ) ApplyExpiry(deadline int64) {
	start := time.Now()
	e.stats.ExpiryRuns++
	e.deadline = deadline
	for root, tx := range e.trees {
		e.expireTree(tx, deadline, false)
		if tx.ns.size() == 1 { // root-only: no valid start edge remains
			e.remove(tx, tx.ns.lookup(mkNodeKey(root, e.a.Start)))
			delete(e.trees, root)
		}
	}
	e.stats.ExpiryTime += time.Since(start)
}

// expireTree is Algorithm ExpiryRAPQ for one spanning tree.
func (e *RAPQ) expireTree(tx *tree, deadline int64, invalidate bool) {
	ns := &tx.ns
	// Line 2: candidates with out-of-window timestamps. A child's
	// timestamp never exceeds its parent's, so candidates form whole
	// subtrees.
	candidates := e.candScratch[:0]
	for slot := int32(0); slot < int32(len(ns.keys)); slot++ {
		if !ns.live(slot) || ns.ts[slot] > deadline {
			continue
		}
		key := ns.keys[slot]
		candidates = append(candidates, key)
		// Record, before any pruning, whether each pair about to
		// lose a final witness was live when the pass started.
		// Delete-marked subtrees were recorded by markSubtree while
		// their timestamps were still intact; everything else is
		// genuinely stale and recorded here.
		if e.a.Final[key.state()] {
			if _, seen := tx.preLive[key.vertex()]; !seen {
				if tx.preLive == nil {
					tx.preLive = make(map[stream.VertexID]bool)
				}
				tx.preLive[key.vertex()] = e.isLive(tx, key.vertex(), deadline)
			}
		}
	}
	if len(candidates) == 0 {
		e.candScratch = candidates
		tx.preLive = nil
		return
	}
	// Canonical candidate order: the reconnection below converges to the
	// same witness set and timestamps in any order, but visiting keys in
	// sorted order makes the sequential emission order within the pass a
	// pure function of the stream as well. (Slot order is mutation-
	// history order, which sub-batch pipelining does not canonicalize.)
	sort.Slice(candidates, func(i, j int) bool { return candidates[i] < candidates[j] })
	// Line 3: prune all candidates from the tree. Every release happens
	// before any reconnection insert allocates, so slots never dangle.
	for _, key := range candidates {
		e.remove(tx, ns.lookup(key))
	}
	// Lines 4–9: try to reconnect each candidate through a valid edge
	// from a valid node. Insert re-adds reachable descendants with
	// fresh timestamps. Every candidate's full in-neighbourhood is
	// scanned — even if an earlier candidate's cascade already re-added
	// it — and the maximal offer is presented to Insert, so each
	// reconnected node ends at its canonical max-min timestamp
	// regardless of the order candidates are visited in. (Offers from
	// parents that are themselves re-added later arrive through those
	// parents' improvement cascades.)
	byTarget := e.rev // rev[label][t] = sources
	for _, key := range candidates {
		v, t := key.vertex(), key.state()
		bestParent := int32(-1)
		var bestKey nodeKey
		var bestEdgeTS, bestTS int64
		e.inScratch = e.g.AppendInAt(e.epoch, v, e.inScratch[:0])
		for _, he := range e.inScratch {
			if he.TS <= deadline || he.TS > e.now {
				continue // expired, or not yet arrived (batched graph)
			}
			if he.L < 0 || int(he.L) >= len(byTarget) {
				continue // label bound after this member: outside its ΣQ
			}
			rt := byTarget[he.L]
			if rt == nil {
				continue
			}
			for _, s := range rt[t] {
				pk := mkNodeKey(he.V, s)
				pslot := ns.lookup(pk)
				if pslot < 0 || ns.ts[pslot] <= deadline {
					continue
				}
				offer := min(he.TS, ns.ts[pslot])
				if bestParent < 0 || offer > bestTS ||
					(offer == bestTS && pk < bestKey) {
					bestParent, bestKey, bestEdgeTS, bestTS = pslot, pk, he.TS, offer
				}
			}
		}
		if bestParent >= 0 {
			e.insert(tx, bestParent, v, t, bestEdgeTS, deadline)
		}
	}
	e.candScratch = candidates[:0]
	// Lines 11–15, canonicalized: a pair (x,v) is retracted exactly when
	// it was live before the deletion and no in-window final witness
	// survived pruning + reconnection. The decision depends only on the
	// canonical witness set, never on which nodes the incidental tree
	// shape happened to route the deletion through — deleting a non-tree
	// edge can never make a witness unreachable (if it could, the tree
	// path would use the deleted edge too), so the invalidation stream is
	// a pure function of the input stream. Window expiry (invalidate ==
	// false) retracts nothing: results carry implicit window semantics.
	if invalidate && len(tx.preLive) > 0 {
		vs := make([]stream.VertexID, 0, len(tx.preLive))
		for v, was := range tx.preLive {
			if was {
				vs = append(vs, v)
			}
		}
		sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
		for _, v := range vs {
			if e.isLive(tx, v, deadline) {
				continue
			}
			e.stats.Invalidations++
			e.sink.OnInvalidate(Match{From: tx.root, To: v, TS: e.now})
		}
	}
	tx.preLive = nil
}

// ApplyDelete is Algorithm Delete (§3.2): explicit deletion via the
// expiry machinery. The edge must already have been removed from the
// snapshot graph (Process does this; the multi-query coordinator
// removes it from the shared graph once).
func (e *RAPQ) ApplyDelete(t stream.Tuple) {
	if t.TS > e.now {
		e.now = t.TS
	}
	validFrom := e.win.Spec().ValidFrom(e.now)

	e.rootScratch = e.inv.appendRoots(t.Src, e.rootScratch[:0])
	for _, root := range e.rootScratch {
		tx := e.trees[root]
		if tx == nil {
			continue
		}
		ns := &tx.ns
		touched := false
		rootKey := mkNodeKey(tx.root, e.a.Start)
		// Lines 2–8: find tree edges matching the deleted edge and mark
		// their subtrees as expired.
		for _, tr := range e.a.ByLabel[t.Label] {
			childKey := mkNodeKey(t.Dst, tr.To)
			if childKey == rootKey {
				continue // the root has no incoming tree edge (its
				// parent pointer is a self-sentinel)
			}
			childSlot := ns.lookup(childKey)
			if childSlot < 0 {
				continue
			}
			pslot := ns.lookup(mkNodeKey(t.Src, tr.From))
			if pslot < 0 || ns.parent[childSlot] != pslot {
				continue // not a tree edge w.r.t. Tx (Definition 13)
			}
			e.markSubtree(tx, childSlot, validFrom)
			touched = true
		}
		if !touched {
			continue // deleting a non-tree edge leaves Tx unchanged
		}
		// Line 9: uniform handling through ExpiryRAPQ.
		e.expireTree(tx, validFrom, true)
		if ns.size() == 1 {
			e.remove(tx, ns.lookup(rootKey))
			delete(e.trees, root)
		}
	}
}

// markSubtree sets the timestamps of the subtree rooted at slot to -∞,
// marking every node in it as expired (Algorithm Delete lines 4–7).
// Before overwriting a final witness's timestamp it records whether its
// pair was live, so the invalidation pass of expireTree decides against
// the pre-deletion window state rather than the clobbered one.
func (e *RAPQ) markSubtree(tx *tree, slot int32, validFrom int64) {
	ns := &tx.ns
	stack := append(e.slotScratch[:0], slot)
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		key := ns.keys[s]
		if e.a.Final[key.state()] {
			if _, seen := tx.preLive[key.vertex()]; !seen {
				if tx.preLive == nil {
					tx.preLive = make(map[stream.VertexID]bool)
				}
				tx.preLive[key.vertex()] = e.isLive(tx, key.vertex(), validFrom)
			}
		}
		ns.ts[s] = expiredTS
		for c := ns.firstChild[s]; c >= 0; c = ns.nextSib[c] {
			stack = append(stack, c)
		}
	}
	e.slotScratch = stack[:0]
}

var _ Engine = (*RAPQ)(nil)
