package core

import (
	"math"
	"sort"
	"time"

	"streamrpq/internal/automaton"
	"streamrpq/internal/graph"
	"streamrpq/internal/stream"
	"streamrpq/internal/window"
)

// rootTS is the timestamp of tree roots: the root represents the empty
// path, which never expires.
const rootTS = int64(math.MaxInt64)

// expiredTS marks nodes cut off by an explicit deletion (§3.2): it is
// below every window deadline, so the expiry pass treats them as
// expired candidates.
const expiredTS = int64(math.MinInt64)

// treeNode is a node (vertex, state) of a spanning tree Tx ∈ Δ. Its
// timestamp is the minimum edge timestamp along the tree path from the
// root (Definition 9's path timestamp).
type treeNode struct {
	v        stream.VertexID
	s        int32
	ts       int64
	parent   nodeKey
	children map[nodeKey]struct{}
}

// tree is one spanning tree Tx of the Δ index, rooted at (x, s0). The
// second invariant of Lemma 1 guarantees each (vertex,state) node
// appears at most once, so nodes are keyed by nodeKey.
type tree struct {
	root   stream.VertexID
	nodes  map[nodeKey]*treeNode
	vcount map[stream.VertexID]int32 // instances per vertex, for the inverted index

	// support counts the final-state witness nodes per result vertex
	// (the root node is excluded: it only witnesses the empty path).
	// A result pair (root, v) is live iff one of the counted witnesses
	// is inside the window; support[v] == 0 is the O(1) fast path for
	// "not live". Unlike the incidental tree shape, the witness set is
	// a pure function of the stream prefix, so every emission decision
	// made through it is canonical.
	support map[stream.VertexID]int32

	// preLive is non-nil only during one expiry/delete pass. It records,
	// for each vertex about to lose a final witness, whether the pair
	// (root, v) was live when the pass started — captured before any
	// pruning (for delete-marked subtrees: before the timestamps are
	// overwritten). It suppresses re-match emissions for pairs the pass
	// merely cuts and reconnects, and at the end of a delete the pairs
	// with preLive true that did not come back live are exactly the
	// canonical invalidation set.
	preLive map[stream.VertexID]bool
}

// RAPQ is the incremental engine for Regular Arbitrary Path Queries
// over sliding windows (Algorithm RAPQ, §3.1), with explicit-deletion
// support (Algorithm Delete, §3.2).
type RAPQ struct {
	a    *automaton.Bound
	g    *graph.Graph
	win  *window.Manager
	sink Sink

	trees map[stream.VertexID]*tree // Δ: root vertex -> spanning tree
	inv   *invIndex                 // vertex -> roots of trees containing it (striped)

	// rev[label] lists transitions grouped by target state for expiry
	// reconnection: rev[label][t] = states s with δ(s,label)=t.
	rev [][][]int32

	// finals lists the accepting states once, for the liveness scans.
	finals []int32

	// epoch is the graph epoch this engine's traversals read at (the
	// explicit epoch handle of the versioned snapshot graph). A
	// coordinator sets it per sub-batch via SetReadEpoch; standalone it
	// stays 0, matching the private graph's never-advanced epoch.
	epoch graph.Epoch

	now      int64 // largest timestamp seen
	deadline int64 // last expiry deadline (W^e - |W|)
	stats    Stats

	// scanAllTrees disables the inverted index (vertex → trees) and
	// makes every tuple visit every spanning tree, as a naive
	// implementation of the paper's pseudocode would ("foreach Tx ∈ Δ").
	// Exists for the ablation experiment; keep it off otherwise.
	scanAllTrees bool

	// insertStack is reused across tuples to avoid per-tuple
	// allocation of the explicit DFS stack.
	insertStack []insertOp
	// scratch root ids snapshot
	rootScratch []stream.VertexID
}

type insertOp struct {
	parent nodeKey
	v      stream.VertexID
	t      int32
	edgeTS int64
}

// NewRAPQ returns a RAPQ engine for the bound automaton and window
// specification.
func NewRAPQ(a *automaton.Bound, spec window.Spec, opts ...Option) *RAPQ {
	cfg := config{spec: spec, sink: discardSink{}}
	for _, o := range opts {
		o(&cfg)
	}
	rev := make([][][]int32, len(a.ByLabel))
	for l, trans := range a.ByLabel {
		if len(trans) == 0 {
			continue
		}
		byTarget := make([][]int32, a.K)
		for _, tr := range trans {
			byTarget[tr.To] = append(byTarget[tr.To], tr.From)
		}
		rev[l] = byTarget
	}
	var finals []int32
	for s := int32(0); s < int32(a.K); s++ {
		if a.Final[s] {
			finals = append(finals, s)
		}
	}
	return &RAPQ{
		a:            a,
		g:            graph.New(),
		win:          window.NewManager(spec),
		sink:         cfg.sink,
		trees:        make(map[stream.VertexID]*tree),
		inv:          newInvIndex(1),
		rev:          rev,
		finals:       finals,
		scanAllTrees: cfg.scanAllTrees,
	}
}

// Graph implements Engine.
func (e *RAPQ) Graph() *graph.Graph { return e.g }

// AttachGraph makes the engine index paths over a snapshot graph owned
// by a multi-query coordinator, which maintains it (inserts, deletes,
// expiry) exactly once for all member engines. Call before the first
// tuple.
func (e *RAPQ) AttachGraph(g *graph.Graph) { e.g = g }

// SetReadEpoch implements MemberEngine: subsequent traversals observe
// the shared graph at epoch ep.
func (e *RAPQ) SetReadEpoch(ep graph.Epoch) { e.epoch = ep }

// SetSink redirects the engine's result stream. A dynamically
// registered member swaps sinks exactly once, at activation: the
// bootstrap replay captures the window's live result set into a scratch
// sink, then the coordinator installs the real merge sink before the
// member sees its first stream tuple.
func (e *RAPQ) SetSink(s Sink) {
	if s == nil {
		s = discardSink{}
	}
	e.sink = s
}

// AlignClock implements MemberEngine.
func (e *RAPQ) AlignClock(now int64) {
	if now > e.now {
		e.now = now
	}
}

// BootstrapFromGraph builds the Δ index of a freshly created engine
// from the window content visible at epoch ep of g: the edges are
// replayed in canonical (TS, Src, Dst, Label) order through ApplyInsert,
// which reproduces the engine's canonical node timestamps and witness
// sets for the retained window — re-insertion refreshes and deleted
// edges have already been folded into the stored timestamps, and both
// folds agree with the max-min fixpoint an engine fed the full stream
// would have converged to. Matches emitted during the replay are the
// window's current live result set (they flow to the engine's sink);
// they correspond to results an engine registered from stream start
// would have emitted earlier, not to new stream tuples.
//
// The caller must hold a reader lease on ep (graph.AcquireEpoch) for
// the duration of the call if a writer may be advancing later epochs
// concurrently. The engine reads at ep until the next SetReadEpoch.
func (e *RAPQ) BootstrapFromGraph(g *graph.Graph, ep graph.Epoch) {
	e.g = g
	e.epoch = ep
	var edges []graph.Edge
	g.EdgesAt(ep, func(ed graph.Edge) bool {
		edges = append(edges, ed)
		return true
	})
	sort.Slice(edges, func(i, j int) bool {
		a, b := edges[i], edges[j]
		if a.TS != b.TS {
			return a.TS < b.TS
		}
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		if a.Dst != b.Dst {
			return a.Dst < b.Dst
		}
		return a.Label < b.Label
	})
	for _, ed := range edges {
		if !e.a.Relevant(int(ed.Label)) {
			continue
		}
		e.ApplyInsert(stream.Tuple{TS: ed.TS, Src: ed.Src, Dst: ed.Dst, Label: ed.Label})
	}
}

// RelevantLabel reports whether the label is in the query alphabet ΣQ;
// coordinators route tuples only to engines for which it is.
func (e *RAPQ) RelevantLabel(l stream.LabelID) bool { return e.a.Relevant(int(l)) }

// LabelSpace returns the size of the dense label space the automaton
// was bound against. All members of one coordinator must agree on it.
func (e *RAPQ) LabelSpace() int { return len(e.a.ByLabel) }

// Stats implements Engine.
func (e *RAPQ) Stats() Stats {
	s := e.stats
	s.Trees = len(e.trees)
	s.Nodes = 0
	for _, tx := range e.trees {
		s.Nodes += len(tx.nodes)
	}
	s.Edges = e.g.NumEdges()
	s.Vertices = e.g.NumVertices()
	return s
}

// Now returns the largest stream timestamp processed so far.
func (e *RAPQ) Now() int64 { return e.now }

// Process implements Engine: Algorithm RAPQ for insertions, Algorithm
// Delete for negative tuples, with ExpiryRAPQ at slide boundaries.
func (e *RAPQ) Process(t stream.Tuple) {
	e.stats.TuplesSeen++
	if t.TS > e.now {
		e.now = t.TS
	}
	// Lazy expiration at slide boundaries (§2: eager evaluation, lazy
	// expiration).
	if deadline, due := e.win.Observe(t.TS); due {
		e.g.Expire(deadline, nil)
		e.ApplyExpiry(deadline)
	}
	// Drop tuples whose label is outside ΣQ: they can never be part of
	// a resulting path (§5.2).
	if !e.a.Relevant(int(t.Label)) {
		e.stats.TuplesDropped++
		return
	}
	if t.Op == stream.Delete {
		if e.g.Delete(t.Key()) {
			e.ApplyDelete(t)
		}
		return
	}
	e.g.Insert(t.Src, t.Dst, t.Label, t.TS)
	e.ApplyInsert(t)
}

// ApplyInsert is Algorithm RAPQ lines 3–13: it updates the Δ index for
// an inserted edge that is already present in the snapshot graph. Most
// callers use Process; the multi-query coordinator calls ApplyInsert
// directly after updating the shared graph once.
func (e *RAPQ) ApplyInsert(t stream.Tuple) {
	if t.TS > e.now {
		e.now = t.TS
	}
	validFrom := e.win.Spec().ValidFrom(e.now)

	// Lazily materialize the tree rooted at the source vertex if the
	// label moves the automaton out of the start state: Δ conceptually
	// holds a tree for every vertex, but only trees that can grow past
	// their root are represented.
	if e.a.Step(e.a.Start, int(t.Label)) != automaton.NoState {
		e.ensureTree(t.Src)
	}

	// Snapshot the candidate trees: insertion cascades may add this
	// vertex to further trees, but those cascades already see the new
	// edge in the graph, so they need no re-processing here. With the
	// inverted index disabled (ablation), every tree is a candidate.
	e.rootScratch = e.rootScratch[:0]
	if e.scanAllTrees {
		for root := range e.trees {
			e.rootScratch = append(e.rootScratch, root)
		}
	} else {
		e.rootScratch = e.inv.appendRoots(t.Src, e.rootScratch)
	}

	for _, root := range e.rootScratch {
		tx := e.trees[root]
		if tx == nil {
			continue
		}
		for _, tr := range e.a.ByLabel[t.Label] {
			parent, ok := tx.nodes[mkNodeKey(t.Src, tr.From)]
			if !ok || parent.ts <= validFrom {
				continue // line 6: parent must be in the window
			}
			e.insert(tx, parent, t.Dst, tr.To, t.TS, validFrom)
		}
	}
}

// ensureTree materializes Tx with its root node (x, s0).
func (e *RAPQ) ensureTree(x stream.VertexID) *tree {
	if tx, ok := e.trees[x]; ok {
		return tx
	}
	tx := &tree{
		root:    x,
		nodes:   make(map[nodeKey]*treeNode),
		vcount:  make(map[stream.VertexID]int32),
		support: make(map[stream.VertexID]int32),
	}
	rk := mkNodeKey(x, e.a.Start)
	tx.nodes[rk] = &treeNode{v: x, s: e.a.Start, ts: rootTS, parent: rk}
	tx.vcount[x] = 1
	e.trees[x] = tx
	e.addInv(x, x)
	// A start state that is also final means the empty path matches;
	// RPQ answers are conventionally over paths of length ≥ 1, and
	// (x,x) via ε is reported by neither the paper nor this engine.
	return tx
}

func (e *RAPQ) addInv(v, root stream.VertexID) { e.inv.add(v, root) }

func (e *RAPQ) dropInv(v, root stream.VertexID) { e.inv.drop(v, root) }

// isLive reports whether the result pair (tx.root, v) is currently
// live: some final-state witness node for v sits inside the window.
// Stale witnesses (lazy expiry leaves them in the tree until the next
// slide boundary) do not count, and neither does the root node. The
// witness set — unlike the tree shape — is canonical, so liveness is a
// pure function of the stream prefix.
func (e *RAPQ) isLive(tx *tree, v stream.VertexID, validFrom int64) bool {
	if tx.support[v] == 0 {
		return false
	}
	for _, s := range e.finals {
		if v == tx.root && s == e.a.Start {
			continue // the root witnesses only the empty path
		}
		if n, ok := tx.nodes[mkNodeKey(v, s)]; ok && n.ts > validFrom {
			return true
		}
	}
	return false
}

// insert is Algorithm Insert, run with an explicit stack. It adds
// (v,t) to tx as a child of parent (or improves its timestamp and
// re-parents it), reports results for final states, and expands the
// node's out-edges transitively.
//
// Deviation from the paper (documented in DESIGN.md): timestamp
// improvements of existing nodes are propagated recursively rather than
// left to the expiry pass; propagation is guarded by a strict timestamp
// increase, so total work stays within the amortized bound. Strictness
// also keeps the tree acyclic under re-parenting: a descendant's
// timestamp never strictly exceeds an ancestor's, so an improvement
// offer can never re-parent a node under its own descendant. Node
// timestamps converge to the max-min fixpoint over the window content
// (every node's timestamp witness is its tree path, and every
// improvement is propagated), so timestamps — unlike the incidental
// tree shape — are a pure function of the stream prefix. The sharded
// multi-query coordinator relies on that canonicity for deterministic
// result streams.
func (e *RAPQ) insert(tx *tree, parent *treeNode, v stream.VertexID, t int32, edgeTS int64, validFrom int64) {
	stack := e.insertStack[:0]
	stack = append(stack, insertOp{parent: mkNodeKey(parent.v, parent.s), v: v, t: t, edgeTS: edgeTS})

	for len(stack) > 0 {
		op := stack[len(stack)-1]
		stack = stack[:len(stack)-1]

		par := tx.nodes[op.parent]
		if par == nil {
			continue
		}
		newTS := min(op.edgeTS, par.ts)
		key := mkNodeKey(op.v, op.t)
		node, exists := tx.nodes[key]
		if exists && node.ts >= newTS {
			continue // line 7/9: no improvement possible
		}
		e.stats.InsertCalls++

		if exists {
			// A stale witness re-entering the window flips the pair
			// (root, v) live again; under lazy expiry this refresh is
			// the only trace of that transition, so it must emit here
			// exactly when no other in-window witness already covers it.
			if e.a.Final[op.t] && node.ts <= validFrom && newTS > validFrom &&
				!tx.preLive[op.v] && !e.isLive(tx, op.v, validFrom) {
				e.emit(tx.root, op.v)
			}
			// Timestamp refresh: re-parent to the fresher path.
			e.detach(tx, node)
			node.ts = newTS
			node.parent = op.parent
			e.attach(par, key)
		} else {
			wasLive := false
			if e.a.Final[op.t] {
				wasLive = tx.preLive[op.v] || e.isLive(tx, op.v, validFrom)
			}
			node = &treeNode{v: op.v, s: op.t, ts: newTS, parent: op.parent}
			tx.nodes[key] = node
			e.attach(par, key)
			tx.vcount[op.v]++
			if tx.vcount[op.v] == 1 {
				e.addInv(op.v, tx.root)
			}
			if e.a.Final[op.t] {
				tx.support[op.v]++
				if newTS > validFrom && !wasLive {
					e.emit(tx.root, op.v) // line 6 of Insert: (root, v) went live
				}
			}
		}

		// Lines 8–10: expand out-edges of v that are inside the window.
		// The traversal reads at the engine's epoch handle (sub-batch
		// granularity); within the sub-batch the graph still runs ahead
		// of the tuple being applied, so edges with ts > e.now have not
		// arrived yet from this engine's point of view and are skipped.
		// Sequentially both filters are vacuous (epoch 0, no edge
		// outruns the stream clock).
		e.g.OutAt(e.epoch, op.v, func(w stream.VertexID, l stream.LabelID, ts int64) bool {
			if ts <= validFrom || ts > e.now {
				return true // expired or not-yet-arrived: not in W_{G,τ}
			}
			if l < 0 || int(l) >= len(e.a.ByLabel) {
				return true // label bound after this member: outside its ΣQ
			}
			q := e.a.Trans[op.t][l]
			if q == automaton.NoState {
				return true
			}
			childTS := min(node.ts, ts)
			if child, ok := tx.nodes[mkNodeKey(w, q)]; !ok || child.ts < childTS {
				stack = append(stack, insertOp{parent: key, v: w, t: q, edgeTS: ts})
			}
			return true
		})
	}
	e.insertStack = stack[:0]
}

func (e *RAPQ) attach(parent *treeNode, child nodeKey) {
	if parent.children == nil {
		parent.children = make(map[nodeKey]struct{})
	}
	parent.children[child] = struct{}{}
}

// detach unlinks node from its current parent (the node stays in the
// tree maps).
func (e *RAPQ) detach(tx *tree, node *treeNode) {
	if par := tx.nodes[node.parent]; par != nil {
		delete(par.children, mkNodeKey(node.v, node.s))
	}
}

// remove deletes the node from the tree entirely, maintaining the
// inverted index and the per-vertex witness support counts.
func (e *RAPQ) remove(tx *tree, key nodeKey, node *treeNode) {
	e.detach(tx, node)
	delete(tx.nodes, key)
	if e.a.Final[node.s] && !(node.v == tx.root && node.s == e.a.Start) {
		if tx.support[node.v]--; tx.support[node.v] == 0 {
			delete(tx.support, node.v)
		}
	}
	tx.vcount[node.v]--
	if tx.vcount[node.v] == 0 {
		delete(tx.vcount, node.v)
		e.dropInv(node.v, tx.root)
	}
}

// emit reports a result pair.
func (e *RAPQ) emit(x, v stream.VertexID) {
	e.stats.Results++
	e.sink.OnMatch(Match{From: x, To: v, TS: e.now})
}

// ApplyExpiry runs ExpiryRAPQ over every tree for a slide-boundary
// deadline. The caller is responsible for expiring the snapshot graph
// first (Process does; the multi-query coordinator expires the shared
// graph once).
func (e *RAPQ) ApplyExpiry(deadline int64) {
	start := time.Now()
	e.stats.ExpiryRuns++
	e.deadline = deadline
	for root, tx := range e.trees {
		e.expireTree(tx, deadline, false)
		if len(tx.nodes) == 1 { // root-only: no valid start edge remains
			e.remove(tx, mkNodeKey(root, e.a.Start), tx.nodes[mkNodeKey(root, e.a.Start)])
			delete(e.trees, root)
		}
	}
	e.stats.ExpiryTime += time.Since(start)
}

// expireTree is Algorithm ExpiryRAPQ for one spanning tree.
func (e *RAPQ) expireTree(tx *tree, deadline int64, invalidate bool) {
	// Line 2: candidates with out-of-window timestamps. A child's
	// timestamp never exceeds its parent's, so candidates form whole
	// subtrees.
	var candidates []nodeKey
	for key, node := range tx.nodes {
		if node.ts <= deadline {
			candidates = append(candidates, key)
			// Record, before any pruning, whether each pair about to
			// lose a final witness was live when the pass started.
			// Delete-marked subtrees were recorded by markSubtree while
			// their timestamps were still intact; everything else is
			// genuinely stale and recorded here.
			if e.a.Final[node.s] {
				if _, seen := tx.preLive[node.v]; !seen {
					if tx.preLive == nil {
						tx.preLive = make(map[stream.VertexID]bool)
					}
					tx.preLive[node.v] = e.isLive(tx, node.v, deadline)
				}
			}
		}
	}
	if len(candidates) == 0 {
		tx.preLive = nil
		return
	}
	// Canonical candidate order: the reconnection below converges to the
	// same witness set and timestamps in any order, but visiting keys in
	// sorted order makes the sequential emission order within the pass a
	// pure function of the stream as well.
	sort.Slice(candidates, func(i, j int) bool { return candidates[i] < candidates[j] })
	// Line 3: prune all candidates from the tree.
	for _, key := range candidates {
		e.remove(tx, key, tx.nodes[key])
	}
	// Lines 4–9: try to reconnect each candidate through a valid edge
	// from a valid node. Insert re-adds reachable descendants with
	// fresh timestamps. Every candidate's full in-neighbourhood is
	// scanned — even if an earlier candidate's cascade already re-added
	// it — and the maximal offer is presented to Insert, so each
	// reconnected node ends at its canonical max-min timestamp
	// regardless of the order candidates are visited in. (Offers from
	// parents that are themselves re-added later arrive through those
	// parents' improvement cascades.)
	for _, key := range candidates {
		v, t := key.vertex(), key.state()
		byTarget := e.rev // rev[label][t] = sources
		var bestParent *treeNode
		var bestEdgeTS, bestTS int64
		e.g.InAt(e.epoch, v, func(u stream.VertexID, l stream.LabelID, ts int64) bool {
			if ts <= deadline || ts > e.now {
				return true // expired, or not yet arrived (batched graph)
			}
			if l < 0 || int(l) >= len(byTarget) {
				return true // label bound after this member: outside its ΣQ
			}
			rt := byTarget[l]
			if rt == nil {
				return true
			}
			for _, s := range rt[t] {
				parent, ok := tx.nodes[mkNodeKey(u, s)]
				if !ok || parent.ts <= deadline {
					continue
				}
				offer := min(ts, parent.ts)
				if bestParent == nil || offer > bestTS ||
					(offer == bestTS && mkNodeKey(parent.v, parent.s) < mkNodeKey(bestParent.v, bestParent.s)) {
					bestParent, bestEdgeTS, bestTS = parent, ts, offer
				}
			}
			return true
		})
		if bestParent != nil {
			e.insert(tx, bestParent, v, t, bestEdgeTS, deadline)
		}
	}
	// Lines 11–15, canonicalized: a pair (x,v) is retracted exactly when
	// it was live before the deletion and no in-window final witness
	// survived pruning + reconnection. The decision depends only on the
	// canonical witness set, never on which nodes the incidental tree
	// shape happened to route the deletion through — deleting a non-tree
	// edge can never make a witness unreachable (if it could, the tree
	// path would use the deleted edge too), so the invalidation stream is
	// a pure function of the input stream. Window expiry (invalidate ==
	// false) retracts nothing: results carry implicit window semantics.
	if invalidate && len(tx.preLive) > 0 {
		vs := make([]stream.VertexID, 0, len(tx.preLive))
		for v, was := range tx.preLive {
			if was {
				vs = append(vs, v)
			}
		}
		sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
		for _, v := range vs {
			if e.isLive(tx, v, deadline) {
				continue
			}
			e.stats.Invalidations++
			e.sink.OnInvalidate(Match{From: tx.root, To: v, TS: e.now})
		}
	}
	tx.preLive = nil
}

// ApplyDelete is Algorithm Delete (§3.2): explicit deletion via the
// expiry machinery. The edge must already have been removed from the
// snapshot graph (Process does this; the multi-query coordinator
// removes it from the shared graph once).
func (e *RAPQ) ApplyDelete(t stream.Tuple) {
	if t.TS > e.now {
		e.now = t.TS
	}
	validFrom := e.win.Spec().ValidFrom(e.now)

	e.rootScratch = e.inv.appendRoots(t.Src, e.rootScratch[:0])
	for _, root := range e.rootScratch {
		tx := e.trees[root]
		if tx == nil {
			continue
		}
		touched := false
		rootKey := mkNodeKey(tx.root, e.a.Start)
		// Lines 2–8: find tree edges matching the deleted edge and mark
		// their subtrees as expired.
		for _, tr := range e.a.ByLabel[t.Label] {
			childKey := mkNodeKey(t.Dst, tr.To)
			if childKey == rootKey {
				continue // the root has no incoming tree edge (its
				// parent pointer is a self-sentinel)
			}
			child, ok := tx.nodes[childKey]
			if !ok || child.parent != mkNodeKey(t.Src, tr.From) {
				continue // not a tree edge w.r.t. Tx (Definition 13)
			}
			e.markSubtree(tx, mkNodeKey(t.Dst, tr.To), validFrom)
			touched = true
		}
		if !touched {
			continue // deleting a non-tree edge leaves Tx unchanged
		}
		// Line 9: uniform handling through ExpiryRAPQ.
		e.expireTree(tx, validFrom, true)
		if len(tx.nodes) == 1 {
			e.remove(tx, mkNodeKey(tx.root, e.a.Start), tx.nodes[mkNodeKey(tx.root, e.a.Start)])
			delete(e.trees, root)
		}
	}
}

// markSubtree sets the timestamps of the subtree rooted at key to -∞,
// marking every node in it as expired (Algorithm Delete lines 4–7).
// Before overwriting a final witness's timestamp it records whether its
// pair was live, so the invalidation pass of expireTree decides against
// the pre-deletion window state rather than the clobbered one.
func (e *RAPQ) markSubtree(tx *tree, key nodeKey, validFrom int64) {
	stack := []nodeKey{key}
	for len(stack) > 0 {
		k := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		node := tx.nodes[k]
		if node == nil {
			continue
		}
		if e.a.Final[node.s] {
			if _, seen := tx.preLive[node.v]; !seen {
				if tx.preLive == nil {
					tx.preLive = make(map[stream.VertexID]bool)
				}
				tx.preLive[node.v] = e.isLive(tx, node.v, validFrom)
			}
		}
		node.ts = expiredTS
		for child := range node.children {
			stack = append(stack, child)
		}
	}
}

var _ Engine = (*RAPQ)(nil)
