package pattern

import (
	"math/rand"
	"testing"
)

func TestSimplifyRewrites(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"a**", "a*"},
		{"a*+", "a*"},
		{"a*?", "a*"},
		{"a+*", "a*"},
		{"a++", "a+"},
		{"a+?", "a*"},
		{"a?*", "a*"},
		{"a?+", "a*"},
		{"a??", "a?"},
		{"()*", "()"},
		{"()+", "()"},
		{"()?", "()"},
		{"a/()", "a"},
		{"()/a", "a"},
		{"()/()", "()"},
		{"a|a", "a"},
		{"a|b|a", "a|b"},
		{"a|()", "a?"},
		{"()|a", "a?"},
		{"()|()", "()"},
		{"(a|())*", "a*"},
		{"a/(b/c)", "a/b/c"},
		{"a|(b|c)", "a|b|c"},
		{"(a/b)+", "(a/b)+"}, // no change
		{"a/b*/c", "a/b*/c"}, // no change
		{"((a))", "a"},
		{"(a*)*|b", "a*|b"},
	}
	for _, c := range cases {
		got := Simplify(MustParse(c.in)).String()
		if got != c.want {
			t.Errorf("Simplify(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// TestSimplifyPreservesLanguage checks on random expressions that the
// simplified form accepts exactly the same words.
func TestSimplifyPreservesLanguage(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for i := 0; i < 400; i++ {
		e := randomExpr(rng, 4)
		s := Simplify(e)
		if err := Validate(s); err != nil {
			t.Fatalf("Simplify(%q) invalid: %v", e, err)
		}
		alpha := append(e.Alphabet(), "zz")
		if len(alpha) == 1 { // pure-ε expressions
			alpha = []string{"a", "zz"}
		}
		for j := 0; j < 30; j++ {
			w := RandomWord(alpha, rng.Intn(6), rng.Uint64())
			if Matcher(e, w) != Matcher(s, w) {
				t.Fatalf("Simplify(%q) = %q changes acceptance of %v", e, s, w)
			}
		}
	}
}

// TestSimplifyNeverGrows: simplification must not increase the size.
func TestSimplifyNeverGrows(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for i := 0; i < 400; i++ {
		e := randomExpr(rng, 4)
		if s := Simplify(e); s.Size() > e.Size() {
			t.Fatalf("Simplify(%q) = %q grew from %d to %d", e, s, e.Size(), s.Size())
		}
	}
}

// TestSimplifyIdempotent: Simplify(Simplify(e)) == Simplify(e).
func TestSimplifyIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for i := 0; i < 400; i++ {
		e := Simplify(randomExpr(rng, 4))
		if twice := Simplify(e); twice.String() != e.String() {
			t.Fatalf("not idempotent: %q -> %q", e, twice)
		}
	}
}

func TestNullable(t *testing.T) {
	cases := []struct {
		in   string
		want bool
	}{
		{"()", true},
		{"a", false},
		{"a*", true},
		{"a+", false},
		{"a?", true},
		{"a/b", false},
		{"a*/b*", true},
		{"a*/b", false},
		{"a|b*", true},
		{"a|b", false},
		{"(a?)+", true},
	}
	for _, c := range cases {
		if got := Nullable(MustParse(c.in)); got != c.want {
			t.Errorf("Nullable(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

// TestNullableAgreesWithMatcher: Nullable(e) iff Matcher accepts ε.
func TestNullableAgreesWithMatcher(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	for i := 0; i < 300; i++ {
		e := randomExpr(rng, 4)
		if Nullable(e) != Matcher(e, nil) {
			t.Fatalf("Nullable(%q) = %v disagrees with Matcher", e, Nullable(e))
		}
	}
}

func TestSortedClone(t *testing.T) {
	e := MustParse("c|a|b")
	s := SortedClone(e)
	if s.String() != "a|b|c" {
		t.Fatalf("SortedClone = %q", s)
	}
	// Original untouched.
	if e.String() != "c|a|b" {
		t.Fatalf("original mutated: %q", e)
	}
	// Language preserved.
	for _, w := range [][]string{{"a"}, {"b"}, {"c"}, {"d"}, nil} {
		if Matcher(e, w) != Matcher(s, w) {
			t.Fatalf("SortedClone changes acceptance of %v", w)
		}
	}
}
