// Package pattern implements the regular-expression dialect used by
// Regular Path Queries (RPQs).
//
// The grammar follows Definition 7 of Pacaci et al. (SIGMOD 2020):
//
//	R ::= ε | a | R ◦ R | R + R | R* | R+ | R?
//
// rendered in ASCII as
//
//	expr   := alt
//	alt    := concat ('|' concat)*          alternation (paper: +)
//	concat := unary (('/' | ε) unary)*      concatenation (paper: ◦)
//	unary  := atom ('*' | '+' | '?')*
//	atom   := label | '(' alt ')' | '()'    '()' denotes ε
//
// Labels are identifiers over [A-Za-z0-9_:.<>#-]. Both an explicit '/'
// and plain juxtaposition denote concatenation, so "a/b*" and "a b*"
// parse identically.
package pattern

import (
	"fmt"
	"sort"
	"strings"
)

// Op identifies the kind of a regular-expression AST node.
type Op int

// The operator kinds of an RPQ expression tree.
const (
	OpEmpty  Op = iota // ε, the empty string
	OpLabel            // a single edge label
	OpConcat           // R1 ◦ R2 ◦ ... ◦ Rn
	OpAlt              // R1 + R2 + ... + Rn (alternation)
	OpStar             // R*
	OpPlus             // R+ (one or more)
	OpOpt              // R? (zero or one)
)

func (o Op) String() string {
	switch o {
	case OpEmpty:
		return "Empty"
	case OpLabel:
		return "Label"
	case OpConcat:
		return "Concat"
	case OpAlt:
		return "Alt"
	case OpStar:
		return "Star"
	case OpPlus:
		return "Plus"
	case OpOpt:
		return "Opt"
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// Expr is a node of an RPQ regular-expression tree.
type Expr struct {
	Op    Op
	Label string  // valid when Op == OpLabel
	Subs  []*Expr // children: n>=2 for Concat/Alt, exactly 1 for Star/Plus/Opt
}

// Empty returns the ε expression.
func Empty() *Expr { return &Expr{Op: OpEmpty} }

// Label returns an expression matching the single edge label l.
func Label(l string) *Expr { return &Expr{Op: OpLabel, Label: l} }

// Concat returns the concatenation of the given expressions. With zero
// arguments it returns ε; with one it returns that expression.
func Concat(subs ...*Expr) *Expr {
	switch len(subs) {
	case 0:
		return Empty()
	case 1:
		return subs[0]
	}
	return &Expr{Op: OpConcat, Subs: flatten(OpConcat, subs)}
}

// Alt returns the alternation of the given expressions. With zero
// arguments it returns ε; with one it returns that expression.
func Alt(subs ...*Expr) *Expr {
	switch len(subs) {
	case 0:
		return Empty()
	case 1:
		return subs[0]
	}
	return &Expr{Op: OpAlt, Subs: flatten(OpAlt, subs)}
}

// Star returns e*.
func Star(e *Expr) *Expr { return &Expr{Op: OpStar, Subs: []*Expr{e}} }

// Plus returns e+ (one or more repetitions).
func Plus(e *Expr) *Expr { return &Expr{Op: OpPlus, Subs: []*Expr{e}} }

// Opt returns e? (zero or one occurrence).
func Opt(e *Expr) *Expr { return &Expr{Op: OpOpt, Subs: []*Expr{e}} }

func flatten(op Op, subs []*Expr) []*Expr {
	out := make([]*Expr, 0, len(subs))
	for _, s := range subs {
		if s.Op == op {
			out = append(out, s.Subs...)
		} else {
			out = append(out, s)
		}
	}
	return out
}

// Alphabet returns the sorted set of distinct labels mentioned in the
// expression.
func (e *Expr) Alphabet() []string {
	set := map[string]struct{}{}
	e.visit(func(n *Expr) {
		if n.Op == OpLabel {
			set[n.Label] = struct{}{}
		}
	})
	out := make([]string, 0, len(set))
	for l := range set {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// Size returns the query size |Q| as defined in §5.1.2 of the paper:
// the number of labels plus the number of occurrences of * and +.
func (e *Expr) Size() int {
	n := 0
	e.visit(func(x *Expr) {
		switch x.Op {
		case OpLabel, OpStar, OpPlus:
			n++
		}
	})
	return n
}

func (e *Expr) visit(f func(*Expr)) {
	f(e)
	for _, s := range e.Subs {
		s.visit(f)
	}
}

// String renders the expression in the ASCII dialect accepted by Parse.
func (e *Expr) String() string {
	var b strings.Builder
	e.render(&b, 0)
	return b.String()
}

// precedence levels: 0 alt, 1 concat, 2 unary/atom
func (e *Expr) prec() int {
	switch e.Op {
	case OpAlt:
		return 0
	case OpConcat:
		return 1
	default:
		return 2
	}
}

func (e *Expr) render(b *strings.Builder, min int) {
	paren := e.prec() < min
	if paren {
		b.WriteByte('(')
	}
	switch e.Op {
	case OpEmpty:
		b.WriteString("()")
	case OpLabel:
		b.WriteString(e.Label)
	case OpConcat:
		for i, s := range e.Subs {
			if i > 0 {
				b.WriteByte('/')
			}
			s.render(b, 2)
		}
	case OpAlt:
		for i, s := range e.Subs {
			if i > 0 {
				b.WriteByte('|')
			}
			s.render(b, 1)
		}
	case OpStar:
		e.Subs[0].render(b, 2)
		b.WriteByte('*')
	case OpPlus:
		e.Subs[0].render(b, 2)
		b.WriteByte('+')
	case OpOpt:
		e.Subs[0].render(b, 2)
		b.WriteByte('?')
	}
	if paren {
		b.WriteByte(')')
	}
}

// Equal reports structural equality of two expressions.
func Equal(a, b *Expr) bool {
	if a.Op != b.Op || a.Label != b.Label || len(a.Subs) != len(b.Subs) {
		return false
	}
	for i := range a.Subs {
		if !Equal(a.Subs[i], b.Subs[i]) {
			return false
		}
	}
	return true
}
