package pattern

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseBasics(t *testing.T) {
	cases := []struct {
		in   string
		want string // canonical rendering
	}{
		{"a", "a"},
		{"a*", "a*"},
		{"a/b", "a/b"},
		{"a b", "a/b"},
		{"a|b", "a|b"},
		{"a/b*", "a/b*"},
		{"(a/b)*", "(a/b)*"},
		{"a/b*/c*", "a/b*/c*"},
		{"(a|b|c)+", "(a|b|c)+"},
		{"a?/b*", "a?/b*"},
		{"a/b/c", "a/b/c"},
		{"a|b/c", "a|b/c"},
		{"(a|b)/c", "(a|b)/c"},
		{"a**", "a**"},
		{"()", "()"},
		{"(a)", "a"},
		{"((a))", "a"},
		{"knows/replyOf*", "knows/replyOf*"},
		{"a_1|a_2|a_3", "a_1|a_2|a_3"},
		{"  a   /  b  ", "a/b"},
	}
	for _, c := range cases {
		e, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		if got := e.String(); got != c.want {
			t.Errorf("Parse(%q).String() = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"*",
		"|a",
		"a|",
		"a/",
		"(a",
		"a)",
		"a||b",
		"+a",
		"a!",
		"(",
		")",
	}
	for _, in := range bad {
		if e, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) = %v, want error", in, e)
		}
	}
}

func TestParseErrorHasPosition(t *testing.T) {
	_, err := Parse("a/(b|")
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("want *ParseError, got %T: %v", err, err)
	}
	if pe.Pos != 5 {
		t.Errorf("error position = %d, want 5", pe.Pos)
	}
	if !strings.Contains(pe.Error(), "a/(b|") {
		t.Errorf("error %q does not mention input", pe.Error())
	}
}

func TestRoundTrip(t *testing.T) {
	// String() output must re-parse to a structurally equal tree.
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		e := randomExpr(rng, 4)
		s := e.String()
		back, err := Parse(s)
		if err != nil {
			t.Fatalf("re-parse of %q: %v", s, err)
		}
		if !Equal(normalize(e), normalize(back)) {
			t.Fatalf("round trip mismatch: %q -> %q", s, back.String())
		}
	}
}

// normalize collapses single-child concats/alts that the builders
// already collapse, so structural comparison is meaningful.
func normalize(e *Expr) *Expr {
	subs := make([]*Expr, len(e.Subs))
	for i, s := range e.Subs {
		subs[i] = normalize(s)
	}
	switch e.Op {
	case OpConcat:
		return Concat(subs...)
	case OpAlt:
		return Alt(subs...)
	case OpStar:
		return Star(subs[0])
	case OpPlus:
		return Plus(subs[0])
	case OpOpt:
		return Opt(subs[0])
	}
	return e
}

func randomExpr(rng *rand.Rand, depth int) *Expr {
	labels := []string{"a", "b", "c", "d"}
	if depth == 0 || rng.Intn(3) == 0 {
		if rng.Intn(8) == 0 {
			return Empty()
		}
		return Label(labels[rng.Intn(len(labels))])
	}
	switch rng.Intn(5) {
	case 0:
		n := 2 + rng.Intn(2)
		subs := make([]*Expr, n)
		for i := range subs {
			subs[i] = randomExpr(rng, depth-1)
		}
		return Concat(subs...)
	case 1:
		n := 2 + rng.Intn(2)
		subs := make([]*Expr, n)
		for i := range subs {
			subs[i] = randomExpr(rng, depth-1)
		}
		return Alt(subs...)
	case 2:
		return Star(randomExpr(rng, depth-1))
	case 3:
		return Plus(randomExpr(rng, depth-1))
	default:
		return Opt(randomExpr(rng, depth-1))
	}
}

func TestAlphabet(t *testing.T) {
	e := MustParse("a/(b|c)*/a")
	got := e.Alphabet()
	want := []string{"a", "b", "c"}
	if len(got) != len(want) {
		t.Fatalf("Alphabet = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Alphabet = %v, want %v", got, want)
		}
	}
}

func TestSize(t *testing.T) {
	// |Q| counts labels plus * and + occurrences (§5.1.2).
	cases := []struct {
		in   string
		want int
	}{
		{"a", 1},
		{"a*", 2},
		{"a/b*", 3},
		{"(a|b|c)+", 4},
		{"a?/b", 2}, // '?' does not count
		{"a/b/c", 3},
		{"a*/b*/c*", 6},
	}
	for _, c := range cases {
		if got := MustParse(c.in).Size(); got != c.want {
			t.Errorf("Size(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestValidate(t *testing.T) {
	if err := Validate(MustParse("a/(b|c)*")); err != nil {
		t.Errorf("valid expr rejected: %v", err)
	}
	bad := []*Expr{
		nil,
		{Op: OpLabel}, // empty label
		{Op: OpConcat, Subs: []*Expr{Label("a")}}, // arity 1
		{Op: OpStar},                   // missing child
		{Op: OpLabel, Label: "sp ace"}, // invalid byte
		{Op: Op(99)},                   // unknown op
		{Op: OpStar, Subs: []*Expr{{Op: OpLabel}}}, // nested invalid
		{Op: OpEmpty, Subs: []*Expr{Label("a")}},   // ε with child
	}
	for i, e := range bad {
		if err := Validate(e); err == nil {
			t.Errorf("case %d: invalid expr accepted", i)
		}
	}
}

func TestMatcherBasics(t *testing.T) {
	cases := []struct {
		expr string
		word []string
		want bool
	}{
		{"a", []string{"a"}, true},
		{"a", []string{"b"}, false},
		{"a", nil, false},
		{"a*", nil, true},
		{"a*", []string{"a", "a", "a"}, true},
		{"a*", []string{"a", "b"}, false},
		{"a+", nil, false},
		{"a+", []string{"a"}, true},
		{"a?", nil, true},
		{"a?", []string{"a", "a"}, false},
		{"a/b", []string{"a", "b"}, true},
		{"a/b", []string{"b", "a"}, false},
		{"a|b", []string{"b"}, true},
		{"(a/b)+", []string{"a", "b", "a", "b"}, true},
		{"(a/b)+", []string{"a", "b", "a"}, false},
		{"a/b*/c", []string{"a", "c"}, true},
		{"a/b*/c", []string{"a", "b", "b", "c"}, true},
		{"()", nil, true},
		{"()", []string{"a"}, false},
		{"(a|b)*/c", []string{"b", "a", "c"}, true},
	}
	for _, c := range cases {
		if got := Matcher(MustParse(c.expr), c.word); got != c.want {
			t.Errorf("Matcher(%q, %v) = %v, want %v", c.expr, c.word, got, c.want)
		}
	}
}

func TestRandomWordDeterministic(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		alpha := []string{"x", "y", "z"}
		a := RandomWord(alpha, int(n%16), seed)
		b := RandomWord(alpha, int(n%16), seed)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRandomWordEmptyAlphabet(t *testing.T) {
	if w := RandomWord(nil, 5, 1); w != nil {
		t.Errorf("RandomWord(nil alphabet) = %v, want nil", w)
	}
}
