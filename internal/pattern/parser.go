package pattern

import (
	"fmt"
)

// ParseError describes a syntax error in an RPQ expression, with the
// byte offset at which it was detected.
type ParseError struct {
	Input string
	Pos   int
	Msg   string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("pattern: %s at offset %d in %q", e.Msg, e.Pos, e.Input)
}

// Parse parses an RPQ regular expression in the ASCII dialect described
// in the package comment and returns its AST.
func Parse(input string) (*Expr, error) {
	p := &parser{input: input}
	p.next()
	e, err := p.alt()
	if err != nil {
		return nil, err
	}
	if p.tok != tokEOF {
		return nil, p.errorf("unexpected %s", p.tokString())
	}
	return e, nil
}

// MustParse is like Parse but panics on error. It is intended for
// statically known expressions such as workload tables.
func MustParse(input string) *Expr {
	e, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return e
}

type token int

const (
	tokEOF token = iota
	tokLabel
	tokLParen
	tokRParen
	tokPipe  // |
	tokSlash // /
	tokStar  // *
	tokPlus  // +
	tokOpt   // ?
)

type parser struct {
	input string
	pos   int    // current scan offset
	tok   token  // current token
	lit   string // literal for tokLabel
	start int    // offset of current token
}

func isLabelByte(c byte) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		return true
	case c == '_' || c == ':' || c == '.' || c == '-' || c == '<' || c == '>' || c == '#':
		return true
	}
	return false
}

func (p *parser) next() {
	for p.pos < len(p.input) && (p.input[p.pos] == ' ' || p.input[p.pos] == '\t' || p.input[p.pos] == '\n') {
		p.pos++
	}
	p.start = p.pos
	if p.pos >= len(p.input) {
		p.tok = tokEOF
		return
	}
	c := p.input[p.pos]
	switch c {
	case '(':
		p.tok, p.pos = tokLParen, p.pos+1
	case ')':
		p.tok, p.pos = tokRParen, p.pos+1
	case '|':
		p.tok, p.pos = tokPipe, p.pos+1
	case '/':
		p.tok, p.pos = tokSlash, p.pos+1
	case '*':
		p.tok, p.pos = tokStar, p.pos+1
	case '+':
		p.tok, p.pos = tokPlus, p.pos+1
	case '?':
		p.tok, p.pos = tokOpt, p.pos+1
	default:
		if !isLabelByte(c) {
			p.tok = tokEOF
			p.lit = ""
			p.start = p.pos
			// Leave pos where it is; alt() will surface the error.
			p.tok = tokLabel
			p.lit = string(c) // invalid; reported by caller via validation
			p.pos++
			return
		}
		j := p.pos
		for j < len(p.input) && isLabelByte(p.input[j]) {
			j++
		}
		p.tok, p.lit, p.pos = tokLabel, p.input[p.pos:j], j
	}
}

func (p *parser) errorf(format string, args ...any) error {
	return &ParseError{Input: p.input, Pos: p.start, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) tokString() string {
	switch p.tok {
	case tokEOF:
		return "end of input"
	case tokLabel:
		return fmt.Sprintf("label %q", p.lit)
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokPipe:
		return "'|'"
	case tokSlash:
		return "'/'"
	case tokStar:
		return "'*'"
	case tokPlus:
		return "'+'"
	case tokOpt:
		return "'?'"
	}
	return "unknown token"
}

// alt := concat ('|' concat)*
func (p *parser) alt() (*Expr, error) {
	first, err := p.concat()
	if err != nil {
		return nil, err
	}
	subs := []*Expr{first}
	for p.tok == tokPipe {
		p.next()
		e, err := p.concat()
		if err != nil {
			return nil, err
		}
		subs = append(subs, e)
	}
	return Alt(subs...), nil
}

// concat := unary (('/' | juxtaposition) unary)*
func (p *parser) concat() (*Expr, error) {
	first, err := p.unary()
	if err != nil {
		return nil, err
	}
	subs := []*Expr{first}
	for {
		switch p.tok {
		case tokSlash:
			p.next()
			e, err := p.unary()
			if err != nil {
				return nil, err
			}
			subs = append(subs, e)
		case tokLabel, tokLParen:
			e, err := p.unary()
			if err != nil {
				return nil, err
			}
			subs = append(subs, e)
		default:
			return Concat(subs...), nil
		}
	}
}

// unary := atom ('*' | '+' | '?')*
func (p *parser) unary() (*Expr, error) {
	e, err := p.atom()
	if err != nil {
		return nil, err
	}
	for {
		switch p.tok {
		case tokStar:
			e = Star(e)
			p.next()
		case tokPlus:
			e = Plus(e)
			p.next()
		case tokOpt:
			e = Opt(e)
			p.next()
		default:
			return e, nil
		}
	}
}

// atom := label | '(' alt ')' | '()'
func (p *parser) atom() (*Expr, error) {
	switch p.tok {
	case tokLabel:
		if len(p.lit) == 1 && !isLabelByte(p.lit[0]) {
			return nil, p.errorf("invalid character %q", p.lit)
		}
		e := Label(p.lit)
		p.next()
		return e, nil
	case tokLParen:
		p.next()
		if p.tok == tokRParen { // '()' is ε
			p.next()
			return Empty(), nil
		}
		e, err := p.alt()
		if err != nil {
			return nil, err
		}
		if p.tok != tokRParen {
			return nil, p.errorf("expected ')', found %s", p.tokString())
		}
		p.next()
		return e, nil
	default:
		return nil, p.errorf("expected label or '(', found %s", p.tokString())
	}
}

// Validate returns an error if the expression is malformed (nil children
// or wrong arity). It is a defensive check for programmatically built
// trees.
func Validate(e *Expr) error {
	if e == nil {
		return fmt.Errorf("pattern: nil expression")
	}
	switch e.Op {
	case OpEmpty:
		if len(e.Subs) != 0 {
			return fmt.Errorf("pattern: ε must have no children")
		}
	case OpLabel:
		if e.Label == "" {
			return fmt.Errorf("pattern: empty label")
		}
		if len(e.Subs) != 0 {
			return fmt.Errorf("pattern: label must have no children")
		}
		for i := 0; i < len(e.Label); i++ {
			if !isLabelByte(e.Label[i]) {
				return fmt.Errorf("pattern: invalid byte %q in label %q", e.Label[i], e.Label)
			}
		}
	case OpConcat, OpAlt:
		if len(e.Subs) < 2 {
			return fmt.Errorf("pattern: %s needs at least 2 children", e.Op)
		}
	case OpStar, OpPlus, OpOpt:
		if len(e.Subs) != 1 {
			return fmt.Errorf("pattern: %s needs exactly 1 child", e.Op)
		}
	default:
		return fmt.Errorf("pattern: unknown op %d", int(e.Op))
	}
	for _, s := range e.Subs {
		if err := Validate(s); err != nil {
			return err
		}
	}
	return nil
}

// Matcher is a direct recursive matcher over the AST, used as a
// correctness oracle for the automaton pipeline in tests. It reports
// whether the word (a sequence of labels) belongs to L(e).
func Matcher(e *Expr, word []string) bool {
	return match(e, word, 0, len(word))
}

// match reports whether word[i:j] ∈ L(e). Exponential in the worst
// case; only used on short words in tests.
func match(e *Expr, word []string, i, j int) bool {
	switch e.Op {
	case OpEmpty:
		return i == j
	case OpLabel:
		return j == i+1 && word[i] == e.Label
	case OpAlt:
		for _, s := range e.Subs {
			if match(s, word, i, j) {
				return true
			}
		}
		return false
	case OpConcat:
		return matchSeq(e.Subs, word, i, j)
	case OpOpt:
		return i == j || match(e.Subs[0], word, i, j)
	case OpStar:
		if i == j {
			return true
		}
		return matchRep(e.Subs[0], word, i, j)
	case OpPlus:
		return matchRep(e.Subs[0], word, i, j)
	}
	return false
}

// matchSeq reports whether word[i:j] ∈ L(subs[0] ◦ ... ◦ subs[n-1]).
func matchSeq(subs []*Expr, word []string, i, j int) bool {
	if len(subs) == 0 {
		return i == j
	}
	if len(subs) == 1 {
		return match(subs[0], word, i, j)
	}
	for k := i; k <= j; k++ {
		if match(subs[0], word, i, k) && matchSeq(subs[1:], word, k, j) {
			return true
		}
	}
	return false
}

// matchRep reports whether word[i:j] is a concatenation of one or more
// matches of e, each nonempty unless i==j.
func matchRep(e *Expr, word []string, i, j int) bool {
	if match(e, word, i, j) {
		return true
	}
	for k := i + 1; k < j; k++ {
		if match(e, word, i, k) && matchRep(e, word, k, j) {
			return true
		}
	}
	return false
}

// RandomWord is a helper for tests: it deterministically derives a word
// of the given length from seed over alphabet.
func RandomWord(alphabet []string, length int, seed uint64) []string {
	if len(alphabet) == 0 {
		return nil
	}
	w := make([]string, length)
	x := seed
	for i := range w {
		// xorshift64*
		x ^= x >> 12
		x ^= x << 25
		x ^= x >> 27
		w[i] = alphabet[(x*2685821657736338717)%uint64(len(alphabet))]
	}
	return w
}
