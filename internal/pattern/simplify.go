package pattern

import "sort"

// Simplify rewrites an expression into a smaller equivalent one. It is
// applied at query-registration time before automaton construction;
// the minimal DFA is identical either way (Hopcroft minimization is
// canonical), but a smaller expression makes Thompson/subset
// construction cheaper and keeps reported query sizes honest for
// machine-generated workloads.
//
// Rewrites (all language-preserving):
//
//	(R*)*   → R*        (R+)+ → R+        (R?)? → R?
//	(R*)+   → R*        (R+)* → R*        (R*)? → R*
//	(R?)*   → R*        (R?)+ → R*        (R+)? → R*
//	ε*      → ε         ε+ → ε            ε?   → ε
//	R ◦ ε   → R         ε ◦ R → R
//	R | R   → R         (duplicate alternation branches)
//	(R|ε)   → R?        (ε branch folds into optionality)
//	single-child Concat/Alt collapse
func Simplify(e *Expr) *Expr {
	if e == nil {
		return nil
	}
	subs := make([]*Expr, len(e.Subs))
	for i, s := range e.Subs {
		subs[i] = Simplify(s)
	}
	switch e.Op {
	case OpEmpty, OpLabel:
		return e
	case OpConcat:
		return simplifyConcat(subs)
	case OpAlt:
		return simplifyAlt(subs)
	case OpStar, OpPlus, OpOpt:
		return simplifyClosure(e.Op, subs[0])
	}
	return e
}

func simplifyConcat(subs []*Expr) *Expr {
	// Drop ε factors; flatten nested concatenations.
	out := make([]*Expr, 0, len(subs))
	for _, s := range subs {
		if s.Op == OpEmpty {
			continue
		}
		if s.Op == OpConcat {
			out = append(out, s.Subs...)
		} else {
			out = append(out, s)
		}
	}
	switch len(out) {
	case 0:
		return Empty()
	case 1:
		return out[0]
	}
	return &Expr{Op: OpConcat, Subs: out}
}

func simplifyAlt(subs []*Expr) *Expr {
	// Flatten nested alternations, deduplicate branches, and fold an ε
	// branch into optionality of the rest.
	flat := make([]*Expr, 0, len(subs))
	for _, s := range subs {
		if s.Op == OpAlt {
			flat = append(flat, s.Subs...)
		} else {
			flat = append(flat, s)
		}
	}
	hasEmpty := false
	seen := map[string]bool{}
	out := make([]*Expr, 0, len(flat))
	for _, s := range flat {
		if s.Op == OpEmpty {
			hasEmpty = true
			continue
		}
		// Branches that already accept ε make an explicit ε branch
		// redundant, but we keep them as-is; dedup is purely syntactic.
		key := s.String()
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, s)
	}
	var alt *Expr
	switch len(out) {
	case 0:
		return Empty()
	case 1:
		alt = out[0]
	default:
		alt = &Expr{Op: OpAlt, Subs: out}
	}
	if hasEmpty {
		return simplifyClosure(OpOpt, alt)
	}
	return alt
}

// simplifyClosure normalizes stacked closures over a child that is
// already simplified.
func simplifyClosure(op Op, child *Expr) *Expr {
	if child.Op == OpEmpty {
		return Empty() // ε*, ε+, ε? are all ε
	}
	switch child.Op {
	case OpStar:
		// (R*)* = (R*)+ = R*; (R*)? = R*
		return child
	case OpPlus:
		switch op {
		case OpStar, OpOpt:
			return Star(child.Subs[0]) // (R+)* = (R+)? = R*
		case OpPlus:
			return child // (R+)+ = R+
		}
	case OpOpt:
		switch op {
		case OpStar, OpPlus:
			return Star(child.Subs[0]) // (R?)* = (R?)+ = R*
		case OpOpt:
			return child // (R?)? = R?
		}
	}
	return &Expr{Op: op, Subs: []*Expr{child}}
}

// Nullable reports whether ε ∈ L(e).
func Nullable(e *Expr) bool {
	switch e.Op {
	case OpEmpty, OpStar, OpOpt:
		return true
	case OpLabel:
		return false
	case OpConcat:
		for _, s := range e.Subs {
			if !Nullable(s) {
				return false
			}
		}
		return true
	case OpAlt:
		for _, s := range e.Subs {
			if Nullable(s) {
				return true
			}
		}
		return false
	case OpPlus:
		return Nullable(e.Subs[0])
	}
	return false
}

// SortedClone returns a structural copy with alternation branches in
// a canonical (sorted) order. Language-preserving; useful for
// comparing machine-generated queries for syntactic equivalence.
func SortedClone(e *Expr) *Expr {
	subs := make([]*Expr, len(e.Subs))
	for i, s := range e.Subs {
		subs[i] = SortedClone(s)
	}
	out := &Expr{Op: e.Op, Label: e.Label, Subs: subs}
	if e.Op == OpAlt {
		sort.Slice(out.Subs, func(i, j int) bool {
			return out.Subs[i].String() < out.Subs[j].String()
		})
	}
	return out
}
