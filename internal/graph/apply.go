package graph

import (
	"sync"

	"streamrpq/internal/stream"
)

// This file implements multi-writer epoch construction: stripe-parallel
// application of one epoch's mutations, in the style of Faleiro &
// Abadi's "Rethinking serializable MVCC" — version *creation* is
// separated from *visibility*. The coordinator plans a sub-batch's
// mutations serially (phase 1), partitioning each edge mutation into
// its two half-mutations — the out half owned by stripe(src), the in
// half owned by stripe(dst) — and N writer goroutines then apply the
// per-stripe queues concurrently into the CSR slabs (phase 2). Readers
// never observe the half-built epoch: they hold leases on earlier
// epochs, and visibility flips only at the single atomic AdvanceEpoch
// that *precedes* planning, with result dispatch gated on the Flush
// barrier.
//
// Byte-identity across writer counts falls out of the partitioning: a
// slab is owned by exactly one stripe, a stripe's queue preserves plan
// order, and plan order equals the serial engine's mutation order — so
// every slab sees the identical mutation history no matter how many
// writers drain the queues, including delete/re-insert hazard pairs
// whose two halves land on different stripes. With writers == 1 the
// queues are applied inline on the caller with no goroutines, channels
// or extra synchronization: the degenerate case is today's engine.

// Stripe returns the lock-stripe index owning vertex v's slabs.
func Stripe(v stream.VertexID) int { return int(uint32(v) & (numStripes - 1)) }

// halfMut is one planned half-mutation: the edit a writer applies to a
// single vertex-side slab under that vertex's stripe lock.
type halfMut struct {
	v     stream.VertexID // slab owner
	other stream.VertexID // opposite endpoint
	label stream.LabelID
	ts    int64
	out   bool // v's out-slab (else its in-slab)
	del   bool // remove/tombstone instead of upsert
}

// Applier builds one epoch's mutations with a fixed pool of writer
// goroutines. Plan methods (BeginEpoch, PlanInsert, PlanDelete,
// PlanExpire, Live) run on the coordinator goroutine only; Flush
// applies the plan and returns after a full barrier. The graph must be
// mutated only through the Applier (or only through the direct
// Insert/Delete/Expire API) — the two writer paths must not interleave
// within an epoch.
type Applier struct {
	g       *Graph
	writers int

	// Plan state, coordinator-only between Flush barriers. Workers
	// read tab/epoch/minR/queues during Flush; the work-channel send
	// and WaitGroup establish the needed happens-before edges.
	epoch  Epoch
	minR   Epoch
	tab    *table
	queues [numStripes][]halfMut

	// overlay records the planned liveness of every key mutated in the
	// current plan, shadowing the (not yet applied) graph in hazard
	// checks: true = live after the plan, false = dead after the plan.
	overlay map[stream.EdgeKey]bool

	// gcQ collects retention entries in plan order; they enter the
	// graph's pending queue after the Flush barrier, so GC never runs
	// concurrently with in-flight construction.
	gcQ []gcEntry

	work chan int // writer index to run; closed by Close
	wg   sync.WaitGroup
}

// NewApplier returns an Applier over g with the given writer count
// (values below 1 are treated as 1). For writers > 1 it starts
// writers-1 pool goroutines; Close releases them.
func NewApplier(g *Graph, writers int) *Applier {
	if writers < 1 {
		writers = 1
	}
	a := &Applier{g: g, writers: writers, overlay: make(map[stream.EdgeKey]bool)}
	if writers > 1 {
		// Workers range over a local copy of the channel: Close nils
		// the field, and a worker scheduled late must not read it.
		work := make(chan int)
		a.work = work
		for i := 1; i < writers; i++ {
			go func() {
				for w := range work {
					a.applyStripes(w)
					a.wg.Done()
				}
			}()
		}
	}
	return a
}

// Writers returns the configured writer count.
func (a *Applier) Writers() int { return a.writers }

// Close stops the writer pool. The Applier must be idle (no Flush in
// flight); plan state is discarded.
func (a *Applier) Close() {
	if a.work != nil {
		close(a.work)
		a.work = nil
	}
}

// BeginEpoch advances the graph to a fresh epoch and starts an empty
// plan for it. The minimum reader bound is captured once here: leases
// change only on the coordinator goroutine, so it cannot move before
// Flush, and it equals what the serial engine would read per mutation.
func (a *Applier) BeginEpoch() Epoch {
	a.epoch = a.g.AdvanceEpoch()
	a.minR = a.g.minReader(a.epoch)
	a.tab = a.g.tab.Load()
	clear(a.overlay)
	return a.epoch
}

// Live reports whether the edge is live in the current plan: keys the
// plan has mutated shadow the (not yet applied) graph.
func (a *Applier) Live(key stream.EdgeKey) bool {
	if l, ok := a.overlay[key]; ok {
		return l
	}
	return a.g.Has(key)
}

func (a *Applier) push(m halfMut) {
	si := Stripe(m.v)
	a.queues[si] = append(a.queues[si], m)
}

// PlanInsert plans the insertion of (src,dst,label) with timestamp ts
// at the current epoch, refreshing the timestamp if the edge is live
// in the plan. It reports whether the edge is new, matching
// Graph.Insert.
func (a *Applier) PlanInsert(src, dst stream.VertexID, label stream.LabelID, ts int64) bool {
	a.tab = a.g.writerTable(src, dst)
	key := stream.EdgeKey{Src: src, Dst: dst, Label: label}
	wasLive := a.Live(key)
	a.push(halfMut{v: src, other: dst, label: label, ts: ts, out: true})
	a.push(halfMut{v: dst, other: src, label: label, ts: ts, out: false})
	a.overlay[key] = true
	if wasLive {
		if a.minR < a.epoch {
			a.gcQ = append(a.gcQ, gcEntry{key: key, removed: a.epoch})
		}
	} else {
		a.g.numEdges.Add(1)
	}
	a.g.fifo = append(a.g.fifo, fifoEntry{key: key, ts: ts})
	return !wasLive
}

// PlanDelete plans the removal of the edge at the current epoch and
// reports whether it was live in the plan, matching Graph.Delete.
func (a *Applier) PlanDelete(key stream.EdgeKey) bool {
	if !a.Live(key) {
		return false
	}
	a.planRemove(key)
	return true
}

func (a *Applier) planRemove(key stream.EdgeKey) {
	a.push(halfMut{v: key.Src, other: key.Dst, label: key.Label, out: true, del: true})
	a.push(halfMut{v: key.Dst, other: key.Src, label: key.Label, out: false, del: true})
	a.overlay[key] = false
	a.g.numEdges.Add(-1)
	if a.minR < a.epoch {
		a.gcQ = append(a.gcQ, gcEntry{key: key, removed: a.epoch})
	}
}

// PlanExpire pops due insertion records off the FIFO and plans the
// removal of every edge still carrying its recorded timestamp,
// returning how many were planned, matching Graph.Expire with a nil
// callback. It must be the first plan call of its epoch (the sub-batch
// hazard discipline guarantees expiry only ever occurs at a
// sub-batch's first tuple), so the FIFO liveness probe reads the fully
// applied graph.
func (a *Applier) PlanExpire(deadline int64) int {
	g := a.g
	removed := 0
	for g.head < len(g.fifo) {
		ent := g.fifo[g.head]
		if ent.ts > deadline {
			break
		}
		g.head++
		if _, planned := a.overlay[ent.key]; planned {
			// Already removed by this very pass (a same-timestamp refresh
			// leaves two FIFO records for one key): the serial engine's
			// liveness probe would see its own applied deletion; ours is
			// still only planned, so the overlay must shadow it.
			continue
		}
		cur, ok := g.tsAt(ent.key, a.epoch)
		if !ok || cur != ent.ts {
			continue // deleted or refreshed since this record was queued
		}
		if cur <= deadline {
			a.planRemove(ent.key)
			removed++
		}
	}
	if g.head > 1024 && g.head*2 > len(g.fifo) {
		g.fifo = append(g.fifo[:0:0], g.fifo[g.head:]...)
		g.head = 0
	}
	return removed
}

// Flush applies every planned half-mutation and returns after all
// stripes are built — the barrier that makes the new epoch safe to
// hand to readers. Stripes are assigned to writers round-robin
// (stripe % writers); each writer takes one stripe lock at a time and
// drains that stripe's queue in plan order. Retention entries enter
// the GC queue only after the barrier.
func (a *Applier) Flush() {
	any := false
	for si := range a.queues {
		if len(a.queues[si]) > 0 {
			any = true
			break
		}
	}
	if any {
		if a.writers == 1 {
			a.applyStripes(0)
		} else {
			a.wg.Add(a.writers - 1)
			for w := 1; w < a.writers; w++ {
				a.work <- w
			}
			a.applyStripes(0)
			a.wg.Wait()
		}
		for si := range a.queues {
			a.queues[si] = a.queues[si][:0]
		}
	}
	if len(a.gcQ) > 0 {
		g := a.g
		g.gcMu.Lock()
		g.pending = append(g.pending, a.gcQ...)
		g.gcLocked()
		g.gcMu.Unlock()
		a.gcQ = a.gcQ[:0]
	}
	// The plan is applied: hazard checks fall through to the graph
	// again until the next BeginEpoch.
	clear(a.overlay)
}

// applyStripes drains every stripe queue assigned to writer w.
func (a *Applier) applyStripes(w int) {
	for si := w; si < numStripes; si += a.writers {
		q := a.queues[si]
		if len(q) == 0 {
			continue
		}
		mu := &a.g.stripes[si]
		mu.Lock()
		for i := range q {
			applyHalf(a.tab, &q[i], a.epoch, a.minR)
		}
		mu.Unlock()
	}
}

// applyHalf applies one half-mutation to its slab; the owning stripe
// lock is held. The slab edits are exactly those of Graph.Insert /
// Graph.Delete for the corresponding side.
func applyHalf(t *table, m *halfMut, epoch, minR Epoch) {
	var s *slab
	if m.out {
		if s = t.out[m.v]; s == nil {
			if m.del {
				return
			}
			s = newSlab(epoch)
			t.out[m.v] = s
		}
	} else {
		if s = t.in[m.v]; s == nil {
			if m.del {
				return
			}
			s = newSlab(epoch)
			t.in[m.v] = s
		}
	}
	if !m.del {
		s.upsert(m.other, m.label, m.ts, epoch, minR)
		return
	}
	keep := minR < epoch
	var rd uint32
	if keep {
		rd = s.deltaFor(epoch, minR) // may rebase: resolve before find
	}
	idx := s.find(m.other, m.label)
	if idx < 0 || s.edges[idx].removed != liveDelta {
		return
	}
	pe := &s.edges[idx]
	if keep {
		pe.removed = rd
	} else {
		s.freeChain(pe)
		s.swapRemove(idx)
	}
}
