package graph

import (
	"math/rand"
	"sort"
	"sync"
	"testing"

	"streamrpq/internal/stream"
)

// collectOut drains the callback traversal into a sorted slice.
func collectOut(g *Graph, e Epoch, v stream.VertexID) []HalfEdge {
	var out []HalfEdge
	g.OutAt(e, v, func(dst stream.VertexID, l stream.LabelID, ts int64) bool {
		out = append(out, HalfEdge{V: dst, L: l, TS: ts})
		return true
	})
	sortHalf(out)
	return out
}

func collectIn(g *Graph, e Epoch, v stream.VertexID) []HalfEdge {
	var out []HalfEdge
	g.InAt(e, v, func(src stream.VertexID, l stream.LabelID, ts int64) bool {
		out = append(out, HalfEdge{V: src, L: l, TS: ts})
		return true
	})
	sortHalf(out)
	return out
}

func sortHalf(hs []HalfEdge) {
	sort.Slice(hs, func(i, j int) bool {
		if hs[i].V != hs[j].V {
			return hs[i].V < hs[j].V
		}
		if hs[i].L != hs[j].L {
			return hs[i].L < hs[j].L
		}
		return hs[i].TS < hs[j].TS
	})
}

func equalHalf(a, b []HalfEdge) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestAppendMatchesCallback: the buffer traversal is the callback
// traversal, under a random mutation history with leased epochs, on
// every vertex and every still-leased epoch.
func TestAppendMatchesCallback(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := New()
	type lease struct{ e Epoch }
	var leases []lease
	var keys []stream.EdgeKey
	for step := 0; step < 2000; step++ {
		switch {
		case len(keys) > 0 && rng.Float64() < 0.2:
			k := keys[rng.Intn(len(keys))]
			g.Delete(k)
		default:
			k := key(stream.VertexID(rng.Intn(30)), stream.VertexID(rng.Intn(30)), stream.LabelID(rng.Intn(3)))
			g.Insert(k.Src, k.Dst, k.Label, int64(step))
			keys = append(keys, k)
		}
		if rng.Float64() < 0.05 {
			e := g.AdvanceEpoch()
			g.AcquireEpoch(e)
			leases = append(leases, lease{e: e})
		}
		if len(leases) > 0 && rng.Float64() < 0.04 {
			i := rng.Intn(len(leases))
			g.ReleaseEpoch(leases[i].e)
			leases = append(leases[:i], leases[i+1:]...)
		}
	}
	check := func(e Epoch) {
		var buf []HalfEdge
		for v := stream.VertexID(0); v < 30; v++ {
			buf = g.AppendOutAt(e, v, buf[:0])
			got := append([]HalfEdge(nil), buf...)
			sortHalf(got)
			if want := collectOut(g, e, v); !equalHalf(got, want) {
				t.Fatalf("epoch %d vertex %d: AppendOutAt %v != OutAt %v", e, v, got, want)
			}
			buf = g.AppendInAt(e, v, buf[:0])
			got = append([]HalfEdge(nil), buf...)
			sortHalf(got)
			if want := collectIn(g, e, v); !equalHalf(got, want) {
				t.Fatalf("epoch %d vertex %d: AppendInAt %v != InAt %v", e, v, got, want)
			}
		}
	}
	for _, l := range leases {
		check(l.e)
	}
	check(g.Epoch())
	for _, l := range leases {
		g.ReleaseEpoch(l.e)
	}
	if n := g.DeadVersions(); n != 0 {
		t.Fatalf("DeadVersions = %d after all leases released", n)
	}
}

// TestSlabLookupIndexPromotion: vertices past the linear-scan threshold
// build the lazy per-slab index; lookups, refreshes, and deletes stay
// correct through promotion and the swap-remove compaction it must
// survive.
func TestSlabLookupIndexPromotion(t *testing.T) {
	g := New()
	const hub = stream.VertexID(0)
	const n = 4 * lookupThreshold
	for i := 1; i <= n; i++ {
		g.Insert(hub, stream.VertexID(i), stream.LabelID(i%5), int64(i))
	}
	for i := 1; i <= n; i++ {
		k := key(hub, stream.VertexID(i), stream.LabelID(i%5))
		if ts, ok := g.TS(k); !ok || ts != int64(i) {
			t.Fatalf("TS(%v) = %d,%v want %d,true", k, ts, ok, i)
		}
	}
	// Delete every third edge (exercises swap-remove under the index),
	// then refresh every remaining edge.
	for i := 3; i <= n; i += 3 {
		if !g.Delete(key(hub, stream.VertexID(i), stream.LabelID(i%5))) {
			t.Fatalf("delete %d failed", i)
		}
	}
	for i := 1; i <= n; i++ {
		k := key(hub, stream.VertexID(i), stream.LabelID(i%5))
		if i%3 == 0 {
			if _, ok := g.TS(k); ok {
				t.Fatalf("edge %d should be gone", i)
			}
			continue
		}
		g.Insert(k.Src, k.Dst, k.Label, int64(1000+i))
		if ts, ok := g.TS(k); !ok || ts != int64(1000+i) {
			t.Fatalf("refreshed TS(%v) = %d,%v want %d,true", k, ts, ok, 1000+i)
		}
	}
	if want := n - n/3; g.NumEdges() != want {
		t.Fatalf("NumEdges = %d, want %d", g.NumEdges(), want)
	}
}

// TestOverflowArenaPrunes: superseded versions overflow into the arena
// only while a reader could still see them, and the arena drains back
// to zero once the last lease is released.
func TestOverflowArenaPrunes(t *testing.T) {
	g := New()
	g.Insert(1, 2, 0, 10)
	e := g.AdvanceEpoch()
	g.AcquireEpoch(e)
	// Supersede the version epoch e sees, several times over.
	for i := 0; i < 5; i++ {
		g.AdvanceEpoch()
		g.Insert(1, 2, 0, int64(20+i))
	}
	if ts, ok := g.TSAt(e, key(1, 2, 0)); !ok || ts != 10 {
		t.Fatalf("leased epoch sees ts=%d,%v, want 10,true", ts, ok)
	}
	if g.DeadVersions() == 0 {
		t.Fatal("expected superseded versions retained for the lease")
	}
	g.ReleaseEpoch(e)
	if n := g.DeadVersions(); n != 0 {
		t.Fatalf("DeadVersions = %d after release, want 0", n)
	}
	if ts, ok := g.TS(key(1, 2, 0)); !ok || ts != 24 {
		t.Fatalf("current ts = %d,%v, want 24,true", ts, ok)
	}
}

// TestStripedConcurrentReaders: one writer mutating while reader
// goroutines traverse leased epochs through the buffer API; run under
// -race this pins the stripe-lock discipline.
func TestStripedConcurrentReaders(t *testing.T) {
	g := New()
	for i := 0; i < 100; i++ {
		g.Insert(stream.VertexID(i%20), stream.VertexID((i+1)%20), 0, int64(i))
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			var buf []HalfEdge
			for {
				select {
				case <-stop:
					return
				default:
				}
				e := g.Epoch()
				g.AcquireEpoch(e)
				for i := 0; i < 20; i++ {
					v := stream.VertexID(rng.Intn(20))
					buf = g.AppendOutAt(e, v, buf[:0])
					buf = g.AppendInAt(e, v, buf[:0])
				}
				g.ReleaseEpoch(e)
			}
		}(int64(r))
	}
	rng := rand.New(rand.NewSource(99))
	for step := 0; step < 3000; step++ {
		if rng.Float64() < 0.3 {
			g.Delete(key(stream.VertexID(rng.Intn(20)), stream.VertexID(rng.Intn(20)), 0))
		} else {
			g.Insert(stream.VertexID(rng.Intn(20)), stream.VertexID(rng.Intn(20)), 0, int64(1000+step))
		}
		if step%100 == 0 {
			g.AdvanceEpoch()
		}
	}
	close(stop)
	wg.Wait()
	g.AdvanceEpoch()
	if n := g.DeadVersions(); n != 0 {
		t.Fatalf("DeadVersions = %d after quiescence, want 0", n)
	}
}
