package graph

import (
	"testing"

	"streamrpq/internal/stream"
)

// TestLongVersionChainPerEpochVisibility: one edge refreshed at many
// consecutive epochs with a reader on each; every reader sees exactly
// its epoch's timestamp, and releases compact incrementally.
func TestLongVersionChainPerEpochVisibility(t *testing.T) {
	g := New()
	var epochs []Epoch
	for i := 0; i < 20; i++ {
		e := g.AdvanceEpoch()
		g.Insert(1, 2, 0, int64(100+i))
		g.AcquireEpoch(e)
		epochs = append(epochs, e)
	}
	for i, e := range epochs {
		if ts, ok := g.TSAt(e, stream.EdgeKey{Src: 1, Dst: 2, Label: 0}); !ok || ts != int64(100+i) {
			t.Fatalf("epoch %d: ts=%d ok=%v, want %d", e, ts, ok, 100+i)
		}
	}
	if dv := g.DeadVersions(); dv != 19 {
		t.Fatalf("DeadVersions = %d, want 19", dv)
	}
	// Release in order; chain shrinks monotonically.
	for i, e := range epochs {
		g.ReleaseEpoch(e)
		want := 19 - (i + 1)
		if want < 0 {
			want = 0
		}
		if dv := g.DeadVersions(); dv != want {
			t.Fatalf("after releasing epoch %d: DeadVersions = %d, want %d", e, dv, want)
		}
	}
	if ts, ok := g.TS(stream.EdgeKey{Src: 1, Dst: 2, Label: 0}); !ok || ts != 119 {
		t.Fatalf("final ts=%d ok=%v", ts, ok)
	}
	// Out-of-order release: acquire three epochs, release the middle
	// one first — versions the oldest reader still needs must survive.
	e1 := g.AdvanceEpoch()
	g.Insert(1, 2, 0, 200)
	g.AcquireEpoch(e1)
	e2 := g.AdvanceEpoch()
	g.Insert(1, 2, 0, 201)
	g.AcquireEpoch(e2)
	e3 := g.AdvanceEpoch()
	g.Insert(1, 2, 0, 202)
	g.AcquireEpoch(e3)
	g.ReleaseEpoch(e2)
	if ts, ok := g.TSAt(e1, stream.EdgeKey{Src: 1, Dst: 2, Label: 0}); !ok || ts != 200 {
		t.Fatalf("oldest reader lost its version after middle release: ts=%d ok=%v", ts, ok)
	}
	g.ReleaseEpoch(e1)
	g.ReleaseEpoch(e3)
	if dv := g.DeadVersions(); dv != 0 {
		t.Fatalf("DeadVersions = %d after all released", dv)
	}
}
