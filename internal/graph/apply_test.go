package graph

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"streamrpq/internal/stream"
)

// TestApplierMatchesSerialGraph is the multi-writer acceptance
// differential at the graph layer: the same random mutation stream —
// inserts, refreshes, deletions and expiry passes, cut into per-epoch
// sub-batches under the coordinator's discipline (expiry first) — is
// driven through an Applier at writer counts 1/2/4/8 and through the
// plain serial API, with pipelined reader churn on the versioned side.
// Every Plan* return value must match its serial counterpart per call,
// and the final graphs must be identical with zero retained dead
// versions.
func TestApplierMatchesSerialGraph(t *testing.T) {
	const vertices = 12
	for _, writers := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("writers=%d", writers), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(9000 + writers)))
			for trial := 0; trial < 20; trial++ {
				g, plain := New(), New()
				a := NewApplier(g, writers)
				ts := int64(0)
				var readers []Epoch

				steps := 150 + rng.Intn(100)
				for i := 0; i < steps; i++ {
					a.BeginEpoch()
					plain.AdvanceEpoch()
					// Expiry only as the first mutation of its epoch — the
					// sub-batch discipline PlanExpire's FIFO probe relies on.
					if rng.Intn(6) == 0 {
						deadline := ts - int64(rng.Intn(8))
						got, want := a.PlanExpire(deadline), plain.Expire(deadline, nil)
						if got != want {
							t.Fatalf("trial %d step %d: PlanExpire(%d) = %d, serial Expire = %d", trial, i, deadline, got, want)
						}
					}
					nMut := 1 + rng.Intn(4)
					for m := 0; m < nMut; m++ {
						ts += int64(rng.Intn(3))
						src := stream.VertexID(rng.Intn(vertices))
						dst := stream.VertexID(rng.Intn(vertices))
						l := stream.LabelID(rng.Intn(2))
						if rng.Intn(8) == 0 {
							k := stream.EdgeKey{Src: src, Dst: dst, Label: l}
							if got, want := a.PlanDelete(k), plain.Delete(k); got != want {
								t.Fatalf("trial %d step %d: PlanDelete(%v) = %v, serial Delete = %v", trial, i, k, got, want)
							}
						} else {
							if got, want := a.PlanInsert(src, dst, l, ts), plain.Insert(src, dst, l, ts); got != want {
								t.Fatalf("trial %d step %d: PlanInsert = %v, serial Insert = %v", trial, i, got, want)
							}
						}
					}
					a.Flush()
					// Reader churn like a pipelined coordinator with bounded
					// depth.
					if rng.Intn(2) == 0 {
						e := g.Epoch()
						g.AcquireEpoch(e)
						readers = append(readers, e)
					}
					for len(readers) > 3 || (len(readers) > 0 && rng.Intn(3) == 0) {
						g.ReleaseEpoch(readers[0])
						readers = readers[1:]
					}
				}
				for _, e := range readers {
					g.ReleaseEpoch(e)
				}
				a.Close()

				if dv := g.DeadVersions(); dv != 0 {
					t.Fatalf("trial %d: %d dead versions survive full reader retirement", trial, dv)
				}
				got := collectAt(g, g.Epoch(), vertices)
				want := collectAt(plain, plain.Epoch(), vertices)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("trial %d: applier-built graph diverged from serial oracle (%d vs %d edges)", trial, len(got), len(want))
				}
				if g.NumEdges() != plain.NumEdges() {
					t.Fatalf("trial %d: NumEdges %d vs %d", trial, g.NumEdges(), plain.NumEdges())
				}
				if g.NumVertices() != plain.NumVertices() {
					t.Fatalf("trial %d: NumVertices %d vs %d", trial, g.NumVertices(), plain.NumVertices())
				}
			}
		})
	}
}

// TestApplierConcurrentReaders: readers traversing leased epochs race
// four writer goroutines building later epochs via the Applier; each
// reader must observe exactly its epoch's frozen edge set (checked
// under -race). This is the visibility half of the multi-writer
// contract: construction concurrency must never leak into an epoch a
// reader already holds.
func TestApplierConcurrentReaders(t *testing.T) {
	g := New()
	a := NewApplier(g, 4)
	defer a.Close()
	const vertices = 10
	rng := rand.New(rand.NewSource(31))
	ts := int64(0)
	var wg sync.WaitGroup
	for round := 0; round < 60; round++ {
		a.BeginEpoch()
		if rng.Intn(4) == 0 {
			a.PlanExpire(ts - 5)
		}
		for m := 0; m < 5; m++ {
			ts++
			src := stream.VertexID(rng.Intn(vertices))
			dst := stream.VertexID(rng.Intn(vertices))
			if rng.Intn(10) == 0 {
				a.PlanDelete(stream.EdgeKey{Src: src, Dst: dst, Label: 0})
			} else {
				a.PlanInsert(src, dst, 0, ts)
			}
		}
		a.Flush()
		e := g.Epoch()
		g.AcquireEpoch(e)
		want := collectAt(g, e, vertices) // before any later epoch is built
		wg.Add(1)
		go func(e Epoch, want map[Edge]struct{}) {
			defer wg.Done()
			defer g.ReleaseEpoch(e)
			got := collectAt(g, e, vertices)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("epoch %d: reader saw a drifting snapshot during multi-writer construction (%d vs %d edges)", e, len(got), len(want))
			}
		}(e, want)
	}
	wg.Wait()
	if dv := g.DeadVersions(); dv != 0 {
		t.Fatalf("%d dead versions after all readers released", dv)
	}
}

// TestApplierPartitionDispatchAllocs pins the steady-state allocation
// cost of the partition/dispatch path: once the stripe queues, the
// overlay and the slabs have reached capacity, a plan→flush cycle of
// refreshes plus an expiry sweep must not allocate (FIFO compaction
// amortizes to well under one allocation per cycle).
func TestApplierPartitionDispatchAllocs(t *testing.T) {
	g := New()
	a := NewApplier(g, 2)
	defer a.Close()
	ts := int64(0)
	round := func() {
		a.BeginEpoch()
		a.PlanExpire(ts - 40)
		for v := 0; v < 16; v++ {
			ts++
			a.PlanInsert(stream.VertexID(v), stream.VertexID((v+1)%16), 0, ts)
		}
		a.Flush()
	}
	for i := 0; i < 300; i++ {
		round() // reach steady state: queues, overlay, FIFO, slabs all warm
	}
	if avg := testing.AllocsPerRun(100, round); avg > 1 {
		t.Fatalf("partition/dispatch path allocates %.2f per plan→flush cycle, want ≤1", avg)
	}
}

// TestApplierWritersDegenerate: writer counts below 1 clamp to the
// sequential degenerate case, and Writers reports the effective count.
func TestApplierWritersDegenerate(t *testing.T) {
	g := New()
	a := NewApplier(g, 0)
	defer a.Close()
	if a.Writers() != 1 {
		t.Fatalf("Writers() = %d after clamping, want 1", a.Writers())
	}
	a.BeginEpoch()
	if !a.PlanInsert(1, 2, 0, 7) {
		t.Fatal("PlanInsert of a fresh edge reported a refresh")
	}
	a.Flush()
	if !g.Has(key(1, 2, 0)) {
		t.Fatal("flushed insert not visible")
	}
}
