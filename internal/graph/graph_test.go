package graph

import (
	"math/rand"
	"testing"

	"streamrpq/internal/stream"
)

func key(s, d stream.VertexID, l stream.LabelID) stream.EdgeKey {
	return stream.EdgeKey{Src: s, Dst: d, Label: l}
}

func TestInsertAndLookup(t *testing.T) {
	g := New()
	if !g.Insert(1, 2, 0, 10) {
		t.Fatal("first insert should be new")
	}
	if g.Insert(1, 2, 0, 12) {
		t.Fatal("re-insert should not be new")
	}
	if ts, ok := g.TS(key(1, 2, 0)); !ok || ts != 12 {
		t.Fatalf("TS = %d,%v, want 12,true (refresh)", ts, ok)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
	g.Insert(1, 2, 1, 13) // parallel edge, different label
	g.Insert(2, 1, 0, 14)
	if g.NumEdges() != 3 {
		t.Fatalf("NumEdges = %d, want 3", g.NumEdges())
	}
	if g.NumVertices() != 2 {
		t.Fatalf("NumVertices = %d, want 2", g.NumVertices())
	}
}

func TestDelete(t *testing.T) {
	g := New()
	g.Insert(1, 2, 0, 10)
	g.Insert(1, 3, 0, 11)
	if !g.Delete(key(1, 2, 0)) {
		t.Fatal("delete of present edge failed")
	}
	if g.Delete(key(1, 2, 0)) {
		t.Fatal("double delete should report absent")
	}
	if g.Delete(key(9, 9, 9)) {
		t.Fatal("delete of absent edge should report absent")
	}
	if g.Has(key(1, 2, 0)) {
		t.Fatal("deleted edge still present")
	}
	if !g.Has(key(1, 3, 0)) {
		t.Fatal("unrelated edge vanished")
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
}

func TestOutInIteration(t *testing.T) {
	g := New()
	g.Insert(1, 2, 0, 10)
	g.Insert(1, 3, 1, 11)
	g.Insert(4, 1, 0, 12)

	var outs, ins int
	g.Out(1, func(dst stream.VertexID, l stream.LabelID, ts int64) bool {
		outs++
		if dst != 2 && dst != 3 {
			t.Errorf("unexpected out edge to %d", dst)
		}
		return true
	})
	g.In(1, func(src stream.VertexID, l stream.LabelID, ts int64) bool {
		ins++
		if src != 4 {
			t.Errorf("unexpected in edge from %d", src)
		}
		return true
	})
	if outs != 2 || ins != 1 {
		t.Fatalf("outs=%d ins=%d, want 2,1", outs, ins)
	}

	// Early stop.
	count := 0
	g.Out(1, func(stream.VertexID, stream.LabelID, int64) bool {
		count++
		return false
	})
	if count != 1 {
		t.Fatalf("early stop visited %d edges, want 1", count)
	}
}

func TestExpire(t *testing.T) {
	g := New()
	g.Insert(1, 2, 0, 10)
	g.Insert(2, 3, 0, 20)
	g.Insert(3, 4, 0, 30)

	var removed []Edge
	n := g.Expire(20, func(e Edge) { removed = append(removed, e) })
	if n != 2 {
		t.Fatalf("Expire removed %d, want 2", n)
	}
	if len(removed) != 2 {
		t.Fatalf("callback saw %d edges, want 2", len(removed))
	}
	if !g.Has(key(3, 4, 0)) || g.Has(key(1, 2, 0)) || g.Has(key(2, 3, 0)) {
		t.Fatal("wrong edges expired")
	}
}

func TestExpireRefreshKeepsEdge(t *testing.T) {
	g := New()
	g.Insert(1, 2, 0, 10)
	g.Insert(1, 2, 0, 25) // refresh before expiry
	if n := g.Expire(20, nil); n != 0 {
		t.Fatalf("Expire removed %d refreshed edges, want 0", n)
	}
	if !g.Has(key(1, 2, 0)) {
		t.Fatal("refreshed edge expired")
	}
	// The refreshed copy expires at its new timestamp.
	if n := g.Expire(25, nil); n != 1 {
		t.Fatalf("Expire removed %d, want 1", n)
	}
}

func TestExpireAfterDelete(t *testing.T) {
	g := New()
	g.Insert(1, 2, 0, 10)
	g.Delete(key(1, 2, 0))
	if n := g.Expire(100, nil); n != 0 {
		t.Fatalf("Expire of deleted edge removed %d, want 0", n)
	}
}

func TestVerticesUnion(t *testing.T) {
	g := New()
	g.Insert(1, 2, 0, 1)
	g.Insert(3, 1, 0, 2)
	seen := map[stream.VertexID]bool{}
	g.Vertices(func(v stream.VertexID) bool {
		if seen[v] {
			t.Errorf("vertex %d visited twice", v)
		}
		seen[v] = true
		return true
	})
	if len(seen) != 3 {
		t.Fatalf("saw %d vertices, want 3", len(seen))
	}
}

func TestClone(t *testing.T) {
	g := New()
	g.Insert(1, 2, 0, 10)
	g.Insert(2, 3, 1, 20)
	c := g.Clone()
	g.Delete(key(1, 2, 0))
	if !c.Has(key(1, 2, 0)) {
		t.Fatal("clone affected by original mutation")
	}
	if c.NumEdges() != 2 {
		t.Fatalf("clone has %d edges, want 2", c.NumEdges())
	}
}

// TestRandomizedAgainstModel runs a random op sequence against a naive
// map-based model.
func TestRandomizedAgainstModel(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	g := New()
	model := map[stream.EdgeKey]int64{}
	ts := int64(0)
	for i := 0; i < 20000; i++ {
		ts += int64(rng.Intn(3))
		src := stream.VertexID(rng.Intn(20))
		dst := stream.VertexID(rng.Intn(20))
		l := stream.LabelID(rng.Intn(3))
		k := key(src, dst, l)
		switch rng.Intn(10) {
		case 0: // delete
			_, inModel := model[k]
			if got := g.Delete(k); got != inModel {
				t.Fatalf("step %d: Delete=%v, model=%v", i, got, inModel)
			}
			delete(model, k)
		case 1: // expire
			deadline := ts - int64(rng.Intn(10))
			g.Expire(deadline, nil)
			for mk, mts := range model {
				if mts <= deadline {
					delete(model, mk)
				}
			}
		default:
			g.Insert(src, dst, l, ts)
			model[k] = ts
		}
		if g.NumEdges() != len(model) {
			t.Fatalf("step %d: NumEdges=%d, model=%d", i, g.NumEdges(), len(model))
		}
	}
	// Final content comparison.
	count := 0
	g.Edges(func(e Edge) bool {
		count++
		mts, ok := model[key(e.Src, e.Dst, e.Label)]
		if !ok || mts != e.TS {
			t.Fatalf("edge %v not in model (model ts %d, ok %v)", e, mts, ok)
		}
		return true
	})
	if count != len(model) {
		t.Fatalf("graph has %d edges, model %d", count, len(model))
	}
}
