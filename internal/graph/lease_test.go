package graph

import (
	"math"
	"math/rand"
	"testing"
)

// TestLeaseRingBasics: the ring tracks the minimum held epoch through
// in-order and out-of-order releases, duplicate acquires, and full
// retirement.
func TestLeaseRingBasics(t *testing.T) {
	var r leaseRing
	if r.min() != math.MaxUint64 {
		t.Fatalf("empty ring min = %d, want MaxUint64", r.min())
	}
	r.acquire(5)
	r.acquire(6)
	r.acquire(7)
	if r.min() != 5 || r.distinct != 3 || r.total != 3 {
		t.Fatalf("after acquires: min=%d distinct=%d total=%d", r.min(), r.distinct, r.total)
	}
	r.release(6) // out of order: minimum unchanged
	if r.min() != 5 || r.distinct != 2 {
		t.Fatalf("after out-of-order release: min=%d distinct=%d", r.min(), r.distinct)
	}
	r.release(5) // head advances past the freed slot for 6
	if r.min() != 7 || r.distinct != 1 {
		t.Fatalf("after head release: min=%d distinct=%d", r.min(), r.distinct)
	}
	r.release(7)
	if r.min() != math.MaxUint64 || r.distinct != 0 || r.total != 0 {
		t.Fatalf("after full retirement: min=%d distinct=%d total=%d", r.min(), r.distinct, r.total)
	}

	// Duplicate acquires on one epoch: one distinct holder, refcounted.
	r.acquire(9)
	r.acquire(9)
	if r.distinct != 1 || r.total != 2 {
		t.Fatalf("duplicate acquire: distinct=%d total=%d", r.distinct, r.total)
	}
	r.release(9)
	if r.min() != 9 {
		t.Fatalf("refcounted epoch released early: min=%d", r.min())
	}
	r.release(9)
	if r.min() != math.MaxUint64 {
		t.Fatalf("epoch not fully released: min=%d", r.min())
	}
}

// TestLeaseRingAcquireBelowBase: an acquire below the current minimum
// (legal but rare — leases are near-monotone) reindexes the ring.
func TestLeaseRingAcquireBelowBase(t *testing.T) {
	var r leaseRing
	r.acquire(10)
	r.acquire(12)
	r.acquire(4)
	if r.min() != 4 || r.distinct != 3 {
		t.Fatalf("after below-base acquire: min=%d distinct=%d", r.min(), r.distinct)
	}
	r.release(10)
	if r.min() != 4 {
		t.Fatalf("min moved on interior release: %d", r.min())
	}
	r.release(4)
	if r.min() != 12 {
		t.Fatalf("min after releasing reindexed head: %d, want 12", r.min())
	}
	r.release(12)
	if r.total != 0 {
		t.Fatalf("leases leaked: total=%d", r.total)
	}
}

// TestLeaseRingUnknownRelease: releasing an epoch that was never
// acquired — below base, beyond the ring, or a zero slot — is a no-op,
// mirroring the refcount map this replaced.
func TestLeaseRingUnknownRelease(t *testing.T) {
	var r leaseRing
	r.release(3) // empty ring
	r.acquire(10)
	r.release(2)  // below base
	r.release(50) // beyond the ring
	r.acquire(14)
	r.release(12) // zero slot inside the span
	if r.min() != 10 || r.total != 2 || r.distinct != 2 {
		t.Fatalf("no-op releases mutated the ring: min=%d total=%d distinct=%d", r.min(), r.total, r.distinct)
	}
}

// TestLeaseRingCompaction: a long-lived ring whose leases slide forward
// epoch by epoch (the pipelined coordinator's steady state) must
// compact its dead prefix — the backing array stays bounded by the
// lease span, not by stream length.
func TestLeaseRingCompaction(t *testing.T) {
	var r leaseRing
	const span = 8
	for e := Epoch(0); e < span; e++ {
		r.acquire(e)
	}
	for e := Epoch(span); e < 50_000; e++ {
		r.acquire(e)
		r.release(e - span)
		if r.min() != uint64(e-span+1) {
			t.Fatalf("epoch %d: min=%d, want %d", e, r.min(), e-span+1)
		}
	}
	if len(r.refs) > 4096 {
		t.Fatalf("ring never compacted: %d slots for a %d-epoch lease span", len(r.refs), span)
	}
	for e := Epoch(50_000 - span); e < 50_000; e++ {
		r.release(e)
	}
	if r.total != 0 || r.min() != math.MaxUint64 {
		t.Fatalf("leases leaked after drain: total=%d min=%d", r.total, r.min())
	}
}

// TestLeaseRingRandomizedVsMap: differential against the refcount map
// the ring replaced, over random acquire/release traffic biased toward
// the near-monotone pattern but including stragglers and duplicates.
func TestLeaseRingRandomizedVsMap(t *testing.T) {
	rng := rand.New(rand.NewSource(2025))
	for trial := 0; trial < 30; trial++ {
		var r leaseRing
		oracle := map[Epoch]int{}
		cur := Epoch(rng.Intn(100))
		var held []Epoch
		for step := 0; step < 2000; step++ {
			if len(held) == 0 || rng.Intn(2) == 0 {
				e := cur
				if rng.Intn(10) == 0 && cur > 3 {
					e = cur - Epoch(rng.Intn(4)) // straggler below the tip
				}
				cur += Epoch(rng.Intn(3))
				r.acquire(e)
				oracle[e]++
				held = append(held, e)
			} else {
				i := rng.Intn(len(held))
				e := held[i]
				held[i] = held[len(held)-1]
				held = held[:len(held)-1]
				r.release(e)
				if oracle[e]--; oracle[e] == 0 {
					delete(oracle, e)
				}
			}
			wantMin := uint64(math.MaxUint64)
			wantTotal := 0
			for e, n := range oracle {
				wantTotal += n
				if uint64(e) < wantMin {
					wantMin = uint64(e)
				}
			}
			if r.min() != wantMin || r.total != wantTotal || r.distinct != len(oracle) {
				t.Fatalf("trial %d step %d: ring (min=%d total=%d distinct=%d) vs map (min=%d total=%d distinct=%d)",
					trial, step, r.min(), r.total, r.distinct, wantMin, wantTotal, len(oracle))
			}
		}
	}
}

// BenchmarkLeaseChurn measures the coordinator's steady-state lease
// traffic: one epoch advance, one acquire at the tip and one release of
// the oldest lease per iteration, with a pipeline's worth of leases
// outstanding. Before the lease ring, every release rescanned all
// active leases to recompute the minimum; the ring makes this O(1).
func BenchmarkLeaseChurn(b *testing.B) {
	g := New()
	g.Insert(1, 2, 0, 1)
	const depth = 64
	var held []Epoch
	for i := 0; i < depth; i++ {
		e := g.AdvanceEpoch()
		g.AcquireEpoch(e)
		held = append(held, e)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := g.AdvanceEpoch()
		g.AcquireEpoch(e)
		held = append(held, e)
		g.ReleaseEpoch(held[0])
		held = held[1:]
	}
	b.StopTimer()
	for _, e := range held {
		g.ReleaseEpoch(e)
	}
}
