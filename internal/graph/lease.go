package graph

import "math"

// leaseRing tracks active reader refcounts per epoch. Leases are
// near-monotone — the coordinator acquires at the current epoch and
// releases the oldest in-flight one a few sub-batches later — so a
// dense ring indexed by epoch offset beats the refcount map it
// replaced: acquire and release are O(1) amortized instead of the
// O(active leases) rescan the map needed to recompute the minimum.
//
// refs[head+k] is the refcount at epoch base+k; base is always the
// epoch of refs[head], and whenever total > 0, refs[head] > 0 (release
// advances head past zero slots), so the minimum held epoch is simply
// base. The span of the ring is bounded by the epoch distance between
// the oldest and newest lease — pipeline depth plus at most one
// batch's sub-batches while a dynamic-registration bootstrap holds its
// lease — a few hundred uint32 slots in the worst case.
//
// All methods require the caller to hold the owning Graph's gcMu.
type leaseRing struct {
	base     Epoch    // epoch of refs[head]
	refs     []uint32 // refcounts at base, base+1, ... (from head)
	head     int      // index of base's slot
	distinct int      // epochs with a nonzero refcount
	total    int      // outstanding leases
}

// acquire registers one lease at epoch e.
func (r *leaseRing) acquire(e Epoch) {
	if r.total == 0 {
		r.base = e
		r.head = 0
		r.refs = r.refs[:0]
	} else if e < r.base {
		// Leases are near-monotone; an acquire below the current
		// minimum is legal but rare. Reindex by shifting everything up.
		gap := int(r.base - e)
		live := r.refs[r.head:]
		grown := make([]uint32, gap+len(live))
		copy(grown[gap:], live)
		r.refs = grown
		r.head = 0
		r.base = e
	}
	idx := r.head + int(e-r.base)
	for len(r.refs) <= idx {
		r.refs = append(r.refs, 0)
	}
	if r.refs[idx] == 0 {
		r.distinct++
	}
	r.refs[idx]++
	r.total++
}

// release retires one lease at epoch e. Releasing an epoch that was
// never acquired is a no-op (mirroring the map's old behaviour).
func (r *leaseRing) release(e Epoch) {
	if r.total == 0 || e < r.base {
		return
	}
	idx := r.head + int(e-r.base)
	if idx >= len(r.refs) || r.refs[idx] == 0 {
		return
	}
	r.refs[idx]--
	r.total--
	if r.refs[idx] > 0 {
		return
	}
	r.distinct--
	if r.total == 0 {
		r.refs = r.refs[:0]
		r.head = 0
		return
	}
	if idx == r.head {
		// Advance the minimum past released epochs; total > 0
		// guarantees a nonzero slot stops the walk.
		for r.refs[r.head] == 0 {
			r.head++
			r.base++
		}
		// Compact occasionally so a long-lived ring doesn't keep its
		// dead prefix forever (amortized O(1), same policy as the
		// graph's FIFO and GC queues).
		if r.head > 1024 && r.head*2 > len(r.refs) {
			r.refs = append(r.refs[:0:0], r.refs[r.head:]...)
			r.head = 0
		}
	}
}

// min returns the smallest held epoch, or MaxUint64 when no lease is
// outstanding (the value cached in Graph.minRC).
func (r *leaseRing) min() uint64 {
	if r.total == 0 {
		return math.MaxUint64
	}
	return uint64(r.base)
}
