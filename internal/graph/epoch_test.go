package graph

import (
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"

	"streamrpq/internal/stream"
)

// collectAt gathers the edge set visible at epoch e via OutAt.
func collectAt(g *Graph, e Epoch, vertices int) map[Edge]struct{} {
	out := map[Edge]struct{}{}
	for v := 0; v < vertices; v++ {
		g.OutAt(e, stream.VertexID(v), func(dst stream.VertexID, l stream.LabelID, ts int64) bool {
			out[Edge{Src: stream.VertexID(v), Dst: dst, Label: l, TS: ts}] = struct{}{}
			return true
		})
	}
	return out
}

// TestEpochVisibility: a reader holding an older epoch keeps seeing the
// pre-mutation state across refreshes, deletions and expiry, while the
// current epoch sees the newest state.
func TestEpochVisibility(t *testing.T) {
	g := New()
	g.Insert(1, 2, 0, 10)
	g.Insert(2, 3, 0, 12)
	e0 := g.Epoch()
	g.AcquireEpoch(e0)

	e1 := g.AdvanceEpoch()
	g.Insert(1, 2, 0, 20) // refresh
	g.Delete(key(2, 3, 0))
	g.Insert(3, 4, 1, 21)

	if ts, ok := g.TSAt(e0, key(1, 2, 0)); !ok || ts != 10 {
		t.Fatalf("old epoch sees refreshed ts %d,%v, want 10,true", ts, ok)
	}
	if _, ok := g.TSAt(e0, key(2, 3, 0)); !ok {
		t.Fatal("old epoch lost a deleted edge")
	}
	if _, ok := g.TSAt(e0, key(3, 4, 1)); ok {
		t.Fatal("old epoch sees a future insert")
	}
	if ts, ok := g.TSAt(e1, key(1, 2, 0)); !ok || ts != 20 {
		t.Fatalf("current epoch sees ts %d,%v, want 20,true", ts, ok)
	}
	if _, ok := g.TSAt(e1, key(2, 3, 0)); ok {
		t.Fatal("current epoch sees a deleted edge")
	}
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2 (current epoch)", g.NumEdges())
	}

	// In-traversal agrees with Out-traversal at both epochs.
	var in0 []Edge
	g.InAt(e0, 3, func(src stream.VertexID, l stream.LabelID, ts int64) bool {
		in0 = append(in0, Edge{Src: src, Dst: 3, Label: l, TS: ts})
		return true
	})
	if len(in0) != 1 || in0[0].Src != 2 || in0[0].TS != 12 {
		t.Fatalf("InAt(e0, 3) = %v", in0)
	}

	g.ReleaseEpoch(e0)
	if dv := g.DeadVersions(); dv != 0 {
		t.Fatalf("after last reader released: %d dead versions retained", dv)
	}
}

// TestEpochExpiryRetained: window expiry at a new epoch keeps expired
// edges visible to a reader of the previous epoch.
func TestEpochExpiryRetained(t *testing.T) {
	g := New()
	g.Insert(1, 2, 0, 5)
	g.Insert(2, 3, 0, 20)
	e0 := g.Epoch()
	g.AcquireEpoch(e0)

	g.AdvanceEpoch()
	if n := g.Expire(10, nil); n != 1 {
		t.Fatalf("Expire removed %d, want 1", n)
	}
	if _, ok := g.TSAt(e0, key(1, 2, 0)); !ok {
		t.Fatal("reader lost an expired edge")
	}
	if g.Has(key(1, 2, 0)) {
		t.Fatal("expired edge still live at current epoch")
	}
	g.ReleaseEpoch(e0)
	if dv := g.DeadVersions(); dv != 0 {
		t.Fatalf("%d dead versions after release", dv)
	}
}

// TestEpochGCCompaction is the epoch-GC property test: a versioned
// graph driven with epoch advances, reader acquire/release and
// interleaved hazards compacts — once the last reader of an epoch
// retires — to content identical to a never-versioned graph fed the
// same stream (same live edge set, same NumEdges/NumVertices, zero
// retained dead versions).
func TestEpochGCCompaction(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	const vertices = 12
	for trial := 0; trial < 50; trial++ {
		versioned, plain := New(), New()
		ts := int64(0)
		type reader struct{ e Epoch }
		var readers []reader

		steps := 200 + rng.Intn(200)
		for i := 0; i < steps; i++ {
			// Writer advances one epoch per "sub-batch" of mutations.
			versioned.AdvanceEpoch()
			nMut := 1 + rng.Intn(4)
			for m := 0; m < nMut; m++ {
				ts += int64(rng.Intn(3))
				src := stream.VertexID(rng.Intn(vertices))
				dst := stream.VertexID(rng.Intn(vertices))
				l := stream.LabelID(rng.Intn(2))
				switch rng.Intn(12) {
				case 0:
					versioned.Delete(stream.EdgeKey{Src: src, Dst: dst, Label: l})
					plain.Delete(stream.EdgeKey{Src: src, Dst: dst, Label: l})
				case 1:
					deadline := ts - int64(rng.Intn(8))
					versioned.Expire(deadline, nil)
					plain.Expire(deadline, nil)
				default:
					versioned.Insert(src, dst, l, ts)
					plain.Insert(src, dst, l, ts)
				}
			}
			// Randomly acquire the new epoch and release old ones, like a
			// pipelined coordinator with bounded depth.
			if rng.Intn(2) == 0 {
				e := versioned.Epoch()
				versioned.AcquireEpoch(e)
				readers = append(readers, reader{e})
			}
			for len(readers) > 3 || (len(readers) > 0 && rng.Intn(3) == 0) {
				versioned.ReleaseEpoch(readers[0].e)
				readers = readers[1:]
			}
		}
		for _, r := range readers {
			versioned.ReleaseEpoch(r.e)
		}

		if dv := versioned.DeadVersions(); dv != 0 {
			t.Fatalf("trial %d: %d dead versions survive full reader retirement", trial, dv)
		}
		if versioned.ActiveReaders() != 0 {
			t.Fatalf("trial %d: readers leaked", trial)
		}
		got := collectAt(versioned, versioned.Epoch(), vertices)
		want := collectAt(plain, plain.Epoch(), vertices)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: versioned graph content diverged from never-versioned oracle:\ngot  %d edges\nwant %d edges", trial, len(got), len(want))
		}
		if versioned.NumEdges() != plain.NumEdges() {
			t.Fatalf("trial %d: NumEdges %d vs %d", trial, versioned.NumEdges(), plain.NumEdges())
		}
		if versioned.NumVertices() != plain.NumVertices() {
			t.Fatalf("trial %d: NumVertices %d vs %d", trial, versioned.NumVertices(), plain.NumVertices())
		}
	}
}

// TestEpochConcurrentReaders: readers traversing an acquired epoch race
// a writer applying later-epoch mutations; each reader must observe
// exactly its epoch's frozen edge set (checked under -race).
func TestEpochConcurrentReaders(t *testing.T) {
	g := New()
	const vertices = 10
	rng := rand.New(rand.NewSource(7))
	ts := int64(0)
	var wg sync.WaitGroup
	for round := 0; round < 60; round++ {
		g.AdvanceEpoch()
		for m := 0; m < 5; m++ {
			ts++
			src := stream.VertexID(rng.Intn(vertices))
			dst := stream.VertexID(rng.Intn(vertices))
			switch rng.Intn(10) {
			case 0:
				g.Delete(stream.EdgeKey{Src: src, Dst: dst, Label: 0})
			case 1:
				g.Expire(ts-5, nil)
			default:
				g.Insert(src, dst, 0, ts)
			}
		}
		e := g.Epoch()
		g.AcquireEpoch(e)
		want := collectAt(g, e, vertices) // before any later mutation
		wg.Add(1)
		go func(e Epoch, want map[Edge]struct{}) {
			defer wg.Done()
			defer g.ReleaseEpoch(e)
			got := collectAt(g, e, vertices)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("epoch %d: concurrent reader saw a drifting snapshot (%d vs %d edges)", e, len(got), len(want))
			}
		}(e, want)
	}
	wg.Wait()
	if dv := g.DeadVersions(); dv != 0 {
		t.Fatalf("%d dead versions after all readers released", dv)
	}
}

// TestEpochEdgesFold: Edges folds the version intervals back to the
// flat live edge set of the current epoch (what checkpoints serialize).
func TestEpochEdgesFold(t *testing.T) {
	g := New()
	g.Insert(1, 2, 0, 1)
	g.AcquireEpoch(g.Epoch())
	g.AdvanceEpoch()
	g.Insert(1, 2, 0, 5)
	g.Insert(2, 3, 1, 6)
	g.Delete(key(1, 2, 0))

	var flat []Edge
	g.Edges(func(e Edge) bool { flat = append(flat, e); return true })
	sort.Slice(flat, func(i, j int) bool { return flat[i].TS < flat[j].TS })
	if len(flat) != 1 || flat[0] != (Edge{Src: 2, Dst: 3, Label: 1, TS: 6}) {
		t.Fatalf("folded edges = %v", flat)
	}
}
