// Package graph implements the snapshot graph G_{W,τ} of a sliding
// window over a streaming graph (Definition 5 of Pacaci et al., SIGMOD
// 2020): a directed, edge-labeled multigraph whose edges carry the
// timestamp of the streaming tuple that produced them.
//
// An edge is identified by (src, dst, label). Re-inserting an existing
// edge refreshes its timestamp (the freshest copy is the only one that
// matters for windowed reachability); an explicit deletion removes it.
// Expiry removes all edges whose timestamp has fallen out of the
// window, using a lazy FIFO of insertions that exploits the
// non-decreasing timestamp order of the stream.
//
// # Epoch versioning
//
// The graph is multi-versioned at sub-batch granularity so a pipelined
// coordinator (internal/shard) can keep mutating it while reader
// goroutines still traverse an older logical snapshot. Every edge
// version carries a validity interval [added, removed) in epochs; the
// single writer advances the epoch with AdvanceEpoch before each group
// of mutations, and readers observe exactly the versions valid at the
// epoch they were handed (OutAt/InAt/TSAt/...). Readers register the
// epoch they traverse with AcquireEpoch/ReleaseEpoch; versions no
// reader can see anymore are compacted away by an amortized-O(1)
// garbage collector, so a graph whose readers have all retired is
// byte-identical in content to a never-versioned graph fed the same
// stream. The zero-value discipline — never advancing the epoch and
// never acquiring readers — degenerates to an unversioned graph: every
// superseded version is overwritten in place, exactly the pre-epoch
// behaviour and cost.
//
// # Memory layout
//
// Adjacency is a flat CSR-style table, not nested maps: vertex ids are
// dense (stream.Dict assigns them in first-seen order), so a vertex
// indexes directly into a slab-pointer array, and each vertex's edges
// live in one contiguous slab of 32-byte pointer-free cells (csr.go).
// A cell inlines the newest version with its epochs packed as uint32
// deltas against a per-slab base epoch; superseded versions kept for
// leased readers overflow into a flat per-slab arena with a free list.
// Point lookups linearly scan small slabs and use a per-slab index map
// above lookupThreshold. Traversal is a linear walk of one slab:
// no map iteration, no pointer chasing, no per-version allocation.
//
// # Concurrency
//
// All methods are safe for one writer goroutine concurrent with any
// number of reader goroutines. The single global RWMutex of earlier
// versions is replaced by a table of 64 stripe RWMutexes: stripe(v)
// guards vertex v's out- and in-slabs, so concurrent readers of
// different vertices never contend with each other or (usually) with
// the writer. The top-level slab table is published via an atomic
// pointer and grown copy-on-write; slabs never move once allocated.
//
// Traversal callbacks (Out/OutAt/In/InAt/Edges/EdgesAt) receive a
// private copy of the visible half-edges: the copy is taken under the
// vertex's stripe read lock and the callback runs after it is
// released, so callbacks may freely re-enter graph read methods — even
// for the same stripe, even with concurrent writer goroutines. Hot
// paths should prefer AppendOutAt/AppendInAt, which copy into a
// caller-owned buffer instead of a per-call temporary and are
// allocation-free once the buffer has grown.
package graph

import (
	"math"
	"sync"
	"sync/atomic"

	"streamrpq/internal/stream"
)

// Epoch is a logical version of the graph. The writer advances it with
// AdvanceEpoch; a reader holding epoch e observes exactly the edge
// versions v with v.added <= e < v.removed.
type Epoch uint64

// liveEpoch marks a version that has not been superseded or removed.
const liveEpoch = Epoch(math.MaxUint64)

// Edge is one labeled, timestamped edge of the snapshot graph.
type Edge struct {
	Src   stream.VertexID
	Dst   stream.VertexID
	Label stream.LabelID
	TS    int64
}

// HalfEdge is one adjacency entry as seen from a fixed endpoint: the
// other endpoint, the label, and the edge timestamp. It is the element
// type of the buffer-based traversal API (AppendOutAt/AppendInAt).
type HalfEdge struct {
	V  stream.VertexID
	L  stream.LabelID
	TS int64
}

// numStripes is the size of the stripe lock table (power of two).
const numStripes = 64

// paddedRWMutex keeps each stripe on its own cache lines so reader
// lock traffic on one stripe never invalidates a neighbour's line.
type paddedRWMutex struct {
	sync.RWMutex
	_ [104]byte // 24-byte RWMutex + padding = 128 bytes
}

// Graph is the snapshot graph of the current window.
type Graph struct {
	// tab is the dense-id slab table; the writer grows it copy-on-write
	// and publishes via this pointer. Slab-pointer slots are read and
	// written only under the owning vertex's stripe lock.
	tab     atomic.Pointer[table]
	stripes [numStripes]paddedRWMutex

	epoch    atomic.Uint64 // current (writer) epoch
	numEdges atomic.Int64  // edges live at the current epoch

	// minRC caches the smallest epoch any registered reader holds
	// (MaxUint64 when none), maintained under gcMu but read lock-free
	// by the writer's retention decisions. A stale (smaller) value only
	// retains a version longer; the gcLocked call that follows every
	// pending-queue append re-checks under gcMu and compacts anything
	// the stale read over-retained.
	minRC atomic.Uint64

	// gcMu guards the reader registry and the compaction queue.
	// Lock-order invariant: gcMu may be taken before stripe locks
	// (gcLocked prunes under them) but never while holding one.
	gcMu        sync.Mutex
	leases      leaseRing // active reader refcounts per epoch
	pending     []gcEntry
	pendingHead int

	// fifo holds insertion records in arrival order. Stream timestamps
	// are non-decreasing, so expiry pops from the front. Entries are
	// lazily invalidated by re-insertions (newer ts) and deletions, and
	// address edges by key — the O(1) slab point lookup replaces the
	// old map probe. Only the writer goroutine touches the FIFO.
	fifo []fifoEntry
	head int
}

type gcEntry struct {
	key     stream.EdgeKey
	removed Epoch
}

type fifoEntry struct {
	key stream.EdgeKey
	ts  int64
}

// New returns an empty snapshot graph at epoch 0.
func New() *Graph {
	g := &Graph{}
	g.tab.Store(&table{})
	g.minRC.Store(math.MaxUint64)
	return g
}

func (g *Graph) stripeFor(v stream.VertexID) *paddedRWMutex {
	return &g.stripes[uint32(v)&(numStripes-1)]
}

// Epoch returns the current writer epoch.
func (g *Graph) Epoch() Epoch { return Epoch(g.epoch.Load()) }

// AdvanceEpoch moves the writer to the next epoch and returns it.
// Mutations applied afterwards are invisible to readers holding earlier
// epochs.
func (g *Graph) AdvanceEpoch() Epoch { return Epoch(g.epoch.Add(1)) }

// AcquireEpoch registers an active reader at epoch e (normally the
// current epoch, captured right after the writer's mutations for a
// sub-batch). Versions visible at e are retained until the matching
// ReleaseEpoch.
func (g *Graph) AcquireEpoch(e Epoch) {
	g.gcMu.Lock()
	g.leases.acquire(e)
	g.minRC.Store(g.leases.min())
	g.gcMu.Unlock()
}

// ReleaseEpoch retires a reader registered with AcquireEpoch and
// compacts every version no remaining (or future) reader can observe.
// Amortized O(1): the lease ring (lease.go) replaces the old rescan of
// a refcount map, so release cost no longer grows with the number of
// active leases.
func (g *Graph) ReleaseEpoch(e Epoch) {
	g.gcMu.Lock()
	g.leases.release(e)
	g.minRC.Store(g.leases.min())
	g.gcLocked()
	g.gcMu.Unlock()
}

// minReader returns the oldest epoch any active reader holds; the
// current epoch when no reader is registered. Future readers always
// acquire at least the current epoch, so versions removed at or before
// this bound are unobservable forever.
func (g *Graph) minReader(epoch Epoch) Epoch {
	if m := Epoch(g.minRC.Load()); m < epoch {
		return m
	}
	return epoch
}

// gcLocked compacts superseded versions whose removal epoch is at or
// below the oldest active reader (gcMu held). Amortized O(1) per
// removal: each queued entry is processed once, and the queue is in
// removal order because only the monotone writer epoch enters it.
func (g *Graph) gcLocked() {
	minR := g.minReader(g.Epoch())
	for g.pendingHead < len(g.pending) && g.pending[g.pendingHead].removed <= minR {
		key := g.pending[g.pendingHead].key
		g.pruneSide(true, key.Src, key.Dst, key.Label, minR)
		g.pruneSide(false, key.Dst, key.Src, key.Label, minR)
		g.pendingHead++
	}
	if g.pendingHead > 1024 && g.pendingHead*2 > len(g.pending) {
		g.pending = append(g.pending[:0:0], g.pending[g.pendingHead:]...)
		g.pendingHead = 0
	}
}

// pruneSide drops every version of one adjacency cell removed at or
// before bound, taking the vertex's stripe lock.
func (g *Graph) pruneSide(out bool, v, other stream.VertexID, label stream.LabelID, bound Epoch) {
	t := g.tab.Load()
	if int(v) >= len(t.out) {
		return
	}
	st := g.stripeFor(v)
	st.Lock()
	defer st.Unlock()
	var s *slab
	if out {
		s = t.out[v]
	} else {
		s = t.in[v]
	}
	if s == nil {
		return
	}
	idx := s.find(other, label)
	if idx < 0 {
		return
	}
	pe := &s.edges[idx]
	if s.absRemoved(pe) <= bound {
		// The newest version is dead, so every older one is too.
		s.freeChain(pe)
		s.swapRemove(idx)
		return
	}
	s.pruneOvf(pe, bound)
}

// NumEdges returns the number of distinct (src,dst,label) edges live at
// the current epoch.
func (g *Graph) NumEdges() int { return int(g.numEdges.Load()) }

// NumVertices returns the number of vertices incident to at least one
// edge live at the current epoch.
func (g *Graph) NumVertices() int {
	t := g.tab.Load()
	n := 0
	for v := range t.out {
		st := g.stripeFor(stream.VertexID(v))
		st.RLock()
		if (t.out[v] != nil && t.out[v].hasLive()) || (t.in[v] != nil && t.in[v].hasLive()) {
			n++
		}
		st.RUnlock()
	}
	return n
}

// writerTable returns the current slab table, grown (and republished)
// to cover both vertex ids. Writer goroutine only.
func (g *Graph) writerTable(a, b stream.VertexID) *table {
	t := g.tab.Load()
	m := a
	if b > m {
		m = b
	}
	if int(m) >= len(t.out) {
		t = t.grown(m)
		g.tab.Store(t)
	}
	return t
}

// Insert adds the edge (src,dst,label) with timestamp ts at the current
// epoch, refreshing the timestamp if the edge exists (the superseded
// version stays visible to readers of earlier epochs). It reports
// whether the edge was new.
func (g *Graph) Insert(src, dst stream.VertexID, label stream.LabelID, ts int64) bool {
	epoch := g.Epoch()
	minR := g.minReader(epoch)
	t := g.writerTable(src, dst)

	st := g.stripeFor(src)
	st.Lock()
	so := t.out[src]
	if so == nil {
		so = newSlab(epoch)
		t.out[src] = so
	}
	wasLive := so.upsert(dst, label, ts, epoch, minR)
	st.Unlock()

	st = g.stripeFor(dst)
	st.Lock()
	si := t.in[dst]
	if si == nil {
		si = newSlab(epoch)
		t.in[dst] = si
	}
	si.upsert(src, label, ts, epoch, minR)
	st.Unlock()

	key := stream.EdgeKey{Src: src, Dst: dst, Label: label}
	if wasLive {
		if minR < epoch {
			// The superseded version stays visible to an active reader;
			// queue it for compaction once that reader retires. gcLocked
			// re-checks with a fresh minimum in case a release raced the
			// lock-free minR read above.
			g.gcMu.Lock()
			g.pending = append(g.pending, gcEntry{key: key, removed: epoch})
			g.gcLocked()
			g.gcMu.Unlock()
		}
	} else {
		g.numEdges.Add(1)
	}
	g.fifo = append(g.fifo, fifoEntry{key: key, ts: ts})
	return !wasLive
}

// upsert installs a new inline version for (other,label) in the slab
// and reports whether a live version was superseded. A superseded or
// tombstoned previous version is pushed to the overflow arena iff a
// reader at an epoch below its removal may still observe it (removal
// epoch > minR); otherwise it is dropped on the spot — the unversioned
// fast path that makes the zero-epoch discipline cost what the
// pre-epoch graph did.
func (s *slab) upsert(other stream.VertexID, label stream.LabelID, ts int64, epoch, minR Epoch) bool {
	// Resolve the delta first: a rebase here may compact the slab, so
	// the cell index must be looked up afterwards.
	ad := s.deltaFor(epoch, minR)
	idx := s.find(other, label)
	if idx < 0 {
		s.appendEdge(packedEdge{
			ts: ts, other: uint32(other), label: int32(label),
			added: ad, removed: liveDelta, ovf: -1,
		})
		return false
	}
	pe := &s.edges[idx]
	wasLive := pe.removed == liveDelta
	oldRemoved := s.absRemoved(pe)
	if wasLive {
		oldRemoved = epoch
	}
	if oldRemoved > minR {
		s.pushOvf(pe, ovfVersion{ts: pe.ts, added: s.absAdded(pe), removed: oldRemoved})
	}
	s.pruneOvf(pe, minR)
	pe.ts = ts
	pe.added = ad
	pe.removed = liveDelta
	return wasLive
}

// Delete removes the edge identified by key at the current epoch
// (readers of earlier epochs keep seeing it). It reports whether the
// edge was live.
func (g *Graph) Delete(key stream.EdgeKey) bool {
	epoch := g.Epoch()
	minR := g.minReader(epoch)
	keep := minR < epoch

	t := g.tab.Load()
	if int(key.Src) >= len(t.out) || int(key.Dst) >= len(t.in) {
		return false
	}

	// Out side decides liveness; a tombstone is kept only while some
	// reader may still observe the removed version. When no tombstone
	// is needed, every older version is unobservable too (their removal
	// epochs are even earlier), so the whole cell goes.
	st := g.stripeFor(key.Src)
	st.Lock()
	removed := false
	if so := t.out[key.Src]; so != nil {
		var rd uint32
		if keep {
			rd = so.deltaFor(epoch, minR) // may rebase: resolve before find
		}
		if idx := so.find(key.Dst, key.Label); idx >= 0 && so.edges[idx].removed == liveDelta {
			pe := &so.edges[idx]
			if keep {
				pe.removed = rd
			} else {
				so.freeChain(pe)
				so.swapRemove(idx)
			}
			removed = true
		}
	}
	st.Unlock()
	if !removed {
		return false
	}

	st = g.stripeFor(key.Dst)
	st.Lock()
	if si := t.in[key.Dst]; si != nil {
		var rd uint32
		if keep {
			rd = si.deltaFor(epoch, minR)
		}
		if idx := si.find(key.Src, key.Label); idx >= 0 && si.edges[idx].removed == liveDelta {
			pe := &si.edges[idx]
			if keep {
				pe.removed = rd
			} else {
				si.freeChain(pe)
				si.swapRemove(idx)
			}
		}
	}
	st.Unlock()

	g.numEdges.Add(-1)
	if keep {
		g.gcMu.Lock()
		g.pending = append(g.pending, gcEntry{key: key, removed: epoch})
		g.gcLocked()
		g.gcMu.Unlock()
	}
	return true
}

// tsAt returns the timestamp of the edge visible at epoch e.
func (g *Graph) tsAt(key stream.EdgeKey, e Epoch) (int64, bool) {
	t := g.tab.Load()
	if int(key.Src) >= len(t.out) {
		return 0, false
	}
	st := g.stripeFor(key.Src)
	st.RLock()
	defer st.RUnlock()
	s := t.out[key.Src]
	if s == nil {
		return 0, false
	}
	idx := s.find(key.Dst, key.Label)
	if idx < 0 {
		return 0, false
	}
	return s.versionAt(&s.edges[idx], e)
}

// TS returns the timestamp of the edge live at the current epoch and
// whether it exists.
func (g *Graph) TS(key stream.EdgeKey) (int64, bool) { return g.tsAt(key, g.Epoch()) }

// TSAt returns the timestamp of the edge visible at epoch e.
func (g *Graph) TSAt(e Epoch, key stream.EdgeKey) (int64, bool) { return g.tsAt(key, e) }

// Has reports whether the edge is live at the current epoch.
func (g *Graph) Has(key stream.EdgeKey) bool {
	_, ok := g.TS(key)
	return ok
}

// iterSide copies one vertex side's visible half-edges under the
// stripe read lock, then invokes f per entry with no lock held —
// callbacks may re-enter graph read methods freely.
func (g *Graph) iterSide(out bool, e Epoch, v stream.VertexID, f func(v stream.VertexID, l stream.LabelID, ts int64) bool) {
	var stack [64]HalfEdge
	buf := g.appendSide(out, e, v, stack[:0])
	for i := range buf {
		if !f(buf[i].V, buf[i].L, buf[i].TS) {
			return
		}
	}
}

// appendSide copies one vertex side's visible half-edges into buf
// under the stripe read lock and returns the extended buffer.
func (g *Graph) appendSide(out bool, e Epoch, v stream.VertexID, buf []HalfEdge) []HalfEdge {
	t := g.tab.Load()
	if int(v) >= len(t.out) {
		return buf
	}
	st := g.stripeFor(v)
	st.RLock()
	var s *slab
	if out {
		s = t.out[v]
	} else {
		s = t.in[v]
	}
	if s != nil {
		for i := range s.edges {
			pe := &s.edges[i]
			if ts, ok := s.versionAt(pe, e); ok {
				buf = append(buf, HalfEdge{V: stream.VertexID(pe.other), L: stream.LabelID(pe.label), TS: ts})
			}
		}
	}
	st.RUnlock()
	return buf
}

// Out calls f for every out-edge of src live at the current epoch.
// Returning false stops the iteration early. f runs on a private copy
// with no graph lock held and may re-enter graph read methods.
func (g *Graph) Out(src stream.VertexID, f func(dst stream.VertexID, label stream.LabelID, ts int64) bool) {
	g.iterSide(true, g.Epoch(), src, f)
}

// OutAt calls f for every out-edge of src visible at epoch e.
func (g *Graph) OutAt(e Epoch, src stream.VertexID, f func(dst stream.VertexID, label stream.LabelID, ts int64) bool) {
	g.iterSide(true, e, src, f)
}

// In calls f for every in-edge of dst live at the current epoch.
// Returning false stops the iteration early.
func (g *Graph) In(dst stream.VertexID, f func(src stream.VertexID, label stream.LabelID, ts int64) bool) {
	g.iterSide(false, g.Epoch(), dst, f)
}

// InAt calls f for every in-edge of dst visible at epoch e.
func (g *Graph) InAt(e Epoch, dst stream.VertexID, f func(src stream.VertexID, label stream.LabelID, ts int64) bool) {
	g.iterSide(false, e, dst, f)
}

// AppendOutAt appends every out-edge of src visible at epoch e to buf
// and returns the extended slice. The copy is taken under the stripe
// read lock; the caller iterates the buffer without holding any graph
// lock, so the result may be consumed by code that itself traverses
// the graph. Reusing buf across calls makes steady-state traversal
// allocation-free; this is the hot-path API of internal/core.
func (g *Graph) AppendOutAt(e Epoch, src stream.VertexID, buf []HalfEdge) []HalfEdge {
	return g.appendSide(true, e, src, buf)
}

// AppendInAt appends every in-edge of dst visible at epoch e to buf
// and returns the extended slice; see AppendOutAt.
func (g *Graph) AppendInAt(e Epoch, dst stream.VertexID, buf []HalfEdge) []HalfEdge {
	return g.appendSide(false, e, dst, buf)
}

// edgesAt calls f for every edge visible at epoch e. Each vertex's
// half-edges are copied out under its stripe lock before f runs, so f
// may re-enter graph read methods.
func (g *Graph) edgesAt(e Epoch, f func(ed Edge) bool) {
	t := g.tab.Load()
	var buf []HalfEdge
	for v := range t.out {
		buf = g.appendSide(true, e, stream.VertexID(v), buf[:0])
		for i := range buf {
			if !f(Edge{Src: stream.VertexID(v), Dst: buf[i].V, Label: buf[i].L, TS: buf[i].TS}) {
				return
			}
		}
	}
}

// Edges calls f for every edge live at the current epoch — the flat
// fold of the version intervals that checkpoint serialization records
// (the on-disk format stays epoch-free). Returning false stops the
// iteration early.
func (g *Graph) Edges(f func(e Edge) bool) { g.edgesAt(g.Epoch(), f) }

// EdgesAt calls f for every edge visible at epoch e. A reader holding a
// lease on e (AcquireEpoch) may iterate concurrently with the single
// writer advancing later epochs — this is how a dynamically registered
// query bootstraps its Δ index from the live window without pausing
// ingest. Returning false stops the iteration early.
func (g *Graph) EdgesAt(e Epoch, f func(ed Edge) bool) { g.edgesAt(e, f) }

// Vertices calls f for every vertex incident to at least one edge live
// at the current epoch, in ascending dense-id order.
func (g *Graph) Vertices(f func(v stream.VertexID) bool) {
	t := g.tab.Load()
	for v := range t.out {
		st := g.stripeFor(stream.VertexID(v))
		st.RLock()
		live := (t.out[v] != nil && t.out[v].hasLive()) || (t.in[v] != nil && t.in[v].hasLive())
		st.RUnlock()
		if live && !f(stream.VertexID(v)) {
			return
		}
	}
}

// VertexUpperBound returns an exclusive upper bound on the dense
// vertex ids the graph has ever allocated adjacency for. Iterating
// [0, bound) with AppendOutAt visits every vertex that can have edges
// at any epoch — unlike Vertices, which filters by liveness at the
// current epoch and can therefore miss vertices whose edges are
// visible only at an older leased epoch.
func (g *Graph) VertexUpperBound() stream.VertexID {
	return stream.VertexID(len(g.tab.Load().out))
}

// Expire removes every edge whose timestamp is ≤ deadline at the
// current epoch and calls onRemove (if non-nil) for each removed edge.
// Amortized O(1) per insertion thanks to the FIFO invariant; readers of
// earlier epochs keep seeing the expired edges until they release.
func (g *Graph) Expire(deadline int64, onRemove func(e Edge)) int {
	epoch := g.Epoch()
	removed := 0
	for g.head < len(g.fifo) {
		ent := g.fifo[g.head]
		if ent.ts > deadline {
			break
		}
		g.head++
		cur, ok := g.tsAt(ent.key, epoch)
		if !ok || cur != ent.ts {
			continue // deleted or refreshed since this record was queued
		}
		if cur <= deadline {
			g.Delete(ent.key)
			if onRemove != nil {
				onRemove(Edge{Src: ent.key.Src, Dst: ent.key.Dst, Label: ent.key.Label, TS: cur})
			}
			removed++
		}
	}
	// Compact the FIFO occasionally to bound memory.
	if g.head > 1024 && g.head*2 > len(g.fifo) {
		g.fifo = append(g.fifo[:0:0], g.fifo[g.head:]...)
		g.head = 0
	}
	return removed
}

// DeadVersions returns the number of retained versions that are not
// live at the current epoch — superseded or tombstoned versions kept
// only for active readers. It is 0 once every reader has released and
// the GC has run (the compaction invariant the epoch-GC tests assert).
func (g *Graph) DeadVersions() int {
	t := g.tab.Load()
	n := 0
	for v := range t.out {
		st := g.stripeFor(stream.VertexID(v))
		st.RLock()
		if s := t.out[v]; s != nil {
			for i := range s.edges {
				pe := &s.edges[i]
				if pe.removed != liveDelta {
					n++
				}
				for cur := pe.ovf; cur >= 0; cur = s.ovf[cur].next {
					n++
				}
			}
		}
		st.RUnlock()
	}
	return n
}

// ActiveReaders returns the number of distinct epochs with registered
// readers (diagnostics).
func (g *Graph) ActiveReaders() int {
	g.gcMu.Lock()
	defer g.gcMu.Unlock()
	return g.leases.distinct
}

// Clone returns a deep copy of the graph's content at the current epoch
// (used by the batch oracle in tests). Version history and the FIFO are
// not cloned; a cloned graph is a static snapshot.
func (g *Graph) Clone() *Graph {
	c := New()
	g.Edges(func(e Edge) bool {
		c.Insert(e.Src, e.Dst, e.Label, e.TS)
		return true
	})
	return c
}
