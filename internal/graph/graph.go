// Package graph implements the snapshot graph G_{W,τ} of a sliding
// window over a streaming graph (Definition 5 of Pacaci et al., SIGMOD
// 2020): a directed, edge-labeled multigraph whose edges carry the
// timestamp of the streaming tuple that produced them.
//
// An edge is identified by (src, dst, label). Re-inserting an existing
// edge refreshes its timestamp (the freshest copy is the only one that
// matters for windowed reachability); an explicit deletion removes it.
// Expiry removes all edges whose timestamp has fallen out of the
// window, using a lazy FIFO of insertions that exploits the
// non-decreasing timestamp order of the stream.
//
// # Epoch versioning
//
// The graph is multi-versioned at sub-batch granularity so a pipelined
// coordinator (internal/shard) can keep mutating it while reader
// goroutines still traverse an older logical snapshot. Every edge
// version carries a validity interval [added, removed) in epochs; the
// single writer advances the epoch with AdvanceEpoch before each group
// of mutations, and readers observe exactly the versions valid at the
// epoch they were handed (OutAt/InAt/TSAt/...). Readers register the
// epoch they traverse with AcquireEpoch/ReleaseEpoch; versions no
// reader can see anymore are compacted away by an amortized-O(1)
// garbage collector, so a graph whose readers have all retired is
// byte-identical in content to a never-versioned graph fed the same
// stream. The zero-value discipline — never advancing the epoch and
// never acquiring readers — degenerates to an unversioned graph: every
// superseded version is overwritten in place, exactly the pre-epoch
// behaviour and cost.
//
// # Concurrency
//
// All methods are safe for one writer goroutine concurrent with any
// number of reader goroutines (a sync.RWMutex guards the maps; readers
// hold the read lock for the duration of one traversal callback loop).
// Traversal callbacks must not call back into graph read methods when a
// concurrent writer exists — a recursive read lock can deadlock behind
// a blocked writer. The stack-based traversals of internal/core's
// member engines satisfy this; the recursive RSPQ engine only ever
// owns a private, single-goroutine graph.
package graph

import (
	"math"
	"sync"

	"streamrpq/internal/stream"
)

// Epoch is a logical version of the graph. The writer advances it with
// AdvanceEpoch; a reader holding epoch e observes exactly the edge
// versions v with v.added <= e < v.removed.
type Epoch uint64

// liveEpoch marks a version that has not been superseded or removed.
const liveEpoch = Epoch(math.MaxUint64)

// Edge is one labeled, timestamped edge of the snapshot graph.
type Edge struct {
	Src   stream.VertexID
	Dst   stream.VertexID
	Label stream.LabelID
	TS    int64
}

// halfKey packs (otherEndpoint, label) into one map key.
type halfKey uint64

func mkHalfKey(v stream.VertexID, l stream.LabelID) halfKey {
	return halfKey(uint64(v)<<32 | uint64(uint32(l)))
}

func (k halfKey) vertex() stream.VertexID { return stream.VertexID(k >> 32) }
func (k halfKey) label() stream.LabelID   { return stream.LabelID(uint32(k)) }

// version is one validity interval of an edge: the timestamp it carried
// and the epoch range [added, removed) during which it is visible.
type version struct {
	ts      int64
	added   Epoch
	removed Epoch // liveEpoch while current
}

// visibleAt reports whether the version is observable at epoch e.
func (v version) visibleAt(e Epoch) bool { return v.added <= e && e < v.removed }

// cell is the version chain of one (src,dst,label) edge. The newest
// version is inline; superseded versions that an active reader may
// still observe overflow into older (epoch-ascending). In the common
// unversioned case older is nil and a cell costs one inline version.
type cell struct {
	version
	older []version
}

// at returns the version of the cell visible at epoch e.
func (c cell) at(e Epoch) (version, bool) {
	if c.visibleAt(e) {
		return c.version, true
	}
	for i := len(c.older) - 1; i >= 0; i-- {
		if c.older[i].visibleAt(e) {
			return c.older[i], true
		}
	}
	return version{}, false
}

// live reports whether the cell's newest version is current.
func (c cell) live() bool { return c.removed == liveEpoch }

// Graph is the snapshot graph of the current window.
type Graph struct {
	mu  sync.RWMutex
	out map[stream.VertexID]map[halfKey]cell // src -> (dst,label) -> versions
	in  map[stream.VertexID]map[halfKey]cell // dst -> (src,label) -> versions

	numEdges int // edges live at the current epoch

	epoch   Epoch         // current (writer) epoch
	readers map[Epoch]int // active reader refcounts per epoch

	// pending queues edge keys whose superseded versions await
	// compaction, in removal-epoch order (removal epochs are monotone
	// because the single writer only ever advances the epoch).
	pending     []gcEntry
	pendingHead int

	// fifo holds insertion records in arrival order. Stream timestamps
	// are non-decreasing, so expiry pops from the front. Entries are
	// lazily invalidated by re-insertions (newer ts) and deletions.
	fifo []fifoEntry
	head int
}

type gcEntry struct {
	key     stream.EdgeKey
	removed Epoch
}

type fifoEntry struct {
	key stream.EdgeKey
	ts  int64
}

// New returns an empty snapshot graph at epoch 0.
func New() *Graph {
	return &Graph{
		out:     make(map[stream.VertexID]map[halfKey]cell),
		in:      make(map[stream.VertexID]map[halfKey]cell),
		readers: make(map[Epoch]int),
	}
}

// Epoch returns the current writer epoch.
func (g *Graph) Epoch() Epoch {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.epoch
}

// AdvanceEpoch moves the writer to the next epoch and returns it.
// Mutations applied afterwards are invisible to readers holding earlier
// epochs.
func (g *Graph) AdvanceEpoch() Epoch {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.epoch++
	return g.epoch
}

// AcquireEpoch registers an active reader at epoch e (normally the
// current epoch, captured right after the writer's mutations for a
// sub-batch). Versions visible at e are retained until the matching
// ReleaseEpoch.
func (g *Graph) AcquireEpoch(e Epoch) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.readers[e]++
}

// ReleaseEpoch retires a reader registered with AcquireEpoch and
// compacts every version no remaining (or future) reader can observe.
func (g *Graph) ReleaseEpoch(e Epoch) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if n := g.readers[e]; n <= 1 {
		delete(g.readers, e)
	} else {
		g.readers[e] = n - 1
	}
	g.gcLocked()
}

// minReaderLocked returns the oldest epoch any active reader holds; the
// current epoch when no reader is registered. Future readers always
// acquire at least the current epoch, so versions removed at or before
// this bound are unobservable forever.
func (g *Graph) minReaderLocked() Epoch {
	min := g.epoch
	for e := range g.readers {
		if e < min {
			min = e
		}
	}
	return min
}

// gcLocked compacts superseded versions whose removal epoch is at or
// below the oldest active reader. Amortized O(1) per removal: each
// queued entry is processed once, and the queue is in removal order.
func (g *Graph) gcLocked() {
	minR := g.minReaderLocked()
	for g.pendingHead < len(g.pending) && g.pending[g.pendingHead].removed <= minR {
		g.pruneLocked(g.pending[g.pendingHead].key, minR)
		g.pendingHead++
	}
	if g.pendingHead > 1024 && g.pendingHead*2 > len(g.pending) {
		g.pending = append(g.pending[:0:0], g.pending[g.pendingHead:]...)
		g.pendingHead = 0
	}
}

// pruneLocked drops every version of key removed at or before bound.
func (g *Graph) pruneLocked(key stream.EdgeKey, bound Epoch) {
	pruneSide(g.out, key.Src, mkHalfKey(key.Dst, key.Label), bound)
	pruneSide(g.in, key.Dst, mkHalfKey(key.Src, key.Label), bound)
}

func pruneSide(side map[stream.VertexID]map[halfKey]cell, v stream.VertexID, hk halfKey, bound Epoch) {
	m := side[v]
	c, ok := m[hk]
	if !ok {
		return
	}
	if c.removed <= bound {
		// The newest version is dead, so every older one is too.
		delete(m, hk)
		if len(m) == 0 {
			delete(side, v)
		}
		return
	}
	// Older versions are epoch-ascending: dead ones form a prefix.
	cut := 0
	for cut < len(c.older) && c.older[cut].removed <= bound {
		cut++
	}
	if cut > 0 {
		c.older = append([]version(nil), c.older[cut:]...)
		if len(c.older) == 0 {
			c.older = nil
		}
		m[hk] = c
	}
}

// NumEdges returns the number of distinct (src,dst,label) edges live at
// the current epoch.
func (g *Graph) NumEdges() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.numEdges
}

// NumVertices returns the number of vertices incident to at least one
// edge live at the current epoch.
func (g *Graph) NumVertices() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	n := 0
	for _, m := range g.out {
		if sideHasLive(m) {
			n++
		}
	}
	for v, m := range g.in {
		if om, ok := g.out[v]; ok && sideHasLive(om) {
			continue
		}
		if sideHasLive(m) {
			n++
		}
	}
	return n
}

func sideHasLive(m map[halfKey]cell) bool {
	for _, c := range m {
		if c.live() {
			return true
		}
	}
	return false
}

// Insert adds the edge (src,dst,label) with timestamp ts at the current
// epoch, refreshing the timestamp if the edge exists (the superseded
// version stays visible to readers of earlier epochs). It reports
// whether the edge was new.
func (g *Graph) Insert(src, dst stream.VertexID, label stream.LabelID, ts int64) bool {
	g.mu.Lock()
	defer g.mu.Unlock()

	key := stream.EdgeKey{Src: src, Dst: dst, Label: label}
	minR := g.minReaderLocked()
	wasLive := g.upsertSide(g.out, src, mkHalfKey(dst, label), ts, minR)
	g.upsertSide(g.in, dst, mkHalfKey(src, label), ts, minR)
	if wasLive {
		if minR < g.epoch {
			// The superseded version stays visible to an active reader;
			// queue it for compaction once that reader retires.
			g.pending = append(g.pending, gcEntry{key: key, removed: g.epoch})
		}
	} else {
		g.numEdges++
	}
	g.fifo = append(g.fifo, fifoEntry{key: key, ts: ts})
	return !wasLive
}

// upsertSide installs the new version in one adjacency side and
// reports whether a live version was superseded. A superseded or
// tombstoned previous version is pushed to the overflow list iff a
// reader at an epoch below its removal may still observe it (removal
// epoch > minR); otherwise it is dropped on the spot — the unversioned
// fast path that makes the zero-epoch discipline cost what the
// pre-epoch graph did.
func (g *Graph) upsertSide(side map[stream.VertexID]map[halfKey]cell, v stream.VertexID, hk halfKey, ts int64, minR Epoch) bool {
	m := side[v]
	if m == nil {
		m = make(map[halfKey]cell)
		side[v] = m
	}
	c, existed := m[hk]
	fresh := version{ts: ts, added: g.epoch, removed: liveEpoch}
	wasLive := false
	if existed {
		wasLive = c.live()
		old := c.version
		if wasLive {
			old.removed = g.epoch
		}
		if old.removed > minR {
			c.older = append(c.older, old)
		}
		c.older = pruneDead(c.older, minR)
	}
	c.version = fresh
	m[hk] = c
	return wasLive
}

func pruneDead(older []version, bound Epoch) []version {
	cut := 0
	for cut < len(older) && older[cut].removed <= bound {
		cut++
	}
	if cut == 0 {
		return older
	}
	rest := older[cut:]
	if len(rest) == 0 {
		return nil
	}
	return append([]version(nil), rest...)
}

// Delete removes the edge identified by key at the current epoch
// (readers of earlier epochs keep seeing it). It reports whether the
// edge was live.
func (g *Graph) Delete(key stream.EdgeKey) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.deleteLocked(key)
}

func (g *Graph) deleteLocked(key stream.EdgeKey) bool {
	ohk := mkHalfKey(key.Dst, key.Label)
	om := g.out[key.Src]
	c, ok := om[ohk]
	if !ok || !c.live() {
		return false
	}
	keep := g.minReaderLocked() < g.epoch
	if keep {
		g.pending = append(g.pending, gcEntry{key: key, removed: g.epoch})
	}
	removeSide(g.out, key.Src, ohk, g.epoch, keep)
	removeSide(g.in, key.Dst, mkHalfKey(key.Src, key.Label), g.epoch, keep)
	g.numEdges--
	return true
}

// removeSide tombstones (keep) or erases (!keep) the live version of
// one adjacency side. When the tombstone need not be kept, every older
// version is unobservable too (their removal epochs are even earlier),
// so the whole cell goes.
func removeSide(side map[stream.VertexID]map[halfKey]cell, v stream.VertexID, hk halfKey, at Epoch, keep bool) {
	m := side[v]
	c := m[hk]
	if !keep {
		delete(m, hk)
		if len(m) == 0 {
			delete(side, v)
		}
		return
	}
	c.removed = at
	m[hk] = c
}

// TS returns the timestamp of the edge live at the current epoch and
// whether it exists.
func (g *Graph) TS(key stream.EdgeKey) (int64, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.tsLocked(key, g.epoch)
}

// TSAt returns the timestamp of the edge visible at epoch e.
func (g *Graph) TSAt(e Epoch, key stream.EdgeKey) (int64, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.tsLocked(key, e)
}

func (g *Graph) tsLocked(key stream.EdgeKey, e Epoch) (int64, bool) {
	c, ok := g.out[key.Src][mkHalfKey(key.Dst, key.Label)]
	if !ok {
		return 0, false
	}
	v, ok := c.at(e)
	return v.ts, ok
}

// Has reports whether the edge is live at the current epoch.
func (g *Graph) Has(key stream.EdgeKey) bool {
	_, ok := g.TS(key)
	return ok
}

// Out calls f for every out-edge of src live at the current epoch.
// Returning false stops the iteration early.
func (g *Graph) Out(src stream.VertexID, f func(dst stream.VertexID, label stream.LabelID, ts int64) bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	iterSide(g.out[src], g.epoch, f)
}

// OutAt calls f for every out-edge of src visible at epoch e.
func (g *Graph) OutAt(e Epoch, src stream.VertexID, f func(dst stream.VertexID, label stream.LabelID, ts int64) bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	iterSide(g.out[src], e, f)
}

// In calls f for every in-edge of dst live at the current epoch.
// Returning false stops the iteration early.
func (g *Graph) In(dst stream.VertexID, f func(src stream.VertexID, label stream.LabelID, ts int64) bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	iterSide(g.in[dst], g.epoch, f)
}

// InAt calls f for every in-edge of dst visible at epoch e.
func (g *Graph) InAt(e Epoch, dst stream.VertexID, f func(src stream.VertexID, label stream.LabelID, ts int64) bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	iterSide(g.in[dst], e, f)
}

func iterSide(m map[halfKey]cell, e Epoch, f func(v stream.VertexID, l stream.LabelID, ts int64) bool) {
	for k, c := range m {
		v, ok := c.at(e)
		if !ok {
			continue
		}
		if !f(k.vertex(), k.label(), v.ts) {
			return
		}
	}
}

// Edges calls f for every edge live at the current epoch — the flat
// fold of the version intervals that checkpoint serialization records
// (the on-disk format stays epoch-free). Returning false stops the
// iteration early.
func (g *Graph) Edges(f func(e Edge) bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	for src, om := range g.out {
		for k, c := range om {
			v, ok := c.at(g.epoch)
			if !ok {
				continue
			}
			if !f(Edge{Src: src, Dst: k.vertex(), Label: k.label(), TS: v.ts}) {
				return
			}
		}
	}
}

// EdgesAt calls f for every edge visible at epoch e. A reader holding a
// lease on e (AcquireEpoch) may iterate concurrently with the single
// writer advancing later epochs — this is how a dynamically registered
// query bootstraps its Δ index from the live window without pausing
// ingest. Returning false stops the iteration early.
func (g *Graph) EdgesAt(e Epoch, f func(ed Edge) bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	for src, om := range g.out {
		for k, c := range om {
			v, ok := c.at(e)
			if !ok {
				continue
			}
			if !f(Edge{Src: src, Dst: k.vertex(), Label: k.label(), TS: v.ts}) {
				return
			}
		}
	}
}

// Vertices calls f for every vertex incident to at least one edge live
// at the current epoch.
func (g *Graph) Vertices(f func(v stream.VertexID) bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	for v, m := range g.out {
		if !sideHasLive(m) {
			continue
		}
		if !f(v) {
			return
		}
	}
	for v, m := range g.in {
		if om, ok := g.out[v]; ok && sideHasLive(om) {
			continue
		}
		if !sideHasLive(m) {
			continue
		}
		if !f(v) {
			return
		}
	}
}

// Expire removes every edge whose timestamp is ≤ deadline at the
// current epoch and calls onRemove (if non-nil) for each removed edge.
// Amortized O(1) per insertion thanks to the FIFO invariant; readers of
// earlier epochs keep seeing the expired edges until they release.
func (g *Graph) Expire(deadline int64, onRemove func(e Edge)) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	removed := 0
	for g.head < len(g.fifo) {
		ent := g.fifo[g.head]
		if ent.ts > deadline {
			break
		}
		g.head++
		cur, ok := g.tsLocked(ent.key, g.epoch)
		if !ok || cur != ent.ts {
			continue // deleted or refreshed since this record was queued
		}
		if cur <= deadline {
			g.deleteLocked(ent.key)
			if onRemove != nil {
				onRemove(Edge{Src: ent.key.Src, Dst: ent.key.Dst, Label: ent.key.Label, TS: cur})
			}
			removed++
		}
	}
	// Compact the FIFO occasionally to bound memory.
	if g.head > 1024 && g.head*2 > len(g.fifo) {
		g.fifo = append(g.fifo[:0:0], g.fifo[g.head:]...)
		g.head = 0
	}
	return removed
}

// DeadVersions returns the number of retained versions that are not
// live at the current epoch — superseded or tombstoned versions kept
// only for active readers. It is 0 once every reader has released and
// the GC has run (the compaction invariant the epoch-GC tests assert).
func (g *Graph) DeadVersions() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	n := 0
	for _, m := range g.out {
		for _, c := range m {
			if !c.live() {
				n++
			}
			n += len(c.older)
		}
	}
	return n
}

// ActiveReaders returns the number of distinct epochs with registered
// readers (diagnostics).
func (g *Graph) ActiveReaders() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.readers)
}

// Clone returns a deep copy of the graph's content at the current epoch
// (used by the batch oracle in tests). Version history and the FIFO are
// not cloned; a cloned graph is a static snapshot.
func (g *Graph) Clone() *Graph {
	c := New()
	g.Edges(func(e Edge) bool {
		c.Insert(e.Src, e.Dst, e.Label, e.TS)
		return true
	})
	return c
}
