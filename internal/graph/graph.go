// Package graph implements the snapshot graph G_{W,τ} of a sliding
// window over a streaming graph (Definition 5 of Pacaci et al., SIGMOD
// 2020): a directed, edge-labeled multigraph whose edges carry the
// timestamp of the streaming tuple that produced them.
//
// An edge is identified by (src, dst, label). Re-inserting an existing
// edge refreshes its timestamp (the freshest copy is the only one that
// matters for windowed reachability); an explicit deletion removes it.
// Expiry removes all edges whose timestamp has fallen out of the
// window, using a lazy FIFO of insertions that exploits the
// non-decreasing timestamp order of the stream.
package graph

import (
	"streamrpq/internal/stream"
)

// Edge is one labeled, timestamped edge of the snapshot graph.
type Edge struct {
	Src   stream.VertexID
	Dst   stream.VertexID
	Label stream.LabelID
	TS    int64
}

// halfKey packs (otherEndpoint, label) into one map key.
type halfKey uint64

func mkHalfKey(v stream.VertexID, l stream.LabelID) halfKey {
	return halfKey(uint64(v)<<32 | uint64(uint32(l)))
}

func (k halfKey) vertex() stream.VertexID { return stream.VertexID(k >> 32) }
func (k halfKey) label() stream.LabelID   { return stream.LabelID(uint32(k)) }

// Graph is the snapshot graph of the current window.
type Graph struct {
	out map[stream.VertexID]map[halfKey]int64 // src -> (dst,label) -> ts
	in  map[stream.VertexID]map[halfKey]int64 // dst -> (src,label) -> ts

	numEdges int

	// fifo holds insertion records in arrival order. Stream timestamps
	// are non-decreasing, so expiry pops from the front. Entries are
	// lazily invalidated by re-insertions (newer ts) and deletions.
	fifo []fifoEntry
	head int
}

type fifoEntry struct {
	key stream.EdgeKey
	ts  int64
}

// New returns an empty snapshot graph.
func New() *Graph {
	return &Graph{
		out: make(map[stream.VertexID]map[halfKey]int64),
		in:  make(map[stream.VertexID]map[halfKey]int64),
	}
}

// NumEdges returns the number of distinct (src,dst,label) edges.
func (g *Graph) NumEdges() int { return g.numEdges }

// NumVertices returns the number of vertices incident to at least one
// edge.
func (g *Graph) NumVertices() int {
	// Count the union of out/in keys without allocating a set when one
	// side dominates.
	n := len(g.out)
	for v := range g.in {
		if _, ok := g.out[v]; !ok {
			n++
		}
	}
	return n
}

// Insert adds the edge (src,dst,label) with timestamp ts, refreshing
// the timestamp if the edge exists. It reports whether the edge was new.
func (g *Graph) Insert(src, dst stream.VertexID, label stream.LabelID, ts int64) bool {
	ok := g.out[src]
	if ok == nil {
		ok = make(map[halfKey]int64)
		g.out[src] = ok
	}
	k := mkHalfKey(dst, label)
	_, existed := ok[k]
	ok[k] = ts

	ik := g.in[dst]
	if ik == nil {
		ik = make(map[halfKey]int64)
		g.in[dst] = ik
	}
	ik[mkHalfKey(src, label)] = ts

	if !existed {
		g.numEdges++
	}
	g.fifo = append(g.fifo, fifoEntry{key: stream.EdgeKey{Src: src, Dst: dst, Label: label}, ts: ts})
	return !existed
}

// Delete removes the edge identified by key. It reports whether the
// edge was present.
func (g *Graph) Delete(key stream.EdgeKey) bool {
	om, ok := g.out[key.Src]
	if !ok {
		return false
	}
	hk := mkHalfKey(key.Dst, key.Label)
	if _, ok := om[hk]; !ok {
		return false
	}
	delete(om, hk)
	if len(om) == 0 {
		delete(g.out, key.Src)
	}
	im := g.in[key.Dst]
	delete(im, mkHalfKey(key.Src, key.Label))
	if len(im) == 0 {
		delete(g.in, key.Dst)
	}
	g.numEdges--
	return true
}

// TS returns the timestamp of the edge and whether it exists.
func (g *Graph) TS(key stream.EdgeKey) (int64, bool) {
	om, ok := g.out[key.Src]
	if !ok {
		return 0, false
	}
	ts, ok := om[mkHalfKey(key.Dst, key.Label)]
	return ts, ok
}

// Has reports whether the edge exists.
func (g *Graph) Has(key stream.EdgeKey) bool {
	_, ok := g.TS(key)
	return ok
}

// Out calls f for every out-edge of src. Returning false stops the
// iteration early.
func (g *Graph) Out(src stream.VertexID, f func(dst stream.VertexID, label stream.LabelID, ts int64) bool) {
	for k, ts := range g.out[src] {
		if !f(k.vertex(), k.label(), ts) {
			return
		}
	}
}

// In calls f for every in-edge of dst. Returning false stops the
// iteration early.
func (g *Graph) In(dst stream.VertexID, f func(src stream.VertexID, label stream.LabelID, ts int64) bool) {
	for k, ts := range g.in[dst] {
		if !f(k.vertex(), k.label(), ts) {
			return
		}
	}
}

// Edges calls f for every edge in the graph. Returning false stops the
// iteration early.
func (g *Graph) Edges(f func(e Edge) bool) {
	for src, om := range g.out {
		for k, ts := range om {
			if !f(Edge{Src: src, Dst: k.vertex(), Label: k.label(), TS: ts}) {
				return
			}
		}
	}
}

// Vertices calls f for every vertex incident to at least one edge.
func (g *Graph) Vertices(f func(v stream.VertexID) bool) {
	for v := range g.out {
		if !f(v) {
			return
		}
	}
	for v := range g.in {
		if _, ok := g.out[v]; ok {
			continue
		}
		if !f(v) {
			return
		}
	}
}

// Expire removes every edge whose timestamp is ≤ deadline and calls
// onRemove (if non-nil) for each removed edge. Amortized O(1) per
// insertion thanks to the FIFO invariant.
func (g *Graph) Expire(deadline int64, onRemove func(e Edge)) int {
	removed := 0
	for g.head < len(g.fifo) {
		ent := g.fifo[g.head]
		if ent.ts > deadline {
			break
		}
		g.head++
		cur, ok := g.TS(ent.key)
		if !ok || cur != ent.ts {
			continue // deleted or refreshed since this record was queued
		}
		if cur <= deadline {
			g.Delete(ent.key)
			if onRemove != nil {
				onRemove(Edge{Src: ent.key.Src, Dst: ent.key.Dst, Label: ent.key.Label, TS: cur})
			}
			removed++
		}
	}
	// Compact the FIFO occasionally to bound memory.
	if g.head > 1024 && g.head*2 > len(g.fifo) {
		g.fifo = append(g.fifo[:0:0], g.fifo[g.head:]...)
		g.head = 0
	}
	return removed
}

// Clone returns a deep copy of the graph (used by the batch oracle in
// tests). The FIFO is not cloned; a cloned graph is a static snapshot.
func (g *Graph) Clone() *Graph {
	c := New()
	g.Edges(func(e Edge) bool {
		c.Insert(e.Src, e.Dst, e.Label, e.TS)
		return true
	})
	return c
}
