package graph

import (
	"math"

	"streamrpq/internal/stream"
)

// This file holds the packed adjacency representation: a flat table of
// per-vertex edge slabs indexed by dense vertex id, with pointer-free
// version cells. See the package comment for the memory-layout story.

// liveDelta marks a packed version that has not been superseded or
// removed (the delta-space analogue of liveEpoch).
const liveDelta = uint32(math.MaxUint32)

// lookupThreshold is the slab degree above which a (vertex,label) →
// index map is maintained for O(1) point lookups. Below it, point
// lookups linearly scan the slab — for the short adjacency lists that
// dominate real graphs a scan over one or two cache lines beats a map
// probe, and no map is allocated at all.
const lookupThreshold = 24

// packedEdge is one (other, label) adjacency cell with its newest
// version inlined: 32 bytes, pointer-free. Epochs are stored as uint32
// deltas against the owning slab's base epoch (liveDelta = still
// live); superseded versions that leased readers may still observe
// live in the slab's overflow arena, chained from ovf (-1 = none).
type packedEdge struct {
	ts      int64
	other   uint32 // the other endpoint (dst in out-slabs, src in in-slabs)
	label   int32
	added   uint32 // epoch delta vs slab base
	removed uint32 // epoch delta vs slab base; liveDelta while current
	ovf     int32  // head of the overflow version chain, -1 if none
}

// ovfVersion is a superseded version retained for leased readers, in
// the slab's flat overflow arena. Overflow is the rare path (only
// taken while a reader actually holds an older epoch), so it keeps
// full epochs rather than deltas; next chains versions of the same
// cell, and doubles as the free-list link.
type ovfVersion struct {
	ts      int64
	added   Epoch
	removed Epoch
	next    int32
}

// slab is the contiguous adjacency of one vertex side: a growable
// array of packed edge cells plus the overflow arena their version
// chains live in. Slabs are allocated once per (vertex, side) and
// never move; the stripe lock of the owning vertex guards all access.
type slab struct {
	base    Epoch // epoch that packed deltas are relative to
	edges   []packedEdge
	ovf     []ovfVersion
	ovfFree int32 // free-list head in ovf, -1 if none

	// lookup maps (other,label) to an edge index once the slab grows
	// past lookupThreshold; nil below it (linear scan).
	lookup map[uint64]int32
}

func newSlab(base Epoch) *slab {
	return &slab{base: base, ovfFree: -1}
}

func packHalf(v stream.VertexID, l stream.LabelID) uint64 {
	return uint64(v)<<32 | uint64(uint32(l))
}

// absAdded returns the full added epoch of the inline version.
func (s *slab) absAdded(pe *packedEdge) Epoch { return s.base + Epoch(pe.added) }

// absRemoved returns the full removed epoch of the inline version.
func (s *slab) absRemoved(pe *packedEdge) Epoch {
	if pe.removed == liveDelta {
		return liveEpoch
	}
	return s.base + Epoch(pe.removed)
}

// find returns the index of the (other,label) cell, or -1.
func (s *slab) find(other stream.VertexID, label stream.LabelID) int32 {
	if s.lookup != nil {
		if i, ok := s.lookup[packHalf(other, label)]; ok {
			return i
		}
		return -1
	}
	o, l := uint32(other), int32(label)
	for i := range s.edges {
		if s.edges[i].other == o && s.edges[i].label == l {
			return int32(i)
		}
	}
	return -1
}

// appendEdge adds a fresh cell and maintains the lookup index.
func (s *slab) appendEdge(pe packedEdge) {
	idx := int32(len(s.edges))
	s.edges = append(s.edges, pe)
	if s.lookup != nil {
		s.lookup[packHalf(stream.VertexID(pe.other), stream.LabelID(pe.label))] = idx
	} else if len(s.edges) > lookupThreshold {
		s.lookup = make(map[uint64]int32, 2*len(s.edges))
		for i := range s.edges {
			e := &s.edges[i]
			s.lookup[packHalf(stream.VertexID(e.other), stream.LabelID(e.label))] = int32(i)
		}
	}
}

// swapRemove deletes the cell at idx (its overflow chain must already
// be freed), compacting the slab by moving the last cell into the gap.
// Iteration order is therefore a function of the mutation history, not
// of hashing — every traversal consumer either sorts or is
// order-insensitive (see the canonicity notes in internal/core).
func (s *slab) swapRemove(idx int32) {
	last := int32(len(s.edges) - 1)
	gone := s.edges[idx]
	if idx != last {
		s.edges[idx] = s.edges[last]
		if s.lookup != nil {
			moved := &s.edges[idx]
			s.lookup[packHalf(stream.VertexID(moved.other), stream.LabelID(moved.label))] = idx
		}
	}
	s.edges = s.edges[:last]
	if s.lookup != nil {
		delete(s.lookup, packHalf(stream.VertexID(gone.other), stream.LabelID(gone.label)))
	}
}

// pushOvf stores a superseded version in the overflow arena at the
// head of the cell's chain, reusing a free slot when one exists.
func (s *slab) pushOvf(pe *packedEdge, v ovfVersion) {
	v.next = pe.ovf
	if s.ovfFree >= 0 {
		slot := s.ovfFree
		s.ovfFree = s.ovf[slot].next
		s.ovf[slot] = v
		pe.ovf = slot
		return
	}
	s.ovf = append(s.ovf, v)
	pe.ovf = int32(len(s.ovf) - 1)
}

// pruneOvf drops every chained version removed at or before bound and
// returns how many remain.
func (s *slab) pruneOvf(pe *packedEdge, bound Epoch) int {
	kept := 0
	prev := int32(-1)
	cur := pe.ovf
	for cur >= 0 {
		next := s.ovf[cur].next
		if s.ovf[cur].removed <= bound {
			if prev < 0 {
				pe.ovf = next
			} else {
				s.ovf[prev].next = next
			}
			s.ovf[cur].next = s.ovfFree
			s.ovfFree = cur
		} else {
			kept++
			prev = cur
		}
		cur = next
	}
	return kept
}

// freeChain returns a whole overflow chain to the free list.
func (s *slab) freeChain(pe *packedEdge) {
	cur := pe.ovf
	for cur >= 0 {
		next := s.ovf[cur].next
		s.ovf[cur].next = s.ovfFree
		s.ovfFree = cur
		cur = next
	}
	pe.ovf = -1
}

// versionAt returns the timestamp of the cell's version visible at
// epoch e. Version intervals are disjoint, so chain order is
// irrelevant for correctness.
func (s *slab) versionAt(pe *packedEdge, e Epoch) (int64, bool) {
	if s.absAdded(pe) <= e && e < s.absRemoved(pe) {
		return pe.ts, true
	}
	for cur := pe.ovf; cur >= 0; cur = s.ovf[cur].next {
		ov := &s.ovf[cur]
		if ov.added <= e && e < ov.removed {
			return ov.ts, true
		}
	}
	return 0, false
}

// deltaFor converts an absolute epoch to the slab's delta space,
// rebasing the slab when the writer epoch has outrun the uint32 range.
// minR bounds how far back any reader can observe, so rebasing to it
// never changes what a live lease sees.
func (s *slab) deltaFor(epoch, minR Epoch) uint32 {
	d := epoch - s.base
	if d < Epoch(liveDelta) {
		return uint32(d)
	}
	s.rebase(minR)
	d = epoch - s.base
	if d >= Epoch(liveDelta) {
		// Only reachable if a single lease was held across 2^32 epoch
		// advances; the coordinator releases leases every sub-batch.
		panic("graph: epoch delta overflow: reader lease held across 2^32 epochs")
	}
	return uint32(d)
}

// rebase rewrites every packed delta against a new base epoch of minR.
// Versions dead at or before minR are unobservable by any current or
// future reader and are dropped on the way; added epochs below the new
// base clamp to it (every remaining reader's epoch is >= minR, so
// visibility is unchanged).
func (s *slab) rebase(minR Epoch) {
	newBase := minR
	for i := 0; i < len(s.edges); {
		pe := &s.edges[i]
		if s.absRemoved(pe) <= newBase {
			s.freeChain(pe)
			s.swapRemove(int32(i))
			continue // a new cell now occupies index i
		}
		added := s.absAdded(pe)
		if added < newBase {
			added = newBase
		}
		pe.added = uint32(added - newBase)
		if pe.removed != liveDelta {
			pe.removed = uint32(s.absRemoved(pe) - newBase)
		}
		s.pruneOvf(pe, newBase)
		i++
	}
	s.base = newBase
}

// hasLive reports whether any cell's newest version is current.
func (s *slab) hasLive() bool {
	for i := range s.edges {
		if s.edges[i].removed == liveDelta {
			return true
		}
	}
	return false
}

// table is the top-level dense-id adjacency: slab pointers per vertex
// and side. The writer grows it copy-on-write and publishes via an
// atomic pointer; slabs themselves never move, so a reader holding a
// stale table sees exactly the slabs that existed when it loaded —
// anything missing holds only versions newer than the reader's epoch.
type table struct {
	out []*slab
	in  []*slab
}

// grown returns a copy of t with capacity for vertex id v.
func (t *table) grown(v stream.VertexID) *table {
	n := len(t.out)
	if n == 0 {
		n = 64
	}
	for n <= int(v) {
		n *= 2
	}
	nt := &table{out: make([]*slab, n), in: make([]*slab, n)}
	copy(nt.out, t.out)
	copy(nt.in, t.in)
	return nt
}
