//go:build !unix

package persist

import "os"

// Non-unix platforms run without inter-process locking; the directory
// is still protected against double-enable within one process by
// Create's existing-state check.
func acquireDirLock(string) (*os.File, error) { return nil, nil }

func releaseDirLock(*os.File) {}
