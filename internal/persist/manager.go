package persist

import (
	"errors"
	"fmt"
	"os"
	"sort"

	"streamrpq/internal/stream"
)

// Options configures a persistence Manager.
type Options struct {
	// Fsync forces an fsync after every WAL record and snapshot write.
	// Off by default: the in-process crash model (and the tests) only
	// need the data to have left the process; turn it on when surviving
	// OS/power failure matters more than ingest latency.
	Fsync bool
	// KeepSnapshots is how many snapshot generations to retain (the
	// current one included). At least 2, so a corrupt latest snapshot
	// can always fall back one generation. Default 2.
	KeepSnapshots int
}

func (o *Options) defaults() {
	if o.KeepSnapshots < 2 {
		o.KeepSnapshots = 2
	}
}

// Manager owns one persistence directory: it appends to the current WAL
// segment, writes snapshot generations, and prunes superseded files.
// It is driven by a single goroutine, like the engines.
type Manager struct {
	dir    string
	opts   Options
	gen    uint64 // generation of the snapshot the current WAL follows
	maxGen uint64 // highest generation among all files ever seen
	virgin bool   // Create path before the first snapshot: next gen is 0
	wal    *walWriter
	lock   *os.File // exclusive flock on the directory (unix)
	// knownValid caches generations this process wrote (or loaded)
	// successfully, so prune does not re-read and re-checksum those
	// snapshot files on every checkpoint.
	knownValid map[uint64]bool
}

// Create initializes a fresh persistence directory. It fails if dir
// already holds persisted state (use Open to resume from it). The
// caller must write the generation-0 snapshot (the evaluator metadata
// and empty state) via WriteSnapshot before appending batches.
func Create(dir string, opts Options) (*Manager, error) {
	opts.defaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	lock, err := acquireDirLock(dir)
	if err != nil {
		return nil, err
	}
	snaps, wals, err := scanDir(dir)
	if err != nil {
		releaseDirLock(lock)
		return nil, err
	}
	if len(snaps) > 0 || len(wals) > 0 {
		releaseDirLock(lock)
		return nil, fmt.Errorf("persist: %s already contains persisted state (%d snapshots, %d WAL segments); use Recover", dir, len(snaps), len(wals))
	}
	return &Manager{dir: dir, opts: opts, virgin: true, knownValid: make(map[uint64]bool), lock: lock}, nil
}

// Open scans an existing persistence directory, validates snapshots
// newest-first, and returns the manager positioned at the latest valid
// snapshot. Corrupt or truncated snapshots are skipped (the fallback
// path); if no valid snapshot exists the directory is unrecoverable.
// After Open, call Replay to apply the WAL suffix, then append freely.
func Open(dir string, opts Options) (*Manager, *Snapshot, error) {
	opts.defaults()
	lock, err := acquireDirLock(dir)
	if err != nil {
		return nil, nil, err
	}
	fail := func(err error) (*Manager, *Snapshot, error) {
		releaseDirLock(lock)
		return nil, nil, err
	}
	snaps, wals, err := scanDir(dir)
	if err != nil {
		return fail(err)
	}
	if len(snaps) == 0 {
		return fail(fmt.Errorf("persist: %s contains no snapshot", dir))
	}
	maxGen := snaps[len(snaps)-1]
	if len(wals) > 0 && wals[len(wals)-1] > maxGen {
		maxGen = wals[len(wals)-1]
	}
	// Newest first; fall back on checksum or decode failure.
	var snap *Snapshot
	var lastErr error
	for i := len(snaps) - 1; i >= 0; i-- {
		s, err := ReadSnapshotFile(SnapshotPath(dir, snaps[i]))
		if err != nil {
			lastErr = err
			continue
		}
		if s.Gen != snaps[i] {
			lastErr = fmt.Errorf("persist: snapshot %d claims generation %d", snaps[i], s.Gen)
			continue
		}
		snap = s
		break
	}
	if snap == nil {
		return fail(fmt.Errorf("persist: no valid snapshot in %s: %w", dir, lastErr))
	}
	m := &Manager{dir: dir, opts: opts, gen: snap.Gen, maxGen: maxGen,
		knownValid: map[uint64]bool{snap.Gen: true}, lock: lock}
	return m, snap, nil
}

// scanDir lists snapshot and WAL generations present in dir, ascending.
func scanDir(dir string) (snaps, wals []uint64, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil, nil
		}
		return nil, nil, err
	}
	for _, ent := range entries {
		// Anchor the match by reconstructing the canonical name:
		// Sscanf("snap-0.ckpt.tmp", "snap-%d.ckpt") succeeds, and a
		// leftover .tmp from a crashed atomic write must not count as a
		// generation (it would wedge both Create and Open).
		var g uint64
		if n, _ := fmt.Sscanf(ent.Name(), "snap-%d.ckpt", &g); n == 1 &&
			ent.Name() == fmt.Sprintf("snap-%08d.ckpt", g) {
			snaps = append(snaps, g)
		} else if n, _ := fmt.Sscanf(ent.Name(), "wal-%d.log", &g); n == 1 &&
			ent.Name() == fmt.Sprintf("wal-%08d.log", g) {
			wals = append(wals, g)
		}
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] < snaps[j] })
	sort.Slice(wals, func(i, j int) bool { return wals[i] < wals[j] })
	return snaps, wals, nil
}

// Replay applies the WAL suffix after the snapshot the manager was
// opened at: segments gen, gen+1, ... in order (later segments exist
// when recovery fell back past a corrupt snapshot). Only the LAST
// existing segment may end in a torn or corrupt record — that is the
// crash signature — and it is truncated to its valid prefix and
// reopened for appending. A corrupt record in the middle of an earlier
// segment is real data loss (every later segment depends on those
// batches), so it aborts recovery instead of silently skipping the
// gap. If no segment exists one is created. fn is called for every
// valid record in order.
func (m *Manager) Replay(fn func(*WalRecord) error) error {
	if m.wal != nil {
		return fmt.Errorf("persist: Replay after appending started")
	}
	var segs []uint64
	for g := m.gen; g <= m.maxGen; g++ {
		if _, err := os.Stat(walPath(m.dir, g)); err != nil {
			if os.IsNotExist(err) {
				continue
			}
			return err
		}
		segs = append(segs, g)
	}
	if len(segs) == 0 {
		w, err := createWalSegment(walPath(m.dir, m.gen), m.gen, m.opts.Fsync)
		if err != nil {
			return err
		}
		m.wal = w
		return nil
	}
	for i, g := range segs {
		path := walPath(m.dir, g)
		validLen, err := replaySegment(path, g, fn)
		if errors.Is(err, errTornWalHeader) && i == len(segs)-1 {
			// The crash landed between creating the final segment and
			// writing its header: the segment holds no records. Recreate
			// it and resume appending there.
			if err := os.Remove(path); err != nil {
				return err
			}
			w, err := createWalSegment(path, g, m.opts.Fsync)
			if err != nil {
				return err
			}
			m.gen, m.wal = g, w
			return nil
		}
		if err != nil {
			return err
		}
		if i < len(segs)-1 {
			info, err := os.Stat(path)
			if err != nil {
				return err
			}
			if validLen != info.Size() {
				return fmt.Errorf("persist: %s: corrupt record at offset %d in a non-final WAL segment (batches after it exist in later segments); refusing to recover across the gap", path, validLen)
			}
			continue
		}
		if err := os.Truncate(path, validLen); err != nil {
			return err
		}
	}
	last := segs[len(segs)-1]
	w, err := openWalSegmentAppend(walPath(m.dir, last), m.opts.Fsync)
	if err != nil {
		return err
	}
	m.gen = last
	m.wal = w
	return nil
}

// Gen returns the generation the current WAL segment belongs to.
func (m *Manager) Gen() uint64 { return m.gen }

// AppendBatch appends one batch record to the current WAL segment: the
// dictionary names interned while encoding the batch, then the tuples.
func (m *Manager) AppendBatch(vdelta, ldelta []string, tuples []stream.Tuple) error {
	if m.wal == nil {
		return fmt.Errorf("persist: no open WAL segment (write the initial snapshot or Replay first; a failed checkpoint also closes the segment — retry WriteSnapshot to repair)")
	}
	return m.wal.AppendBatch(vdelta, ldelta, tuples)
}

// AppendCommit appends a commit record marking the last appended
// batch's results as delivered.
func (m *Manager) AppendCommit(lastTS int64, results int64) error {
	if m.wal == nil {
		return fmt.Errorf("persist: no open WAL segment")
	}
	return m.wal.AppendCommit(lastTS, results)
}

// WriteSnapshot persists a new snapshot generation: the current WAL
// segment is closed, the snapshot is written atomically under the next
// generation number, a fresh WAL segment for that generation is opened,
// and superseded files are pruned (keeping Options.KeepSnapshots
// generations for corruption fallback).
func (m *Manager) WriteSnapshot(s *Snapshot) error {
	next := m.maxGen + 1
	if m.virgin {
		next = 0
		m.virgin = false
	}
	s.Gen = next
	if err := writeFileAtomic(SnapshotPath(m.dir, next), EncodeSnapshot(s), m.opts.Fsync); err != nil {
		return err
	}
	if m.wal != nil {
		if err := m.wal.Close(); err != nil {
			return err
		}
		m.wal = nil
	}
	w, err := createWalSegment(walPath(m.dir, next), next, m.opts.Fsync)
	if err != nil {
		return err
	}
	m.gen, m.maxGen, m.wal = next, next, w
	m.knownValid[next] = true
	m.prune()
	return nil
}

// prune removes snapshot generations older than the KeepSnapshots
// newest VALID ones, and WAL segments older than the oldest kept valid
// snapshot (those batches are fully contained in every kept snapshot).
// Only snapshots that pass their checksum count toward the keep window:
// a corrupt newest generation must not evict the valid fallback it
// would itself need. Pruning is best-effort: a failure leaves extra
// files behind, never missing ones. Validity is cached per generation,
// so the steady state (every file written by this process) does no
// file I/O beyond the directory scan.
func (m *Manager) prune() {
	snaps, wals, err := scanDir(m.dir)
	if err != nil || len(snaps) <= m.opts.KeepSnapshots {
		return
	}
	valid := make([]uint64, 0, len(snaps))
	for _, g := range snaps {
		if m.knownValid[g] {
			valid = append(valid, g) // written or loaded by this process
			continue
		}
		if fg, err := snapshotFileGen(SnapshotPath(m.dir, g)); err == nil && fg == g {
			m.knownValid[g] = true
			valid = append(valid, g)
		}
	}
	if len(valid) <= m.opts.KeepSnapshots {
		return
	}
	oldestKept := valid[len(valid)-m.opts.KeepSnapshots]
	for _, g := range snaps {
		if g < oldestKept {
			os.Remove(SnapshotPath(m.dir, g))
		}
	}
	for _, g := range wals {
		if g < oldestKept {
			os.Remove(walPath(m.dir, g))
		}
	}
}

// Close closes the current WAL segment. The manager cannot append
// afterwards; a new Open resumes cleanly.
func (m *Manager) Close() error {
	var err error
	if m.wal != nil {
		err = m.wal.Close()
		m.wal = nil
	}
	releaseDirLock(m.lock)
	m.lock = nil
	return err
}
