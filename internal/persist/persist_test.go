package persist

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"streamrpq/internal/core"
	"streamrpq/internal/graph"
	"streamrpq/internal/stream"
	"streamrpq/internal/window"
)

func testSnapshot(gen uint64) *Snapshot {
	return &Snapshot{
		Gen:            gen,
		Spec:           window.Spec{Size: 100, Slide: 5},
		Sharded:        true,
		Shards:         4,
		Queries:        []string{"a/b*", "(a|b)+"},
		Vertices:       []string{"x", "y", "z"},
		Labels:         []string{"a", "b"},
		LastTS:         int64(1000 + gen),
		Started:        true,
		AppliedTuples:  int64(50 * gen),
		AppliedBatches: gen,
		State: &core.MultiState{
			Now:     int64(1000 + gen),
			Seen:    int64(50 * gen),
			Dropped: 3,
			Win:     window.State{Boundary: 995, Started: true},
			Edges: []graph.Edge{
				{Src: 0, Dst: 1, Label: 0, TS: 990},
				{Src: 1, Dst: 2, Label: 1, TS: 995},
			},
			Members: []*core.RAPQState{
				{
					Now:      int64(1000 + gen),
					Deadline: 900,
					Win:      window.State{Boundary: 995, Started: true},
					Stats:    core.StatState{Results: 7, TuplesSeen: 50},
					Trees: []core.TreeState{
						{Root: 0, Nodes: []core.TreeNodeState{
							{V: 1, S: 1, TS: 990, ParentV: 0, ParentS: 0},
							{V: 2, S: 1, TS: 990, ParentV: 1, ParentS: 1},
						}},
					},
				},
				{Now: int64(1000 + gen), Win: window.State{Boundary: 995, Started: true}},
			},
			MemberGroup:    []int{0, 1},
			Dispatches:     42,
			RelevanceSkips: 17,
		},
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	want := testSnapshot(3)
	got, err := DecodeSnapshot(EncodeSnapshot(want))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("round trip diverged:\nwant %+v\ngot  %+v", want, got)
	}
}

func TestSnapshotCorruptionDetected(t *testing.T) {
	data := EncodeSnapshot(testSnapshot(1))
	for _, mutate := range []struct {
		name string
		f    func([]byte) []byte
	}{
		{"flip-middle-byte", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[len(c)/2] ^= 0x40
			return c
		}},
		{"truncate-tail", func(b []byte) []byte { return b[:len(b)-5] }},
		{"truncate-short", func(b []byte) []byte { return b[:6] }},
		{"flip-crc", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[len(c)-1] ^= 0xff
			return c
		}},
	} {
		if _, err := DecodeSnapshot(mutate.f(data)); err == nil {
			t.Errorf("%s: corruption not detected", mutate.name)
		}
	}
}

func TestEngineSnapshotRoundTripRSPQ(t *testing.T) {
	want := &EngineSnapshot{
		Kind: KindRSPQ,
		Spec: window.Spec{Size: 18, Slide: 4},
		Edges: []graph.Edge{
			{Src: 3, Dst: 4, Label: 0, TS: 10},
		},
		RSPQ: &core.RSPQState{
			Now:       12,
			Win:       window.State{Boundary: 12, Started: true},
			Stats:     core.StatState{Results: 2, ConflictsFound: 1, Unmarkings: 1},
			BudgetHit: false,
			Trees: []core.SPTreeState{
				{
					RootV: 3,
					Nodes: []core.SPNodeState{
						{V: 3, S: 0, TS: 1<<62 + 1, Parent: -1},
						{V: 4, S: 1, TS: 10, Parent: 0},
						{V: 4, S: 2, TS: 10, Parent: 1}, // second instance of vertex 4
					},
					Marked: []uint64{1<<16 | 1, 4<<16 | 2},
				},
			},
		},
	}
	data, err := EncodeEngineSnapshot(want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeEngineSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("round trip diverged:\nwant %+v\ngot  %+v", want, got)
	}
	// And corruption is caught here too.
	data[len(data)/2] ^= 1
	if _, err := DecodeEngineSnapshot(data); err == nil {
		t.Fatal("corrupt engine snapshot accepted")
	}
}

func walTuples(n int, base int64) []stream.Tuple {
	out := make([]stream.Tuple, n)
	for i := range out {
		op := stream.Insert
		if i%7 == 3 {
			op = stream.Delete
		}
		out[i] = stream.Tuple{
			TS:    base + int64(i/2),
			Src:   stream.VertexID(i % 5),
			Dst:   stream.VertexID((i + 1) % 5),
			Label: stream.LabelID(i % 3),
			Op:    op,
		}
	}
	return out
}

// replayAll collects every record in dir starting from snapshot gen.
func replayAll(t *testing.T, dir string, opts Options) (*Snapshot, []*WalRecord, *Manager) {
	t.Helper()
	mgr, snap, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	var recs []*WalRecord
	if err := mgr.Replay(func(r *WalRecord) error {
		recs = append(recs, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return snap, recs, mgr
}

func TestWALAppendReplay(t *testing.T) {
	dir := t.TempDir()
	mgr, err := Create(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.WriteSnapshot(testSnapshot(0)); err != nil {
		t.Fatal(err)
	}
	b1 := walTuples(10, 100)
	b2 := walTuples(4, 110)
	if err := mgr.AppendBatch([]string{"u", "v"}, []string{"c"}, b1); err != nil {
		t.Fatal(err)
	}
	if err := mgr.AppendCommit(104, 3); err != nil {
		t.Fatal(err)
	}
	if err := mgr.AppendBatch(nil, nil, b2); err != nil {
		t.Fatal(err)
	}
	// No commit for b2: the crash window.
	mgr.Close()

	_, recs, mgr2 := replayAll(t, dir, Options{})
	defer mgr2.Close()
	if len(recs) != 3 {
		t.Fatalf("replayed %d records, want 3", len(recs))
	}
	if !recs[0].Batch || !reflect.DeepEqual(recs[0].Tuples, b1) ||
		!reflect.DeepEqual(recs[0].VDelta, []string{"u", "v"}) ||
		!reflect.DeepEqual(recs[0].LDelta, []string{"c"}) {
		t.Fatalf("batch 1 mismatch: %+v", recs[0])
	}
	if recs[1].Batch || recs[1].LastTS != 104 || recs[1].Results != 3 {
		t.Fatalf("commit mismatch: %+v", recs[1])
	}
	if !recs[2].Batch || !reflect.DeepEqual(recs[2].Tuples, b2) {
		t.Fatalf("batch 2 mismatch: %+v", recs[2])
	}
}

// TestWALTornTail: a partial trailing record (torn write at crash) is
// detected via the record checksum, discarded, and the segment is
// truncated so appending can resume cleanly.
func TestWALTornTail(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		dir := t.TempDir()
		mgr, err := Create(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := mgr.WriteSnapshot(testSnapshot(0)); err != nil {
			t.Fatal(err)
		}
		b1 := walTuples(8, 50)
		if err := mgr.AppendBatch(nil, nil, b1); err != nil {
			t.Fatal(err)
		}
		if err := mgr.AppendCommit(53, 1); err != nil {
			t.Fatal(err)
		}
		if err := mgr.AppendBatch([]string{"w"}, nil, walTuples(5, 60)); err != nil {
			t.Fatal(err)
		}
		mgr.Close()

		// Tear off a random number of trailing bytes of the last record.
		path := walPath(dir, 0)
		info, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		cut := int64(rng.Intn(40) + 1)
		if err := os.Truncate(path, info.Size()-cut); err != nil {
			t.Fatal(err)
		}

		_, recs, mgr2 := replayAll(t, dir, Options{})
		if len(recs) < 2 || len(recs) > 3 {
			t.Fatalf("trial %d: replayed %d records", trial, len(recs))
		}
		if !reflect.DeepEqual(recs[0].Tuples, b1) || recs[1].Batch {
			t.Fatalf("trial %d: prefix corrupted by tear", trial)
		}
		// Appending after recovery must produce a clean, replayable log.
		b3 := walTuples(3, 70)
		if err := mgr2.AppendBatch(nil, nil, b3); err != nil {
			t.Fatal(err)
		}
		mgr2.Close()
		_, recs2, mgr3 := replayAll(t, dir, Options{})
		mgr3.Close()
		if len(recs2) != len(recs)+1 || !reflect.DeepEqual(recs2[len(recs2)-1].Tuples, b3) {
			t.Fatalf("trial %d: post-truncation append not replayable", trial)
		}
	}
}

// TestCorruptSnapshotFallsBack: when the newest snapshot fails its
// checksum, Open falls back to the previous generation and Replay
// covers the gap with the older WAL segments.
func TestCorruptSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	mgr, err := Create(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.WriteSnapshot(testSnapshot(0)); err != nil { // gen 0
		t.Fatal(err)
	}
	b1 := walTuples(6, 10)
	if err := mgr.AppendBatch(nil, nil, b1); err != nil {
		t.Fatal(err)
	}
	if err := mgr.AppendCommit(12, 0); err != nil {
		t.Fatal(err)
	}
	if err := mgr.WriteSnapshot(testSnapshot(0)); err != nil { // gen 1
		t.Fatal(err)
	}
	b2 := walTuples(4, 20)
	if err := mgr.AppendBatch(nil, nil, b2); err != nil {
		t.Fatal(err)
	}
	if err := mgr.AppendCommit(21, 0); err != nil {
		t.Fatal(err)
	}
	mgr.Close()

	// Healthy: recovery starts at gen 1 and replays only wal-1.
	snap, recs, m2 := replayAll(t, dir, Options{})
	m2.Close()
	if snap.Gen != 1 || len(recs) != 2 || !reflect.DeepEqual(recs[0].Tuples, b2) {
		t.Fatalf("healthy recovery: gen %d, %d records", snap.Gen, len(recs))
	}

	// Corrupt snap-1: recovery must fall back to gen 0 and replay
	// wal-0 then wal-1.
	path := SnapshotPath(dir, 1)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/3] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	snap, recs, m3 := replayAll(t, dir, Options{})
	if snap.Gen != 0 {
		t.Fatalf("fallback recovery landed on gen %d, want 0", snap.Gen)
	}
	if len(recs) != 4 || !reflect.DeepEqual(recs[0].Tuples, b1) || !reflect.DeepEqual(recs[2].Tuples, b2) {
		t.Fatalf("fallback replay saw %d records", len(recs))
	}
	// A checkpoint after fallback supersedes the corrupt generation.
	if err := m3.WriteSnapshot(testSnapshot(0)); err != nil {
		t.Fatal(err)
	}
	m3.Close()
	snap, _, m4 := replayAll(t, dir, Options{})
	m4.Close()
	if snap.Gen != 2 {
		t.Fatalf("post-fallback checkpoint has gen %d, want 2", snap.Gen)
	}
}

// TestPruneKeepsFallbackWindow: old generations are pruned but the
// previous snapshot (and the WAL segments needed to recover from it)
// always survive.
func TestPruneKeepsFallbackWindow(t *testing.T) {
	dir := t.TempDir()
	mgr, err := Create(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for g := 0; g < 5; g++ {
		if err := mgr.WriteSnapshot(testSnapshot(0)); err != nil {
			t.Fatal(err)
		}
		if err := mgr.AppendBatch(nil, nil, walTuples(2, int64(10*g))); err != nil {
			t.Fatal(err)
		}
		if err := mgr.AppendCommit(int64(10*g), 0); err != nil {
			t.Fatal(err)
		}
	}
	mgr.Close()
	snaps, wals, err := scanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snaps, []uint64{3, 4}) {
		t.Fatalf("kept snapshots %v, want [3 4]", snaps)
	}
	if !reflect.DeepEqual(wals, []uint64{3, 4}) {
		t.Fatalf("kept WAL segments %v, want [3 4]", wals)
	}
	// Corrupting the newest must still leave a recoverable directory.
	data, _ := os.ReadFile(SnapshotPath(dir, 4))
	data[len(data)-2] ^= 0xff
	os.WriteFile(SnapshotPath(dir, 4), data, 0o644)
	snap, recs, m2 := replayAll(t, dir, Options{})
	m2.Close()
	if snap.Gen != 3 || len(recs) != 4 {
		t.Fatalf("fallback after prune: gen %d, %d records", snap.Gen, len(recs))
	}
}

// TestReplayRefusesMidLogCorruption: a corrupt record in a NON-final
// WAL segment is real data loss (later segments depend on those
// batches); recovery must abort instead of replaying across the gap.
// The same corruption in the final segment is the ordinary torn tail
// and recovers fine.
func TestReplayRefusesMidLogCorruption(t *testing.T) {
	dir := t.TempDir()
	mgr, err := Create(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.WriteSnapshot(testSnapshot(0)); err != nil { // gen 0 + wal-0
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := mgr.AppendBatch(nil, nil, walTuples(4, int64(10+10*i))); err != nil {
			t.Fatal(err)
		}
		if err := mgr.AppendCommit(int64(11+10*i), 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := mgr.WriteSnapshot(testSnapshot(0)); err != nil { // gen 1 + wal-1
		t.Fatal(err)
	}
	if err := mgr.AppendBatch(nil, nil, walTuples(4, 50)); err != nil {
		t.Fatal(err)
	}
	mgr.Close()

	// Corrupt snap-1 (forcing fallback to gen 0 across wal-0 and wal-1)
	// and a MIDDLE record of wal-0.
	sdata, _ := os.ReadFile(SnapshotPath(dir, 1))
	sdata[len(sdata)/2] ^= 0x04
	os.WriteFile(SnapshotPath(dir, 1), sdata, 0o644)
	wdata, _ := os.ReadFile(walPath(dir, 0))
	wdata[len(wdata)/2] ^= 0x04
	os.WriteFile(walPath(dir, 0), wdata, 0o644)

	mgr2, snap, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if snap.Gen != 0 {
		t.Fatalf("fallback landed on gen %d, want 0", snap.Gen)
	}
	if err := mgr2.Replay(func(*WalRecord) error { return nil }); err == nil {
		t.Fatal("Replay silently skipped a mid-log corruption gap")
	}
	mgr2.Close()
}

// TestTornFinalSegmentHeaderRecovers: a kill between snapshot rename
// and the new segment's header write leaves a zero-byte (or
// header-prefix) wal file; that is an ordinary crash signature for the
// FINAL segment and recovery must recreate it and continue —
// non-prefix garbage stays fatal (real corruption).
func TestTornFinalSegmentHeaderRecovers(t *testing.T) {
	for _, tear := range []int{0, 3, 8} { // empty, mid-magic, past version
		dir := t.TempDir()
		mgr, err := Create(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := mgr.WriteSnapshot(testSnapshot(0)); err != nil { // gen 0
			t.Fatal(err)
		}
		b1 := walTuples(4, 10)
		if err := mgr.AppendBatch(nil, nil, b1); err != nil {
			t.Fatal(err)
		}
		if err := mgr.AppendCommit(11, 0); err != nil {
			t.Fatal(err)
		}
		if err := mgr.WriteSnapshot(testSnapshot(0)); err != nil { // gen 1 + wal-1
			t.Fatal(err)
		}
		mgr.Close()
		if err := os.Truncate(walPath(dir, 1), int64(tear)); err != nil {
			t.Fatal(err)
		}

		snap, recs, m2 := replayAll(t, dir, Options{})
		if snap.Gen != 1 || len(recs) != 0 {
			t.Fatalf("tear %d: recovered gen %d with %d records, want gen 1 with 0", tear, snap.Gen, len(recs))
		}
		// The recreated segment accepts appends and replays cleanly.
		if err := m2.AppendBatch(nil, nil, walTuples(2, 20)); err != nil {
			t.Fatalf("tear %d: append after recreation: %v", tear, err)
		}
		m2.Close()
		_, recs2, m3 := replayAll(t, dir, Options{})
		m3.Close()
		if len(recs2) != 1 {
			t.Fatalf("tear %d: post-recreation replay saw %d records, want 1", tear, len(recs2))
		}
	}

	// Garbage that is NOT a header prefix is real corruption: refuse.
	dir := t.TempDir()
	mgr, err := Create(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.WriteSnapshot(testSnapshot(0)); err != nil {
		t.Fatal(err)
	}
	mgr.Close()
	if err := os.WriteFile(walPath(dir, 0), []byte("XXXX"), 0o644); err != nil {
		t.Fatal(err)
	}
	mgr2, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr2.Replay(func(*WalRecord) error { return nil }); err == nil {
		t.Fatal("garbage WAL header accepted as torn crash signature")
	}
	mgr2.Close()
}

// TestScanIgnoresTempFiles: a leftover .tmp from a crashed atomic
// snapshot write must neither wedge Create ("already contains state")
// nor count as a generation for Open.
func TestScanIgnoresTempFiles(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "snap-00000000.ckpt.tmp"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "wal-00000000.log.tmp"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	snaps, wals, err := scanDir(dir)
	if err != nil || len(snaps) != 0 || len(wals) != 0 {
		t.Fatalf("scanDir counted temp files: snaps %v wals %v (err %v)", snaps, wals, err)
	}
	mgr, err := Create(dir, Options{})
	if err != nil {
		t.Fatalf("Create wedged by temp file: %v", err)
	}
	if err := mgr.WriteSnapshot(testSnapshot(0)); err != nil {
		t.Fatal(err)
	}
	mgr.Close()
	if _, _, err := Open(dir, Options{}); err != nil {
		t.Fatalf("Open after temp-file recovery: %v", err)
	}
}

// TestPruneDoesNotCountCorruptSnapshots: a corrupt generation must not
// consume a slot of the keep window — the valid fallback generation
// survives pruning even when newer (corrupt) files outnumber it.
func TestPruneDoesNotCountCorruptSnapshots(t *testing.T) {
	dir := t.TempDir()
	mgr, err := Create(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.WriteSnapshot(testSnapshot(0)); err != nil { // gen 0
		t.Fatal(err)
	}
	if err := mgr.AppendBatch(nil, nil, walTuples(3, 10)); err != nil {
		t.Fatal(err)
	}
	if err := mgr.AppendCommit(11, 0); err != nil {
		t.Fatal(err)
	}
	if err := mgr.WriteSnapshot(testSnapshot(0)); err != nil { // gen 1
		t.Fatal(err)
	}
	mgr.Close()

	// Corrupt gen 1, recover (falls back to 0), then checkpoint: prune
	// must keep valid gen 0, not the corrupt gen 1.
	data, _ := os.ReadFile(SnapshotPath(dir, 1))
	data[len(data)/2] ^= 0x08
	os.WriteFile(SnapshotPath(dir, 1), data, 0o644)

	snap, _, m2 := replayAll(t, dir, Options{})
	if snap.Gen != 0 {
		t.Fatalf("recovered gen %d, want 0", snap.Gen)
	}
	if err := m2.WriteSnapshot(testSnapshot(0)); err != nil { // gen 2 + prune
		t.Fatal(err)
	}
	m2.Close()
	if _, err := ReadSnapshotFile(SnapshotPath(dir, 0)); err != nil {
		t.Fatalf("prune deleted the only valid fallback generation: %v", err)
	}
	// And if gen 2 is now also corrupted, recovery still works from 0.
	data, _ = os.ReadFile(SnapshotPath(dir, 2))
	data[len(data)-1] ^= 0xff
	os.WriteFile(SnapshotPath(dir, 2), data, 0o644)
	snap, _, m3 := replayAll(t, dir, Options{})
	m3.Close()
	if snap.Gen != 0 {
		t.Fatalf("double-corruption recovery landed on gen %d, want 0", snap.Gen)
	}
}

func TestCreateRefusesExistingState(t *testing.T) {
	dir := t.TempDir()
	mgr, err := Create(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.WriteSnapshot(testSnapshot(0)); err != nil {
		t.Fatal(err)
	}
	mgr.Close()
	if _, err := Create(dir, Options{}); err == nil {
		t.Fatal("Create over an existing persistence directory accepted")
	}
	if _, _, err := Open(filepath.Join(dir, "nope"), Options{}); err == nil {
		t.Fatal("Open of a missing directory accepted")
	}
}
