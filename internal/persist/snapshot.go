package persist

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"streamrpq/internal/core"
	"streamrpq/internal/graph"
	"streamrpq/internal/stream"
	"streamrpq/internal/window"
)

// Snapshot file format (snap-<G>.ckpt):
//
//	magic    "SRPQSNAP"      8 bytes
//	version  uint8           currently 2
//	payload  varint-encoded sections (see encodeSnapshot)
//	crc32    uint32 LE       IEEE, over magic+version+payload
//
// The trailing whole-file checksum means any bit flip or truncation is
// detected before a single field is trusted; recovery then falls back
// to the previous generation's snapshot.

const (
	snapMagic = "SRPQSNAP"
	// Version 2 added the per-tree result-support counts (see
	// core.SupportCount). Restore recomputes them from the node lists and
	// cross-checks against the persisted values, so they ride along as a
	// consistency seal rather than redundant state; version-1 files
	// predate canonical deletions and are rejected. Version 3 added the
	// retain-all flag and the per-label stream clocks that dynamic query
	// registration needs (core.MultiState.Retain/LabelTS); older
	// versions are rejected, as before. Version 4 added multi-query
	// sharing: the facade sharing flag, the query→group mapping
	// (core.MultiState.MemberGroup — Members then holds one Δ state per
	// GROUP, not per query), and the dispatch/relevance-skip counters.
	// Version-3 files are still read: their nil mapping restores one
	// private group per query, which the coordinator re-deduplicates
	// when sharing is on (see core.PlanGroupPartition).
	snapVersion = 4

	// snapVersionMin is the oldest snapshot version recovery accepts.
	snapVersionMin = 3
)

// Snapshot is the full checkpointable state of a facade evaluator: the
// metadata needed to reconstruct it (window spec, query sources in
// registration order, backend kind and shard count), the dictionaries,
// the facade stream clock, and the coordinator state (shared graph +
// window clock + per-query Δ indexes).
type Snapshot struct {
	Gen            uint64
	Spec           window.Spec
	Sharded        bool
	Shards         int
	Sharing        bool     // multi-query sharing enabled (v4+; v3 files read as true, the current default)
	Queries        []string // source expressions, registration order
	Vertices       []string // vertex dictionary, id order
	Labels         []string // label dictionary, id order
	LastTS         int64
	Started        bool
	AppliedTuples  int64 // tuples ingested since stream start (for resume-skip)
	AppliedBatches uint64
	State          *core.MultiState
}

func encodeStats(e *encoder, st core.StatState) {
	e.i64(st.Results)
	e.i64(st.Invalidations)
	e.i64(st.TuplesSeen)
	e.i64(st.TuplesDropped)
	e.i64(st.ExpiryRuns)
	e.i64(st.ExpiryTimeNS)
	e.i64(st.InsertCalls)
	e.i64(st.ConflictsFound)
	e.i64(st.Unmarkings)
}

func decodeStats(d *decoder) core.StatState {
	return core.StatState{
		Results:        d.i64(),
		Invalidations:  d.i64(),
		TuplesSeen:     d.i64(),
		TuplesDropped:  d.i64(),
		ExpiryRuns:     d.i64(),
		ExpiryTimeNS:   d.i64(),
		InsertCalls:    d.i64(),
		ConflictsFound: d.i64(),
		Unmarkings:     d.i64(),
	}
}

func encodeSupport(e *encoder, sup []core.SupportCount) {
	e.u64(uint64(len(sup)))
	for _, sc := range sup {
		e.u64(uint64(sc.V))
		e.u64(uint64(uint32(sc.N)))
	}
}

func decodeSupport(d *decoder) []core.SupportCount {
	n := d.count(2)
	if n == 0 {
		return nil
	}
	sup := make([]core.SupportCount, 0, n)
	for i := 0; i < n && d.err == nil; i++ {
		sup = append(sup, core.SupportCount{
			V: stream.VertexID(d.u64()),
			N: int32(uint32(d.u64())),
		})
	}
	return sup
}

func encodeWinState(e *encoder, st window.State) {
	e.i64(st.Boundary)
	e.bool(st.Started)
}

func decodeWinState(d *decoder) window.State {
	return window.State{Boundary: d.i64(), Started: d.bool()}
}

// encodeEdges delta-encodes the timestamp column: snapshot edges are
// sorted by timestamp, so deltas stay small.
func encodeEdges(e *encoder, edges []graph.Edge) {
	e.u64(uint64(len(edges)))
	var last int64
	for i, ed := range edges {
		if i == 0 {
			e.i64(ed.TS)
		} else {
			e.i64(ed.TS - last)
		}
		last = ed.TS
		e.u64(uint64(ed.Src))
		e.u64(uint64(ed.Dst))
		e.u64(uint64(uint32(ed.Label)))
	}
}

func decodeEdges(d *decoder) []graph.Edge {
	n := d.count(4)
	if n == 0 {
		return nil
	}
	edges := make([]graph.Edge, 0, n)
	var last int64
	for i := 0; i < n; i++ {
		ts := d.i64()
		if i > 0 {
			ts += last
		}
		last = ts
		edges = append(edges, graph.Edge{
			TS:    ts,
			Src:   stream.VertexID(d.u64()),
			Dst:   stream.VertexID(d.u64()),
			Label: stream.LabelID(uint32(d.u64())),
		})
	}
	return edges
}

func encodeRAPQState(e *encoder, st *core.RAPQState) {
	e.i64(st.Now)
	e.i64(st.Deadline)
	encodeWinState(e, st.Win)
	encodeStats(e, st.Stats)
	e.u64(uint64(len(st.Trees)))
	for _, tr := range st.Trees {
		e.u64(uint64(tr.Root))
		e.u64(uint64(len(tr.Nodes)))
		for _, n := range tr.Nodes {
			e.u64(uint64(n.V))
			e.u64(uint64(uint32(n.S)))
			e.i64(n.TS)
			e.u64(uint64(n.ParentV))
			e.u64(uint64(uint32(n.ParentS)))
		}
		encodeSupport(e, tr.Support)
	}
}

func decodeRAPQState(d *decoder) *core.RAPQState {
	st := &core.RAPQState{
		Now:      d.i64(),
		Deadline: d.i64(),
		Win:      decodeWinState(d),
		Stats:    decodeStats(d),
	}
	ntrees := d.count(2)
	for i := 0; i < ntrees && d.err == nil; i++ {
		tr := core.TreeState{Root: stream.VertexID(d.u64())}
		nnodes := d.count(5)
		tr.Nodes = make([]core.TreeNodeState, 0, nnodes)
		for j := 0; j < nnodes && d.err == nil; j++ {
			tr.Nodes = append(tr.Nodes, core.TreeNodeState{
				V:       stream.VertexID(d.u64()),
				S:       int32(uint32(d.u64())),
				TS:      d.i64(),
				ParentV: stream.VertexID(d.u64()),
				ParentS: int32(uint32(d.u64())),
			})
		}
		tr.Support = decodeSupport(d)
		st.Trees = append(st.Trees, tr)
	}
	return st
}

// EncodeRSPQState serializes a simple-path engine's Δ index: the
// instance lists (with order and parent links) and the marking sets.
func encodeRSPQState(e *encoder, st *core.RSPQState) {
	e.i64(st.Now)
	encodeWinState(e, st.Win)
	encodeStats(e, st.Stats)
	e.bool(st.BudgetHit)
	e.u64(uint64(len(st.Trees)))
	for _, tr := range st.Trees {
		e.u64(uint64(tr.RootV))
		e.u64(uint64(len(tr.Nodes)))
		for _, n := range tr.Nodes {
			e.u64(uint64(n.V))
			e.u64(uint64(uint32(n.S)))
			e.i64(n.TS)
			e.i64(int64(n.Parent))
		}
		e.u64(uint64(len(tr.Marked)))
		for _, mk := range tr.Marked {
			e.u64(mk)
		}
		encodeSupport(e, tr.Support)
	}
}

func decodeRSPQState(d *decoder) *core.RSPQState {
	st := &core.RSPQState{
		Now:   d.i64(),
		Win:   decodeWinState(d),
		Stats: decodeStats(d),
	}
	st.BudgetHit = d.bool()
	ntrees := d.count(2)
	for i := 0; i < ntrees && d.err == nil; i++ {
		tr := core.SPTreeState{RootV: stream.VertexID(d.u64())}
		nnodes := d.count(4)
		tr.Nodes = make([]core.SPNodeState, 0, nnodes)
		for j := 0; j < nnodes && d.err == nil; j++ {
			tr.Nodes = append(tr.Nodes, core.SPNodeState{
				V:      stream.VertexID(d.u64()),
				S:      int32(uint32(d.u64())),
				TS:     d.i64(),
				Parent: int32(d.i64()),
			})
		}
		nmarked := d.count(1)
		tr.Marked = make([]uint64, 0, nmarked)
		for j := 0; j < nmarked && d.err == nil; j++ {
			tr.Marked = append(tr.Marked, d.u64())
		}
		tr.Support = decodeSupport(d)
		st.Trees = append(st.Trees, tr)
	}
	return st
}

func encodeMultiState(e *encoder, st *core.MultiState) {
	e.i64(st.Now)
	e.i64(st.Seen)
	e.i64(st.Dropped)
	encodeWinState(e, st.Win)
	encodeEdges(e, st.Edges)
	e.u64(uint64(len(st.Members)))
	for _, m := range st.Members {
		encodeRAPQState(e, m)
	}
	e.bool(st.Retain)
	e.u64(uint64(len(st.LabelTS)))
	for _, ts := range st.LabelTS {
		e.i64(ts)
	}
	// v4: the query→group mapping (rank of live query → index into
	// Members) plus the coordinator's dispatch counters.
	e.u64(uint64(len(st.MemberGroup)))
	for _, g := range st.MemberGroup {
		e.u64(uint64(g))
	}
	e.i64(st.Dispatches)
	e.i64(st.RelevanceSkips)
}

// decodeMultiState parses a coordinator state section; version selects
// between the v3 layout (one Δ state per query, no group mapping) and
// the v4 layout (one Δ state per group + MemberGroup + dispatch
// counters). A v3 state keeps MemberGroup nil, the marker
// core.PlanGroupPartition turns into one private group per query.
func decodeMultiState(d *decoder, version uint8) *core.MultiState {
	st := &core.MultiState{
		Now:     d.i64(),
		Seen:    d.i64(),
		Dropped: d.i64(),
		Win:     decodeWinState(d),
		Edges:   decodeEdges(d),
	}
	nmembers := d.count(2)
	for i := 0; i < nmembers && d.err == nil; i++ {
		st.Members = append(st.Members, decodeRAPQState(d))
	}
	st.Retain = d.bool()
	nlabels := d.count(1)
	for i := 0; i < nlabels && d.err == nil; i++ {
		st.LabelTS = append(st.LabelTS, d.i64())
	}
	if version >= 4 {
		nmap := d.count(1)
		st.MemberGroup = make([]int, 0, nmap)
		for i := 0; i < nmap && d.err == nil; i++ {
			st.MemberGroup = append(st.MemberGroup, int(d.u64()))
		}
		st.Dispatches = d.i64()
		st.RelevanceSkips = d.i64()
	}
	return st
}

// verifyEnvelope checks a checksummed file's framing — minimum length,
// magic, and the trailing whole-file CRC32 — and returns the body (the
// bytes under the checksum, magic included) for decoding. Every
// checksummed format (snapshot, engine snapshot) validates through
// this one helper so the rules cannot diverge between readers.
func verifyEnvelope(magic string, data []byte) ([]byte, error) {
	if len(data) < len(magic)+1+4 {
		return nil, fmt.Errorf("persist: %s file too short (%d bytes)", magic, len(data))
	}
	if string(data[:len(magic)]) != magic {
		return nil, fmt.Errorf("persist: bad magic %q (want %s)", data[:len(magic)], magic)
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(tail); got != want {
		return nil, fmt.Errorf("persist: %s checksum mismatch (file %08x, computed %08x)", magic, want, got)
	}
	return body, nil
}

// EncodeSnapshot renders the snapshot into the versioned, checksummed
// file format.
func EncodeSnapshot(s *Snapshot) []byte {
	e := &encoder{buf: make([]byte, 0, 4096)}
	e.buf = append(e.buf, snapMagic...)
	e.byte(snapVersion)
	e.u64(s.Gen)
	e.i64(s.Spec.Size)
	e.i64(s.Spec.Slide)
	e.bool(s.Sharded)
	e.u64(uint64(s.Shards))
	e.bool(s.Sharing)
	e.strs(s.Queries)
	e.strs(s.Vertices)
	e.strs(s.Labels)
	e.i64(s.LastTS)
	e.bool(s.Started)
	e.i64(s.AppliedTuples)
	e.u64(s.AppliedBatches)
	encodeMultiState(e, s.State)
	e.buf = binary.LittleEndian.AppendUint32(e.buf, crc32.ChecksumIEEE(e.buf))
	return e.buf
}

// DecodeSnapshot parses and verifies a snapshot file's contents.
func DecodeSnapshot(data []byte) (*Snapshot, error) {
	body, err := verifyEnvelope(snapMagic, data)
	if err != nil {
		return nil, err
	}
	d := &decoder{buf: body, off: len(snapMagic)}
	v := d.byte()
	if v < snapVersionMin || v > snapVersion {
		return nil, fmt.Errorf("persist: unsupported snapshot version %d", v)
	}
	s := &Snapshot{
		Gen:  d.u64(),
		Spec: window.Spec{Size: d.i64(), Slide: d.i64()},
	}
	s.Sharded = d.bool()
	s.Shards = int(d.u64())
	if v >= 4 {
		s.Sharing = d.bool()
	} else {
		// Pre-sharing snapshots restore under the current default; the
		// private per-query Δ states they carry are re-deduplicated at
		// restore (core.PlanGroupPartition).
		s.Sharing = true
	}
	s.Queries = d.strs()
	s.Vertices = d.strs()
	s.Labels = d.strs()
	s.LastTS = d.i64()
	s.Started = d.bool()
	s.AppliedTuples = d.i64()
	s.AppliedBatches = d.u64()
	s.State = decodeMultiState(d, v)
	if d.err != nil {
		return nil, d.err
	}
	if d.remaining() != 0 {
		return nil, fmt.Errorf("persist: %d trailing bytes after snapshot payload", d.remaining())
	}
	return s, nil
}

// SnapshotPath returns the file name of generation g in dir.
func SnapshotPath(dir string, g uint64) string {
	return filepath.Join(dir, fmt.Sprintf("snap-%08d.ckpt", g))
}

func walPath(dir string, g uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%08d.log", g))
}

// writeFileAtomic writes data to path via a temp file + rename so a
// crash mid-write never leaves a half-written file under the final name.
func writeFileAtomic(path string, data []byte, fsync bool) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if fsync {
		if err := f.Sync(); err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	if fsync {
		if d, err := os.Open(filepath.Dir(path)); err == nil {
			d.Sync()
			d.Close()
		}
	}
	return nil
}

// ReadSnapshotFile reads and verifies one snapshot file.
func ReadSnapshotFile(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return DecodeSnapshot(data)
}

// snapshotFileGen verifies a snapshot file's integrity (magic, version,
// whole-file CRC) and returns its generation without materializing the
// engine state — the cheap validity probe pruning runs per checkpoint.
func snapshotFileGen(path string) (uint64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	body, err := verifyEnvelope(snapMagic, data)
	if err != nil {
		return 0, fmt.Errorf("%w (%s)", err, path)
	}
	d := &decoder{buf: body, off: len(snapMagic)}
	if v := d.byte(); v < snapVersionMin || v > snapVersion {
		return 0, fmt.Errorf("persist: %s: unsupported snapshot version %d", path, v)
	}
	g := d.u64()
	return g, d.err
}

// Engine snapshot: the standalone single-engine variant of the facade
// snapshot, pairing one engine's Δ state with its private graph. It is
// the unit the multi-query format is built from and what a future
// single-query facade persistence would use; the RSPQ arm is what makes
// simple-path state (instance lists, markings) expressible in the file
// format.

// Engine snapshot kinds.
const (
	KindRAPQ = uint8(0)
	KindRSPQ = uint8(1)
)

const (
	engineMagic = "SRPQENGS"
	// Bumped alongside snapVersion: tree states now carry support counts.
	engineVersion = 2
)

// EngineSnapshot is a standalone engine checkpoint.
type EngineSnapshot struct {
	Kind  uint8
	Spec  window.Spec
	Edges []graph.Edge
	RAPQ  *core.RAPQState // set when Kind == KindRAPQ
	RSPQ  *core.RSPQState // set when Kind == KindRSPQ
}

// EncodeEngineSnapshot renders a standalone engine checkpoint in the
// versioned, checksummed format.
func EncodeEngineSnapshot(s *EngineSnapshot) ([]byte, error) {
	e := &encoder{buf: make([]byte, 0, 1024)}
	e.buf = append(e.buf, engineMagic...)
	e.byte(engineVersion)
	e.byte(s.Kind)
	e.i64(s.Spec.Size)
	e.i64(s.Spec.Slide)
	encodeEdges(e, s.Edges)
	switch s.Kind {
	case KindRAPQ:
		if s.RAPQ == nil {
			return nil, fmt.Errorf("persist: RAPQ engine snapshot without state")
		}
		encodeRAPQState(e, s.RAPQ)
	case KindRSPQ:
		if s.RSPQ == nil {
			return nil, fmt.Errorf("persist: RSPQ engine snapshot without state")
		}
		encodeRSPQState(e, s.RSPQ)
	default:
		return nil, fmt.Errorf("persist: unknown engine kind %d", s.Kind)
	}
	e.buf = binary.LittleEndian.AppendUint32(e.buf, crc32.ChecksumIEEE(e.buf))
	return e.buf, nil
}

// DecodeEngineSnapshot parses and verifies a standalone engine
// checkpoint.
func DecodeEngineSnapshot(data []byte) (*EngineSnapshot, error) {
	body, err := verifyEnvelope(engineMagic, data)
	if err != nil {
		return nil, err
	}
	d := &decoder{buf: body, off: len(engineMagic)}
	if v := d.byte(); v != engineVersion {
		return nil, fmt.Errorf("persist: unsupported engine snapshot version %d", v)
	}
	s := &EngineSnapshot{Kind: d.byte()}
	s.Spec = window.Spec{Size: d.i64(), Slide: d.i64()}
	s.Edges = decodeEdges(d)
	switch s.Kind {
	case KindRAPQ:
		s.RAPQ = decodeRAPQState(d)
	case KindRSPQ:
		s.RSPQ = decodeRSPQState(d)
	default:
		return nil, fmt.Errorf("persist: unknown engine kind %d", s.Kind)
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.remaining() != 0 {
		return nil, fmt.Errorf("persist: %d trailing bytes after engine snapshot payload", d.remaining())
	}
	return s, nil
}
