// Package persist is the durability subsystem: periodic checksummed
// snapshots of the engine state (internal/core state structs) plus a
// segmented tuple write-ahead log, so a restarted engine resumes
// mid-stream instead of replaying the whole window (cf. "Fast Failure
// Recovery for Main-Memory DBMSs on Multicores").
//
// On-disk layout of a persistence directory:
//
//	snap-<G>.ckpt   snapshot of the full engine state at generation G
//	wal-<G>.log     batches applied after snapshot G (and their commits)
//
// A snapshot at generation G closes wal segment G-1 and opens segment
// G, so recovery from snapshot G replays segments G, G+1, ... in order
// (later segments exist when a newer snapshot was written but fails its
// checksum and recovery falls back). Both file kinds are versioned and
// checksummed: a snapshot carries one whole-file CRC, the WAL carries a
// CRC per record so a torn tail (the crash case) invalidates only the
// records after the tear.
package persist

import (
	"encoding/binary"
	"fmt"
)

// encoder builds a byte buffer out of varint-encoded primitives. All
// multi-byte framing in the snapshot and WAL formats goes through it.
type encoder struct {
	buf []byte
}

func (e *encoder) u64(v uint64) {
	e.buf = binary.AppendUvarint(e.buf, v)
}

func (e *encoder) i64(v int64) {
	e.buf = binary.AppendVarint(e.buf, v)
}

func (e *encoder) bool(b bool) {
	if b {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

func (e *encoder) byte(b byte) {
	e.buf = append(e.buf, b)
}

func (e *encoder) str(s string) {
	e.u64(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

func (e *encoder) strs(ss []string) {
	e.u64(uint64(len(ss)))
	for _, s := range ss {
		e.str(s)
	}
}

// decoder consumes a byte buffer produced by encoder. The first error
// latches: subsequent reads return zero values, so call sites can decode
// a whole section and check err once.
type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

func (d *decoder) u64() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail("persist: truncated uvarint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) i64() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		d.fail("persist: truncated varint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) bool() bool {
	return d.byte() != 0
}

func (d *decoder) byte() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.buf) {
		d.fail("persist: truncated byte at offset %d", d.off)
		return 0
	}
	b := d.buf[d.off]
	d.off++
	return b
}

// count reads a length prefix and bounds-checks it against the bytes
// that could plausibly remain (each element needs at least minBytes), so
// a corrupt length cannot drive a huge allocation.
func (d *decoder) count(minBytes int) int {
	n := d.u64()
	if d.err != nil {
		return 0
	}
	if minBytes < 1 {
		minBytes = 1
	}
	if n > uint64((len(d.buf)-d.off)/minBytes)+1 {
		d.fail("persist: implausible count %d at offset %d", n, d.off)
		return 0
	}
	return int(n)
}

func (d *decoder) str() string {
	n := d.count(1)
	if d.err != nil {
		return ""
	}
	if d.off+n > len(d.buf) {
		d.fail("persist: truncated string at offset %d", d.off)
		return ""
	}
	s := string(d.buf[d.off : d.off+n])
	d.off += n
	return s
}

func (d *decoder) strs() []string {
	n := d.count(1)
	if n == 0 {
		return nil
	}
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, d.str())
	}
	return out
}

func (d *decoder) remaining() int { return len(d.buf) - d.off }
