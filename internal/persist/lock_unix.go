//go:build unix

package persist

import (
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// acquireDirLock takes an exclusive advisory flock on dir's LOCK file,
// failing fast if another live process holds it. Two writers on one
// persistence directory would interleave WAL appends and truncations
// and silently corrupt the log (the second recovery would read the
// interleaving as a torn tail and drop acknowledged batches). flock is
// released automatically when the holding process dies, so a kill -9
// never leaves a stale lock.
func acquireDirLock(dir string) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, "LOCK"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("persist: %s is in use by another process (flock: %v)", dir, err)
	}
	return f, nil
}

func releaseDirLock(f *os.File) {
	if f == nil {
		return
	}
	syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
	f.Close()
}
