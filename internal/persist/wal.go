package persist

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"

	"streamrpq/internal/stream"
)

// errTornWalHeader marks a segment whose file content is a strict
// prefix of its expected header: the crash landed between file
// creation and the header write. Recoverable for the final segment
// (recreate it); fatal mid-log.
var errTornWalHeader = errors.New("persist: torn WAL segment header")

// WAL segment format (wal-<G>.log):
//
//	magic    "SRPQWAL"       7 bytes
//	version  uint8           currently 1
//	gen      uvarint         generation G (cross-check against the name)
//	records  repeated:
//	         type    uint8   1 = batch, 2 = commit
//	         len     uvarint payload length
//	         payload bytes
//	         crc32   uint32 LE over type+len+payload
//
// A batch record carries the dictionary delta (vertex and label names
// interned since the previous record) followed by the tuples of one
// ingested batch, encoded with the internal/stream binary codec. A
// commit record acknowledges every batch record appended since the
// previous commit (the facade writes one commit per batch, so the set
// is normally a singleton; recovery writes one commit for the batches
// it redelivers). On recovery, acknowledged batches have their results
// suppressed — they were already emitted before the crash — while
// unacknowledged trailing batches are re-emitted exactly once.
//
// Each record is independently checksummed and written with a single
// write call, so a crash mid-append leaves a torn tail that the reader
// detects and discards; everything before it replays cleanly.

const (
	walMagic   = "SRPQWAL"
	walVersion = 1

	recBatch  = uint8(1)
	recCommit = uint8(2)
)

// WalRecord is one decoded WAL record.
type WalRecord struct {
	Batch   bool // true for a batch record, false for a commit
	VDelta  []string
	LDelta  []string
	Tuples  []stream.Tuple
	LastTS  int64 // commit records: stream clock at delivery
	Results int64 // commit records: results delivered for the batch
}

// walWriter appends records to one open segment file. It tracks the
// end offset of the last fully written record so a failed append can
// be rolled back instead of leaving a torn record mid-log (later
// appends would land after the tear, and recovery — which treats the
// first bad checksum as the tail — would silently discard them).
type walWriter struct {
	f        *os.File
	fsync    bool
	off      int64 // end of the last complete record (or header)
	poisoned error // set when a failed append could not be rolled back
}

// walHeader returns the exact header bytes of a segment for the given
// generation. The header is fully determined, which lets recovery tell
// a torn header write (file content is a strict prefix of this) from
// real corruption.
func walHeader(gen uint64) []byte {
	e := &encoder{buf: make([]byte, 0, 16)}
	e.buf = append(e.buf, walMagic...)
	e.byte(walVersion)
	e.u64(gen)
	return e.buf
}

func createWalSegment(path string, gen uint64, fsync bool) (*walWriter, error) {
	// O_APPEND matters beyond convenience: after a failed append is
	// rolled back with Truncate, the next write must land at the new
	// end-of-file, not at the stale fd offset (which would leave a
	// zero-filled hole that recovery reads as a torn tail).
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	// On any failure past this point the created file must not survive:
	// a leftover would make every checkpoint retry fail on O_EXCL and a
	// headerless file would confuse the next recovery.
	header := walHeader(gen)
	if _, err := f.Write(header); err != nil {
		f.Close()
		os.Remove(path)
		return nil, err
	}
	w := &walWriter{f: f, fsync: fsync, off: int64(len(header))}
	if fsync {
		if err := f.Sync(); err != nil {
			f.Close()
			os.Remove(path)
			return nil, err
		}
	}
	return w, nil
}

func openWalSegmentAppend(path string, fsync bool) (*walWriter, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	return &walWriter{f: f, fsync: fsync, off: info.Size()}, nil
}

// appendRecord frames and writes one record in a single write call. On
// a write error the file is truncated back to the last good record; if
// even that fails the writer is poisoned and refuses further appends
// (the on-disk prefix stays valid either way).
func (w *walWriter) appendRecord(typ uint8, payload []byte) error {
	if w.poisoned != nil {
		return fmt.Errorf("persist: WAL segment unusable after failed append: %w", w.poisoned)
	}
	e := &encoder{buf: make([]byte, 0, len(payload)+16)}
	e.byte(typ)
	e.u64(uint64(len(payload)))
	e.buf = append(e.buf, payload...)
	e.buf = binary.LittleEndian.AppendUint32(e.buf, crc32.ChecksumIEEE(e.buf))
	if _, err := w.f.Write(e.buf); err != nil {
		if terr := w.f.Truncate(w.off); terr != nil {
			w.poisoned = err
		}
		return err
	}
	if w.fsync {
		if err := w.f.Sync(); err != nil {
			// Roll the record back just like a failed write: leaving it
			// in place while reporting failure would let a retry append
			// a duplicate record, which recovery would apply twice.
			if terr := w.f.Truncate(w.off); terr != nil {
				w.poisoned = err
			}
			return err
		}
	}
	w.off += int64(len(e.buf))
	return nil
}

// AppendBatch appends a batch record: the dictionary names interned
// while encoding this batch, and the encoded tuples. Timestamps within
// a batch are non-decreasing (the facade validates before appending).
func (w *walWriter) AppendBatch(vdelta, ldelta []string, tuples []stream.Tuple) error {
	e := &encoder{buf: make([]byte, 0, 64+16*len(tuples))}
	e.strs(vdelta)
	e.strs(ldelta)
	var blob bytes.Buffer
	bw, err := stream.NewBinaryWriter(&blob, nil)
	if err != nil {
		return err
	}
	for _, t := range tuples {
		if err := bw.Write(t); err != nil {
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	e.u64(uint64(blob.Len()))
	e.buf = append(e.buf, blob.Bytes()...)
	return w.appendRecord(recBatch, e.buf)
}

// AppendCommit appends a commit record for the last appended batch.
func (w *walWriter) AppendCommit(lastTS int64, results int64) error {
	e := &encoder{buf: make([]byte, 0, 16)}
	e.i64(lastTS)
	e.i64(results)
	return w.appendRecord(recCommit, e.buf)
}

func (w *walWriter) Close() error {
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}

func decodeBatchPayload(payload []byte) (*WalRecord, error) {
	d := &decoder{buf: payload}
	rec := &WalRecord{Batch: true}
	rec.VDelta = d.strs()
	rec.LDelta = d.strs()
	blobLen := d.count(1)
	if d.err != nil {
		return nil, d.err
	}
	if d.off+blobLen != len(payload) {
		return nil, fmt.Errorf("persist: batch record blob length %d does not fill payload", blobLen)
	}
	br, err := stream.NewBinaryReader(bytes.NewReader(payload[d.off:]))
	if err != nil {
		return nil, err
	}
	rec.Tuples, err = br.ReadAll()
	if err != nil {
		return nil, err
	}
	return rec, nil
}

func decodeCommitPayload(payload []byte) (*WalRecord, error) {
	d := &decoder{buf: payload}
	rec := &WalRecord{LastTS: d.i64(), Results: d.i64()}
	if d.err != nil {
		return nil, d.err
	}
	return rec, nil
}

// replaySegment reads one WAL segment, calling fn for every valid
// record. It returns the byte offset of the end of the last valid
// record: a torn or corrupt tail (the crash case) stops the scan there
// without error, so the caller can truncate and resume appending. An
// error from fn aborts the replay and is returned.
func replaySegment(path string, wantGen uint64, fn func(*WalRecord) error) (validLen int64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	header := walHeader(wantGen)
	if len(data) < len(header) || !bytes.Equal(data[:len(header)], header) {
		if len(data) <= len(header) && bytes.Equal(data, header[:len(data)]) {
			// The file holds a strict prefix of the expected header: a
			// kill between segment creation and the header write. For
			// the final segment this is an ordinary crash signature the
			// caller can repair by recreating the segment; anything that
			// is not a header prefix is real corruption.
			return 0, fmt.Errorf("%w: %s", errTornWalHeader, path)
		}
		return 0, fmt.Errorf("persist: %s: bad WAL header", path)
	}
	valid := int64(len(header))
	d := &decoder{buf: data, off: len(header)}
	for d.off < len(data) {
		start := d.off
		typ := d.byte()
		plen := d.count(1)
		if d.err != nil || d.off+plen+4 > len(data) {
			break // torn tail
		}
		payload := data[d.off : d.off+plen]
		d.off += plen
		crc := binary.LittleEndian.Uint32(data[d.off : d.off+4])
		d.off += 4
		if crc32.ChecksumIEEE(data[start:d.off-4]) != crc {
			break // corrupt record
		}
		var rec *WalRecord
		var derr error
		switch typ {
		case recBatch:
			rec, derr = decodeBatchPayload(payload)
		case recCommit:
			rec, derr = decodeCommitPayload(payload)
		default:
			derr = fmt.Errorf("persist: unknown record type %d", typ)
		}
		if derr != nil {
			break // checksummed but undecodable: treat as end of valid log
		}
		if err := fn(rec); err != nil {
			return valid, err
		}
		valid = int64(d.off)
	}
	return valid, nil
}
