package shard

import (
	"math/rand"
	"reflect"
	"testing"

	"streamrpq/internal/core"
	"streamrpq/internal/stream"
	"streamrpq/internal/window"
)

// runWriters drives one engine configuration over the stream and
// returns the full merged result sequence, asserting the engine
// quiesces (no reader epochs, no dead versions) at the end.
func runWriters(t *testing.T, spec window.Spec, exprs []string, tuples []stream.Tuple, shards, depth, writers, batch int) []Result {
	t.Helper()
	s, err := New(spec, WithShards(shards), WithPipelineDepth(depth), WithWriters(writers))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.NumWriters() != writers {
		t.Fatalf("NumWriters() = %d, want %d", s.NumWriters(), writers)
	}
	for _, expr := range exprs {
		if _, err := s.Add(bind(t, expr, "a", "b"), nil); err != nil {
			t.Fatal(err)
		}
	}
	var all []Result
	for _, b := range batches(tuples, batch) {
		rs, err := s.ProcessBatch(b)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, rs...)
		if n := s.Graph().DeadVersions(); n != 0 {
			t.Fatalf("writers=%d shards=%d depth=%d: %d dead versions retained after a drained batch", writers, shards, depth, n)
		}
	}
	if n := s.Graph().ActiveReaders(); n != 0 {
		t.Fatalf("writers=%d shards=%d depth=%d: %d reader epochs still active after drain", writers, shards, depth, n)
	}
	return all
}

// TestMultiWriterByteIdentical is the multi-writer acceptance
// differential: on a hazard-heavy churn stream (20% deletions, tied
// timestamps, frequent expiry) the merged result stream at writer
// counts 2/4/8 must be byte-identical — results, order, timestamps,
// invalidations — to the writers=1 engine at every shards × depth
// configuration. Stripe-parallel epoch construction must be completely
// invisible in the output.
func TestMultiWriterByteIdentical(t *testing.T) {
	exprs := []string{"(a/b)+", "a/b*", "(a|b)+"}
	spec := window.Spec{Size: 25, Slide: 5}
	tuples := randomTuples(rand.New(rand.NewSource(777)), 700, 7, 2, 1, 0.20)

	for _, shards := range []int{1, 2, 8} {
		for _, depth := range []int{1, 2, 4} {
			var base []Result
			for _, writers := range []int{1, 2, 4, 8} {
				got := runWriters(t, spec, exprs, tuples, shards, depth, writers, 23)
				if writers == 1 {
					base = got
					if len(base) == 0 {
						t.Fatal("no results produced; test is vacuous")
					}
					continue
				}
				if !reflect.DeepEqual(base, got) {
					t.Fatalf("shards=%d depth=%d writers=%d: result stream diverged from single-writer engine (%d vs %d results)",
						shards, depth, writers, len(got), len(base))
				}
			}
		}
	}
}

// TestMultiWriterOracle cross-checks the multi-writer engine against
// the sequential oracle on heavier churn (30% deletions): the pair
// sets must agree exactly, member invariants must hold at every batch
// boundary, and every invalidation must retract a previously emitted
// pair. (With explicit deletions the byte-level contract across
// *shard* counts reduces to these shape-independent observables; the
// writers dimension itself is byte-exact, covered above.)
func TestMultiWriterOracle(t *testing.T) {
	spec := window.Spec{Size: 25, Slide: 5}
	tuples := randomTuples(rand.New(rand.NewSource(515)), 700, 7, 2, 1, 0.30)

	ref := core.NewCollector()
	seq := core.NewRAPQ(bind(t, "(a/b)+", "a", "b"), spec, core.WithSink(ref))
	for _, tu := range tuples {
		seq.Process(tu)
	}

	for _, shards := range []int{1, 8} {
		for _, writers := range []int{2, 8} {
			got := core.NewCollector()
			s, err := New(spec, WithShards(shards), WithPipelineDepth(2), WithWriters(writers))
			if err != nil {
				t.Fatal(err)
			}
			member, err := s.Add(bind(t, "(a/b)+", "a", "b"), got)
			if err != nil {
				t.Fatal(err)
			}
			for _, b := range batches(tuples, 23) {
				if _, err := s.ProcessBatch(b); err != nil {
					t.Fatal(err)
				}
				if err := member.CheckInvariants(); err != nil {
					t.Fatalf("shards=%d writers=%d: %v", shards, writers, err)
				}
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(ref.Pairs(), got.Pairs()) {
				t.Fatalf("shards=%d writers=%d: pair sets differ from sequential oracle", shards, writers)
			}
			pairs := got.Pairs()
			for _, inval := range got.Retract {
				if _, ok := pairs[core.Pair{From: inval.From, To: inval.To}]; !ok {
					t.Fatalf("shards=%d writers=%d: invalidated pair %v was never matched", shards, writers, inval)
				}
			}
		}
	}
}

// TestMultiWriterSnapshotWriterCountFree: a checkpoint taken from a
// multi-writer engine mid-stream is identical to one taken from the
// single-writer engine at the same batch boundary — stripe-parallel
// construction leaves no residue in the folded graph or the clocks —
// and restoring it into an engine of a third writer count continues
// the stream byte-identically.
func TestMultiWriterSnapshotWriterCountFree(t *testing.T) {
	exprs := []string{"(a/b)+", "b/a*"}
	spec := window.Spec{Size: 18, Slide: 3}
	tuples := randomTuples(rand.New(rand.NewSource(808)), 600, 6, 2, 1, 0.18)
	half := len(tuples) / 2

	mkEngine := func(writers int) *Engine {
		s, err := New(spec, WithShards(4), WithPipelineDepth(2), WithWriters(writers))
		if err != nil {
			t.Fatal(err)
		}
		for _, expr := range exprs {
			if _, err := s.Add(bind(t, expr, "a", "b"), nil); err != nil {
				t.Fatal(err)
			}
		}
		return s
	}
	run := func(s *Engine, tuples []stream.Tuple) []Result {
		var all []Result
		for _, b := range batches(tuples, 31) {
			rs, err := s.ProcessBatch(b)
			if err != nil {
				t.Fatal(err)
			}
			all = append(all, rs...)
		}
		return all
	}

	multi, single := mkEngine(4), mkEngine(1)
	run(multi, tuples[:half])
	run(single, tuples[:half])
	multiState, singleState := multi.SnapshotState(), single.SnapshotState()
	if !reflect.DeepEqual(multiState.Edges, singleState.Edges) {
		t.Fatal("folded graph differs between writer counts at the same batch boundary")
	}
	if multiState.Now != singleState.Now || multiState.Seen != singleState.Seen ||
		multiState.Dropped != singleState.Dropped || multiState.Win != singleState.Win {
		t.Fatal("coordinator clocks differ between writer counts at the same batch boundary")
	}
	wantTail := run(single, tuples[half:])
	single.Close()
	multi.Close()

	restored := mkEngine(2)
	if err := restored.RestoreState(multiState); err != nil {
		t.Fatal(err)
	}
	gotTail := run(restored, tuples[half:])
	restored.Close()
	if !reflect.DeepEqual(wantTail, gotTail) {
		t.Fatalf("restored engine's tail diverged (%d vs %d results)", len(gotTail), len(wantTail))
	}
	if len(wantTail) == 0 {
		t.Fatal("no tail results; test is vacuous")
	}
}

// TestWritersOptionValidation covers the WithWriters guard rails and
// the accessor default.
func TestWritersOptionValidation(t *testing.T) {
	if _, err := New(window.Spec{Size: 10, Slide: 1}, WithWriters(0)); err == nil {
		t.Fatal("zero writer count accepted")
	}
	if _, err := New(window.Spec{Size: 10, Slide: 1}, WithWriters(-2)); err == nil {
		t.Fatal("negative writer count accepted")
	}
	s, err := New(window.Spec{Size: 10, Slide: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if n := s.NumWriters(); n != 1 {
		t.Fatalf("default writer count = %d, want 1", n)
	}
	s4, err := New(window.Spec{Size: 10, Slide: 1}, WithWriters(4))
	if err != nil {
		t.Fatal(err)
	}
	defer s4.Close()
	if n := s4.NumWriters(); n != 4 {
		t.Fatalf("NumWriters = %d, want 4", n)
	}
}

// TestMultiWriterExpiryCount: the Removed annotation on the window's
// expiry record is the deterministic plan-order count, independent of
// writer count (it feeds monitoring, so a writers change must not move
// the reported numbers).
func TestMultiWriterExpiryCount(t *testing.T) {
	spec := window.Spec{Size: 12, Slide: 4}
	tuples := randomTuples(rand.New(rand.NewSource(99)), 400, 6, 2, 1, 0.1)
	counts := func(writers int) []int {
		s, err := New(spec, WithWriters(writers))
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		if _, err := s.Add(bind(t, "(a/b)+", "a", "b"), nil); err != nil {
			t.Fatal(err)
		}
		var out []int
		last := window.Expiry{}
		for _, b := range batches(tuples, 17) {
			if _, err := s.ProcessBatch(b); err != nil {
				t.Fatal(err)
			}
			if e := s.win.LastExpiry(); e != last {
				out = append(out, e.Removed)
				last = e
			}
		}
		return out
	}
	want := counts(1)
	if len(want) == 0 {
		t.Fatal("stream crossed no slide boundary; test is vacuous")
	}
	for _, writers := range []int{2, 8} {
		if got := counts(writers); !reflect.DeepEqual(want, got) {
			t.Fatalf("writers=%d: expiry Removed counts %v, want %v", writers, got, want)
		}
	}
}
