package shard

import (
	"math/rand"
	"reflect"
	"testing"

	"streamrpq/internal/automaton"
	"streamrpq/internal/core"
	"streamrpq/internal/pattern"
	"streamrpq/internal/stream"
	"streamrpq/internal/window"
)

func bind(t testing.TB, expr string, labels ...string) *automaton.Bound {
	t.Helper()
	ids := map[string]int{}
	for i, l := range labels {
		ids[l] = i
	}
	d := automaton.Compile(pattern.MustParse(expr))
	return d.Bind(func(s string) int {
		if id, ok := ids[s]; ok {
			return id
		}
		return -1
	}, len(labels))
}

func randomTuples(rng *rand.Rand, n, vertices, labels int, maxStep int64, delRatio float64) []stream.Tuple {
	var out []stream.Tuple
	ts := int64(0)
	var inserted []stream.Tuple
	for i := 0; i < n; i++ {
		ts += rng.Int63n(maxStep + 1)
		if len(inserted) > 0 && rng.Float64() < delRatio {
			old := inserted[rng.Intn(len(inserted))]
			out = append(out, stream.Tuple{TS: ts, Src: old.Src, Dst: old.Dst, Label: old.Label, Op: stream.Delete})
			continue
		}
		tu := stream.Tuple{
			TS:    ts,
			Src:   stream.VertexID(rng.Intn(vertices)),
			Dst:   stream.VertexID(rng.Intn(vertices)),
			Label: stream.LabelID(rng.Intn(labels)),
		}
		out = append(out, tu)
		inserted = append(inserted, tu)
	}
	return out
}

// batches cuts a stream into batches of the given size.
func batches(tuples []stream.Tuple, size int) [][]stream.Tuple {
	var out [][]stream.Tuple
	for len(tuples) > 0 {
		n := min(size, len(tuples))
		out = append(out, tuples[:n])
		tuples = tuples[n:]
	}
	return out
}

// TestShardedMatchesSingleQuery: one query on a sharded engine must
// produce exactly the matches of a standalone RAPQ engine, including
// discovery timestamps, on a random stream with expiry. Without
// explicit deletions the full match multiset is deterministic, so the
// comparison is exact.
func TestShardedMatchesSingleQuery(t *testing.T) {
	for _, shards := range []int{1, 2, 8} {
		for _, batch := range []int{1, 7, 64} {
			a := bind(t, "(a/b)+", "a", "b")
			spec := window.Spec{Size: 25, Slide: 5}

			ref := core.NewCollector()
			seq := core.NewRAPQ(a, spec, core.WithSink(ref))

			got := core.NewCollector()
			s, err := New(spec, WithShards(shards))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := s.Add(bind(t, "(a/b)+", "a", "b"), got); err != nil {
				t.Fatal(err)
			}

			tuples := randomTuples(rand.New(rand.NewSource(42)), 600, 8, 2, 2, 0)
			for _, tu := range tuples {
				seq.Process(tu)
			}
			for _, b := range batches(tuples, batch) {
				if _, err := s.ProcessBatch(b); err != nil {
					t.Fatal(err)
				}
			}
			s.Close()

			if !sameMatchMultiset(ref.Matched, got.Matched) {
				t.Fatalf("shards=%d batch=%d: match multisets differ: seq %d vs sharded %d",
					shards, batch, len(ref.Matched), len(got.Matched))
			}
			if !reflect.DeepEqual(ref.Live, got.Live) {
				t.Fatalf("shards=%d batch=%d: live sets differ", shards, batch)
			}
		}
	}
}

// TestShardedMatchesSingleQueryDeletions: with explicit deletions the
// multiplicity of re-discovery matches and the invalidation report
// depend on the incidental spanning-tree shape (the paper's Algorithm
// Delete cuts along tree edges, and which edge is a tree edge is
// map-iteration dependent even sequentially), so the engines are
// compared on the shape-independent observables: the set of pairs ever
// matched, internal invalidation consistency, and index invariants.
func TestShardedMatchesSingleQueryDeletions(t *testing.T) {
	for _, shards := range []int{1, 2, 8} {
		for _, batch := range []int{1, 13, 64} {
			a := bind(t, "(a/b)+", "a", "b")
			spec := window.Spec{Size: 25, Slide: 5}

			ref := core.NewCollector()
			seq := core.NewRAPQ(a, spec, core.WithSink(ref))

			got := core.NewCollector()
			s, err := New(spec, WithShards(shards))
			if err != nil {
				t.Fatal(err)
			}
			member, err := s.Add(bind(t, "(a/b)+", "a", "b"), got)
			if err != nil {
				t.Fatal(err)
			}

			tuples := randomTuples(rand.New(rand.NewSource(17)), 600, 8, 2, 2, 0.1)
			for _, tu := range tuples {
				seq.Process(tu)
			}
			for _, b := range batches(tuples, batch) {
				if _, err := s.ProcessBatch(b); err != nil {
					t.Fatal(err)
				}
				if err := member.CheckInvariants(); err != nil {
					t.Fatalf("shards=%d batch=%d: %v", shards, batch, err)
				}
			}
			s.Close()

			if !reflect.DeepEqual(ref.Pairs(), got.Pairs()) {
				t.Fatalf("shards=%d batch=%d: pair sets differ", shards, batch)
			}
			pairs := got.Pairs()
			for _, inval := range got.Retract {
				if _, ok := pairs[core.Pair{From: inval.From, To: inval.To}]; !ok {
					t.Fatalf("shards=%d batch=%d: invalidated pair %v was never matched", shards, batch, inval)
				}
			}
		}
	}
}

func sameMatchMultiset(a, b []core.Match) bool {
	if len(a) != len(b) {
		return false
	}
	count := map[core.Match]int{}
	for _, m := range a {
		count[m]++
	}
	for _, m := range b {
		count[m]--
		if count[m] < 0 {
			return false
		}
	}
	return true
}

// TestShardedMatchesMulti: several queries on a sharded engine must
// reproduce the sequential core.Multi coordinator query by query.
func TestShardedMatchesMulti(t *testing.T) {
	exprs := []string{"(a/b)+", "a/b*", "(a|b)+", "b/a", "a*"}
	spec := window.Spec{Size: 30, Slide: 3}

	for _, shards := range []int{1, 2, 8} {
		multi, err := core.NewMulti(spec)
		if err != nil {
			t.Fatal(err)
		}
		s, err := New(spec, WithShards(shards))
		if err != nil {
			t.Fatal(err)
		}
		var refSinks, gotSinks []*core.CollectorSink
		for _, expr := range exprs {
			ref, got := core.NewCollector(), core.NewCollector()
			refSinks, gotSinks = append(refSinks, ref), append(gotSinks, got)
			if _, err := multi.Add(bind(t, expr, "a", "b"), core.WithSink(ref)); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Add(bind(t, expr, "a", "b"), got); err != nil {
				t.Fatal(err)
			}
		}

		tuples := randomTuples(rand.New(rand.NewSource(7)), 800, 10, 2, 2, 0.08)
		for _, tu := range tuples {
			multi.Process(tu)
		}
		for _, b := range batches(tuples, 32) {
			if _, err := s.ProcessBatch(b); err != nil {
				t.Fatal(err)
			}
		}
		s.Close()

		for qi := range exprs {
			if !reflect.DeepEqual(refSinks[qi].Pairs(), gotSinks[qi].Pairs()) {
				t.Fatalf("shards=%d query %q: pair sets differ", shards, exprs[qi])
			}
		}
		// Shared-graph bookkeeping does not depend on tree shape and
		// must agree exactly even with deletions in the stream.
		if ms, ss := multi.Stats(), s.Stats(); ms.Edges != ss.Edges ||
			ms.TuplesSeen != ss.TuplesSeen || ms.TuplesDropped != ss.TuplesDropped {
			t.Fatalf("shards=%d: stats diverge: multi %+v vs sharded %+v", shards, ms, ss)
		}
	}
}

// TestShardedMatchesMultiNoDeletes: on a deletion-free stream the
// sharded engine reproduces core.Multi exactly, per query, down to the
// full match multiset with timestamps.
func TestShardedMatchesMultiNoDeletes(t *testing.T) {
	exprs := []string{"(a/b)+", "a/b*", "(a|b)+", "b/a", "a*"}
	spec := window.Spec{Size: 30, Slide: 3}

	for _, shards := range []int{1, 2, 8} {
		multi, err := core.NewMulti(spec)
		if err != nil {
			t.Fatal(err)
		}
		s, err := New(spec, WithShards(shards))
		if err != nil {
			t.Fatal(err)
		}
		var refSinks, gotSinks []*core.CollectorSink
		for _, expr := range exprs {
			ref, got := core.NewCollector(), core.NewCollector()
			refSinks, gotSinks = append(refSinks, ref), append(gotSinks, got)
			if _, err := multi.Add(bind(t, expr, "a", "b"), core.WithSink(ref)); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Add(bind(t, expr, "a", "b"), got); err != nil {
				t.Fatal(err)
			}
		}

		tuples := randomTuples(rand.New(rand.NewSource(11)), 800, 10, 2, 2, 0)
		for _, tu := range tuples {
			multi.Process(tu)
		}
		for _, b := range batches(tuples, 32) {
			if _, err := s.ProcessBatch(b); err != nil {
				t.Fatal(err)
			}
		}
		s.Close()

		for qi := range exprs {
			if !sameMatchMultiset(refSinks[qi].Matched, gotSinks[qi].Matched) {
				t.Fatalf("shards=%d query %q: match multisets differ (%d vs %d)",
					shards, exprs[qi], len(refSinks[qi].Matched), len(gotSinks[qi].Matched))
			}
			if !reflect.DeepEqual(refSinks[qi].Live, gotSinks[qi].Live) {
				t.Fatalf("shards=%d query %q: live sets differ", shards, exprs[qi])
			}
		}
		if ms, ss := multi.Stats(), s.Stats(); ms.Results != ss.Results ||
			ms.Edges != ss.Edges || ms.TuplesSeen != ss.TuplesSeen || ms.TuplesDropped != ss.TuplesDropped {
			t.Fatalf("shards=%d: stats diverge: multi %+v vs sharded %+v", shards, ms, ss)
		}
	}
}

// TestShardedDeterministicOrder: two runs over the same insert+expiry
// stream must return byte-identical ordered results. (With explicit
// deletions only the shape-independent observables are reproducible;
// see TestShardedMatchesSingleQueryDeletions.)
func TestShardedDeterministicOrder(t *testing.T) {
	run := func() []Result {
		s, err := New(window.Spec{Size: 20, Slide: 2}, WithShards(4))
		if err != nil {
			t.Fatal(err)
		}
		for _, expr := range []string{"(a/b)+", "a+", "b/a*", "(a|b)/b"} {
			if _, err := s.Add(bind(t, expr, "a", "b"), nil); err != nil {
				t.Fatal(err)
			}
		}
		defer s.Close()
		var all []Result
		tuples := randomTuples(rand.New(rand.NewSource(99)), 500, 6, 2, 1, 0)
		for _, b := range batches(tuples, 25) {
			rs, err := s.ProcessBatch(b)
			if err != nil {
				t.Fatal(err)
			}
			all = append(all, rs...)
		}
		return all
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two identical runs returned different ordered results: %d vs %d entries", len(a), len(b))
	}
	if len(a) == 0 {
		t.Fatal("no results produced; test is vacuous")
	}
}

// TestShardedParallelMembers: intra-query tree parallelism
// (AddParallel) composes with inter-query sharding without changing
// the result stream.
func TestShardedParallelMembers(t *testing.T) {
	spec := window.Spec{Size: 40, Slide: 4}
	ref := core.NewCollector()
	seq := core.NewRAPQ(bind(t, "(a/b)+", "a", "b"), spec, core.WithSink(ref))

	got := core.NewCollector()
	s, err := New(spec, WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddParallel(bind(t, "(a/b)+", "a", "b"), got, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Add(bind(t, "a+", "a", "b"), nil); err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	tuples := randomTuples(rand.New(rand.NewSource(5)), 700, 8, 2, 1, 0)
	for _, tu := range tuples {
		seq.Process(tu)
	}
	for _, b := range batches(tuples, 50) {
		if _, err := s.ProcessBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	if !sameMatchMultiset(ref.Matched, got.Matched) {
		t.Fatalf("parallel member diverged: %d vs %d matches", len(ref.Matched), len(got.Matched))
	}
}

// TestShardStats: every shard that owns queries reports work on a
// stream that touches all alphabets. Sharing is pinned off — with it
// on, the six identical queries would collapse into one group on one
// shard (see TestShardStatsShared).
func TestShardStats(t *testing.T) {
	s, err := New(window.Spec{Size: 50, Slide: 5}, WithShards(3), WithSharing(false))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := s.Add(bind(t, "(a/b)+", "a", "b"), nil); err != nil {
			t.Fatal(err)
		}
	}
	defer s.Close()
	if _, err := s.ProcessBatch(randomTuples(rand.New(rand.NewSource(3)), 200, 5, 2, 1, 0)); err != nil {
		t.Fatal(err)
	}
	ss := s.ShardStats()
	if len(ss) != 3 {
		t.Fatalf("ShardStats len = %d", len(ss))
	}
	var total int64
	for i, st := range ss {
		if st.InsertCalls == 0 {
			t.Errorf("shard %d reports no insert calls", i)
		}
		if st.Groups != 2 || st.SharedGroups != 0 {
			t.Errorf("shard %d: groups %d shared %d, want 2 private", i, st.Groups, st.SharedGroups)
		}
		total += st.Results
	}
	if agg := s.Stats(); agg.Results != total {
		t.Fatalf("aggregate results %d != sum of shard results %d", agg.Results, total)
	}
}

// TestShardStatsShared: with sharing on (the default), six identical
// queries form ONE group whose index is maintained once, while each
// query still receives its own result stream: Results scales with the
// subscriber count, InsertCalls does not.
func TestShardStatsShared(t *testing.T) {
	mk := func(sharing bool) core.Stats {
		s, err := New(window.Spec{Size: 50, Slide: 5}, WithShards(3), WithSharing(sharing))
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		for i := 0; i < 6; i++ {
			if _, err := s.Add(bind(t, "(a/b)+", "a", "b"), nil); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := s.ProcessBatch(randomTuples(rand.New(rand.NewSource(3)), 200, 5, 2, 1, 0)); err != nil {
			t.Fatal(err)
		}
		return s.Stats()
	}
	shared, private := mk(true), mk(false)
	if shared.Groups != 1 || shared.SharedGroups != 1 {
		t.Fatalf("sharing on: groups %d shared %d, want 1/1", shared.Groups, shared.SharedGroups)
	}
	if shared.Results != private.Results || shared.Invalidations != private.Invalidations {
		t.Fatalf("delivery counters differ: shared %d/%d vs private %d/%d",
			shared.Results, shared.Invalidations, private.Results, private.Invalidations)
	}
	if private.InsertCalls != 6*shared.InsertCalls {
		t.Fatalf("InsertCalls: private %d, shared %d — want exactly 6x", private.InsertCalls, shared.InsertCalls)
	}
	if shared.Dispatches == 0 || shared.RelevanceSkips != 0 {
		t.Fatalf("shared dispatch counters: %d/%d", shared.Dispatches, shared.RelevanceSkips)
	}
}

// TestShardedErrors exercises the API guard rails.
func TestShardedErrors(t *testing.T) {
	if _, err := New(window.Spec{Size: 0, Slide: 1}); err == nil {
		t.Fatal("invalid window accepted")
	}
	if _, err := New(window.Spec{Size: 10, Slide: 1}, WithShards(0)); err == nil {
		t.Fatal("zero shards accepted")
	}
	s, err := New(window.Spec{Size: 10, Slide: 1}, WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Add(bind(t, "a", "a"), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Add(bind(t, "a|b", "a", "b"), nil); err == nil {
		t.Fatal("label space mismatch accepted")
	}
	if _, err := s.ProcessBatch([]stream.Tuple{{TS: 5, Label: 0}}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Add(bind(t, "a", "a"), nil); err == nil {
		t.Fatal("Add after start accepted")
	}
	if _, err := s.ProcessBatch([]stream.Tuple{{TS: 9, Label: 0}, {TS: 8, Label: 0}}); err == nil {
		t.Fatal("out-of-order batch accepted")
	}
	if _, err := s.ProcessBatch([]stream.Tuple{{TS: 3, Label: 0}}); err == nil {
		t.Fatal("batch behind the stream clock accepted")
	}
	s.Close()
	s.Close() // idempotent
	if _, err := s.ProcessBatch([]stream.Tuple{{TS: 10, Label: 0}}); err == nil {
		t.Fatal("ProcessBatch on closed engine accepted")
	}
}

// TestShardedEmptyAndIrrelevantBatches: batches with no member-visible
// work must still advance the window clock.
func TestShardedEmptyAndIrrelevantBatches(t *testing.T) {
	s, err := New(window.Spec{Size: 4, Slide: 1}, WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	sink := core.NewCollector()
	if _, err := s.Add(bind(t, "a/a", "a"), sink); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.ProcessBatch(nil); err != nil {
		t.Fatal(err)
	}
	mk := func(ts int64, src, dst stream.VertexID, l stream.LabelID) stream.Tuple {
		return stream.Tuple{TS: ts, Src: src, Dst: dst, Label: l}
	}
	if _, err := s.ProcessBatch([]stream.Tuple{mk(1, 0, 1, 0), mk(2, 1, 2, 0)}); err != nil {
		t.Fatal(err)
	}
	if len(sink.Live) != 1 {
		t.Fatalf("live = %v", sink.Live)
	}
	// A long run of irrelevant tuples must expire the old edges: after
	// ts 20 the window (size 4) holds nothing.
	irr := []stream.Tuple{{TS: 10, Label: -1}, {TS: 15, Label: 9}, {TS: 20, Label: -1}}
	if _, err := s.ProcessBatch(irr); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Edges != 0 || st.Nodes != 0 {
		t.Fatalf("stale window state after irrelevant tuples: %+v", st)
	}
	if st := s.Stats(); st.TuplesDropped != 3 {
		t.Fatalf("dropped = %d, want 3", st.TuplesDropped)
	}
}
