package shard

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"streamrpq/internal/core"
	"streamrpq/internal/stream"
	"streamrpq/internal/window"
)

// hazardTuples generates an append-only stream engineered to hit every
// non-delete hazard hard: a small vertex set forces frequent
// re-insertion refreshes (sub-batch cuts mid-tie-group included, since
// the timestamp step is often 0), and slide > 1 with a small window
// forces regular expiry passes.
func hazardTuples(rng *rand.Rand, n int) []stream.Tuple {
	var out []stream.Tuple
	ts := int64(0)
	for i := 0; i < n; i++ {
		ts += rng.Int63n(2) // many ties
		out = append(out, stream.Tuple{
			TS:    ts,
			Src:   stream.VertexID(rng.Intn(5)),
			Dst:   stream.VertexID(rng.Intn(5)),
			Label: stream.LabelID(rng.Intn(2)),
		})
	}
	return out
}

// runPipeline drives one engine configuration over the stream and
// returns the full merged result sequence.
func runPipeline(t *testing.T, spec window.Spec, exprs []string, tuples []stream.Tuple, shards, depth, batch int) []Result {
	t.Helper()
	s, err := New(spec, WithShards(shards), WithPipelineDepth(depth))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, expr := range exprs {
		if _, err := s.Add(bind(t, expr, "a", "b"), nil); err != nil {
			t.Fatal(err)
		}
	}
	var all []Result
	for _, b := range batches(tuples, batch) {
		rs, err := s.ProcessBatch(b)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, rs...)
	}
	// The engine must quiesce at batch boundaries: every reader epoch
	// released and every superseded version compacted, or checkpoints
	// (and memory) would accumulate pipeline residue.
	if n := s.Graph().ActiveReaders(); n != 0 {
		t.Fatalf("shards=%d depth=%d: %d reader epochs still active after drain", shards, depth, n)
	}
	if n := s.Graph().DeadVersions(); n != 0 {
		t.Fatalf("shards=%d depth=%d: %d dead versions retained after drain", shards, depth, n)
	}
	return all
}

// TestPipelinedByteIdenticalAcrossDepths is the pipelining acceptance
// differential on hazard-heavy append-only streams (expiry +
// re-insertion): for shards 1/2/8 the merged result stream at pipeline
// depths 2 and 4 must be byte-identical to depth 1 (the barriered
// engine) — and across shard counts too, since member emissions are a
// pure function of the stream prefix. The depth-1 stream is further
// cross-checked against the sequential core.Multi oracle per query.
func TestPipelinedByteIdenticalAcrossDepths(t *testing.T) {
	exprs := []string{"(a/b)+", "a/b*", "(a|b)+", "a*"}
	spec := window.Spec{Size: 20, Slide: 4}
	tuples := hazardTuples(rand.New(rand.NewSource(4242)), 900)

	// Tuple attribution inside a timestamp tie-group depends on where
	// sub-batches are cut, and batch boundaries force cuts — so byte
	// identity is asserted per batch size, across every shard count and
	// pipeline depth.
	var ref []Result // shards=1 depth=1 at the first batch size, for the oracle check
	for _, batch := range []int{17, 64} {
		var base []Result // depth-1 barriered baseline for this batch size
		for _, shards := range []int{1, 2, 8} {
			for _, depth := range []int{1, 2, 4} {
				got := runPipeline(t, spec, exprs, tuples, shards, depth, batch)
				if base == nil {
					base = got
					if len(base) == 0 {
						t.Fatal("no results produced; test is vacuous")
					}
					if ref == nil {
						ref = base
					}
					continue
				}
				if !reflect.DeepEqual(base, got) {
					t.Fatalf("shards=%d depth=%d batch=%d: result stream diverged from barriered baseline (%d vs %d results)",
						shards, depth, batch, len(got), len(base))
				}
			}
		}
	}

	// Cross-check the baseline against the sequential oracle.
	multi, err := core.NewMulti(spec)
	if err != nil {
		t.Fatal(err)
	}
	sinks := make([]*core.CollectorSink, len(exprs))
	for qi, expr := range exprs {
		sinks[qi] = core.NewCollector()
		if _, err := multi.Add(bind(t, expr, "a", "b"), core.WithSink(sinks[qi])); err != nil {
			t.Fatal(err)
		}
	}
	for _, tu := range tuples {
		multi.Process(tu)
	}
	perQuery := make([][]core.Match, len(exprs))
	for _, r := range ref {
		perQuery[r.Query] = append(perQuery[r.Query], r.Match)
	}
	for qi := range exprs {
		if !sameMatchMultiset(sinks[qi].Matched, perQuery[qi]) {
			t.Fatalf("query %q: pipelined stream disagrees with sequential Multi oracle (%d vs %d matches)",
				exprs[qi], len(perQuery[qi]), len(sinks[qi].Matched))
		}
	}
}

// TestPipelinedDeletionHazards: with explicit deletions in the stream
// the byte-level contract is reduced to the shape-independent
// observables (see the package comment), which must agree between the
// pipelined engine at any depth and a sequential RAPQ oracle.
func TestPipelinedDeletionHazards(t *testing.T) {
	spec := window.Spec{Size: 25, Slide: 5}
	tuples := randomTuples(rand.New(rand.NewSource(616)), 700, 7, 2, 1, 0.15)

	ref := core.NewCollector()
	seq := core.NewRAPQ(bind(t, "(a/b)+", "a", "b"), spec, core.WithSink(ref))
	for _, tu := range tuples {
		seq.Process(tu)
	}

	for _, shards := range []int{1, 2, 8} {
		for _, depth := range []int{2, 4} {
			got := core.NewCollector()
			s, err := New(spec, WithShards(shards), WithPipelineDepth(depth))
			if err != nil {
				t.Fatal(err)
			}
			member, err := s.Add(bind(t, "(a/b)+", "a", "b"), got)
			if err != nil {
				t.Fatal(err)
			}
			for _, b := range batches(tuples, 23) {
				if _, err := s.ProcessBatch(b); err != nil {
					t.Fatal(err)
				}
				if err := member.CheckInvariants(); err != nil {
					t.Fatalf("shards=%d depth=%d: %v", shards, depth, err)
				}
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(ref.Pairs(), got.Pairs()) {
				t.Fatalf("shards=%d depth=%d: pair sets differ from sequential oracle", shards, depth)
			}
			pairs := got.Pairs()
			for _, inval := range got.Retract {
				if _, ok := pairs[core.Pair{From: inval.From, To: inval.To}]; !ok {
					t.Fatalf("shards=%d depth=%d: invalidated pair %v was never matched", shards, depth, inval)
				}
			}
		}
	}
}

// TestPipelinedSnapshotEpochFree: a mid-stream checkpoint taken from a
// deeply pipelined engine is identical to one taken from the barriered
// engine at the same batch boundary — the on-disk state folds the
// version intervals away and carries no epoch residue — and restoring
// it into an engine of any depth continues the stream byte-identically.
func TestPipelinedSnapshotEpochFree(t *testing.T) {
	exprs := []string{"(a/b)+", "b/a*"}
	spec := window.Spec{Size: 18, Slide: 3}
	tuples := hazardTuples(rand.New(rand.NewSource(99)), 600)
	half := len(tuples) / 2

	mkEngine := func(depth int) *Engine {
		s, err := New(spec, WithShards(4), WithPipelineDepth(depth))
		if err != nil {
			t.Fatal(err)
		}
		for _, expr := range exprs {
			if _, err := s.Add(bind(t, expr, "a", "b"), nil); err != nil {
				t.Fatal(err)
			}
		}
		return s
	}
	run := func(s *Engine, tuples []stream.Tuple) []Result {
		var all []Result
		for _, b := range batches(tuples, 31) {
			rs, err := s.ProcessBatch(b)
			if err != nil {
				t.Fatal(err)
			}
			all = append(all, rs...)
		}
		return all
	}

	deep, flat := mkEngine(4), mkEngine(1)
	run(deep, tuples[:half])
	run(flat, tuples[:half])
	deepState, flatState := deep.SnapshotState(), flat.SnapshotState()
	// The canonical parts of the checkpoint — the folded graph, the
	// clocks, the tuple counters — are a pure function of the stream
	// prefix and must not depend on the pipeline depth. (Tree shapes
	// and cost counters are map-iteration dependent even sequentially
	// and are deliberately not compared; results below are.)
	if !reflect.DeepEqual(deepState.Edges, flatState.Edges) {
		t.Fatal("folded graph differs between pipeline depths at the same batch boundary")
	}
	if deepState.Now != flatState.Now || deepState.Seen != flatState.Seen ||
		deepState.Dropped != flatState.Dropped || deepState.Win != flatState.Win {
		t.Fatal("coordinator clocks differ between pipeline depths at the same batch boundary")
	}
	wantTail := run(flat, tuples[half:])
	flat.Close()
	deep.Close()

	restored := mkEngine(2)
	if err := restored.RestoreState(deepState); err != nil {
		t.Fatal(err)
	}
	gotTail := run(restored, tuples[half:])
	restored.Close()
	if !reflect.DeepEqual(wantTail, gotTail) {
		t.Fatalf("restored engine's tail diverged (%d vs %d results)", len(gotTail), len(wantTail))
	}
	if len(wantTail) == 0 {
		t.Fatal("no tail results; test is vacuous")
	}
}

// TestEpochGCFoldsToUnversionedGraph is the epoch-GC compaction
// property at the engine level: after a hazard-heavy stream (expiry,
// deletions, re-insertions) through the deeply pipelined engine, the
// serialized graph state — core.SnapshotEdges, exactly what
// SnapshotState records on disk — must be byte-identical to that of
// the never-versioned graph of the sequential core.Multi coordinator
// fed the same stream, and the versioned graph must hold zero dead
// versions once the last reader epoch has retired.
func TestEpochGCFoldsToUnversionedGraph(t *testing.T) {
	exprs := []string{"(a/b)+", "a*"}
	spec := window.Spec{Size: 22, Slide: 4}
	for trial := 0; trial < 5; trial++ {
		tuples := randomTuples(rand.New(rand.NewSource(int64(500+trial))), 800, 6, 2, 1, 0.12)

		multi, err := core.NewMulti(spec)
		if err != nil {
			t.Fatal(err)
		}
		s, err := New(spec, WithShards(4), WithPipelineDepth(4))
		if err != nil {
			t.Fatal(err)
		}
		for _, expr := range exprs {
			if _, err := multi.Add(bind(t, expr, "a", "b")); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Add(bind(t, expr, "a", "b"), nil); err != nil {
				t.Fatal(err)
			}
		}
		for _, tu := range tuples {
			multi.Process(tu)
		}
		for _, b := range batches(tuples, 41) {
			if _, err := s.ProcessBatch(b); err != nil {
				t.Fatal(err)
			}
		}
		if n := s.Graph().DeadVersions(); n != 0 {
			t.Fatalf("trial %d: %d dead versions after the last reader retired", trial, n)
		}
		got, want := core.SnapshotEdges(s.Graph()), core.SnapshotEdges(multi.Graph())
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: folded graph differs from never-versioned oracle (%d vs %d edges)",
				trial, len(got), len(want))
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// faultyMember panics on the Nth ApplyInsert; everything else
// delegates to a real RAPQ member. It drives the sticky-error path.
type faultyMember struct {
	*core.RAPQ
	calls, failAt int
}

func (f *faultyMember) ApplyInsert(t stream.Tuple) {
	f.calls++
	if f.calls == f.failAt {
		panic("injected member fault")
	}
	f.RAPQ.ApplyInsert(t)
}

// TestStickyWorkerError: a panic in a member engine on a shard
// goroutine must not crash the process or wedge the pipeline; it
// surfaces as the sticky engine error from ProcessBatch, poisons
// subsequent calls, and is reported again by Close and Err.
func TestStickyWorkerError(t *testing.T) {
	s, err := New(window.Spec{Size: 20, Slide: 2}, WithShards(2), WithPipelineDepth(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Add(bind(t, "(a/b)+", "a", "b"), nil); err != nil {
		t.Fatal(err)
	}
	// Wrap a second member with the fault injector, on the other shard.
	fa := bind(t, "a+", "a", "b")
	if err := s.precheck(fa); err != nil {
		t.Fatal(err)
	}
	mb := s.newMember(fa, nil, fa.Fingerprint())
	w := s.workers[mb.index%len(s.workers)]
	inner := core.NewRAPQ(fa, s.spec, core.WithSink(captureSink{w}))
	s.admit(w, &faultyMember{RAPQ: inner, failAt: 30}, mb)

	tuples := hazardTuples(rand.New(rand.NewSource(3)), 400)
	var firstErr error
	for _, b := range batches(tuples, 20) {
		if _, err := s.ProcessBatch(b); err != nil {
			firstErr = err
			break
		}
	}
	if firstErr == nil || !strings.Contains(firstErr.Error(), "injected member fault") {
		t.Fatalf("fault did not surface from ProcessBatch: %v", firstErr)
	}
	if _, err := s.ProcessBatch(tuples[:1]); err == nil {
		t.Fatal("poisoned engine accepted another batch")
	}
	if s.Err() == nil {
		t.Fatal("Err() lost the sticky error")
	}
	if err := s.Close(); err == nil || !strings.Contains(err.Error(), "injected member fault") {
		t.Fatalf("Close() = %v, want the sticky error", err)
	}
}

// TestStickyErrorFromProcess: the single-tuple core.Engine entry point
// records failures instead of panicking.
func TestStickyErrorFromProcess(t *testing.T) {
	s, err := New(window.Spec{Size: 10, Slide: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Add(bind(t, "a", "a"), nil); err != nil {
		t.Fatal(err)
	}
	s.Process(stream.Tuple{TS: 5, Label: 0})
	s.Process(stream.Tuple{TS: 3, Label: 0}) // out of order: must not panic
	if s.Err() == nil {
		t.Fatal("out-of-order Process did not set the sticky error")
	}
}

// TestPipelineOptionValidation covers the new option's guard rails and
// the accessor.
func TestPipelineOptionValidation(t *testing.T) {
	if _, err := New(window.Spec{Size: 10, Slide: 1}, WithPipelineDepth(0)); err == nil {
		t.Fatal("zero pipeline depth accepted")
	}
	if _, err := New(window.Spec{Size: 10, Slide: 1}, WithPipelineDepth(-3)); err == nil {
		t.Fatal("negative pipeline depth accepted")
	}
	s, err := New(window.Spec{Size: 10, Slide: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if d := s.PipelineDepth(); d != 2 {
		t.Fatalf("default pipeline depth = %d, want 2", d)
	}
	s4, err := New(window.Spec{Size: 10, Slide: 1}, WithPipelineDepth(4))
	if err != nil {
		t.Fatal(err)
	}
	defer s4.Close()
	if d := s4.PipelineDepth(); d != 4 {
		t.Fatalf("PipelineDepth = %d, want 4", d)
	}
}

var _ core.MemberEngine = (*faultyMember)(nil)
