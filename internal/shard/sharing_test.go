package shard

import (
	"math/rand"
	"reflect"
	"testing"

	"streamrpq/internal/stream"
	"streamrpq/internal/window"
)

// sharingExprs mixes an exact duplicate pair (indices 0 and 2), a
// language-equivalent pair that only minimization unifies (1 and 3),
// and a private singleton (4): with sharing on the five registrations
// collapse to three Δ-index groups, two of them shared.
var sharingExprs = []string{"(a/b)+", "a/b*", "(a/b)+", "a|(a/b*)", "(a|b)+"}

// runSharing drives one engine configuration over the churn stream,
// with a mid-stream removal that splits a shared group down to one
// subscriber and a later re-registration that re-forms it, and returns
// the full merged result sequence.
func runSharing(t *testing.T, spec window.Spec, tuples []stream.Tuple, shards, depth, writers int, sharing bool) []Result {
	t.Helper()
	s, err := New(spec, WithShards(shards), WithPipelineDepth(depth), WithWriters(writers), WithSharing(sharing))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.SetRetainAll(true); err != nil {
		t.Fatal(err)
	}
	for _, expr := range sharingExprs {
		if _, err := s.Add(bind(t, expr, "a", "b"), nil); err != nil {
			t.Fatal(err)
		}
	}
	if sharing {
		if st := s.Stats(); st.Groups != 3 || st.SharedGroups != 2 {
			t.Fatalf("sharing on: groups %d shared %d, want 3/2", st.Groups, st.SharedGroups)
		}
	}
	bs := batches(tuples, 23)
	var all []Result
	for bi, b := range bs {
		switch bi {
		case len(bs) / 3:
			// Split: index 2 duplicates index 0, so with sharing on this
			// shrinks a shared group to a single subscriber.
			if err := s.RemoveDynamic(2); err != nil {
				t.Fatal(err)
			}
		case 2 * len(bs) / 3:
			// Re-form: the same pattern registers again mid-stream and,
			// with sharing on, must rejoin the live group rather than
			// bootstrap a private copy.
			if idx, err := s.AddDynamic(bind(t, "(a/b)+", "a", "b"), nil); err != nil {
				t.Fatal(err)
			} else if idx != len(sharingExprs) {
				t.Fatalf("re-registration index = %d", idx)
			}
		}
		rs, err := s.ProcessBatch(b)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, rs...)
	}
	if sharing {
		if st := s.Stats(); st.Groups != 3 || st.SharedGroups != 2 {
			t.Fatalf("sharing on, after re-form: groups %d shared %d, want 3/2", st.Groups, st.SharedGroups)
		}
		if st := s.Stats(); st.RelevanceSkips != 0 {
			// Every tuple label (a, b) is relevant to every group here;
			// the skip counter is exercised by TestShardRelevanceSkips.
			t.Fatalf("unexpected relevance skips: %d", st.RelevanceSkips)
		}
	}
	return all
}

// TestSharedGroupsByteIdentical is the sharing acceptance differential:
// on a 20%-churn stream with a mid-stream group split and re-form, the
// merged result stream with sharing ON must be byte-identical —
// results, order, timestamps, invalidations, query ids — to the
// all-private engine at every shards × depth × writers configuration.
// Canonical-automaton dedup and relevance-ordered dispatch must be
// completely invisible in the output.
func TestSharedGroupsByteIdentical(t *testing.T) {
	spec := window.Spec{Size: 25, Slide: 5}
	tuples := randomTuples(rand.New(rand.NewSource(4242)), 700, 7, 2, 1, 0.20)

	for _, shards := range []int{1, 2, 8} {
		for _, depth := range []int{1, 2, 4} {
			for _, writers := range []int{1, 4} {
				private := runSharing(t, spec, tuples, shards, depth, writers, false)
				if len(private) == 0 {
					t.Fatal("no results produced; test is vacuous")
				}
				shared := runSharing(t, spec, tuples, shards, depth, writers, true)
				if !reflect.DeepEqual(private, shared) {
					t.Fatalf("shards=%d depth=%d writers=%d: sharing changed the result stream (%d vs %d results)",
						shards, depth, writers, len(shared), len(private))
				}
			}
		}
	}
}

// TestShardRelevanceSkips: a group whose automaton has no transition on
// the incoming label must be skipped, not dispatched, and the counters
// must account for every (tuple, group) combination of relevant tuples.
func TestShardRelevanceSkips(t *testing.T) {
	s, err := New(window.Spec{Size: 50, Slide: 5}, WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Three groups: {a}, {a,b}, {c}.
	for _, expr := range []string{"a+", "(a/b)+", "c*"} {
		if _, err := s.Add(bind(t, expr, "a", "b", "c"), nil); err != nil {
			t.Fatal(err)
		}
	}
	tuples := []stream.Tuple{
		{TS: 1, Src: 1, Dst: 2, Label: 0}, // a: groups 1, 2
		{TS: 2, Src: 2, Dst: 3, Label: 1}, // b: group 2
		{TS: 3, Src: 3, Dst: 4, Label: 2}, // c: group 3
	}
	if _, err := s.ProcessBatch(tuples); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Dispatches != 4 || st.RelevanceSkips != 5 {
		t.Fatalf("dispatches %d skips %d, want 4/5", st.Dispatches, st.RelevanceSkips)
	}
	// The per-shard split must sum to the aggregate.
	var d, k int64
	for _, ss := range s.ShardStats() {
		d += ss.Dispatches
		k += ss.RelevanceSkips
	}
	if d != st.Dispatches || k != st.RelevanceSkips {
		t.Fatalf("per-shard sums %d/%d != aggregate %d/%d", d, k, st.Dispatches, st.RelevanceSkips)
	}
}
