// Package shard implements a sharded concurrent multi-query RPQ
// engine: the multi-query sharing of core.Multi (the paper's §7
// future-work direction) scaled across cores.
//
// Registered queries are partitioned round-robin over N worker
// shards. Each shard owns the Δ spanning-tree indexes of its queries
// and runs on its own goroutine behind a bounded job channel, so a
// slow shard exerts backpressure on the coordinator instead of
// queueing unboundedly. The window content G_{W,τ} is query
// independent, so the snapshot graph and the window clock are owned by
// the coordinator; every shard updates its own indexes concurrently.
//
// # Batching and sub-batch hazards
//
// ProcessBatch applies a whole sub-batch of graph mutations before
// waking the shards, which amortizes coordination to one channel
// round-trip per sub-batch instead of per tuple. Because the graph
// then runs ahead of the tuple a shard is currently applying, the core
// engines ignore edges with ts beyond their stream clock (see the
// horizon filters in core's insert/expiry traversals); with that
// filter a shard processing tuple i observes exactly the sequential
// prefix G_{W,τi}. Three events would let the graph diverge from the
// sequential prefix inside one sub-batch, so they cut a batch into
// sub-batches and are only ever applied as the first step of one:
//
//   - a slide-boundary crossing (expiry physically removes edges that
//     earlier tuples of the batch may still need),
//   - an explicit deletion (its sub-batch is a singleton: tuples after
//     the delete must not be visible while members process it, and the
//     deleted edge must not be visible to tuples after it),
//   - a re-insertion that refreshes an existing edge's timestamp
//     (earlier tuples must observe the pre-refresh timestamp).
//
// # Pipelined sub-batches
//
// The snapshot graph is epoch-versioned (internal/graph): each
// sub-batch's mutations are applied at a fresh epoch, and the shards
// traverse the graph at the epoch their sub-batch was cut against.
// Because readers of epoch k cannot observe epoch-k+1 removals,
// refreshes or inserts, the coordinator no longer has to barrier on a
// hazard: it advances epoch k+1 — expiry, deletion, re-insertion
// included — while the shards are still fanning out epoch k. The
// pipeline is bounded (WithPipelineDepth, default 2 sub-batches in
// flight); the full barrier survives only at batch boundaries, which
// therefore remain the engine's globally consistent points — exactly
// where internal/persist takes its checkpoints, and the checkpoint
// serialization folds the version intervals back into a flat,
// epoch-free graph. Depth 1 reproduces the fully barriered engine:
// every sub-batch is collected immediately after dispatch, before the
// next sub-batch's mutations are applied.
//
// # Multi-writer epoch construction
//
// Within one sub-batch the mutations themselves are built by N writer
// goroutines (WithWriters): the coordinator plans the sub-batch
// serially — hazard checks consult a plan overlay so they observe the
// sub-batch's own unapplied inserts — partitioning every edge mutation
// into two half-mutations owned by the vertex stripes of its
// endpoints, and graph.Applier.Flush applies the per-stripe queues
// concurrently before dispatch. A slab belongs to exactly one stripe
// and each stripe's queue preserves plan order, so every slab sees the
// identical mutation history at any writer count (the deterministic
// stripe-ordered two-phase apply); visibility still flips only at the
// single atomic epoch advance that precedes planning. writers=1
// applies inline and reproduces the single-writer engine byte for
// byte.
//
// Under this discipline the sharded engine produces, per query, the
// result stream of the sequential core.Multi coordinator, at any
// pipeline depth — on arbitrary update streams, explicit deletions
// included. The member engines emit on liveness transitions backed by
// support counting (a match exactly when a (root, v) pair gains its
// first in-window final-state witness, an invalidation exactly when a
// deletion removes the last one), so the full result stream —
// invalidations and their multiplicities included — is a pure function
// of the input stream, independent of incidental spanning-tree shape
// (the paper's Algorithm Delete cuts along tree edges, but which
// witnesses a cut removes can no longer change what is reported). Two
// runs over the same stream therefore yield byte-identical merged
// result sequences; only the attribution of a match to a tuple inside
// one timestamp tie-group can differ from the tuple-at-a-time
// sequential engine (the sub-batch's same-timestamp edges are already
// visible), and even that attribution is deterministic across sharded
// runs and configurations. Merged results are returned in a canonical
// order (tuple index, query registration index, matches before
// invalidations, then (From, To, TS)).
//
// # Errors
//
// The engine never panics mid-pipeline: a panic in a member engine on
// a shard goroutine is recovered into a sticky error that poisons the
// engine — the current ProcessBatch (and every later one) fails with
// it, and Close reports it again. Process, whose core.Engine signature
// has no error, records failures in the same sticky error (see Err).
package shard

import (
	"fmt"
	"sort"
	"sync"

	"streamrpq/internal/automaton"
	"streamrpq/internal/core"
	"streamrpq/internal/graph"
	"streamrpq/internal/stream"
	"streamrpq/internal/window"
)

// Result is one merged result of a batch: the member query (by
// registration index) that produced the match, and the batch tuple
// that triggered it.
type Result struct {
	Tuple       int // index into the batch passed to ProcessBatch
	Query       int // query registration index (order of Add calls)
	Match       core.Match
	Invalidated bool // true for results retracted by an explicit deletion
}

type config struct {
	shards  int
	queue   int
	depth   int
	writers int
	sharing bool
}

// Option configures an Engine.
type Option func(*config)

// WithShards sets the number of worker shards queries are partitioned
// over (default 1; n <= 0 is an error).
func WithShards(n int) Option { return func(c *config) { c.shards = n } }

// WithWriters sets the number of writer goroutines building each
// epoch's graph mutations (default 1; n <= 0 is an error). The
// coordinator plans every sub-batch serially, partitions the resulting
// half-mutations by vertex stripe, and n writers apply the per-stripe
// queues concurrently before the sub-batch is dispatched (see
// graph.Applier). Visibility still flips only at the single atomic
// epoch advance, so the result stream is byte-identical at every
// writer count; writers == 1 applies inline with no pool at all.
// Composes freely with WithShards and WithPipelineDepth.
func WithWriters(n int) Option { return func(c *config) { c.writers = n } }

// WithQueueDepth bounds each shard's job channel (default 2). The
// coordinator blocks when a shard's queue is full: backpressure, not
// unbounded buffering. The effective capacity is at least the pipeline
// depth.
func WithQueueDepth(n int) Option { return func(c *config) { c.queue = n } }

// WithSharing toggles shared-group evaluation (default on): queries
// whose bound automata are structurally identical (equal
// automaton.Bound.Fingerprint) subscribe to ONE shared Δ-index group
// whose engine runs once per tuple, with emissions fanned out to every
// subscriber. The engine is deterministic and the merge order is
// canonical, so each subscriber's result stream is byte-identical to
// what a private engine would produce; only the per-tuple work changes.
// Off restores one private group per query.
func WithSharing(on bool) Option { return func(c *config) { c.sharing = on } }

// WithPipelineDepth bounds how many sub-batches may be in flight —
// dispatched to the shards but not yet collected — at once (default 2;
// n <= 0 is an error). Depth 1 reproduces the fully barriered
// coordinator exactly: the graph and window advance only after every
// shard has finished the previous sub-batch. Depth ≥ 2 lets the
// coordinator apply epoch k+1's graph mutations (expiry, deletions,
// re-insertions included) while the shards still traverse epoch k; the
// epoch-versioned graph keeps each in-flight sub-batch's snapshot
// intact. Batch boundaries always drain the pipeline.
func WithPipelineDepth(n int) Option { return func(c *config) { c.depth = n } }

// Engine is the sharded multi-query coordinator. It is driven by a
// single goroutine (like every engine in this module): internal
// concurrency is the engine's business, the API is not thread-safe.
// Close releases the worker goroutines.
type Engine struct {
	spec    window.Spec
	g       *graph.Graph
	app     *graph.Applier // plans + stripe-parallel-applies epoch mutations
	win     *window.Manager
	depth   int
	workers []*worker
	members []*member
	groups  []*group // active Δ-index groups, creation order
	sharing bool     // equivalent queries share one group (WithSharing)
	// relevant[l] reports whether label l is in any member's alphabet;
	// tuples outside every alphabet skip the graph and the shards.
	relevant []bool

	// Relevance-filter counters restored from a snapshot; live counts
	// accumulate per worker and are added on top (see Stats).
	dispatchBase int64
	skipBase     int64

	now     int64
	seen    int64
	dropped int64
	started bool
	closed  bool
	err     error // sticky: first internal failure; engine is poisoned

	// retain-all mode (see SetRetainAll): the graph stores every label
	// so AddDynamic can bootstrap a new query from the live window.
	// labelTS holds the per-label stream clocks (see core.Multi).
	retain  bool
	labelTS []int64

	// pending holds members registered with AddDynamic whose background
	// window bootstrap has not yet been joined; catch accumulates the
	// sub-batches dispatched since the oldest registration (with their
	// epochs) so the member can replay exactly what it missed. Both are
	// settled by finishPending at the next consistency point.
	pending []*pendingMember
	catch   []catchJob

	wg       sync.WaitGroup
	inflight []inflightSub // dispatched, uncollected sub-batches (≤ depth)
	stepPool [][]step      // recycled step slices of collected sub-batches
	tagged   []Result
	results  []Result
}

// pendingMember is a dynamically registered group between AddDynamic
// and activation: its Δ index is being bootstrapped from the window
// content at epoch (under a reader lease) on a background goroutine.
// Further equivalent AddDynamic calls in the same inter-batch gap
// subscribe to the pending group rather than bootstrapping again.
type pendingMember struct {
	g     *group
	epoch graph.Epoch   // bootstrap epoch; leased until activation
	done  chan struct{} // closed when the background replay finishes
	err   error         // recovered bootstrap panic, if any
}

// catchJob is one dispatched sub-batch retained (steps copied, epoch
// recorded) for pending members to replay at activation.
type catchJob struct {
	epoch graph.Epoch
	steps []step
}

// inflightSub is one dispatched sub-batch awaiting collection.
type inflightSub struct {
	epoch graph.Epoch
	steps []step
}

// member is one registered query: its bound automaton, its user sink,
// and the shared Δ-index group it subscribes to. Several members share
// one group when sharing is on and their automata are equivalent.
type member struct {
	bound *automaton.Bound
	sink  core.Sink // user sink; called by the coordinator post-merge
	index int
	key   string // group key (automaton fingerprint, or a private nonce)
	group *group
}

// group owns one member engine, evaluated once per tuple for all its
// subscribers. subs holds the subscriber registration indices in
// ascending order — the fan-out stamps one Result per subscriber, and
// the canonical merge restores per-query order afterwards. The group is
// pinned to one worker shard (chosen by its first subscriber's index).
type group struct {
	engine core.MemberEngine
	bound  *automaton.Bound
	key    string
	subs   []int
	w      *worker
}

// step is one unit of work inside a sub-batch, shipped to every shard.
type step struct {
	tuple    stream.Tuple
	index    int   // tuple index in the user batch, for attribution
	deadline int64 // expiry deadline, when expire is set
	expire   bool  // run ApplyExpiry(deadline) before applying the tuple
	del      bool  // tuple is a deletion that removed a live edge
	skip     bool  // no member work (irrelevant label or no-op delete)
}

// job is one sub-batch dispatched to a shard, tagged with the graph
// epoch its steps were cut against.
type job struct {
	steps []step
	epoch graph.Epoch
}

// reply is a shard's response to one job.
type reply struct {
	results []Result
	err     error
}

// worker owns the groups of one shard and applies every sub-batch to
// them on its own goroutine. rel is the shard's per-label dispatch
// index over its own groups (positions into w.groups), rebuilt by the
// coordinator on membership changes between batches; dispatches /
// relevanceSkips count the (step, group) pairs it admitted and avoided.
type worker struct {
	id     int
	groups []*group
	rel    core.RelevanceIndex
	in     chan job
	out    chan reply

	buf            []Result
	curTuple       int
	curGroup       *group
	dispatches     int64
	relevanceSkips int64
}

// rebuild recomputes the shard's relevance index. Coordinator-side,
// between batches only (the worker goroutine reads rel while applying).
func (w *worker) rebuild() {
	bounds := make([]*automaton.Bound, len(w.groups))
	tiebreak := make([]int, len(w.groups))
	for i, g := range w.groups {
		bounds[i] = g.bound
		tiebreak[i] = g.subs[0]
	}
	w.rel = core.BuildRelevanceIndex(bounds, tiebreak)
}

// captureSink collects a group engine's emissions into its worker's
// buffer, tagged with the current tuple and fanned out to every
// subscriber of the current group — one Result per subscribed query,
// exactly what private engines would have appended. Buffer order within
// a sub-batch is irrelevant: the merge sorts canonically.
type captureSink struct{ w *worker }

func (c captureSink) OnMatch(m core.Match) {
	for _, q := range c.w.curGroup.subs {
		c.w.buf = append(c.w.buf, Result{Tuple: c.w.curTuple, Query: q, Match: m})
	}
}

func (c captureSink) OnInvalidate(m core.Match) {
	for _, q := range c.w.curGroup.subs {
		c.w.buf = append(c.w.buf, Result{Tuple: c.w.curTuple, Query: q, Match: m, Invalidated: true})
	}
}

// New creates a sharded engine with the shared window specification.
func New(spec window.Spec, opts ...Option) (*Engine, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	cfg := config{shards: 1, queue: 2, depth: 2, writers: 1, sharing: true}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.shards <= 0 {
		return nil, fmt.Errorf("shard: shard count must be positive, got %d", cfg.shards)
	}
	if cfg.queue <= 0 {
		return nil, fmt.Errorf("shard: queue depth must be positive, got %d", cfg.queue)
	}
	if cfg.depth <= 0 {
		return nil, fmt.Errorf("shard: pipeline depth must be positive, got %d", cfg.depth)
	}
	if cfg.writers <= 0 {
		return nil, fmt.Errorf("shard: writer count must be positive, got %d", cfg.writers)
	}
	g := graph.New()
	s := &Engine{
		spec:    spec,
		g:       g,
		app:     graph.NewApplier(g, cfg.writers),
		win:     window.NewManager(spec),
		depth:   cfg.depth,
		workers: make([]*worker, cfg.shards),
		sharing: cfg.sharing,
	}
	queue := max(cfg.queue, cfg.depth)
	for i := range s.workers {
		s.workers[i] = &worker{
			id: i,
			in: make(chan job, queue),
			// Replies for every in-flight sub-batch must fit without
			// blocking the shard, or a fast shard would stall behind the
			// coordinator's lazy collection.
			out: make(chan reply, cfg.depth),
		}
	}
	return s, nil
}

// NumShards returns the number of worker shards.
func (s *Engine) NumShards() int { return len(s.workers) }

// PipelineDepth returns the configured bound on in-flight sub-batches.
func (s *Engine) PipelineDepth() int { return s.depth }

// NumWriters returns the configured epoch-construction writer count.
func (s *Engine) NumWriters() int { return s.app.Writers() }

// Sharing reports whether equivalent queries share one Δ-index group.
func (s *Engine) Sharing() bool { return s.sharing }

// Len returns the number of live (non-removed) queries.
func (s *Engine) Len() int {
	n := 0
	for _, mb := range s.members {
		if mb != nil {
			n++
		}
	}
	return n
}

// SetRetainAll switches the shared graph to retain-all mode: every
// tuple mutates the graph even when no registered query's alphabet
// contains its label. Prerequisite for AddDynamic (a mid-stream query
// replays the live window, which must have been retained in full).
// Must be set before the first batch.
func (s *Engine) SetRetainAll(on bool) error {
	if s.started || s.seen != 0 {
		return fmt.Errorf("shard: SetRetainAll after processing started")
	}
	s.retain = on
	return nil
}

// RetainAll reports whether the shared graph stores every label.
func (s *Engine) RetainAll() bool { return s.retain }

// Graph exposes the shared snapshot graph (read-only use).
func (s *Engine) Graph() *graph.Graph { return s.g }

// Err returns the sticky engine error, if any: the first internal
// failure (e.g. a recovered member-engine panic on a shard goroutine)
// that poisoned the engine. ProcessBatch and Close surface it too.
func (s *Engine) Err() error { return s.err }

// Add registers one RAPQ query and returns its engine (for Stats
// probes). Queries must be added before the first batch; sink may be
// nil. With sharing on, a query equivalent to an already-registered one
// subscribes to the existing group and returns the shared engine; a new
// group is assigned to shard index Len() mod NumShards().
func (s *Engine) Add(a *automaton.Bound, sink core.Sink) (*core.RAPQ, error) {
	if err := s.precheck(a); err != nil {
		return nil, err
	}
	mb := s.newMember(a, sink, a.Fingerprint())
	if g := s.joinGroup(mb); g != nil {
		return g.engine.(*core.RAPQ), nil
	}
	w := s.workers[mb.index%len(s.workers)]
	e := core.NewRAPQ(a, s.spec, core.WithSink(captureSink{w}))
	s.admit(w, e, mb)
	return e, nil
}

// AddParallel registers one query evaluated with intra-query tree
// parallelism (core.ParallelRAPQ): per-tuple tree updates of this
// member fan out over its own worker pool, composing with the
// inter-query sharding (neither layer takes a whole-engine lock).
// Parallel members never share a group (their key is a private nonce):
// the worker-pool configuration is per query.
func (s *Engine) AddParallel(a *automaton.Bound, sink core.Sink, workers int) (*core.ParallelRAPQ, error) {
	if err := s.precheck(a); err != nil {
		return nil, err
	}
	mb := s.newMember(a, sink, fmt.Sprintf("#parallel%d", len(s.members)))
	w := s.workers[mb.index%len(s.workers)]
	e := core.NewParallelRAPQ(a, s.spec, workers, core.WithSink(captureSink{w}))
	s.admit(w, e, mb)
	return e, nil
}

func (s *Engine) precheck(a *automaton.Bound) error {
	if s.closed {
		return fmt.Errorf("shard: Add on closed engine")
	}
	if s.started {
		return fmt.Errorf("shard: Add after processing started (use AddDynamic)")
	}
	return s.checkLabelSpace(a)
}

// newMember appends a member slot (without a group yet).
func (s *Engine) newMember(a *automaton.Bound, sink core.Sink, key string) *member {
	mb := &member{bound: a, sink: sink, index: len(s.members), key: key}
	s.members = append(s.members, mb)
	return mb
}

// joinGroup subscribes the member to an existing active group with the
// same key, if sharing is on. Returns nil when a new group is needed.
func (s *Engine) joinGroup(mb *member) *group {
	if !s.sharing {
		return nil
	}
	for _, g := range s.groups {
		if g.key == mb.key {
			g.subs = append(g.subs, mb.index)
			mb.group = g
			s.noteRelevant(mb.bound)
			return g
		}
	}
	return nil
}

// checkLabelSpace enforces the dense-label-space discipline. Static
// query sets bind every member against the identical space; in
// retain-all (dynamic) mode the space grows monotonically — later
// members see a larger dictionary, and older members bounds-check
// labels beyond their binding (the ΣQ guards in core).
func (s *Engine) checkLabelSpace(a *automaton.Bound) error {
	for _, mb := range s.members {
		if mb == nil {
			continue
		}
		sp := len(mb.bound.ByLabel)
		if s.retain {
			if len(a.ByLabel) < sp {
				return fmt.Errorf("shard: label space shrank: %d vs existing %d labels (bind new queries against the full dictionary)",
					len(a.ByLabel), sp)
			}
			continue
		}
		if len(a.ByLabel) != sp {
			return fmt.Errorf("shard: label space mismatch: %d vs %d labels",
				len(a.ByLabel), sp)
		}
	}
	return nil
}

// admit activates a new group for the member on worker w.
func (s *Engine) admit(w *worker, e core.MemberEngine, mb *member) {
	e.AttachGraph(s.g)
	g := &group{engine: e, bound: mb.bound, key: mb.key, subs: []int{mb.index}, w: w}
	mb.group = g
	s.groups = append(s.groups, g)
	w.groups = append(w.groups, g)
	w.rebuild()
	s.noteRelevant(mb.bound)
}

// noteRelevant folds one member's alphabet into the union relevance
// table that steers step creation.
func (s *Engine) noteRelevant(a *automaton.Bound) {
	for len(s.relevant) < len(a.ByLabel) {
		s.relevant = append(s.relevant, false)
	}
	for l := range s.relevant {
		if a.Relevant(l) {
			s.relevant[l] = true
		}
	}
}

// AddDynamic registers one RAPQ query mid-stream and returns its
// registration index (the stable id results carry). The engine must be
// in retain-all mode. With sharing on, a query equivalent to an active
// group simply subscribes to its fan-out — the shared engine was
// registered from stream start, so its future emissions are exactly
// the suffix a from-start engine would emit; no bootstrap, no catch-up.
// Otherwise the new group's Δ index is bootstrapped from the window
// content at the current epoch on a background goroutine — ingest is
// not paused — under a reader lease that keeps every later version
// reconstructible. Activation is deterministic: at the end of the next
// ProcessBatch (its sub-batches are captured and replayed to the group,
// at their original epochs, after the bootstrap joins), so from its
// registration batch onward the member emits exactly what a from-start
// engine emits over the same suffix. Matches emitted during the
// bootstrap replay itself — the window's current live result set — are
// suppressed: a from-start engine emitted them before this point.
func (s *Engine) AddDynamic(a *automaton.Bound, sink core.Sink) (int, error) {
	if s.closed {
		return 0, fmt.Errorf("shard: AddDynamic on closed engine")
	}
	if s.err != nil {
		return 0, s.err
	}
	if !s.retain {
		return 0, fmt.Errorf("shard: AddDynamic requires retain-all mode (SetRetainAll before the first batch)")
	}
	if err := s.checkLabelSpace(a); err != nil {
		return 0, err
	}
	mb := s.newMember(a, sink, a.Fingerprint())
	if g := mb.joinPending(s); g != nil {
		return mb.index, nil
	}
	if g := s.joinGroup(mb); g != nil {
		return mb.index, nil
	}
	e := core.NewRAPQ(a, s.spec) // default discard sink while bootstrapping
	e.AttachGraph(s.g)
	w := s.workers[mb.index%len(s.workers)]
	g := &group{engine: e, bound: a, key: mb.key, subs: []int{mb.index}, w: w}
	mb.group = g
	// The union relevance table includes the new alphabet immediately,
	// so every step the member needs is created (and captured for its
	// catch-up) from this point on.
	s.noteRelevant(a)
	// The stream clock a from-start engine would hold now: the last
	// timestamp that touched a relevant label, which may be newer than
	// any surviving window edge (see labelTS).
	var align int64
	for l, ts := range s.labelTS {
		if e.RelevantLabel(stream.LabelID(l)) && ts > align {
			align = ts
		}
	}
	ep := s.g.Epoch()
	s.g.AcquireEpoch(ep)
	p := &pendingMember{g: g, epoch: ep, done: make(chan struct{})}
	s.pending = append(s.pending, p)
	go func() {
		defer close(p.done)
		defer func() {
			if r := recover(); r != nil {
				p.err = fmt.Errorf("shard: dynamic member %d bootstrap panic: %v", mb.index, r)
			}
		}()
		e.BootstrapFromGraph(s.g, ep)
		e.AlignClock(align)
	}()
	return mb.index, nil
}

// joinPending subscribes the member to a pending (not yet activated)
// group with the same key, if sharing is on: both subscribers then
// activate together at the next batch boundary, catch-up included.
func (mb *member) joinPending(s *Engine) *group {
	if !s.sharing {
		return nil
	}
	for _, p := range s.pending {
		if p.g.key == mb.key {
			p.g.subs = append(p.g.subs, mb.index)
			mb.group = p.g
			s.noteRelevant(mb.bound)
			return p.g
		}
	}
	return nil
}

// RemoveDynamic detaches the query with the given registration index.
// Call between batches: the member receives no step of any later batch.
// Its slot becomes a nil tombstone so surviving queries keep their
// registration indices (the canonical merge order depends on them).
func (s *Engine) RemoveDynamic(index int) error {
	if s.closed {
		return fmt.Errorf("shard: RemoveDynamic on closed engine")
	}
	s.finishPending() // settle worker membership first
	if s.err != nil {
		return s.err
	}
	if index < 0 || index >= len(s.members) || s.members[index] == nil {
		return fmt.Errorf("shard: RemoveDynamic: no query with index %d", index)
	}
	mb := s.members[index]
	s.members[index] = nil
	// Safe between batches: the worker goroutine only touches its group
	// list while applying a job, and the next job send happens-after
	// this mutation.
	g := mb.group
	for i, q := range g.subs {
		if q == index {
			g.subs = append(g.subs[:i], g.subs[i+1:]...)
			break
		}
	}
	if len(g.subs) > 0 {
		g.w.rebuild() // the dispatch tie-break (first subscriber) may change
		return nil
	}
	for i, cand := range s.groups {
		if cand == g {
			s.groups = append(s.groups[:i], s.groups[i+1:]...)
			break
		}
	}
	for i, cand := range g.w.groups {
		if cand == g {
			g.w.groups = append(g.w.groups[:i], g.w.groups[i+1:]...)
			break
		}
	}
	g.w.rebuild()
	return nil
}

// finishPending activates every pending member: join its background
// bootstrap, replay the sub-batches captured since registration (at
// their original epochs), release its bootstrap lease, and attach it
// to its shard. Runs at the end of the first ProcessBatch after
// registration — the catch-up results merge into that batch — and from
// SnapshotState/RemoveDynamic/Close, so every consistency point sees a
// settled member list. Outside ProcessBatch the catch list is empty
// (every batch settles it), so activation there emits nothing.
func (s *Engine) finishPending() {
	if len(s.pending) == 0 {
		return
	}
	for _, p := range s.pending {
		<-p.done
		if p.err == nil {
			p.err = s.catchUp(p)
		}
		s.g.ReleaseEpoch(p.epoch)
		if p.err != nil {
			if s.err == nil {
				s.err = p.err
			}
			for _, q := range p.g.subs {
				s.members[q] = nil // never activated
			}
			continue
		}
		w := p.g.w
		p.g.engine.SetSink(captureSink{w})
		s.groups = append(s.groups, p.g)
		w.groups = append(w.groups, p.g)
		w.rebuild()
	}
	s.pending = s.pending[:0]
	s.catch = s.catch[:0]
}

// catchUp replays the captured sub-batches through a freshly
// bootstrapped group on the coordinator goroutine, tagging its
// emissions (fanned out to every subscriber) for the current batch's
// merge. The group reads the graph at each sub-batch's original epoch,
// kept alive by the bootstrap lease, so it observes exactly the
// snapshots the live members did.
func (s *Engine) catchUp(p *pendingMember) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("shard: dynamic member %d catch-up panic: %v", p.g.subs[0], r)
		}
	}()
	cur := 0
	e := p.g.engine
	e.SetSink(core.FuncSink{
		Match: func(m core.Match) {
			for _, q := range p.g.subs {
				s.tagged = append(s.tagged, Result{Tuple: cur, Query: q, Match: m})
			}
		},
		Invalidate: func(m core.Match) {
			for _, q := range p.g.subs {
				s.tagged = append(s.tagged, Result{Tuple: cur, Query: q, Match: m, Invalidated: true})
			}
		},
	})
	for _, jb := range s.catch {
		e.SetReadEpoch(jb.epoch)
		for _, st := range jb.steps {
			if st.expire {
				cur = st.index
				e.ApplyExpiry(st.deadline)
			}
			if st.skip {
				continue
			}
			if !e.RelevantLabel(st.tuple.Label) {
				continue
			}
			cur = st.index
			if st.del {
				e.ApplyDelete(st.tuple)
			} else {
				e.ApplyInsert(st.tuple)
			}
		}
	}
	return nil
}

func (s *Engine) relevantLabel(l stream.LabelID) bool {
	return l >= 0 && int(l) < len(s.relevant) && s.relevant[l]
}

// start spawns the shard goroutines on first use.
func (s *Engine) start() {
	if s.started {
		return
	}
	s.started = true
	for _, w := range s.workers {
		s.wg.Add(1)
		go func(w *worker) {
			defer s.wg.Done()
			w.run()
		}(w)
	}
}

// run is the shard goroutine: apply each sub-batch to the shard's
// queries in stream order, then hand the tagged results back.
func (w *worker) run() {
	for jb := range w.in {
		w.out <- w.apply(jb)
	}
}

// apply processes one job. A panic in a member engine is recovered
// into the reply — the coordinator turns it into the sticky engine
// error — so a fault cannot take the whole process down mid-pipeline.
func (w *worker) apply(jb job) (rep reply) {
	defer func() {
		if r := recover(); r != nil {
			rep = reply{err: fmt.Errorf("shard %d: member engine panic: %v", w.id, r)}
		}
	}()
	w.buf = nil
	// Hand every group the epoch this sub-batch was cut against; the
	// coordinator may already be mutating the graph at later epochs.
	for _, g := range w.groups {
		g.engine.SetReadEpoch(jb.epoch)
	}
	for _, st := range jb.steps {
		if st.expire {
			w.curTuple = st.index
			for _, g := range w.groups {
				w.curGroup = g
				g.engine.ApplyExpiry(st.deadline)
			}
		}
		if st.skip {
			continue
		}
		w.curTuple = st.index
		// Only the groups with a transition on this label, most selective
		// first (the groups are independent — they share only the epoch-
		// versioned snapshot graph — so order cannot change emissions).
		order := w.rel.Groups(int(st.tuple.Label))
		w.dispatches += int64(len(order))
		w.relevanceSkips += int64(len(w.groups) - len(order))
		for _, gi := range order {
			g := w.groups[gi]
			w.curGroup = g
			if st.del {
				g.engine.ApplyDelete(st.tuple)
			} else {
				g.engine.ApplyInsert(st.tuple)
			}
		}
	}
	return reply{results: w.buf}
}

// Process implements core.Engine for drop-in use in single-tuple
// harnesses: a batch of one. Results flow to the member sinks. The
// Engine interface has no error return, so conditions ProcessBatch
// would report — an out-of-order tuple, a closed engine, a shard
// fault — are recorded as the sticky engine error instead of
// panicking mid-pipeline; check Err (or the error of a later
// ProcessBatch/Close call).
func (s *Engine) Process(t stream.Tuple) {
	if _, err := s.ProcessBatch([]stream.Tuple{t}); err != nil && s.err == nil {
		s.err = err
	}
}

// ProcessBatch ingests a batch of tuples (timestamps non-decreasing,
// continuing from previous batches) and returns the merged results in
// canonical order. The returned slice is reused by the next call.
// Results are also delivered to the member sinks, in the same order.
// The pipeline is fully drained before returning: batch boundaries are
// the engine's globally consistent points.
func (s *Engine) ProcessBatch(tuples []stream.Tuple) ([]Result, error) {
	if s.closed {
		return nil, fmt.Errorf("shard: ProcessBatch on closed engine")
	}
	if s.err != nil {
		return nil, s.err
	}
	last := s.now
	for _, t := range tuples {
		if t.TS < last {
			return nil, fmt.Errorf("shard: out-of-order tuple: ts %d after %d", t.TS, last)
		}
		last = t.TS
	}
	s.start()
	s.tagged = s.tagged[:0]
	for i := 0; i < len(tuples); {
		i = s.subBatch(tuples, i)
	}
	s.drain()
	s.finishPending() // activate queries registered before this batch
	if s.err != nil {
		return nil, s.err
	}
	s.merge()
	return s.results, nil
}

// noteLabel records the per-label stream clock in retain-all mode;
// called for exactly the tuples that mutated the graph (see labelTS).
func (s *Engine) noteLabel(t stream.Tuple) {
	if !s.retain || t.Label < 0 {
		return
	}
	for int(t.Label) >= len(s.labelTS) {
		s.labelTS = append(s.labelTS, 0)
	}
	if t.TS > s.labelTS[t.Label] {
		s.labelTS[t.Label] = t.TS
	}
}

// getSteps returns a recycled step slice (empty, capacity preserved).
// Step slices cannot be reused while a sub-batch referencing them is in
// flight, so they cycle through the pool on collection.
func (s *Engine) getSteps() []step {
	if n := len(s.stepPool); n > 0 {
		st := s.stepPool[n-1]
		s.stepPool = s.stepPool[:n-1]
		return st[:0]
	}
	return nil
}

// subBatch builds, applies and dispatches one sub-batch starting at
// tuple index i, returning the index of the first tuple of the next
// sub-batch. Shared-state changes happen in two phases at a fresh
// epoch: the coordinator plans every mutation serially (hazard checks
// read the plan overlay, so they see the sub-batch's own unapplied
// inserts), then Flush applies the per-stripe queues with the
// configured writers and barriers before any shard sees the steps.
func (s *Engine) subBatch(tuples []stream.Tuple, i int) int {
	if tuples[i].Op == stream.Delete {
		s.deleteStep(tuples[i], i)
		return i + 1
	}
	epoch := s.app.BeginEpoch()
	steps := s.getSteps()
	j := i
	for ; j < len(tuples); j++ {
		t := tuples[j]
		rel := s.relevantLabel(t.Label)
		ins := rel || s.retain // retain-all mode stores every label
		if j > i {
			_, due := s.win.Peek(t.TS)
			if due || t.Op == stream.Delete || (ins && s.app.Live(t.Key())) {
				break // hazard: must start a fresh sub-batch
			}
		}
		s.seen++
		if t.TS > s.now {
			s.now = t.TS
		}
		st := step{tuple: t, index: j}
		if ex, due := s.win.ObserveAt(t.TS, uint64(epoch)); due {
			// Expiry only ever fires at the first tuple (the Peek hazard
			// above cuts otherwise), so the plan is empty here — the
			// precondition PlanExpire's FIFO probe needs.
			s.win.NoteRemoved(s.app.PlanExpire(ex.Deadline))
			st.expire, st.deadline = true, ex.Deadline
		}
		if ins {
			s.app.PlanInsert(t.Src, t.Dst, t.Label, t.TS)
			s.noteLabel(t)
		}
		if !rel {
			s.dropped++
			st.skip = true
			if !st.expire {
				continue // nothing for the shards to do
			}
		}
		steps = append(steps, st)
	}
	s.app.Flush()
	s.dispatch(steps, epoch)
	return j
}

// deleteStep handles one explicit deletion as its own sub-batch(es):
// members must run a due expiry pass against the graph as it was
// before the deletion (sequential engines expire before deleting), and
// must process the deletion before any later insert becomes visible.
// The expiry and the deletion are separate epochs, so in-flight
// sub-batches observe neither.
func (s *Engine) deleteStep(t stream.Tuple, index int) {
	s.seen++
	if t.TS > s.now {
		s.now = t.TS
	}
	epoch := s.app.BeginEpoch()
	if ex, due := s.win.ObserveAt(t.TS, uint64(epoch)); due {
		s.win.NoteRemoved(s.app.PlanExpire(ex.Deadline))
		s.app.Flush()
		steps := append(s.getSteps(), step{index: index, deadline: ex.Deadline, expire: true, skip: true})
		s.dispatch(steps, epoch)
		epoch = s.app.BeginEpoch()
	}
	rel := s.relevantLabel(t.Label)
	if !rel {
		s.dropped++
		if !s.retain {
			return
		}
	}
	if !s.app.PlanDelete(t.Key()) {
		return // deleting an absent edge is a no-op
	}
	s.app.Flush()
	s.noteLabel(t)
	if !rel {
		return // graph updated (retain-all); no member work
	}
	steps := append(s.getSteps(), step{tuple: t, index: index, del: true})
	s.dispatch(steps, epoch)
}

// dispatch fans one sub-batch out to every shard and registers it as
// in flight. Collection is lazy: older sub-batches are collected only
// when the pipeline is full (so at depth 1 this is a full barrier, and
// at depth n the coordinator runs up to n-1 sub-batches ahead of the
// slowest shard). The bounded in-channels provide backpressure.
func (s *Engine) dispatch(steps []step, epoch graph.Epoch) {
	if len(steps) == 0 {
		s.stepPool = append(s.stepPool, steps)
		return
	}
	if len(s.pending) > 0 {
		// Pending members replay this sub-batch at activation; steps are
		// copied because the originals recycle through the pool.
		s.catch = append(s.catch, catchJob{epoch: epoch, steps: append([]step(nil), steps...)})
	}
	// The shards traverse the graph at this sub-batch's epoch until
	// collected; register the reader before the first shard could start.
	s.g.AcquireEpoch(epoch)
	jb := job{steps: steps, epoch: epoch}
	for _, w := range s.workers {
		w.in <- jb
	}
	s.inflight = append(s.inflight, inflightSub{epoch: epoch, steps: steps})
	for len(s.inflight) >= s.depth {
		s.collectOldest()
	}
}

// collectOldest gathers every shard's reply for the oldest in-flight
// sub-batch, retires its reader epoch (which lets the graph compact
// versions only that sub-batch could see) and recycles its steps.
func (s *Engine) collectOldest() {
	sub := s.inflight[0]
	s.inflight = s.inflight[1:]
	for _, w := range s.workers {
		rep := <-w.out
		if rep.err != nil {
			if s.err == nil {
				s.err = rep.err
			}
			continue
		}
		s.tagged = append(s.tagged, rep.results...)
	}
	s.g.ReleaseEpoch(sub.epoch)
	if sub.steps != nil {
		s.stepPool = append(s.stepPool, sub.steps)
	}
}

// drain collects every in-flight sub-batch: the batch-boundary barrier.
func (s *Engine) drain() {
	for len(s.inflight) > 0 {
		s.collectOldest()
	}
}

// merge sorts the tagged results of a batch into the canonical order
// and replays them to the member sinks.
func (s *Engine) merge() {
	sort.Slice(s.tagged, func(i, j int) bool {
		a, b := &s.tagged[i], &s.tagged[j]
		if a.Tuple != b.Tuple {
			return a.Tuple < b.Tuple
		}
		if a.Query != b.Query {
			return a.Query < b.Query
		}
		if a.Invalidated != b.Invalidated {
			return !a.Invalidated // matches before invalidations
		}
		if a.Match.From != b.Match.From {
			return a.Match.From < b.Match.From
		}
		if a.Match.To != b.Match.To {
			return a.Match.To < b.Match.To
		}
		return a.Match.TS < b.Match.TS
	})
	s.results = append(s.results[:0], s.tagged...)
	for i := range s.results {
		r := &s.results[i]
		if sink := s.members[r.Query].sink; sink != nil {
			if r.Invalidated {
				sink.OnInvalidate(r.Match)
			} else {
				sink.OnMatch(r.Match)
			}
		}
	}
}

// addGroupStats folds one group's engine counters into an aggregate:
// index-maintenance counters (Trees, Nodes, InsertCalls, expiry costs)
// once per group — that is the point of sharing — and delivery counters
// (Results, Invalidations) once per subscribed query, matching what
// private engines would have reported for a static query set.
func addGroupStats(out *core.Stats, g *group) {
	ms := g.engine.Stats()
	n := int64(len(g.subs))
	out.Trees += ms.Trees
	out.Nodes += ms.Nodes
	out.Results += ms.Results * n
	out.Invalidations += ms.Invalidations * n
	out.InsertCalls += ms.InsertCalls
	out.ExpiryRuns += ms.ExpiryRuns
	out.ExpiryTime += ms.ExpiryTime
	out.Groups++
	if len(g.subs) > 1 {
		out.SharedGroups++
	}
}

// Stats aggregates group statistics; Edges/Vertices describe the
// shared graph. Call between batches only.
func (s *Engine) Stats() core.Stats {
	var st core.Stats
	for _, g := range s.groups {
		addGroupStats(&st, g)
	}
	st.Dispatches = s.dispatchBase
	st.RelevanceSkips = s.skipBase
	for _, w := range s.workers {
		st.Dispatches += w.dispatches
		st.RelevanceSkips += w.relevanceSkips
	}
	st.TuplesSeen = s.seen
	st.TuplesDropped = s.dropped
	st.Edges = s.g.NumEdges()
	st.Vertices = s.g.NumVertices()
	return st
}

// ShardStats returns, per shard, the aggregated statistics of the
// groups it owns — the load-balance view of the partitioning, including
// how many of the shard's per-tuple dispatches the relevance filter
// admitted vs skipped. Call between batches only.
func (s *Engine) ShardStats() []core.Stats {
	out := make([]core.Stats, len(s.workers))
	for i, w := range s.workers {
		for _, g := range w.groups {
			addGroupStats(&out[i], g)
		}
		out[i].Dispatches = w.dispatches
		out[i].RelevanceSkips = w.relevanceSkips
	}
	return out
}

// SnapshotState captures the engine's full state — shared graph, window
// clock, and every member's Δ index in registration order — for a
// checkpoint. It must be called between ProcessBatch calls: batch
// boundaries drain the pipeline, so they are the only globally
// consistent points of the sharded engine. The serialized graph is the
// flat fold of the version intervals at the current epoch (see
// core.SnapshotEdges); the state is epoch-free, so a snapshot taken at
// any shard count and pipeline depth can be restored at any other
// (queries re-partition round-robin on restore).
func (s *Engine) SnapshotState() *core.MultiState {
	s.finishPending() // a pending bootstrap is not checkpointable state
	st := &core.MultiState{
		Now:     s.now,
		Seen:    s.seen,
		Dropped: s.dropped,
		Win:     s.win.State(),
		Edges:   core.SnapshotEdges(s.g),
		Retain:  s.retain,
		LabelTS: append([]int64(nil), s.labelTS...),
	}
	st.Dispatches = s.dispatchBase
	st.RelevanceSkips = s.skipBase
	for _, w := range s.workers {
		st.Dispatches += w.dispatches
		st.RelevanceSkips += w.relevanceSkips
	}
	// Groups ordered by lowest subscriber index: a canonical order that
	// restore can reproduce without knowing group creation history.
	ordered := append([]*group(nil), s.groups...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].subs[0] < ordered[j].subs[0] })
	rank := make(map[*group]int, len(ordered))
	for gi, g := range ordered {
		rank[g] = gi
		st.Members = append(st.Members, g.engine.SnapshotState())
	}
	for _, mb := range s.members {
		if mb != nil {
			st.MemberGroup = append(st.MemberGroup, rank[mb.group])
		}
	}
	return st
}

// RestoreState rebuilds the engine from a checkpoint. All queries must
// already be registered (same number, same order as at snapshot time)
// and no batch processed yet. The restored graph starts at epoch 0
// regardless of where the snapshotting engine's epoch counter stood.
// The snapshot's query→group mapping is authoritative: groups formed at
// registration are re-partitioned to match it, so a v4 snapshot
// restores its exact sharing layout at any shard count, and a v3
// snapshot restores private groups (re-deduplicated into shared ones
// when sharing is on and the member states are identical).
func (s *Engine) RestoreState(st *core.MultiState) error {
	if s.closed {
		return fmt.Errorf("shard: RestoreState on closed engine")
	}
	if s.started || s.seen != 0 {
		return fmt.Errorf("shard: RestoreState after processing started")
	}
	var liveIdx []int
	for i, mb := range s.members {
		if mb != nil {
			liveIdx = append(liveIdx, i)
		}
	}
	parts, states, err := core.PlanGroupPartition(st, liveIdx, func(i int) string { return s.members[i].key }, s.sharing)
	if err != nil {
		return fmt.Errorf("shard: %w", err)
	}
	if err := core.RestoreEdges(s.g, st.Edges); err != nil {
		return err
	}
	s.now = st.Now
	s.seen = st.Seen
	s.dropped = st.Dropped
	s.win.SetState(st.Win)
	s.retain = st.Retain
	s.labelTS = append([]int64(nil), st.LabelTS...)
	s.dispatchBase = st.Dispatches
	s.skipBase = st.RelevanceSkips
	// Reuse registration-formed groups whose subscriber sets already
	// match a snapshot partition (the common path, which keeps
	// AddParallel members on their ParallelRAPQ engines); re-form the
	// rest as RAPQ groups over the widest bound of the partition.
	existing := make(map[string]*group, len(s.groups))
	for _, g := range s.groups {
		existing[fmt.Sprint(g.subs)] = g
	}
	groups := make([]*group, len(parts))
	for gi, part := range parts {
		g, ok := existing[fmt.Sprint(part)]
		if !ok {
			best := s.members[part[0]]
			for _, idx := range part[1:] {
				if len(s.members[idx].bound.ByLabel) > len(best.bound.ByLabel) {
					best = s.members[idx]
				}
			}
			w := s.workers[part[0]%len(s.workers)]
			e := core.NewRAPQ(best.bound, s.spec, core.WithSink(captureSink{w}))
			e.AttachGraph(s.g)
			g = &group{engine: e, bound: best.bound, key: best.key, subs: append([]int(nil), part...), w: w}
			for _, idx := range part {
				s.members[idx].group = g
			}
		}
		if err := g.engine.RestoreState(states[gi]); err != nil {
			return fmt.Errorf("shard: restore group %d: %w", gi, err)
		}
		groups[gi] = g
	}
	s.groups = groups
	for _, w := range s.workers {
		w.groups = w.groups[:0]
	}
	for _, g := range groups {
		g.w.groups = append(g.w.groups, g)
	}
	for _, w := range s.workers {
		w.rebuild()
	}
	return nil
}

// Close stops the shard goroutines and waits for them to drain, then
// reports the sticky engine error, if any. The engine cannot be used
// afterwards. Close is idempotent.
func (s *Engine) Close() error {
	if s.closed {
		return s.err
	}
	s.drain()         // defensive: ProcessBatch drains on every exit path
	s.finishPending() // join bootstrap goroutines, release their leases
	s.closed = true
	s.app.Close() // release the writer pool (idle once drained)
	if s.started {
		for _, w := range s.workers {
			close(w.in)
		}
		s.wg.Wait()
	}
	return s.err
}

var _ core.Engine = (*Engine)(nil)
