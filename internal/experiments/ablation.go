package experiments

import (
	"fmt"
	"time"

	"streamrpq/internal/bench"
	"streamrpq/internal/core"
	"streamrpq/internal/datasets"
	"streamrpq/internal/workload"
)

// AblationRow measures one engine variant on the reference workload.
type AblationRow struct {
	Variant    string
	Query      string
	Throughput float64
	P99        time.Duration
	Mean       time.Duration
}

// AblationData quantifies the implementation's design choices, which
// the paper describes but does not ablate:
//
//   - inverted index (vertex → trees): without it every tuple visits
//     every spanning tree, the literal reading of the pseudocode's
//     "foreach Tx ∈ Δ";
//   - intra-query tree parallelism (§5.1.1's thread pool);
//   - multi-query sharing of the window content (§7 future work),
//     measured as the aggregate cost of running the whole workload in
//     one shared evaluator vs separate engines.
func AblationData(cfg Config) ([]AblationRow, []string, error) {
	// Yago is the interesting dataset for the index ablation: it is
	// sparse, so Δ holds many trees while each vertex occurs in few of
	// them — exactly the regime the inverted index targets. (On SO,
	// hub vertices appear in almost every tree and the index is moot.)
	d := datasets.Yago(datasets.DefaultYago(cfg.Scale / 2))
	spec := defaultWindow(d)
	qs := workload.MustQueries(d)
	var rows []AblationRow

	for _, name := range []string{"Q2", "Q7"} {
		q, ok := workload.ByName(qs, name)
		if !ok {
			continue
		}
		rel := bench.RelevantLabels(q.Bound.Relevant)

		seq := bench.Run(core.NewRAPQ(q.Bound, spec), d.Tuples, rel, q.Name, d.Name)
		rows = append(rows, AblationRow{Variant: "indexed (default)", Query: q.Name,
			Throughput: seq.Throughput, P99: seq.P99, Mean: seq.Mean})

		scan := bench.Run(core.NewRAPQ(q.Bound, spec, core.WithoutInvertedIndex()),
			d.Tuples, rel, q.Name, d.Name)
		rows = append(rows, AblationRow{Variant: "no inverted index", Query: q.Name,
			Throughput: scan.Throughput, P99: scan.P99, Mean: scan.Mean})

		par := bench.Run(core.NewParallelRAPQ(q.Bound, spec, 0), d.Tuples, rel, q.Name, d.Name)
		rows = append(rows, AblationRow{Variant: "tree-parallel", Query: q.Name,
			Throughput: par.Throughput, P99: par.P99, Mean: par.Mean})
	}

	// Multi-query sharing: run the full workload in one shared
	// evaluator vs one engine per query, comparing total wall time.
	var notes []string
	multi, err := core.NewMulti(spec)
	if err != nil {
		return nil, nil, err
	}
	for _, q := range qs {
		if _, err := multi.Add(q.Bound); err != nil {
			return nil, nil, err
		}
	}
	start := time.Now()
	for _, t := range d.Tuples {
		multi.Process(t)
	}
	sharedTime := time.Since(start)

	start = time.Now()
	engines := make([]*core.RAPQ, len(qs))
	for i, q := range qs {
		engines[i] = core.NewRAPQ(q.Bound, spec)
	}
	for _, t := range d.Tuples {
		for _, e := range engines {
			e.Process(t)
		}
	}
	soloTime := time.Since(start)
	notes = append(notes,
		fmt.Sprintf("multi-query sharing: %d queries over %d tuples: shared %v vs separate %v (%.2fx)",
			len(qs), len(d.Tuples), sharedTime.Round(time.Millisecond),
			soloTime.Round(time.Millisecond), float64(soloTime)/float64(sharedTime)))
	return rows, notes, nil
}

// Ablation prints the design-choice measurements.
func Ablation(cfg Config) error {
	rows, notes, err := AblationData(cfg)
	if err != nil {
		return err
	}
	header(cfg.Out, "Ablation: engine variants on Yago")
	var buf [][]string
	for _, r := range rows {
		buf = append(buf, []string{r.Query, r.Variant, eps(r.Throughput), r.P99.String(), r.Mean.String()})
	}
	table(cfg.Out, []string{"Query", "Variant", "Throughput (edges/s)", "p99", "Mean"}, buf)
	for _, n := range notes {
		fmt.Fprintln(cfg.Out, "  "+n)
	}
	return nil
}
