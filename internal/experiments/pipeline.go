package experiments

import (
	"fmt"
	"runtime"
	"time"

	"streamrpq/internal/shard"
)

// PipelineRow is one (shard count, pipeline depth) measurement of the
// sharded multi-query engine: barriered (depth 1) vs pipelined
// (depth ≥ 2) sub-batch execution over the same workload.
type PipelineRow struct {
	Shards     int     `json:"shards"`
	Depth      int     `json:"pipeline_depth"`
	Queries    int     `json:"queries"`
	Tuples     int     `json:"tuples"`
	Throughput float64 `json:"tuples_per_sec"`
	NsPerTuple float64 `json:"ns_per_tuple"`
	// SpeedupVsBarrier is throughput relative to the barriered depth-1
	// run at the same shard count — the pipelining win in isolation.
	// When a custom -pipeline grid omits depth 1 it falls back to the
	// grid's first depth at that shard count.
	SpeedupVsBarrier float64       `json:"speedup_vs_barrier"`
	Elapsed          time.Duration `json:"elapsed_ns"`
	PerShard         []ShardLoad   `json:"shard_stats"`
}

// defaultPipelineShards and defaultPipelineDepths are the sweep grid
// when the caller does not override it (rpqbench -shards / -pipeline).
var (
	defaultPipelineShards = []int{1, 2, 4, 8}
	defaultPipelineDepths = []int{1, 2, 4}
)

// PipelineData benchmarks barriered vs pipelined sub-batch execution:
// for every shard count it runs the full multi-query workload at each
// pipeline depth over one shared window (the same harness as the
// multiq sweep, so the two stay comparable). Depth 1 is the fully
// barriered coordinator (the pre-epoch engine); deeper pipelines let
// the coordinator advance the epoch-versioned graph while shards still
// fan out earlier sub-batches. Speedups need GOMAXPROCS > 1 — on one
// core the pipeline has nobody to overlap with.
func PipelineData(cfg Config) ([]PipelineRow, error) {
	w := newSweepWorkload(cfg)
	shardCounts := cfg.ShardCounts
	if len(shardCounts) == 0 {
		shardCounts = defaultPipelineShards
	}
	depths := cfg.PipelineDepths
	if len(depths) == 0 {
		depths = defaultPipelineDepths
	}

	var rows []PipelineRow
	for _, shards := range shardCounts {
		first := len(rows)
		for _, depth := range depths {
			run, err := w.measure(shard.WithShards(shards), shard.WithPipelineDepth(depth))
			if err != nil {
				return nil, err
			}
			rows = append(rows, PipelineRow{
				Shards:     shards,
				Depth:      depth,
				Queries:    len(w.queries),
				Tuples:     len(w.d.Tuples),
				Throughput: run.Throughput,
				NsPerTuple: run.NsPerTuple,
				Elapsed:    run.Elapsed,
				PerShard:   run.PerShard,
			})
		}
		barrier := rows[first].Throughput
		for _, r := range rows[first:] {
			if r.Depth == 1 {
				barrier = r.Throughput
				break
			}
		}
		for i := first; i < len(rows); i++ {
			rows[i].SpeedupVsBarrier = rows[i].Throughput / barrier
		}
	}
	return rows, nil
}

// Pipeline prints the barriered-vs-pipelined sweep.
func Pipeline(cfg Config) error {
	rows, err := PipelineData(cfg)
	if err != nil {
		return err
	}
	header(cfg.Out, fmt.Sprintf(
		"Pipelined sub-batches: shards × pipeline-depth sweep on SO (%d cores available)",
		runtime.GOMAXPROCS(0)))
	var tab [][]string
	for _, r := range rows {
		tab = append(tab, []string{
			fmt.Sprintf("%d", r.Shards),
			fmt.Sprintf("%d", r.Depth),
			fmt.Sprintf("%d", r.Queries),
			eps(r.Throughput),
			fmt.Sprintf("%.2fx", r.SpeedupVsBarrier),
		})
	}
	table(cfg.Out, []string{"shards", "depth", "queries", "tuples/s", "vs barrier"}, tab)
	return nil
}
