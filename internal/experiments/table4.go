package experiments

import (
	"fmt"
	"time"

	"streamrpq/internal/datasets"
	"streamrpq/internal/workload"
)

// Table4Row reports the feasibility and cost of one query under simple
// path semantics on one dataset.
type Table4Row struct {
	Dataset   string
	Query     string
	Feasible  bool // completed within the extend budget
	RAPQP99   time.Duration
	RSPQP99   time.Duration
	Overhead  float64 // RSPQ p99 / RAPQ p99
	Conflicts int64
}

// table4Budget bounds the RSPQ per-tuple Extend cascade; a query that
// trips it is reported as infeasible under simple path semantics (the
// NP-hard regime of §4). Feasible queries stay orders of magnitude
// below this per tuple.
const table4Budget = 1 << 14

// Table4Data runs RAPQ and RSPQ side by side on all three datasets.
func Table4Data(cfg Config) ([]Table4Row, error) {
	scale := cfg.Scale / 2
	dss := []*datasets.Dataset{
		datasets.Yago(datasets.DefaultYago(scale)),
		datasets.SO(datasets.DefaultSO(scale)),
		datasets.LDBC(datasets.DefaultLDBC(scale)),
	}
	var rows []Table4Row
	for _, d := range dss {
		spec := defaultWindow(d)
		for _, q := range workload.MustQueries(d) {
			ra := runRAPQ(d, q, spec)
			rs, feasible := runRSPQ(d, q, spec, table4Budget)
			row := Table4Row{
				Dataset:   d.Name,
				Query:     q.Name,
				Feasible:  feasible,
				RAPQP99:   ra.P99,
				RSPQP99:   rs.P99,
				Conflicts: rs.Stats.ConflictsFound,
			}
			if ra.P99 > 0 {
				row.Overhead = float64(rs.P99) / float64(ra.P99)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// Table4 reproduces Table 4: which queries can be evaluated under
// simple path semantics on each graph, and the tail-latency overhead
// of conflict detection and marking maintenance. The paper reports all
// queries feasible on Yago2s (sparse, heterogeneous → conflict-free in
// practice) with 1.8–2.1× overhead, and only the restricted queries
// feasible on the dense cyclic SO graph (1.4–5.4×).
func Table4(cfg Config) error {
	rows, err := Table4Data(cfg)
	if err != nil {
		return err
	}
	header(cfg.Out, "Table 4: RSPQ feasibility & overhead vs RAPQ (per query)")
	var buf [][]string
	for _, r := range rows {
		status := "ok"
		overhead := fmt.Sprintf("%.1fx", r.Overhead)
		if !r.Feasible {
			status = "infeasible"
			overhead = "-"
		}
		buf = append(buf, []string{
			r.Dataset, r.Query, status, r.RAPQP99.String(), r.RSPQP99.String(),
			overhead, fmt.Sprint(r.Conflicts),
		})
	}
	table(cfg.Out, []string{"Graph", "Query", "Simple-path", "RAPQ p99", "RSPQ p99", "Overhead", "Conflicts"}, buf)

	// Summary in the shape of the paper's Table 4.
	header(cfg.Out, "Table 4 (summary): successful queries & overhead range")
	type aggr struct {
		ok, total    int
		minOv, maxOv float64
		names        string
	}
	byDS := map[string]*aggr{}
	var order []string
	for _, r := range rows {
		a := byDS[r.Dataset]
		if a == nil {
			a = &aggr{minOv: 1e18}
			byDS[r.Dataset] = a
			order = append(order, r.Dataset)
		}
		a.total++
		if r.Feasible {
			a.ok++
			if a.names != "" {
				a.names += ","
			}
			a.names += r.Query
			if r.Overhead < a.minOv {
				a.minOv = r.Overhead
			}
			if r.Overhead > a.maxOv {
				a.maxOv = r.Overhead
			}
		}
	}
	var buf2 [][]string
	for _, ds := range order {
		a := byDS[ds]
		rangeStr := "-"
		if a.ok > 0 {
			rangeStr = fmt.Sprintf("%.1fx - %.1fx", a.minOv, a.maxOv)
		}
		succ := a.names
		if a.ok == a.total {
			succ = "All"
		}
		buf2 = append(buf2, []string{ds, succ, rangeStr})
	}
	table(cfg.Out, []string{"Graph", "Successful queries", "Latency overhead"}, buf2)
	return nil
}
