package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
)

// JSONReport is the machine-readable envelope of an experiment run,
// written by `rpqbench -json` so benchmark trajectories can be recorded
// as BENCH_*.json files and compared across commits.
type JSONReport struct {
	Experiment string `json:"experiment"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Scale      int    `json:"scale"`
	Seed       int64  `json:"seed"`
	Rows       any    `json:"rows"`
}

// JSONCapable reports whether the experiment has a structured-data
// driver (only those can be emitted with -json).
func JSONCapable(id string) bool {
	switch id {
	case "multiq", "multiq-shared", "pipeline", "churn", "writers":
		return true
	}
	return false
}

// WriteJSON runs the experiment's data driver and writes the report to
// w as indented JSON.
func WriteJSON(cfg Config, id string, w io.Writer) error {
	report := JSONReport{
		Experiment: id,
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Scale:      cfg.Scale,
		Seed:       cfg.Seed,
	}
	switch id {
	case "multiq":
		rows, err := MultiQData(cfg)
		if err != nil {
			return err
		}
		report.Rows = rows
	case "multiq-shared":
		rows, err := MultiQSharedData(cfg)
		if err != nil {
			return err
		}
		report.Rows = rows
	case "pipeline":
		rows, err := PipelineData(cfg)
		if err != nil {
			return err
		}
		report.Rows = rows
	case "churn":
		rows, err := ChurnData(cfg)
		if err != nil {
			return err
		}
		report.Rows = rows
	case "writers":
		rows, err := WritersData(cfg)
		if err != nil {
			return err
		}
		report.Rows = rows
	default:
		return fmt.Errorf("experiments: %q has no JSON driver (supported: multiq, multiq-shared, pipeline, churn, writers)", id)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}
