package experiments

import (
	"fmt"
	"runtime"
	"time"

	"streamrpq/internal/datasets"
	"streamrpq/internal/shard"
	"streamrpq/internal/window"
	"streamrpq/internal/workload"
)

// ChurnRow is one measurement of the sharded multi-query engine under
// delete/re-insert churn: the full doubled query workload at one
// (shard count, deletion ratio) point. It is the cost profile of
// support-counting canonical deletions — every explicit deletion cuts
// its own singleton sub-batch and runs the decremental delete pass.
type ChurnRow struct {
	Shards        int           `json:"shards"`
	DelRatio      float64       `json:"del_ratio"`
	Queries       int           `json:"queries"`
	Tuples        int           `json:"tuples"`
	Throughput    float64       `json:"tuples_per_sec"`
	NsPerTuple    float64       `json:"ns_per_tuple"`
	Results       int64         `json:"results"`
	Invalidations int64         `json:"invalidations"`
	Slowdown      float64       `json:"slowdown"` // vs the same shard count at ratio 0
	Elapsed       time.Duration `json:"elapsed_ns"`
}

// churnRatios are the sweep points; 0 is the append-only reference the
// per-shard slowdown is computed against.
var churnRatios = []float64{0, 0.15, 0.30}

// ChurnData measures delete/re-insert churn on the sharded engine: the
// SO dataset with §5.4-style explicit deletions (previously consumed
// edges re-inserted as negative tuples) at increasing deletion ratios,
// for each shard count. Deletions are the expensive path twice over —
// each one is a singleton sub-batch (a pipeline hazard) AND triggers
// the support-counting delete pass that makes the invalidation stream
// canonical — so this sweep is the regression watchpoint for the
// deterministic-deletions overhead.
func ChurnData(cfg Config) ([]ChurnRow, error) {
	base := datasets.SO(datasets.DefaultSO(cfg.Scale / 2))
	qs := workload.MustQueries(base)
	queries := append(append([]workload.Query{}, qs...), qs...)
	spec := defaultWindow(base)
	shardCounts := cfg.ShardCounts
	if len(shardCounts) == 0 {
		shardCounts = []int{1, 4}
	}
	var rows []ChurnRow
	for _, shards := range shardCounts {
		var baseThroughput float64
		for _, ratio := range churnRatios {
			d := base
			if ratio > 0 {
				d = base.WithDeletions(ratio, cfg.Seed+int64(ratio*1000))
			}
			run, err := measureChurn(d, spec, queries, shards)
			if err != nil {
				return nil, err
			}
			if ratio == 0 {
				baseThroughput = run.Throughput
			}
			run.DelRatio = ratio
			if baseThroughput > 0 {
				run.Slowdown = baseThroughput / run.Throughput
			}
			rows = append(rows, run)
		}
	}
	return rows, nil
}

// measureChurn runs one (dataset, shard count) configuration through
// the 256-tuple batch loop of the shard sweeps.
func measureChurn(d *datasets.Dataset, spec window.Spec, queries []workload.Query, shards int) (ChurnRow, error) {
	eng, err := shard.New(spec, shard.WithShards(shards))
	if err != nil {
		return ChurnRow{}, err
	}
	defer eng.Close()
	for _, q := range queries {
		if _, err := eng.Add(q.Bound, nil); err != nil {
			return ChurnRow{}, err
		}
	}
	start := time.Now()
	const batch = 256
	for i := 0; i < len(d.Tuples); i += batch {
		end := min(i+batch, len(d.Tuples))
		if _, err := eng.ProcessBatch(d.Tuples[i:end]); err != nil {
			return ChurnRow{}, err
		}
	}
	elapsed := time.Since(start)
	st := eng.Stats()
	return ChurnRow{
		Shards:        shards,
		Queries:       len(queries),
		Tuples:        len(d.Tuples),
		Throughput:    float64(len(d.Tuples)) / elapsed.Seconds(),
		NsPerTuple:    float64(elapsed.Nanoseconds()) / float64(len(d.Tuples)),
		Results:       st.Results,
		Invalidations: st.Invalidations,
		Elapsed:       elapsed,
	}, nil
}

// Churn prints the delete/re-insert churn sweep.
func Churn(cfg Config) error {
	rows, err := ChurnData(cfg)
	if err != nil {
		return err
	}
	header(cfg.Out, fmt.Sprintf(
		"Delete/re-insert churn on the sharded engine (%d cores available)",
		runtime.GOMAXPROCS(0)))
	var tab [][]string
	for _, r := range rows {
		tab = append(tab, []string{
			fmt.Sprintf("%d", r.Shards),
			fmt.Sprintf("%.0f%%", r.DelRatio*100),
			eps(r.Throughput),
			fmt.Sprintf("%.2fx", r.Slowdown),
			fmt.Sprintf("%d", r.Results),
			fmt.Sprintf("%d", r.Invalidations),
		})
	}
	table(cfg.Out, []string{"shards", "del", "tuples/s", "slowdown", "results", "invalidations"}, tab)
	return nil
}
