package experiments

import (
	"fmt"

	"streamrpq/internal/datasets"
	"streamrpq/internal/workload"
)

// Fig5Row is one bar pair of Figure 5: the Δ tree-index size of a query
// on the SO graph.
type Fig5Row struct {
	Query string
	Trees int
	Nodes int
}

// Fig5Data runs the Figure 5 measurement.
func Fig5Data(cfg Config) ([]Fig5Row, error) {
	d := datasets.SO(datasets.DefaultSO(cfg.Scale))
	spec := defaultWindow(d)
	var rows []Fig5Row
	for _, q := range workload.MustQueries(d) {
		res := runRAPQ(d, q, spec)
		rows = append(rows, Fig5Row{Query: q.Name, Trees: res.Trees, Nodes: res.Nodes})
	}
	return rows, nil
}

// Fig5 reproduces Figure 5: the number of spanning trees and the total
// number of nodes in the Δ index per query on the SO graph. The paper
// observes a negative correlation between index size and throughput:
// Q3 and Q6 (multiple Kleene stars) and Q4/Q9 (closure over the whole
// 3-label alphabet) build the largest indexes.
func Fig5(cfg Config) error {
	rows, err := Fig5Data(cfg)
	if err != nil {
		return err
	}
	header(cfg.Out, "Figure 5: Δ tree-index size per query on SO")
	var buf [][]string
	for _, r := range rows {
		buf = append(buf, []string{r.Query, fmt.Sprint(r.Trees), fmt.Sprint(r.Nodes)})
	}
	table(cfg.Out, []string{"Query", "# trees", "# nodes"}, buf)
	return nil
}
