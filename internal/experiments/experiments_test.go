package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// tinyConfig keeps experiment smoke tests fast.
func tinyConfig(buf *bytes.Buffer) Config {
	return Config{Scale: 2000, Out: buf, Seed: 1}
}

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) != 16 {
		t.Fatalf("registry has %d experiments, want 16", len(all))
	}
	ids := map[string]bool{}
	for _, r := range all {
		if r.ID == "" || r.Title == "" || r.Run == nil {
			t.Errorf("incomplete runner %+v", r)
		}
		if ids[r.ID] {
			t.Errorf("duplicate id %s", r.ID)
		}
		ids[r.ID] = true
	}
	if _, ok := ByID("fig4"); !ok {
		t.Error("fig4 not found")
	}
	if _, ok := ByID("nope"); ok {
		t.Error("unknown id found")
	}
}

// TestAllExperimentsRun smoke-tests every driver end to end at tiny
// scale and sanity-checks the printed output.
func TestAllExperimentsRun(t *testing.T) {
	for _, r := range All() {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := r.Run(tinyConfig(&buf)); err != nil {
				t.Fatalf("%s: %v", r.ID, err)
			}
			out := buf.String()
			if len(out) < 50 {
				t.Fatalf("%s produced almost no output:\n%s", r.ID, out)
			}
		})
	}
}

func TestFig4Shapes(t *testing.T) {
	var buf bytes.Buffer
	rows, err := Fig4Data(tinyConfig(&buf))
	if err != nil {
		t.Fatal(err)
	}
	// All three datasets and every applicable query must appear:
	// 11 (Yago) + 7 (LDBC) + 11 (SO) = 29 rows.
	if len(rows) != 29 {
		t.Fatalf("Fig4 produced %d rows, want 29", len(rows))
	}
	byDS := map[string][]Fig4Row{}
	for _, r := range rows {
		byDS[r.Dataset] = append(byDS[r.Dataset], r)
		if r.Result.Measured == 0 {
			t.Errorf("%s/%s: no measured tuples", r.Dataset, r.Query)
		}
		if r.Result.Throughput <= 0 {
			t.Errorf("%s/%s: nonpositive throughput", r.Dataset, r.Query)
		}
	}
	// Q11 (the only non-recursive query) must be fastest or near-
	// fastest on SO: check it beats the multi-star Q3 (paper §5.2).
	so := byDS["SO"]
	var q3, q11 float64
	for _, r := range so {
		switch r.Query {
		case "Q3":
			q3 = r.Result.Throughput
		case "Q11":
			q11 = r.Result.Throughput
		}
	}
	if q11 <= q3 {
		t.Errorf("SO: Q11 throughput (%.0f) should exceed Q3 (%.0f)", q11, q3)
	}
}

func TestFig5Shapes(t *testing.T) {
	var buf bytes.Buffer
	rows, err := Fig5Data(tinyConfig(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 11 {
		t.Fatalf("Fig5 rows = %d, want 11", len(rows))
	}
	// Q4/Q9 (closure over the full alphabet) must build a larger index
	// than the non-recursive Q11.
	sizes := map[string]int{}
	for _, r := range rows {
		sizes[r.Query] = r.Nodes
	}
	if sizes["Q4"] <= sizes["Q11"] {
		t.Errorf("Q4 nodes (%d) should exceed Q11 nodes (%d)", sizes["Q4"], sizes["Q11"])
	}
}

func TestFig6Shapes(t *testing.T) {
	var buf bytes.Buffer
	bySize, bySlide, err := Fig6Data(tinyConfig(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(bySize) == 0 || len(bySlide) == 0 {
		t.Fatal("empty sweeps")
	}
	// Window sizes must strictly increase across the sweep for a fixed
	// query.
	var last int64 = -1
	for _, r := range bySize {
		if r.Query != bySize[0].Query {
			continue
		}
		if r.WindowEdges <= last {
			t.Errorf("window sizes not increasing: %d after %d", r.WindowEdges, last)
		}
		last = r.WindowEdges
	}
}

func TestFig7Shapes(t *testing.T) {
	var buf bytes.Buffer
	rows, err := Fig7Data(tinyConfig(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 100 {
		t.Fatalf("Fig7 rows = %d, want 100", len(rows))
	}
	for _, r := range rows {
		if r.States <= 0 {
			t.Errorf("%s: nonpositive k", r.Query)
		}
		// The paper's observation: no exponential blowup. Allow a
		// generous linear envelope.
		if r.States > 4*r.Size+4 {
			t.Errorf("%s: k=%d explodes past 4·|Q|+4 (|Q|=%d)", r.Query, r.States, r.Size)
		}
	}
}

func TestTable4Shapes(t *testing.T) {
	var buf bytes.Buffer
	rows, err := Table4Data(tinyConfig(&buf))
	if err != nil {
		t.Fatal(err)
	}
	feasibleByDS := map[string]int{}
	// Q1 (a*) and Q4 ((a|b|c)*) have the suffix-containment property,
	// so they are conflict-free — hence feasible — on every graph; Q11
	// (fixed-length concatenation) is feasible because its cascades
	// are depth-bounded. Note Q9 ((a|b|c)+) is NOT in this set: ε is
	// in the suffix language of its final state but not of its start
	// state, so cycles back to a tree root conflict — matching the
	// paper's Table 4, which omits Q9 from the SO success list.
	restricted := map[string]bool{"Q1": true, "Q4": true, "Q11": true}
	for _, r := range rows {
		feasibleByDS[r.Dataset] += boolToInt(r.Feasible)
		if restricted[r.Query] && !r.Feasible {
			t.Errorf("%s/%s: restricted query reported infeasible", r.Dataset, r.Query)
		}
	}
	// The paper's qualitative claim (§5.5): sparse heterogeneous graphs
	// (Yago) are far friendlier to simple-path semantics than the dense
	// cyclic SO graph. Our synthetic Yago has heavier hubs than the real
	// one, so Q9 may conflict there too; we assert the ordering and a
	// near-complete Yago success set rather than the exact 11/11.
	if feasibleByDS["Yago"] < 10 {
		t.Errorf("Yago feasible queries = %d, want ≥ 10", feasibleByDS["Yago"])
	}
	if feasibleByDS["Yago"] < feasibleByDS["SO"] {
		t.Errorf("feasible(Yago)=%d < feasible(SO)=%d — ordering violated",
			feasibleByDS["Yago"], feasibleByDS["SO"])
	}
	if feasibleByDS["LDBC"] != 7 {
		t.Errorf("LDBC feasible queries = %d, want all 7", feasibleByDS["LDBC"])
	}
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

func TestFig11Shapes(t *testing.T) {
	var buf bytes.Buffer
	rows, err := Fig11Data(tinyConfig(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 11 {
		t.Fatalf("Fig11 rows = %d, want 11", len(rows))
	}
	faster := 0
	for _, r := range rows {
		if r.SpeedupTput > 1 {
			faster++
		}
	}
	// RAPQ must beat the rescan baseline on the overwhelming majority
	// of queries (the paper reports consistent wins on all 11).
	if faster < 9 {
		t.Errorf("RAPQ faster on only %d/11 queries", faster)
	}
}

func TestTable1Output(t *testing.T) {
	var buf bytes.Buffer
	if err := Table1(tinyConfig(&buf)); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"O(n·k²)", "O(n²·k)", "Arbitrary", "Simple"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("Table 1 output missing %q", want)
		}
	}
}
