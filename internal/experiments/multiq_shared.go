package experiments

import (
	"fmt"
	"runtime"
	"time"

	"streamrpq/internal/shard"
)

// MultiQSharedRow is one (sharing, shard-count) cell of the multi-query
// sharing grid: the doubled SO workload contains every query twice, so
// with sharing on the engine collapses the duplicate automata into half
// as many Δ-index groups while still serving every registered query's
// result stream.
type MultiQSharedRow struct {
	Sharing        bool          `json:"sharing"`
	Shards         int           `json:"shards"`
	Queries        int           `json:"queries"`
	Groups         int           `json:"groups"`
	SharedGroups   int           `json:"shared_groups"`
	Tuples         int           `json:"tuples"`
	Throughput     float64       `json:"tuples_per_sec"`
	NsPerTuple     float64       `json:"ns_per_tuple"`
	Elapsed        time.Duration `json:"elapsed_ns"`
	InsertCalls    int64         `json:"insert_calls"`
	Dispatches     int64         `json:"dispatches"`
	RelevanceSkips int64         `json:"relevance_skips"`
	Results        int64         `json:"results"`
	Invalidations  int64         `json:"invalidations"`
	Trees          int           `json:"trees"`
	PerShard       []ShardLoad   `json:"shard_stats"`
}

// MultiQSharedData measures multi-query sharing (canonical automaton
// dedup + label-relevance scheduling) against the all-private layout on
// the same workload as the multiq sweep: for each shard count, one run
// with sharing off and one with sharing on. Sharing must not change one
// observable byte, so the driver cross-checks that the delivered result
// and invalidation counts agree between the two arms of every shard
// count; what changes is the index maintenance work (insert_calls,
// trees) and the dispatch volume the relevance filter admits.
func MultiQSharedData(cfg Config) ([]MultiQSharedRow, error) {
	w := newSweepWorkload(cfg)
	shardCounts := cfg.ShardCounts
	if len(shardCounts) == 0 {
		shardCounts = []int{1, 2, 8}
	}
	var rows []MultiQSharedRow
	for _, shards := range shardCounts {
		var perArm [2]MultiQSharedRow
		for ai, sharing := range []bool{false, true} {
			run, err := w.measure(shard.WithShards(shards), shard.WithSharing(sharing))
			if err != nil {
				return nil, err
			}
			st := run.Stats
			perArm[ai] = MultiQSharedRow{
				Sharing:        sharing,
				Shards:         shards,
				Queries:        len(w.queries),
				Groups:         st.Groups,
				SharedGroups:   st.SharedGroups,
				Tuples:         len(w.d.Tuples),
				Throughput:     run.Throughput,
				NsPerTuple:     run.NsPerTuple,
				Elapsed:        run.Elapsed,
				InsertCalls:    st.InsertCalls,
				Dispatches:     st.Dispatches,
				RelevanceSkips: st.RelevanceSkips,
				Results:        st.Results,
				Invalidations:  st.Invalidations,
				Trees:          st.Trees,
				PerShard:       run.PerShard,
			}
		}
		if perArm[0].Results != perArm[1].Results || perArm[0].Invalidations != perArm[1].Invalidations {
			return nil, fmt.Errorf("experiments: multiq-shared: sharing changed the observable stream at %d shards: private %d/%d vs shared %d/%d results/invalidations",
				shards, perArm[0].Results, perArm[0].Invalidations, perArm[1].Results, perArm[1].Invalidations)
		}
		rows = append(rows, perArm[0], perArm[1])
	}
	return rows, nil
}

// MultiQShared prints the sharing-vs-private grid.
func MultiQShared(cfg Config) error {
	rows, err := MultiQSharedData(cfg)
	if err != nil {
		return err
	}
	header(cfg.Out, fmt.Sprintf(
		"Multi-query sharing: canonical dedup + relevance scheduling on SO (%d cores available)",
		runtime.GOMAXPROCS(0)))
	var tab [][]string
	for _, r := range rows {
		mode := "private"
		if r.Sharing {
			mode = "shared"
		}
		tab = append(tab, []string{
			mode,
			fmt.Sprintf("%d", r.Shards),
			fmt.Sprintf("%d", r.Queries),
			fmt.Sprintf("%d (%d shared)", r.Groups, r.SharedGroups),
			eps(r.Throughput),
			fmt.Sprintf("%d", r.InsertCalls),
			fmt.Sprintf("%d", r.Dispatches),
			fmt.Sprintf("%d", r.RelevanceSkips),
			fmt.Sprintf("%d", r.Results),
		})
	}
	table(cfg.Out,
		[]string{"mode", "shards", "queries", "groups", "tuples/s", "insert-calls", "dispatches", "relevance-skips", "results"},
		tab)
	return nil
}
