package experiments

import "fmt"

// Table1 prints the amortized complexity table of the proposed
// algorithms (Table 1). The bounds are analytical; their empirical
// counterparts are the linear latency growth with |W| in Figure 6 and
// the deletion overhead in Figure 10.
func Table1(cfg Config) error {
	header(cfg.Out, "Table 1: amortized time complexities (n vertices in W, k automaton states)")
	table(cfg.Out,
		[]string{"Path semantics", "Append-only", "Explicit deletions"},
		[][]string{
			{"Arbitrary (§3)", "O(n·k²)", "O(n²·k)"},
			{"Simple (§4, conflict-free)", "O(n·k²)", "O(n²·k)"},
		})
	fmt.Fprintln(cfg.Out, "  (Simple-path bounds hold in the absence of conflicts; the general problem is NP-hard.)")
	return nil
}
