package experiments

import (
	"fmt"
	"time"

	"streamrpq/internal/baseline"
	"streamrpq/internal/bench"
	"streamrpq/internal/datasets"
	"streamrpq/internal/workload"
)

// Fig11Row is one bar pair of Figure 11: relative throughput and tail
// latency of Algorithm RAPQ vs the per-tuple rescan baseline (the
// paper's Virtuoso emulation).
type Fig11Row struct {
	Query            string
	RAPQThroughput   float64
	RescanThroughput float64
	RAPQP99          time.Duration
	RescanP99        time.Duration
	SpeedupTput      float64
	SpeedupP99       float64
}

// Fig11Data compares the engines on Yago. The rescan baseline pays a
// full batch evaluation per tuple, so the stream is kept short — the
// paper likewise measures the Virtuoso emulation at a feasible scale.
func Fig11Data(cfg Config) ([]Fig11Row, error) {
	scale := cfg.Scale / 10
	if scale < 1000 {
		scale = 1000
	}
	d := datasets.Yago(datasets.DefaultYago(scale))
	spec := defaultWindow(d)
	var rows []Fig11Row
	for _, q := range workload.MustQueries(d) {
		inc := runRAPQ(d, q, spec)
		rb := baseline.NewRescan(q.Bound, spec)
		res := bench.Run(rb, d.Tuples, bench.RelevantLabels(q.Bound.Relevant), q.Name, d.Name)
		row := Fig11Row{
			Query:            q.Name,
			RAPQThroughput:   inc.Throughput,
			RescanThroughput: res.Throughput,
			RAPQP99:          inc.P99,
			RescanP99:        res.P99,
		}
		if res.Throughput > 0 {
			row.SpeedupTput = inc.Throughput / res.Throughput
		}
		if inc.P99 > 0 {
			row.SpeedupP99 = float64(res.P99) / float64(inc.P99)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig11 reproduces Figure 11: the speedup of the incremental engine
// over a persistent-query emulation on a static engine, which must
// re-evaluate the query over the whole window for every tuple. The
// paper reports up to three orders of magnitude; the gap widens with
// window size since the rescan cost is linear in the window while RAPQ
// only explores the unexplored part of the snapshot.
func Fig11(cfg Config) error {
	rows, err := Fig11Data(cfg)
	if err != nil {
		return err
	}
	header(cfg.Out, "Figure 11: RAPQ speedup over per-tuple rescan baseline (Yago)")
	var buf [][]string
	for _, r := range rows {
		buf = append(buf, []string{
			r.Query,
			eps(r.RAPQThroughput), eps(r.RescanThroughput), fmt.Sprintf("%.0fx", r.SpeedupTput),
			r.RAPQP99.String(), r.RescanP99.String(), fmt.Sprintf("%.0fx", r.SpeedupP99),
		})
	}
	table(cfg.Out, []string{"Query", "RAPQ eps", "Rescan eps", "Tput speedup", "RAPQ p99", "Rescan p99", "p99 speedup"}, buf)
	return nil
}
