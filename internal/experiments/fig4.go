package experiments

import (
	"fmt"

	"streamrpq/internal/bench"
	"streamrpq/internal/datasets"
	"streamrpq/internal/workload"
)

// Fig4Row is one bar pair of Figure 4: throughput and tail latency of
// Algorithm RAPQ for one query on one dataset.
type Fig4Row struct {
	Dataset string
	Query   string
	Result  bench.Result
}

// Fig4Data runs the Figure 4 measurement and returns the rows.
func Fig4Data(cfg Config) ([]Fig4Row, error) {
	var rows []Fig4Row
	for _, d := range fig4Datasets(cfg) {
		spec := defaultWindow(d)
		for _, q := range workload.MustQueries(d) {
			rows = append(rows, Fig4Row{Dataset: d.Name, Query: q.Name, Result: runRAPQ(d, q, spec)})
		}
	}
	return rows, nil
}

func fig4Datasets(cfg Config) []*datasets.Dataset {
	return []*datasets.Dataset{
		datasets.Yago(datasets.DefaultYago(cfg.Scale)),
		datasets.LDBC(datasets.DefaultLDBC(cfg.Scale)),
		datasets.SO(datasets.DefaultSO(cfg.Scale)),
	}
}

// Fig4 reproduces Figure 4 (a,b,c): throughput and tail latency of
// Algorithm RAPQ for all workload queries on Yago, LDBC and SO.
// Expected shapes (paper §5.2): SO is the slowest dataset; Q11 (the
// only non-recursive query) is the fastest everywhere; multi-star
// queries (Q3, Q6) and full-alphabet closures (Q4, Q9) are the slowest
// on SO.
func Fig4(cfg Config) error {
	rows, err := Fig4Data(cfg)
	if err != nil {
		return err
	}
	last := ""
	var buf [][]string
	flush := func() {
		if len(buf) > 0 {
			header(cfg.Out, fmt.Sprintf("Figure 4: RAPQ throughput & tail latency on %s", last))
			table(cfg.Out, []string{"Query", "Throughput (edges/s)", "Tail latency p99", "Mean", "Results", "Trees", "Nodes"}, buf)
			buf = nil
		}
	}
	for _, r := range rows {
		if r.Dataset != last {
			flush()
			last = r.Dataset
		}
		buf = append(buf, []string{
			r.Query,
			eps(r.Result.Throughput),
			r.Result.P99.String(),
			r.Result.Mean.String(),
			fmt.Sprint(r.Result.Results),
			fmt.Sprint(r.Result.Trees),
			fmt.Sprint(r.Result.Nodes),
		})
	}
	flush()
	return nil
}
