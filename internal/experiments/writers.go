package experiments

import (
	"fmt"
	"runtime"
	"time"

	"streamrpq/internal/shard"
)

// WritersRow is one (shard count, writer count) measurement of the
// sharded multi-query engine: sequential (writers 1) vs stripe-parallel
// (writers ≥ 2) epoch construction over the same workload.
type WritersRow struct {
	Shards     int     `json:"shards"`
	Writers    int     `json:"writers"`
	Depth      int     `json:"pipeline_depth"`
	Queries    int     `json:"queries"`
	Tuples     int     `json:"tuples"`
	Throughput float64 `json:"tuples_per_sec"`
	NsPerTuple float64 `json:"ns_per_tuple"`
	// SpeedupVsSingleWriter is throughput relative to the writers-1 run
	// at the same shard count — the coordinator-apply win in isolation.
	// When a custom -writers grid omits 1 it falls back to the grid's
	// first writer count at that shard count.
	SpeedupVsSingleWriter float64       `json:"speedup_vs_single_writer"`
	Elapsed               time.Duration `json:"elapsed_ns"`
	PerShard              []ShardLoad   `json:"shard_stats"`
}

// defaultWriterCounts is the sweep grid when the caller does not
// override it (rpqbench -writers).
var defaultWriterCounts = []int{1, 2, 4, 8}

// WritersData benchmarks sequential vs stripe-parallel epoch
// construction: for every shard count it runs the full multi-query
// workload at each writer count over one shared window (the same
// harness as the multiq and pipeline sweeps, so the three stay
// comparable). Writers 1 applies every sub-batch's mutations inline on
// the coordinator (the pre-multi-writer engine, byte-for-byte);
// writers ≥ 2 partitions each sub-batch's half-mutations by vertex
// stripe and builds the new epoch with that many goroutines while
// shards still fan out the previous one. As with the pipeline sweep,
// speedups need GOMAXPROCS > 1 — on one core extra writers only add
// handoff.
func WritersData(cfg Config) ([]WritersRow, error) {
	w := newSweepWorkload(cfg)
	shardCounts := cfg.ShardCounts
	if len(shardCounts) == 0 {
		shardCounts = []int{1, 4, 8}
	}
	writerCounts := cfg.WriterCounts
	if len(writerCounts) == 0 {
		writerCounts = defaultWriterCounts
	}
	const depth = 2 // the engine default: construction overlaps fan-out

	var rows []WritersRow
	for _, shards := range shardCounts {
		first := len(rows)
		for _, writers := range writerCounts {
			run, err := w.measure(shard.WithShards(shards), shard.WithPipelineDepth(depth), shard.WithWriters(writers))
			if err != nil {
				return nil, err
			}
			rows = append(rows, WritersRow{
				Shards:     shards,
				Writers:    writers,
				Depth:      depth,
				Queries:    len(w.queries),
				Tuples:     len(w.d.Tuples),
				Throughput: run.Throughput,
				NsPerTuple: run.NsPerTuple,
				Elapsed:    run.Elapsed,
				PerShard:   run.PerShard,
			})
		}
		single := rows[first].Throughput
		for _, r := range rows[first:] {
			if r.Writers == 1 {
				single = r.Throughput
				break
			}
		}
		for i := first; i < len(rows); i++ {
			rows[i].SpeedupVsSingleWriter = rows[i].Throughput / single
		}
	}
	return rows, nil
}

// Writers prints the epoch-construction writer sweep.
func Writers(cfg Config) error {
	rows, err := WritersData(cfg)
	if err != nil {
		return err
	}
	header(cfg.Out, fmt.Sprintf(
		"Multi-writer epoch construction: shards × writers sweep on SO (%d cores available)",
		runtime.GOMAXPROCS(0)))
	var tab [][]string
	for _, r := range rows {
		tab = append(tab, []string{
			fmt.Sprintf("%d", r.Shards),
			fmt.Sprintf("%d", r.Writers),
			fmt.Sprintf("%d", r.Queries),
			eps(r.Throughput),
			fmt.Sprintf("%.2fx", r.SpeedupVsSingleWriter),
		})
	}
	table(cfg.Out, []string{"shards", "writers", "queries", "tuples/s", "vs 1 writer"}, tab)
	return nil
}
