package experiments

import (
	"fmt"
	"runtime"
	"time"

	"streamrpq/internal/core"
	"streamrpq/internal/datasets"
	"streamrpq/internal/shard"
	"streamrpq/internal/window"
	"streamrpq/internal/workload"
)

// MultiQRow is one shard-count measurement of the sharded multi-query
// engine.
type MultiQRow struct {
	Shards     int           `json:"shards"`
	Queries    int           `json:"queries"`
	Tuples     int           `json:"tuples"`
	Throughput float64       `json:"tuples_per_sec"` // whole stream
	NsPerTuple float64       `json:"ns_per_tuple"`
	Speedup    float64       `json:"speedup"` // vs the 1-shard run (or the grid's first entry if 1 is absent)
	Elapsed    time.Duration `json:"elapsed_ns"`
	Balance    string        `json:"-"`           // per-shard share of insert calls (text table)
	PerShard   []ShardLoad   `json:"shard_stats"` // per-shard load counters
}

// ShardLoad is the per-shard slice of a MultiQRow.
type ShardLoad struct {
	Shard          int   `json:"shard"`
	InsertCalls    int64 `json:"insert_calls"`
	Results        int64 `json:"results"`
	Trees          int   `json:"trees"`
	Nodes          int   `json:"nodes"`
	Groups         int   `json:"groups"`
	SharedGroups   int   `json:"shared_groups"`
	Dispatches     int64 `json:"dispatches"`
	RelevanceSkips int64 `json:"relevance_skips"`
}

// sweepWorkload is the shared measurement harness of the shard-engine
// sweeps (multiq, pipeline): the SO dataset, the doubled query
// workload (so every shard owns work at 8 shards) and the 256-tuple
// batch loop. Keeping one harness keeps the two sweeps' numbers
// comparable.
type sweepWorkload struct {
	d       *datasets.Dataset
	spec    window.Spec
	queries []workload.Query
}

func newSweepWorkload(cfg Config) sweepWorkload {
	d := datasets.SO(datasets.DefaultSO(cfg.Scale / 2))
	qs := workload.MustQueries(d)
	return sweepWorkload{
		d:       d,
		spec:    defaultWindow(d),
		queries: append(append([]workload.Query{}, qs...), qs...),
	}
}

// sweepRun is one measured engine configuration of a sweep.
type sweepRun struct {
	Elapsed    time.Duration
	Throughput float64
	NsPerTuple float64
	Balance    string
	PerShard   []ShardLoad
	Stats      core.Stats // engine-aggregate counters after the run
}

// measure runs the whole workload through one engine configuration.
func (w sweepWorkload) measure(opts ...shard.Option) (sweepRun, error) {
	eng, err := shard.New(w.spec, opts...)
	if err != nil {
		return sweepRun{}, err
	}
	defer eng.Close()
	for _, q := range w.queries {
		if _, err := eng.Add(q.Bound, nil); err != nil {
			return sweepRun{}, err
		}
	}
	start := time.Now()
	const batch = 256
	for i := 0; i < len(w.d.Tuples); i += batch {
		end := min(i+batch, len(w.d.Tuples))
		if _, err := eng.ProcessBatch(w.d.Tuples[i:end]); err != nil {
			return sweepRun{}, err
		}
	}
	elapsed := time.Since(start)
	return sweepRun{
		Elapsed:    elapsed,
		Throughput: float64(len(w.d.Tuples)) / elapsed.Seconds(),
		NsPerTuple: float64(elapsed.Nanoseconds()) / float64(len(w.d.Tuples)),
		Balance:    shardBalance(eng),
		PerShard:   shardLoads(eng),
		Stats:      eng.Stats(),
	}, nil
}

// MultiQData measures the sharded concurrent multi-query engine
// (internal/shard) running the full workload concurrently over one
// shared window, at increasing shard counts. This extends the paper's
// §7 multi-query direction with the inter-query parallelism the
// single-threaded coordinator cannot exploit; speedups above 1 require
// GOMAXPROCS > 1. Speedup is relative to the 1-shard run when the
// grid contains one, else to the grid's first entry.
func MultiQData(cfg Config) ([]MultiQRow, error) {
	w := newSweepWorkload(cfg)
	shardCounts := cfg.ShardCounts
	if len(shardCounts) == 0 {
		shardCounts = []int{1, 2, 4, 8}
	}
	var rows []MultiQRow
	for _, shards := range shardCounts {
		run, err := w.measure(shard.WithShards(shards))
		if err != nil {
			return nil, err
		}
		rows = append(rows, MultiQRow{
			Shards:     shards,
			Queries:    len(w.queries),
			Tuples:     len(w.d.Tuples),
			Throughput: run.Throughput,
			NsPerTuple: run.NsPerTuple,
			Elapsed:    run.Elapsed,
			Balance:    run.Balance,
			PerShard:   run.PerShard,
		})
	}
	base := rows[0].Throughput
	for _, r := range rows {
		if r.Shards == 1 {
			base = r.Throughput
			break
		}
	}
	for i := range rows {
		rows[i].Speedup = rows[i].Throughput / base
	}
	return rows, nil
}

// shardBalance renders each shard's share of the total insert calls,
// the load-balance view of the round-robin query partitioning.
func shardBalance(eng *shard.Engine) string {
	ss := eng.ShardStats()
	var total int64
	for _, st := range ss {
		total += st.InsertCalls
	}
	if total == 0 {
		return "-"
	}
	out := ""
	for i, st := range ss {
		if i > 0 {
			out += "/"
		}
		out += fmt.Sprintf("%.0f%%", 100*float64(st.InsertCalls)/float64(total))
	}
	return out
}

// shardLoads snapshots each shard's load counters for the JSON report.
func shardLoads(eng *shard.Engine) []ShardLoad {
	ss := eng.ShardStats()
	out := make([]ShardLoad, len(ss))
	for i, st := range ss {
		out[i] = ShardLoad{
			Shard:          i,
			InsertCalls:    st.InsertCalls,
			Results:        st.Results,
			Trees:          st.Trees,
			Nodes:          st.Nodes,
			Groups:         st.Groups,
			SharedGroups:   st.SharedGroups,
			Dispatches:     st.Dispatches,
			RelevanceSkips: st.RelevanceSkips,
		}
	}
	return out
}

// MultiQ prints the shard-count sweep.
func MultiQ(cfg Config) error {
	rows, err := MultiQData(cfg)
	if err != nil {
		return err
	}
	header(cfg.Out, fmt.Sprintf(
		"Sharded multi-query engine: shard-count sweep on SO (%d cores available)",
		runtime.GOMAXPROCS(0)))
	var tab [][]string
	for _, r := range rows {
		tab = append(tab, []string{
			fmt.Sprintf("%d", r.Shards),
			fmt.Sprintf("%d", r.Queries),
			eps(r.Throughput),
			fmt.Sprintf("%.2fx", r.Speedup),
			r.Balance,
		})
	}
	table(cfg.Out, []string{"shards", "queries", "tuples/s", "speedup", "insert-call balance"}, tab)
	return nil
}
