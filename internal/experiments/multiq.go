package experiments

import (
	"fmt"
	"runtime"
	"time"

	"streamrpq/internal/datasets"
	"streamrpq/internal/shard"
	"streamrpq/internal/workload"
)

// MultiQRow is one shard-count measurement of the sharded multi-query
// engine.
type MultiQRow struct {
	Shards     int           `json:"shards"`
	Queries    int           `json:"queries"`
	Tuples     int           `json:"tuples"`
	Throughput float64       `json:"tuples_per_sec"` // whole stream
	NsPerTuple float64       `json:"ns_per_tuple"`
	Speedup    float64       `json:"speedup"` // vs the 1-shard run
	Elapsed    time.Duration `json:"elapsed_ns"`
	Balance    string        `json:"-"`           // per-shard share of insert calls (text table)
	PerShard   []ShardLoad   `json:"shard_stats"` // per-shard load counters
}

// ShardLoad is the per-shard slice of a MultiQRow.
type ShardLoad struct {
	Shard       int   `json:"shard"`
	InsertCalls int64 `json:"insert_calls"`
	Results     int64 `json:"results"`
	Trees       int   `json:"trees"`
	Nodes       int   `json:"nodes"`
}

// MultiQData measures the sharded concurrent multi-query engine
// (internal/shard) running the full workload concurrently over one
// shared window, at increasing shard counts. This extends the paper's
// §7 multi-query direction with the inter-query parallelism the
// single-threaded coordinator cannot exploit; speedups above 1 require
// GOMAXPROCS > 1.
func MultiQData(cfg Config) ([]MultiQRow, error) {
	d := datasets.SO(datasets.DefaultSO(cfg.Scale / 2))
	spec := defaultWindow(d)
	qs := workload.MustQueries(d)
	// Double the workload so every shard owns work at 8 shards.
	queries := append(append([]workload.Query{}, qs...), qs...)

	var rows []MultiQRow
	var base float64
	for _, shards := range []int{1, 2, 4, 8} {
		eng, err := shard.New(spec, shard.WithShards(shards))
		if err != nil {
			return nil, err
		}
		for _, q := range queries {
			if _, err := eng.Add(q.Bound, nil); err != nil {
				eng.Close()
				return nil, err
			}
		}
		start := time.Now()
		const batch = 256
		for i := 0; i < len(d.Tuples); i += batch {
			end := min(i+batch, len(d.Tuples))
			if _, err := eng.ProcessBatch(d.Tuples[i:end]); err != nil {
				eng.Close()
				return nil, err
			}
		}
		elapsed := time.Since(start)
		throughput := float64(len(d.Tuples)) / elapsed.Seconds()
		if shards == 1 {
			base = throughput
		}
		rows = append(rows, MultiQRow{
			Shards:     shards,
			Queries:    len(queries),
			Tuples:     len(d.Tuples),
			Throughput: throughput,
			NsPerTuple: float64(elapsed.Nanoseconds()) / float64(len(d.Tuples)),
			Speedup:    throughput / base,
			Elapsed:    elapsed,
			Balance:    shardBalance(eng),
			PerShard:   shardLoads(eng),
		})
		eng.Close()
	}
	return rows, nil
}

// shardBalance renders each shard's share of the total insert calls,
// the load-balance view of the round-robin query partitioning.
func shardBalance(eng *shard.Engine) string {
	ss := eng.ShardStats()
	var total int64
	for _, st := range ss {
		total += st.InsertCalls
	}
	if total == 0 {
		return "-"
	}
	out := ""
	for i, st := range ss {
		if i > 0 {
			out += "/"
		}
		out += fmt.Sprintf("%.0f%%", 100*float64(st.InsertCalls)/float64(total))
	}
	return out
}

// shardLoads snapshots each shard's load counters for the JSON report.
func shardLoads(eng *shard.Engine) []ShardLoad {
	ss := eng.ShardStats()
	out := make([]ShardLoad, len(ss))
	for i, st := range ss {
		out[i] = ShardLoad{
			Shard:       i,
			InsertCalls: st.InsertCalls,
			Results:     st.Results,
			Trees:       st.Trees,
			Nodes:       st.Nodes,
		}
	}
	return out
}

// MultiQ prints the shard-count sweep.
func MultiQ(cfg Config) error {
	rows, err := MultiQData(cfg)
	if err != nil {
		return err
	}
	header(cfg.Out, fmt.Sprintf(
		"Sharded multi-query engine: shard-count sweep on SO (%d cores available)",
		runtime.GOMAXPROCS(0)))
	var tab [][]string
	for _, r := range rows {
		tab = append(tab, []string{
			fmt.Sprintf("%d", r.Shards),
			fmt.Sprintf("%d", r.Queries),
			eps(r.Throughput),
			fmt.Sprintf("%.2fx", r.Speedup),
			r.Balance,
		})
	}
	table(cfg.Out, []string{"shards", "queries", "tuples/s", "speedup", "insert-call balance"}, tab)
	return nil
}
