package experiments

import (
	"fmt"
	"time"

	"streamrpq/internal/datasets"
	"streamrpq/internal/window"
	"streamrpq/internal/workload"
)

// Fig6Row is one point of Figure 6: tail latency and window-maintenance
// cost at a given window size and slide interval on Yago.
type Fig6Row struct {
	Query       string
	WindowEdges int64 // |W| expressed in edges (count-based windows, as the paper builds for Yago2s)
	SlideEdges  int64
	P99         time.Duration
	ExpiryTime  time.Duration // total time spent in ExpiryRAPQ
	ExpiryRuns  int64
}

// fig6Queries is the query subset plotted in both panels; using all 11
// clutters the table without changing the trend.
var fig6Queries = []string{"Q1", "Q2", "Q3", "Q4", "Q7", "Q11"}

// Fig6Data runs both sweeps of Figure 6: window size |W| at fixed
// relative slide, and slide interval β at fixed |W|.
func Fig6Data(cfg Config) (bySize, bySlide []Fig6Row, err error) {
	d := datasets.Yago(datasets.DefaultYago(cfg.Scale))
	qs := workload.MustQueries(d)
	ticks := streamTicks(d)
	edgesPerTick := int64(len(d.Tuples)) / ticks

	// Window sweep: |W| ∈ {1,2,3,4}·(span/16), mirroring 5M..20M edges.
	unit := ticks / 16
	if unit < 8 {
		unit = 8
	}
	for mult := int64(1); mult <= 4; mult++ {
		size := mult * unit
		spec := window.Spec{Size: size, Slide: max(1, size/10)}
		for _, name := range fig6Queries {
			q, ok := workload.ByName(qs, name)
			if !ok {
				continue
			}
			res := runRAPQ(d, q, spec)
			bySize = append(bySize, Fig6Row{
				Query:       q.Name,
				WindowEdges: size * edgesPerTick,
				SlideEdges:  spec.Slide * edgesPerTick,
				P99:         res.P99,
				ExpiryTime:  res.Stats.ExpiryTime,
				ExpiryRuns:  res.Stats.ExpiryRuns,
			})
		}
	}

	// Slide sweep: β ∈ {1,2,3,4}·(|W|/20) at fixed |W| = 2·unit,
	// mirroring 0.5M..2M slides on a 10M window.
	size := 2 * unit
	for mult := int64(1); mult <= 4; mult++ {
		slide := max(1, mult*size/20)
		spec := window.Spec{Size: size, Slide: slide}
		for _, name := range fig6Queries {
			q, ok := workload.ByName(qs, name)
			if !ok {
				continue
			}
			res := runRAPQ(d, q, spec)
			bySlide = append(bySlide, Fig6Row{
				Query:       q.Name,
				WindowEdges: size * edgesPerTick,
				SlideEdges:  slide * edgesPerTick,
				P99:         res.P99,
				ExpiryTime:  res.Stats.ExpiryTime,
				ExpiryRuns:  res.Stats.ExpiryRuns,
			})
		}
	}
	return bySize, bySlide, nil
}

// Fig6 reproduces Figure 6: (a) tail latency grows linearly with the
// window size |W| and is insensitive to the slide interval β; (b) the
// per-run window-maintenance cost grows with both |W| and β (larger
// slides expire more per run), keeping the amortized overhead constant.
func Fig6(cfg Config) error {
	bySize, bySlide, err := Fig6Data(cfg)
	if err != nil {
		return err
	}
	header(cfg.Out, "Figure 6(a): tail latency vs window size |W| (Yago)")
	var buf [][]string
	for _, r := range bySize {
		buf = append(buf, []string{r.Query, fmt.Sprint(r.WindowEdges), r.P99.String(), r.ExpiryTime.String(), fmt.Sprint(r.ExpiryRuns)})
	}
	table(cfg.Out, []string{"Query", "|W| (edges)", "p99", "Total expiry time", "Expiry runs"}, buf)

	header(cfg.Out, "Figure 6(b): tail latency vs slide interval β (Yago, fixed |W|)")
	buf = nil
	for _, r := range bySlide {
		perRun := time.Duration(0)
		if r.ExpiryRuns > 0 {
			perRun = r.ExpiryTime / time.Duration(r.ExpiryRuns)
		}
		buf = append(buf, []string{r.Query, fmt.Sprint(r.SlideEdges), r.P99.String(), perRun.String(), fmt.Sprint(r.ExpiryRuns)})
	}
	table(cfg.Out, []string{"Query", "β (edges)", "p99", "Expiry time/run", "Expiry runs"}, buf)
	return nil
}
