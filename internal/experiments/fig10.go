package experiments

import (
	"fmt"
	"time"

	"streamrpq/internal/datasets"
	"streamrpq/internal/workload"
)

// Fig10Row is one point of Figure 10: tail latency of one query on
// Yago at a given explicit-deletion ratio.
type Fig10Row struct {
	Query    string
	DelRatio float64
	P99      time.Duration
}

// fig10Ratios are the sweep points of Figure 10 (0% is the append-only
// reference).
var fig10Ratios = []float64{0, 0.02, 0.04, 0.06, 0.08, 0.10}

// Fig10Data measures the impact of explicit deletions, generated as in
// §5.4 by re-inserting previously consumed edges as negative tuples.
func Fig10Data(cfg Config) ([]Fig10Row, error) {
	base := datasets.Yago(datasets.DefaultYago(cfg.Scale))
	qs := workload.MustQueries(base)
	spec := defaultWindow(base)
	var rows []Fig10Row
	for _, ratio := range fig10Ratios {
		d := base
		if ratio > 0 {
			d = base.WithDeletions(ratio, cfg.Seed+int64(ratio*1000))
		}
		for _, q := range qs {
			res := runRAPQ(d, q, spec)
			rows = append(rows, Fig10Row{Query: q.Name, DelRatio: ratio, P99: res.P99})
		}
	}
	return rows, nil
}

// Fig10 reproduces Figure 10: tail latency against the ratio of
// explicit deletions on Yago. The paper finds deletions cost up to 50%
// extra tail latency, but the overhead flattens quickly: higher
// deletion ratios shrink the snapshot graph and the Δ index, offsetting
// the extra expiry work.
func Fig10(cfg Config) error {
	rows, err := Fig10Data(cfg)
	if err != nil {
		return err
	}
	// Pivot: one row per query, one column per ratio.
	headers := []string{"Query"}
	for _, r := range fig10Ratios {
		headers = append(headers, fmt.Sprintf("%.0f%% del", r*100))
	}
	byQuery := map[string][]string{}
	var order []string
	for _, r := range rows {
		if _, ok := byQuery[r.Query]; !ok {
			byQuery[r.Query] = []string{r.Query}
			order = append(order, r.Query)
		}
		byQuery[r.Query] = append(byQuery[r.Query], r.P99.String())
	}
	var buf [][]string
	for _, q := range order {
		buf = append(buf, byQuery[q])
	}
	header(cfg.Out, "Figure 10: tail latency vs explicit-deletion ratio (Yago)")
	table(cfg.Out, headers, buf)
	return nil
}
