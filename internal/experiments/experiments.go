// Package experiments regenerates every table and figure of the
// evaluation section (§5) of Pacaci et al. (SIGMOD 2020) on the
// synthetic datasets of internal/datasets. Each driver prints the same
// rows/series the paper reports; EXPERIMENTS.md records the paper's
// numbers next to measured ones.
//
// Absolute numbers differ from the paper (laptop-scale synthetic
// streams vs. a 32-core server on 63M–220M-edge graphs); the
// reproduction targets are the orderings and trends: which queries and
// datasets are slow, how costs scale with |W|, β, k, Δ, the deletion
// ratio, and the gap to the rescan baseline.
package experiments

import (
	"fmt"
	"io"
	"strings"

	"streamrpq/internal/bench"
	"streamrpq/internal/core"
	"streamrpq/internal/datasets"
	"streamrpq/internal/window"
	"streamrpq/internal/workload"
)

// Config scales and directs an experiment run.
type Config struct {
	// Scale is the stream length (number of tuples) of the primary
	// dataset runs. Sweeps and baseline comparisons derive smaller
	// streams from it.
	Scale int
	// Out receives the human-readable tables.
	Out io.Writer
	// Seed makes dataset generation reproducible.
	Seed int64
	// ShardCounts overrides the shard-count grid of the sweep
	// experiments (multiq, pipeline); empty selects the default.
	ShardCounts []int
	// PipelineDepths overrides the pipeline-depth grid of the pipeline
	// experiment; empty selects the default (1, 2, 4).
	PipelineDepths []int
	// WriterCounts overrides the epoch-construction writer grid of the
	// writers experiment; empty selects the default (1, 2, 4, 8).
	WriterCounts []int
}

// DefaultConfig returns a laptop-scale configuration (~1–2 minutes for
// the full suite).
func DefaultConfig(out io.Writer) Config {
	return Config{Scale: 40000, Out: out, Seed: 1}
}

// Runner is one registered experiment.
type Runner struct {
	ID    string // e.g. "fig4", "table4"
	Title string
	Run   func(cfg Config) error
}

// All returns the experiment registry in paper order.
func All() []Runner {
	return []Runner{
		{"table1", "Amortized time complexities (Table 1)", Table1},
		{"fig4", "Throughput & tail latency per query and dataset (Figure 4)", Fig4},
		{"fig5", "Δ tree-index size on SO (Figure 5)", Fig5},
		{"fig6", "Latency & expiry cost vs window size and slide interval (Figure 6)", Fig6},
		{"fig7", "DFA size vs query size on the gMark workload (Figure 7)", Fig7},
		{"fig8", "Throughput vs automaton size k (Figure 8)", Fig8},
		{"fig9", "Throughput vs Δ size for k=5 queries (Figure 9)", Fig9},
		{"fig10", "Tail latency vs explicit-deletion ratio (Figure 10)", Fig10},
		{"table4", "Simple-path semantics: feasibility & overhead (Table 4)", Table4},
		{"fig11", "Speedup over the per-tuple rescan baseline (Figure 11)", Fig11},
		{"ablation", "Design-choice ablations: inverted index, tree parallelism, multi-query sharing", Ablation},
		{"multiq", "Sharded concurrent multi-query engine: shard-count sweep (§7 + internal/shard)", MultiQ},
		{"multiq-shared", "Multi-query sharing: canonical automaton dedup + relevance scheduling, shared vs private per shard count", MultiQShared},
		{"pipeline", "Pipelined sub-batches: barriered (depth 1) vs pipelined (depth ≥ 2) per shard count", Pipeline},
		{"churn", "Delete/re-insert churn: support-counting deletion overhead per shard count", Churn},
		{"writers", "Multi-writer epoch construction: sequential vs stripe-parallel apply per shard count", Writers},
	}
}

// ByID returns the runner with the given id.
func ByID(id string) (Runner, bool) {
	for _, r := range All() {
		if r.ID == id {
			return r, true
		}
	}
	return Runner{}, false
}

// ---- shared helpers ----

// streamTicks returns the time span of a generated stream in ticks.
func streamTicks(d *datasets.Dataset) int64 {
	if len(d.Tuples) == 0 {
		return 0
	}
	return d.Tuples[len(d.Tuples)-1].TS - d.Tuples[0].TS + 1
}

// defaultWindow derives the per-dataset default window the drivers
// use: an eighth of the stream span, sliding a tenth of the window —
// the same order of magnitude relative to stream length as the paper's
// per-dataset defaults (e.g. 10M-edge windows over Yago2s, 1-month
// windows over 8 years of SO).
func defaultWindow(d *datasets.Dataset) window.Spec {
	t := streamTicks(d)
	size := t / 8
	if size < 16 {
		size = 16
	}
	slide := size / 10
	if slide < 1 {
		slide = 1
	}
	return window.Spec{Size: size, Slide: slide}
}

// runRAPQ measures Algorithm RAPQ for one query over one dataset.
func runRAPQ(d *datasets.Dataset, q workload.Query, spec window.Spec) bench.Result {
	engine := core.NewRAPQ(q.Bound, spec)
	return bench.Run(engine, d.Tuples, bench.RelevantLabels(q.Bound.Relevant), q.Name, d.Name)
}

// runRSPQ measures Algorithm RSPQ; maxExtends>0 bounds the per-tuple
// cascade so conflict-heavy (NP-hard) runs terminate and can be
// reported as infeasible.
func runRSPQ(d *datasets.Dataset, q workload.Query, spec window.Spec, maxExtends int64) (bench.Result, bool) {
	engine := core.NewRSPQ(q.Bound, spec, core.WithMaxExtends(maxExtends))
	res := bench.Run(engine, d.Tuples, bench.RelevantLabels(q.Bound.Relevant), q.Name, d.Name)
	feasible := maxExtends <= 0 || !engine.BudgetExceeded()
	return res, feasible
}

// table renders an aligned text table.
func table(w io.Writer, headers []string, rows [][]string) {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range rows {
		line(row)
	}
}

func header(w io.Writer, title string) {
	fmt.Fprintf(w, "\n== %s ==\n", title)
}

// eps formats edges-per-second.
func eps(v float64) string { return fmt.Sprintf("%.0f", v) }
