package experiments

import (
	"fmt"
	"sort"

	"streamrpq/internal/automaton"
	"streamrpq/internal/bench"
	"streamrpq/internal/core"
	"streamrpq/internal/datasets"
)

// gmarkWorkload builds the 100-query synthetic workload of §5.3 bound
// to the gMark dataset's label space.
func gmarkWorkload(d *datasets.Dataset, seed int64) []boundGMarkQuery {
	qs := datasets.GMarkQueries(100, d.Labels, 2, 20, seed)
	out := make([]boundGMarkQuery, 0, len(qs))
	for _, q := range qs {
		dfa := automaton.Compile(q.Expr)
		out = append(out, boundGMarkQuery{
			GMarkQuery: q,
			States:     dfa.NumStates(),
			Bound:      dfa.Bind(d.LabelID, len(d.Labels)),
		})
	}
	return out
}

type boundGMarkQuery struct {
	datasets.GMarkQuery
	States int
	Bound  *automaton.Bound
}

// Fig7Row is one point of Figure 7: the minimal-DFA size of one
// synthetic query.
type Fig7Row struct {
	Query  string
	Size   int // |Q|
	States int // k
}

// Fig7Data computes DFA sizes for the synthetic workload. No stream is
// replayed; this is a compilation-only experiment.
func Fig7Data(cfg Config) ([]Fig7Row, error) {
	d := datasets.GMark(datasets.DefaultGMark(1000))
	var rows []Fig7Row
	for _, q := range gmarkWorkload(d, cfg.Seed) {
		rows = append(rows, Fig7Row{Query: q.Name, Size: q.Size, States: q.States})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Size < rows[j].Size })
	return rows, nil
}

// Fig7 reproduces Figure 7: the number of DFA states k against the
// query size |Q| for 100 gMark RPQs. The paper's finding — echoed by
// Green et al. for XML streams — is that k does not explode
// exponentially with |Q| for practical queries; it stays within a
// small multiple of |Q|.
func Fig7(cfg Config) error {
	rows, err := Fig7Data(cfg)
	if err != nil {
		return err
	}
	// Aggregate per query size.
	type agg struct {
		n, sum, min, max int
	}
	bysize := map[int]*agg{}
	for _, r := range rows {
		a := bysize[r.Size]
		if a == nil {
			a = &agg{min: r.States, max: r.States}
			bysize[r.Size] = a
		}
		a.n++
		a.sum += r.States
		if r.States < a.min {
			a.min = r.States
		}
		if r.States > a.max {
			a.max = r.States
		}
	}
	var sizes []int
	for s := range bysize {
		sizes = append(sizes, s)
	}
	sort.Ints(sizes)
	header(cfg.Out, "Figure 7: DFA states k vs query size |Q| (100 gMark RPQs)")
	var buf [][]string
	for _, s := range sizes {
		a := bysize[s]
		buf = append(buf, []string{
			fmt.Sprint(s), fmt.Sprint(a.n),
			fmt.Sprintf("%.1f", float64(a.sum)/float64(a.n)),
			fmt.Sprint(a.min), fmt.Sprint(a.max),
		})
	}
	table(cfg.Out, []string{"|Q|", "queries", "avg k", "min k", "max k"}, buf)
	return nil
}

// Fig8Row is one point of Figure 8: throughput of one synthetic query
// against its automaton size.
type Fig8Row struct {
	Query      string
	States     int
	Throughput float64
	Nodes      int
}

// fig8Sample selects a throughput-measurable subset of the workload:
// measuring all 100 queries at full scale is slow and the paper's
// scatter only needs coverage of the k range.
func fig8Sample(qs []boundGMarkQuery, perK int) []boundGMarkQuery {
	byK := map[int]int{}
	var out []boundGMarkQuery
	for _, q := range qs {
		if byK[q.States] < perK {
			byK[q.States]++
			out = append(out, q)
		}
	}
	return out
}

// Fig8Data measures throughput against k on the gMark stream.
func Fig8Data(cfg Config) ([]Fig8Row, error) {
	d := datasets.GMark(datasets.DefaultGMark(cfg.Scale / 2))
	spec := defaultWindow(d)
	var rows []Fig8Row
	for _, q := range fig8Sample(gmarkWorkload(d, cfg.Seed), 4) {
		engine := core.NewRAPQ(q.Bound, spec)
		res := bench.Run(engine, d.Tuples, bench.RelevantLabels(q.Bound.Relevant), q.Name, d.Name)
		rows = append(rows, Fig8Row{Query: q.Name, States: q.States, Throughput: res.Throughput, Nodes: res.Nodes})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].States < rows[j].States })
	return rows, nil
}

// Fig8 reproduces Figure 8: throughput of Algorithm RAPQ against the
// number of automaton states k for the synthetic workload. The paper
// finds no strong dependence on k; the spread within one k (up to 6×)
// is explained by label selectivity — Figure 9 pins it to the Δ size.
func Fig8(cfg Config) error {
	rows, err := Fig8Data(cfg)
	if err != nil {
		return err
	}
	header(cfg.Out, "Figure 8: throughput vs automaton size k (gMark workload)")
	var buf [][]string
	for _, r := range rows {
		buf = append(buf, []string{r.Query, fmt.Sprint(r.States), eps(r.Throughput), fmt.Sprint(r.Nodes)})
	}
	table(cfg.Out, []string{"Query", "k", "Throughput (edges/s)", "Δ nodes"}, buf)
	return nil
}

// Fig9Row is one point of Figure 9: throughput against Δ size for
// queries with a fixed automaton size.
type Fig9Row struct {
	Query      string
	Nodes      int
	Throughput float64
}

// fig9K is the automaton size held fixed in Figure 9.
const fig9K = 5

// Fig9Data measures throughput against Δ size for queries with k =
// fig9K (falling back to the most common k if none has 5 states).
func Fig9Data(cfg Config) ([]Fig9Row, error) {
	d := datasets.GMark(datasets.DefaultGMark(cfg.Scale / 2))
	spec := defaultWindow(d)
	all := gmarkWorkload(d, cfg.Seed)
	k := fig9K
	var sel []boundGMarkQuery
	for _, q := range all {
		if q.States == k {
			sel = append(sel, q)
		}
	}
	if len(sel) < 4 { // fall back to the most populated k
		counts := map[int]int{}
		for _, q := range all {
			counts[q.States]++
		}
		best, bestN := 0, 0
		for kk, n := range counts {
			if n > bestN {
				best, bestN = kk, n
			}
		}
		k = best
		sel = sel[:0]
		for _, q := range all {
			if q.States == k {
				sel = append(sel, q)
			}
		}
	}
	if len(sel) > 12 {
		sel = sel[:12]
	}
	var rows []Fig9Row
	for _, q := range sel {
		engine := core.NewRAPQ(q.Bound, spec)
		res := bench.Run(engine, d.Tuples, bench.RelevantLabels(q.Bound.Relevant), q.Name, d.Name)
		rows = append(rows, Fig9Row{Query: q.Name, Nodes: res.Nodes, Throughput: res.Throughput})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Nodes < rows[j].Nodes })
	return rows, nil
}

// Fig9 reproduces Figure 9: for queries with the same automaton size,
// throughput falls as the Δ tree index grows — confirming that the
// index size (the volume of partial results), not k, drives the cost.
func Fig9(cfg Config) error {
	rows, err := Fig9Data(cfg)
	if err != nil {
		return err
	}
	header(cfg.Out, "Figure 9: throughput vs Δ size at fixed k (gMark workload)")
	var buf [][]string
	for _, r := range rows {
		buf = append(buf, []string{r.Query, fmt.Sprint(r.Nodes), eps(r.Throughput)})
	}
	table(cfg.Out, []string{"Query", "Δ nodes", "Throughput (edges/s)"}, buf)
	return nil
}
