// Package window implements the time-based sliding-window bookkeeping
// of Definitions 4–5 of Pacaci et al. (SIGMOD 2020).
//
// Following §2 of the paper, queries use eager evaluation (every
// arriving tuple is processed immediately, β=1 for results) combined
// with lazy expiration (expired tuples are physically removed only at
// user-defined slide intervals β). The Manager tells the engine when a
// slide boundary has been crossed and which deadline to expire to.
package window

import "fmt"

// Spec describes a time-based sliding window: Size is |W| and Slide is
// the slide interval β, both in stream time units.
type Spec struct {
	Size  int64 // |W| > 0
	Slide int64 // β ≥ 1
}

// Validate checks the specification for consistency.
func (s Spec) Validate() error {
	if s.Size <= 0 {
		return fmt.Errorf("window: size must be positive, got %d", s.Size)
	}
	if s.Slide <= 0 {
		return fmt.Errorf("window: slide must be positive, got %d", s.Slide)
	}
	if s.Slide > s.Size {
		return fmt.Errorf("window: slide %d larger than window size %d", s.Slide, s.Size)
	}
	return nil
}

// ValidFrom returns the exclusive lower bound of valid timestamps at
// time now: an edge or tree node is inside the window iff ts > ValidFrom.
func (s Spec) ValidFrom(now int64) int64 { return now - s.Size }

// Manager tracks slide boundaries for lazy expiration.
type Manager struct {
	spec     Spec
	boundary int64 // W^e of the last expiry run
	started  bool
	last     Expiry // most recent epoch-stamped expiry (ObserveAt)
}

// NewManager returns a Manager for the given specification.
func NewManager(spec Spec) *Manager {
	return &Manager{spec: spec}
}

// Spec returns the window specification.
func (m *Manager) Spec() Spec { return m.spec }

// Observe is called with each tuple timestamp in non-decreasing order.
// It reports whether a slide boundary was crossed since the previous
// call and, if so, the expiry deadline: every element with ts ≤ deadline
// has left the window (W^b = ⌊τ/β⌋·β − |W|). Observe is Peek plus the
// commit of the crossed boundary.
func (m *Manager) Observe(ts int64) (deadline int64, due bool) {
	deadline, due = m.Peek(ts)
	if !m.started || due {
		m.started = true
		m.boundary = floorDiv(ts, m.spec.Slide) * m.spec.Slide
	}
	return deadline, due
}

// Peek reports what Observe(ts) would return without mutating the
// manager. Batch coordinators use it to detect slide boundaries before
// deciding where to cut a batch.
func (m *Manager) Peek(ts int64) (deadline int64, due bool) {
	we := floorDiv(ts, m.spec.Slide) * m.spec.Slide
	if !m.started || we <= m.boundary {
		return 0, false
	}
	return we - m.spec.Size, true
}

// Expiry describes one retirement of window content: every element with
// ts ≤ Deadline has left the window, and Epoch is the graph epoch at
// which the retirement was applied. An epoch-versioned snapshot graph
// (internal/graph) keeps the expired edges visible to readers of
// earlier epochs; the stamp records which epoch's readers are the first
// to observe the post-expiry window. Removed is the number of edges the
// pass retired, annotated after the fact via NoteRemoved: with
// stripe-parallel epoch construction the removals are applied by
// several writers partitioned by vertex stripe, and the count is their
// deterministic merge (a plan-order sum, independent of writer count).
type Expiry struct {
	Deadline int64
	Epoch    uint64
	Removed  int
}

// ObserveAt is Observe for an epoch-versioned coordinator: when the
// tuple timestamp crosses a slide boundary it commits the boundary and
// stamps the resulting expiry with the epoch that retires it. The stamp
// of the most recent boundary is retained (see LastExpiry).
//
// Today the stamp is bookkeeping only — recovery and the epoch-GC are
// driven by the graph's reader leases, not by it. It exists as the log
// sequence number for replicated window movement: a distributed shard
// replaying a peer's mutation log needs to know at which epoch each
// expiry pass ran (see ROADMAP, "Distributed sharding"). Like the
// epoch counter itself, the stamp is run-local: restored state is
// epoch-free (the graph restarts at epoch 0 after recovery), so the
// stamp is deliberately NOT part of State — persisting it would carry
// a reference into a dead epoch numbering.
func (m *Manager) ObserveAt(ts int64, epoch uint64) (Expiry, bool) {
	deadline, due := m.Observe(ts)
	if !due {
		return Expiry{}, false
	}
	m.last = Expiry{Deadline: deadline, Epoch: epoch}
	return m.last, true
}

// LastExpiry returns the most recent epoch-stamped expiry committed via
// ObserveAt (zero value if none).
func (m *Manager) LastExpiry() Expiry { return m.last }

// NoteRemoved annotates the most recent expiry with the number of edges
// its pass retired. Like the epoch stamp, the count is run-local
// bookkeeping and deliberately not part of State.
func (m *Manager) NoteRemoved(n int) { m.last.Removed = n }

// Boundary returns W^e of the last expiry run.
func (m *Manager) Boundary() int64 { return m.boundary }

// State is the checkpointable position of a Manager: the last committed
// slide boundary and whether a tuple has been observed at all.
type State struct {
	Boundary int64
	Started  bool
}

// State returns the manager's current position for a checkpoint.
func (m *Manager) State() State {
	return State{Boundary: m.boundary, Started: m.started}
}

// SetState restores a position captured by State. The specification is
// not part of the state; it must match by construction.
func (m *Manager) SetState(st State) {
	m.boundary = st.Boundary
	m.started = st.Started
}

// floorDiv is integer division rounding toward negative infinity, so
// negative timestamps behave consistently.
func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}
