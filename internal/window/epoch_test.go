package window

import "testing"

// TestObserveAtStampsEpoch: ObserveAt commits exactly the boundaries
// Observe would and stamps each with the retiring epoch.
func TestObserveAtStampsEpoch(t *testing.T) {
	m := NewManager(Spec{Size: 10, Slide: 5})
	ref := NewManager(Spec{Size: 10, Slide: 5})

	stream := []struct {
		ts    int64
		epoch uint64
	}{{1, 1}, {4, 2}, {5, 3}, {9, 4}, {12, 5}, {12, 6}, {20, 7}}

	for _, s := range stream {
		wantDeadline, wantDue := ref.Observe(s.ts)
		ex, due := m.ObserveAt(s.ts, s.epoch)
		if due != wantDue {
			t.Fatalf("ts %d: due=%v, want %v", s.ts, due, wantDue)
		}
		if !due {
			continue
		}
		if ex.Deadline != wantDeadline {
			t.Fatalf("ts %d: deadline %d, want %d", s.ts, ex.Deadline, wantDeadline)
		}
		if ex.Epoch != s.epoch {
			t.Fatalf("ts %d: expiry stamped with epoch %d, want %d", s.ts, ex.Epoch, s.epoch)
		}
		if m.LastExpiry() != ex {
			t.Fatalf("LastExpiry %+v != returned %+v", m.LastExpiry(), ex)
		}
	}
	// Boundaries committed identically.
	if m.Boundary() != ref.Boundary() {
		t.Fatalf("boundary %d != reference %d", m.Boundary(), ref.Boundary())
	}
}
