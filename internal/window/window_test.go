package window

import (
	"testing"
	"testing/quick"
)

func TestSpecValidate(t *testing.T) {
	cases := []struct {
		spec Spec
		ok   bool
	}{
		{Spec{Size: 10, Slide: 1}, true},
		{Spec{Size: 10, Slide: 10}, true},
		{Spec{Size: 0, Slide: 1}, false},
		{Spec{Size: -5, Slide: 1}, false},
		{Spec{Size: 10, Slide: 0}, false},
		{Spec{Size: 10, Slide: -1}, false},
		{Spec{Size: 10, Slide: 11}, false},
	}
	for _, c := range cases {
		if err := c.spec.Validate(); (err == nil) != c.ok {
			t.Errorf("Validate(%+v) = %v, want ok=%v", c.spec, err, c.ok)
		}
	}
}

func TestObserveEagerSlide(t *testing.T) {
	m := NewManager(Spec{Size: 15, Slide: 1})
	// First observation establishes the boundary, no expiry.
	if _, due := m.Observe(4); due {
		t.Fatal("first observation should not trigger expiry")
	}
	// Same boundary: no expiry.
	if _, due := m.Observe(4); due {
		t.Fatal("same timestamp should not trigger expiry")
	}
	// Crossing to 6 must expire to 6-15 = -9.
	deadline, due := m.Observe(6)
	if !due || deadline != -9 {
		t.Fatalf("Observe(6) = %d,%v, want -9,true", deadline, due)
	}
	deadline, due = m.Observe(19)
	if !due || deadline != 4 {
		t.Fatalf("Observe(19) = %d,%v, want 4,true", deadline, due)
	}
}

func TestObserveLazySlide(t *testing.T) {
	m := NewManager(Spec{Size: 30, Slide: 10})
	m.Observe(5) // boundary 0
	if _, due := m.Observe(9); due {
		t.Fatal("no boundary crossed below 10")
	}
	deadline, due := m.Observe(10)
	if !due || deadline != -20 {
		t.Fatalf("Observe(10) = %d,%v, want -20,true", deadline, due)
	}
	if _, due := m.Observe(19); due {
		t.Fatal("within slide interval")
	}
	// Jumping several boundaries at once yields a single expiry with
	// the latest deadline.
	deadline, due = m.Observe(45)
	if !due || deadline != 10 {
		t.Fatalf("Observe(45) = %d,%v, want 10,true", deadline, due)
	}
	if m.Boundary() != 40 {
		t.Fatalf("Boundary = %d, want 40", m.Boundary())
	}
}

func TestValidFrom(t *testing.T) {
	s := Spec{Size: 15, Slide: 1}
	if got := s.ValidFrom(18); got != 3 {
		t.Fatalf("ValidFrom(18) = %d, want 3", got)
	}
}

func TestFloorDivProperties(t *testing.T) {
	f := func(a int64, b uint8) bool {
		d := int64(b%60) + 1
		q := floorDiv(a, d)
		// q is the unique integer with q*d <= a < (q+1)*d.
		return q*d <= a && a < (q+1)*d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDeadlineMonotone(t *testing.T) {
	// Deadlines from any non-decreasing observation sequence must be
	// strictly increasing.
	f := func(steps []uint8, size8, slide8 uint8) bool {
		size := int64(size8%50) + 10
		slide := int64(slide8%10) + 1
		m := NewManager(Spec{Size: size, Slide: slide})
		ts := int64(0)
		last := int64(-1 << 62)
		for _, s := range steps {
			ts += int64(s % 7)
			if deadline, due := m.Observe(ts); due {
				if deadline <= last {
					return false
				}
				last = deadline
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPeekMatchesObserve(t *testing.T) {
	// Peek must predict Observe exactly and never mutate the manager.
	f := func(steps []uint8, size8, slide8 uint8) bool {
		size := int64(size8%50) + 10
		slide := int64(slide8%10) + 1
		m := NewManager(Spec{Size: size, Slide: slide})
		ts := int64(0)
		for _, s := range steps {
			ts += int64(s % 7)
			pd, pdue := m.Peek(ts)
			pd2, pdue2 := m.Peek(ts) // idempotent
			od, odue := m.Observe(ts)
			if pd != pd2 || pdue != pdue2 || pd != od || pdue != odue {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
