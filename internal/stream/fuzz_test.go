package stream

import (
	"bytes"
	"io"
	"reflect"
	"testing"
)

// FuzzTupleRoundTrip fuzzes the binary stream codec the checkpoint/WAL
// formats are built on: an arbitrary label dictionary plus an arbitrary
// tuple sequence (derived from the raw input bytes, with timestamps
// forced non-decreasing) must encode and decode back to exactly the
// same tuples and labels.
func FuzzTupleRoundTrip(f *testing.F) {
	f.Add([]byte("ab"), []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	f.Add([]byte(""), []byte{})
	f.Add([]byte("follows\x00mentions\x00a"), []byte{0xff, 0xff, 0xff, 0, 0, 0, 1})
	f.Add([]byte("x"), bytes.Repeat([]byte{0x80, 0x01, 0x7f}, 40))

	f.Fuzz(func(t *testing.T, labelBlob, tupleBlob []byte) {
		// Derive a label dictionary: NUL-separated names, bounded count.
		var labels []string
		for _, part := range bytes.SplitN(labelBlob, []byte{0}, 32) {
			if len(part) > 256 {
				part = part[:256]
			}
			labels = append(labels, string(part))
		}
		// Derive tuples: 9 bytes each → ts step, src, dst, label, op.
		var tuples []Tuple
		ts := int64(0)
		for i := 0; i+9 <= len(tupleBlob) && len(tuples) < 4096; i += 9 {
			b := tupleBlob[i : i+9]
			ts += int64(uint16(b[0])<<8 | uint16(b[1])) // non-decreasing
			op := Insert
			if b[8]&1 == 1 {
				op = Delete
			}
			tuples = append(tuples, Tuple{
				TS:    ts,
				Src:   VertexID(uint32(b[2])<<8 | uint32(b[3])),
				Dst:   VertexID(uint32(b[4])<<8 | uint32(b[5])),
				Label: LabelID(uint32(b[6])<<8 | uint32(b[7])),
				Op:    op,
			})
		}

		var buf bytes.Buffer
		bw, err := NewBinaryWriter(&buf, labels)
		if err != nil {
			t.Fatalf("writer: %v", err)
		}
		for _, tu := range tuples {
			if err := bw.Write(tu); err != nil {
				t.Fatalf("write %v: %v", tu, err)
			}
		}
		if err := bw.Flush(); err != nil {
			t.Fatal(err)
		}

		br, err := NewBinaryReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("reader: %v", err)
		}
		gotLabels := br.Labels()
		if len(gotLabels) != len(labels) {
			t.Fatalf("label count: got %d, want %d", len(gotLabels), len(labels))
		}
		for i := range labels {
			if gotLabels[i] != labels[i] {
				t.Fatalf("label %d: got %q, want %q", i, gotLabels[i], labels[i])
			}
		}
		got, err := br.ReadAll()
		if err != nil {
			t.Fatalf("read all: %v", err)
		}
		if len(got) != len(tuples) {
			t.Fatalf("tuple count: got %d, want %d", len(got), len(tuples))
		}
		for i := range tuples {
			if !reflect.DeepEqual(got[i], tuples[i]) {
				t.Fatalf("tuple %d: got %v, want %v", i, got[i], tuples[i])
			}
		}
	})
}

// FuzzBinaryReaderRobustness feeds arbitrary bytes to the decoder: it
// must never panic or allocate unboundedly — only return tuples or an
// error.
func FuzzBinaryReaderRobustness(f *testing.F) {
	// A valid tiny stream as a seed so mutations explore the format.
	var buf bytes.Buffer
	bw, _ := NewBinaryWriter(&buf, []string{"a", "b"})
	bw.Write(Tuple{TS: 5, Src: 1, Dst: 2, Label: 0})
	bw.Write(Tuple{TS: 9, Src: 2, Dst: 3, Label: 1, Op: Delete})
	bw.Flush()
	f.Add(buf.Bytes())
	f.Add([]byte("SRPQ"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		br, err := NewBinaryReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i := 0; i < 1<<16; i++ {
			if _, err := br.Read(); err != nil {
				if err != io.EOF && err != io.ErrUnexpectedEOF && err.Error() == "" {
					t.Fatalf("empty error")
				}
				return
			}
		}
	})
}
