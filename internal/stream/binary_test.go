package stream

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
)

func TestBinaryRoundTrip(t *testing.T) {
	labels := []string{"knows", "likes", "replyOf"}
	in := []Tuple{
		{TS: 0, Src: 0, Dst: 1, Label: 0},
		{TS: 5, Src: 1, Dst: 2, Label: 1},
		{TS: 5, Src: 2, Dst: 0, Label: 2, Op: Delete},
		{TS: 1000000, Src: 4000000, Dst: 5, Label: 0},
	}
	var buf bytes.Buffer
	w, err := NewBinaryWriter(&buf, labels)
	if err != nil {
		t.Fatal(err)
	}
	for _, tu := range in {
		if err := w.Write(tu); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r, err := NewBinaryReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Labels(); len(got) != 3 || got[0] != "knows" || got[2] != "replyOf" {
		t.Fatalf("labels = %v", got)
	}
	out, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("read %d tuples, want %d", len(out), len(in))
	}
	for i := range in {
		if in[i] != out[i] {
			t.Errorf("tuple %d: %v != %v", i, in[i], out[i])
		}
	}
}

func TestBinaryRandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	var in []Tuple
	ts := int64(0)
	for i := 0; i < 5000; i++ {
		ts += rng.Int63n(100)
		tu := Tuple{
			TS:    ts,
			Src:   VertexID(rng.Uint32()),
			Dst:   VertexID(rng.Uint32()),
			Label: LabelID(rng.Intn(50)),
		}
		if rng.Intn(10) == 0 {
			tu.Op = Delete
		}
		in = append(in, tu)
	}
	labels := make([]string, 50)
	for i := range labels {
		labels[i] = string(rune('a' + i%26))
	}
	var buf bytes.Buffer
	w, _ := NewBinaryWriter(&buf, labels)
	for _, tu := range in {
		if err := w.Write(tu); err != nil {
			t.Fatal(err)
		}
	}
	w.Flush()

	r, err := NewBinaryReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	out, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("read %d, want %d", len(out), len(in))
	}
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("tuple %d mismatch", i)
		}
	}
	// Compactness: delta encoding should stay well under 16 bytes per
	// tuple on this distribution.
	if perTuple := float64(buf.Len()) / float64(len(in)); perTuple > 16 {
		t.Errorf("binary encoding uses %.1f bytes/tuple", perTuple)
	}
}

func TestBinaryRejectsOutOfOrder(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewBinaryWriter(&buf, nil)
	w.Write(Tuple{TS: 10})
	if err := w.Write(Tuple{TS: 9}); err == nil {
		t.Fatal("out-of-order write accepted")
	}
}

func TestBinaryBadHeader(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("XXXX"),
		[]byte("SRPQ\xff"), // bad version
		[]byte("SRP"),      // truncated magic
	}
	for _, c := range cases {
		if _, err := NewBinaryReader(bytes.NewReader(c)); err == nil {
			t.Errorf("header %q accepted", c)
		}
	}
}

func TestBinaryTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewBinaryWriter(&buf, []string{"a"})
	w.Write(Tuple{TS: 1, Src: 2, Dst: 3, Label: 0})
	w.Flush()
	full := buf.Bytes()
	// Chop the last byte: the reader must surface an error, not EOF.
	r, err := NewBinaryReader(bytes.NewReader(full[:len(full)-1]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Read(); err == nil || err == io.EOF {
		t.Fatalf("truncated record: err = %v, want unexpected EOF", err)
	}
}

func TestBinaryEmptyStream(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewBinaryWriter(&buf, []string{"a"})
	w.Flush()
	r, err := NewBinaryReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	out, err := r.ReadAll()
	if err != nil || len(out) != 0 {
		t.Fatalf("out=%v err=%v", out, err)
	}
}
