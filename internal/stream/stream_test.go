package stream

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

func TestDict(t *testing.T) {
	d := NewDict()
	if d.Len() != 0 {
		t.Fatal("new dict not empty")
	}
	a := d.ID("alpha")
	b := d.ID("beta")
	if a != 0 || b != 1 {
		t.Fatalf("ids = %d,%d, want 0,1", a, b)
	}
	if d.ID("alpha") != a {
		t.Fatal("re-intern changed id")
	}
	if got := d.Name(a); got != "alpha" {
		t.Fatalf("Name(%d) = %q", a, got)
	}
	if got := d.Name(99); got != "" {
		t.Fatalf("Name(99) = %q, want empty", got)
	}
	if _, ok := d.Lookup("gamma"); ok {
		t.Fatal("Lookup of unseen name succeeded")
	}
	if id, ok := d.Lookup("beta"); !ok || id != b {
		t.Fatalf("Lookup(beta) = %d,%v", id, ok)
	}
	if d.Len() != 2 {
		t.Fatalf("Len = %d, want 2", d.Len())
	}
}

func TestReaderBasic(t *testing.T) {
	input := `
# comment line
10 u v follows
11 v w mentions +
12 u v follows -

13 w u follows
`
	r := NewReader(strings.NewReader(input), NewDict(), NewDict())
	tuples, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != 4 {
		t.Fatalf("read %d tuples, want 4", len(tuples))
	}
	if tuples[0].TS != 10 || tuples[0].Op != Insert {
		t.Errorf("tuple 0 = %v", tuples[0])
	}
	if tuples[2].Op != Delete {
		t.Errorf("tuple 2 op = %v, want delete", tuples[2].Op)
	}
	// Dictionary encoding must be consistent: u appears as src of
	// tuples 0, 2 and dst of tuple 3.
	if tuples[0].Src != tuples[2].Src || tuples[0].Src != tuples[3].Dst {
		t.Error("vertex ids inconsistent across tuples")
	}
	if tuples[0].Label != tuples[2].Label || tuples[0].Label != tuples[3].Label {
		t.Error("label ids inconsistent across tuples")
	}
	if tuples[0].Label == tuples[1].Label {
		t.Error("distinct labels share an id")
	}
}

func TestReaderErrors(t *testing.T) {
	cases := []string{
		"abc u v follows",  // bad timestamp
		"10 u v",           // too few fields
		"10 u v l x y",     // too many fields
		"10 u v follows *", // bad op
	}
	for _, in := range cases {
		r := NewReader(strings.NewReader(in), NewDict(), NewDict())
		if _, err := r.Read(); err == nil || err == io.EOF {
			t.Errorf("input %q: want parse error, got %v", in, err)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	vd, ld := NewDict(), NewDict()
	in := []Tuple{
		{TS: 1, Src: VertexID(vd.ID("x")), Dst: VertexID(vd.ID("y")), Label: LabelID(ld.ID("knows"))},
		{TS: 2, Src: VertexID(vd.ID("y")), Dst: VertexID(vd.ID("z")), Label: LabelID(ld.ID("likes")), Op: Delete},
	}
	var buf bytes.Buffer
	w := NewWriter(&buf, vd, ld)
	for _, t2 := range in {
		if err := w.Write(t2); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf, vd, ld)
	out, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip length %d, want %d", len(out), len(in))
	}
	for i := range in {
		if in[i] != out[i] {
			t.Errorf("tuple %d: %v != %v", i, in[i], out[i])
		}
	}
}

func TestTupleString(t *testing.T) {
	tp := Tuple{TS: 5, Src: 1, Dst: 2, Label: 3, Op: Delete}
	if s := tp.String(); !strings.Contains(s, "-") || !strings.Contains(s, "5") {
		t.Errorf("String() = %q", s)
	}
	if Insert.String() != "+" || Delete.String() != "-" {
		t.Error("op strings wrong")
	}
}

func TestEdgeKey(t *testing.T) {
	tp := Tuple{TS: 5, Src: 1, Dst: 2, Label: 3}
	k := tp.Key()
	if k.Src != 1 || k.Dst != 2 || k.Label != 3 {
		t.Errorf("Key() = %+v", k)
	}
}
