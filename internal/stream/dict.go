package stream

import "fmt"

// Dict is a string interner assigning dense non-negative ids in
// insertion order. It is used to dictionary-encode vertex names and
// edge labels at the stream boundary so the engines operate on integer
// ids only.
type Dict struct {
	ids   map[string]int
	names []string
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{ids: make(map[string]int)}
}

// ID returns the id for name, assigning the next dense id on first use.
func (d *Dict) ID(name string) int {
	if id, ok := d.ids[name]; ok {
		return id
	}
	id := len(d.names)
	d.ids[name] = id
	d.names = append(d.names, name)
	return id
}

// Lookup returns the id for name without assigning one; ok is false if
// the name has never been seen.
func (d *Dict) Lookup(name string) (int, bool) {
	id, ok := d.ids[name]
	return id, ok
}

// Name returns the string for id, or "" if out of range.
func (d *Dict) Name(id int) string {
	if id < 0 || id >= len(d.names) {
		return ""
	}
	return d.names[id]
}

// Len returns the number of interned strings.
func (d *Dict) Len() int { return len(d.names) }

// Names returns the interned strings in id order. The returned slice
// is shared; callers must not modify it.
func (d *Dict) Names() []string { return d.names }

// Load replaces the dictionary contents with names (assigning ids in
// slice order). Entries already interned must form a prefix of names in
// the same order — ids are stable across a checkpoint/recovery cycle
// only if the dictionary grew deterministically — otherwise Load fails
// without modifying the dictionary.
func (d *Dict) Load(names []string) error {
	if len(d.names) > len(names) {
		return fmt.Errorf("stream: dict load: %d existing entries, only %d names", len(d.names), len(names))
	}
	for i, have := range d.names {
		if have != names[i] {
			return fmt.Errorf("stream: dict load: entry %d is %q, snapshot has %q", i, have, names[i])
		}
	}
	for _, name := range names[len(d.names):] {
		d.ID(name)
	}
	return nil
}
