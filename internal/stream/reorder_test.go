package stream

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func mkT(ts int64, src VertexID) Tuple {
	return Tuple{TS: ts, Src: src, Dst: src + 1, Label: 0}
}

func TestReorderInOrderPassThrough(t *testing.T) {
	o := NewReorder(0)
	for ts := int64(1); ts <= 5; ts++ {
		out, err := o.Offer(mkT(ts, 1))
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != 1 || out[0].TS != ts {
			t.Fatalf("ts %d: released %v", ts, out)
		}
	}
	if o.Pending() != 0 {
		t.Fatalf("pending = %d", o.Pending())
	}
}

func TestReorderBuffersWithinSlack(t *testing.T) {
	o := NewReorder(5)
	out, err := o.Offer(mkT(10, 1))
	if err != nil || len(out) != 0 {
		t.Fatalf("out=%v err=%v; nothing should be released before the watermark passes", out, err)
	}
	// Out-of-order tuple within slack.
	out, err = o.Offer(mkT(7, 2))
	if err != nil || len(out) != 0 {
		t.Fatalf("out=%v err=%v", out, err)
	}
	// Advancing to ts=13 moves the watermark to 8, releasing 7 only.
	out, err = o.Offer(mkT(13, 3))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0].TS != 7 || out[1].TS != 8 {
		// watermark = 8: releases ts 7 and... ts 8 does not exist;
		// recompute: buffered {10, 7, 13}, watermark 8 releases only 7.
		if len(out) != 1 || out[0].TS != 7 {
			t.Fatalf("released %v, want [ts=7]", out)
		}
	}
	// Flush drains the rest in order.
	rest := o.Flush()
	if len(rest) != 2 || rest[0].TS != 10 || rest[1].TS != 13 {
		t.Fatalf("flush = %v", rest)
	}
}

func TestReorderLateRejected(t *testing.T) {
	o := NewReorder(3)
	o.Offer(mkT(10, 1)) // watermark 7
	_, err := o.Offer(mkT(6, 2))
	var late *ErrLate
	if !errors.As(err, &late) {
		t.Fatalf("err = %v, want ErrLate", err)
	}
	if late.Watermark != 7 {
		t.Fatalf("watermark in error = %d", late.Watermark)
	}
	if o.Late() != 1 {
		t.Fatalf("Late() = %d", o.Late())
	}
	// Exactly-at-watermark is late too (released region is ts ≤ wm).
	if _, err := o.Offer(mkT(7, 3)); err == nil {
		t.Fatal("tuple at watermark accepted")
	}
}

func TestReorderStableForEqualTimestamps(t *testing.T) {
	o := NewReorder(4)
	o.Offer(Tuple{TS: 5, Src: 1})
	o.Offer(Tuple{TS: 5, Src: 2})
	o.Offer(Tuple{TS: 5, Src: 3})
	out, _ := o.Offer(Tuple{TS: 20, Src: 9})
	if len(out) != 3 {
		t.Fatalf("released %d tuples", len(out))
	}
	for i, want := range []VertexID{1, 2, 3} {
		if out[i].Src != want {
			t.Fatalf("release order %v, want arrival order", out)
		}
	}
}

// TestReorderProperty: for any input sequence with bounded disorder,
// the released sequence (plus flush) is a sorted permutation of the
// accepted tuples.
func TestReorderProperty(t *testing.T) {
	f := func(deltas []int8, slackSel uint8) bool {
		slack := int64(slackSel % 16)
		o := NewReorder(slack)
		var accepted, released []Tuple
		ts := int64(100)
		for i, d := range deltas {
			ts += int64(d % 8) // may go backwards
			tu := Tuple{TS: ts, Src: VertexID(i)}
			out, err := o.Offer(tu)
			if err == nil {
				accepted = append(accepted, tu)
			}
			released = append(released, out...)
		}
		released = append(released, o.Flush()...)
		if len(released) != len(accepted) {
			return false
		}
		// Released sequence must be sorted.
		for i := 1; i < len(released); i++ {
			if released[i].TS < released[i-1].TS {
				return false
			}
		}
		// And be a permutation of accepted (multiset compare by Src,
		// which is unique per tuple here).
		seen := map[VertexID]bool{}
		for _, tu := range released {
			if seen[tu.Src] {
				return false
			}
			seen[tu.Src] = true
		}
		for _, tu := range accepted {
			if !seen[tu.Src] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(12))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestReorderNegativeSlack(t *testing.T) {
	o := NewReorder(-5)
	if out, err := o.Offer(mkT(1, 1)); err != nil || len(out) != 1 {
		t.Fatalf("negative slack should behave as zero: out=%v err=%v", out, err)
	}
}
