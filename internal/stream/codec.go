package stream

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Text stream format: one tuple per line,
//
//	<ts> <src> <dst> <label> [+|-]
//
// where ts is a decimal integer, src/dst/label are arbitrary
// whitespace-free strings, and the optional op defaults to '+'.
// Lines starting with '#' and blank lines are ignored.

// Reader decodes a text-encoded tuple stream, dictionary-encoding
// vertices and labels on the fly.
type Reader struct {
	s        *bufio.Scanner
	vertices *Dict
	labels   *Dict
	line     int
}

// NewReader returns a Reader over r using the given dictionaries.
// Passing shared dictionaries lets several stream files agree on ids.
func NewReader(r io.Reader, vertices, labels *Dict) *Reader {
	s := bufio.NewScanner(r)
	s.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	return &Reader{s: s, vertices: vertices, labels: labels}
}

// Vertices returns the vertex dictionary.
func (r *Reader) Vertices() *Dict { return r.vertices }

// Labels returns the label dictionary.
func (r *Reader) Labels() *Dict { return r.labels }

// Read returns the next tuple, or io.EOF at end of stream.
func (r *Reader) Read() (Tuple, error) {
	for r.s.Scan() {
		r.line++
		line := strings.TrimSpace(r.s.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		t, err := r.parse(line)
		if err != nil {
			return Tuple{}, fmt.Errorf("stream: line %d: %w", r.line, err)
		}
		return t, nil
	}
	if err := r.s.Err(); err != nil {
		return Tuple{}, err
	}
	return Tuple{}, io.EOF
}

func (r *Reader) parse(line string) (Tuple, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields) > 5 {
		return Tuple{}, fmt.Errorf("want 4 or 5 fields, got %d", len(fields))
	}
	ts, err := strconv.ParseInt(fields[0], 10, 64)
	if err != nil {
		return Tuple{}, fmt.Errorf("bad timestamp %q: %v", fields[0], err)
	}
	op := Insert
	if len(fields) == 5 {
		switch fields[4] {
		case "+":
			op = Insert
		case "-":
			op = Delete
		default:
			return Tuple{}, fmt.Errorf("bad op %q (want + or -)", fields[4])
		}
	}
	return Tuple{
		TS:    ts,
		Src:   VertexID(r.vertices.ID(fields[1])),
		Dst:   VertexID(r.vertices.ID(fields[2])),
		Label: LabelID(r.labels.ID(fields[3])),
		Op:    op,
	}, nil
}

// ReadAll reads the remaining tuples.
func (r *Reader) ReadAll() ([]Tuple, error) {
	var out []Tuple
	for {
		t, err := r.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, t)
	}
}

// Writer encodes tuples in the text format.
type Writer struct {
	w        *bufio.Writer
	vertices *Dict
	labels   *Dict
}

// NewWriter returns a Writer; the dictionaries translate ids back to
// names.
func NewWriter(w io.Writer, vertices, labels *Dict) *Writer {
	return &Writer{w: bufio.NewWriter(w), vertices: vertices, labels: labels}
}

// Write encodes one tuple.
func (w *Writer) Write(t Tuple) error {
	op := ""
	if t.Op == Delete {
		op = " -"
	}
	_, err := fmt.Fprintf(w.w, "%d %s %s %s%s\n",
		t.TS, w.vertices.Name(int(t.Src)), w.vertices.Name(int(t.Dst)),
		w.labels.Name(int(t.Label)), op)
	return err
}

// Flush flushes buffered output.
func (w *Writer) Flush() error { return w.w.Flush() }
