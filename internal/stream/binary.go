package stream

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Binary stream format: a compact delta-encoded representation for
// large generated streams (the text codec costs ~10× the space and
// parse time). Layout:
//
//	magic   "SRPQ"            4 bytes
//	version uint8             currently 1
//	labels  uvarint count, then length-prefixed label names (id order)
//	tuples  repeated records:
//	        flags   uint8     bit0: op (1 = delete)
//	        dts     uvarint   timestamp delta from previous tuple
//	        src     uvarint   vertex id
//	        dst     uvarint   vertex id
//	        label   uvarint   label id
//
// Vertices are numeric ids (the binary format is intended for
// generated datasets, which are already dictionary-encoded).

const binaryMagic = "SRPQ"

// binaryVersion is the current format version.
const binaryVersion = 1

// BinaryWriter encodes tuples in the binary stream format.
type BinaryWriter struct {
	w      *bufio.Writer
	lastTS int64
	opened bool
	buf    [binary.MaxVarintLen64]byte
}

// NewBinaryWriter writes a header with the label dictionary and
// returns a writer for the tuple section.
func NewBinaryWriter(w io.Writer, labels []string) (*BinaryWriter, error) {
	bw := &BinaryWriter{w: bufio.NewWriter(w)}
	if _, err := bw.w.WriteString(binaryMagic); err != nil {
		return nil, err
	}
	if err := bw.w.WriteByte(binaryVersion); err != nil {
		return nil, err
	}
	bw.writeUvarint(uint64(len(labels)))
	for _, l := range labels {
		bw.writeUvarint(uint64(len(l)))
		if _, err := bw.w.WriteString(l); err != nil {
			return nil, err
		}
	}
	return bw, nil
}

func (bw *BinaryWriter) writeUvarint(v uint64) {
	n := binary.PutUvarint(bw.buf[:], v)
	bw.w.Write(bw.buf[:n])
}

// Write encodes one tuple. Timestamps must be non-decreasing.
func (bw *BinaryWriter) Write(t Tuple) error {
	if bw.opened && t.TS < bw.lastTS {
		return fmt.Errorf("stream: binary writer requires non-decreasing timestamps (%d after %d)", t.TS, bw.lastTS)
	}
	var flags byte
	if t.Op == Delete {
		flags |= 1
	}
	if err := bw.w.WriteByte(flags); err != nil {
		return err
	}
	delta := t.TS - bw.lastTS
	if !bw.opened {
		delta = t.TS
		bw.opened = true
	}
	bw.lastTS = t.TS
	bw.writeUvarint(uint64(delta))
	bw.writeUvarint(uint64(t.Src))
	bw.writeUvarint(uint64(t.Dst))
	bw.writeUvarint(uint64(uint32(t.Label)))
	return nil
}

// Flush flushes buffered output.
func (bw *BinaryWriter) Flush() error { return bw.w.Flush() }

// BinaryReader decodes the binary stream format.
type BinaryReader struct {
	r      *bufio.Reader
	labels []string
	lastTS int64
	opened bool
}

// NewBinaryReader validates the header and returns a reader positioned
// at the first tuple.
func NewBinaryReader(r io.Reader) (*BinaryReader, error) {
	br := &BinaryReader{r: bufio.NewReader(r)}
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br.r, magic); err != nil {
		return nil, fmt.Errorf("stream: reading magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("stream: bad magic %q", magic)
	}
	version, err := br.r.ReadByte()
	if err != nil {
		return nil, err
	}
	if version != binaryVersion {
		return nil, fmt.Errorf("stream: unsupported version %d", version)
	}
	n, err := binary.ReadUvarint(br.r)
	if err != nil {
		return nil, err
	}
	const maxLabels = 1 << 20
	if n > maxLabels {
		return nil, fmt.Errorf("stream: implausible label count %d", n)
	}
	br.labels = make([]string, n)
	for i := range br.labels {
		ln, err := binary.ReadUvarint(br.r)
		if err != nil {
			return nil, err
		}
		if ln > 4096 {
			return nil, fmt.Errorf("stream: implausible label length %d", ln)
		}
		buf := make([]byte, ln)
		if _, err := io.ReadFull(br.r, buf); err != nil {
			return nil, err
		}
		br.labels[i] = string(buf)
	}
	return br, nil
}

// Labels returns the label dictionary from the header, in id order.
func (br *BinaryReader) Labels() []string { return br.labels }

// Read returns the next tuple or io.EOF.
func (br *BinaryReader) Read() (Tuple, error) {
	flags, err := br.r.ReadByte()
	if err != nil {
		return Tuple{}, err // io.EOF at a record boundary is clean EOF
	}
	delta, err := binary.ReadUvarint(br.r)
	if err != nil {
		return Tuple{}, unexpectedEOF(err)
	}
	src, err := binary.ReadUvarint(br.r)
	if err != nil {
		return Tuple{}, unexpectedEOF(err)
	}
	dst, err := binary.ReadUvarint(br.r)
	if err != nil {
		return Tuple{}, unexpectedEOF(err)
	}
	label, err := binary.ReadUvarint(br.r)
	if err != nil {
		return Tuple{}, unexpectedEOF(err)
	}
	if !br.opened {
		br.lastTS = int64(delta)
		br.opened = true
	} else {
		br.lastTS += int64(delta)
	}
	op := Insert
	if flags&1 != 0 {
		op = Delete
	}
	return Tuple{
		TS:    br.lastTS,
		Src:   VertexID(src),
		Dst:   VertexID(dst),
		Label: LabelID(uint32(label)),
		Op:    op,
	}, nil
}

// ReadAll reads the remaining tuples.
func (br *BinaryReader) ReadAll() ([]Tuple, error) {
	var out []Tuple
	for {
		t, err := br.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, t)
	}
}

func unexpectedEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}
