package stream

import (
	"container/heap"
	"fmt"
)

// Reorder is a bounded out-of-order buffer. The paper assumes tuples
// arrive in source-timestamp order and leaves out-of-order delivery as
// future work; Reorder closes that gap at the ingestion boundary with
// the standard slack/watermark approach: tuples are buffered and
// released in timestamp order once the watermark (max seen timestamp
// minus the slack) passes them. A tuple arriving later than the slack
// allows is late and rejected.
//
// With slack 0 the buffer degenerates to strict-order enforcement.
type Reorder struct {
	slack     int64
	watermark int64 // max timestamp seen - slack
	started   bool
	heap      tupleHeap
	late      int64
}

// NewReorder returns a buffer tolerating disorder up to slack time
// units.
func NewReorder(slack int64) *Reorder {
	if slack < 0 {
		slack = 0
	}
	return &Reorder{slack: slack, watermark: -1 << 62}
}

// ErrLate is returned (wrapped) for tuples older than the watermark.
type ErrLate struct {
	Tuple     Tuple
	Watermark int64
}

func (e *ErrLate) Error() string {
	return fmt.Sprintf("stream: late tuple %v behind watermark %d", e.Tuple, e.Watermark)
}

// Offer inserts a tuple and returns the tuples released by the
// advancing watermark, in non-decreasing timestamp order. Tuples with
// equal timestamps are released in arrival order. A late tuple returns
// an *ErrLate and releases nothing.
func (o *Reorder) Offer(t Tuple) ([]Tuple, error) {
	if o.started && t.TS <= o.watermark {
		o.late++
		return nil, &ErrLate{Tuple: t, Watermark: o.watermark}
	}
	o.started = true
	heap.Push(&o.heap, tupleEntry{t: t, seq: o.heap.nextSeq()})
	if wm := t.TS - o.slack; wm > o.watermark {
		o.watermark = wm
	}
	return o.release(), nil
}

// Flush releases every buffered tuple regardless of the watermark
// (end-of-stream).
func (o *Reorder) Flush() []Tuple {
	var out []Tuple
	for o.heap.Len() > 0 {
		out = append(out, heap.Pop(&o.heap).(tupleEntry).t)
	}
	return out
}

// Pending returns the number of buffered tuples.
func (o *Reorder) Pending() int { return o.heap.Len() }

// Late returns the number of rejected late tuples.
func (o *Reorder) Late() int64 { return o.late }

// Watermark returns the current watermark: all released tuples have
// ts ≤ watermark, all future tuples must have ts > watermark.
func (o *Reorder) Watermark() int64 { return o.watermark }

func (o *Reorder) release() []Tuple {
	var out []Tuple
	for o.heap.Len() > 0 && o.heap.entries[0].t.TS <= o.watermark {
		out = append(out, heap.Pop(&o.heap).(tupleEntry).t)
	}
	return out
}

type tupleEntry struct {
	t   Tuple
	seq uint64
}

type tupleHeap struct {
	entries []tupleEntry
	seq     uint64
}

func (h *tupleHeap) nextSeq() uint64 { h.seq++; return h.seq }

func (h *tupleHeap) Len() int { return len(h.entries) }

func (h *tupleHeap) Less(i, j int) bool {
	if h.entries[i].t.TS != h.entries[j].t.TS {
		return h.entries[i].t.TS < h.entries[j].t.TS
	}
	return h.entries[i].seq < h.entries[j].seq
}

func (h *tupleHeap) Swap(i, j int) { h.entries[i], h.entries[j] = h.entries[j], h.entries[i] }

func (h *tupleHeap) Push(x any) { h.entries = append(h.entries, x.(tupleEntry)) }

func (h *tupleHeap) Pop() any {
	old := h.entries
	n := len(old)
	e := old[n-1]
	h.entries = old[:n-1]
	return e
}
