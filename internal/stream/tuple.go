// Package stream defines the streaming-graph data model of the paper
// (Definitions 2–3): streaming graph tuples (sgts), dictionary encoding
// of vertices and labels, and a line-oriented text codec for stream
// files.
package stream

import "fmt"

// Op is the type of a streaming graph tuple: insertion or explicit
// deletion (the "negative tuples" of §3.2).
type Op int8

const (
	// Insert adds an edge to the window (op '+' in the paper).
	Insert Op = iota
	// Delete explicitly removes a previously inserted edge (op '−').
	Delete
)

func (o Op) String() string {
	if o == Delete {
		return "-"
	}
	return "+"
}

// VertexID is a dictionary-encoded vertex identifier.
type VertexID uint32

// LabelID is a dictionary-encoded edge label.
type LabelID int32

// Tuple is a streaming graph tuple (τ, e, l, op): a timestamped,
// labeled, directed edge with an operation type (Definition 2).
// Timestamps are application timestamps in arbitrary integer time
// units, assigned by the source in non-decreasing order.
type Tuple struct {
	TS    int64
	Src   VertexID
	Dst   VertexID
	Label LabelID
	Op    Op
}

func (t Tuple) String() string {
	return fmt.Sprintf("(%d, %d->%d, l%d, %s)", t.TS, t.Src, t.Dst, t.Label, t.Op)
}

// EdgeKey identifies an edge by endpoints and label, independent of
// timestamp. Re-insertions of the same (src,dst,label) refresh the
// stored timestamp; deletions remove the key.
type EdgeKey struct {
	Src   VertexID
	Dst   VertexID
	Label LabelID
}

// Key returns the tuple's edge key.
func (t Tuple) Key() EdgeKey { return EdgeKey{Src: t.Src, Dst: t.Dst, Label: t.Label} }
