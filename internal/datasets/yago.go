package datasets

import (
	"fmt"
	"math/rand"

	"streamrpq/internal/stream"
)

// YagoConfig parameterizes the Yago2s-like RDF stream generator.
type YagoConfig struct {
	Edges        int
	Vertices     int
	NumLabels    int     // ~100 in Yago2s
	LabelSkew    float64 // Zipf exponent of label frequencies
	EdgesPerTick int     // fixed timestamp-assignment rate (§5.1.2)
	Seed         int64
}

// DefaultYago returns the configuration used by the experiment
// drivers.
func DefaultYago(edges int) YagoConfig {
	return YagoConfig{
		Edges:        edges,
		Vertices:     max(256, edges/4), // sparse: few edges per subject
		NumLabels:    100,
		LabelSkew:    1.6,
		EdgesPerTick: 16,
		Seed:         3,
	}
}

// yagoLabelNames returns a Yago2s-flavored label vocabulary; the first
// entries are the predicates Table 3 binds queries to, the remainder
// are numbered property names.
func yagoLabelNames(n int) []string {
	base := []string{
		"happenedIn", "hasCapital", "participatedIn", "dealtWith",
		"isLocatedIn", "hasChild", "influences", "owns", "livesIn",
		"actedIn", "created", "directed", "diedIn", "wasBornIn",
		"worksAt", "playsFor", "isMarriedTo", "graduatedFrom",
		"isCitizenOf", "hasWonPrize",
	}
	out := make([]string, 0, n)
	out = append(out, base[:min(len(base), n)]...)
	for i := len(out); i < n; i++ {
		out = append(out, fmt.Sprintf("property%02d", i))
	}
	return out
}

// Yago generates a Yago2s-like RDF stream: a sparse, heterogeneous
// graph over ~100 predicates with Zipf-skewed frequencies. Timestamps
// are assigned at a fixed rate ("a monotonically non-decreasing
// timestamp to each RDF triple at a fixed rate", §5.1.2), so windows
// hold a fixed number of edges and the window-size sweep of Figure 6
// is well defined.
func Yago(cfg YagoConfig) *Dataset {
	rng := rand.New(rand.NewSource(cfg.Seed))
	zl := rand.NewZipf(rng, cfg.LabelSkew, 1, uint64(cfg.NumLabels-1))
	zv := newZipfVertex(rng, cfg.Vertices, 1.2)

	d := &Dataset{Name: "Yago", Labels: yagoLabelNames(cfg.NumLabels)}
	d.Tuples = make([]stream.Tuple, 0, cfg.Edges)
	ts := int64(0)
	for i := 0; i < cfg.Edges; i++ {
		if cfg.EdgesPerTick > 0 && i%cfg.EdgesPerTick == 0 {
			ts++
		}
		src, dst := zv.draw(), zv.draw()
		if src == dst {
			dst = stream.VertexID((int(dst) + 1) % cfg.Vertices)
		}
		d.Tuples = append(d.Tuples, stream.Tuple{
			TS:    ts,
			Src:   src,
			Dst:   dst,
			Label: stream.LabelID(zl.Uint64()),
		})
	}
	return d
}
