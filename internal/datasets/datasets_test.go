package datasets

import (
	"testing"

	"streamrpq/internal/automaton"
	"streamrpq/internal/stream"
)

func checkMonotone(t *testing.T, tuples []stream.Tuple) {
	t.Helper()
	last := int64(-1 << 62)
	for i, tu := range tuples {
		if tu.TS < last {
			t.Fatalf("tuple %d: timestamp %d < %d", i, tu.TS, last)
		}
		last = tu.TS
	}
}

func TestSOGenerator(t *testing.T) {
	d := SO(DefaultSO(5000))
	if len(d.Tuples) != 5000 {
		t.Fatalf("generated %d tuples, want 5000", len(d.Tuples))
	}
	checkMonotone(t, d.Tuples)
	if len(d.Labels) != 3 {
		t.Fatalf("SO must have 3 labels, got %d", len(d.Labels))
	}
	// Every label must occur (broad queries cover all edges on SO).
	seen := map[stream.LabelID]int{}
	for _, tu := range d.Tuples {
		seen[tu.Label]++
		if int(tu.Label) >= len(d.Labels) {
			t.Fatalf("label id %d out of range", tu.Label)
		}
	}
	for l := 0; l < 3; l++ {
		if seen[stream.LabelID(l)] == 0 {
			t.Errorf("label %d never generated", l)
		}
	}
	// Cyclicity: reply-backs must create a meaningful number of
	// reciprocated vertex pairs.
	fwd := map[[2]stream.VertexID]bool{}
	recip := 0
	for _, tu := range d.Tuples {
		if fwd[[2]stream.VertexID{tu.Dst, tu.Src}] {
			recip++
		}
		fwd[[2]stream.VertexID{tu.Src, tu.Dst}] = true
	}
	if recip < len(d.Tuples)/10 {
		t.Errorf("only %d reciprocated edges in %d — SO should be highly cyclic", recip, len(d.Tuples))
	}
}

func TestSODeterministic(t *testing.T) {
	a := SO(DefaultSO(1000))
	b := SO(DefaultSO(1000))
	if len(a.Tuples) != len(b.Tuples) {
		t.Fatal("non-deterministic length")
	}
	for i := range a.Tuples {
		if a.Tuples[i] != b.Tuples[i] {
			t.Fatalf("tuple %d differs: %v vs %v", i, a.Tuples[i], b.Tuples[i])
		}
	}
}

func TestLDBCGenerator(t *testing.T) {
	d := LDBC(DefaultLDBC(5000))
	if len(d.Tuples) == 0 || len(d.Tuples) > 5000 {
		t.Fatalf("generated %d tuples", len(d.Tuples))
	}
	checkMonotone(t, d.Tuples)
	if len(d.Labels) != 8 {
		t.Fatalf("LDBC must have 8 labels, got %d", len(d.Labels))
	}
	counts := map[stream.LabelID]int{}
	for _, tu := range d.Tuples {
		counts[tu.Label]++
	}
	// The two recursive relations must be present and frequent.
	if counts[ldbcKnows] == 0 || counts[ldbcReplyOf] == 0 {
		t.Fatalf("knows=%d replyOf=%d; both must occur", counts[ldbcKnows], counts[ldbcReplyOf])
	}
	// replyOf chains: replies reference existing messages, so there
	// must exist paths replyOf/replyOf (reply depth ≥ 2).
	parents := map[stream.VertexID]stream.VertexID{}
	depth2 := 0
	for _, tu := range d.Tuples {
		if tu.Label == ldbcReplyOf {
			if _, ok := parents[tu.Dst]; ok {
				depth2++
			}
			parents[tu.Src] = tu.Dst
		}
	}
	if depth2 == 0 {
		t.Error("no replyOf chains of depth 2 — recursion untestable")
	}
}

func TestYagoGenerator(t *testing.T) {
	d := Yago(DefaultYago(5000))
	if len(d.Tuples) != 5000 {
		t.Fatalf("generated %d tuples", len(d.Tuples))
	}
	checkMonotone(t, d.Tuples)
	if len(d.Labels) != 100 {
		t.Fatalf("Yago must have 100 labels, got %d", len(d.Labels))
	}
	// Table 3 bindings must be present by name.
	for _, name := range []string{"happenedIn", "hasCapital", "participatedIn", "dealtWith"} {
		if d.LabelID(name) < 0 {
			t.Errorf("label %q missing", name)
		}
	}
	// Fixed-rate timestamps: equal numbers of edges per tick.
	perTick := map[int64]int{}
	lastTick := int64(0)
	for _, tu := range d.Tuples {
		perTick[tu.TS]++
		if tu.TS > lastTick {
			lastTick = tu.TS
		}
	}
	for ts, n := range perTick {
		if n != 16 && ts != lastTick { // the final tick may be partial
			t.Fatalf("tick %d has %d edges, want 16 (fixed rate)", ts, n)
		}
	}
	// Zipf label skew: the most frequent label should dominate.
	counts := map[stream.LabelID]int{}
	for _, tu := range d.Tuples {
		counts[tu.Label]++
	}
	if counts[0] < len(d.Tuples)/10 {
		t.Errorf("label skew too flat: label 0 has %d of %d", counts[0], len(d.Tuples))
	}
}

func TestWithDeletions(t *testing.T) {
	d := SO(DefaultSO(4000))
	dd := d.WithDeletions(0.10, 7)
	if len(dd.Tuples) != len(d.Tuples) {
		t.Fatalf("deletion stream length %d, want %d", len(dd.Tuples), len(d.Tuples))
	}
	checkMonotone(t, dd.Tuples)
	dels := 0
	inserted := map[stream.EdgeKey]bool{}
	for _, tu := range dd.Tuples {
		if tu.Op == stream.Delete {
			dels++
			if !inserted[tu.Key()] {
				t.Fatalf("deletion of never-inserted edge %v", tu)
			}
		} else {
			inserted[tu.Key()] = true
		}
	}
	ratio := float64(dels) / float64(len(dd.Tuples))
	if ratio < 0.05 || ratio > 0.15 {
		t.Errorf("deletion ratio %.3f, want ≈0.10", ratio)
	}
	// Zero ratio must be a pure copy.
	if zero := d.WithDeletions(0, 7); len(zero.Tuples) != len(d.Tuples) {
		t.Error("zero-ratio deletion stream differs in length")
	}
}

func TestGMarkGenerator(t *testing.T) {
	d := GMark(DefaultGMark(5000))
	if len(d.Tuples) != 5000 {
		t.Fatalf("generated %d tuples", len(d.Tuples))
	}
	checkMonotone(t, d.Tuples)
	if len(d.Labels) != 8 {
		t.Fatalf("labels = %d, want 8", len(d.Labels))
	}
}

func TestGMarkQueries(t *testing.T) {
	labels := []string{"p0", "p1", "p2", "p3"}
	qs := GMarkQueries(100, labels, 2, 20, 42)
	if len(qs) != 100 {
		t.Fatalf("generated %d queries, want 100", len(qs))
	}
	for _, q := range qs {
		if q.Size < 2 || q.Size > 21 {
			t.Errorf("%s: size %d outside [2,21]: %s", q.Name, q.Size, q.Expr)
		}
		// Every query must compile to a DFA.
		d := automaton.Compile(q.Expr)
		if d.NumStates() == 0 {
			t.Errorf("%s: empty DFA", q.Name)
		}
	}
	// Determinism.
	qs2 := GMarkQueries(100, labels, 2, 20, 42)
	for i := range qs {
		if qs[i].Expr.String() != qs2[i].Expr.String() {
			t.Fatalf("query %d not deterministic", i)
		}
	}
	// Size diversity: at least 10 distinct sizes.
	sizes := map[int]bool{}
	for _, q := range qs {
		sizes[q.Size] = true
	}
	if len(sizes) < 10 {
		t.Errorf("only %d distinct sizes", len(sizes))
	}
}

func TestNumVertices(t *testing.T) {
	d := &Dataset{Tuples: []stream.Tuple{
		{Src: 1, Dst: 2}, {Src: 2, Dst: 3}, {Src: 1, Dst: 3},
	}}
	if n := d.NumVertices(); n != 3 {
		t.Fatalf("NumVertices = %d, want 3", n)
	}
}
