package datasets

import (
	"fmt"
	"math/rand"

	"streamrpq/internal/pattern"
	"streamrpq/internal/stream"
)

// GMarkConfig parameterizes the gMark-style schema-driven generator
// (§5.1.2: "a pre-configured schema that mimics the characteristics of
// LDBC SNB").
type GMarkConfig struct {
	Edges        int
	Vertices     int
	NumLabels    int
	EdgesPerTick int
	Seed         int64
}

// DefaultGMark returns the configuration used by the experiment
// drivers.
func DefaultGMark(edges int) GMarkConfig {
	return GMarkConfig{
		Edges:        edges,
		Vertices:     max(128, edges/8),
		NumLabels:    8,
		EdgesPerTick: 16,
		Seed:         4,
	}
}

// GMark generates a schema-driven graph stream: each label has its own
// in/out degree profile (hub-like, uniform, or chain-like), mimicking
// gMark's per-predicate degree distributions, and timestamps are
// assigned at a fixed rate like the paper does for static gMark output.
func GMark(cfg GMarkConfig) *Dataset {
	rng := rand.New(rand.NewSource(cfg.Seed))
	labels := make([]string, cfg.NumLabels)
	for i := range labels {
		labels[i] = fmt.Sprintf("p%d", i)
	}
	// Per-label endpoint distributions: alternate between skewed and
	// uniform source/target populations.
	type profile struct {
		src *zipfVertex
		dst *zipfVertex
	}
	profiles := make([]profile, cfg.NumLabels)
	for i := range profiles {
		var p profile
		if i%2 == 0 {
			p.src = newZipfVertex(rng, cfg.Vertices, 1.5)
		} else {
			p.src = newZipfVertex(rng, cfg.Vertices, 1.05)
		}
		if i%3 == 0 {
			p.dst = newZipfVertex(rng, cfg.Vertices, 1.5)
		} else {
			p.dst = newZipfVertex(rng, cfg.Vertices, 1.05)
		}
		profiles[i] = p
	}
	zlabel := rand.NewZipf(rng, 1.2, 1, uint64(cfg.NumLabels-1))

	d := &Dataset{Name: "gMark", Labels: labels}
	d.Tuples = make([]stream.Tuple, 0, cfg.Edges)
	ts := int64(0)
	for i := 0; i < cfg.Edges; i++ {
		if cfg.EdgesPerTick > 0 && i%cfg.EdgesPerTick == 0 {
			ts++
		}
		l := int(zlabel.Uint64())
		src := profiles[l].src.draw()
		dst := profiles[l].dst.draw()
		if src == dst {
			dst = stream.VertexID((int(dst) + 1) % cfg.Vertices)
		}
		d.Tuples = append(d.Tuples, stream.Tuple{
			TS: ts, Src: src, Dst: dst, Label: stream.LabelID(l),
		})
	}
	return d
}

// GMarkQuery is one synthetic RPQ of the sensitivity workload.
type GMarkQuery struct {
	Name string
	Expr *pattern.Expr
	Size int // |Q| per §5.1.2
}

// GMarkQueries generates n synthetic RPQs following §5.1.2: "the query
// size ranges from 2 to 20 … each RPQ is formulated by grouping labels
// into concatenations and alternations of size up to 3 where each
// group has a 50% probability of having * and +". Sizes are spread
// uniformly over [minSize, maxSize].
func GMarkQueries(n int, labels []string, minSize, maxSize int, seed int64) []GMarkQuery {
	rng := rand.New(rand.NewSource(seed))
	out := make([]GMarkQuery, 0, n)
	for i := 0; i < n; i++ {
		target := minSize
		if maxSize > minSize {
			target += rng.Intn(maxSize - minSize + 1)
		}
		e := randomRPQ(rng, labels, target)
		out = append(out, GMarkQuery{
			Name: fmt.Sprintf("G%03d", i),
			Expr: e,
			Size: e.Size(),
		})
	}
	return out
}

// randomRPQ builds an expression of size ≈ target (within one unit:
// closing a group may overshoot by its star).
func randomRPQ(rng *rand.Rand, labels []string, target int) *pattern.Expr {
	var groups []*pattern.Expr
	budget := target
	for budget > 0 {
		// Group of 1..3 labels, concatenated or alternated.
		gsize := 1 + rng.Intn(3)
		if gsize > budget {
			gsize = budget
		}
		members := make([]*pattern.Expr, gsize)
		for i := range members {
			members[i] = pattern.Label(labels[rng.Intn(len(labels))])
		}
		var g *pattern.Expr
		if gsize == 1 {
			g = members[0]
		} else if rng.Intn(2) == 0 {
			g = pattern.Concat(members...)
		} else {
			g = pattern.Alt(members...)
		}
		budget -= gsize
		// 50% probability of a closure, if the budget allows it.
		if budget > 0 && rng.Intn(2) == 0 {
			if rng.Intn(2) == 0 {
				g = pattern.Star(g)
			} else {
				g = pattern.Plus(g)
			}
			budget--
		}
		groups = append(groups, g)
	}
	return pattern.Concat(groups...)
}
