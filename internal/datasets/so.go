package datasets

import (
	"math/rand"

	"streamrpq/internal/stream"
)

// SOLabels are the three interaction types of the Stackoverflow
// temporal graph [Paranjape et al. 2017]: answer-to-question,
// comment-to-answer and comment-to-question.
var SOLabels = []string{"a2q", "c2a", "c2q"}

// SOConfig parameterizes the Stackoverflow-like generator.
type SOConfig struct {
	Edges         int     // number of tuples to generate
	Vertices      int     // size of the user population
	EdgesPerTick  int     // arrival rate: edges sharing one timestamp unit
	Skew          float64 // Zipf exponent of user activity (>1)
	ReplyBackProb float64 // probability an edge answers back a recent edge (cycles)
	Seed          int64
}

// DefaultSO returns the configuration used by the experiment drivers,
// scaled by the given number of edges.
func DefaultSO(edges int) SOConfig {
	return SOConfig{
		Edges:         edges,
		Vertices:      max(64, edges/30),
		EdgesPerTick:  16,
		Skew:          1.4,
		ReplyBackProb: 0.35,
		Seed:          1,
	}
}

// SO generates a Stackoverflow-like stream: a single vertex type, three
// labels covering every edge, Zipf-skewed user activity and a high
// reply-back rate, which makes the graph dense and highly cyclic — the
// paper's most challenging workload (its label density means broad
// queries match every edge).
func SO(cfg SOConfig) *Dataset {
	rng := rand.New(rand.NewSource(cfg.Seed))
	zv := newZipfVertex(rng, cfg.Vertices, cfg.Skew)

	d := &Dataset{Name: "SO", Labels: SOLabels}
	d.Tuples = make([]stream.Tuple, 0, cfg.Edges)

	// recent holds a sliding sample of recent edges for reply-backs.
	recent := make([]stream.Tuple, 0, 1024)
	ts := int64(0)
	for i := 0; i < cfg.Edges; i++ {
		if cfg.EdgesPerTick > 0 && i%cfg.EdgesPerTick == 0 {
			ts++
		}
		var src, dst stream.VertexID
		if len(recent) > 0 && rng.Float64() < cfg.ReplyBackProb {
			// Answer back to the source of a recent interaction:
			// creates 2-cycles and longer feedback loops.
			prev := recent[rng.Intn(len(recent))]
			src, dst = prev.Dst, prev.Src
		} else {
			src, dst = zv.draw(), zv.draw()
			for dst == src {
				dst = zv.draw()
			}
		}
		t := stream.Tuple{
			TS:    ts,
			Src:   src,
			Dst:   dst,
			Label: stream.LabelID(rng.Intn(len(SOLabels))),
		}
		d.Tuples = append(d.Tuples, t)
		if len(recent) < cap(recent) {
			recent = append(recent, t)
		} else {
			recent[rng.Intn(len(recent))] = t
		}
	}
	return d
}
