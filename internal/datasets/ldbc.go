package datasets

import (
	"math/rand"

	"streamrpq/internal/stream"
)

// LDBCLabels are the 8 interaction types of the LDBC SNB update
// stream modeled by the generator. Only knows (person–person) and
// replyOf (comment–message) are recursive relations; the rest connect
// different vertex types, so Kleene closures over them are trivial —
// exactly the property that excludes Q4, Q8, Q9 and Q10 on this graph
// (§5.1.2 / Figure 4(b)).
var LDBCLabels = []string{
	"knows", "replyOf", "hasCreator", "likes",
	"hasTag", "hasModerator", "containerOf", "hasMember",
}

// Label ids in LDBCLabels order.
const (
	ldbcKnows = iota
	ldbcReplyOf
	ldbcHasCreator
	ldbcLikes
	ldbcHasTag
	ldbcHasModerator
	ldbcContainerOf
	ldbcHasMember
)

// LDBCConfig parameterizes the social-network stream generator.
type LDBCConfig struct {
	Edges        int
	Persons      int
	EdgesPerTick int
	Seed         int64
}

// DefaultLDBC returns the configuration used by the experiment
// drivers.
func DefaultLDBC(edges int) LDBCConfig {
	return LDBCConfig{
		Edges:        edges,
		Persons:      max(64, edges/40),
		EdgesPerTick: 16,
		Seed:         2,
	}
}

// LDBC generates an LDBC-SNB-like update stream. Vertex id space is
// typed by range: persons, then forums/tags, then messages (posts and
// comments), mirroring the heterogeneous schema of the benchmark.
// Messages form reply trees (replyOf chains), persons form a knows
// network with triadic closure, and the remaining labels attach
// messages, tags and forums to persons.
func LDBC(cfg LDBCConfig) *Dataset {
	rng := rand.New(rand.NewSource(cfg.Seed))
	persons := cfg.Persons
	forums := persons / 4
	if forums < 4 {
		forums = 4
	}

	d := &Dataset{Name: "LDBC", Labels: LDBCLabels}
	d.Tuples = make([]stream.Tuple, 0, cfg.Edges)

	personID := func(i int) stream.VertexID { return stream.VertexID(i) }
	forumID := func(i int) stream.VertexID { return stream.VertexID(persons + i) }
	nextMessage := persons + forums // messages allocated incrementally

	pz := newZipfVertex(rng, persons, 1.3)

	// messages records (message vertex, creator, depth) so replies can
	// chain; bounded sample.
	type msg struct {
		id      stream.VertexID
		creator stream.VertexID
	}
	messages := make([]msg, 0, 4096)

	// knowsAdj is a bounded sample of knows edges for triadic closure.
	knowsAdj := make([]struct{ a, b stream.VertexID }, 0, 4096)

	ts := int64(0)
	emit := func(src, dst stream.VertexID, label stream.LabelID) {
		d.Tuples = append(d.Tuples, stream.Tuple{TS: ts, Src: src, Dst: dst, Label: label})
	}
	for i := 0; i < cfg.Edges; i++ {
		if cfg.EdgesPerTick > 0 && i%cfg.EdgesPerTick == 0 {
			ts++
		}
		switch r := rng.Float64(); {
		case r < 0.25: // knows: person-person, with triadic closure
			var a, b stream.VertexID
			if len(knowsAdj) > 8 && rng.Float64() < 0.4 {
				// close a triangle: a knows b, b knows c => a knows c
				e1 := knowsAdj[rng.Intn(len(knowsAdj))]
				e2 := knowsAdj[rng.Intn(len(knowsAdj))]
				a, b = e1.a, e2.b
			} else {
				a, b = pz.draw(), pz.draw()
			}
			if a == b {
				b = personID(int(b+1) % persons)
			}
			emit(a, b, ldbcKnows)
			if len(knowsAdj) < cap(knowsAdj) {
				knowsAdj = append(knowsAdj, struct{ a, b stream.VertexID }{a, b})
			} else {
				knowsAdj[rng.Intn(len(knowsAdj))] = struct{ a, b stream.VertexID }{a, b}
			}
		case r < 0.50: // new message: post (container) or comment (replyOf)
			creator := pz.draw()
			id := stream.VertexID(nextMessage)
			nextMessage++
			if len(messages) > 0 && rng.Float64() < 0.7 {
				parent := messages[rng.Intn(len(messages))]
				emit(id, parent.id, ldbcReplyOf) // comment replies to message
			} else {
				emit(forumID(rng.Intn(forums)), id, ldbcContainerOf) // post in forum
			}
			emit(id, creator, ldbcHasCreator)
			i++ // hasCreator consumed one extra slot
			if len(messages) < cap(messages) {
				messages = append(messages, msg{id: id, creator: creator})
			} else {
				messages[rng.Intn(len(messages))] = msg{id: id, creator: creator}
			}
		case r < 0.70 && len(messages) > 0: // likes: person -> message
			m := messages[rng.Intn(len(messages))]
			emit(pz.draw(), m.id, ldbcLikes)
		case r < 0.80 && len(messages) > 0: // hasTag: message -> tag (tags share forum id space)
			m := messages[rng.Intn(len(messages))]
			emit(m.id, forumID(rng.Intn(forums)), ldbcHasTag)
		case r < 0.90: // hasMember: forum -> person
			emit(forumID(rng.Intn(forums)), pz.draw(), ldbcHasMember)
		default: // hasModerator: forum -> person
			emit(forumID(rng.Intn(forums)), pz.draw(), ldbcHasModerator)
		}
	}
	if len(d.Tuples) > cfg.Edges {
		d.Tuples = d.Tuples[:cfg.Edges]
	}
	return d
}
