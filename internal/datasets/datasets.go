// Package datasets generates the synthetic streaming graphs used by
// the experiment harness. Each generator reproduces the structural
// properties the paper attributes to its real-world counterpart
// (§5.1.2); DESIGN.md documents the substitutions:
//
//   - SO: the Stackoverflow temporal interaction graph — one vertex
//     type, three labels (a2q, c2a, c2q), dense and highly cyclic.
//   - LDBC: the LDBC SNB update stream — typed social network with 8
//     interaction labels, of which only `knows` and `replyOf` are
//     recursive.
//   - Yago: the Yago2s RDF graph — sparse, heterogeneous, ~100 labels
//     with Zipf-skewed frequencies and monotone synthetic timestamps.
//   - GMark: a gMark-style schema-driven graph and query-workload
//     generator for the sensitivity experiments (Figures 7–9).
package datasets

import (
	"fmt"
	"math/rand"

	"streamrpq/internal/stream"
)

// Dataset is a fully materialized synthetic streaming graph: a tuple
// sequence with non-decreasing timestamps plus the label dictionary
// that maps dense label ids back to names.
type Dataset struct {
	Name   string
	Labels []string // label id -> name
	Tuples []stream.Tuple
}

// LabelID returns the dense id of a label name, or -1 if absent.
func (d *Dataset) LabelID(name string) int {
	for i, l := range d.Labels {
		if l == name {
			return i
		}
	}
	return -1
}

// NumVertices returns the number of distinct vertices in the stream.
func (d *Dataset) NumVertices() int {
	seen := make(map[stream.VertexID]struct{})
	for _, t := range d.Tuples {
		seen[t.Src] = struct{}{}
		seen[t.Dst] = struct{}{}
	}
	return len(seen)
}

// WithDeletions returns a copy of the dataset where approximately
// ratio of the tuples are explicit deletions of previously inserted
// edges, generated the way §5.4 does: "by reinserting a previously
// consumed edge as a negative tuple". Timestamps stay non-decreasing;
// the total tuple count is preserved.
func (d *Dataset) WithDeletions(ratio float64, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	out := &Dataset{Name: fmt.Sprintf("%s+del%.0f%%", d.Name, ratio*100), Labels: d.Labels}
	out.Tuples = make([]stream.Tuple, 0, len(d.Tuples))
	var inserted []stream.Tuple
	for _, t := range d.Tuples {
		if len(inserted) > 16 && rng.Float64() < ratio {
			victim := inserted[rng.Intn(len(inserted))]
			out.Tuples = append(out.Tuples, stream.Tuple{
				TS: t.TS, Src: victim.Src, Dst: victim.Dst, Label: victim.Label,
				Op: stream.Delete,
			})
			continue
		}
		out.Tuples = append(out.Tuples, t)
		inserted = append(inserted, t)
	}
	return out
}

// zipfVertex draws skewed vertex ids in [0,n): small ids are "hub"
// vertices. A fresh rand.Zipf is cheap enough at our scales.
type zipfVertex struct {
	z *rand.Zipf
	n uint64
}

func newZipfVertex(rng *rand.Rand, n int, skew float64) *zipfVertex {
	if n < 2 {
		n = 2
	}
	return &zipfVertex{z: rand.NewZipf(rng, skew, 1, uint64(n-1)), n: uint64(n)}
}

func (zv *zipfVertex) draw() stream.VertexID {
	return stream.VertexID(zv.z.Uint64())
}
