// Package automaton converts RPQ regular expressions into minimal
// deterministic finite automata and derives the suffix-language
// containment relation used by the simple-path (RSPQ) engine.
//
// The pipeline mirrors §2 of Pacaci et al. (SIGMOD 2020): Thompson's
// construction builds an NFA recognizing L(R) [Thompson 1968], subset
// construction determinizes it, and Hopcroft's algorithm [Hopcroft
// 1971] minimizes the result.
package automaton

import (
	"sort"

	"streamrpq/internal/pattern"
)

// nfaState is a state of a Thompson NFA. Thompson states have at most
// two ε successors and at most one labeled successor.
type nfaState struct {
	eps   []int  // ε-transitions
	label string // labeled transition, "" if none
	to    int    // target of the labeled transition
}

// NFA is a nondeterministic finite automaton with ε-transitions
// produced by Thompson's construction.
type NFA struct {
	states []nfaState
	start  int
	accept int // Thompson NFAs have a single accepting state
}

// NumStates returns the number of NFA states.
func (n *NFA) NumStates() int { return len(n.states) }

// Thompson builds an NFA recognizing L(e) using Thompson's
// construction. Every operator adds a constant number of states, so the
// NFA has O(|e|) states.
func Thompson(e *pattern.Expr) *NFA {
	n := &NFA{}
	s, a := n.build(e)
	n.start, n.accept = s, a
	return n
}

func (n *NFA) newState() int {
	n.states = append(n.states, nfaState{to: -1})
	return len(n.states) - 1
}

func (n *NFA) addEps(from, to int) {
	n.states[from].eps = append(n.states[from].eps, to)
}

// build returns the (start, accept) fragment for e.
func (n *NFA) build(e *pattern.Expr) (int, int) {
	switch e.Op {
	case pattern.OpEmpty:
		s := n.newState()
		a := n.newState()
		n.addEps(s, a)
		return s, a
	case pattern.OpLabel:
		s := n.newState()
		a := n.newState()
		n.states[s].label = e.Label
		n.states[s].to = a
		return s, a
	case pattern.OpConcat:
		s, a := n.build(e.Subs[0])
		for _, sub := range e.Subs[1:] {
			s2, a2 := n.build(sub)
			n.addEps(a, s2)
			a = a2
		}
		return s, a
	case pattern.OpAlt:
		s := n.newState()
		a := n.newState()
		for _, sub := range e.Subs {
			si, ai := n.build(sub)
			n.addEps(s, si)
			n.addEps(ai, a)
		}
		return s, a
	case pattern.OpStar:
		si, ai := n.build(e.Subs[0])
		s := n.newState()
		a := n.newState()
		n.addEps(s, si)
		n.addEps(s, a)
		n.addEps(ai, si)
		n.addEps(ai, a)
		return s, a
	case pattern.OpPlus:
		si, ai := n.build(e.Subs[0])
		s := n.newState()
		a := n.newState()
		n.addEps(s, si)
		n.addEps(ai, si)
		n.addEps(ai, a)
		return s, a
	case pattern.OpOpt:
		si, ai := n.build(e.Subs[0])
		s := n.newState()
		a := n.newState()
		n.addEps(s, si)
		n.addEps(s, a)
		n.addEps(ai, a)
		return s, a
	}
	// Unreachable for validated expressions; return a dead fragment.
	s := n.newState()
	a := n.newState()
	return s, a
}

// closure expands set (a sorted slice of state ids) to its ε-closure,
// returning a sorted, deduplicated slice.
func (n *NFA) closure(set []int) []int {
	seen := make(map[int]bool, len(set)*2)
	stack := append([]int(nil), set...)
	for _, s := range set {
		seen[s] = true
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, t := range n.states[s].eps {
			if !seen[t] {
				seen[t] = true
				stack = append(stack, t)
			}
		}
	}
	out := make([]int, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// Accepts reports whether the NFA accepts the word. It simulates the
// NFA directly and is used as a test oracle.
func (n *NFA) Accepts(word []string) bool {
	cur := n.closure([]int{n.start})
	for _, l := range word {
		var next []int
		for _, s := range cur {
			if n.states[s].label == l {
				next = append(next, n.states[s].to)
			}
		}
		if len(next) == 0 {
			return false
		}
		sort.Ints(next)
		cur = n.closure(dedupSorted(next))
	}
	for _, s := range cur {
		if s == n.accept {
			return true
		}
	}
	return false
}

func dedupSorted(xs []int) []int {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}
