package automaton

// NoState marks a missing transition in a Bound automaton.
const NoState = int32(-1)

// Transition is one DFA transition s --label--> t with the label left
// implicit (transitions are grouped per label in Bound.ByLabel).
type Transition struct {
	From int32
	To   int32
}

// Bound is a DFA whose transitions have been bound to a dense label-id
// space, giving O(1) lookups on the hot path of the streaming engines.
// Labels outside the query alphabet map to no transitions at all, which
// lets the engines drop irrelevant tuples immediately (the paper's
// "discard tuples whose label is not in ΣQ").
type Bound struct {
	K       int            // number of DFA states
	Start   int32          // initial state s0
	Final   []bool         // Final[s] reports s ∈ F
	Trans   [][]int32      // Trans[s][labelID] → next state, NoState if absent
	ByLabel [][]Transition // ByLabel[labelID] → all (s,t) with δ(s,label)=t
	Cont    [][]bool       // suffix-language containment: Cont[s][t] == ([s] ⊇ [t])
	HasCont bool           // suffix-language containment property holds (Def. 15)
}

// Bind converts the string-labeled DFA into a Bound automaton.
// labelID maps label strings to dense ids in [0, numLabels); labels of
// the DFA alphabet that the mapper does not know (returns <0) are
// unreachable in the bound graph and their transitions are dropped.
// Calls with the same DFA and the same resolved label mapping return a
// shared cached *Bound (bounds are read-only after construction).
func (d *DFA) Bind(labelID func(string) int, numLabels int) *Bound {
	return bindMemoized(d, labelID, numLabels)
}

func (d *DFA) bindUncached(labelID func(string) int, numLabels int) *Bound {
	k := d.NumStates()
	b := &Bound{
		K:       k,
		Start:   int32(d.Start),
		Final:   append([]bool(nil), d.Final...),
		Trans:   make([][]int32, k),
		ByLabel: make([][]Transition, numLabels),
		Cont:    d.Containment(),
		HasCont: d.HasContainmentProperty(),
	}
	for s := 0; s < k; s++ {
		row := make([]int32, numLabels)
		for i := range row {
			row[i] = NoState
		}
		b.Trans[s] = row
	}
	for s := 0; s < k; s++ {
		for l, t := range d.Trans[s] {
			id := labelID(l)
			if id < 0 || id >= numLabels {
				continue
			}
			b.Trans[s][id] = int32(t)
			b.ByLabel[id] = append(b.ByLabel[id], Transition{From: int32(s), To: int32(t)})
		}
	}
	return b
}

// Step returns δ(s, label) or NoState.
func (b *Bound) Step(s int32, label int) int32 {
	if label < 0 || label >= len(b.ByLabel) {
		return NoState
	}
	return b.Trans[s][label]
}

// Relevant reports whether any state has a transition on the label,
// i.e. whether a tuple carrying it can possibly affect results.
func (b *Bound) Relevant(label int) bool {
	return label >= 0 && label < len(b.ByLabel) && len(b.ByLabel[label]) > 0
}
