package automaton

import (
	"math/rand"
	"testing"

	"streamrpq/internal/pattern"
)

// exprFixtures are representative RPQ shapes, including every template
// from Table 2 of the paper instantiated with k=3.
var exprFixtures = []string{
	"a",
	"a*",         // Q1
	"a/b*",       // Q2
	"a/b*/c*",    // Q3
	"(a|b|c)*",   // Q4
	"a/b*/c",     // Q5
	"a*/b*",      // Q6
	"a/b/c*",     // Q7
	"a?/b*",      // Q8
	"(a|b|c)+",   // Q9
	"(a|b|c)/d*", // Q10
	"a/b/c",      // Q11
	"(a/b)+",     // the running example (follows ◦ mentions)+
	"(a|b)*/c/(a|b)*",
	"a/(b/a)*",
	"((a|b)/c)+|d?",
	"()",
	"a|()",
}

func wordsUpTo(alphabet []string, maxLen int) [][]string {
	words := [][]string{nil}
	frontier := [][]string{nil}
	for l := 0; l < maxLen; l++ {
		var next [][]string
		for _, w := range frontier {
			for _, a := range alphabet {
				nw := append(append([]string(nil), w...), a)
				next = append(next, nw)
				words = append(words, nw)
			}
		}
		frontier = next
	}
	return words
}

// TestPipelineAgreesWithMatcher exhaustively compares NFA, DFA and
// minimal DFA acceptance against the direct AST matcher on all words up
// to length 5 over the expression alphabet (plus one foreign label).
func TestPipelineAgreesWithMatcher(t *testing.T) {
	for _, src := range exprFixtures {
		e := pattern.MustParse(src)
		nfa := Thompson(e)
		dfa := Determinize(nfa)
		mindfa := dfa.Minimize()

		alpha := append(e.Alphabet(), "zz") // a label outside the expression
		for _, w := range wordsUpTo(alpha, 5) {
			want := pattern.Matcher(e, w)
			if got := nfa.Accepts(w); got != want {
				t.Fatalf("%q: NFA.Accepts(%v) = %v, want %v", src, w, got, want)
			}
			if got := dfa.Accepts(w); got != want {
				t.Fatalf("%q: DFA.Accepts(%v) = %v, want %v", src, w, got, want)
			}
			if got := mindfa.Accepts(w); got != want {
				t.Fatalf("%q: minimal DFA.Accepts(%v) = %v, want %v", src, w, got, want)
			}
		}
	}
}

// TestPipelineAgreesRandom repeats the comparison on random expressions
// and longer random words.
func TestPipelineAgreesRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	labels := []string{"a", "b", "c"}
	for i := 0; i < 200; i++ {
		e := randomExpr(rng, 3, labels)
		dfa := Compile(e)
		nfa := Thompson(e)
		for j := 0; j < 40; j++ {
			w := pattern.RandomWord(labels, rng.Intn(8), rng.Uint64())
			want := pattern.Matcher(e, w)
			if got := dfa.Accepts(w); got != want {
				t.Fatalf("expr %q word %v: minimal DFA %v, want %v", e, w, got, want)
			}
			if got := nfa.Accepts(w); got != want {
				t.Fatalf("expr %q word %v: NFA %v, want %v", e, w, got, want)
			}
		}
	}
}

func randomExpr(rng *rand.Rand, depth int, labels []string) *pattern.Expr {
	if depth == 0 || rng.Intn(3) == 0 {
		return pattern.Label(labels[rng.Intn(len(labels))])
	}
	switch rng.Intn(5) {
	case 0:
		return pattern.Concat(randomExpr(rng, depth-1, labels), randomExpr(rng, depth-1, labels))
	case 1:
		return pattern.Alt(randomExpr(rng, depth-1, labels), randomExpr(rng, depth-1, labels))
	case 2:
		return pattern.Star(randomExpr(rng, depth-1, labels))
	case 3:
		return pattern.Plus(randomExpr(rng, depth-1, labels))
	default:
		return pattern.Opt(randomExpr(rng, depth-1, labels))
	}
}

// TestMinimizeIsMinimal cross-checks Hopcroft by verifying that no two
// distinct states of the minimal DFA are equivalent (distinguishable by
// some word) and that minimizing twice is a fixpoint in state count.
func TestMinimizeIsMinimal(t *testing.T) {
	for _, src := range exprFixtures {
		e := pattern.MustParse(src)
		m := Compile(e)
		m2 := m.Minimize()
		if m2.NumStates() != m.NumStates() {
			t.Errorf("%q: minimize not idempotent: %d -> %d states", src, m.NumStates(), m2.NumStates())
		}
		// Pairwise distinguishability via the containment matrix
		// computed in both directions: states s,t are equivalent iff
		// [s] ⊇ [t] and [t] ⊇ [s]; a minimal DFA has no equivalent pair.
		cont := m.Containment()
		for s := 0; s < m.NumStates(); s++ {
			for q := s + 1; q < m.NumStates(); q++ {
				if cont[s][q] && cont[q][s] {
					t.Errorf("%q: states %d and %d are equivalent in the minimal DFA", src, s, q)
				}
			}
		}
	}
}

func TestKnownDFASizes(t *testing.T) {
	cases := []struct {
		expr   string
		states int
	}{
		{"a*", 1},
		{"a", 2},
		{"a/b", 3},
		{"(a|b|c)*", 1},
		{"(a|b|c)+", 2},
		{"(a/b)+", 3}, // the running example: s0 -a-> s1 -b-> s2(F) -a-> s1
		{"a/b*", 2},
		{"a/b/c", 4},
	}
	for _, c := range cases {
		d := Compile(pattern.MustParse(c.expr))
		if d.NumStates() != c.states {
			t.Errorf("%q: %d states, want %d\n%s", c.expr, d.NumStates(), c.states, d)
		}
	}
}

func TestEmptyLanguage(t *testing.T) {
	// (a/b) intersected-away by minimization is not expressible in the
	// dialect, but minimizing a DFA whose start cannot reach a final
	// state must produce the canonical 1-state reject automaton.
	d := &DFA{
		Alphabet: []string{"a"},
		Start:    0,
		Final:    []bool{false, false},
		Trans:    []map[string]int{{"a": 1}, {}},
	}
	m := d.Minimize()
	if m.NumStates() != 1 || m.Final[0] || len(m.Trans[0]) != 0 {
		t.Errorf("empty language minimal DFA = %s", m)
	}
	if m.Accepts([]string{"a"}) || m.Accepts(nil) {
		t.Error("empty language DFA accepts a word")
	}
}

// TestContainmentBruteForce verifies the containment matrix against a
// brute-force check on all words up to length 6.
func TestContainmentBruteForce(t *testing.T) {
	for _, src := range exprFixtures {
		e := pattern.MustParse(src)
		d := Compile(e)
		cont := d.Containment()
		alpha := d.Alphabet
		words := wordsUpTo(alpha, 6)
		n := d.NumStates()

		acceptFrom := func(s int, w []string) bool {
			cur := s
			for _, l := range w {
				t, ok := d.Trans[cur][l]
				if !ok {
					return false
				}
				cur = t
			}
			return d.Final[cur]
		}
		for s := 0; s < n; s++ {
			for q := 0; q < n; q++ {
				// brute: [s] ⊇ [q] unless some word is accepted from q
				// but not from s.
				brute := true
				for _, w := range words {
					if acceptFrom(q, w) && !acceptFrom(s, w) {
						brute = false
						break
					}
				}
				if cont[s][q] != brute {
					// The brute check is bounded at length 6, so it can
					// claim containment where a longer witness exists;
					// the converse direction is exact.
					if brute && !cont[s][q] {
						continue
					}
					t.Errorf("%q: Cont[%d][%d] = %v, brute = %v", src, s, q, cont[s][q], brute)
				}
			}
		}
	}
}

// TestContainmentProperty checks Definition 15 literally: [s] ⊇ [t]
// for every useful transition s → t. Note that this is one of several
// *sufficient* conditions for conflict-freedom; e.g. "a" fails it
// (ε ∈ [s1] ∖ [s0]) even though any conflict it flags involves a
// non-simple path anyway. Kleene closures over full alternations have
// it; expressions whose final states accept strict suffixes do not.
func TestContainmentProperty(t *testing.T) {
	cases := []struct {
		expr string
		want bool
	}{
		{"a*", true},
		{"(a|b|c)*", true},
		{"(a|b|c)+", false}, // ε ∈ [s1] ∖ [s0]
		{"a/b/c", false},
		{"a", false},
		{"(a/b)+", false},
		{"a/b*", false},
		{"a/b*/c", false},
		{"a*/b*", true},
		{"a*/a*", true}, // same language as a*
	}
	for _, c := range cases {
		d := Compile(pattern.MustParse(c.expr))
		if got := d.HasContainmentProperty(); got != c.want {
			t.Errorf("%q: HasContainmentProperty = %v, want %v\n%s", c.expr, got, c.want, d)
		}
	}
}

func TestBind(t *testing.T) {
	d := Compile(pattern.MustParse("(a/b)+"))
	labels := map[string]int{"a": 0, "b": 1, "x": 2}
	b := d.Bind(func(s string) int { return labels[s] }, 3)

	if b.K != 3 {
		t.Fatalf("K = %d, want 3", b.K)
	}
	if !b.Relevant(0) || !b.Relevant(1) {
		t.Error("labels a,b should be relevant")
	}
	if b.Relevant(2) {
		t.Error("label x should be irrelevant")
	}
	if b.Relevant(-1) || b.Relevant(99) {
		t.Error("out-of-range labels should be irrelevant")
	}
	// Walk a/b/a/b and verify acceptance states along the way.
	s := b.Start
	seq := []struct {
		label int
		final bool
	}{{0, false}, {1, true}, {0, false}, {1, true}}
	for i, step := range seq {
		s = b.Step(s, step.label)
		if s == NoState {
			t.Fatalf("step %d: no transition", i)
		}
		if b.Final[s] != step.final {
			t.Fatalf("step %d: final = %v, want %v", i, b.Final[s], step.final)
		}
	}
	if b.Step(s, 2) != NoState {
		t.Error("transition on irrelevant label should be NoState")
	}
	// ByLabel must partition the transition set.
	n := 0
	for _, trs := range b.ByLabel {
		n += len(trs)
	}
	want := 0
	for s := range b.Trans {
		for _, nxt := range b.Trans[s] {
			if nxt != NoState {
				want++
			}
		}
	}
	if n != want {
		t.Errorf("ByLabel holds %d transitions, Trans holds %d", n, want)
	}
}

func TestBindUnknownLabelDropped(t *testing.T) {
	d := Compile(pattern.MustParse("a/b"))
	// Mapper knows only "a"; transitions on "b" must be dropped.
	b := d.Bind(func(s string) int {
		if s == "a" {
			return 0
		}
		return -1
	}, 1)
	if got := b.Step(b.Start, 0); got == NoState {
		t.Fatal("transition on a missing")
	}
	for _, trs := range b.ByLabel {
		for _, tr := range trs {
			if b.Final[tr.To] {
				t.Error("no final state should be reachable with b dropped")
			}
		}
	}
}
