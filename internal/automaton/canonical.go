package automaton

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"

	"streamrpq/internal/pattern"
)

// Canonical forms and registration-time memoization.
//
// Two RPQ expressions denote the same path language iff their minimal
// DFAs are isomorphic, and Minimize already renumbers states by a BFS
// from the start state over labels in sorted order — so isomorphic
// minimal DFAs are *literally identical* up to dead alphabet entries.
// CanonicalKey serializes exactly that structure (transitions only, so
// labels that survive parsing but reach no live transition do not
// perturb the key), which makes "same language" a string comparison and
// "shared Δ-index group" a map lookup at registration time.

// CanonicalKey returns a serialization of the DFA's canonical form:
// state count, start, final set, and the sorted transition triples
// after canonical BFS renumbering. Two DFAs have equal keys iff they
// accept the same language (assuming both are minimal; for non-minimal
// DFAs the key still identifies structural isomorphism of the reachable
// part).
func (d *DFA) CanonicalKey() string {
	c := d.canonicalized()
	var b strings.Builder
	fmt.Fprintf(&b, "k%d;s%d;f", c.NumStates(), c.Start)
	for s, f := range c.Final {
		if f {
			fmt.Fprintf(&b, "%d,", s)
		}
	}
	b.WriteByte(';')
	type triple struct {
		from int
		lab  string
		to   int
	}
	var ts []triple
	for s := range c.Trans {
		for l, t := range c.Trans[s] {
			ts = append(ts, triple{s, l, t})
		}
	}
	sort.Slice(ts, func(i, j int) bool {
		if ts[i].from != ts[j].from {
			return ts[i].from < ts[j].from
		}
		if ts[i].lab != ts[j].lab {
			return ts[i].lab < ts[j].lab
		}
		return ts[i].to < ts[j].to
	})
	for _, t := range ts {
		fmt.Fprintf(&b, "%d-%s>%d;", t.from, t.lab, t.to)
	}
	return b.String()
}

// CanonicalHash returns a 64-bit FNV-1a hash of CanonicalKey, for
// compact fingerprint tables and logs. Equal languages hash equal;
// collisions are possible in principle, so sharing decisions compare
// the full key.
func (d *DFA) CanonicalHash() uint64 {
	h := fnv.New64a()
	h.Write([]byte(d.CanonicalKey()))
	return h.Sum64()
}

// canonicalized renumbers states by BFS from the start over labels in
// sorted order, keeping only states reachable from the start. For
// Minimize output this is the identity; it makes CanonicalKey safe on
// hand-built DFAs too.
func (d *DFA) canonicalized() *DFA {
	k := d.NumStates()
	remap := make([]int, k)
	for i := range remap {
		remap[i] = -1
	}
	order := make([]int, 0, k)
	remap[d.Start] = 0
	order = append(order, d.Start)
	labels := make([]string, 0, 8)
	for head := 0; head < len(order); head++ {
		s := order[head]
		labels = labels[:0]
		for l := range d.Trans[s] {
			labels = append(labels, l)
		}
		sort.Strings(labels)
		for _, l := range labels {
			t := d.Trans[s][l]
			if remap[t] < 0 {
				remap[t] = len(order)
				order = append(order, t)
			}
		}
	}
	out := &DFA{
		Alphabet: d.Alphabet,
		Start:    0,
		Final:    make([]bool, len(order)),
		Trans:    make([]map[string]int, len(order)),
	}
	for _, s := range order {
		ns := remap[s]
		out.Final[ns] = d.Final[s]
		row := make(map[string]int, len(d.Trans[s]))
		for l, t := range d.Trans[s] {
			row[l] = remap[t]
		}
		out.Trans[ns] = row
	}
	return out
}

// Fingerprint serializes the bound automaton's structure over the dense
// label-id space: state count, start, final set, and per label id the
// sorted transition pairs. Trailing label-space width does not enter
// the fingerprint — a bound automaton re-bound against a wider label
// dictionary has no transitions on the new ids, so it steps (and
// therefore emits) identically, and the two fingerprints match.
// Equal fingerprints ⇒ the engines driven by the two bounds produce
// byte-identical result streams on every input, which is the safety
// condition for evaluating them on one shared Δ-index tree set.
func (b *Bound) Fingerprint() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "k%d;s%d;f", b.K, b.Start)
	for s, f := range b.Final {
		if f {
			fmt.Fprintf(&sb, "%d,", s)
		}
	}
	sb.WriteByte(';')
	for id, trs := range b.ByLabel {
		if len(trs) == 0 {
			continue
		}
		sorted := append([]Transition(nil), trs...)
		sort.Slice(sorted, func(i, j int) bool {
			if sorted[i].From != sorted[j].From {
				return sorted[i].From < sorted[j].From
			}
			return sorted[i].To < sorted[j].To
		})
		fmt.Fprintf(&sb, "l%d:", id)
		for _, tr := range sorted {
			fmt.Fprintf(&sb, "%d>%d,", tr.From, tr.To)
		}
		sb.WriteByte(';')
	}
	// The containment matrix feeds the RSPQ arm; include it so bounds
	// that step identically but carry different containment metadata are
	// never conflated.
	if b.HasCont {
		sb.WriteString("c")
		for _, row := range b.Cont {
			for _, v := range row {
				if v {
					sb.WriteByte('1')
				} else {
					sb.WriteByte('0')
				}
			}
		}
	}
	return sb.String()
}

// RelevantLabelCount returns the number of label ids with at least one
// transition — the pattern-visible selectivity proxy used to order
// per-tuple dispatch (fewest relevant labels first).
func (b *Bound) RelevantLabelCount() int {
	n := 0
	for _, trs := range b.ByLabel {
		if len(trs) > 0 {
			n++
		}
	}
	return n
}

// compileMemo caches Compile results two levels deep: an exact-match
// table keyed by the expression's rendered form (duplicate patterns in
// a workload skip the whole pipeline), and an interning table keyed by
// CanonicalKey (equivalent-but-distinct patterns share one *DFA, so
// downstream Bind memoization and group dedup see pointer equality).
// DFAs are never mutated after construction, so sharing is safe.
var compileMemo = struct {
	sync.Mutex
	byExpr  map[string]*DFA
	byCanon map[string]*DFA
}{
	byExpr:  make(map[string]*DFA),
	byCanon: make(map[string]*DFA),
}

// memoCap bounds the memo tables; randomized workloads (fig7/8/9
// generators) would otherwise grow them without limit. On overflow the
// tables reset — correctness never depends on a hit.
const memoCap = 4096

func compileMemoized(e *pattern.Expr) *DFA {
	k := e.String()
	compileMemo.Lock()
	if d, ok := compileMemo.byExpr[k]; ok {
		compileMemo.Unlock()
		return d
	}
	compileMemo.Unlock()

	d := Determinize(Thompson(e)).Minimize()
	ck := d.CanonicalKey()

	compileMemo.Lock()
	defer compileMemo.Unlock()
	if len(compileMemo.byExpr) >= memoCap {
		compileMemo.byExpr = make(map[string]*DFA)
	}
	if len(compileMemo.byCanon) >= memoCap {
		compileMemo.byCanon = make(map[string]*DFA)
	}
	if prior, ok := compileMemo.byCanon[ck]; ok {
		d = prior
	} else {
		compileMemo.byCanon[ck] = d
	}
	compileMemo.byExpr[k] = d
	return d
}

// bindKey identifies a Bind call: the DFA (interned by Compile, so
// equivalent patterns collapse to one pointer) plus the resolved label
// ids and target width. Two calls with the same resolved mapping yield
// structurally identical bounds, so the cached *Bound is shared.
type bindKey struct {
	d   *DFA
	sig string
}

var bindMemo = struct {
	sync.Mutex
	m map[bindKey]*Bound
}{m: make(map[bindKey]*Bound)}

func bindMemoized(d *DFA, labelID func(string) int, numLabels int) *Bound {
	var sb strings.Builder
	fmt.Fprintf(&sb, "n%d;", numLabels)
	for _, l := range d.Alphabet {
		fmt.Fprintf(&sb, "%d,", labelID(l))
	}
	key := bindKey{d: d, sig: sb.String()}
	bindMemo.Lock()
	if b, ok := bindMemo.m[key]; ok {
		bindMemo.Unlock()
		return b
	}
	bindMemo.Unlock()

	b := d.bindUncached(labelID, numLabels)

	bindMemo.Lock()
	defer bindMemo.Unlock()
	if len(bindMemo.m) >= memoCap {
		bindMemo.m = make(map[bindKey]*Bound)
	}
	bindMemo.m[key] = b
	return b
}
