package automaton

import (
	"math/rand"
	"testing"

	"streamrpq/internal/pattern"
)

// equivalentPairs are syntactically distinct expressions denoting the
// same path language; their canonical keys must collide exactly.
var equivalentPairs = [][2]string{
	{"a/(b|c)", "(a/b)|(a/c)"},
	{"a|b", "b|a"},
	{"(a/b)|(a/b)", "a/b"},
	{"a/b*", "a|(a/b*)"}, // a·b* already contains a
	{"(a*)*", "a*"},
	{"a?/a*", "a*"},
	{"(a|b)*", "(a*|b*)*"},
	{"a/(b/c)", "(a/b)/c"},
	{"(a/b)+", "a/b/((a/b)*)"},
}

// inequivalentPairs must keep distinct keys.
var inequivalentPairs = [][2]string{
	{"a", "b"},
	{"a/b", "b/a"},
	{"a*", "a+"},
	{"(a|b)+", "(a/b)+"},
	{"a/b*/c", "a/b/c*"},
}

func TestCanonicalKeyEquivalence(t *testing.T) {
	for _, p := range equivalentPairs {
		d1 := Compile(pattern.MustParse(p[0]))
		d2 := Compile(pattern.MustParse(p[1]))
		if d1.CanonicalKey() != d2.CanonicalKey() {
			t.Errorf("equivalent %q vs %q: keys differ:\n  %s\n  %s", p[0], p[1], d1.CanonicalKey(), d2.CanonicalKey())
		}
		if d1.CanonicalHash() != d2.CanonicalHash() {
			t.Errorf("equivalent %q vs %q: hashes differ", p[0], p[1])
		}
		if d1 != d2 {
			t.Errorf("equivalent %q vs %q: Compile did not intern to one *DFA", p[0], p[1])
		}
	}
	for _, p := range inequivalentPairs {
		d1 := Compile(pattern.MustParse(p[0]))
		d2 := Compile(pattern.MustParse(p[1]))
		if d1.CanonicalKey() == d2.CanonicalKey() {
			t.Errorf("inequivalent %q vs %q: keys collide: %s", p[0], p[1], d1.CanonicalKey())
		}
	}
}

// rewrite applies a random language-preserving rewrite to the
// expression's rendered form by re-parsing a transformed template.
// Each transform is an identity of regular languages.
func rewriteEquivalent(rng *rand.Rand, src string) string {
	switch rng.Intn(4) {
	case 0:
		return "(" + src + ")|(" + src + ")" // e|e = e
	case 1:
		return "(" + src + ")" // grouping
	case 2:
		return "()/(" + src + ")" // ε·e = e
	default:
		return "(" + src + ")/()" // e·ε = e
	}
}

// TestCanonicalKeyRandomRewrites: applying chains of random
// language-preserving rewrites never changes the canonical key, across
// all fixture expressions.
func TestCanonicalKeyRandomRewrites(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, src := range exprFixtures {
		want := Compile(pattern.MustParse(src)).CanonicalKey()
		cur := src
		for i := 0; i < 6; i++ {
			cur = rewriteEquivalent(rng, cur)
			got := Compile(pattern.MustParse(cur)).CanonicalKey()
			if got != want {
				t.Fatalf("%q rewritten to %q: key changed:\n  want %s\n  got  %s", src, cur, want, got)
			}
		}
	}
}

// TestCanonicalKeyHandBuiltDFA: canonicalization must normalize state
// numbering and drop unreachable states, so hand-built DFAs with
// permuted state ids still compare equal.
func TestCanonicalKeyHandBuiltDFA(t *testing.T) {
	// a/b with states (0:start, 1:mid, 2:final).
	d1 := &DFA{
		Alphabet: []string{"a", "b"},
		Start:    0,
		Final:    []bool{false, false, true},
		Trans:    []map[string]int{{"a": 1}, {"b": 2}, {}},
	}
	// Same machine with permuted ids plus an unreachable state.
	d2 := &DFA{
		Alphabet: []string{"a", "b"},
		Start:    2,
		Final:    []bool{true, false, false, false},
		Trans:    []map[string]int{{}, {"b": 0}, {"a": 1}, {"a": 3}},
	}
	if d1.CanonicalKey() != d2.CanonicalKey() {
		t.Fatalf("permuted DFAs: keys differ:\n  %s\n  %s", d1.CanonicalKey(), d2.CanonicalKey())
	}
}

// TestBoundFingerprintWidthIndependent: re-binding against a wider
// label dictionary (new labels the automaton has no transitions on)
// must not change the fingerprint — the bound steps identically.
func TestBoundFingerprintWidthIndependent(t *testing.T) {
	d := Compile(pattern.MustParse("a/b*"))
	ids := map[string]int{"a": 0, "b": 1}
	lookup := func(l string) int {
		if id, ok := ids[l]; ok {
			return id
		}
		return -1
	}
	narrow := d.Bind(lookup, 2)
	wide := d.Bind(lookup, 5)
	if narrow.Fingerprint() != wide.Fingerprint() {
		t.Fatalf("fingerprint depends on label-space width:\n  %s\n  %s", narrow.Fingerprint(), wide.Fingerprint())
	}
	if narrow.RelevantLabelCount() != 2 || wide.RelevantLabelCount() != 2 {
		t.Fatalf("RelevantLabelCount = %d/%d, want 2/2", narrow.RelevantLabelCount(), wide.RelevantLabelCount())
	}
}

// TestBindMemoized: binding the same DFA against the same resolved
// mapping returns the shared cached bound; a different mapping does
// not.
func TestBindMemoized(t *testing.T) {
	d := Compile(pattern.MustParse("a/b"))
	ids := map[string]int{"a": 0, "b": 1}
	lookup := func(l string) int { return ids[l] }
	b1 := d.Bind(lookup, 2)
	b2 := d.Bind(lookup, 2)
	if b1 != b2 {
		t.Fatalf("same mapping: Bind returned distinct bounds")
	}
	other := map[string]int{"a": 1, "b": 0}
	b3 := d.Bind(func(l string) int { return other[l] }, 2)
	if b3 == b1 {
		t.Fatalf("different mapping: Bind returned the cached bound")
	}
}

// BenchmarkRegisterDuplicate measures registration cost for a pattern
// the memo has already seen — the common case in the SO workload where
// templates repeat. Parse is included (it is part of registration);
// compile and bind must be cache hits.
func BenchmarkRegisterDuplicate(b *testing.B) {
	ids := map[string]int{"a": 0, "b": 1, "c": 2, "d": 3}
	lookup := func(l string) int {
		if id, ok := ids[l]; ok {
			return id
		}
		return -1
	}
	src := "(a|b|c)/d*"
	Compile(pattern.MustParse(src)).Bind(lookup, 4) // warm the memo
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compile(pattern.MustParse(src)).Bind(lookup, 4)
	}
}

// BenchmarkRegisterCold measures the full pipeline with cold caches by
// resetting the memo tables each iteration.
func BenchmarkRegisterCold(b *testing.B) {
	ids := map[string]int{"a": 0, "b": 1, "c": 2, "d": 3}
	lookup := func(l string) int {
		if id, ok := ids[l]; ok {
			return id
		}
		return -1
	}
	src := "(a|b|c)/d*"
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		compileMemo.Lock()
		compileMemo.byExpr = make(map[string]*DFA)
		compileMemo.byCanon = make(map[string]*DFA)
		compileMemo.Unlock()
		bindMemo.Lock()
		bindMemo.m = make(map[bindKey]*Bound)
		bindMemo.Unlock()
		Compile(pattern.MustParse(src)).Bind(lookup, 4)
	}
}
