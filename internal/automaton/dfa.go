package automaton

import (
	"fmt"
	"sort"
	"strings"

	"streamrpq/internal/pattern"
)

// DFA is a deterministic finite automaton over string edge labels.
// Transitions are partial: a missing entry means the word is rejected
// (equivalently, a transition to an implicit dead state). State 0 is
// not special; Start names the initial state.
type DFA struct {
	Alphabet []string         // sorted distinct labels
	Start    int              // initial state s0
	Final    []bool           // Final[s] reports s ∈ F
	Trans    []map[string]int // Trans[s][label] = t, partial
}

// NumStates returns the number of DFA states.
func (d *DFA) NumStates() int { return len(d.Trans) }

// Step returns δ(s, label) and whether the transition exists.
func (d *DFA) Step(s int, label string) (int, bool) {
	t, ok := d.Trans[s][label]
	return t, ok
}

// Accepts reports whether the DFA accepts the word.
func (d *DFA) Accepts(word []string) bool {
	s := d.Start
	for _, l := range word {
		t, ok := d.Trans[s][l]
		if !ok {
			return false
		}
		s = t
	}
	return d.Final[s]
}

// Determinize converts the NFA into an equivalent DFA via subset
// construction. Unreachable subsets are never materialized.
func Determinize(n *NFA) *DFA {
	alpha := map[string]struct{}{}
	for _, st := range n.states {
		if st.label != "" {
			alpha[st.label] = struct{}{}
		}
	}
	alphabet := make([]string, 0, len(alpha))
	for l := range alpha {
		alphabet = append(alphabet, l)
	}
	sort.Strings(alphabet)

	d := &DFA{Alphabet: alphabet}
	key := func(set []int) string {
		var b strings.Builder
		for i, s := range set {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%d", s)
		}
		return b.String()
	}
	idOf := map[string]int{}
	var sets [][]int
	newState := func(set []int) int {
		k := key(set)
		if id, ok := idOf[k]; ok {
			return id
		}
		id := len(sets)
		idOf[k] = id
		sets = append(sets, set)
		final := false
		for _, s := range set {
			if s == n.accept {
				final = true
				break
			}
		}
		d.Final = append(d.Final, final)
		d.Trans = append(d.Trans, map[string]int{})
		return id
	}

	start := newState(n.closure([]int{n.start}))
	d.Start = start
	for work := []int{start}; len(work) > 0; {
		id := work[0]
		work = work[1:]
		set := sets[id]
		// Group successors by label.
		byLabel := map[string][]int{}
		for _, s := range set {
			if l := n.states[s].label; l != "" {
				byLabel[l] = append(byLabel[l], n.states[s].to)
			}
		}
		labels := make([]string, 0, len(byLabel))
		for l := range byLabel {
			labels = append(labels, l)
		}
		sort.Strings(labels) // deterministic state numbering
		for _, l := range labels {
			targets := byLabel[l]
			sort.Ints(targets)
			next := n.closure(dedupSorted(targets))
			before := len(sets)
			tid := newState(next)
			if tid == before { // newly discovered
				work = append(work, tid)
			}
			d.Trans[id][l] = tid
		}
	}
	return d
}

// Minimize returns the minimal DFA equivalent to d using Hopcroft's
// partition-refinement algorithm. The result is trimmed: the implicit
// dead state (if any) is removed again and transitions stay partial.
// States are renumbered canonically by BFS from the start state so that
// equal languages produce identical automata.
func (d *DFA) Minimize() *DFA {
	// Complete the automaton with an explicit dead state so Hopcroft
	// operates on a total transition function.
	n := d.NumStates()
	dead := n
	total := n + 1
	trans := make([][]int, total)
	labelIdx := make(map[string]int, len(d.Alphabet))
	for i, l := range d.Alphabet {
		labelIdx[l] = i
	}
	na := len(d.Alphabet)
	for s := 0; s < total; s++ {
		row := make([]int, na)
		for i := range row {
			row[i] = dead
		}
		trans[s] = row
	}
	for s := 0; s < n; s++ {
		for l, t := range d.Trans[s] {
			trans[s][labelIdx[l]] = t
		}
	}

	// Reverse transitions for Hopcroft.
	rev := make([][][]int, na) // rev[a][t] = states s with δ(s,a)=t
	for a := 0; a < na; a++ {
		rev[a] = make([][]int, total)
	}
	for s := 0; s < total; s++ {
		for a := 0; a < na; a++ {
			t := trans[s][a]
			rev[a][t] = append(rev[a][t], s)
		}
	}

	// Initial partition: final vs non-final.
	part := make([]int, total) // state -> block id
	var blocks [][]int
	var finals, others []int
	for s := 0; s < n; s++ {
		if d.Final[s] {
			finals = append(finals, s)
		} else {
			others = append(others, s)
		}
	}
	others = append(others, dead)
	if len(finals) > 0 {
		for _, s := range finals {
			part[s] = len(blocks)
		}
		blocks = append(blocks, finals)
	}
	if len(others) > 0 {
		for _, s := range others {
			part[s] = len(blocks)
		}
		blocks = append(blocks, others)
	}

	// Worklist of (block, label) splitters.
	type splitter struct{ block, label int }
	work := make([]splitter, 0, len(blocks)*na)
	inWork := map[splitter]bool{}
	push := func(b, a int) {
		sp := splitter{b, a}
		if !inWork[sp] {
			inWork[sp] = true
			work = append(work, sp)
		}
	}
	for b := range blocks {
		for a := 0; a < na; a++ {
			push(b, a)
		}
	}

	for len(work) > 0 {
		sp := work[len(work)-1]
		work = work[:len(work)-1]
		delete(inWork, sp)

		// X = states with a-transition into block sp.block.
		inX := map[int]bool{}
		for _, t := range blocks[sp.block] {
			for _, s := range rev[sp.label][t] {
				inX[s] = true
			}
		}
		if len(inX) == 0 {
			continue
		}
		// Split every block B into B∩X and B\X.
		affected := map[int]bool{}
		for s := range inX {
			affected[part[s]] = true
		}
		for b := range affected {
			var in, out []int
			for _, s := range blocks[b] {
				if inX[s] {
					in = append(in, s)
				} else {
					out = append(out, s)
				}
			}
			if len(in) == 0 || len(out) == 0 {
				continue
			}
			// Replace block b with the larger part, create new block
			// with the smaller part (Hopcroft's trick).
			small, large := in, out
			if len(small) > len(large) {
				small, large = large, small
			}
			blocks[b] = large
			nb := len(blocks)
			blocks = append(blocks, small)
			for _, s := range small {
				part[s] = nb
			}
			for a := 0; a < na; a++ {
				if inWork[splitter{b, a}] {
					push(nb, a)
				} else {
					// Push the smaller of the two blocks.
					if len(small) <= len(large) {
						push(nb, a)
					} else {
						push(b, a)
					}
				}
			}
		}
	}

	// Build the quotient automaton over blocks, skipping the dead block.
	deadBlock := part[dead]
	// Canonical renumbering: BFS from the start block over sorted labels.
	remap := map[int]int{}
	var order []int
	startBlock := part[d.Start]
	if startBlock != deadBlock {
		remap[startBlock] = 0
		order = append(order, startBlock)
	}
	for i := 0; i < len(order); i++ {
		b := order[i]
		repr := blocks[b][0]
		for a := 0; a < na; a++ {
			tb := part[trans[repr][a]]
			if tb == deadBlock {
				continue
			}
			if _, ok := remap[tb]; !ok {
				remap[tb] = len(order)
				order = append(order, tb)
			}
		}
	}

	out := &DFA{Alphabet: append([]string(nil), d.Alphabet...)}
	out.Final = make([]bool, len(order))
	out.Trans = make([]map[string]int, len(order))
	for i := range out.Trans {
		out.Trans[i] = map[string]int{}
	}
	for b, id := range remap {
		repr := blocks[b][0]
		out.Final[id] = repr != dead && d.Final[repr]
		for a := 0; a < na; a++ {
			tb := part[trans[repr][a]]
			if tb == deadBlock {
				continue
			}
			out.Trans[id][d.Alphabet[a]] = remap[tb]
		}
	}
	if startBlock == deadBlock {
		// Empty language: single non-final start state, no transitions.
		return &DFA{Alphabet: out.Alphabet, Start: 0, Final: []bool{false}, Trans: []map[string]int{{}}}
	}
	out.Start = remap[startBlock]
	return out
}

// Compile parses nothing: it runs the full pipeline expr → Thompson NFA
// → subset DFA → minimal DFA, as done at query-registration time in the
// paper. Results are memoized by rendered expression and interned by
// canonical form (see canonical.go), so registering a duplicate or
// equivalent pattern never recompiles and yields the same *DFA.
func Compile(e *pattern.Expr) *DFA {
	return compileMemoized(e)
}

// Containment computes the suffix-language containment matrix of the
// DFA (Definitions 14–15 in the paper): Cont[s][t] == true iff
// [s] ⊇ [t], i.e. every word that takes the automaton from t to a final
// state also takes it from s to a final state.
//
// [s] ⊉ [t] iff there exists a word w with δ*(t,w) ∈ F and δ*(s,w) ∉ F.
// We compute the set of such "witness" pairs by a backward fixpoint on
// the completed automaton: the base case is {(s,t) : t∈F, s∉F}, and
// (s,t) is a witness if some label a makes (δ(s,a), δ(t,a)) a witness.
func (d *DFA) Containment() [][]bool {
	n := d.NumStates()
	dead := n
	total := n + 1
	step := func(s int, a string) int {
		if s == dead {
			return dead
		}
		if t, ok := d.Trans[s][a]; ok {
			return t
		}
		return dead
	}
	final := func(s int) bool { return s != dead && d.Final[s] }

	witness := make([][]bool, total)
	for i := range witness {
		witness[i] = make([]bool, total)
	}
	for s := 0; s < total; s++ {
		for t := 0; t < total; t++ {
			if final(t) && !final(s) {
				witness[s][t] = true
			}
		}
	}
	// Backward closure over the pair graph: predecessors of a witness
	// pair under any common label are witnesses. We iterate forward to
	// a fixpoint; the pair space is k² and each pass is k²·|Σ|.
	for changed := true; changed; {
		changed = false
		for s := 0; s < total; s++ {
			for t := 0; t < total; t++ {
				if witness[s][t] {
					continue
				}
				for _, a := range d.Alphabet {
					if witness[step(s, a)][step(t, a)] {
						witness[s][t] = true
						changed = true
						break
					}
				}
			}
		}
	}

	cont := make([][]bool, n)
	for s := 0; s < n; s++ {
		cont[s] = make([]bool, n)
		for t := 0; t < n; t++ {
			cont[s][t] = !witness[s][t]
		}
	}
	return cont
}

// HasContainmentProperty reports whether the automaton has the suffix
// language containment property (Definition 15): for every transition
// s →a t on a path from the start state to a final state, [s] ⊇ [t].
// Queries whose minimal DFA has this property are conflict-free on
// every graph (restricted regular expressions such as a*, (a1+..+ak)*
// fall in this class).
func (d *DFA) HasContainmentProperty() bool {
	cont := d.Containment()
	useful := d.usefulStates()
	for s := 0; s < d.NumStates(); s++ {
		if !useful[s] {
			continue
		}
		for _, t := range d.Trans[s] {
			if !useful[t] {
				continue
			}
			if !cont[s][t] {
				return false
			}
		}
	}
	return true
}

// usefulStates reports, per state, whether it lies on some path from
// the start state to a final state. In a trimmed minimal DFA all states
// are useful, but programmatically built DFAs may not be trimmed.
func (d *DFA) usefulStates() []bool {
	n := d.NumStates()
	reach := make([]bool, n)
	var stack []int
	reach[d.Start] = true
	stack = append(stack, d.Start)
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, t := range d.Trans[s] {
			if !reach[t] {
				reach[t] = true
				stack = append(stack, t)
			}
		}
	}
	// canReach[s]: s reaches a final state.
	rev := make([][]int, n)
	for s := 0; s < n; s++ {
		for _, t := range d.Trans[s] {
			rev[t] = append(rev[t], s)
		}
	}
	canReach := make([]bool, n)
	stack = stack[:0]
	for s := 0; s < n; s++ {
		if d.Final[s] {
			canReach[s] = true
			stack = append(stack, s)
		}
	}
	for len(stack) > 0 {
		t := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range rev[t] {
			if !canReach[s] {
				canReach[s] = true
				stack = append(stack, s)
			}
		}
	}
	out := make([]bool, n)
	for s := 0; s < n; s++ {
		out[s] = reach[s] && canReach[s]
	}
	return out
}

// String renders the DFA in a compact human-readable form for
// debugging and golden tests.
func (d *DFA) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "DFA{start=%d", d.Start)
	for s := 0; s < d.NumStates(); s++ {
		fmt.Fprintf(&b, "; %d", s)
		if d.Final[s] {
			b.WriteString("F")
		}
		labels := make([]string, 0, len(d.Trans[s]))
		for l := range d.Trans[s] {
			labels = append(labels, l)
		}
		sort.Strings(labels)
		for _, l := range labels {
			fmt.Fprintf(&b, " -%s->%d", l, d.Trans[s][l])
		}
	}
	b.WriteString("}")
	return b.String()
}
