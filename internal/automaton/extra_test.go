package automaton

import (
	"math/rand"
	"testing"
	"testing/quick"

	"streamrpq/internal/pattern"
)

// TestDFAStringDeterministic: the debug rendering must be stable, so
// golden comparisons and deduplication by String are safe.
func TestDFAStringDeterministic(t *testing.T) {
	for _, src := range exprFixtures {
		d := Compile(pattern.MustParse(src))
		first := d.String()
		for i := 0; i < 5; i++ {
			if d.String() != first {
				t.Fatalf("%q: unstable String()", src)
			}
		}
	}
}

// TestCompileCanonical: equal languages yield identical minimal DFAs
// (state numbering included), thanks to the canonical BFS renumbering
// in Minimize.
func TestCompileCanonical(t *testing.T) {
	pairs := [][2]string{
		{"a|b", "b|a"},
		{"a*", "(a*)*"},
		{"a/b|a/c", "a/(b|c)"},
		{"(a|b)*", "(a*|b*)*"},
		{"a?", "a|()"},
		{"a+", "a/a*"},
	}
	for _, p := range pairs {
		d1 := Compile(pattern.MustParse(p[0]))
		d2 := Compile(pattern.MustParse(p[1]))
		if d1.String() != d2.String() {
			t.Errorf("equivalent %q and %q compile differently:\n%s\n%s", p[0], p[1], d1, d2)
		}
	}
}

// TestMinimizeNeverGrows via quick: for random expressions the minimal
// DFA has at most as many states as the subset-construction DFA.
func TestMinimizeNeverGrows(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := randomExpr(r, 4, []string{"a", "b", "c"})
		d := Determinize(Thompson(e))
		return d.Minimize().NumStates() <= d.NumStates()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// TestContainmentReflexiveTransitive: the containment matrix is a
// preorder — reflexive and transitive — on every fixture.
func TestContainmentReflexiveTransitive(t *testing.T) {
	for _, src := range exprFixtures {
		d := Compile(pattern.MustParse(src))
		cont := d.Containment()
		n := d.NumStates()
		for s := 0; s < n; s++ {
			if !cont[s][s] {
				t.Fatalf("%q: containment not reflexive at state %d", src, s)
			}
		}
		for s := 0; s < n; s++ {
			for q := 0; q < n; q++ {
				for r := 0; r < n; r++ {
					if cont[s][q] && cont[q][r] && !cont[s][r] {
						t.Fatalf("%q: containment not transitive: %d⊇%d, %d⊇%d, but not %d⊇%d",
							src, s, q, q, r, s, r)
					}
				}
			}
		}
	}
}

// TestBoundEmptyAlphabet: binding against a zero-label space must not
// panic and must make everything irrelevant.
func TestBoundEmptyAlphabet(t *testing.T) {
	d := Compile(pattern.MustParse("a/b"))
	b := d.Bind(func(string) int { return -1 }, 0)
	if b.Relevant(0) {
		t.Fatal("label relevant in empty space")
	}
	if b.Step(b.Start, 0) != NoState {
		t.Fatal("transition in empty space")
	}
}
