// Package bench measures streaming engines the way §5.1.1 of the paper
// does: per-tuple processing latency (reported as tail latency, the
// 99th percentile), throughput in edges per second, and probes of the
// internal index sizes.
package bench

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Histogram is a log-bucketed latency histogram with ~4% relative
// precision per bucket, bounded memory, and exact min/max tracking.
// The zero value is ready to use.
type Histogram struct {
	counts []uint64
	total  uint64
	sum    float64
	min    int64
	max    int64
}

// bucketBase is the per-bucket growth factor; 1.04 gives ~4% relative
// error and ~590 buckets for the ns..minute range.
const bucketBase = 1.04

func bucketIndex(v int64) int {
	if v <= 0 {
		return 0
	}
	return 1 + int(math.Log(float64(v))/math.Log(bucketBase))
}

func bucketValue(i int) int64 {
	if i == 0 {
		return 0
	}
	return int64(math.Pow(bucketBase, float64(i)))
}

// Record adds one latency observation.
func (h *Histogram) Record(d time.Duration) {
	v := int64(d)
	i := bucketIndex(v)
	if i >= len(h.counts) {
		grown := make([]uint64, i+16)
		copy(grown, h.counts)
		h.counts = grown
	}
	h.counts[i]++
	h.total++
	h.sum += float64(v)
	if h.total == 1 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.total }

// Mean returns the mean latency.
func (h *Histogram) Mean() time.Duration {
	if h.total == 0 {
		return 0
	}
	return time.Duration(h.sum / float64(h.total))
}

// Min and Max return the exact extreme observations.
func (h *Histogram) Min() time.Duration { return time.Duration(h.min) }

// Max returns the largest observation.
func (h *Histogram) Max() time.Duration { return time.Duration(h.max) }

// Quantile returns the latency at quantile q ∈ [0,1], accurate to the
// bucket resolution (and exact at the extremes).
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.total == 0 {
		return 0
	}
	if q <= 0 {
		return h.Min()
	}
	if q >= 1 {
		return h.Max()
	}
	rank := uint64(q * float64(h.total))
	if rank >= h.total {
		rank = h.total - 1
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen > rank {
			v := bucketValue(i)
			if v > h.max {
				v = h.max
			}
			if v < h.min {
				v = h.min
			}
			return time.Duration(v)
		}
	}
	return h.Max()
}

// P50, P95, P99 are convenience accessors for the quantiles the
// experiments report.
func (h *Histogram) P50() time.Duration { return h.Quantile(0.50) }

// P95 returns the 95th-percentile latency.
func (h *Histogram) P95() time.Duration { return h.Quantile(0.95) }

// P99 returns the tail latency the paper reports.
func (h *Histogram) P99() time.Duration { return h.Quantile(0.99) }

// String summarizes the distribution.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v max=%v",
		h.total, h.Mean(), h.P50(), h.P99(), h.Max())
}

// ExactQuantile computes a quantile from raw samples; used in tests to
// validate the histogram approximation.
func ExactQuantile(samples []time.Duration, q float64) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	i := int(q * float64(len(s)))
	if i >= len(s) {
		i = len(s) - 1
	}
	return s[i]
}
