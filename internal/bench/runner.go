package bench

import (
	"fmt"
	"time"

	"streamrpq/internal/core"
	"streamrpq/internal/stream"
)

// Result is the measurement of one engine over one stream: the numbers
// behind every bar of Figures 4, 6, 8–11.
type Result struct {
	Query   string
	Dataset string

	Tuples   int64 // tuples offered
	Measured int64 // tuples whose label is in ΣQ (latency is recorded for these)
	Results  int64 // result pairs emitted

	Elapsed    time.Duration
	Throughput float64 // measured (relevant) edges per second

	Mean time.Duration
	P50  time.Duration
	P95  time.Duration
	P99  time.Duration // "tail latency" in the paper
	Max  time.Duration

	Trees      int // Δ index size at end of run
	Nodes      int
	ExpiryTime time.Duration
	Stats      core.Stats
}

// String renders the one-line summary used by the CLI.
func (r Result) String() string {
	return fmt.Sprintf("%-8s %-6s %8.0f edges/s  p99=%-10v mean=%-10v results=%-8d trees=%-6d nodes=%d",
		r.Query, r.Dataset, r.Throughput, r.P99, r.Mean, r.Results, r.Trees, r.Nodes)
}

// Relevance decides which tuples are measured. The paper only reports
// latency "of tuples whose labels match a label in the given query".
type Relevance func(t stream.Tuple) bool

// Run replays the stream through the engine, timing each relevant
// tuple individually.
func Run(engine core.Engine, tuples []stream.Tuple, relevant Relevance, query, dataset string) Result {
	var h Histogram
	var measured int64
	start := time.Now()
	for _, t := range tuples {
		if relevant != nil && !relevant(t) {
			engine.Process(t)
			continue
		}
		t0 := time.Now()
		engine.Process(t)
		h.Record(time.Since(t0))
		measured++
	}
	elapsed := time.Since(start)

	st := engine.Stats()
	res := Result{
		Query:      query,
		Dataset:    dataset,
		Tuples:     int64(len(tuples)),
		Measured:   measured,
		Results:    st.Results,
		Elapsed:    elapsed,
		Mean:       h.Mean(),
		P50:        h.P50(),
		P95:        h.P95(),
		P99:        h.P99(),
		Max:        h.Max(),
		Trees:      st.Trees,
		Nodes:      st.Nodes,
		ExpiryTime: st.ExpiryTime,
		Stats:      st,
	}
	if elapsed > 0 && measured > 0 {
		// The prototype is a closed system: throughput is the inverse
		// of mean processing latency (§5.1.1).
		res.Throughput = float64(measured) / h.meanSeconds()
	}
	return res
}

func (h *Histogram) meanSeconds() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / 1e9
}

// RelevantLabels builds a Relevance predicate from a bound automaton's
// label view.
func RelevantLabels(isRelevant func(label int) bool) Relevance {
	return func(t stream.Tuple) bool { return isRelevant(int(t.Label)) }
}
