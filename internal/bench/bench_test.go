package bench

import (
	"math/rand"
	"testing"
	"time"

	"streamrpq/internal/automaton"
	"streamrpq/internal/core"
	"streamrpq/internal/pattern"
	"streamrpq/internal/stream"
	"streamrpq/internal/window"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("zero histogram not zero")
	}
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	if h.Count() != 1000 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Min() != time.Microsecond || h.Max() != 1000*time.Microsecond {
		t.Fatalf("min=%v max=%v", h.Min(), h.Max())
	}
	mean := h.Mean()
	if mean < 480*time.Microsecond || mean > 520*time.Microsecond {
		t.Fatalf("mean = %v, want ≈500µs", mean)
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var h Histogram
	var samples []time.Duration
	for i := 0; i < 50000; i++ {
		// Log-uniform latencies from 100ns to 10ms.
		d := time.Duration(float64(100) * pow(10, rng.Float64()*5))
		h.Record(d)
		samples = append(samples, d)
	}
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
		got := h.Quantile(q)
		want := ExactQuantile(samples, q)
		ratio := float64(got) / float64(want)
		if ratio < 0.90 || ratio > 1.10 {
			t.Errorf("q=%.2f: histogram %v vs exact %v (ratio %.3f)", q, got, want, ratio)
		}
	}
}

func pow(base, exp float64) float64 {
	r := 1.0
	for exp >= 1 {
		r *= base
		exp--
	}
	// fractional part via simple approximation: base^exp = e^(exp ln base)
	if exp > 0 {
		// 3-term Taylor is fine for test data generation
		ln := 2.302585092994046 // ln 10 (base is always 10 here)
		x := exp * ln
		r *= 1 + x + x*x/2 + x*x*x/6 + x*x*x*x/24
	}
	return r
}

func TestHistogramExtremeQuantiles(t *testing.T) {
	var h Histogram
	h.Record(5 * time.Millisecond)
	h.Record(10 * time.Millisecond)
	if h.Quantile(0) != 5*time.Millisecond {
		t.Errorf("q0 = %v", h.Quantile(0))
	}
	if h.Quantile(1) != 10*time.Millisecond {
		t.Errorf("q1 = %v", h.Quantile(1))
	}
}

func TestHistogramZeroDuration(t *testing.T) {
	var h Histogram
	h.Record(0)
	h.Record(time.Nanosecond)
	if h.Count() != 2 {
		t.Fatal("zero duration dropped")
	}
	if h.Min() != 0 {
		t.Fatalf("min = %v", h.Min())
	}
}

func TestRun(t *testing.T) {
	d := automaton.Compile(pattern.MustParse("a/b"))
	bound := d.Bind(func(s string) int {
		switch s {
		case "a":
			return 0
		case "b":
			return 1
		}
		return -1
	}, 3)
	engine := core.NewRAPQ(bound, window.Spec{Size: 100, Slide: 1})
	tuples := []stream.Tuple{
		{TS: 1, Src: 1, Dst: 2, Label: 0},
		{TS: 2, Src: 2, Dst: 3, Label: 1},
		{TS: 3, Src: 3, Dst: 4, Label: 2}, // irrelevant
	}
	res := Run(engine, tuples, RelevantLabels(bound.Relevant), "Qx", "toy")
	if res.Tuples != 3 {
		t.Fatalf("Tuples = %d", res.Tuples)
	}
	if res.Measured != 2 {
		t.Fatalf("Measured = %d, want 2 (irrelevant tuple unmeasured)", res.Measured)
	}
	if res.Results != 1 {
		t.Fatalf("Results = %d, want 1", res.Results)
	}
	if res.Throughput <= 0 {
		t.Fatal("throughput not positive")
	}
	if res.String() == "" {
		t.Fatal("empty summary")
	}
}
