// Package baseline implements the comparison system of §5.6 of Pacaci
// et al. (SIGMOD 2020): persistent RPQ evaluation emulated on top of a
// static engine. The paper builds a middle layer over Virtuoso that
// inserts each arriving tuple into the store and re-evaluates the
// query over the window content from scratch; Rescan reproduces that
// strategy over the in-memory snapshot graph and the batch
// product-graph algorithm, which is exactly the work a static engine
// must redo per tuple because it cannot reuse previous computations.
package baseline

import (
	"streamrpq/internal/automaton"
	"streamrpq/internal/core"
	"streamrpq/internal/graph"
	"streamrpq/internal/stream"
	"streamrpq/internal/window"
)

// Rescan is the per-tuple re-evaluation baseline. It maintains the
// window content incrementally (that part is cheap either way) but
// recomputes the full result set with the batch algorithm on every
// relevant tuple, emitting newly discovered pairs to the sink.
type Rescan struct {
	a    *automaton.Bound
	g    *graph.Graph
	win  *window.Manager
	sink core.Sink

	now   int64
	seen  map[core.Pair]struct{} // cumulative result set (implicit windows)
	stats core.Stats
}

// NewRescan returns a Rescan baseline engine.
func NewRescan(a *automaton.Bound, spec window.Spec, opts ...Option) *Rescan {
	cfg := cfg{sink: discard{}}
	for _, o := range opts {
		o(&cfg)
	}
	return &Rescan{
		a:    a,
		g:    graph.New(),
		win:  window.NewManager(spec),
		sink: cfg.sink,
		seen: make(map[core.Pair]struct{}),
	}
}

// Option configures the baseline.
type Option func(*cfg)

type cfg struct {
	sink core.Sink
}

// WithSink directs newly discovered results to s.
func WithSink(s core.Sink) Option { return func(c *cfg) { c.sink = s } }

type discard struct{}

func (discard) OnMatch(core.Match)      {}
func (discard) OnInvalidate(core.Match) {}

// Graph implements core.Engine.
func (r *Rescan) Graph() *graph.Graph { return r.g }

// Stats implements core.Engine.
func (r *Rescan) Stats() core.Stats {
	s := r.stats
	s.Edges = r.g.NumEdges()
	s.Vertices = r.g.NumVertices()
	return s
}

// Process implements core.Engine: update the window, then re-evaluate
// the query over the whole window content.
func (r *Rescan) Process(t stream.Tuple) {
	r.stats.TuplesSeen++
	if t.TS > r.now {
		r.now = t.TS
	}
	if deadline, due := r.win.Observe(t.TS); due {
		r.g.Expire(deadline, nil)
	}
	if !r.a.Relevant(int(t.Label)) {
		r.stats.TuplesDropped++
		return
	}
	if t.Op == stream.Delete {
		r.g.Delete(t.Key())
		return // implicit windows: previously reported results stand
	}
	r.g.Insert(t.Src, t.Dst, t.Label, t.TS)

	// Full batch re-evaluation over the window — the cost a static
	// engine pays for every tuple of a persistent query.
	snap := core.BatchWindowed(r.g, r.a, r.now, r.win.Spec().Size)
	for p := range snap {
		if _, ok := r.seen[p]; ok {
			continue
		}
		r.seen[p] = struct{}{}
		r.stats.Results++
		r.sink.OnMatch(core.Match{From: p.From, To: p.To, TS: r.now})
	}
}

var _ core.Engine = (*Rescan)(nil)
