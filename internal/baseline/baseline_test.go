package baseline

import (
	"math/rand"
	"testing"

	"streamrpq/internal/automaton"
	"streamrpq/internal/core"
	"streamrpq/internal/pattern"
	"streamrpq/internal/stream"
	"streamrpq/internal/window"
)

func bindExpr(t testing.TB, expr string, labels ...string) *automaton.Bound {
	t.Helper()
	ids := map[string]int{}
	for i, l := range labels {
		ids[l] = i
	}
	return automaton.Compile(pattern.MustParse(expr)).Bind(func(s string) int {
		if id, ok := ids[s]; ok {
			return id
		}
		return -1
	}, len(labels))
}

// TestRescanAgreesWithRAPQ: on append-only streams, the baseline and
// the incremental engine must produce identical cumulative result sets
// — only their costs differ.
func TestRescanAgreesWithRAPQ(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	for _, expr := range []string{"a*", "a/b*", "(a/b)+", "a/b/c"} {
		a := bindExpr(t, expr, "a", "b", "c")
		spec := window.Spec{Size: 25, Slide: 1}

		base := core.NewCollector()
		inc := core.NewCollector()
		rb := NewRescan(a, spec, WithSink(base))
		re := core.NewRAPQ(a, spec, core.WithSink(inc))

		ts := int64(0)
		for i := 0; i < 400; i++ {
			ts += rng.Int63n(3)
			tu := stream.Tuple{
				TS:    ts,
				Src:   stream.VertexID(rng.Intn(10)),
				Dst:   stream.VertexID(rng.Intn(10)),
				Label: stream.LabelID(rng.Intn(3)),
			}
			rb.Process(tu)
			re.Process(tu)
		}
		bp, ip := base.Pairs(), inc.Pairs()
		if len(bp) != len(ip) {
			t.Fatalf("%q: baseline %d pairs, incremental %d pairs", expr, len(bp), len(ip))
		}
		for p := range bp {
			if _, ok := ip[p]; !ok {
				t.Fatalf("%q: pair %v only in baseline", expr, p)
			}
		}
	}
}

func TestRescanDropsIrrelevant(t *testing.T) {
	a := bindExpr(t, "a", "a", "b")
	r := NewRescan(a, window.Spec{Size: 10, Slide: 1})
	r.Process(stream.Tuple{TS: 1, Src: 1, Dst: 2, Label: 1})
	if st := r.Stats(); st.TuplesDropped != 1 || st.Edges != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRescanDeleteStopsNewResults(t *testing.T) {
	a := bindExpr(t, "a/b", "a", "b")
	sink := core.NewCollector()
	r := NewRescan(a, window.Spec{Size: 100, Slide: 1}, WithSink(sink))
	r.Process(stream.Tuple{TS: 1, Src: 1, Dst: 2, Label: 0})
	r.Process(stream.Tuple{TS: 2, Src: 1, Dst: 2, Label: 0, Op: stream.Delete})
	r.Process(stream.Tuple{TS: 3, Src: 2, Dst: 3, Label: 1})
	if len(sink.Pairs()) != 0 {
		t.Fatalf("deleted edge still produced results: %v", sink.Pairs())
	}
}
