package streamrpq

import (
	"testing"
)

func TestCompile(t *testing.T) {
	q, err := Compile("(follows/mentions)+")
	if err != nil {
		t.Fatal(err)
	}
	if q.NumStates() != 3 {
		t.Errorf("NumStates = %d, want 3", q.NumStates())
	}
	if got := q.Alphabet(); len(got) != 2 || got[0] != "follows" || got[1] != "mentions" {
		t.Errorf("Alphabet = %v", got)
	}
	if q.Size() != 3 {
		t.Errorf("Size = %d, want 3", q.Size())
	}
	if q.ConflictFreeEverywhere() {
		t.Error("(follows/mentions)+ should not have the containment property")
	}
	if !MustCompile("(a|b)*").ConflictFreeEverywhere() {
		t.Error("(a|b)* should have the containment property")
	}
	if _, err := Compile("a|"); err == nil {
		t.Error("bad expression compiled")
	}
}

func TestMustCompilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustCompile did not panic")
		}
	}()
	MustCompile("(((")
}

// TestEvaluatorPaperExample drives the full public API over the paper's
// Figure 1 stream.
func TestEvaluatorPaperExample(t *testing.T) {
	q := MustCompile("(follows/mentions)+")
	ev, err := NewEvaluator(q, WithWindow(15, 1))
	if err != nil {
		t.Fatal(err)
	}
	type ed struct {
		ts      int64
		s, d, l string
	}
	edges := []ed{
		{4, "y", "u", "mentions"},
		{6, "x", "z", "follows"},
		{9, "u", "v", "follows"},
		{11, "z", "w", "mentions"},
		{13, "x", "y", "follows"},
		{14, "z", "u", "mentions"},
		{15, "u", "x", "mentions"},
		{18, "v", "y", "mentions"},
		{19, "w", "u", "follows"},
	}
	found := map[[2]string]int64{}
	for _, e := range edges {
		ms, err := ev.Ingest(Tuple{TS: e.ts, Src: e.s, Dst: e.d, Label: e.l})
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range ms {
			if _, ok := found[[2]string{m.From, m.To}]; !ok {
				found[[2]string{m.From, m.To}] = m.TS
			}
		}
	}
	// The pair (x,y) of the paper's running example must be discovered
	// at t=18.
	if ts, ok := found[[2]string{"x", "y"}]; !ok || ts != 18 {
		t.Errorf("(x,y) found at %d (ok=%v), want 18", ts, ok)
	}
	if ts, ok := found[[2]string{"x", "w"}]; !ok || ts != 11 {
		t.Errorf("(x,w) found at %d (ok=%v), want 11", ts, ok)
	}
	st := ev.Stats()
	if st.TuplesSeen != int64(len(edges)) {
		t.Errorf("TuplesSeen = %d, want %d", st.TuplesSeen, len(edges))
	}
}

func TestEvaluatorSimpleSemantics(t *testing.T) {
	q := MustCompile("(a/b)+")
	ev, err := NewEvaluator(q, WithWindow(100, 1), WithSemantics(Simple))
	if err != nil {
		t.Fatal(err)
	}
	if ev.Semantics() != Simple {
		t.Fatal("semantics not simple")
	}
	// x-a->y-b->u-a->v-b->y is not simple for (x,y); x-a->z-b->u gives
	// the simple witness x,z,u,v,y.
	seq := []Tuple{
		{TS: 1, Src: "x", Dst: "y", Label: "a"},
		{TS: 2, Src: "y", Dst: "u", Label: "b"},
		{TS: 3, Src: "u", Dst: "v", Label: "a"},
		{TS: 4, Src: "x", Dst: "z", Label: "a"},
		{TS: 5, Src: "z", Dst: "u", Label: "b"},
		{TS: 6, Src: "v", Dst: "y", Label: "b"},
	}
	got := map[[2]string]bool{}
	for _, tu := range seq {
		for _, m := range ev.MustIngest(tu) {
			got[[2]string{m.From, m.To}] = true
		}
	}
	if !got[[2]string{"x", "y"}] {
		t.Errorf("(x,y) missing under simple semantics: %v", got)
	}
}

func TestEvaluatorDeletionsInvalidate(t *testing.T) {
	q := MustCompile("a/b")
	var retracted []Match
	ev, err := NewEvaluator(q,
		WithWindow(100, 1),
		WithOnInvalidate(func(m Match) { retracted = append(retracted, m) }))
	if err != nil {
		t.Fatal(err)
	}
	ev.MustIngest(Tuple{TS: 1, Src: "a1", Dst: "a2", Label: "a"})
	ms := ev.MustIngest(Tuple{TS: 2, Src: "a2", Dst: "a3", Label: "b"})
	if len(ms) != 1 || ms[0].From != "a1" || ms[0].To != "a3" {
		t.Fatalf("matches = %v", ms)
	}
	ev.MustIngest(Tuple{TS: 3, Src: "a1", Dst: "a2", Label: "a", Delete: true})
	if len(retracted) != 1 || retracted[0].From != "a1" || retracted[0].To != "a3" {
		t.Fatalf("retracted = %v", retracted)
	}
}

func TestEvaluatorOutOfOrderRejected(t *testing.T) {
	ev, _ := NewEvaluator(MustCompile("a"), WithWindow(10, 1))
	ev.MustIngest(Tuple{TS: 5, Src: "u", Dst: "v", Label: "a"})
	if _, err := ev.Ingest(Tuple{TS: 4, Src: "u", Dst: "v", Label: "a"}); err == nil {
		t.Fatal("out-of-order tuple accepted")
	}
}

func TestEvaluatorBadWindow(t *testing.T) {
	if _, err := NewEvaluator(MustCompile("a"), WithWindow(0, 1)); err == nil {
		t.Fatal("zero window accepted")
	}
	if _, err := NewEvaluator(MustCompile("a"), WithWindow(10, 20)); err == nil {
		t.Fatal("slide > size accepted")
	}
}

func TestEvaluatorIrrelevantLabel(t *testing.T) {
	ev, _ := NewEvaluator(MustCompile("a"), WithWindow(10, 1))
	ms := ev.MustIngest(Tuple{TS: 1, Src: "u", Dst: "v", Label: "other"})
	if len(ms) != 0 {
		t.Fatalf("irrelevant label produced matches: %v", ms)
	}
	if st := ev.Stats(); st.TuplesDropped != 1 {
		t.Fatalf("TuplesDropped = %d, want 1", st.TuplesDropped)
	}
}

func TestEvaluatorWindowExpiryNoRetraction(t *testing.T) {
	// Implicit windows: expiry must not call the invalidation hook.
	var retracted []Match
	ev, _ := NewEvaluator(MustCompile("a"), WithWindow(5, 1),
		WithOnInvalidate(func(m Match) { retracted = append(retracted, m) }))
	ev.MustIngest(Tuple{TS: 1, Src: "u", Dst: "v", Label: "a"})
	ev.MustIngest(Tuple{TS: 100, Src: "p", Dst: "q", Label: "a"})
	if len(retracted) != 0 {
		t.Fatalf("window expiry retracted results: %v", retracted)
	}
}
