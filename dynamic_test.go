package streamrpq

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// dynStream generates a random stream over three labels (so a query
// registered mid-stream can carry a label the static set never bound);
// delRatio is the probability a tuple re-deletes a live edge.
func dynStream(seed int64, n int, delRatio float64) []Tuple {
	rng := rand.New(rand.NewSource(seed))
	labels := []string{"a", "b", "c"}
	var out, inserted []Tuple
	ts := int64(0)
	for i := 0; i < n; i++ {
		ts += rng.Int63n(3)
		if len(inserted) > 0 && rng.Float64() < delRatio {
			old := inserted[rng.Intn(len(inserted))]
			out = append(out, Tuple{TS: ts, Src: old.Src, Dst: old.Dst, Label: old.Label, Delete: true})
			continue
		}
		tu := Tuple{
			TS:    ts,
			Src:   fmt.Sprintf("v%d", rng.Intn(9)),
			Dst:   fmt.Sprintf("v%d", rng.Intn(9)),
			Label: labels[rng.Intn(len(labels))],
		}
		out = append(out, tu)
		inserted = append(inserted, tu)
	}
	return out
}

func dynBatches(stream []Tuple, size int) [][]Tuple {
	var out [][]Tuple
	for i := 0; i < len(stream); i += size {
		out = append(out, stream[i:min(i+size, len(stream))])
	}
	return out
}

// dynGroup is one BatchResult with the query pointer replaced by its
// registration index, comparable across evaluator instances.
type dynGroup struct {
	Tuple         int
	Query         int
	Matches       []Match
	Invalidations []Match
}

// dynGroups canonicalizes: within one (tuple, query) group the
// sequential backend's emission order is traversal-dependent (only the
// sharded merge sorts it), so groups compare as sorted sets.
func dynGroups(brs []BatchResult, qidx map[*Query]int) []dynGroup {
	canon := func(ms []Match) []Match {
		out := append([]Match{}, ms...)
		sort.Slice(out, func(i, j int) bool {
			a, b := out[i], out[j]
			if a.From != b.From {
				return a.From < b.From
			}
			if a.To != b.To {
				return a.To < b.To
			}
			return a.TS < b.TS
		})
		return out
	}
	out := []dynGroup{}
	for _, br := range brs {
		out = append(out, dynGroup{
			Tuple:         br.Tuple,
			Query:         qidx[br.Query],
			Matches:       canon(br.Matches),
			Invalidations: canon(br.Invalidations),
		})
	}
	return out
}

func dynFilter(groups []dynGroup, drop int) []dynGroup {
	out := []dynGroup{}
	for _, g := range groups {
		if g.Query != drop {
			out = append(out, g)
		}
	}
	return out
}

// dynEval builds an evaluator in dynamic (retain-all) mode for the
// given backend configuration. shards == 0 selects the sequential
// backend.
func dynEval(t *testing.T, queries []*Query, shards, depth int) *MultiEvaluator {
	t.Helper()
	m, err := NewMultiEvaluator(40, 10, queries...)
	if err != nil {
		t.Fatal(err)
	}
	if depth > 0 {
		if err := m.WithPipelineDepth(depth); err != nil {
			t.Fatal(err)
		}
	}
	if shards > 0 {
		if err := m.WithShards(shards); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.EnableDynamicQueries(); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestAddQueryMatchesFromStartOracle is the window-bootstrap
// differential of online registration: an evaluator that registers a
// query mid-stream must emit, from the registration batch on, exactly
// the result stream (matches AND invalidations, in the same order) of
// an oracle that ran the query from stream start — and nothing before
// it. Then RemoveQuery must truncate the query's stream at the next
// batch boundary without disturbing the other queries. Covered for the
// sequential and sharded backends (shards 1/8 × pipeline depth 1/2) on
// append-only and 15%-churn streams.
func TestAddQueryMatchesFromStartOracle(t *testing.T) {
	static := func() []*Query {
		return []*Query{MustCompile("(a/b)+"), MustCompile("a/b*")}
	}
	const dynSrc = "c/(a|b)*"
	configs := []struct {
		name          string
		shards, depth int
	}{
		{"sequential", 0, 0},
		{"shards=1/depth=1", 1, 1},
		{"shards=1/depth=2", 1, 2},
		{"shards=8/depth=1", 8, 1},
		{"shards=8/depth=2", 8, 2},
	}
	for _, churn := range []float64{0, 0.15} {
		for _, cfg := range configs {
			t.Run(fmt.Sprintf("churn=%.0f%%/%s", churn*100, cfg.name), func(t *testing.T) {
				batches := dynBatches(dynStream(11, 600, churn), 40)
				regAt := len(batches) / 3
				rmAt := 2 * len(batches) / 3

				oq := append(static(), MustCompile(dynSrc))
				oracle := dynEval(t, oq, cfg.shards, cfg.depth)
				defer oracle.Close()
				oidx := map[*Query]int{}
				for i, q := range oq {
					oidx[q] = i
				}

				tq := static()
				test := dynEval(t, tq, cfg.shards, cfg.depth)
				defer test.Close()
				tidx := map[*Query]int{}
				for i, q := range tq {
					tidx[q] = i
				}
				dynIdx := len(tq)

				for i, b := range batches {
					if i == regAt {
						q := MustCompile(dynSrc)
						id, err := test.AddQuery(q)
						if err != nil {
							t.Fatal(err)
						}
						if id != dynIdx {
							t.Fatalf("AddQuery index = %d, want %d", id, dynIdx)
						}
						tidx[q] = id
					}
					if i == rmAt {
						if err := test.RemoveQuery(dynIdx); err != nil {
							t.Fatal(err)
						}
						if got := test.NumQueries(); got != len(tq) {
							t.Fatalf("NumQueries after remove = %d, want %d", got, len(tq))
						}
					}
					obrs, err := oracle.IngestBatch(b)
					if err != nil {
						t.Fatal(err)
					}
					tbrs, err := test.IngestBatch(b)
					if err != nil {
						t.Fatal(err)
					}
					want := dynGroups(obrs, oidx)
					if i < regAt || i >= rmAt {
						// Outside the registration interval the only
						// difference from the oracle is the absence of the
						// dynamic query's groups.
						want = dynFilter(want, dynIdx)
					}
					got := dynGroups(tbrs, tidx)
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("batch %d (reg@%d rm@%d): results diverge\n got: %v\nwant: %v",
							i, regAt, rmAt, got, want)
					}
				}
			})
		}
	}
}

// TestAddQueryGuards: the registration API enforces its prerequisites.
func TestAddQueryGuards(t *testing.T) {
	m, err := NewMultiEvaluator(40, 10, MustCompile("a/b"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddQuery(MustCompile("b/a")); err == nil {
		t.Fatal("AddQuery without EnableDynamicQueries: want error")
	}
	if err := m.RemoveQuery(0); err == nil {
		t.Fatal("RemoveQuery without EnableDynamicQueries: want error")
	}
	if _, err := m.Ingest(Tuple{TS: 1, Src: "x", Dst: "y", Label: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := m.EnableDynamicQueries(); err == nil {
		t.Fatal("EnableDynamicQueries after first tuple: want error")
	}

	m2, err := NewMultiEvaluator(40, 10, MustCompile("a/b"))
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.EnableDynamicQueries(); err != nil {
		t.Fatal(err)
	}
	if _, err := m2.Ingest(Tuple{TS: 1, Src: "x", Dst: "y", Label: "a"}); err != nil {
		t.Fatal(err)
	}
	id, err := m2.AddQuery(MustCompile("b/a"))
	if err != nil {
		t.Fatal(err)
	}
	if q := m2.QueryByIndex(id); q == nil || q.String() != "b/a" {
		t.Fatalf("QueryByIndex(%d) = %v", id, q)
	}
	if err := m2.RemoveQuery(id); err != nil {
		t.Fatal(err)
	}
	if err := m2.RemoveQuery(id); err == nil {
		t.Fatal("double RemoveQuery: want error")
	}
	if q := m2.QueryByIndex(id); q != nil {
		t.Fatalf("QueryByIndex after remove = %v, want nil", q)
	}
	// Re-registration gets a fresh index; the old one stays retired.
	id2, err := m2.AddQuery(MustCompile("b/a"))
	if err != nil {
		t.Fatal(err)
	}
	if id2 == id {
		t.Fatalf("re-registration reused index %d", id)
	}
}

// TestDynamicPersistRecover: online registration composes with
// durability — AddQuery checkpoints synchronously, so a kill -9 after
// any completed call recovers the full query set, the retained graph
// and the per-label clocks, and the resumed run continues exactly like
// an uninterrupted one.
func TestDynamicPersistRecover(t *testing.T) {
	batches := dynBatches(dynStream(23, 480, 0.15), 40)
	regAt, killAt := len(batches)/4, len(batches)/2
	const dynSrc = "c/(a|b)*"

	build := func(dir string) *MultiEvaluator {
		m := dynEval(t, []*Query{MustCompile("(a/b)+"), MustCompile("a/b*")}, 4, 2)
		if dir != "" {
			if err := m.WithPersistence(dir); err != nil {
				t.Fatal(err)
			}
		}
		return m
	}
	run := func(m *MultiEvaluator, bs [][]Tuple, base, reg int, qidx map[*Query]int) []dynGroup {
		t.Helper()
		var out []dynGroup
		for i, b := range bs {
			if base+i == reg {
				q := MustCompile(dynSrc)
				id, err := m.AddQuery(q)
				if err != nil {
					t.Fatal(err)
				}
				qidx[q] = id
			}
			brs, err := m.IngestBatch(b)
			if err != nil {
				t.Fatal(err)
			}
			for _, g := range dynGroups(brs, qidx) {
				g.Tuple += (base + i) * 40
				out = append(out, g)
			}
		}
		return out
	}

	// Uninterrupted reference run (no persistence, same registration).
	refIdx := map[*Query]int{}
	ref := build("")
	for i, q := range ref.RegisteredQueries() {
		refIdx[q] = i
	}
	want := run(ref, batches, 0, regAt, refIdx)
	ref.Close()

	// Persisted run with a kill between batches.
	dir := t.TempDir()
	m := build(dir)
	gotIdx := map[*Query]int{}
	for i, q := range m.RegisteredQueries() {
		gotIdx[q] = i
	}
	got := run(m, batches[:killAt], 0, regAt, gotIdx)
	m.Close() // kill -9 stand-in: fd/lock release only, state untouched

	m2, redelivered, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if len(redelivered) != 0 {
		t.Fatalf("redelivered %d results, want 0 (every batch committed)", len(redelivered))
	}
	if !m2.DynamicQueries() {
		t.Fatal("recovered evaluator lost dynamic mode")
	}
	if got, want := m2.NumQueries(), 3; got != want {
		t.Fatalf("recovered NumQueries = %d, want %d", got, want)
	}
	got2Idx := map[*Query]int{}
	for i, q := range m2.RegisteredQueries() {
		got2Idx[q] = i
	}
	got = append(got, run(m2, batches[killAt:], killAt, regAt, got2Idx)...)

	if !reflect.DeepEqual(got, want) {
		t.Fatalf("kill/recover run diverges from uninterrupted run (%d vs %d groups)", len(got), len(want))
	}

	// The recovered evaluator accepts further online registrations.
	if _, err := m2.AddQuery(MustCompile("b/c")); err != nil {
		t.Fatal(err)
	}
}
