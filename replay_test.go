package streamrpq

import (
	"os"
	"strings"
	"testing"
)

// TestReplayFigure1 is the end-to-end integration test: text stream
// file → Replay → evaluator → result stream, on the paper's running
// example.
func TestReplayFigure1(t *testing.T) {
	f, err := os.Open("testdata/figure1.stream")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	ev, err := NewEvaluator(MustCompile("(follows/mentions)+"), WithWindow(15, 1))
	if err != nil {
		t.Fatal(err)
	}
	got := map[[2]string]int64{}
	n, err := Replay(f, ev, func(m Match) {
		if _, ok := got[[2]string{m.From, m.To}]; !ok {
			got[[2]string{m.From, m.To}] = m.TS
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 9 {
		t.Fatalf("replayed %d tuples, want 9", n)
	}
	want := map[[2]string]int64{
		{"x", "w"}: 11,
		{"x", "u"}: 13,
		{"u", "y"}: 18,
		{"x", "y"}: 18,
		{"x", "x"}: 19,
		{"w", "x"}: 19,
		{"w", "w"}: 19,
		{"w", "u"}: 19,
		{"w", "y"}: 19,
	}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for p, ts := range want {
		if got[p] != ts {
			t.Errorf("pair %v discovered at %d, want %d", p, got[p], ts)
		}
	}
}

func TestReplayParseErrors(t *testing.T) {
	cases := []string{
		"nonsense line here extra",
		"abc u v l",
		"1 u v l *",
	}
	for _, in := range cases {
		ev, _ := NewEvaluator(MustCompile("l"), WithWindow(10, 1))
		if _, err := Replay(strings.NewReader(in), ev, nil); err == nil {
			t.Errorf("input %q: want error", in)
		}
	}
}

// TestReplayErrorsCarryLineNumbers: parse errors name the 1-based line
// of the malformed input, comments and blank lines included in the
// count, so stream files are debuggable.
func TestReplayErrorsCarryLineNumbers(t *testing.T) {
	in := "# header\n1 a b l\n\nbogus line\n"
	ev, _ := NewEvaluator(MustCompile("l"), WithWindow(10, 1))
	_, err := Replay(strings.NewReader(in), ev, nil)
	if err == nil || !strings.Contains(err.Error(), "line 4") {
		t.Fatalf("error %v does not name line 4", err)
	}
}

// TestReplayMulti drives the batch replay path, including resume-skip.
func TestReplayMulti(t *testing.T) {
	in := "# s\n1 a b l\n2 b c l\n3 c d l\n"
	mk := func() *MultiEvaluator {
		m, err := NewMultiEvaluator(10, 1, MustCompile("l/l"))
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	m := mk()
	defer m.Close()
	var got []string
	n, err := ReplayMulti(strings.NewReader(in), m, 2, 0, func(br BatchResult) {
		for _, mt := range br.Matches {
			got = append(got, mt.From+"->"+mt.To)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("n = %d, want 3", n)
	}
	if len(got) != 2 || got[0] != "a->c" || got[1] != "b->d" {
		t.Fatalf("matches = %v", got)
	}

	// Resume-skip: skipping the first two tuples replays only the rest.
	m2 := mk()
	defer m2.Close()
	n, err = ReplayMulti(strings.NewReader(in), m2, 2, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("n after skip = %d, want 1", n)
	}

	// And parse errors carry line numbers here too.
	m3 := mk()
	defer m3.Close()
	if _, err := ReplayMulti(strings.NewReader("1 a b l\nnope\n"), m3, 2, 0, nil); err == nil ||
		!strings.Contains(err.Error(), "line 2") {
		t.Fatalf("error %v does not name line 2", err)
	}

	// Out-of-order tuples are attributed to their own line, not to the
	// later batch flush (batchSize 8 would otherwise defer detection).
	m4 := mk()
	defer m4.Close()
	if _, err := ReplayMulti(strings.NewReader("5 a b l\n3 a b l\n9 a b l\n"), m4, 8, 0, nil); err == nil ||
		!strings.Contains(err.Error(), "line 2") {
		t.Fatalf("out-of-order error %v does not name line 2", err)
	}
}

func TestReplayCommentsAndBlank(t *testing.T) {
	in := "# header\n\n1 a b l\n  \n2 b c l\n"
	ev, _ := NewEvaluator(MustCompile("l/l"), WithWindow(10, 1))
	var ms []Match
	n, err := Replay(strings.NewReader(in), ev, func(m Match) { ms = append(ms, m) })
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("n = %d, want 2", n)
	}
	if len(ms) != 1 || ms[0].From != "a" || ms[0].To != "c" {
		t.Fatalf("matches = %v", ms)
	}
}

func TestReplayDeletion(t *testing.T) {
	in := "1 a b l\n2 a b l -\n3 b c l\n"
	retracted := 0
	ev, _ := NewEvaluator(MustCompile("l"), WithWindow(10, 1),
		WithOnInvalidate(func(Match) { retracted++ }))
	if _, err := Replay(strings.NewReader(in), ev, nil); err != nil {
		t.Fatal(err)
	}
	if retracted != 1 {
		t.Fatalf("retracted = %d, want 1", retracted)
	}
}

func TestReplayOutOfOrderSurfacesError(t *testing.T) {
	in := "5 a b l\n3 a b l\n"
	ev, _ := NewEvaluator(MustCompile("l"), WithWindow(10, 1))
	if _, err := Replay(strings.NewReader(in), ev, nil); err == nil {
		t.Fatal("out-of-order stream accepted")
	}
}
