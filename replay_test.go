package streamrpq

import (
	"os"
	"strings"
	"testing"
)

// TestReplayFigure1 is the end-to-end integration test: text stream
// file → Replay → evaluator → result stream, on the paper's running
// example.
func TestReplayFigure1(t *testing.T) {
	f, err := os.Open("testdata/figure1.stream")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	ev, err := NewEvaluator(MustCompile("(follows/mentions)+"), WithWindow(15, 1))
	if err != nil {
		t.Fatal(err)
	}
	got := map[[2]string]int64{}
	n, err := Replay(f, ev, func(m Match) {
		if _, ok := got[[2]string{m.From, m.To}]; !ok {
			got[[2]string{m.From, m.To}] = m.TS
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 9 {
		t.Fatalf("replayed %d tuples, want 9", n)
	}
	want := map[[2]string]int64{
		{"x", "w"}: 11,
		{"x", "u"}: 13,
		{"u", "y"}: 18,
		{"x", "y"}: 18,
		{"x", "x"}: 19,
		{"w", "x"}: 19,
		{"w", "w"}: 19,
		{"w", "u"}: 19,
		{"w", "y"}: 19,
	}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for p, ts := range want {
		if got[p] != ts {
			t.Errorf("pair %v discovered at %d, want %d", p, got[p], ts)
		}
	}
}

func TestReplayParseErrors(t *testing.T) {
	cases := []string{
		"nonsense line here extra",
		"abc u v l",
		"1 u v l *",
	}
	for _, in := range cases {
		ev, _ := NewEvaluator(MustCompile("l"), WithWindow(10, 1))
		if _, err := Replay(strings.NewReader(in), ev, nil); err == nil {
			t.Errorf("input %q: want error", in)
		}
	}
}

func TestReplayCommentsAndBlank(t *testing.T) {
	in := "# header\n\n1 a b l\n  \n2 b c l\n"
	ev, _ := NewEvaluator(MustCompile("l/l"), WithWindow(10, 1))
	var ms []Match
	n, err := Replay(strings.NewReader(in), ev, func(m Match) { ms = append(ms, m) })
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("n = %d, want 2", n)
	}
	if len(ms) != 1 || ms[0].From != "a" || ms[0].To != "c" {
		t.Fatalf("matches = %v", ms)
	}
}

func TestReplayDeletion(t *testing.T) {
	in := "1 a b l\n2 a b l -\n3 b c l\n"
	retracted := 0
	ev, _ := NewEvaluator(MustCompile("l"), WithWindow(10, 1),
		WithOnInvalidate(func(Match) { retracted++ }))
	if _, err := Replay(strings.NewReader(in), ev, nil); err != nil {
		t.Fatal(err)
	}
	if retracted != 1 {
		t.Fatalf("retracted = %d, want 1", retracted)
	}
}

func TestReplayOutOfOrderSurfacesError(t *testing.T) {
	in := "5 a b l\n3 a b l\n"
	ev, _ := NewEvaluator(MustCompile("l"), WithWindow(10, 1))
	if _, err := Replay(strings.NewReader(in), ev, nil); err == nil {
		t.Fatal("out-of-order stream accepted")
	}
}
