package streamrpq

import (
	"reflect"
	"testing"
)

// collectBatches drains a stream through IngestBatch and returns the
// full grouped result sequence.
func collectBatches(t *testing.T, m *MultiEvaluator, stream []Tuple, batch int) []BatchResult {
	t.Helper()
	var out []BatchResult
	for i := 0; i < len(stream); i += batch {
		end := min(i+batch, len(stream))
		rs, err := m.IngestBatch(stream[i:end])
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, rs...)
	}
	return out
}

// TestWithPipelineDepthAgrees: the pipelined sharded backend (depths 2
// and 4) must produce the byte-identical IngestBatch result sequence
// of the barriered depth-1 backend, at several shard counts, and both
// must agree with the sequential backend's match multisets.
func TestWithPipelineDepthAgrees(t *testing.T) {
	stream := shardStream(77, 800)

	seq, err := NewMultiEvaluator(25, 5, shardQueries()...)
	if err != nil {
		t.Fatal(err)
	}
	want := collectMulti(t, seq, stream)
	seq.Close()

	for _, shards := range []int{1, 2, 8} {
		var base []BatchResult
		for _, depth := range []int{1, 2, 4} {
			m, err := NewMultiEvaluator(25, 5, shardQueries()...)
			if err != nil {
				t.Fatal(err)
			}
			if err := m.WithPipelineDepth(depth); err != nil {
				t.Fatal(err)
			}
			if err := m.WithShards(shards); err != nil {
				t.Fatal(err)
			}
			if got := m.PipelineDepth(); got != depth {
				t.Fatalf("PipelineDepth = %d, want %d", got, depth)
			}
			got := collectBatches(t, m, stream, 37)
			if err := m.Close(); err != nil {
				t.Fatal(err)
			}
			if depth == 1 {
				base = got
				// Cross-check the barriered run against the sequential
				// multisets per query.
				gotMulti := map[string]map[Match]int{}
				for _, br := range got {
					name := br.Query.String()
					if gotMulti[name] == nil {
						gotMulti[name] = map[Match]int{}
					}
					for _, match := range br.Matches {
						gotMulti[name][match]++
					}
				}
				if !reflect.DeepEqual(want, gotMulti) {
					t.Fatalf("shards=%d: barriered backend diverges from sequential", shards)
				}
				continue
			}
			if !reflect.DeepEqual(base, got) {
				t.Fatalf("shards=%d depth=%d: pipelined results diverge from barriered depth 1", shards, depth)
			}
		}
	}
}

// TestWithPipelineDepthOrderIndependent: WithPipelineDepth composes
// with WithShards in either order.
func TestWithPipelineDepthOrderIndependent(t *testing.T) {
	stream := shardStream(13, 300)
	var ref []BatchResult
	for _, depthFirst := range []bool{true, false} {
		m, err := NewMultiEvaluator(20, 4, shardQueries()...)
		if err != nil {
			t.Fatal(err)
		}
		if depthFirst {
			if err := m.WithPipelineDepth(3); err != nil {
				t.Fatal(err)
			}
			if err := m.WithShards(2); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := m.WithShards(2); err != nil {
				t.Fatal(err)
			}
			if err := m.WithPipelineDepth(3); err != nil {
				t.Fatal(err)
			}
		}
		if d := m.PipelineDepth(); d != 3 {
			t.Fatalf("depthFirst=%v: PipelineDepth = %d, want 3", depthFirst, d)
		}
		got := collectBatches(t, m, stream, 29)
		m.Close()
		if ref == nil {
			ref = got
			continue
		}
		if !reflect.DeepEqual(ref, got) {
			t.Fatal("option order changed the result stream")
		}
	}
}

// TestWithPipelineDepthValidation covers the guard rails.
func TestWithPipelineDepthValidation(t *testing.T) {
	m, err := NewMultiEvaluator(20, 4, shardQueries()...)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if err := m.WithPipelineDepth(0); err == nil {
		t.Fatal("zero depth accepted")
	}
	if m.PipelineDepth() != 0 {
		t.Fatalf("sequential backend reports depth %d, want 0", m.PipelineDepth())
	}
	if _, err := m.Ingest(Tuple{TS: 1, Src: "x", Dst: "y", Label: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := m.WithPipelineDepth(2); err == nil {
		t.Fatal("WithPipelineDepth after processing started accepted")
	}
}
