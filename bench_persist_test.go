package streamrpq

import (
	"testing"
)

// Recovery cost model: restart latency is what the durability subsystem
// buys down. BenchmarkColdReplay measures the only restart path an
// unpersisted engine has — re-ingesting the whole stream to rebuild the
// window graph and the Δ indexes — while BenchmarkRecover measures
// loading the latest snapshot and replaying the short WAL suffix
// written after it. With a checkpoint near the head of the stream the
// recovery path replays ~5% of the tuples and skips all result
// re-computation for the rest; it must be measurably faster.

const (
	benchRecoverTuples = 6000
	benchRecoverBatch  = 64
)

func benchRecoverWorkload(b *testing.B) [][]Tuple {
	b.Helper()
	return persistTestStream(2027, benchRecoverTuples, benchRecoverBatch)
}

func benchRecoverEvaluator(b *testing.B) *MultiEvaluator {
	b.Helper()
	m, err := NewMultiEvaluator(400, 10, persistTestQueries(b)...)
	if err != nil {
		b.Fatal(err)
	}
	if err := m.WithShards(2); err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkRecover: snapshot + WAL-suffix recovery of a persisted
// evaluator. The persistence directory is prepared once, with the
// checkpoint covering ~95% of the stream.
func BenchmarkRecover(b *testing.B) {
	batches := benchRecoverWorkload(b)
	dir := b.TempDir()
	m := benchRecoverEvaluator(b)
	if err := m.WithPersistence(dir); err != nil {
		b.Fatal(err)
	}
	ckptAt := len(batches) * 95 / 100
	for i, bt := range batches {
		if _, err := m.IngestBatch(bt); err != nil {
			b.Fatal(err)
		}
		if i == ckptAt {
			if err := m.Checkpoint(); err != nil {
				b.Fatal(err)
			}
		}
	}
	m.Close()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m2, _, err := Recover(dir)
		if err != nil {
			b.Fatal(err)
		}
		m2.Close()
	}
}

// BenchmarkColdReplay: rebuilding the same end-of-stream state without
// persistence by replaying the entire stream into a fresh evaluator.
func BenchmarkColdReplay(b *testing.B) {
	batches := benchRecoverWorkload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := benchRecoverEvaluator(b)
		for _, bt := range batches {
			if _, err := m.IngestBatch(bt); err != nil {
				b.Fatal(err)
			}
		}
		m.Close()
	}
}
