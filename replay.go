package streamrpq

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Replay reads a text-encoded tuple stream ("ts src dst label [+|-]"
// per line, '#' comments and blank lines ignored) from r, feeds it to
// the evaluator, and calls onMatch for every result produced. It
// returns the number of tuples ingested.
func Replay(r io.Reader, ev *Evaluator, onMatch func(Match)) (int64, error) {
	var n int64
	err := scanTupleLines(r, func(line int, t Tuple) error {
		ms, err := ev.Ingest(t)
		if err != nil {
			return fmt.Errorf("streamrpq: line %d: %w", line, err)
		}
		n++
		if onMatch != nil {
			for _, m := range ms {
				onMatch(m)
			}
		}
		return nil
	})
	return n, err
}

// scanTupleLines is the shared line iterator of Replay and ReplayMulti:
// it scans the text stream format, skips comments and blank lines, and
// calls fn for every parsed tuple with its 1-based line number.
func scanTupleLines(r io.Reader, fn func(line int, t Tuple) error) error {
	s := bufio.NewScanner(r)
	s.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	line := 0
	for s.Scan() {
		line++
		text := strings.TrimSpace(s.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		t, err := parseTupleLine(line, text)
		if err != nil {
			return fmt.Errorf("streamrpq: %w", err)
		}
		if err := fn(line, t); err != nil {
			return err
		}
	}
	return s.Err()
}

// ReplayMulti reads the same text format into a MultiEvaluator in
// batches of batchSize tuples (amortizing the coordination cost of a
// sharded or persisted backend), skipping the first skip tuples — the
// resume path after Recover, where skip is AppliedTuples() and the
// input is the same stream file the crashed run was fed. onResult is
// called for every batch result in canonical order; tuple indexes are
// relative to the internal batch. It returns the number of tuples
// ingested (excluding skipped ones).
func ReplayMulti(r io.Reader, m *MultiEvaluator, batchSize int, skip int64, onResult func(BatchResult)) (int64, error) {
	if batchSize <= 0 {
		batchSize = 256
	}
	var n, lastTS int64
	started := false
	lastLine, batchFirstLine := 0, 0
	batch := make([]Tuple, 0, batchSize)
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		brs, err := m.IngestBatch(batch)
		if err != nil {
			// Malformed input (out-of-order tuples) is caught per line
			// below, so a batch failure here is an engine/durability
			// condition; attribute it to the batch's input range.
			return fmt.Errorf("streamrpq: lines %d-%d: %w", batchFirstLine, lastLine, err)
		}
		n += int64(len(batch))
		batch = batch[:0]
		if onResult != nil {
			for _, br := range brs {
				onResult(br)
			}
		}
		return nil
	}
	err := scanTupleLines(r, func(line int, t Tuple) error {
		lastLine = line
		// Validate timestamp order here, against the stream as a whole,
		// so the error names the offending line instead of surfacing at
		// the next batch flush. Skipped tuples advance the clock too:
		// they were applied by the run being resumed.
		if started && t.TS < lastTS {
			return fmt.Errorf("streamrpq: line %d: out-of-order tuple: ts %d after %d", line, t.TS, lastTS)
		}
		started, lastTS = true, t.TS
		if skip > 0 {
			skip--
			return nil
		}
		if len(batch) == 0 {
			batchFirstLine = line
		}
		batch = append(batch, t)
		if len(batch) >= batchSize {
			return flush()
		}
		return nil
	})
	if err != nil {
		return n, err
	}
	if err := flush(); err != nil {
		return n, err
	}
	return n, nil
}

// ParseTuple parses one tuple in the stream text format
// ("ts src dst label [+|-]"). It is the single-line form of Replay's
// input format, exported for callers that receive tuples one at a time
// (e.g. the serving layer's ingest endpoint).
func ParseTuple(text string) (Tuple, error) {
	t, err := parseTupleText(strings.TrimSpace(text))
	if err != nil {
		return Tuple{}, fmt.Errorf("streamrpq: %w", err)
	}
	return t, nil
}

// parseTupleLine parses one stream-file line. line is the 1-based line
// number, included in errors so malformed stream files point at the
// offending line.
func parseTupleLine(line int, text string) (Tuple, error) {
	t, err := parseTupleText(text)
	if err != nil {
		return Tuple{}, fmt.Errorf("line %d: %w", line, err)
	}
	return t, nil
}

func parseTupleText(text string) (Tuple, error) {
	fields := strings.Fields(text)
	if len(fields) < 4 || len(fields) > 5 {
		return Tuple{}, fmt.Errorf("want 4 or 5 fields, got %d", len(fields))
	}
	ts, err := strconv.ParseInt(fields[0], 10, 64)
	if err != nil {
		return Tuple{}, fmt.Errorf("bad timestamp %q: %v", fields[0], err)
	}
	t := Tuple{TS: ts, Src: fields[1], Dst: fields[2], Label: fields[3]}
	if len(fields) == 5 {
		switch fields[4] {
		case "+":
		case "-":
			t.Delete = true
		default:
			return Tuple{}, fmt.Errorf("bad op %q (want + or -)", fields[4])
		}
	}
	return t, nil
}
