package streamrpq

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Replay reads a text-encoded tuple stream ("ts src dst label [+|-]"
// per line, '#' comments and blank lines ignored) from r, feeds it to
// the evaluator, and calls onMatch for every result produced. It
// returns the number of tuples ingested.
func Replay(r io.Reader, ev *Evaluator, onMatch func(Match)) (int64, error) {
	s := bufio.NewScanner(r)
	s.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var n int64
	line := 0
	for s.Scan() {
		line++
		text := strings.TrimSpace(s.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		t, err := parseTupleLine(text)
		if err != nil {
			return n, fmt.Errorf("streamrpq: line %d: %w", line, err)
		}
		ms, err := ev.Ingest(t)
		if err != nil {
			return n, fmt.Errorf("streamrpq: line %d: %w", line, err)
		}
		n++
		if onMatch != nil {
			for _, m := range ms {
				onMatch(m)
			}
		}
	}
	return n, s.Err()
}

func parseTupleLine(text string) (Tuple, error) {
	fields := strings.Fields(text)
	if len(fields) < 4 || len(fields) > 5 {
		return Tuple{}, fmt.Errorf("want 4 or 5 fields, got %d", len(fields))
	}
	ts, err := strconv.ParseInt(fields[0], 10, 64)
	if err != nil {
		return Tuple{}, fmt.Errorf("bad timestamp %q: %v", fields[0], err)
	}
	t := Tuple{TS: ts, Src: fields[1], Dst: fields[2], Label: fields[3]}
	if len(fields) == 5 {
		switch fields[4] {
		case "+":
		case "-":
			t.Delete = true
		default:
			return Tuple{}, fmt.Errorf("bad op %q (want + or -)", fields[4])
		}
	}
	return t, nil
}
