package streamrpq

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"streamrpq/internal/stream"
)

// persistTestQueries is the shared multi-query workload of the
// durability tests. The last pattern is language-equivalent to the
// first, so under the default sharing mode the two subscribe to one
// shared Δ-index group — checkpoints of every configuration below
// therefore carry a shared-group layout (snapshot format v4).
func persistTestQueries(t testing.TB) []*Query {
	t.Helper()
	var qs []*Query
	for _, expr := range []string{"a/b*", "(a|b)+", "b/a", "a|(a/b*)"} {
		q, err := Compile(expr)
		if err != nil {
			t.Fatal(err)
		}
		qs = append(qs, q)
	}
	return qs
}

// persistChurnStream generates a random stream over string vertices,
// pre-split into batches; delRatio is the probability that a tuple
// re-deletes a previously inserted edge.
func persistChurnStream(seed int64, n, batch int, delRatio float64) [][]Tuple {
	rng := rand.New(rand.NewSource(seed))
	labels := []string{"a", "b", "noise"}
	var ts int64
	var batches [][]Tuple
	var inserted []Tuple
	for i := 0; i < n; i += batch {
		var cur []Tuple
		for j := 0; j < batch && i+j < n; j++ {
			ts += rng.Int63n(3)
			if len(inserted) > 0 && rng.Float64() < delRatio {
				old := inserted[rng.Intn(len(inserted))]
				cur = append(cur, Tuple{TS: ts, Src: old.Src, Dst: old.Dst, Label: old.Label, Delete: true})
				continue
			}
			tu := Tuple{
				TS:    ts,
				Src:   fmt.Sprintf("v%d", rng.Intn(9)),
				Dst:   fmt.Sprintf("v%d", rng.Intn(9)),
				Label: labels[rng.Intn(len(labels))],
			}
			cur = append(cur, tu)
			inserted = append(inserted, tu)
		}
		batches = append(batches, cur)
	}
	return batches
}

// persistTestStream generates an append-only random stream over string
// vertices, pre-split into batches.
func persistTestStream(seed int64, n, batch int) [][]Tuple {
	return persistChurnStream(seed, n, batch, 0)
}

// flatResult is one result in the flattened, comparable form of a
// result stream: everything that identifies it, timestamps and
// invalidations included.
type flatResult struct {
	Batch int
	Tuple int
	Query string
	Inval bool
	From  string
	To    string
	TS    int64
}

// flatten appends the results of one ingested batch. canon sorts the
// matches (and invalidations) within each (tuple, query) group —
// needed for the sequential backend, whose within-group emission order
// follows engine traversal order (the sharded backend already merges
// canonically).
func flatten(dst []flatResult, batchIdx int, brs []BatchResult, canon bool) []flatResult {
	sortMatches := func(ms []Match) []Match {
		if !canon {
			return ms
		}
		ms = append([]Match(nil), ms...)
		sort.Slice(ms, func(i, j int) bool {
			if ms[i].From != ms[j].From {
				return ms[i].From < ms[j].From
			}
			if ms[i].To != ms[j].To {
				return ms[i].To < ms[j].To
			}
			return ms[i].TS < ms[j].TS
		})
		return ms
	}
	for _, br := range brs {
		for _, m := range sortMatches(br.Matches) {
			dst = append(dst, flatResult{
				Batch: batchIdx, Tuple: br.Tuple, Query: br.Query.String(),
				From: m.From, To: m.To, TS: m.TS,
			})
		}
		for _, m := range sortMatches(br.Invalidations) {
			dst = append(dst, flatResult{
				Batch: batchIdx, Tuple: br.Tuple, Query: br.Query.String(),
				Inval: true, From: m.From, To: m.To, TS: m.TS,
			})
		}
	}
	return dst
}

// TestKillRecoverDifferential is the acceptance test of the durability
// subsystem: ingest a prefix, Checkpoint, ingest more, hard-drop the
// evaluator without Close (the in-process kill -9), Recover, ingest the
// rest — the concatenated result stream must be identical (canonical
// order, timestamps included) to an uninterrupted run, for shard counts
// 1 and 4 and for the sequential backend.
func TestKillRecoverDifferential(t *testing.T) {
	// shards 0 = sequential backend; depth 0 = the sharded engine's
	// default pipeline depth (2, pipelined). Depth 1 pins the barriered
	// coordinator, depth 4 a deeper pipeline: checkpoints are taken at
	// batch boundaries, where the pipeline is drained, so recovery must
	// be depth-independent. writers 0 = the engine default (1); the
	// multi-writer configs pin that stripe-parallel epoch construction
	// leaves no residue in checkpoints either — snapshots are
	// writer-count-free, and a snapshot taken at one writer count
	// restores into any other.
	// private = multi-query sharing off: the workload's equivalent pair
	// then keeps two private Δ indexes, and recovery must restore the
	// persisted sharing flag rather than the default.
	for _, cfg := range []struct {
		shards, depth, writers int
		private                bool
	}{
		{0, 0, 0, false}, {1, 0, 0, false}, {4, 0, 0, false}, {4, 1, 0, false},
		{4, 4, 0, false}, {4, 0, 4, false}, {1, 2, 2, false},
		{0, 0, 0, true}, {4, 0, 0, true},
	} {
		shards, depth, writers := cfg.shards, cfg.depth, cfg.writers
		private := cfg.private
		t.Run(fmt.Sprintf("shards=%d/depth=%d/writers=%d/private=%v", shards, depth, writers, private), func(t *testing.T) {
			// Delete/re-insert churn puts the crash point mid-churn: the
			// recovered engines' support counts (snapshot format v2) must
			// reproduce the invalidation stream exactly.
			batches := persistChurnStream(2026, 360, 16, 0.15)
			canon := shards == 0
			build := func() *MultiEvaluator {
				m, err := NewMultiEvaluator(20, 2, persistTestQueries(t)...)
				if err != nil {
					t.Fatal(err)
				}
				if private {
					if err := m.WithQuerySharing(false); err != nil {
						t.Fatal(err)
					}
				}
				if depth > 0 {
					if err := m.WithPipelineDepth(depth); err != nil {
						t.Fatal(err)
					}
				}
				if shards > 0 {
					if err := m.WithShards(shards); err != nil {
						t.Fatal(err)
					}
				}
				if writers > 0 {
					if err := m.WithWriters(writers); err != nil {
						t.Fatal(err)
					}
				}
				return m
			}

			// Uninterrupted reference run.
			ref := build()
			defer ref.Close()
			var want []flatResult
			for i, b := range batches {
				brs, err := ref.IngestBatch(b)
				if err != nil {
					t.Fatal(err)
				}
				want = flatten(want, i, brs, canon)
			}
			hasInval := false
			for _, r := range want {
				if r.Inval {
					hasInval = true
					break
				}
			}
			if !hasInval {
				t.Fatal("churn stream produced no invalidations; deletion coverage is vacuous")
			}

			// Persisted run with a mid-stream kill.
			ckptAt, killAt := len(batches)/3, 2*len(batches)/3
			dir := t.TempDir()
			m := build()
			if err := m.WithPersistence(dir); err != nil {
				t.Fatal(err)
			}
			var got []flatResult
			for i, b := range batches[:killAt] {
				brs, err := m.IngestBatch(b)
				if err != nil {
					t.Fatal(err)
				}
				got = flatten(got, i, brs, canon)
				if i == ckptAt {
					if err := m.Checkpoint(); err != nil {
						t.Fatal(err)
					}
				}
			}
			applied := m.AppliedTuples()
			// Crash point. Close here is the in-process stand-in for
			// kill -9: it only releases file descriptors and the
			// directory flock — no commit, no checkpoint, no truncation
			// — leaving the on-disk state exactly as process death
			// would. (A literal `m = nil` would leak the flock inside
			// this test process and block Recover.)
			m.Close()

			m2, redelivered, err := Recover(dir)
			if err != nil {
				t.Fatal(err)
			}
			defer m2.Close()
			if len(redelivered) != 0 {
				t.Fatalf("all batches were committed, yet %d results redelivered", len(redelivered))
			}
			if m2.AppliedTuples() != applied {
				t.Fatalf("recovered AppliedTuples = %d, want %d", m2.AppliedTuples(), applied)
			}
			if m2.NumShards() != max(shards, 1) || m2.NumQueries() != 4 {
				t.Fatalf("recovered topology: %d shards, %d queries", m2.NumShards(), m2.NumQueries())
			}
			if m2.QuerySharing() != !private {
				t.Fatalf("recovered sharing mode = %v, want %v", m2.QuerySharing(), !private)
			}
			for i, b := range batches[killAt:] {
				brs, err := m2.IngestBatch(b)
				if err != nil {
					t.Fatal(err)
				}
				got = flatten(got, killAt+i, brs, canon)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("post-recovery stream diverged from uninterrupted run:\nwant %d results\ngot  %d results\nfirst divergence: %v",
					len(want), len(got), firstDiff(want, got))
			}

			// Second-generation recovery: checkpoint, kill, recover again.
			if err := m2.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			m2.Close() // release the flock so the next Recover can take it
			m3, redelivered, err := Recover(dir)
			if err != nil {
				t.Fatal(err)
			}
			defer m3.Close()
			if len(redelivered) != 0 {
				t.Fatalf("clean checkpoint, yet %d results redelivered", len(redelivered))
			}
		})
	}
}

func firstDiff(want, got []flatResult) string {
	n := min(len(want), len(got))
	for i := 0; i < n; i++ {
		if want[i] != got[i] {
			return fmt.Sprintf("index %d: want %+v, got %+v", i, want[i], got[i])
		}
	}
	return fmt.Sprintf("lengths differ at %d", n)
}

// TestRecoverRedeliversUncommittedBatch: a batch whose WAL record made
// it to disk but whose commit did not (the crash landed between
// write-ahead and delivery) is replayed on recovery and its results
// returned as redelivered, exactly once.
func TestRecoverRedeliversUncommittedBatch(t *testing.T) {
	batches := persistTestStream(7, 200, 16)
	qs := persistTestQueries(t)

	ref, err := NewMultiEvaluator(20, 2, qs...)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.WithShards(2); err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	var want []flatResult
	for i, b := range batches {
		brs, err := ref.IngestBatch(b)
		if err != nil {
			t.Fatal(err)
		}
		want = flatten(want, i, brs, false)
	}

	dir := t.TempDir()
	m, err := NewMultiEvaluator(20, 2, persistTestQueries(t)...)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.WithShards(2); err != nil {
		t.Fatal(err)
	}
	if err := m.WithPersistence(dir); err != nil {
		t.Fatal(err)
	}
	crashAt := len(batches) / 2
	var got []flatResult
	for i, b := range batches[:crashAt] {
		brs, err := m.IngestBatch(b)
		if err != nil {
			t.Fatal(err)
		}
		got = flatten(got, i, brs, false)
	}
	// Simulate the torn moment: the batch reaches the WAL but the
	// process dies before processing it and committing. The write-ahead
	// happens first in IngestBatch, so this is the real crash window.
	crashBatch := batches[crashAt]
	encoded := make([]stream.Tuple, len(crashBatch))
	for i, tu := range crashBatch {
		encoded[i] = m.encode(tu)
	}
	if err := m.persist.appendBatch(m, encoded); err != nil {
		t.Fatal(err)
	}
	m.Close() // kill -9 stand-in: fd/lock release only, state untouched

	m2, redelivered, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	got = flatten(got, crashAt, redelivered, false)
	for i, b := range batches[crashAt+1:] {
		brs, err := m2.IngestBatch(b)
		if err != nil {
			t.Fatal(err)
		}
		got = flatten(got, crashAt+1+i, brs, false)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("redelivery stream diverged: %s", firstDiff(want, got))
	}
}

// TestRecoverRedeliversExactlyOnce: the redelivered batch is
// acknowledged by Recover itself, so a second crash-and-recover (with
// no further ingestion in between) must not redeliver it again.
func TestRecoverRedeliversExactlyOnce(t *testing.T) {
	dir := t.TempDir()
	m, err := NewMultiEvaluator(20, 2, persistTestQueries(t)...)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.WithShards(2); err != nil {
		t.Fatal(err)
	}
	if err := m.WithPersistence(dir); err != nil {
		t.Fatal(err)
	}
	batches := persistTestStream(11, 120, 12)
	for _, b := range batches[:5] {
		if _, err := m.IngestBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	// Crash window: batch in the WAL, no commit, results never returned.
	encoded := make([]stream.Tuple, len(batches[5]))
	for i, tu := range batches[5] {
		encoded[i] = m.encode(tu)
	}
	if err := m.persist.appendBatch(m, encoded); err != nil {
		t.Fatal(err)
	}
	m.Close() // kill #1 stand-in: fd/lock release only, state untouched

	m2, redelivered1, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(redelivered1) == 0 {
		t.Fatal("uncommitted batch produced no redelivery (want some results)")
	}
	m2.Close() // kill #2 stand-in, immediately after recovery: no ingestion

	m3, redelivered2, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer m3.Close()
	if len(redelivered2) != 0 {
		t.Fatalf("second recovery redelivered %d result groups again (want 0: duplicates)", len(redelivered2))
	}
	// The engine state still contains the batch: ingestion continues
	// from after it.
	if m3.AppliedTuples() != int64(6*12) {
		t.Fatalf("AppliedTuples = %d, want %d", m3.AppliedTuples(), 6*12)
	}
}

// TestRecoverFallsBackPastCorruptSnapshot: corrupting the newest
// snapshot file must not lose data — recovery falls back to the
// previous generation and replays the longer WAL suffix, producing the
// same state.
func TestRecoverFallsBackPastCorruptSnapshot(t *testing.T) {
	batches := persistTestStream(99, 240, 12)
	qs := persistTestQueries(t)

	ref, err := NewMultiEvaluator(20, 2, qs...)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.WithShards(2); err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	var want []flatResult
	for i, b := range batches {
		brs, err := ref.IngestBatch(b)
		if err != nil {
			t.Fatal(err)
		}
		want = flatten(want, i, brs, false)
	}

	dir := t.TempDir()
	m, err := NewMultiEvaluator(20, 2, persistTestQueries(t)...)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.WithShards(2); err != nil {
		t.Fatal(err)
	}
	// Automatic checkpoints every 5 batches produce several generations.
	if err := m.WithPersistence(dir, CheckpointEvery(5)); err != nil {
		t.Fatal(err)
	}
	killAt := 3 * len(batches) / 4
	var got []flatResult
	for i, b := range batches[:killAt] {
		brs, err := m.IngestBatch(b)
		if err != nil {
			t.Fatal(err)
		}
		got = flatten(got, i, brs, false)
	}
	m.Close() // kill -9 stand-in: fd/lock release only, state untouched

	// Corrupt the newest snapshot file.
	snaps, err := filepath.Glob(filepath.Join(dir, "snap-*.ckpt"))
	if err != nil || len(snaps) < 2 {
		t.Fatalf("want ≥2 snapshot generations, got %v (err %v)", snaps, err)
	}
	sort.Strings(snaps)
	newest := snaps[len(snaps)-1]
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x10
	if err := os.WriteFile(newest, data, 0o644); err != nil {
		t.Fatal(err)
	}

	m2, redelivered, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if len(redelivered) != 0 {
		t.Fatalf("%d results redelivered after clean commits", len(redelivered))
	}
	for i, b := range batches[killAt:] {
		brs, err := m2.IngestBatch(b)
		if err != nil {
			t.Fatal(err)
		}
		got = flatten(got, killAt+i, brs, false)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("fallback recovery diverged: %s", firstDiff(want, got))
	}
}

// TestPersistenceGuards: API misuse is rejected early.
func TestPersistenceGuards(t *testing.T) {
	dir := t.TempDir()
	m, err := NewMultiEvaluator(10, 1, persistTestQueries(t)...)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if err := m.Checkpoint(); err == nil {
		t.Error("Checkpoint without WithPersistence accepted")
	}
	if err := m.WithPersistence(dir); err != nil {
		t.Fatal(err)
	}
	if err := m.WithPersistence(dir); err == nil {
		t.Error("double WithPersistence accepted")
	}
	if err := m.WithShards(2); err == nil {
		t.Error("WithShards after WithPersistence accepted")
	}

	m2, err := NewMultiEvaluator(10, 1, persistTestQueries(t)...)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if err := m2.WithPersistence(dir); err == nil {
		t.Error("WithPersistence over an existing persistence directory accepted")
	}
	if _, _, err := Recover(t.TempDir()); err == nil {
		t.Error("Recover of an empty directory accepted")
	}
}

// TestDeferredCheckpointError: an automatic-checkpoint failure after a
// batch's results were committed must not swallow those results — the
// batch call succeeds, the error surfaces on the next call (before any
// state is touched, so that batch can simply be retried).
func TestDeferredCheckpointError(t *testing.T) {
	dir := t.TempDir()
	m, err := NewMultiEvaluator(10, 1, MustCompile("a+"))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if err := m.WithPersistence(dir); err != nil {
		t.Fatal(err)
	}
	mk := func(ts int64) []Tuple {
		return []Tuple{{TS: ts, Src: fmt.Sprintf("n%d", ts), Dst: fmt.Sprintf("n%d", ts+1), Label: "a"}}
	}
	if _, err := m.IngestBatch(mk(1)); err != nil {
		t.Fatal(err)
	}
	// Inject a deferred failure as commitBatch would after a failed
	// auto-checkpoint.
	injected := fmt.Errorf("injected checkpoint failure")
	m.persist.deferred = injected

	if _, err := m.IngestBatch(mk(2)); err == nil {
		t.Fatal("deferred checkpoint error was not surfaced")
	}
	// The rejected batch touched nothing: the retry succeeds and the
	// stream continues.
	brs, err := m.IngestBatch(mk(2))
	if err != nil {
		t.Fatalf("retry after deferred error: %v", err)
	}
	found := false
	for _, br := range brs {
		for _, mt := range br.Matches {
			if mt.From == "n1" && mt.To == "n3" {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("retry lost results: %+v", brs)
	}
	if m.AppliedTuples() != 2 {
		t.Fatalf("AppliedTuples = %d, want 2 (rejected batch must not count)", m.AppliedTuples())
	}
}

// TestCommitFailureDefersWithoutLosingResults: a failed commit append
// must not surface as an IngestBatch error (the batch is applied; an
// error would invite a double-applying retry, and continuing would ack
// it at the next commit, losing its results). Instead the commit is
// remembered and retried before the next append, and the failure is
// reported on the next call.
func TestCommitFailureDefersWithoutLosingResults(t *testing.T) {
	dir := t.TempDir()
	m, err := NewMultiEvaluator(10, 1, MustCompile("a+"))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if err := m.WithPersistence(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := m.IngestBatch([]Tuple{{TS: 1, Src: "a", Dst: "b", Label: "a"}}); err != nil {
		t.Fatal(err)
	}
	// Simulate a transient append failure: close the WAL out from under
	// the commit path.
	p := m.persist
	p.mgr.Close()
	if err := p.commitBatch(m, 2, nil); err != nil {
		t.Fatalf("commitBatch surfaced an error directly (invites double-apply): %v", err)
	}
	if p.pendingCommit == nil {
		t.Fatal("failed commit not remembered for retry")
	}
	if p.deferred == nil {
		t.Fatal("failed commit not reported via deferred error")
	}
	// The next batch surfaces the deferred error without touching state.
	if _, err := m.IngestBatch([]Tuple{{TS: 3, Src: "b", Dst: "c", Label: "a"}}); err == nil {
		t.Fatal("deferred commit failure not surfaced")
	}
	// The retry self-heals: appendBatch's checkpoint repair reopens the
	// WAL (new generation) and supersedes the pending commit, so
	// ingestion continues and the stream stays intact.
	brs, err := m.IngestBatch([]Tuple{{TS: 3, Src: "b", Dst: "c", Label: "a"}})
	if err != nil {
		t.Fatalf("self-heal after failed flush: %v", err)
	}
	if p.pendingCommit != nil {
		t.Fatal("pending commit not superseded by the repair checkpoint")
	}
	found := false
	for _, br := range brs {
		for _, mt := range br.Matches {
			if mt.From == "a" && mt.To == "c" {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("results lost across the repair: %+v", brs)
	}
}

// TestPersistedSingleTupleIngest: the single-tuple Ingest path logs and
// commits through the same WAL machinery.
func TestPersistedSingleTupleIngest(t *testing.T) {
	dir := t.TempDir()
	q := MustCompile("a+")
	m, err := NewMultiEvaluator(10, 1, q)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.WithPersistence(dir); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := m.Ingest(Tuple{TS: int64(i), Src: fmt.Sprintf("n%d", i), Dst: fmt.Sprintf("n%d", i+1), Label: "a"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	m.Close() // kill -9 stand-in: fd/lock release only, state untouched

	m2, redelivered, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if len(redelivered) != 0 {
		t.Fatalf("redelivered %d", len(redelivered))
	}
	if m2.AppliedTuples() != 5 {
		t.Fatalf("AppliedTuples = %d, want 5", m2.AppliedTuples())
	}
	// The chain n0→…→n5 is live; a new edge extends it.
	rs, err := m2.Ingest(Tuple{TS: 5, Src: "n5", Dst: "n6", Label: "a"})
	if err != nil {
		t.Fatal(err)
	}
	var pairs []string
	for _, qr := range rs {
		for _, mt := range qr.Matches {
			pairs = append(pairs, qr.Query.String()+":"+mt.From+"->"+mt.To)
		}
	}
	sort.Strings(pairs)
	want := []string{"a+:n0->n6", "a+:n1->n6", "a+:n2->n6", "a+:n3->n6", "a+:n4->n6", "a+:n5->n6"}
	if !reflect.DeepEqual(pairs, want) {
		t.Fatalf("post-recovery matches %v, want %v", pairs, want)
	}
}
